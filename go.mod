module sybilwild

go 1.22
