// Command topology runs the paper's §3 analyses over a generated
// 660K-scale (scaled by -scale) Sybil population — degree makeup,
// connected components, the giant-but-loose component, and why
// community-based defenses cannot see any of it.
package main

import (
	"flag"
	"fmt"

	"sybilwild/internal/graph"
	"sybilwild/internal/sybtopo"
)

func main() {
	scale := flag.Float64("scale", 0.02, "fraction of paper scale (1.0 = 667,723 Sybils)")
	seed := flag.Int64("seed", 1, "deterministic seed")
	flag.Parse()

	cfg := sybtopo.DefaultConfig()
	cfg.Scale = *scale
	cfg.Seed = *seed
	topo := sybtopo.Generate(cfg)
	fmt.Printf("generated %d Sybils against a %d-user population\n", topo.NumSybils(), topo.Normals)

	// §3.2: most Sybils have no Sybil edges at all.
	fmt.Printf("Sybils with ≥1 Sybil edge: %.1f%% (paper: ~20%%)\n", 100*topo.FracWithSybilEdge())

	// §3.3: components are tiny except one giant, loose component.
	comps := topo.Components()
	connected := 0
	for _, c := range comps {
		connected += c.Sybils
	}
	fmt.Printf("connected-Sybil components: %d\n", len(comps))
	fmt.Println("\nfive largest components (Table 2):")
	fmt.Printf("%10s %12s %13s %10s\n", "Sybils", "Sybil edges", "Attack edges", "Audience")
	for i := 0; i < 5 && i < len(comps); i++ {
		c := comps[i]
		topo.FillAudience(&c)
		fmt.Printf("%10d %12d %13d %10d\n", c.Sybils, c.SybilEdges, c.AtkEdges, c.Audience)
	}

	giant := comps[0]
	deg1 := 0
	for _, m := range giant.Members {
		if topo.SybilGraph.Degree(m) == 1 {
			deg1++
		}
	}
	fmt.Printf("\ngiant component: %d Sybils (%.0f%% of connected), %.1f%% with degree 1\n",
		giant.Sybils, 100*float64(giant.Sybils)/float64(connected),
		100*float64(deg1)/float64(giant.Sybils))

	// §3.4: edge creation order — accidental vs intentional.
	intentional := 0
	for _, m := range giant.Members {
		if topo.IsIntentional(m) {
			intentional++
		}
	}
	fmt.Printf("intentionally-linked accounts in giant component: %d of %d\n",
		intentional, giant.Sybils)

	// A taste of Figure 8: print a few creation-order columns.
	fmt.Println("\nedge-creation order (first 5 giant members: sybil-edge ranks / total):")
	for _, m := range giant.Members[:min(5, len(giant.Members))] {
		eo := topo.EdgeOrderOf(m)
		fmt.Printf("  sybil %6d: %v / %d\n", m, eo.SybilRanks, eo.TotalEdges)
	}
	_ = graph.NodeID(0)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
