// Command quickstart simulates a Sybil campaign, fits the paper's threshold
// detector on ground truth, and evaluates it — the end-to-end pipeline
// in ~40 lines of API use.
package main

import (
	"fmt"

	"sybilwild"
)

func main() {
	// 1. Simulate a campaign: 4,000 users, 50 tool-driven Sybils,
	//    400 hours of activity (the paper's measurement window).
	cfg := sybilwild.DefaultCampaign(42)
	cfg.Normals = 4000
	cfg.Sybils = 50
	c := sybilwild.RunCampaign(cfg)
	fmt.Println("campaign:", c.Pop.Stats())

	// 2. Extract the four behavioural features with ground truth.
	ds := c.GroundTruth()
	fmt.Printf("feature vectors: %d (%d sybils)\n", len(ds.Vectors), count(ds.Labels))

	// 3. Fit the threshold rule (the paper's §2.3 detector) and
	//    evaluate it in the Table 1 layout.
	rule := sybilwild.FitRule(ds)
	fmt.Println("fitted rule:", rule)
	conf := rule.Evaluate(ds)
	fmt.Print(conf.String())
	fmt.Printf("accuracy: %.2f%%\n", 100*conf.Accuracy())

	// 4. Compare against the SVM (5-fold cross-validation).
	acc := sybilwild.CrossValidateSVM(ds, 5, sybilwild.DefaultSVMConfig())
	fmt.Printf("SVM 5-fold CV accuracy: %.2f%%\n", 100*acc)

	// 5. Inspect one Sybil's features.
	v := sybilwild.ExtractFeatures(c.Network(), c.Pop.Sybils[:1])[0]
	fmt.Printf("example sybil: freq=%.1f/h outAccept=%.2f inAccept=%.2f cc=%.4f\n",
		v.Freq1h, v.OutAccept, v.InAccept, v.CC)
}

func count(labels []bool) int {
	n := 0
	for _, l := range labels {
		if l {
			n++
		}
	}
	return n
}
