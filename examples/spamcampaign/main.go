// Command spamcampaign runs the scenario that motivates the paper's
// §2.1 — Sybils
// befriend users to spam advertisements, both as direct messages and
// as blog entries that cascade through re-shares ("forwarded across
// multiple social hops much like retweets"). This example runs the
// campaign with and without the real-time monitor attached (flag ⇒
// ban, as deployed on Renren) and measures the spam reach.
package main

import (
	"fmt"

	"sybilwild"
	"sybilwild/internal/agents"
	"sybilwild/internal/osn"
	"sybilwild/internal/sim"
	"sybilwild/internal/stats"
)

type outcome struct {
	directSpam   int // ad messages delivered to new friends
	blogAudience int // distinct users reached by ad-blog cascades
	banned       int
}

func runCampaign(withDetector bool) outcome {
	pop := agents.NewPopulation(7, agents.DefaultParams())
	pop.Bootstrap(4000)
	r := stats.NewRand(1234)

	if withDetector {
		// Calibrate thresholds on a pilot campaign, like the paper's
		// offline testing phase before the August 2010 deployment.
		pilot := sybilwild.RunCampaign(sybilwild.CampaignConfig{
			Seed: 8, Normals: 3000, Sybils: 40, Hours: 400, Params: sybilwild.DefaultParams(),
		})
		rule := sybilwild.FitRule(pilot.GroundTruth())
		m := sybilwild.NewMonitor(rule, pop.Net, func(id osn.AccountID, at int64) {
			pop.Net.Ban(id, at)
		})
		m.CheckEvery = 5
		pop.Net.RegisterObserver(m.Observe)
	}

	// Every Sybil publishes one ad blog the moment its account becomes
	// active; each accepted friendship delivers a direct ad message and
	// occasionally a re-share from a careless new friend, cascading the
	// ad outward.
	adBlog := map[osn.AccountID]osn.BlogID{}
	var out outcome
	pop.Net.RegisterObserver(func(ev osn.Event) {
		if ev.Type != osn.EvFriendAccept {
			return
		}
		// Actor accepted Target's request.
		sybil, friend := ev.Target, ev.Actor
		if pop.Net.Account(sybil).Kind != osn.Sybil {
			return
		}
		if _, ok := adBlog[sybil]; !ok {
			if id, err := pop.Net.PostBlog(sybil, ev.At); err == nil {
				adBlog[sybil] = id
			}
		}
		if pop.Net.SendMessage(sybil, friend, ev.At) == nil {
			out.directSpam++
		}
		// The new friend now sees the ad blog; a small fraction re-share
		// it, pushing the ad one hop beyond the Sybil's own audience.
		if id, ok := adBlog[sybil]; ok && r.Bernoulli(0.05) {
			_ = pop.Net.ShareBlog(friend, id, ev.At)
		}
	})

	pop.LaunchSybils(50, 100*sim.TicksPerHour)
	pop.RunFor(400 * sim.TicksPerHour)

	for _, id := range pop.Sybils {
		if pop.Net.Account(id).Banned {
			out.banned++
		}
	}
	for _, id := range adBlog {
		out.blogAudience += pop.Net.BlogAudience(id)
	}
	return out
}

func main() {
	before := runCampaign(false)
	after := runCampaign(true)
	fmt.Println("without real-time detector:")
	fmt.Printf("  direct ad messages delivered: %d\n", before.directSpam)
	fmt.Printf("  ad-blog cascade audience:     %d\n", before.blogAudience)
	fmt.Println("with real-time detector (flag ⇒ ban):")
	fmt.Printf("  direct ad messages delivered: %d (%.0f%% reduction)\n",
		after.directSpam, 100*(1-float64(after.directSpam)/float64(before.directSpam)))
	fmt.Printf("  ad-blog cascade audience:     %d (%.0f%% reduction)\n",
		after.blogAudience, 100*(1-float64(after.blogAudience)/float64(max(before.blogAudience, 1))))
	fmt.Printf("  sybils banned mid-campaign:   %d/50\n", after.banned)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
