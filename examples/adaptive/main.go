// Command adaptive demonstrates the adaptive thresholds of the
// paper's production detector, which "uses an
// adaptive feedback scheme to dynamically tune threshold parameters on
// the fly" (§2.3). This example shows why that matters: a second wave
// of Sybils lowers its invitation rate below the original frequency
// cut, the static rule goes blind, and the feedback loop — fed by a
// trickle of manually audited verdicts — re-fits the cuts and recovers.
package main

import (
	"fmt"

	"sybilwild"
	"sybilwild/internal/agents"
	"sybilwild/internal/detector"
	"sybilwild/internal/features"
	"sybilwild/internal/osn"
	"sybilwild/internal/sim"
	"sybilwild/internal/stats"
)

// wave runs a campaign whose Sybils use the given invitation-rate
// median (log-space mu) and returns the labelled dataset.
func wave(seed int64, rateMuLog float64) (*agents.Population, features.Dataset) {
	p := agents.DefaultParams()
	p.SybilRateMuLog = rateMuLog
	pop := agents.NewPopulation(seed, p)
	pop.Bootstrap(3000)
	pop.LaunchSybils(40, 100*sim.TicksPerHour)
	pop.RunFor(400 * sim.TicksPerHour)
	return pop, features.Labelled(pop.Net, pop.Sybils, pop.Normals)
}

func tpr(c interface{ TPR() float64 }) string { return fmt.Sprintf("%.1f%%", 100*c.TPR()) }

func main() {
	// Wave 1: classic Sybils (median 55 invites/hour). Fit the rule.
	_, ds1 := wave(1, 4.007)
	rule := sybilwild.FitRule(ds1)
	fmt.Println("wave 1 rule:", rule)
	c1 := rule.Evaluate(ds1)
	fmt.Printf("wave 1 detection: TPR %s, FPR %.2f%%\n", tpr(&c1), 100*c1.FPR())

	// Wave 2: attackers adapt — median rate drops to ≈8/hour.
	_, ds2 := wave(2, 2.08)
	c2 := rule.Evaluate(ds2)
	fmt.Printf("\nwave 2 (drifted sybils) with the static wave-1 rule: TPR %s — blind\n", tpr(&c2))

	// The adaptive detector keeps auditing: Renren's verification team
	// labels a sample of flagged/suspicious accounts plus a control
	// sample of normal users; each verdict feeds the tuner.
	ad := detector.NewAdaptive(rule, 600, 40)
	audited := 0
	for i, v := range ds2.Vectors {
		if v.OutSent < 5 {
			continue
		}
		// All confirmed Sybils reach the audit trail (they get reported
		// or eventually caught), plus a slice of the normal population.
		if ds2.Labels[i] || (audited < 400 && i%3 == 0) {
			ad.Audit(v, ds2.Labels[i])
			audited++
		}
	}
	var c3 stats.Confusion
	for i, v := range ds2.Vectors {
		c3.Observe(ds2.Labels[i], ad.Classify(v))
	}
	fmt.Printf("adaptive rule after %d audits: %v\n", audited, ad.Rule)
	fmt.Printf("wave 2 with adaptive detector: TPR %s, FPR %.2f%%\n", tpr(&c3), 100*c3.FPR())
	fmt.Println("\nNote the re-fit clustering cut: low-and-slow Sybils accumulate few")
	fmt.Println("friends, which *raises* their first-50 cc — the feature itself loses")
	fmt.Println("power, which is the paper's closing point: attackers adapt, and")
	fmt.Println("detection techniques must keep adapting with them.")

	_ = osn.Normal
}
