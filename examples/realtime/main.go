// Command realtime runs the deployed multi-producer architecture in
// one process: a stream broker (streamd's role), three producers each
// running the same seeded OSN simulation and publishing their
// hash-partitioned share of the operational log over the publish
// sub-protocol (renrend -publish's role), and a sharded concurrent
// detection pipeline consuming the merged feed at batch granularity,
// reconstructing the graph, and flagging Sybils live (detectd's
// role). Producer 0 also drives an in-process serial Monitor off its
// simulation — which generates the full event set; each producer only
// *publishes* its partition — to cross-check the pipeline's verdicts.
//
// The broker merges the three producer streams through one global
// sequencer, holds the downstream eof until all three have closed
// their epochs, and the run ends with the ack-based delivery audit
// aggregated across producers. Expected output (exact counts vary
// with GOMAXPROCS-dependent interleaving):
//
//	event feed on 127.0.0.1:NNNNN
//	streamed campaign: accounts=3040 (normal=3000 sybil=40) edges=~35000 events=~100000
//	producer p0: epoch=1 events=~33000 | p1: ... | p2: ...
//	flagged over the wire (N shards): 39 sybils (of 40), 0 normals (of 3000)
//	serial in-process monitor flagged 39 for comparison
//	feed audit: sent=99535 delivered=99535 (100.0%) evicted_sessions=0
//
// The audit line is the delivery contract made visible: delivered
// equals sent (every event from every producer was sequenced once and
// acknowledged by the subscriber) and no session was evicted — the
// wire lost nothing even with three concurrent publishers racing the
// pipeline.
package main

import (
	"fmt"
	"runtime"
	"sync"

	"sybilwild/internal/agents"
	"sybilwild/internal/detector"
	"sybilwild/internal/osn"
	"sybilwild/internal/sim"
	"sybilwild/internal/stream"
)

const (
	producers = 3
	seed      = 3
	normals   = 3000
	sybils    = 40
)

func main() {
	srv, err := stream.NewServer("127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	fmt.Println("event feed on", srv.Addr())

	rule := detector.Rule{OutAcceptMax: 0.5, FreqMin: 20, CCMax: 0.05, MinObserved: 10}

	// --- detector side (cmd/detectd in production): sharded pipeline
	// fed whole wire batches, rebuilding the friendship graph from
	// accepts. SubscribeBatch resumes the session on connection loss,
	// so the pipeline sees every event exactly once.
	shards := runtime.GOMAXPROCS(0)
	pipe := detector.NewPipeline(rule, nil,
		detector.WithShards(shards),
		detector.WithGraphReconstruction())
	var subWG sync.WaitGroup
	subWG.Add(1)
	go func() {
		defer subWG.Done()
		ingest := func(evs []osn.Event) { pipe.Ingest(detector.Batch{Events: evs}) }
		if err := stream.SubscribeBatch(srv.Addr(), ingest, 5); err != nil {
			fmt.Println("subscriber error:", err)
		}
		pipe.Close()
	}()

	// --- producer side (renrend -publish in production): three
	// processes each run the full deterministic simulation and publish
	// only the actors that hash-partition to their index; the broker's
	// sequencer merges them into one totally ordered feed. Producer 0
	// doubles as the reference: its simulation sees every event, so it
	// drives the serial cross-check monitor too.
	var monitor *detector.Monitor
	var pop0 *agents.Population
	var prodWG sync.WaitGroup
	for pi := 0; pi < producers; pi++ {
		prodWG.Add(1)
		go func(pi int) {
			defer prodWG.Done()
			pub, err := stream.NewPublisher(srv.Addr(), fmt.Sprintf("p%d", pi), producers)
			if err != nil {
				panic(err)
			}
			pop := agents.NewPopulation(seed, agents.DefaultParams())
			feed := func(ev osn.Event) {
				if stream.PartitionActor(ev.Actor, producers) != pi {
					return
				}
				if err := pub.Publish(ev); err != nil {
					panic(err)
				}
			}
			if pi == 0 {
				pop0 = pop
				monitor = detector.NewMonitor(rule, pop.Net.Graph(), nil)
				// The monitor only consumes the friend-request
				// lifecycle; filtering here skips the feed events at
				// the dispatch layer.
				pop.Net.RegisterObserver(osn.FanOut(feed,
					osn.FilterTypes(monitor.Observe,
						osn.EvFriendRequest, osn.EvFriendAccept, osn.EvFriendReject)))
			} else {
				pop.Net.RegisterObserver(feed)
			}
			pop.Bootstrap(normals)
			pop.LaunchSybils(sybils, 100*sim.TicksPerHour)
			pop.RunFor(400 * sim.TicksPerHour)
			if err := pub.Close(); err != nil {
				panic(err)
			}
		}(pi)
	}
	prodWG.Wait()
	<-srv.IngestDone() // all three epochs closed
	srv.Close()        // drain the subscriber's replay window, then eof
	subWG.Wait()

	// Score the pipeline's verdicts against ground truth.
	tp, fp := 0, 0
	for _, id := range pipe.FlaggedIDs() {
		if pop0.Net.Account(id).Kind == osn.Sybil {
			tp++
		} else {
			fp++
		}
	}
	st := srv.Stats()
	fmt.Printf("streamed campaign: %s\n", pop0.Stats())
	line := ""
	for _, ps := range st.PerProducer {
		if line != "" {
			line += " | "
		}
		line += fmt.Sprintf("producer %s: epoch=%d events=%d", ps.ID, ps.Epoch, ps.Events)
	}
	fmt.Println(line)
	fmt.Printf("flagged over the wire (%d shards): %d sybils (of %d), %d normals (of %d)\n",
		shards, tp, len(pop0.Sybils), fp, len(pop0.Normals))
	fmt.Printf("serial in-process monitor flagged %d for comparison\n", monitor.FlaggedCount())
	pct := 0.0
	if st.Broadcast > 0 {
		pct = 100 * float64(st.Delivered) / float64(st.Broadcast)
	}
	fmt.Printf("feed audit: sent=%d delivered=%d (%.1f%%) evicted_sessions=%d\n",
		st.Broadcast, st.Delivered, pct, st.Evicted)
}
