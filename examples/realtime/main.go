// Realtime: the deployed architecture in one process — an OSN
// simulation streaming its operational log over TCP (renrend's role)
// and a sharded concurrent detection pipeline consuming the feed,
// reconstructing the graph, and flagging Sybils live (detectd's role).
// The OSN side uses osn.FanOut to drive two consumers off one observer
// registration: the wire broadcaster and an in-process serial Monitor
// that cross-checks the pipeline's verdicts.
package main

import (
	"fmt"
	"runtime"
	"sync"

	"sybilwild/internal/agents"
	"sybilwild/internal/detector"
	"sybilwild/internal/osn"
	"sybilwild/internal/sim"
	"sybilwild/internal/stream"
)

func main() {
	srv, err := stream.NewServer("127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	fmt.Println("event feed on", srv.Addr())

	rule := detector.Rule{OutAcceptMax: 0.5, FreqMin: 20, CCMax: 0.05, MinObserved: 10}

	// --- detector side (cmd/detectd in production): sharded pipeline
	// fed from the wire, rebuilding the friendship graph from accepts.
	shards := runtime.GOMAXPROCS(0)
	pipe := detector.NewPipeline(rule, nil,
		detector.WithShards(shards),
		detector.WithGraphReconstruction())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := stream.Subscribe(srv.Addr(), pipe.Observe, 5); err != nil {
			fmt.Println("subscriber error:", err)
		}
		pipe.Close()
	}()

	// --- OSN side (cmd/renrend in production): one observer hook fans
	// out to the feed broadcaster and a local serial reference monitor.
	pop := agents.NewPopulation(3, agents.DefaultParams())
	monitor := detector.NewMonitor(rule, pop.Net.Graph(), nil)
	pop.Net.RegisterObserver(osn.FanOut(
		func(ev osn.Event) { srv.Broadcast(ev) },
		// The monitor only consumes the friend-request lifecycle;
		// filtering here skips the feed events at the dispatch layer.
		osn.FilterTypes(monitor.Observe,
			osn.EvFriendRequest, osn.EvFriendAccept, osn.EvFriendReject),
	))
	pop.Bootstrap(3000)
	pop.LaunchSybils(40, 100*sim.TicksPerHour)
	pop.RunFor(400 * sim.TicksPerHour)
	srv.Close() // end of feed
	wg.Wait()

	// Score the pipeline's verdicts against ground truth.
	tp, fp := 0, 0
	for _, id := range pipe.FlaggedIDs() {
		if pop.Net.Account(id).Kind == osn.Sybil {
			tp++
		} else {
			fp++
		}
	}
	fmt.Printf("streamed campaign: %s\n", pop.Stats())
	fmt.Printf("flagged over the wire (%d shards): %d sybils (of %d), %d normals (of %d)\n",
		shards, tp, len(pop.Sybils), fp, len(pop.Normals))
	fmt.Printf("serial in-process monitor flagged %d for comparison\n", monitor.FlaggedCount())
	fmt.Printf("events dropped by feed backpressure: %d\n", srv.Dropped())
}
