// Realtime: the deployed architecture in one process — an OSN
// simulation streaming its operational log over TCP (renrend's role)
// and a detector daemon consuming the feed, reconstructing the graph,
// and flagging Sybils live (detectd's role).
package main

import (
	"fmt"
	"sync"

	"sybilwild/internal/agents"
	"sybilwild/internal/detector"
	"sybilwild/internal/features"
	"sybilwild/internal/graph"
	"sybilwild/internal/osn"
	"sybilwild/internal/sim"
	"sybilwild/internal/stream"
)

func main() {
	srv, err := stream.NewServer("127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	fmt.Println("event feed on", srv.Addr())

	// --- detector side (would be cmd/detectd in production) ---
	rule := detector.Rule{OutAcceptMax: 0.5, FreqMin: 20, CCMax: 0.05, MinObserved: 10}
	g := graph.New(0)
	tracker := features.NewTracker(g)
	flagged := map[osn.AccountID]bool{}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		err := stream.Subscribe(srv.Addr(), func(ev osn.Event) {
			for graph.NodeID(g.NumNodes()) <= max(ev.Actor, ev.Target) {
				g.AddNode()
			}
			if ev.Type == osn.EvFriendAccept {
				g.AddEdge(ev.Actor, ev.Target, ev.At)
			}
			tracker.Update(ev)
			if ev.Type == osn.EvFriendRequest && !flagged[ev.Actor] {
				if v := tracker.VectorOf(ev.Actor); rule.Classify(v) {
					flagged[ev.Actor] = true
				}
			}
		}, 5)
		if err != nil {
			fmt.Println("subscriber error:", err)
		}
	}()

	// --- OSN side (would be cmd/renrend in production) ---
	pop := agents.NewPopulation(3, agents.DefaultParams())
	pop.Net.RegisterObserver(func(ev osn.Event) { srv.Broadcast(ev) })
	pop.Bootstrap(3000)
	pop.LaunchSybils(40, 100*sim.TicksPerHour)
	pop.RunFor(400 * sim.TicksPerHour)
	srv.Close() // end of feed
	wg.Wait()

	// Score the daemon's verdicts against ground truth.
	tp, fp := 0, 0
	for id := range flagged {
		if pop.Net.Account(id).Kind == osn.Sybil {
			tp++
		} else {
			fp++
		}
	}
	fmt.Printf("streamed campaign: %s\n", pop.Stats())
	fmt.Printf("flagged over the wire: %d sybils (of %d), %d normals (of %d)\n",
		tp, len(pop.Sybils), fp, len(pop.Normals))
	fmt.Printf("events dropped by feed backpressure: %d\n", srv.Dropped())
}

func max(a, b osn.AccountID) osn.AccountID {
	if a > b {
		return a
	}
	return b
}
