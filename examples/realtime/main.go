// Command realtime runs the deployed architecture in one process — an
// OSN simulation streaming its operational log over the v2 TCP feed
// (renrend's role) and a sharded concurrent detection pipeline
// consuming the feed at batch granularity, reconstructing the graph,
// and flagging Sybils live (detectd's role). The OSN side uses
// osn.FanOut to drive two consumers off one observer registration:
// the wire broadcaster and an in-process serial Monitor that
// cross-checks the pipeline's verdicts.
//
// The v2 feed is at-least-once, so the run ends with an ack-based
// audit instead of v1's dropped-events counter. Expected output
// (exact counts vary with GOMAXPROCS-dependent interleaving):
//
//	event feed on 127.0.0.1:NNNNN
//	streamed campaign: accounts=3040 (normal=3000 sybil=40) edges=~35000 events=~100000
//	flagged over the wire (N shards): 39 sybils (of 40), 0 normals (of 3000)
//	serial in-process monitor flagged 39 for comparison
//	feed audit: sent=99535 delivered=99535 (100.0%) evicted_sessions=0
//
// The audit line is the delivery contract made visible: delivered
// equals sent (every broadcast event was consumed and acknowledged by
// the subscriber) and no session was evicted, i.e. the wire lost
// nothing even when the pipeline briefly lagged the simulation.
package main

import (
	"fmt"
	"runtime"
	"sync"

	"sybilwild/internal/agents"
	"sybilwild/internal/detector"
	"sybilwild/internal/osn"
	"sybilwild/internal/sim"
	"sybilwild/internal/stream"
)

func main() {
	srv, err := stream.NewServer("127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	fmt.Println("event feed on", srv.Addr())

	rule := detector.Rule{OutAcceptMax: 0.5, FreqMin: 20, CCMax: 0.05, MinObserved: 10}

	// --- detector side (cmd/detectd in production): sharded pipeline
	// fed whole wire batches, rebuilding the friendship graph from
	// accepts. SubscribeBatch resumes the session on connection loss,
	// so the pipeline sees every event exactly once.
	shards := runtime.GOMAXPROCS(0)
	pipe := detector.NewPipeline(rule, nil,
		detector.WithShards(shards),
		detector.WithGraphReconstruction())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := stream.SubscribeBatch(srv.Addr(), pipe.ObserveBatch, 5); err != nil {
			fmt.Println("subscriber error:", err)
		}
		pipe.Close()
	}()

	// --- OSN side (cmd/renrend in production): one observer hook fans
	// out to the feed broadcaster and a local serial reference monitor.
	pop := agents.NewPopulation(3, agents.DefaultParams())
	monitor := detector.NewMonitor(rule, pop.Net.Graph(), nil)
	pop.Net.RegisterObserver(osn.FanOut(
		func(ev osn.Event) { srv.Broadcast(ev) },
		// The monitor only consumes the friend-request lifecycle;
		// filtering here skips the feed events at the dispatch layer.
		osn.FilterTypes(monitor.Observe,
			osn.EvFriendRequest, osn.EvFriendAccept, osn.EvFriendReject),
	))
	pop.Bootstrap(3000)
	pop.LaunchSybils(40, 100*sim.TicksPerHour)
	pop.RunFor(400 * sim.TicksPerHour)
	srv.Close() // end of feed: drains the replay window, then eof
	wg.Wait()

	// Score the pipeline's verdicts against ground truth.
	tp, fp := 0, 0
	for _, id := range pipe.FlaggedIDs() {
		if pop.Net.Account(id).Kind == osn.Sybil {
			tp++
		} else {
			fp++
		}
	}
	fmt.Printf("streamed campaign: %s\n", pop.Stats())
	fmt.Printf("flagged over the wire (%d shards): %d sybils (of %d), %d normals (of %d)\n",
		shards, tp, len(pop.Sybils), fp, len(pop.Normals))
	fmt.Printf("serial in-process monitor flagged %d for comparison\n", monitor.FlaggedCount())
	st := srv.Stats()
	pct := 0.0
	if st.Broadcast > 0 {
		pct = 100 * float64(st.Delivered) / float64(st.Broadcast)
	}
	fmt.Printf("feed audit: sent=%d delivered=%d (%.1f%%) evicted_sessions=%d\n",
		st.Broadcast, st.Delivered, pct, st.Evicted)
}
