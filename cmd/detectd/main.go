// Command detectd is the real-time Sybil detector daemon: it
// subscribes to a renrend event feed, reconstructs the friendship
// graph from accept events, tracks the paper's behavioural features
// incrementally, and reports accounts crossing the detection
// thresholds the moment they do.
//
// Usage:
//
//	detectd -addr 127.0.0.1:7474
package main

import (
	"flag"
	"fmt"
	"log"

	"sybilwild/internal/detector"
	"sybilwild/internal/features"
	"sybilwild/internal/graph"
	"sybilwild/internal/osn"
	"sybilwild/internal/stream"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("detectd: ")
	var (
		addr       = flag.String("addr", "127.0.0.1:7474", "renrend feed address")
		outAccept  = flag.Float64("out-accept", 0.5, "max outgoing accept ratio")
		freqMin    = flag.Float64("freq", 20, "min invitations/hour")
		ccMax      = flag.Float64("cc", 0.05, "max first-50-friends clustering coefficient")
		minObs     = flag.Int("min-requests", 10, "requests observed before judging")
		retries    = flag.Int("retries", 10, "max consecutive reconnect attempts")
		checkEvery = flag.Int("check-every", 5, "evaluate an account every Nth request it sends")
	)
	flag.Parse()

	rule := detector.Rule{
		OutAcceptMax: *outAccept,
		FreqMin:      *freqMin,
		CCMax:        *ccMax,
		MinObserved:  *minObs,
	}
	fmt.Printf("rule: %v\nsubscribing to %s\n", rule, *addr)

	// The daemon rebuilds the friendship graph from the feed: an accept
	// event is an edge creation.
	g := graph.New(0)
	ensure := func(id osn.AccountID) {
		for graph.NodeID(g.NumNodes()) <= id {
			g.AddNode()
		}
	}
	tracker := features.NewTracker(g)
	flagged := map[osn.AccountID]bool{}
	sent := map[osn.AccountID]int{}
	events := 0

	err := stream.Subscribe(*addr, func(ev osn.Event) {
		events++
		ensure(ev.Actor)
		ensure(ev.Target)
		if ev.Type == osn.EvFriendAccept {
			g.AddEdge(ev.Actor, ev.Target, ev.At)
		}
		tracker.Update(ev)
		if ev.Type != osn.EvFriendRequest || flagged[ev.Actor] {
			return
		}
		// Evaluating costs a clustering-coefficient computation; sample
		// every Nth request per account to keep up with the feed.
		sent[ev.Actor]++
		if sent[ev.Actor]%*checkEvery != 0 {
			return
		}
		if v := tracker.VectorOf(ev.Actor); rule.Classify(v) {
			flagged[ev.Actor] = true
			fmt.Printf("FLAG account %d at t=%d: freq=%.1f/h outAccept=%.2f cc=%.4f sent=%d\n",
				ev.Actor, ev.At, v.Freq1h, v.OutAccept, v.CC, v.OutSent)
		}
	}, *retries)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("feed ended: %d events, %d accounts tracked, %d flagged\n",
		events, tracker.Tracked(), len(flagged))
}
