// Command detectd is the real-time Sybil detector daemon: it
// subscribes to a renrend event feed, reconstructs the friendship
// graph from accept events, tracks the paper's behavioural features
// incrementally, and reports accounts crossing the detection
// thresholds the moment they do.
//
// Detection runs on a sharded concurrent pipeline: accounts are
// hash-partitioned across -shards workers (default GOMAXPROCS), each
// owning its slice of feature state, so classification keeps up with
// production-scale feeds. Ingestion rides the v2 feed protocol at
// batch granularity: each sequenced wire batch enters the pipeline
// through one Ingest call (one channel hop per shard), and the subscription
// resumes from the last applied sequence if the connection drops, so
// a network blip costs no events (see docs/ARCHITECTURE.md for the
// delivery contract).
//
// With -checkpoint-dir the daemon is durable: every -checkpoint-every
// it runs a consistent Pipeline.Snapshot, writes it as an atomic
// versioned checkpoint file, and only then acknowledges the feed
// through the checkpointed sequence — so the server retains exactly
// the events a crash would need replayed. On start the newest
// checkpoint is restored and the stream resumed from the sequence it
// covers, making even kill -9 recovery exactly-once: the flag set
// matches an uninterrupted run. When the feed spools to disk (renrend
// -spool-dir) the resume succeeds from any retained sequence — a cold
// start from an arbitrarily stale checkpoint replays from segment
// files, far past the feed's in-memory replay window. SIGINT/SIGTERM
// write a final checkpoint and close the pipeline cleanly. With
// -from-start a brand-new daemon (no checkpoint) instead backfills
// the feed's entire spooled history from sequence 1 before flipping
// live — useful against a streamd broker whose campaign is already
// streaming or complete.
//
// With -partition i/K the daemon joins a detection cluster: the
// broker filters its subscription down to partition i of K (owned
// actors plus the cross-partition support events their features need)
// and the pipeline flags only accounts it owns, so K such daemons
// jointly produce exactly the flag set one unpartitioned daemon would
// (see docs/ARCHITECTURE.md, "Partitioned cluster"). Adding -handoff
// makes the partition migratable over the wire: the daemon offers its
// snapshot to the broker at every checkpoint interval and on clean
// shutdown, and a fresh daemon with no local checkpoint adopts the
// broker's freshest offer — resuming from the snapshot's stamped
// sequence instead of replaying the partition's history. A local
// checkpoint, when present, takes precedence over a broker offer; its
// stamped partition must match -partition or the daemon refuses to
// start.
//
// Two cluster-operations modes ride on the same binary. With
// -rebalance K/K' the daemon runs as a one-shot coordinator instead
// of a detector: it fences the running K-way group at a barrier,
// collects the old workers' snapshots exactly at the cut, re-keys them
// into K' partition snapshots, offers the new set, and commits — the
// old daemons retire cleanly ("rebalanced ... retiring") and K' fresh
// daemons started with -partition i/K' -handoff adopt the state and
// resume from barrier+1, with no event judged twice and no feed pause
// (see docs/ARCHITECTURE.md, "Live rebalance"). With -standby the
// daemon parks as a warm standby for its -partition: it watches the
// broker and, when the partition's worker dies, claims the key (of N
// standbys exactly one wins), adopts the freshest broker snapshot, and
// promotes itself — unattended failover with zero replay.
//
// -addr accepts any broker in a relay tree (streamd -relay): edge
// brokers serve the identical feed — same global sequences, same
// frames byte-for-byte — plus partitioned subscriptions and the
// snapshot rendezvous, so large clusters spread their workers across
// edges instead of crowding the root (see docs/ARCHITECTURE.md,
// "Relay tier").
//
// Usage:
//
//	detectd -addr 127.0.0.1:7474 -shards 8 \
//	        -checkpoint-dir /var/lib/detectd -checkpoint-every 10s
//	detectd -addr 127.0.0.1:7474 -partition 2/4 -handoff
//	detectd -addr 127.0.0.1:7474 -rebalance 4/2
//	detectd -addr 127.0.0.1:7474 -partition 1/2 -handoff -standby
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"sybilwild/internal/checkpoint"
	"sybilwild/internal/cluster"
	"sybilwild/internal/detector"
	"sybilwild/internal/osn"
	"sybilwild/internal/stream"
)

// daemon is the mutable run state shared between the ingest loop and
// the signal handler.
type daemon struct {
	store *checkpoint.Store // nil: checkpointing disabled
	p     *detector.Pipeline

	addr        string // broker address (snapshot offers dial it separately)
	part, parts int    // cluster partition (parts 0: whole feed)
	handoff     bool   // offer snapshots to the broker for handoff

	session   string // stream session id ("" until first dial)
	sessionID string // pre-claimed session id to dial with (standby promotion)
	resume    uint64 // sequence to resume from (0: fresh subscription)
	written   uint64 // sequence covered by the newest durable checkpoint

	mu      sync.Mutex
	current *stream.Client // connection to kick on shutdown
	stop    atomic.Bool

	events, batches, checkpoints, offers int
}

// parsePartition decodes an "i/K" cluster coordinate; "" means an
// unpartitioned whole-feed subscription.
func parsePartition(s string) (part, parts int, err error) {
	if s == "" {
		return 0, 0, nil
	}
	if n, err := fmt.Sscanf(s, "%d/%d", &part, &parts); n != 2 || err != nil {
		return 0, 0, fmt.Errorf("-partition %q: want i/K, e.g. 0/4", s)
	}
	if parts < 1 || part < 0 || part >= parts {
		return 0, 0, fmt.Errorf("-partition %q: partition index out of range", s)
	}
	return part, parts, nil
}

// parseRebalanceSpec decodes a "K/K'" resize spec for -rebalance.
func parseRebalanceSpec(s string) (from, to int, err error) {
	if n, err := fmt.Sscanf(s, "%d/%d", &from, &to); n != 2 || err != nil {
		return 0, 0, fmt.Errorf("-rebalance %q: want K/K', e.g. 3/5", s)
	}
	if from < 2 || to < 1 || from == to {
		return 0, 0, fmt.Errorf("-rebalance %q: need K >= 2, K' >= 1, K != K'", s)
	}
	return from, to, nil
}

// watchAndClaim polls the broker until the partition qualifies for
// promotion — seen before, nothing connected, a snapshot to adopt, and
// no rebalance fence (a fence means a coordinator owns recovery) — for
// a few consecutive polls, then claims it under a fresh session id.
// A lost claim (another standby won) just resumes watching. Blocks
// until the claim is won.
func watchAndClaim(addr string, part, parts int) string {
	const confirm = 3
	streak := 0
	for {
		time.Sleep(50 * time.Millisecond)
		st, err := stream.QueryPartition(addr, part, parts)
		if err != nil || !(st.Seen && st.Connected == 0 && st.SnapshotSeq > 0 && st.Barrier == 0) {
			streak = 0
			continue
		}
		if streak++; streak < confirm {
			continue
		}
		session := stream.NewSessionID()
		if err := stream.ClaimPartition(addr, part, parts, session); err != nil {
			streak = 0
			continue
		}
		return session
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("detectd: ")
	var (
		addr       = flag.String("addr", "127.0.0.1:7474", "renrend feed address")
		outAccept  = flag.Float64("out-accept", 0.5, "max outgoing accept ratio")
		freqMin    = flag.Float64("freq", 20, "min invitations/hour")
		ccMax      = flag.Float64("cc", 0.05, "max first-50-friends clustering coefficient")
		minObs     = flag.Int("min-requests", 10, "requests observed before judging")
		retries    = flag.Int("retries", 10, "max consecutive reconnect attempts")
		fromStart  = flag.Bool("from-start", false, "backfill the feed from sequence 1 (the server's spool must retain it) instead of joining at the live head; ignored when a checkpoint already pins the resume point")
		checkEvery = flag.Int("check-every", 5, "evaluate an account every Nth request it sends")
		shards     = flag.Int("shards", runtime.GOMAXPROCS(0), "detection pipeline shards")
		ckptDir    = flag.String("checkpoint-dir", "", "directory for pipeline checkpoints (empty: stateless)")
		ckptEvery  = flag.Duration("checkpoint-every", 10*time.Second, "interval between checkpoints")
		ckptKeep   = flag.Int("checkpoint-keep", checkpoint.DefaultKeep, "checkpoint generations to retain")
		ckptMaxLag = flag.Int("checkpoint-max-lag", stream.DefaultReplayBuffer/2,
			"checkpoint early once this many events are applied past the last checkpoint; must stay below the feed's replay window unless the feed runs a disk spool, where 0 disables the trigger")
		partition = flag.String("partition", "", "subscribe as partition i/K of a detection cluster (e.g. 0/4; empty: whole feed)")
		handoff   = flag.Bool("handoff", false, "offer pipeline snapshots to the broker every -checkpoint-every and adopt the partition's freshest broker snapshot on a start with no local checkpoint (requires -partition)")
		rebalance = flag.String("rebalance", "", "coordinate a live cluster rebalance K/K' (e.g. 3/5) against -addr and exit: fence the old group at a barrier, re-key its snapshots, commit — no daemon mode")
		rebTime   = flag.Duration("rebalance-timeout", time.Minute, "how long -rebalance waits for the old workers' snapshots to rendezvous at the barrier")
		standby   = flag.Bool("standby", false, "watch -partition instead of subscribing: promote automatically (claim the key, adopt the freshest broker snapshot, resume) when its worker dies; requires -partition and -handoff")
	)
	flag.Parse()
	if *rebalance != "" {
		from, to, err := parseRebalanceSpec(*rebalance)
		if err != nil {
			log.Fatal(err)
		}
		barrier, err := cluster.Rebalance(*addr, from, to, *rebTime)
		if err != nil {
			log.Fatalf("rebalance %d -> %d: %v", from, to, err)
		}
		fmt.Printf("rebalanced %d -> %d at barrier %d: old workers retired at %d, new workers adopt and resume from %d\n",
			from, to, barrier, barrier, barrier+1)
		return
	}
	part, parts, err := parsePartition(*partition)
	if err != nil {
		log.Fatal(err)
	}
	if *handoff && parts == 0 {
		log.Fatal("-handoff requires -partition: snapshot handoff is keyed by cluster partition")
	}
	if *standby && !(parts > 0 && *handoff) {
		log.Fatal("-standby requires -partition and -handoff: promotion adopts the dead worker's broker snapshot")
	}
	if *ckptDir != "" && *ckptMaxLag < 0 {
		log.Fatal("-checkpoint-max-lag must not be negative")
	}
	if *ckptDir != "" && *ckptMaxLag == 0 {
		// Without the lag trigger, acks move only on the wall-clock
		// interval. Against a memory-only feed whose replay window is
		// smaller than one interval's traffic that deadlocks the
		// producer/consumer pair (broken only by stall eviction); a
		// spooled feed demotes us to disk catch-up instead, so there it
		// is merely a retention trade-off.
		log.Print("warning: -checkpoint-max-lag 0 disables the lag trigger; only safe when the feed spools to disk (renrend -spool-dir)")
	}

	rule := detector.Rule{
		OutAcceptMax: *outAccept,
		FreqMin:      *freqMin,
		CCMax:        *ccMax,
		MinObserved:  *minObs,
	}
	opts := []detector.PipelineOption{
		detector.WithShards(*shards),
		detector.WithGraphReconstruction(),
		detector.WithCheckEvery(*checkEvery),
		detector.WithFlagHook(func(f detector.Flag) {
			fmt.Printf("FLAG account %d at t=%d: freq=%.1f/h outAccept=%.2f cc=%.4f sent=%d\n",
				f.ID, f.At, f.Vector.Freq1h, f.Vector.OutAccept, f.Vector.CC, f.Vector.OutSent)
		}),
	}
	if parts > 0 {
		opts = append(opts, detector.WithPartition(part, parts))
	}

	d := &daemon{addr: *addr, part: part, parts: parts, handoff: *handoff}
	if *ckptDir != "" {
		store, err := checkpoint.Open(*ckptDir, *ckptKeep)
		if err != nil {
			log.Fatal(err)
		}
		d.store = store
		st, path, err := store.Latest()
		if err != nil {
			log.Fatal(err)
		}
		if st != nil {
			// Restored pipelines keep the snapshot's graph mode; the
			// WithShards override still applies, so operators can change
			// shard counts across restarts.
			p, from, err := detector.NewPipelineFromSnapshot(rule, nil, st.Snapshot, opts...)
			if err != nil {
				log.Fatalf("restore %s: %v", path, err)
			}
			d.p = p
			d.session = st.Session
			d.resume = from
			d.written = st.Snapshot.Seq
			fmt.Printf("restored %s: %d accounts, %d flags, resuming feed at seq %d\n",
				path, len(st.Snapshot.Accounts), len(st.Snapshot.Flags), from)
		}
	}
	if *standby {
		// Watch the partition until its worker dies, then claim the key
		// so exactly one of N standbys promotes. The claim's session id
		// is what the promoted subscription must dial with — the broker
		// admits only it while the claim is fresh. Blocking: the daemon
		// is a warm standby until the claim is won.
		fmt.Printf("standby: watching partition %d/%d on %s\n", part, parts, *addr)
		d.sessionID = watchAndClaim(*addr, part, parts)
		fmt.Printf("standby: promoting as partition %d/%d\n", part, parts)
	}
	if d.p == nil && *handoff {
		// No local checkpoint: adopt the partition's freshest broker
		// snapshot, if a predecessor offered one, and resume the feed
		// from the sequence it is stamped at — state migration over
		// the wire instead of a spool replay.
		seq, data, err := stream.FetchSnapshot(*addr, part, parts)
		switch {
		case err == nil:
			var snap detector.PipelineSnapshot
			if err := json.Unmarshal(data, &snap); err != nil {
				log.Fatalf("decode broker snapshot: %v", err)
			}
			if snap.Seq != seq {
				log.Fatalf("broker snapshot announced seq %d but is stamped %d", seq, snap.Seq)
			}
			p, from, err := detector.NewPipelineFromSnapshot(rule, nil, &snap, opts...)
			if err != nil {
				log.Fatalf("adopt broker snapshot: %v", err)
			}
			d.p = p
			d.resume = from
			fmt.Printf("adopted broker snapshot for partition %d/%d: %d accounts, %d flags, resuming feed at seq %d\n",
				part, parts, len(snap.Accounts), len(snap.Flags), from)
		case errors.Is(err, stream.ErrNoSnapshot):
			fmt.Printf("no broker snapshot offered for partition %d/%d; cold start\n", part, parts)
		default:
			log.Fatalf("fetch broker snapshot: %v", err)
		}
	}
	if d.p == nil {
		// The pipeline rebuilds the friendship graph from the feed (an
		// accept event is an edge creation) and fans events out to the
		// shard owning each account.
		d.p = detector.NewPipeline(rule, nil, opts...)
		if *fromStart {
			// Replay the feed's whole history (spool-served) before
			// going live — a brand-new detector catching up on a
			// campaign that already streamed.
			d.resume = 1
		}
	}
	fmt.Printf("rule: %v\nsubscribing to %s (%d shards)\n", rule, *addr, *shards)

	// First signal: kick the connection so the ingest loop unblocks,
	// writes the final checkpoint and exits cleanly. Second: die.
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		fmt.Println("signal: writing final checkpoint and shutting down")
		d.stop.Store(true)
		d.mu.Lock()
		if d.current != nil {
			// Interrupt, not Kick: the ingest loop still needs the
			// connection to carry the final checkpoint's ack.
			d.current.Interrupt()
		}
		d.mu.Unlock()
		<-sigc
		log.Fatal("second signal: exiting without checkpoint")
	}()

	err = d.run(*addr, *retries, *ckptEvery, uint64(*ckptMaxLag))
	if d.store != nil {
		d.finalCheckpoint()
	}
	if d.handoff {
		// Park the end state at the broker so a planned successor
		// adopts it with zero replay.
		d.offerSnapshot(d.p.Snapshot())
	}
	d.p.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("feed ended: %d events in %d batches, %d checkpoints, %d snapshot offers, %d accounts tracked, %d flagged\n",
		d.events, d.batches, d.checkpoints, d.offers, d.p.Tracked(), d.p.FlaggedCount())
}

// run is the ingest loop: dial (or resume), drain batches into the
// pipeline, checkpoint on the interval, reconnect on connection loss.
// It returns nil on clean end of feed or operator shutdown.
//
// Checkpoints fire on two triggers: the wall-clock interval, and —
// the liveness-critical one — applied progress reaching maxLag events
// past the last durable checkpoint. The lag trigger is what keeps a
// fast feed flowing: manual acks only move at checkpoints, so if the
// consumer could drain the server's whole replay window between
// checkpoints, the producer would block on a full window while the
// consumer blocked in RecvBatch waiting for it — a deadlock broken
// only by stall-timeout eviction. Acking by maxLag < window capacity
// makes that state unreachable.
func (d *daemon) run(addr string, maxRetries int, every time.Duration, maxLag uint64) error {
	backoff := 50 * time.Millisecond
	consecutive := 0
	lastCkpt := time.Now()
	for {
		if d.stop.Load() {
			return nil
		}
		var dialOpts []stream.DialOption
		if d.parts > 0 {
			dialOpts = append(dialOpts, stream.WithPartition(d.part, d.parts))
		}
		if d.session == "" && d.sessionID != "" {
			// Standby promotion: the first dial must present the claimed
			// session id or the broker rejects it while the claim is
			// fresh. Resumes reuse d.session as usual.
			dialOpts = append(dialOpts, stream.WithSessionID(d.sessionID))
		}
		var c *stream.Client
		var err error
		switch {
		case d.session != "":
			c, err = stream.DialResume(addr, d.session, d.resume, dialOpts...)
		case d.resume > 0:
			// -from-start backfill or snapshot handoff: a fresh session
			// that asks for history (spool-served) before flipping live.
			c, err = stream.DialFrom(addr, d.resume, dialOpts...)
		default:
			c, err = stream.Dial(addr, dialOpts...)
		}
		if err != nil {
			if errors.Is(err, stream.ErrGap) {
				if d.session == "" {
					// The -from-start backfill was refused: there is no
					// stale local state, the feed just doesn't retain the
					// requested history.
					return fmt.Errorf("feed cannot serve the -from-start backfill (history pruned or not spooled) — raise the feed's spool retention or drop -from-start: %w", err)
				}
				return fmt.Errorf("feed lost our resume window — state is stale, remove the checkpoint dir to rebuild from scratch: %w", err)
			}
			consecutive++
			if consecutive > maxRetries {
				return err
			}
			time.Sleep(backoff)
			if backoff < 2*time.Second {
				backoff *= 2
			}
			continue
		}
		consecutive = 0
		backoff = 50 * time.Millisecond
		// With checkpointing on, acks follow checkpoints (not
		// deliveries): the feed holds everything since the last durable
		// snapshot, which is exactly the crash-replay window.
		c.SetManualAck(d.store != nil)
		d.session = c.Session()
		// Anchor the pipeline's stream position to the subscription
		// point: a fresh feed may hand us sequences starting anywhere,
		// and a checkpoint cut before the first batch must still record
		// a sequence the server will accept a resume from.
		if c.LastSeq() > d.p.Seq() {
			d.p.Ingest(detector.Batch{LastSeq: c.LastSeq()})
		}
		d.mu.Lock()
		d.current = c
		d.mu.Unlock()
		if d.stop.Load() {
			// The signal landed while dialing, before d.current was
			// visible to the handler; deliver the interrupt ourselves.
			c.Interrupt()
		}

		for {
			var evs []osn.Event
			evs, err = c.RecvBatch()
			if err != nil {
				break
			}
			// Resuming from the last durable checkpoint can replay
			// events the in-memory pipeline already applied (a blip
			// whose pre-resume checkpoint failed); counters are not
			// idempotent, so drop everything at or below the pipeline's
			// own sequence. Partitioned batches are sparse in the
			// global order and carry per-event sequences, so the trim
			// walks those instead of doing contiguous arithmetic.
			last := c.LastSeq()
			if last <= d.p.Seq() {
				continue
			}
			if seqs := c.LastBatchSeqs(); seqs != nil {
				drop := 0
				for drop < len(seqs) && seqs[drop] <= d.p.Seq() {
					drop++
				}
				evs = evs[drop:]
			} else if first := last - uint64(len(evs)) + 1; first <= d.p.Seq() {
				evs = evs[d.p.Seq()-first+1:]
			}
			d.p.Ingest(detector.Batch{Events: evs, LastSeq: last})
			d.events += len(evs)
			d.batches++
			interval := time.Since(lastCkpt) >= every
			lag := d.store != nil && maxLag > 0 && d.p.Seq()-d.written >= maxLag
			if (d.store != nil || d.handoff) && (interval || lag) {
				d.writeCheckpoint(c)
				lastCkpt = time.Now()
			}
		}
		d.mu.Lock()
		d.current = nil
		d.mu.Unlock()
		if errors.Is(err, stream.ErrRebalanced) {
			// The cluster was resized out from under this shape: the
			// broker served everything owed through the barrier and
			// fenced the rest. Pin the pipeline to the barrier, offer the
			// snapshot cut exactly there (the coordinator's rendezvous),
			// and retire — a new-shape worker inherits the state.
			barrier, nparts, _ := c.Rebalanced()
			if barrier > d.p.Seq() {
				d.p.Ingest(detector.Batch{LastSeq: barrier})
			}
			if d.store != nil || d.handoff {
				d.writeCheckpoint(c)
			}
			c.Close()
			fmt.Printf("partition group %d rebalanced to %d at barrier %d; retiring\n",
				d.parts, nparts, barrier)
			return nil
		}
		if errors.Is(err, stream.ErrClosed) {
			// Clean end of feed: checkpoint and ack through the final
			// sequence while the connection can still carry the ack, so
			// the producer's sent==delivered audit holds.
			if d.store != nil {
				d.writeCheckpoint(c)
			}
			c.Close()
			return nil
		}
		if d.stop.Load() {
			// Operator shutdown: checkpoint and push the ack through the
			// interrupted-but-alive connection so the feed's accounting
			// reflects what is durably applied, then hang up.
			if d.store != nil {
				d.writeCheckpoint(c)
			}
			c.Close()
			return nil
		}
		c.Close()
		// Connection lost mid-stream. Checkpoint before resuming:
		// DialResume implicitly acks everything below the resume
		// sequence, so the resume point must never run ahead of the
		// newest durable snapshot — if the checkpoint write fails, we
		// resume from the previous durable generation instead and let
		// the dedupe guard above skip the replayed prefix.
		if d.store != nil {
			d.writeCheckpoint(nil)
			lastCkpt = time.Now()
		}
		if d.written > 0 {
			d.resume = d.written + 1
		} else {
			// No durable state yet (fresh session, first checkpoint
			// failed): nothing to protect, resume at delivery position.
			d.resume = c.LastSeq() + 1
		}
	}
}

// writeCheckpoint snapshots the pipeline, persists it (when a local
// store is configured), and — once the file is durable — acknowledges
// the feed through the snapshot's sequence (when a live connection is
// available to carry the ack). With -handoff the same snapshot is
// also offered to the broker for cluster handoff. Failures are
// logged, not fatal: the daemon keeps detecting, the previous
// checkpoint generation keeps crash recovery possible, and the
// broker's previous offer (or the spool) keeps handoff possible.
func (d *daemon) writeCheckpoint(c *stream.Client) {
	snap := d.p.Snapshot()
	if d.handoff {
		d.offerSnapshot(snap)
	}
	if d.store == nil {
		return
	}
	if _, err := d.store.Write(d.session, snap); err != nil {
		log.Printf("checkpoint failed (previous generation still valid): %v", err)
		return
	}
	d.checkpoints++
	d.written = snap.Seq
	if c != nil {
		c.Ack(snap.Seq)
	}
}

// offerSnapshot publishes a snapshot to the broker's handoff
// rendezvous, keyed by this daemon's cluster partition. Best-effort.
func (d *daemon) offerSnapshot(snap *detector.PipelineSnapshot) {
	if snap.Seq == 0 {
		return // nothing applied yet; nothing worth adopting
	}
	data, err := json.Marshal(snap)
	if err != nil {
		log.Printf("snapshot offer failed to encode: %v", err)
		return
	}
	if err := stream.OfferSnapshot(d.addr, d.part, d.parts, snap.Seq, data); err != nil {
		log.Printf("snapshot offer failed (broker keeps the previous offer): %v", err)
		return
	}
	d.offers++
}

// finalCheckpoint persists the pipeline's end state so the next start
// resumes cleanly even after a graceful shutdown mid-campaign. No-op
// when the newest checkpoint already covers everything applied.
func (d *daemon) finalCheckpoint() {
	if d.written == d.p.Seq() && d.checkpoints > 0 {
		return
	}
	snap := d.p.Snapshot()
	if path, err := d.store.Write(d.session, snap); err != nil {
		log.Printf("final checkpoint failed: %v", err)
	} else {
		d.checkpoints++
		d.written = snap.Seq
		fmt.Printf("final checkpoint %s (seq %d, %d accounts, %d flags)\n",
			path, snap.Seq, len(snap.Accounts), len(snap.Flags))
	}
}
