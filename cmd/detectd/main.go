// Command detectd is the real-time Sybil detector daemon: it
// subscribes to a renrend event feed, reconstructs the friendship
// graph from accept events, tracks the paper's behavioural features
// incrementally, and reports accounts crossing the detection
// thresholds the moment they do.
//
// Detection runs on a sharded concurrent pipeline: accounts are
// hash-partitioned across -shards workers (default GOMAXPROCS), each
// owning its slice of feature state, so classification keeps up with
// production-scale feeds. Ingestion rides the v2 feed protocol at
// batch granularity: each wire batch enters the pipeline through
// ObserveBatch (one channel hop per shard), and the subscription
// resumes from the last delivered sequence if the connection drops,
// so a network blip costs no events (see docs/ARCHITECTURE.md for the
// delivery contract).
//
// Usage:
//
//	detectd -addr 127.0.0.1:7474 -shards 8
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"

	"sybilwild/internal/detector"
	"sybilwild/internal/osn"
	"sybilwild/internal/stream"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("detectd: ")
	var (
		addr       = flag.String("addr", "127.0.0.1:7474", "renrend feed address")
		outAccept  = flag.Float64("out-accept", 0.5, "max outgoing accept ratio")
		freqMin    = flag.Float64("freq", 20, "min invitations/hour")
		ccMax      = flag.Float64("cc", 0.05, "max first-50-friends clustering coefficient")
		minObs     = flag.Int("min-requests", 10, "requests observed before judging")
		retries    = flag.Int("retries", 10, "max consecutive reconnect attempts")
		checkEvery = flag.Int("check-every", 5, "evaluate an account every Nth request it sends")
		shards     = flag.Int("shards", runtime.GOMAXPROCS(0), "detection pipeline shards")
	)
	flag.Parse()

	rule := detector.Rule{
		OutAcceptMax: *outAccept,
		FreqMin:      *freqMin,
		CCMax:        *ccMax,
		MinObserved:  *minObs,
	}
	fmt.Printf("rule: %v\nsubscribing to %s (%d shards)\n", rule, *addr, *shards)

	// The pipeline rebuilds the friendship graph from the feed (an
	// accept event is an edge creation) and fans events out to the
	// shard owning each account.
	p := detector.NewPipeline(rule, nil,
		detector.WithShards(*shards),
		detector.WithGraphReconstruction(),
		detector.WithCheckEvery(*checkEvery),
		detector.WithFlagHook(func(f detector.Flag) {
			fmt.Printf("FLAG account %d at t=%d: freq=%.1f/h outAccept=%.2f cc=%.4f sent=%d\n",
				f.ID, f.At, f.Vector.Freq1h, f.Vector.OutAccept, f.Vector.CC, f.Vector.OutSent)
		}))

	events, batches := 0, 0
	err := stream.SubscribeBatch(*addr, func(evs []osn.Event) {
		events += len(evs)
		batches++
		p.ObserveBatch(evs)
	}, *retries)
	p.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("feed ended: %d events in %d batches, %d accounts tracked, %d flagged\n",
		events, batches, p.Tracked(), p.FlaggedCount())
}
