// Command streamd is the standalone feed broker: it owns the stream
// server that renrend used to embed, admitting any number of wire
// producers (renrend -publish) on one side and feed subscribers
// (detectd) on the other. Producer batches are merged by a single
// global sequencer into one totally ordered feed — the topology the
// paper's measurement ran against, where Renren's behavioral logs
// arrived from many frontend sources at once.
//
// Producers speak the publish sub-protocol: each registers with a
// producer id and the size of its producer group, publishes batches
// numbered by a per-producer sequence (so reconnect resends
// deduplicate), and closes its epoch with peof. The broker holds the
// downstream eof until every producer in the group has closed, then
// drains each subscriber's replay window and exits with the
// sent-vs-delivered audit aggregated across producers.
//
// With -spool-dir the merged feed also persists to segment files, so
// a subscriber may backfill the entire campaign from sequence 1
// (detectd -from-start) or cold-start from a stale checkpoint far
// past the in-memory window — regardless of which producer each
// event came from.
//
// Subscribers may also join partitioned (detectd -partition i/K): the
// broker filters each such session's feed down to its partition's
// slice and keeps one detector snapshot per partition in a handoff
// rendezvous, so a replacement worker adopts its predecessor's state
// over the wire (see docs/ARCHITECTURE.md, "Partitioned cluster").
// Held snapshots are reported in the end-of-feed audit.
//
// With -relay the broker becomes an interior node of a relay tree
// instead of a producer-facing root: it subscribes to the upstream
// broker as a resumable session and adopts its frames verbatim —
// upstream global sequences preserved, canonical bytes spooled and
// fanned out with zero re-encodes — while serving downstream
// subscribers (plain, partitioned, snapshot rendezvous) exactly like
// a root. A relay prints a per-hop audit line at each stats interval
// and exits when the upstream feed ends, after draining its own
// subscribers (eof propagates down the tree). Producers cannot
// publish to a relay: sequence adoption and local sequencing don't
// mix.
//
// Usage:
//
//	streamd -addr 127.0.0.1:7474 -spool-dir /var/lib/streamd/spool
//	renrend -publish 127.0.0.1:7474 -producers 3 -producer-index 0 &
//	renrend -publish 127.0.0.1:7474 -producers 3 -producer-index 1 &
//	renrend -publish 127.0.0.1:7474 -producers 3 -producer-index 2 &
//	streamd -addr 127.0.0.1:7475 -relay 127.0.0.1:7474 -spool-dir /var/lib/streamd/edge &
//	detectd -addr 127.0.0.1:7475
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"sybilwild/internal/spool"
	"sybilwild/internal/stream"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("streamd: ")
	var (
		addr   = flag.String("addr", "127.0.0.1:7474", "listen address (producers and subscribers)")
		relay  = flag.String("relay", "", "upstream broker address: run as an interior relay hop adopting that feed instead of admitting producers")
		wait   = flag.Duration("wait", 5*time.Minute, "max wait for the first producer to register")
		linger = flag.Duration("linger", 0, "keep serving subscribers this long after the last producer closes, so late consumers can still backfill the spooled campaign (detectd -from-start) before the broker drains and exits")
		window = flag.Int("window", stream.DefaultReplayBuffer, "per-subscriber in-memory replay window in events; with a spool, tiny windows stay safe (overflow falls back to disk)")

		spoolDir     = flag.String("spool-dir", "", "directory for the disk feed spool (empty: memory-only replay windows)")
		spoolSegment = flag.Int64("spool-segment-bytes", spool.DefaultSegmentBytes, "segment file size before rolling (fsync on roll)")
		spoolRetain  = flag.Int64("spool-retain", 0, "spool retention budget in bytes (0 = keep everything); pruning never passes the lowest subscriber ack")
		spoolAge     = flag.Duration("spool-segment-age", 0, "also roll the active segment after this age (0 = size-only rolling)")
		statsEvery   = flag.Duration("stats-every", 10*time.Second, "interval between ingest progress lines (0 = silent until completion)")
	)
	flag.Parse()

	opts := []stream.ServerOption{stream.WithReplayBuffer(*window)}
	var sp *spool.Spool
	if *spoolDir != "" {
		var err error
		sp, err = spool.Open(*spoolDir,
			spool.WithSegmentBytes(*spoolSegment),
			spool.WithRetainBytes(*spoolRetain),
			spool.WithSegmentAge(*spoolAge))
		if err != nil {
			log.Fatal(err)
		}
		defer sp.Close()
		opts = append(opts, stream.WithSpool(sp))
		if st := sp.Stats(); st.End > 0 {
			fmt.Printf("spool %s: resuming log at seq %d (%d segments, %d bytes retained from seq %d)\n",
				*spoolDir, st.End+1, st.Segments, st.Bytes, st.First)
		}
	}

	if *relay != "" {
		runRelay(*addr, *relay, opts, sp, *statsEvery)
		return
	}

	srv, err := stream.NewServer(*addr, opts...)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("broker on %s; waiting up to %v for a producer\n", srv.Addr(), *wait)

	deadline := time.Now().Add(*wait)
	for len(srv.Stats().PerProducer) == 0 {
		if time.Now().After(deadline) {
			log.Fatal("no producer registered; exiting")
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Serve until every producer in the registered group closes its
	// epoch, narrating ingest progress.
	tick := time.NewTicker(statsInterval(*statsEvery))
	defer tick.Stop()
	for done := false; !done; {
		select {
		case <-srv.IngestDone():
			done = true
		case <-tick.C:
			if *statsEvery > 0 {
				printProgress(srv)
			}
		}
	}

	if *linger > 0 {
		fmt.Printf("all producer epochs closed; serving subscribers for another %v\n", *linger)
		time.Sleep(*linger)
	}
	st := srv.Stats()
	fmt.Println("all producer epochs closed; draining subscriber replay windows")
	printProducers(st)
	for _, ss := range st.PerSession {
		state := "connected"
		if !ss.Connected {
			state = "detached"
		}
		if ss.CatchUp {
			state += ", disk catch-up"
		}
		fmt.Printf("session %s (%s): behind=%d window=%d/%d (%.0f%% full)\n",
			ss.ID, state, ss.Behind, ss.Buffered, ss.Window, 100*ss.Fill)
	}
	for _, sn := range st.Snapshots {
		fmt.Printf("snapshot %d/%d: seq=%d bytes=%d held for handoff\n",
			sn.Part, sn.Parts, sn.Seq, sn.Bytes)
	}
	for _, rb := range st.Rebalances {
		state := "prepared"
		if rb.Committed {
			state = "committed"
		}
		fmt.Printf("rebalance %d -> %d: barrier=%d %s\n", rb.From, rb.To, rb.Barrier, state)
	}
	srv.Close() // blocks until every subscriber drained (or the drain timeout cut it off)
	st = srv.Stats()
	fmt.Printf("sent=%d delivered=%d encodes=%d sessions_evicted=%d\n", st.Broadcast, st.Delivered, st.Encodes, st.Evicted)
	if sp != nil {
		sst := sp.Stats()
		line := fmt.Sprintf("spool: %d segments, %d bytes, seqs %d-%d retained", sst.Segments, sst.Bytes, sst.First, sst.End)
		if st.SpoolErr != "" {
			line += " (DISK TIER FAILED: " + st.SpoolErr + ")"
		}
		fmt.Println(line)
	}
}

// runRelay is the -relay mode: an interior hop adopting the upstream
// feed, narrated with per-hop audit lines until eof propagates through.
func runRelay(addr, upstream string, opts []stream.ServerOption, sp *spool.Spool, statsEvery time.Duration) {
	rly, err := stream.NewRelay(addr, upstream, stream.WithRelayServer(opts...))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("relay on %s adopting feed from %s\n", rly.Addr(), upstream)

	done := make(chan error, 1)
	go func() { done <- rly.Wait() }()
	tick := time.NewTicker(statsInterval(statsEvery))
	defer tick.Stop()
	var ferr error
	for running := true; running; {
		select {
		case ferr = <-done:
			running = false
		case <-tick.C:
			if statsEvery > 0 {
				printHop(rly)
			}
		}
	}
	rly.Close() // idempotent after Wait: makes sure the downstream drain ran
	printHop(rly)
	st := rly.Server().Stats()
	fmt.Printf("adopted=%d delivered=%d encodes=%d sessions_evicted=%d\n",
		st.Adopted, st.Delivered, st.Encodes, st.Evicted)
	if sp != nil {
		sst := sp.Stats()
		line := fmt.Sprintf("spool: %d segments, %d bytes, seqs %d-%d retained", sst.Segments, sst.Bytes, sst.First, sst.End)
		if st.SpoolErr != "" {
			line += " (DISK TIER FAILED: " + st.SpoolErr + ")"
		}
		fmt.Println(line)
	}
	if ferr != nil {
		log.Fatalf("relay feed ended abnormally: %v", ferr)
	}
	fmt.Println("upstream feed complete; eof propagated to every subscriber")
}

// printHop is the per-hop audit line: where this broker sits in the
// tree and how much feed has crossed the hop.
func printHop(rly *stream.Relay) {
	rs, st := rly.Stats(), rly.Server().Stats()
	fmt.Printf("hop=%d seq=%d frames=%d events=%d reconnects=%d subscribers=%d encodes=%d\n",
		rs.Hop, rs.Seq, rs.Frames, rs.Events, rs.Reconnects, st.Sessions, st.Encodes)
}

func statsInterval(d time.Duration) time.Duration {
	if d <= 0 {
		return time.Hour
	}
	return d
}

// printProgress is the periodic one-liner: global sequence plus each
// producer's contribution.
func printProgress(srv *stream.Server) {
	st := srv.Stats()
	line := fmt.Sprintf("seq=%d subscribers=%d:", st.Broadcast, st.Sessions)
	for _, ps := range st.PerProducer {
		state := ""
		if ps.EOF {
			state = " eof"
		} else if !ps.Connected {
			state = " detached"
		}
		line += fmt.Sprintf(" %s=%d%s", ps.ID, ps.Events, state)
	}
	fmt.Println(line)
}

// printProducers is the end-of-feed per-producer audit, aggregated
// across epochs (a restarted producer's counts accumulate).
func printProducers(st stream.ServerStats) {
	var events, drops uint64
	for _, ps := range st.PerProducer {
		fmt.Printf("producer %s: epoch=%d batches=%d events=%d dedupe_drops=%d\n",
			ps.ID, ps.Epoch, ps.Batches, ps.Events, ps.DedupeDrops)
		events += ps.Events
		drops += ps.DedupeDrops
	}
	fmt.Printf("ingest: %d events from %d producers (%d replayed batches deduped)\n",
		events, len(st.PerProducer), drops)
}
