// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -run all          # everything, paper/10 scale
//	experiments -run fig5,table2  # a subset
//	experiments -run fig1 -small  # fast test scale
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"sybilwild/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		run   = flag.String("run", "all", "comma-separated experiment ids, or 'all'")
		seed  = flag.Int64("seed", 1, "deterministic seed")
		small = flag.Bool("small", false, "test-scale workloads (fast)")
		list  = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	var r *experiments.Runner
	if *small {
		r = experiments.NewSmallRunner(*seed)
	} else {
		r = experiments.NewRunner(*seed)
	}

	ids := experiments.IDs()
	if *run != "all" {
		ids = strings.Split(*run, ",")
	}
	for _, id := range ids {
		rep, err := r.Run(strings.TrimSpace(id))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(rep.String())
	}
}
