// Command renrend runs the OSN simulation as a network service: it
// listens on a TCP port and streams every operational-log event to
// connected subscribers over the v2 feed protocol (sequence-numbered,
// acked batches; see docs/ARCHITECTURE.md) — the role Renren's
// production log feed played for the paper's deployed detector.
// Delivery is at least once: a slow subscriber applies backpressure
// to the simulation instead of losing events, and a briefly
// disconnected one resumes from its last delivered sequence.
//
// With -spool-dir the feed also persists to disk: every event is
// appended to segment files (internal/spool), and a subscriber that
// fell past its in-memory replay window — a detector cold-starting
// from a stale checkpoint, or one that was simply gone too long — is
// caught up from the segments instead of being answered with a feed
// gap. A slow subscriber is demoted to disk catch-up rather than
// stalling the simulation. Retention is pruned by -spool-retain but
// never past the lowest subscriber acknowledgement.
//
// The simulation starts once the first subscriber connects (so a
// detector daemon never misses the campaign), then streams the whole
// campaign, drains every subscriber's replay window, and exits with a
// sent-vs-delivered accounting line.
//
// Usage:
//
//	renrend -addr 127.0.0.1:7474 -normals 6000 -sybils 80 -hours 400 \
//	        -spool-dir /var/lib/renrend/spool -spool-retain 1073741824
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"sybilwild/internal/agents"
	"sybilwild/internal/osn"
	"sybilwild/internal/sim"
	"sybilwild/internal/spool"
	"sybilwild/internal/stream"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("renrend: ")
	var (
		addr    = flag.String("addr", "127.0.0.1:7474", "listen address")
		seed    = flag.Int64("seed", 1, "deterministic seed")
		normals = flag.Int("normals", 6000, "background user population")
		sybils  = flag.Int("sybils", 80, "Sybil accounts")
		hours   = flag.Int64("hours", 400, "observation window (hours)")
		wait    = flag.Duration("wait", 30*time.Second, "max wait for a first subscriber")
		maxRate = flag.Int("maxrate", 0, "max events/second streamed (0 = unlimited); v2 backpressure already paces slow subscribers, set this only to smooth bursts")
		window  = flag.Int("window", stream.DefaultReplayBuffer, "per-subscriber in-memory replay window in events; with a spool, tiny windows stay safe (overflow falls back to disk)")

		spoolDir     = flag.String("spool-dir", "", "directory for the disk feed spool (empty: memory-only replay windows)")
		spoolSegment = flag.Int64("spool-segment-bytes", spool.DefaultSegmentBytes, "segment file size before rolling (fsync on roll)")
		spoolRetain  = flag.Int64("spool-retain", 0, "spool retention budget in bytes (0 = keep everything); pruning never passes the lowest subscriber ack")
		spoolAge     = flag.Duration("spool-segment-age", 0, "also roll the active segment after this age (0 = size-only rolling)")
	)
	flag.Parse()

	opts := []stream.ServerOption{stream.WithReplayBuffer(*window)}
	var sp *spool.Spool
	if *spoolDir != "" {
		var err error
		sp, err = spool.Open(*spoolDir,
			spool.WithSegmentBytes(*spoolSegment),
			spool.WithRetainBytes(*spoolRetain),
			spool.WithSegmentAge(*spoolAge))
		if err != nil {
			log.Fatal(err)
		}
		defer sp.Close()
		opts = append(opts, stream.WithSpool(sp))
		if st := sp.Stats(); st.End > 0 {
			fmt.Printf("spool %s: resuming log at seq %d (%d segments, %d bytes retained from seq %d)\n",
				*spoolDir, st.End+1, st.Segments, st.Bytes, st.First)
		}
	}

	srv, err := stream.NewServer(*addr, opts...)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("listening on %s; waiting up to %v for a subscriber\n", srv.Addr(), *wait)

	deadline := time.Now().Add(*wait)
	for srv.NumClients() == 0 && time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
	}
	if srv.NumClients() == 0 {
		fmt.Println("no subscriber; streaming anyway")
	}

	pop := agents.NewPopulation(*seed, agents.DefaultParams())
	pop.Net.SetKeepLog(false) // observers only; no need to retain
	sent := 0
	windowStart := time.Now()
	pop.Net.RegisterObserver(func(ev osn.Event) {
		srv.Broadcast(ev)
		if *maxRate <= 0 {
			return
		}
		sent++
		if sent%1024 == 0 {
			// Simple token pacing: never exceed maxRate on average.
			need := time.Duration(sent) * time.Second / time.Duration(*maxRate)
			if elapsed := time.Since(windowStart); elapsed < need {
				time.Sleep(need - elapsed)
			}
		}
	})
	pop.Bootstrap(*normals)
	pop.LaunchSybils(*sybils, (*hours)/4*sim.TicksPerHour)
	pop.RunFor(*hours * sim.TicksPerHour)

	fmt.Println(pop.Stats())
	// Per-session lag (worst first): who is holding the feed back, and
	// whether they are being served from memory or disk catch-up.
	for _, ss := range srv.Stats().PerSession {
		state := "connected"
		if !ss.Connected {
			state = "detached"
		}
		if ss.CatchUp {
			state += ", disk catch-up"
		}
		fmt.Printf("session %s (%s): behind=%d window=%d/%d (%.0f%% full)\n",
			ss.ID, state, ss.Behind, ss.Buffered, ss.Window, 100*ss.Fill)
	}
	fmt.Println("campaign complete; draining subscriber replay windows")
	srv.Close() // blocks until every subscriber drained (or the drain timeout cut it off)
	st := srv.Stats()
	fmt.Printf("sent=%d delivered=%d sessions_evicted=%d\n", st.Broadcast, st.Delivered, st.Evicted)
	if sp != nil {
		sst := sp.Stats()
		line := fmt.Sprintf("spool: %d segments, %d bytes, seqs %d-%d retained", sst.Segments, sst.Bytes, sst.First, sst.End)
		if st.SpoolErr != "" {
			line += " (DISK TIER FAILED: " + st.SpoolErr + ")"
		}
		fmt.Println(line)
	}
}
