// Command renrend runs the OSN simulation as a network service: it
// listens on a TCP port and streams every operational-log event to
// connected subscribers over the v2 feed protocol (sequence-numbered,
// acked batches; see docs/ARCHITECTURE.md) — the role Renren's
// production log feed played for the paper's deployed detector.
// Delivery is at least once: a slow subscriber applies backpressure
// to the simulation instead of losing events, and a briefly
// disconnected one resumes from its last delivered sequence.
//
// The simulation starts once the first subscriber connects (so a
// detector daemon never misses the campaign), then streams the whole
// campaign, drains every subscriber's replay window, and exits with a
// sent-vs-delivered accounting line.
//
// Usage:
//
//	renrend -addr 127.0.0.1:7474 -normals 6000 -sybils 80 -hours 400
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"sybilwild/internal/agents"
	"sybilwild/internal/osn"
	"sybilwild/internal/sim"
	"sybilwild/internal/stream"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("renrend: ")
	var (
		addr    = flag.String("addr", "127.0.0.1:7474", "listen address")
		seed    = flag.Int64("seed", 1, "deterministic seed")
		normals = flag.Int("normals", 6000, "background user population")
		sybils  = flag.Int("sybils", 80, "Sybil accounts")
		hours   = flag.Int64("hours", 400, "observation window (hours)")
		wait    = flag.Duration("wait", 30*time.Second, "max wait for a first subscriber")
		maxRate = flag.Int("maxrate", 0, "max events/second streamed (0 = unlimited); v2 backpressure already paces slow subscribers, set this only to smooth bursts")
	)
	flag.Parse()

	srv, err := stream.NewServer(*addr)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("listening on %s; waiting up to %v for a subscriber\n", srv.Addr(), *wait)

	deadline := time.Now().Add(*wait)
	for srv.NumClients() == 0 && time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
	}
	if srv.NumClients() == 0 {
		fmt.Println("no subscriber; streaming anyway")
	}

	pop := agents.NewPopulation(*seed, agents.DefaultParams())
	pop.Net.SetKeepLog(false) // observers only; no need to retain
	sent := 0
	windowStart := time.Now()
	pop.Net.RegisterObserver(func(ev osn.Event) {
		srv.Broadcast(ev)
		if *maxRate <= 0 {
			return
		}
		sent++
		if sent%1024 == 0 {
			// Simple token pacing: never exceed maxRate on average.
			need := time.Duration(sent) * time.Second / time.Duration(*maxRate)
			if elapsed := time.Since(windowStart); elapsed < need {
				time.Sleep(need - elapsed)
			}
		}
	})
	pop.Bootstrap(*normals)
	pop.LaunchSybils(*sybils, (*hours)/4*sim.TicksPerHour)
	pop.RunFor(*hours * sim.TicksPerHour)

	fmt.Println(pop.Stats())
	// Per-session lag (worst first): who is holding the feed back, and
	// how close their replay window is to stalling Broadcast.
	for _, ss := range srv.Stats().PerSession {
		state := "connected"
		if !ss.Connected {
			state = "detached"
		}
		fmt.Printf("session %s (%s): behind=%d window=%d/%d (%.0f%% full)\n",
			ss.ID, state, ss.Behind, ss.Buffered, ss.Window, 100*ss.Fill)
	}
	fmt.Println("campaign complete; draining subscriber replay windows")
	srv.Close() // blocks until every subscriber drained (or the drain timeout cut it off)
	st := srv.Stats()
	fmt.Printf("sent=%d delivered=%d sessions_evicted=%d\n", st.Broadcast, st.Delivered, st.Evicted)
}
