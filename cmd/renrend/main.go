// Command renrend runs the OSN simulation as a network service: it
// listens on a TCP port and streams every operational-log event to
// connected subscribers over the v2 feed protocol (sequence-numbered,
// acked batches; see docs/ARCHITECTURE.md) — the role Renren's
// production log feed played for the paper's deployed detector.
// Delivery is at least once: a slow subscriber applies backpressure
// to the simulation instead of losing events, and a briefly
// disconnected one resumes from its last delivered sequence.
//
// With -spool-dir the feed also persists to disk: every event is
// appended to segment files (internal/spool), and a subscriber that
// fell past its in-memory replay window — a detector cold-starting
// from a stale checkpoint, or one that was simply gone too long — is
// caught up from the segments instead of being answered with a feed
// gap. A slow subscriber is demoted to disk catch-up rather than
// stalling the simulation. Retention is pruned by -spool-retain but
// never past the lowest subscriber acknowledgement.
//
// The simulation starts once the first subscriber connects (so a
// detector daemon never misses the campaign), then streams the whole
// campaign, drains every subscriber's replay window, and exits with a
// sent-vs-delivered accounting line.
//
// With -publish the process is a producer instead of a server: it
// dials a streamd broker and publishes its share of the simulated
// population over the publish sub-protocol. -producers K and
// -producer-index i split the campaign across K such processes — each
// runs the full deterministic simulation from the shared -seed but
// publishes only the actors that hash-partition to its index, so the
// K processes jointly emit exactly the event set one process would.
// A publish-mode process that is killed and restarted resumes
// exactly-once: the broker reports how many of its events are already
// sequenced and the regenerated deterministic stream skips that
// prefix. -maxrate is interpreted as the target rate of the whole
// producer group: each process paces at maxrate/K so K producers do
// not overdrive the broker at K times the requested rate.
//
// Usage:
//
//	renrend -addr 127.0.0.1:7474 -normals 6000 -sybils 80 -hours 400 \
//	        -spool-dir /var/lib/renrend/spool -spool-retain 1073741824
//
//	# or, as one of three producers feeding a streamd broker:
//	renrend -publish 127.0.0.1:7474 -producers 3 -producer-index 1 \
//	        -normals 6000 -sybils 80 -hours 400
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"sybilwild/internal/agents"
	"sybilwild/internal/osn"
	"sybilwild/internal/sim"
	"sybilwild/internal/spool"
	"sybilwild/internal/stream"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("renrend: ")
	var (
		addr    = flag.String("addr", "127.0.0.1:7474", "listen address")
		seed    = flag.Int64("seed", 1, "deterministic seed")
		normals = flag.Int("normals", 6000, "background user population")
		sybils  = flag.Int("sybils", 80, "Sybil accounts")
		hours   = flag.Int64("hours", 400, "observation window (hours)")
		wait    = flag.Duration("wait", 30*time.Second, "max wait for a first subscriber")
		maxRate = flag.Int("maxrate", 0, "max events/second streamed (0 = unlimited); v2 backpressure already paces slow subscribers, set this only to smooth bursts. In publish mode this is the whole producer group's rate: each process paces at maxrate/producers")
		window  = flag.Int("window", stream.DefaultReplayBuffer, "per-subscriber in-memory replay window in events; with a spool, tiny windows stay safe (overflow falls back to disk)")

		publish    = flag.String("publish", "", "publish into a streamd broker at this address instead of serving subscribers (disables -addr/-wait/-window/-spool-*)")
		producers  = flag.Int("producers", 1, "size of the producer group jointly generating the campaign (publish mode)")
		prodIndex  = flag.Int("producer-index", 0, "this process's partition index in [0, producers) (publish mode)")
		producerID = flag.String("producer-id", "", "producer id registered with the broker (default: p<producer-index>)")

		spoolDir     = flag.String("spool-dir", "", "directory for the disk feed spool (empty: memory-only replay windows)")
		spoolSegment = flag.Int64("spool-segment-bytes", spool.DefaultSegmentBytes, "segment file size before rolling (fsync on roll)")
		spoolRetain  = flag.Int64("spool-retain", 0, "spool retention budget in bytes (0 = keep everything); pruning never passes the lowest subscriber ack")
		spoolAge     = flag.Duration("spool-segment-age", 0, "also roll the active segment after this age (0 = size-only rolling)")
	)
	flag.Parse()

	if *publish != "" {
		runPublisher(*publish, *producerID, *producers, *prodIndex,
			*seed, *normals, *sybils, *hours, *maxRate)
		return
	}

	opts := []stream.ServerOption{stream.WithReplayBuffer(*window)}
	var sp *spool.Spool
	if *spoolDir != "" {
		var err error
		sp, err = spool.Open(*spoolDir,
			spool.WithSegmentBytes(*spoolSegment),
			spool.WithRetainBytes(*spoolRetain),
			spool.WithSegmentAge(*spoolAge))
		if err != nil {
			log.Fatal(err)
		}
		defer sp.Close()
		opts = append(opts, stream.WithSpool(sp))
		if st := sp.Stats(); st.End > 0 {
			fmt.Printf("spool %s: resuming log at seq %d (%d segments, %d bytes retained from seq %d)\n",
				*spoolDir, st.End+1, st.Segments, st.Bytes, st.First)
		}
	}

	srv, err := stream.NewServer(*addr, opts...)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("listening on %s; waiting up to %v for a subscriber\n", srv.Addr(), *wait)

	deadline := time.Now().Add(*wait)
	for srv.NumClients() == 0 && time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
	}
	if srv.NumClients() == 0 {
		fmt.Println("no subscriber; streaming anyway")
	}

	pop := agents.NewPopulation(*seed, agents.DefaultParams())
	pop.Net.SetKeepLog(false) // observers only; no need to retain
	sent := 0
	windowStart := time.Now()
	// Coalesce observer events into broker batches: BroadcastBatch
	// sequences, encodes and spools one shared frame per run instead of
	// one per event, which is the broker's single-encode hot path.
	const flushAt = 256
	batch := make([]osn.Event, 0, flushAt)
	flush := func() {
		srv.BroadcastBatch(batch)
		batch = batch[:0]
	}
	pop.Net.RegisterObserver(func(ev osn.Event) {
		batch = append(batch, ev)
		if len(batch) >= flushAt {
			flush()
		}
		if *maxRate <= 0 {
			return
		}
		sent++
		if sent%1024 == 0 {
			// Simple token pacing: never exceed maxRate on average.
			need := time.Duration(sent) * time.Second / time.Duration(*maxRate)
			if elapsed := time.Since(windowStart); elapsed < need {
				time.Sleep(need - elapsed)
			}
		}
	})
	pop.Bootstrap(*normals)
	pop.LaunchSybils(*sybils, (*hours)/4*sim.TicksPerHour)
	pop.RunFor(*hours * sim.TicksPerHour)
	flush() // tail of the feed

	fmt.Println(pop.Stats())
	// Per-session lag (worst first): who is holding the feed back, and
	// whether they are being served from memory or disk catch-up.
	for _, ss := range srv.Stats().PerSession {
		state := "connected"
		if !ss.Connected {
			state = "detached"
		}
		if ss.CatchUp {
			state += ", disk catch-up"
		}
		fmt.Printf("session %s (%s): behind=%d window=%d/%d (%.0f%% full)\n",
			ss.ID, state, ss.Behind, ss.Buffered, ss.Window, 100*ss.Fill)
	}
	fmt.Println("campaign complete; draining subscriber replay windows")
	srv.Close() // blocks until every subscriber drained (or the drain timeout cut it off)
	st := srv.Stats()
	fmt.Printf("sent=%d delivered=%d encodes=%d sessions_evicted=%d\n", st.Broadcast, st.Delivered, st.Encodes, st.Evicted)
	if sp != nil {
		sst := sp.Stats()
		line := fmt.Sprintf("spool: %d segments, %d bytes, seqs %d-%d retained", sst.Segments, sst.Bytes, sst.First, sst.End)
		if st.SpoolErr != "" {
			line += " (DISK TIER FAILED: " + st.SpoolErr + ")"
		}
		fmt.Println(line)
	}
}

// runPublisher is publish mode: run the full deterministic simulation
// and publish this process's actor partition into a streamd broker.
// Exactly-once across kill -9 rides on determinism — the broker
// reports how many of this producer's events are already sequenced,
// and the regenerated stream skips exactly that prefix (at full
// speed: pacing starts at the first freshly published event).
func runPublisher(addr, id string, group, index int, seed int64, normals, sybils int, hours int64, maxRate int) {
	if index < 0 || index >= group {
		log.Fatalf("-producer-index %d out of range [0, %d)", index, group)
	}
	if id == "" {
		id = fmt.Sprintf("p%d", index)
	}
	pub, err := stream.NewPublisher(addr, id, group)
	if err != nil {
		log.Fatal(err)
	}
	skip := pub.SkipEvents()
	fmt.Printf("registered as producer %s (%d of %d), epoch %d\n", id, index, group, pub.Epoch())
	if skip > 0 {
		fmt.Printf("broker already holds %d of our events; regenerating and skipping that prefix\n", skip)
	}
	// -maxrate is the producer group's aggregate budget; this process
	// paces its own share so K producers sum to roughly maxrate.
	rate := 0
	if maxRate > 0 {
		rate = maxRate / group
		if rate < 1 {
			rate = 1
		}
	}

	pop := agents.NewPopulation(seed, agents.DefaultParams())
	pop.Net.SetKeepLog(false) // observers only; no need to retain
	var seen, published uint64
	var paceStart time.Time
	pop.Net.RegisterObserver(func(ev osn.Event) {
		if stream.PartitionActor(ev.Actor, group) != index {
			return
		}
		seen++
		if seen <= skip {
			return // a predecessor process already published this prefix
		}
		if err := pub.Publish(ev); err != nil {
			log.Fatalf("publish: %v", err)
		}
		published++
		if rate > 0 {
			if published == 1 {
				paceStart = time.Now()
			}
			if published%1024 == 0 {
				// Simple token pacing: never exceed rate on average.
				need := time.Duration(published) * time.Second / time.Duration(rate)
				if elapsed := time.Since(paceStart); elapsed < need {
					time.Sleep(need - elapsed)
				}
			}
		}
	})
	pop.Bootstrap(normals)
	pop.LaunchSybils(sybils, hours/4*sim.TicksPerHour)
	pop.RunFor(hours * sim.TicksPerHour)
	if err := pub.Close(); err != nil {
		log.Fatalf("close: %v", err)
	}
	st := pub.Stats()
	fmt.Println(pop.Stats())
	fmt.Printf("producer %s: published %d events in %d batches (skipped %d already-durable), acked through batch %d, %d batches resent\n",
		id, st.Events, st.Batches, skip, st.Acked, st.Resent)
}
