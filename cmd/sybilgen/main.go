// Command sybilgen simulates a Sybil attack campaign against a
// Renren-like network and writes the resulting dataset (accounts,
// friendship edges, operational event log, ground truth) to disk for
// later analysis by sybildetect and the experiment harness.
//
// Usage:
//
//	sybilgen -out campaign.gob.gz -normals 8000 -sybils 100 -hours 400 -seed 1
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"sybilwild"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sybilgen: ")
	var (
		out     = flag.String("out", "campaign.gob.gz", "output dataset path")
		seed    = flag.Int64("seed", 1, "deterministic seed")
		normals = flag.Int("normals", 8000, "background user population")
		sybils  = flag.Int("sybils", 100, "Sybil accounts to launch")
		hours   = flag.Int64("hours", 400, "observation window (hours)")
		jsonOut = flag.String("json", "", "optional JSON export path")
	)
	flag.Parse()

	cfg := sybilwild.DefaultCampaign(*seed)
	cfg.Normals = *normals
	cfg.Sybils = *sybils
	cfg.Hours = *hours

	fmt.Printf("simulating: %d normals, %d sybils, %d h window, seed %d\n",
		cfg.Normals, cfg.Sybils, cfg.Hours, cfg.Seed)
	c := sybilwild.RunCampaign(cfg)
	fmt.Println(c.Pop.Stats())

	ds := c.Snapshot("sybilgen campaign", *seed, *hours)
	if err := ds.Save(*out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d accounts, %d events, %d edges)\n",
		*out, len(ds.Accounts), len(ds.Events), len(ds.Edges))

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := ds.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}
}
