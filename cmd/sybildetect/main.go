// Command sybildetect evaluates the paper's classifiers on a dataset
// produced by sybilgen: the threshold rule (paper constants or
// stump-fitted), and the SVM with 5-fold cross-validation.
//
// Usage:
//
//	sybildetect -in campaign.gob.gz
package main

import (
	"flag"
	"fmt"
	"log"

	"sybilwild/internal/detector"
	"sybilwild/internal/features"
	"sybilwild/internal/svm"
	"sybilwild/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sybildetect: ")
	var (
		in     = flag.String("in", "campaign.gob.gz", "input dataset path")
		folds  = flag.Int("folds", 5, "cross-validation folds")
		useFit = flag.Bool("fit", true, "stump-fit thresholds (false: raw paper constants)")
	)
	flag.Parse()

	ds, err := trace.Load(*in)
	if err != nil {
		log.Fatal(err)
	}
	net := ds.Rebuild()
	fmt.Printf("dataset: %q — %d accounts (%d sybils, %d normals), %d events\n",
		ds.Meta.Description, len(ds.Accounts), ds.Meta.Sybils, ds.Meta.Normals, len(ds.Events))

	labelled := features.Labelled(net, ds.SybilIDs, ds.NormalIDs)

	rule := detector.PaperRule()
	if *useFit {
		rule = detector.FitRule(labelled, rule)
	}
	fmt.Printf("\nthreshold rule: %v\n", rule)
	conf := rule.Evaluate(labelled)
	fmt.Print(conf.String())
	fmt.Printf("accuracy %.2f%%  precision %.2f%%\n", 100*conf.Accuracy(), 100*conf.Precision())

	x, y := labelled.Matrix()
	svmConf := svm.CrossValidate(x, y, *folds, svm.DefaultConfig())
	fmt.Printf("\nSVM (%d-fold CV, %v):\n", *folds, svm.DefaultConfig().Kernel)
	fmt.Print(svmConf.String())
	fmt.Printf("accuracy %.2f%%\n", 100*svmConf.Accuracy())
}
