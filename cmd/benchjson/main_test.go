package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
pkg: sybilwild/internal/spool
BenchmarkSpoolAppend 	  200000	       388.2 ns/op	        94.44 B/event	         2.576 Mevents/s	       5 B/op	       0 allocs/op
pkg: sybilwild/internal/stream
BenchmarkResumeFromDisk 	  200000	      1229 ns/op	         0.8134 Mevents/s	      51 B/op	       1 allocs/op
Benchmark-not-a-result line that must be skipped
PASS
`

func TestParseBench(t *testing.T) {
	out, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("parsed %d results, want 2", len(out))
	}
	r := out[0]
	if r.Package != "sybilwild/internal/spool" || r.Name != "BenchmarkSpoolAppend" || r.Iterations != 200000 {
		t.Fatalf("bad first result: %+v", r)
	}
	if r.Metrics["ns/op"] != 388.2 || r.Metrics["Mevents/s"] != 2.576 || r.Metrics["allocs/op"] != 0 {
		t.Fatalf("bad metrics: %v", r.Metrics)
	}
	if out[1].Package != "sybilwild/internal/stream" {
		t.Fatalf("pkg tracking broken: %+v", out[1])
	}
}

func TestPrintDeltas(t *testing.T) {
	base := []result{
		{Package: "p", Name: "BenchmarkKept", Metrics: map[string]float64{"ns/op": 100, "Mevents/s": 2}},
		{Package: "p", Name: "BenchmarkGone", Metrics: map[string]float64{"ns/op": 50}},
	}
	fresh := []result{
		{Package: "p", Name: "BenchmarkKept", Metrics: map[string]float64{"ns/op": 80, "Mevents/s": 2.5}},
		{Package: "p", Name: "BenchmarkNew", Metrics: map[string]float64{"ns/op": 10}},
	}
	var sb strings.Builder
	printDeltas(&sb, "BENCH_3.json", base, fresh)
	got := sb.String()
	for _, want := range []string{
		"-20.0%",          // kept benchmark sped up 100→80
		"p BenchmarkKept", //
		"ns/op 100→80",    // old→new detail
		"Mevents/s 2→2.5", // custom metrics compared too
		"NEW      p BenchmarkNew",
		"VANISHED p BenchmarkGone",
		"1 benchmarks compared, 1 new, 1 vanished",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("delta output missing %q:\n%s", want, got)
		}
	}
}

func TestCheckGate(t *testing.T) {
	fresh := []result{
		{Name: "BenchmarkPipelineBatch/shards=1-8", Metrics: map[string]float64{"ns/op": 100}},
		{Name: "BenchmarkPipelineBatch/shards=4-8", Metrics: map[string]float64{"ns/op": 105}},
	}
	var sb strings.Builder
	// Within slack: 105 <= 100*1.15 — passes, GOMAXPROCS suffix ignored.
	if err := checkGate(&sb, "BenchmarkPipelineBatch/shards=4<=BenchmarkPipelineBatch/shards=1*1.15", fresh); err != nil {
		t.Fatalf("gate within slack failed: %v", err)
	}
	if !strings.Contains(sb.String(), "gate ok") {
		t.Fatalf("missing gate ok line: %q", sb.String())
	}
	// No slack: 105 > 100 — fails.
	if err := checkGate(&sb, "BenchmarkPipelineBatch/shards=4<=BenchmarkPipelineBatch/shards=1", fresh); err == nil {
		t.Fatal("gate without slack should have failed")
	}
	// Missing benchmark is a hard failure, not a silent pass.
	if err := checkGate(&sb, "BenchmarkRenamed<=BenchmarkPipelineBatch/shards=1", fresh); err == nil {
		t.Fatal("gate with missing benchmark should have failed")
	}
	// Malformed expressions are rejected.
	for _, expr := range []string{"no-operator", "A<=B*zero", "A<=B*-1"} {
		if err := checkGate(&sb, expr, fresh); err == nil {
			t.Fatalf("gate %q should have been rejected", expr)
		}
	}
}

func TestPrintTrend(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, rs []result) string {
		data, err := json.Marshal(rs)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	// Passed deliberately out of order, and with BENCH_10 to prove
	// numeric (not lexical) ordering; the benchmark is missing from the
	// oldest file (born mid-history) and carries a GOMAXPROCS suffix in
	// the newest.
	files := []string{
		write("BENCH_10.json", []result{{Name: "BenchmarkFanout/subs=16-4",
			Metrics: map[string]float64{"ns/op": 50, "Mevents/s": 4}}}),
		write("BENCH_2.json", []result{{Name: "BenchmarkOther",
			Metrics: map[string]float64{"ns/op": 1}}}),
		write("BENCH_9.json", []result{{Name: "BenchmarkFanout/subs=16",
			Metrics: map[string]float64{"ns/op": 100, "Mevents/s": 2}}}),
	}
	var sb strings.Builder
	if err := printTrend(&sb, "BenchmarkFanout/subs=16", files); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, want := range []string{
		"trend of BenchmarkFanout/subs=16 (ns/op)",
		"BENCH_2.json",
		"(absent)",
		"100",
		"50  (-50.0%)", // delta vs the previous file it appeared in
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("trend output missing %q:\n%s", want, got)
		}
	}
	// BENCH_9 must precede BENCH_10 (numeric, not lexical, order).
	if i9, i10 := strings.Index(got, "BENCH_9.json"), strings.Index(got, "BENCH_10.json"); i9 > i10 {
		t.Fatalf("files not in numeric order:\n%s", got)
	}

	// Explicit unit selects a custom metric.
	sb.Reset()
	if err := printTrend(&sb, "BenchmarkFanout/subs=16:Mevents/s", files); err != nil {
		t.Fatal(err)
	}
	if got := sb.String(); !strings.Contains(got, "(Mevents/s)") || !strings.Contains(got, "(+100.0%)") {
		t.Fatalf("unit trend output wrong:\n%s", got)
	}

	// A benchmark in no file is an error, not an empty trajectory.
	if err := printTrend(&sb, "BenchmarkTypo", files); err == nil {
		t.Fatal("trend of a missing benchmark should have failed")
	}
	if err := printTrend(&sb, "BenchmarkFanout/subs=16", nil); err == nil {
		t.Fatal("trend with no files should have failed")
	}
}

func TestBaselineSeq(t *testing.T) {
	for _, tc := range []struct {
		path string
		want int
	}{
		{"BENCH_7.json", 7},
		{"BENCH_10.json", 10},
		{"/some/dir/BENCH_12.json", 12},
		{"BENCH.json", -1},
	} {
		if got := baselineSeq(tc.path); got != tc.want {
			t.Fatalf("baselineSeq(%q) = %d, want %d", tc.path, got, tc.want)
		}
	}
}

func TestDeltaStringEdges(t *testing.T) {
	if got := deltaString(0, 5); got != "n/a" {
		t.Fatalf("zero baseline: %q, want n/a", got)
	}
	if got := deltaString(200, 100); got != "-50.0%" {
		t.Fatalf("halving: %q, want -50.0%%", got)
	}
	if got := deltaString(100, 103); got != "+3.0%" {
		t.Fatalf("+3%%: %q", got)
	}
}
