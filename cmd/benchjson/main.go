// Command benchjson converts `go test -bench` text output on stdin
// into a JSON array on stdout, one object per benchmark result with
// every reported metric (ns/op, custom b.ReportMetric units, …) keyed
// by unit. CI runs it via `make bench-json` to track the performance
// trajectory as a machine-readable artifact:
//
//	go test -bench=. -benchtime=1x -run='^$' ./... | benchjson > BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"log"
	"os"
	"strconv"
	"strings"
)

// result is one benchmark line. Metrics maps unit → value; JSON
// object keys come out sorted, so output is deterministic for a given
// bench run.
type result struct {
	Package    string             `json:"package,omitempty"`
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	out := []result{}
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "pkg:"); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		// Shape: Name iterations (value unit)+ — anything else (e.g. a
		// stray test log line starting with "Benchmark") is skipped.
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := result{Package: pkg, Name: fields[0], Iterations: iters, Metrics: make(map[string]float64)}
		ok := true
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				ok = false
				break
			}
			r.Metrics[fields[i+1]] = v
		}
		if ok {
			out = append(out, r)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		log.Fatal(err)
	}
}
