// Command benchjson converts `go test -bench` text output on stdin
// into a JSON array on stdout, one object per benchmark result with
// every reported metric (ns/op, custom b.ReportMetric units, …) keyed
// by unit. CI runs it via `make bench-json` to track the performance
// trajectory as a machine-readable artifact:
//
//	go test -bench=. -benchtime=1x -run='^$' ./... | benchjson > BENCH.json
//
// With -compare BASELINE.json it additionally diffs the fresh run
// against a committed baseline and prints per-benchmark deltas to
// stderr (stdout stays pure JSON), so the bench-json CI job's log
// shows the perf trajectory PR over PR:
//
//	go test -bench=. ... | benchjson -compare BENCH_3.json > BENCH_4.json
//
// With -gate 'A<=B*SLACK' it asserts a relative invariant WITHIN the
// fresh run — benchmark A's ns/op must not exceed benchmark B's times
// SLACK — and exits non-zero when it doesn't hold or either benchmark
// is missing. Relative gates survive noisy shared runners (both sides
// ran on the same machine moments apart), which is what lets CI fail
// loudly on a real scaling regression without gating on absolute
// numbers:
//
//	go test -bench=PipelineBatch ... | benchjson \
//	  -gate 'BenchmarkPipelineBatch/shards=4<=BenchmarkPipelineBatch/shards=1*1.15'
//
// With -trend 'Name' (or 'Name:unit', default unit ns/op) it reads no
// stdin at all: it scans the committed BENCH_*.json files — positional
// arguments override the file list — in numeric order and prints one
// line per file with the named benchmark's metric and its change from
// the previous file it appeared in, so the whole perf trajectory of
// one number is visible without manually diffing baselines:
//
//	benchjson -trend 'BenchmarkPublishIngest/producers=4:Mevents/s'
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// result is one benchmark line. Metrics maps unit → value; JSON
// object keys come out sorted, so output is deterministic for a given
// bench run.
type result struct {
	Package    string             `json:"package,omitempty"`
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	compare := flag.String("compare", "", "baseline BENCH JSON file to diff the fresh run against (deltas on stderr)")
	gate := flag.String("gate", "", "relative invariant 'A<=B*SLACK' over the fresh run's ns/op; exit non-zero when violated")
	trend := flag.String("trend", "", "print a benchmark metric's trajectory across committed BENCH_*.json files: 'Name' or 'Name:unit' (default ns/op); reads no stdin, positional args override the file list")
	flag.Parse()

	if *trend != "" {
		files := flag.Args()
		if len(files) == 0 {
			var err error
			if files, err = filepath.Glob("BENCH_*.json"); err != nil {
				log.Fatal(err)
			}
		}
		if err := printTrend(os.Stdout, *trend, files); err != nil {
			log.Fatal(err)
		}
		return
	}

	out, err := parseBench(os.Stdin)
	if err != nil {
		log.Fatal(err)
	}
	if *compare != "" {
		if base, err := loadBaseline(*compare); err != nil {
			// Non-fatal: a fresh checkout may predate the baseline; the
			// JSON artifact is still produced.
			log.Printf("compare skipped: %v", err)
		} else {
			printDeltas(os.Stderr, *compare, base, out)
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		log.Fatal(err)
	}
	if *gate != "" {
		if err := checkGate(os.Stderr, *gate, out); err != nil {
			log.Fatal(err)
		}
	}
}

// printTrend renders one benchmark metric's value across the given
// baseline files in numeric filename order, with the relative change
// from the previous file the benchmark appeared in. A file that lacks
// the benchmark (or the unit) prints as absent rather than breaking
// the series — benchmarks are born mid-history. A benchmark found in
// no file at all is an error: a typo must not print an empty, healthy-
// looking trajectory.
func printTrend(w io.Writer, spec string, files []string) error {
	name, unit := spec, "ns/op"
	if n, u, ok := strings.Cut(spec, ":"); ok && u != "" {
		name, unit = n, u
	}
	if len(files) == 0 {
		return fmt.Errorf("trend: no BENCH_*.json files found")
	}
	files = append([]string(nil), files...)
	sort.Slice(files, func(i, j int) bool {
		a, b := baselineSeq(files[i]), baselineSeq(files[j])
		if a != b {
			return a < b
		}
		return files[i] < files[j]
	})
	fmt.Fprintf(w, "trend of %s (%s):\n", name, unit)
	found := false
	prev := math.NaN()
	for _, f := range files {
		rs, err := loadBaseline(f)
		if err != nil {
			return err
		}
		r, ok := findByName(rs, name)
		v, okUnit := r.Metrics[unit]
		if !ok || !okUnit {
			fmt.Fprintf(w, "  %-20s (absent)\n", f)
			continue
		}
		delta := ""
		if !math.IsNaN(prev) {
			delta = "  (" + deltaString(prev, v) + ")"
		}
		fmt.Fprintf(w, "  %-20s %.4g%s\n", f, v, delta)
		prev = v
		found = true
	}
	if !found {
		return fmt.Errorf("trend: benchmark %q with unit %q in none of %d files", name, unit, len(files))
	}
	return nil
}

// baselineSeq extracts the first integer run in a baseline filename,
// so BENCH_10.json sorts after BENCH_9.json; files without one sort
// first, lexically.
func baselineSeq(path string) int {
	base := filepath.Base(path)
	for i := 0; i < len(base); i++ {
		if base[i] >= '0' && base[i] <= '9' {
			v := 0
			for i < len(base) && base[i] >= '0' && base[i] <= '9' {
				v = v*10 + int(base[i]-'0')
				i++
			}
			return v
		}
	}
	return -1
}

// checkGate evaluates one 'A<=B*SLACK' invariant (SLACK optional,
// default 1.0) against the fresh results. Benchmark names match with
// or without the -GOMAXPROCS suffix `go test` appends, so one gate
// expression works on any runner shape. A missing side is a hard
// failure — a renamed benchmark must not silently disarm the gate.
func checkGate(w io.Writer, expr string, fresh []result) error {
	nameA, rest, ok := strings.Cut(expr, "<=")
	if !ok {
		return fmt.Errorf("gate %q: want 'A<=B' or 'A<=B*SLACK'", expr)
	}
	nameB := rest
	slack := 1.0
	if b, s, ok := strings.Cut(rest, "*"); ok {
		f, err := strconv.ParseFloat(s, 64)
		if err != nil || f <= 0 {
			return fmt.Errorf("gate %q: bad slack %q", expr, s)
		}
		nameB, slack = b, f
	}
	a, okA := findByName(fresh, nameA)
	b, okB := findByName(fresh, nameB)
	if !okA || !okB {
		missing := nameA
		if okA {
			missing = nameB
		}
		return fmt.Errorf("gate %q: benchmark %q not in the fresh run", expr, missing)
	}
	av, bv := a.Metrics["ns/op"], b.Metrics["ns/op"]
	if av == 0 || bv == 0 {
		return fmt.Errorf("gate %q: ns/op missing or zero (%v vs %v)", expr, av, bv)
	}
	if av > bv*slack {
		return fmt.Errorf("gate FAILED: %s ns/op %.4g > %s ns/op %.4g × %.2f = %.4g",
			a.Name, av, b.Name, bv, slack, bv*slack)
	}
	fmt.Fprintf(w, "gate ok: %s ns/op %.4g <= %s ns/op %.4g × %.2f\n", a.Name, av, b.Name, bv, slack)
	return nil
}

// findByName locates a fresh result whose name equals want, ignoring
// the trailing -GOMAXPROCS decoration.
func findByName(rs []result, want string) (result, bool) {
	for _, r := range rs {
		name := r.Name
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		if name == want || r.Name == want {
			return r, true
		}
	}
	return result{}, false
}

// parseBench reads `go test -bench` text output into results.
func parseBench(r io.Reader) ([]result, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	out := []result{}
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "pkg:"); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		// Shape: Name iterations (value unit)+ — anything else (e.g. a
		// stray test log line starting with "Benchmark") is skipped.
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := result{Package: pkg, Name: fields[0], Iterations: iters, Metrics: make(map[string]float64)}
		ok := true
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				ok = false
				break
			}
			r.Metrics[fields[i+1]] = v
		}
		if ok {
			out = append(out, r)
		}
	}
	return out, sc.Err()
}

// loadBaseline reads a previously committed BENCH_<pr>.json.
func loadBaseline(path string) ([]result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var base []result
	if err := json.Unmarshal(data, &base); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return base, nil
}

// key identifies a benchmark across runs.
func key(r result) string { return r.Package + " " + r.Name }

// printDeltas writes a per-benchmark comparison of fresh against
// base. ns/op leads (it exists for every benchmark); every other
// shared metric follows. New and vanished benchmarks are listed so a
// renamed benchmark never silently drops out of the trajectory.
func printDeltas(w io.Writer, baseName string, base, fresh []result) {
	baseBy := make(map[string]result, len(base))
	for _, r := range base {
		baseBy[key(r)] = r
	}
	fmt.Fprintf(w, "--- benchmark deltas vs %s (negative ns/op = faster) ---\n", baseName)
	seen := make(map[string]bool, len(fresh))
	for _, r := range fresh {
		seen[key(r)] = true
		b, ok := baseBy[key(r)]
		if !ok {
			fmt.Fprintf(w, "NEW      %-60s %s\n", key(r), metricString(r.Metrics))
			continue
		}
		fmt.Fprintf(w, "%8s %-60s %s\n", deltaString(b.Metrics["ns/op"], r.Metrics["ns/op"]), key(r), deltaDetails(b, r))
	}
	var gone []string
	for _, b := range base {
		if !seen[key(b)] {
			gone = append(gone, key(b))
		}
	}
	sort.Strings(gone)
	for _, k := range gone {
		fmt.Fprintf(w, "VANISHED %s\n", k)
	}
	fmt.Fprintf(w, "--- %d benchmarks compared, %d new, %d vanished ---\n",
		len(fresh)-countNew(baseBy, fresh), countNew(baseBy, fresh), len(gone))
}

func countNew(baseBy map[string]result, fresh []result) int {
	n := 0
	for _, r := range fresh {
		if _, ok := baseBy[key(r)]; !ok {
			n++
		}
	}
	return n
}

// deltaString renders the relative change of a metric, "n/a" when
// either side is missing or zero.
func deltaString(old, new float64) string {
	if old == 0 || new == 0 || math.IsNaN(old) || math.IsNaN(new) {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", (new-old)/old*100)
}

// deltaDetails renders old→new for every metric the two runs share,
// ns/op first, the rest in sorted order.
func deltaDetails(b, r result) string {
	units := make([]string, 0, len(r.Metrics))
	for u := range r.Metrics {
		if _, ok := b.Metrics[u]; ok && u != "ns/op" {
			units = append(units, u)
		}
	}
	sort.Strings(units)
	parts := []string{fmt.Sprintf("ns/op %.4g→%.4g", b.Metrics["ns/op"], r.Metrics["ns/op"])}
	for _, u := range units {
		parts = append(parts, fmt.Sprintf("%s %.4g→%.4g (%s)", u, b.Metrics[u], r.Metrics[u], deltaString(b.Metrics[u], r.Metrics[u])))
	}
	return strings.Join(parts, "  ")
}

// metricString renders a metrics map compactly, ns/op first.
func metricString(m map[string]float64) string {
	units := make([]string, 0, len(m))
	for u := range m {
		if u != "ns/op" {
			units = append(units, u)
		}
	}
	sort.Strings(units)
	parts := []string{fmt.Sprintf("ns/op %.4g", m["ns/op"])}
	for _, u := range units {
		parts = append(parts, fmt.Sprintf("%s %.4g", u, m[u]))
	}
	return strings.Join(parts, "  ")
}
