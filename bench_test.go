package sybilwild

// The benchmark harness regenerates every table and figure in the
// paper's evaluation (DESIGN.md §3 maps each bench to its experiment)
// and reports the headline metric of each as a custom benchmark unit,
// so `go test -bench=. -benchmem` both times the pipeline and shows
// the reproduced numbers next to the paper's.
//
// Workload construction (the shared campaign simulation and the
// generated paper/10-scale topology) happens once, outside the timed
// region; each iteration times the analysis driver itself.

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"sybilwild/internal/agents"
	"sybilwild/internal/detector"
	"sybilwild/internal/experiments"
	"sybilwild/internal/features"
	"sybilwild/internal/graph"
	"sybilwild/internal/osn"
	"sybilwild/internal/sim"
	"sybilwild/internal/stats"
	"sybilwild/internal/svm"
	"sybilwild/internal/sybtopo"
)

var (
	benchOnce   sync.Once
	benchRunner *experiments.Runner
)

// sharedRunner builds the two shared workloads once per process. The
// behavioural campaign uses a reduced (but unsaturated) population so
// the full bench suite stays in CI budget; the topology runs at the
// experiment default (paper/10 ⇒ ~66,772 Sybils).
func sharedRunner(b *testing.B) *experiments.Runner {
	b.Helper()
	benchOnce.Do(func() {
		benchRunner = experiments.NewRunner(1)
		benchRunner.GT.Normals = 8000
		benchRunner.GT.Sybils = 100
		benchRunner.GroundTruth() // build outside timers
		benchRunner.Topology()
	})
	return benchRunner
}

// benchExperiment times one driver and surfaces selected metrics.
func benchExperiment(b *testing.B, id string, metrics ...string) {
	r := sharedRunner(b)
	b.ResetTimer()
	var rep experiments.Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = r.Run(id)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, m := range metrics {
		b.ReportMetric(rep.Values[m], m)
	}
}

// --- One benchmark per paper table/figure ---

func BenchmarkFig1InvitationFrequency(b *testing.B) {
	benchExperiment(b, "fig1", "sybil_frac_ge40_per_h", "cut40_tpr", "cut40_fpr")
}

func BenchmarkFig2OutgoingAccept(b *testing.B) {
	benchExperiment(b, "fig2", "sybil_mean", "normal_mean")
}

func BenchmarkFig3IncomingAccept(b *testing.B) {
	benchExperiment(b, "fig3", "sybil_frac_accept_all")
}

func BenchmarkFig4ClusteringCoefficient(b *testing.B) {
	benchExperiment(b, "fig4", "ratio")
}

func BenchmarkTable1Classifiers(b *testing.B) {
	benchExperiment(b, "table1", "svm_tpr", "svm_tnr", "thr_tpr", "thr_tnr")
}

func BenchmarkFig5SybilDegree(b *testing.B) {
	benchExperiment(b, "fig5", "frac_with_sybil_edge")
}

func BenchmarkFig6ComponentSizes(b *testing.B) {
	benchExperiment(b, "fig6", "frac_small", "giant_share")
}

func BenchmarkTable2LargestComponents(b *testing.B) {
	benchExperiment(b, "table2", "c0_sybils", "c0_attack_edges", "c0_audience")
}

func BenchmarkFig7EdgeScatter(b *testing.B) {
	benchExperiment(b, "fig7", "frac_above_diagonal")
}

func BenchmarkFig8EdgeOrder(b *testing.B) {
	benchExperiment(b, "fig8", "position_mean", "ks_uniform")
}

func BenchmarkFig9ComponentDegree(b *testing.B) {
	benchExperiment(b, "fig9", "frac_deg1", "frac_le10")
}

func BenchmarkTable3Tools(b *testing.B) {
	benchExperiment(b, "table3", "tools")
}

func BenchmarkExtCommunityDefense(b *testing.B) {
	benchExperiment(b, "ext1",
		"tight_gap_SybilGuard", "wild_gap_SybilGuard",
		"tight_gap_SumUp", "wild_gap_SumUp")
}

// --- Ablations (DESIGN.md §4) ---

// BenchmarkAblationSimVsTopo cross-checks the agent-level simulation
// against the generative topology model at matched scale: the fraction
// of Sybils with ≥1 Sybil edge should land in the same band from both.
func BenchmarkAblationSimVsTopo(b *testing.B) {
	b.ReportAllocs()
	var simFrac, topoFrac float64
	for i := 0; i < b.N; i++ {
		pop := agents.NewPopulation(9, agents.DefaultParams())
		pop.Bootstrap(5000)
		pop.LaunchSybils(60, 100*sim.TicksPerHour)
		pop.RunFor(400 * sim.TicksPerHour)
		mask := pop.Net.SybilMask()
		g := pop.Net.Graph()
		with := 0
		for _, id := range pop.Sybils {
			for _, e := range g.Neighbors(id) {
				if mask[e.To] {
					with++
					break
				}
			}
		}
		simFrac = float64(with) / float64(len(pop.Sybils))

		topo := sybtopo.Generate(sybtopo.SmallConfig(9))
		topoFrac = topo.FracWithSybilEdge()
	}
	b.ReportMetric(simFrac, "sim_frac_sybil_edge")
	b.ReportMetric(topoFrac, "topo_frac_sybil_edge")
}

// BenchmarkAblationThresholdVsSVM measures per-account classification
// cost: the paper's point is the threshold rule matches the SVM at a
// fraction of the cost.
func BenchmarkAblationThresholdVsSVM(b *testing.B) {
	r := sharedRunner(b)
	gt := r.GroundTruth()
	vecs := gt.DS.Vectors
	x, y := gt.DS.Matrix()
	sc := svm.FitScaler(x)
	model := svm.Train(sc.Transform(x), y, svm.DefaultConfig())
	rule := detector.FitRule(gt.DS, detector.PaperRule())

	b.Run("Threshold", func(b *testing.B) {
		flagged := 0
		for i := 0; i < b.N; i++ {
			if rule.Classify(vecs[i%len(vecs)]) {
				flagged++
			}
		}
		_ = flagged
	})
	b.Run("SVM", func(b *testing.B) {
		flagged := 0
		for i := 0; i < b.N; i++ {
			if model.Classify(sc.TransformRow(x[i%len(x)])) {
				flagged++
			}
		}
		_ = flagged
	})
}

// BenchmarkAblationAdaptive injects behaviour drift (Sybils halving
// their invitation rates) and compares the static paper rule against
// the adaptive feedback detector.
func BenchmarkAblationAdaptive(b *testing.B) {
	r := stats.NewRand(4)
	mkVec := func(rate float64) features.Vector {
		return features.Vector{
			OutSent: 120, OutAccepted: int(120 * 0.25), OutAccept: 0.25,
			Freq1h: rate * (0.8 + 0.4*r.Float64()), CC: 0.001,
		}
	}
	normal := features.Vector{OutSent: 12, OutAccepted: 10, OutAccept: 0.83, Freq1h: 0.05, CC: 0.08}

	var staticTPR, adaptiveTPR float64
	for i := 0; i < b.N; i++ {
		static := detector.PaperRule()
		ad := detector.NewAdaptive(detector.PaperRule(), 400, 25)
		// Warm-up audits at the original behaviour.
		for k := 0; k < 100; k++ {
			ad.Audit(mkVec(55), true)
			ad.Audit(normal, false)
		}
		// Drift: rates fall to ~8/h; audits keep arriving.
		sCaught, aCaught, total := 0, 0, 0
		for k := 0; k < 400; k++ {
			v := mkVec(8)
			total++
			if static.Classify(v) {
				sCaught++
			}
			if ad.Classify(v) {
				aCaught++
			}
			ad.Audit(v, true)
			ad.Audit(normal, false)
		}
		staticTPR = float64(sCaught) / float64(total)
		adaptiveTPR = float64(aCaught) / float64(total)
	}
	b.ReportMetric(staticTPR, "static_tpr_after_drift")
	b.ReportMetric(adaptiveTPR, "adaptive_tpr_after_drift")
}

// BenchmarkAblationCCWindow compares the paper's first-50-friends
// clustering coefficient against the full-neighbourhood version: cost
// per account and Sybil/normal separation.
func BenchmarkAblationCCWindow(b *testing.B) {
	r := sharedRunner(b)
	gt := r.GroundTruth()
	g := gt.Pop.Net.Graph()
	ids := make([]graph.NodeID, 0, 2000)
	for _, id := range gt.Pop.Normals[:1000] {
		ids = append(ids, id)
	}
	ids = append(ids, gt.Pop.Sybils...)

	b.Run("First50", func(b *testing.B) {
		var acc float64
		for i := 0; i < b.N; i++ {
			acc += g.ClusteringFirstK(ids[i%len(ids)], 50)
		}
		_ = acc
	})
	b.Run("FullNeighbourhood", func(b *testing.B) {
		var acc float64
		for i := 0; i < b.N; i++ {
			acc += g.LocalClustering(ids[i%len(ids)])
		}
		_ = acc
	})
}

// BenchmarkAblationSnowballBias sweeps the tool's popularity bias and
// reports the mean degree of sampled targets — the dial behind the
// giant Sybil component's formation (§3.4).
func BenchmarkAblationSnowballBias(b *testing.B) {
	r := sharedRunner(b)
	g := r.GroundTruth().Pop.Net.Graph()
	for _, bias := range []struct {
		name string
		v    float64
	}{{"bias0.0", 0}, {"bias0.5", 0.5}, {"bias1.0", 1}} {
		b.Run(bias.name, func(b *testing.B) {
			rng := stats.NewRand(11)
			var meanDeg float64
			for i := 0; i < b.N; i++ {
				seeds := []graph.NodeID{graph.NodeID(rng.Intn(g.NumNodes()))}
				sample := g.Snowball(rng, seeds, 100, bias.v)
				var sum float64
				for _, v := range sample {
					sum += float64(g.Degree(v))
				}
				if len(sample) > 0 {
					meanDeg = sum / float64(len(sample))
				}
			}
			b.ReportMetric(meanDeg, "mean_target_degree")
		})
	}
}

// --- Real-time hot path: serial Monitor vs sharded Pipeline ---
//
// The workload is a synthetic 100k-account production trace built once
// per process: a triangle-rich ring graph (every clustering-coefficient
// evaluation does real work), four rounds of normal friend-request
// chatter with 40% accepts, and a 2% population of burst-inviting
// Sybils with no graph embedding. Replaying it through the serial
// Monitor and through detector.Pipeline at various shard counts
// measures exactly what the paper's deployment cares about: detection
// throughput on live traffic.

const (
	rtAccounts   = 100_000
	rtRingDeg    = 8  // ring neighbours per side ⇒ degree 16
	rtSybilEvery = 50 // every 50th account is a burst Sybil
	rtRounds     = 4  // normal request rounds
	rtBurst      = 30 // requests per Sybil burst
)

var (
	rtOnce   sync.Once
	rtGraph  *graph.Graph
	rtEvents []osn.Event
)

func isRTSybil(id int) bool { return id%rtSybilEvery == 0 }

// realtimeWorkload builds the shared graph and event stream outside
// any timed region.
func realtimeWorkload(b *testing.B) ([]osn.Event, *graph.Graph) {
	b.Helper()
	rtOnce.Do(func() {
		g := graph.New(rtAccounts)
		g.AddNodes(rtAccounts)
		for i := 0; i < rtAccounts; i++ {
			if isRTSybil(i) {
				continue // Sybils are unembedded: cc = 0
			}
			for j := 1; j <= rtRingDeg; j++ {
				v := (i + j) % rtAccounts
				if !isRTSybil(v) {
					g.AddEdge(graph.NodeID(i), graph.NodeID(v), int64(i))
				}
			}
		}
		r := stats.NewRand(7)
		events := make([]osn.Event, 0, rtAccounts*(rtRounds+1))
		// Sybil bursts: rtBurst requests at 1-tick spacing pushes the
		// 1h invitation frequency well past the paper's 20/h cut.
		for id := 0; id < rtAccounts; id += rtSybilEvery {
			for k := 0; k < rtBurst; k++ {
				tgt := r.Intn(rtAccounts)
				if tgt == id {
					tgt = (id + 1) % rtAccounts
				}
				events = append(events, osn.Event{
					Type: osn.EvFriendRequest, At: sim.Time(k),
					Actor: osn.AccountID(id), Target: osn.AccountID(tgt),
				})
			}
		}
		// Normal chatter: one request per account per simulated hour,
		// 40% accepted.
		for round := 0; round < rtRounds; round++ {
			at := sim.Time(round+1) * sim.TicksPerHour
			for id := 0; id < rtAccounts; id++ {
				if isRTSybil(id) {
					continue
				}
				tgt := r.Intn(rtAccounts)
				if tgt == id {
					tgt = (id + 1) % rtAccounts
				}
				events = append(events, osn.Event{
					Type: osn.EvFriendRequest, At: at,
					Actor: osn.AccountID(id), Target: osn.AccountID(tgt),
				})
				if r.Bernoulli(0.4) {
					events = append(events, osn.Event{
						Type: osn.EvFriendAccept, At: at + 1,
						Actor: osn.AccountID(tgt), Target: osn.AccountID(id),
					})
				}
			}
		}
		rtGraph, rtEvents = g, events
	})
	return rtEvents, rtGraph
}

func reportRealtime(b *testing.B, flagged int, nEvents int) {
	b.ReportMetric(float64(nEvents)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mevents/s")
	b.ReportMetric(float64(flagged), "flagged")
}

// BenchmarkMonitor replays the production trace through the serial
// reference detector — the baseline the sharded pipeline must beat.
func BenchmarkMonitor(b *testing.B) {
	events, g := realtimeWorkload(b)
	rule := detector.PaperRule()
	b.ResetTimer()
	flagged := 0
	for i := 0; i < b.N; i++ {
		m := detector.NewMonitor(rule, g, nil)
		for _, ev := range events {
			m.Observe(ev)
		}
		flagged = m.FlaggedCount()
	}
	reportRealtime(b, flagged, len(events))
}

// BenchmarkPipeline replays the same trace through the sharded
// concurrent pipeline. The 4-shard case is the acceptance bar (≥2×
// serial on ≥4 cores); the GOMAXPROCS case shows headroom.
func BenchmarkPipeline(b *testing.B) {
	events, g := realtimeWorkload(b)
	rule := detector.PaperRule()
	shardCounts := []int{1, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		shardCounts = append(shardCounts, n)
	}
	for _, shards := range shardCounts {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			flagged := 0
			for i := 0; i < b.N; i++ {
				p := detector.NewPipeline(rule, g, detector.WithShards(shards))
				for _, ev := range events {
					p.Observe(ev)
				}
				p.Close()
				flagged = p.FlaggedCount()
			}
			reportRealtime(b, flagged, len(events))
		})
	}
	// The configuration detectd actually ships with: the pipeline
	// rebuilds the graph from accept events, so every accept takes the
	// write lock against the shards' clustering-coefficient reads.
	// This keeps lock contention on the deployed path visible to the
	// CI bench smoke.
	b.Run("shards=4/reconstruct", func(b *testing.B) {
		flagged := 0
		for i := 0; i < b.N; i++ {
			p := detector.NewPipeline(rule, nil,
				detector.WithShards(4), detector.WithGraphReconstruction())
			for _, ev := range events {
				p.Observe(ev)
			}
			p.Close()
			flagged = p.FlaggedCount()
		}
		reportRealtime(b, flagged, len(events))
	})
}

// BenchmarkPipelineBatch replays the trace through Ingest in
// wire-batch-sized chunks — the path detectd takes off the v2 feed
// (stream batches → arena-partitioned sub-batches → one channel hop
// per shard), compared against the per-event Observe dispatch of
// BenchmarkPipeline.
func BenchmarkPipelineBatch(b *testing.B) {
	events, g := realtimeWorkload(b)
	rule := detector.PaperRule()
	const chunk = 256 // stream.DefaultMaxBatch
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			flagged := 0
			for i := 0; i < b.N; i++ {
				p := detector.NewPipeline(rule, g, detector.WithShards(shards))
				for off := 0; off < len(events); off += chunk {
					end := off + chunk
					if end > len(events) {
						end = len(events)
					}
					p.Ingest(detector.Batch{Events: events[off:end]})
				}
				p.Close()
				flagged = p.FlaggedCount()
			}
			reportRealtime(b, flagged, len(events))
		})
	}
}

// BenchmarkCampaignSimulation times the full agent-level pipeline —
// the cost of generating one ground-truth campaign.
func BenchmarkCampaignSimulation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := RunCampaign(CampaignConfig{
			Seed: int64(i), Normals: 3000, Sybils: 40, Hours: 400, Params: DefaultParams(),
		})
		_ = c.Network().NumAccounts()
	}
}

// BenchmarkTopologyGeneration times paper/10-scale topology synthesis.
func BenchmarkTopologyGeneration(b *testing.B) {
	b.ReportAllocs()
	cfg := sybtopo.DefaultConfig()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		t := sybtopo.Generate(cfg)
		_ = t.NumSybils()
	}
}

// BenchmarkExt2Honeypots regenerates the honeypot extension: Sybil
// requests trapped by popular vs unpopular monitoring accounts.
func BenchmarkExt2Honeypots(b *testing.B) {
	benchExperiment(b, "ext2", "per_hp_popular", "per_hp_unpopular")
}

// BenchmarkExt3FeatureAblation regenerates the per-feature ablation of
// the detector (each §2.2 attribute's stand-alone accuracy).
func BenchmarkExt3FeatureAblation(b *testing.B) {
	benchExperiment(b, "ext3", "acc_freq1h", "acc_outAccept", "acc_cc", "acc_full")
}
