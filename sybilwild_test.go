package sybilwild

import (
	"path/filepath"
	"testing"

	"sybilwild/internal/trace"
)

// TestFacadeEndToEnd exercises the public API the way the quickstart
// example does: simulate, extract, fit, evaluate, snapshot, reload.
func TestFacadeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("facade campaign in -short mode")
	}
	cfg := DefaultCampaign(3)
	cfg.Normals = 2500
	cfg.Sybils = 35
	c := RunCampaign(cfg)

	if c.Network().NumAccounts() != cfg.Normals+cfg.Sybils {
		t.Fatalf("accounts = %d", c.Network().NumAccounts())
	}
	ds := c.GroundTruth()
	if len(ds.Vectors) != cfg.Normals+cfg.Sybils {
		t.Fatalf("dataset size = %d", len(ds.Vectors))
	}

	rule := FitRule(ds)
	conf := rule.Evaluate(ds)
	if conf.Accuracy() < 0.97 {
		t.Errorf("fitted rule accuracy = %.3f", conf.Accuracy())
	}
	if conf.TPR() < 0.7 {
		t.Errorf("fitted rule TPR = %.3f", conf.TPR())
	}

	acc := CrossValidateSVM(ds, 5, DefaultSVMConfig())
	if acc < 0.97 {
		t.Errorf("SVM CV accuracy = %.3f", acc)
	}

	// Snapshot to disk and reload.
	path := filepath.Join(t.TempDir(), "c.gob.gz")
	snap := c.Snapshot("facade test", cfg.Seed, cfg.Hours)
	if err := snap.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := trace.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	re := loaded.Rebuild()
	if re.Graph().NumEdges() != c.Network().Graph().NumEdges() {
		t.Fatal("round-trip lost edges")
	}
	// Features identical after round trip.
	orig := ExtractFeatures(c.Network(), c.Pop.Sybils[:3])
	got := ExtractFeatures(re, loaded.SybilIDs[:3])
	for i := range orig {
		if orig[i] != got[i] {
			t.Fatalf("feature drift after reload: %+v vs %+v", orig[i], got[i])
		}
	}
}

func TestFacadeExperimentDispatch(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments in -short mode")
	}
	r := NewSmallExperiments(1)
	rep, err := r.Run("table3")
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "table3" {
		t.Fatalf("report = %+v", rep)
	}
	ids := ExperimentIDs()
	if len(ids) != 15 {
		t.Fatalf("experiment ids = %v", ids)
	}
	if _, err := RunExperiment("bogus", 1); err == nil {
		t.Fatal("bogus id did not error")
	}
}

func TestPaperRuleConstants(t *testing.T) {
	r := PaperRule()
	if r.OutAcceptMax != 0.5 || r.FreqMin != 20 || r.CCMax != 0.01 {
		t.Fatalf("paper constants changed: %+v", r)
	}
}

func TestInvalidCampaignPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on invalid config")
		}
	}()
	RunCampaign(CampaignConfig{})
}
