package spool

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sybilwild/internal/osn"
	"sybilwild/internal/wire"
)

func testEvent(i int) osn.Event {
	return osn.Event{
		Type:   osn.EvFriendRequest,
		At:     int64(i),
		Actor:  osn.AccountID(i % 97),
		Target: osn.AccountID((i + 1) % 89),
	}
}

// appendN appends events with sequences [from, from+n) one batch per
// call, the shape the transport's Broadcast produces.
func appendN(t *testing.T, sp *Spool, from uint64, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		seq := from + uint64(i)
		if _, err := sp.Append(seq, []osn.Event{testEvent(int(seq))}); err != nil {
			t.Fatalf("append seq %d: %v", seq, err)
		}
	}
}

// drain reads everything from seq to the spool head, asserting
// sequence continuity and event identity.
func drain(t *testing.T, sp *Spool, from uint64) (count int) {
	t.Helper()
	rd, err := sp.ReadFrom(from)
	if err != nil {
		t.Fatalf("ReadFrom(%d): %v", from, err)
	}
	defer rd.Close()
	next := from
	var buf []osn.Event
	for {
		first, evs, err := rd.Next(buf[:0], 256)
		if errors.Is(err, io.EOF) {
			return count
		}
		if err != nil {
			t.Fatalf("Next at seq %d: %v", next, err)
		}
		if first != next {
			t.Fatalf("batch starts at %d, want %d", first, next)
		}
		for i, ev := range evs {
			want := testEvent(int(first) + i)
			if ev != want {
				t.Fatalf("seq %d: event %+v, want %+v", first+uint64(i), ev, want)
			}
		}
		next += uint64(len(evs))
		count += len(evs)
		buf = evs
	}
}

func TestAppendReadRoundTrip(t *testing.T) {
	sp, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	appendN(t, sp, 1, 1000)
	if got := drain(t, sp, 1); got != 1000 {
		t.Fatalf("read %d events, want 1000", got)
	}
	if got := drain(t, sp, 501); got != 500 {
		t.Fatalf("mid-log read got %d events, want 500", got)
	}
	if first, end := sp.First(), sp.End(); first != 1 || end != 1000 {
		t.Fatalf("bounds [%d,%d], want [1,1000]", first, end)
	}
}

func TestReadInterleavedWithAppends(t *testing.T) {
	sp, err := Open(t.TempDir(), WithSegmentBytes(2048))
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	rd, err := sp.ReadFrom(1)
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	next := uint64(1)
	for round := 0; round < 20; round++ {
		appendN(t, sp, sp.End()+1, 37)
		for {
			first, evs, err := rd.Next(nil, 16)
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			if first != next {
				t.Fatalf("round %d: batch at %d, want %d", round, first, next)
			}
			next += uint64(len(evs))
		}
		if next != sp.End()+1 {
			t.Fatalf("round %d: reader caught up to %d, head at %d", round, next-1, sp.End())
		}
	}
}

func TestRollBySizeSealsAndIndexes(t *testing.T) {
	dir := t.TempDir()
	sp, err := Open(dir, WithSegmentBytes(1024))
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, sp, 1, 500)
	st := sp.Stats()
	if st.Segments < 3 {
		t.Fatalf("expected multiple segments from 1KiB rolling, got %d", st.Segments)
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, indexName)); err != nil {
		t.Fatalf("no index written: %v", err)
	}
	// Reopen: everything must still read back.
	sp2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer sp2.Close()
	if got := drain(t, sp2, 1); got != 500 {
		t.Fatalf("after reopen read %d events, want 500", got)
	}
	if sp2.End() != 500 {
		t.Fatalf("End after reopen = %d, want 500", sp2.End())
	}
	// And appending continues contiguously.
	appendN(t, sp2, 501, 50)
	if got := drain(t, sp2, 450); got != 101 {
		t.Fatalf("read across reopen boundary got %d, want 101", got)
	}
}

func TestRollByAge(t *testing.T) {
	sp, err := Open(t.TempDir(), WithSegmentAge(10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	appendN(t, sp, 1, 10)
	time.Sleep(25 * time.Millisecond)
	appendN(t, sp, 11, 1) // append after the age threshold must seal the old segment
	if st := sp.Stats(); st.Segments != 2 {
		t.Fatalf("segments = %d, want 2 (age roll)", st.Segments)
	}
	if got := drain(t, sp, 1); got != 11 {
		t.Fatalf("read %d events, want 11", got)
	}
}

func TestAppendContiguityEnforced(t *testing.T) {
	sp, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	appendN(t, sp, 1, 5)
	if _, err := sp.Append(7, []osn.Event{testEvent(7)}); err == nil {
		t.Fatal("gap append accepted; spool must enforce contiguity")
	}
	// The failed append must not have poisoned the store.
	if _, err := sp.Append(6, []osn.Event{testEvent(6)}); err != nil {
		t.Fatalf("contiguous append after rejected gap: %v", err)
	}
}

// TestReopenTruncatedTail is the crash edge the issue names: the
// active segment's last frame is torn (partial write at kill -9).
// Open must recover to the last complete batch, truncate the torn
// bytes, and continue appending from there.
func TestReopenTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	sp, err := Open(dir, WithSegmentBytes(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, sp, 1, 100)
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail: chop a few bytes off the active segment, leaving
	// a frame header that promises more bytes than exist.
	tail := activeSegmentPath(t, dir)
	fi, err := os.Stat(tail)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(tail, fi.Size()-7); err != nil {
		t.Fatal(err)
	}

	var logged []string
	sp2, err := Open(dir, WithLogger(func(f string, a ...any) {
		logged = append(logged, fmt.Sprintf(f, a...))
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer sp2.Close()
	if sp2.End() != 99 {
		t.Fatalf("End after torn-tail recovery = %d, want 99 (last complete batch)", sp2.End())
	}
	if len(logged) == 0 || !strings.Contains(strings.Join(logged, "\n"), "truncating") {
		t.Fatalf("torn tail recovered silently; want a loud log line, got %q", logged)
	}
	// Re-append the lost sequence and read the whole log back.
	appendN(t, sp2, 100, 1)
	if got := drain(t, sp2, 1); got != 100 {
		t.Fatalf("read %d events after recovery, want 100", got)
	}
}

// TestReopenCorruptTailFrame: tail damage inside the payload (not a
// clean truncation) must also recover to the last complete batch.
func TestReopenCorruptTailFrame(t *testing.T) {
	dir := t.TempDir()
	sp, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, sp, 1, 50)
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
	tail := activeSegmentPath(t, dir)
	fi, err := os.Stat(tail)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(tail, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Garbage mid-payload of the final frame.
	if _, err := f.WriteAt([]byte("XXXX"), fi.Size()-10); err != nil {
		t.Fatal(err)
	}
	f.Close()

	sp2, err := Open(dir, WithLogger(func(string, ...any) {}))
	if err != nil {
		t.Fatal(err)
	}
	defer sp2.Close()
	if sp2.End() != 49 {
		t.Fatalf("End after corrupt-frame recovery = %d, want 49", sp2.End())
	}
	if got := drain(t, sp2, 1); got != 49 {
		t.Fatalf("read %d events, want 49", got)
	}
}

// TestReopenAfterLostIndex: with the index gone (or corrupt), every
// segment is unindexed; recovery must chain-scan the whole contiguous
// history — an understated End() would make a restarted producer
// reuse already-assigned sequence numbers for different events.
func TestReopenAfterLostIndex(t *testing.T) {
	dir := t.TempDir()
	sp, err := Open(dir, WithSegmentBytes(1024))
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, sp, 1, 500)
	nsegs := sp.Stats().Segments
	if nsegs < 3 {
		t.Fatalf("need ≥3 segments, got %d", nsegs)
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, indexName)); err != nil {
		t.Fatal(err)
	}

	sp2, err := Open(dir, WithLogger(func(string, ...any) {}))
	if err != nil {
		t.Fatal(err)
	}
	if first, end := sp2.First(), sp2.End(); first != 1 || end != 500 {
		t.Fatalf("bounds after lost index = [%d,%d], want [1,500]", first, end)
	}
	if got := drain(t, sp2, 1); got != 500 {
		t.Fatalf("read %d events after lost-index recovery, want 500", got)
	}
	// Appends continue at the true end, and recovery re-wrote the
	// index so a third open trusts it again.
	appendN(t, sp2, 501, 20)
	if err := sp2.Close(); err != nil {
		t.Fatal(err)
	}
	sp3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer sp3.Close()
	if got := drain(t, sp3, 1); got != 520 {
		t.Fatalf("read %d events after second reopen, want 520", got)
	}
}

// TestDamagedSealedSegmentSkippedLoudly: a sealed segment that is
// missing or size-mismatched on reopen is skipped with a loud error,
// and the retained range shrinks to the contiguous suffix — reads
// below it fail with ErrPruned instead of silently jumping the hole.
func TestDamagedSealedSegmentSkippedLoudly(t *testing.T) {
	dir := t.TempDir()
	sp, err := Open(dir, WithSegmentBytes(1024))
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, sp, 1, 500)
	if sp.Stats().Segments < 4 {
		t.Fatalf("need ≥4 segments for the damage test, got %d", sp.Stats().Segments)
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}

	// Damage the second sealed segment (size mismatch).
	segs := sealedSegments(t, dir)
	if len(segs) < 2 {
		t.Fatalf("want ≥2 sealed segments, got %d", len(segs))
	}
	victim := segs[1]
	if err := os.Truncate(victim.path, victim.size/2); err != nil {
		t.Fatal(err)
	}

	var logged []string
	sp2, err := Open(dir, WithLogger(func(f string, a ...any) {
		logged = append(logged, fmt.Sprintf(f, a...))
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer sp2.Close()
	if len(logged) == 0 || !strings.Contains(strings.Join(logged, "\n"), "damaged") {
		t.Fatalf("damaged segment skipped silently; logs: %q", logged)
	}
	first := sp2.First()
	if first <= victim.last {
		t.Fatalf("retained range starts at %d, must start after the damaged segment's last seq %d", first, victim.last)
	}
	if sp2.End() != 500 {
		t.Fatalf("End = %d, want 500", sp2.End())
	}
	// Below the hole: loud ErrPruned. At the suffix: full read.
	if _, err := sp2.ReadFrom(1); !errors.Is(err, ErrPruned) {
		t.Fatalf("ReadFrom(1) across damage: err = %v, want ErrPruned", err)
	}
	if got := drain(t, sp2, first); got != int(500-first+1) {
		t.Fatalf("suffix read got %d events, want %d", got, 500-first+1)
	}
}

// TestRetentionNeverPrunesPastFloor: with a tiny byte budget, Prune
// deletes old sealed segments — but never one holding sequences above
// the floor (the transport's minimum subscriber ack).
func TestRetentionNeverPrunesPastFloor(t *testing.T) {
	sp, err := Open(t.TempDir(), WithSegmentBytes(1024), WithRetainBytes(2048))
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	appendN(t, sp, 1, 1000)
	before := sp.Stats()

	// Floor pins everything: nothing may go, regardless of budget.
	sp.Prune(0)
	if st := sp.Stats(); st.Segments != before.Segments || st.First != 1 {
		t.Fatalf("Prune(0) deleted pinned data: %+v -> %+v", before, st)
	}

	// Floor at 400: segments wholly ≤400 may go (budget forces it),
	// anything holding >400 must survive.
	sp.Prune(400)
	st := sp.Stats()
	if st.First == 1 {
		t.Fatal("budget-exceeded prune removed nothing")
	}
	if st.First > 401 {
		t.Fatalf("prune deleted un-acked sequences: first retained %d, floor 400", st.First)
	}
	if got := drain(t, sp, 401); got != 600 {
		t.Fatalf("post-prune read from 401 got %d events, want 600", got)
	}
	if _, err := sp.ReadFrom(st.First - 1); !errors.Is(err, ErrPruned) {
		t.Fatalf("read below retention: err = %v, want ErrPruned", err)
	}

	// Unlimited budget (the default) never prunes at all.
	sp2, err := Open(t.TempDir(), WithSegmentBytes(512))
	if err != nil {
		t.Fatal(err)
	}
	defer sp2.Close()
	appendN(t, sp2, 1, 500)
	sp2.Prune(500)
	if st := sp2.Stats(); st.First != 1 {
		t.Fatalf("zero-budget spool pruned: %+v", st)
	}
}

// TestPruneSurvivesReopen: retention state (the shrunken range) must
// be consistent after prune + reopen.
func TestPruneSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	sp, err := Open(dir, WithSegmentBytes(1024), WithRetainBytes(2048))
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, sp, 1, 1000)
	sp.Prune(800)
	first := sp.Stats().First
	if first == 1 {
		t.Fatal("prune removed nothing; test premise broken")
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
	sp2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer sp2.Close()
	if got := sp2.First(); got != first {
		t.Fatalf("First after reopen = %d, want %d", got, first)
	}
	if got := drain(t, sp2, first); got != int(1000-first+1) {
		t.Fatalf("read %d events after reopen, want %d", got, 1000-first+1)
	}
}

func TestReadFromBoundsChecked(t *testing.T) {
	sp, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	appendN(t, sp, 10, 5) // spool starts mid-sequence (restart adoption)
	if _, err := sp.ReadFrom(9); !errors.Is(err, ErrPruned) {
		t.Fatalf("below range: err = %v, want ErrPruned", err)
	}
	if _, err := sp.ReadFrom(15); err != nil { // End()+1: caught-up reader
		t.Fatalf("ReadFrom(End+1): %v", err)
	}
	if _, err := sp.ReadFrom(16); err == nil {
		t.Fatal("ReadFrom past End()+1 accepted")
	}
}

// TestAppendFrameMatchesAppend pins the pre-encoded entry point
// against the encoding one: alternating Append and AppendFrame must
// produce one contiguous log with identical read-back, and the frame
// path must enforce the same contiguity rule.
func TestAppendFrameMatchesAppend(t *testing.T) {
	sp, err := Open(t.TempDir(), WithSegmentBytes(2048))
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	seq := uint64(1)
	for i := 0; i < 100; i++ {
		evs := []osn.Event{testEvent(int(seq)), testEvent(int(seq) + 1), testEvent(int(seq) + 2)}
		if i%2 == 0 {
			if _, err := sp.Append(seq, evs); err != nil {
				t.Fatalf("Append seq %d: %v", seq, err)
			}
		} else {
			payload := wire.AppendBatch(nil, seq, evs)
			if _, err := sp.AppendFrame(seq, len(evs), payload); err != nil {
				t.Fatalf("AppendFrame seq %d: %v", seq, err)
			}
		}
		seq += uint64(len(evs))
	}
	if got := drain(t, sp, 1); got != 300 {
		t.Fatalf("read %d events, want 300", got)
	}
	gap := wire.AppendBatch(nil, seq+1, []osn.Event{testEvent(0)})
	if _, err := sp.AppendFrame(seq+1, 1, gap); err == nil {
		t.Fatal("non-contiguous AppendFrame accepted")
	}
}

// TestReaderNextFrame pins the raw-frame read path: frames come back
// byte-identical to what was appended, a mid-frame starting point
// returns the straddling frame whole, and EOF at the head clears once
// more is appended.
func TestReaderNextFrame(t *testing.T) {
	sp, err := Open(t.TempDir(), WithSegmentBytes(1024))
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	var want [][]byte
	seq := uint64(1)
	for i := 0; i < 50; i++ {
		evs := []osn.Event{testEvent(int(seq)), testEvent(int(seq) + 1)}
		payload := wire.AppendBatch(nil, seq, evs)
		want = append(want, payload)
		if _, err := sp.AppendFrame(seq, len(evs), payload); err != nil {
			t.Fatalf("append seq %d: %v", seq, err)
		}
		seq += 2
	}
	rd, err := sp.ReadFrom(1)
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	for i, w := range want {
		first, n, payload, err := rd.NextFrame()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if first != 1+uint64(2*i) || n != 2 {
			t.Fatalf("frame %d: first=%d n=%d, want %d/2", i, first, n, 1+2*i)
		}
		if string(payload) != string(w) {
			t.Fatalf("frame %d bytes diverge:\n%s\n%s", i, payload, w)
		}
	}
	if _, _, _, err := rd.NextFrame(); !errors.Is(err, io.EOF) {
		t.Fatalf("at head: err = %v, want EOF", err)
	}
	// Mid-frame start: seq 4 sits inside the frame covering 3-4.
	mid, err := sp.ReadFrom(4)
	if err != nil {
		t.Fatal(err)
	}
	defer mid.Close()
	first, n, payload, err := mid.NextFrame()
	if err != nil {
		t.Fatal(err)
	}
	if first != 3 || n != 2 || string(payload) != string(want[1]) {
		t.Fatalf("straddling frame: first=%d n=%d payload=%s", first, n, payload)
	}
	if first, _, _, err := mid.NextFrame(); err != nil || first != 5 {
		t.Fatalf("after straddle: first=%d err=%v, want 5/nil", first, err)
	}
}

func TestAppendAfterWriteErrorIsBroken(t *testing.T) {
	dir := t.TempDir()
	sp, err := Open(dir, WithSegmentBytes(512))
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	appendN(t, sp, 1, 10)
	// Sabotage the active file descriptor: close it behind the
	// spool's back so the next flush fails.
	sp.mu.Lock()
	sp.f.Close()
	sp.mu.Unlock()
	var sawErr error
	for i := 0; i < 100_000 && sawErr == nil; i++ {
		_, sawErr = sp.Append(sp.End()+1, []osn.Event{testEvent(i)})
	}
	if sawErr == nil {
		t.Fatal("writes to a closed file never surfaced")
	}
	if _, err := sp.Append(sp.End()+1, []osn.Event{testEvent(0)}); !errors.Is(err, ErrBroken) {
		t.Fatalf("append after failure: err = %v, want ErrBroken", err)
	}
}

// --- helpers ---

type segInfo struct {
	path        string
	first, last uint64
	size        int64
}

// sealedSegments reads the index file the way a test can trust.
func sealedSegments(t *testing.T, dir string) []segInfo {
	t.Helper()
	sp, err := Open(dir, WithLogger(func(string, ...any) {}))
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	sp.mu.Lock()
	defer sp.mu.Unlock()
	var out []segInfo
	for _, seg := range sp.segs {
		if seg.sealed {
			out = append(out, segInfo{path: seg.path, first: seg.first, last: seg.last, size: seg.size})
		}
	}
	return out
}

// activeSegmentPath returns the highest-numbered segment file.
func activeSegmentPath(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var best string
	var bestSeq uint64
	for _, e := range entries {
		if seq, ok := seqOf(e.Name()); ok && seq >= bestSeq {
			bestSeq = seq
			best = filepath.Join(dir, e.Name())
		}
	}
	if best == "" {
		t.Fatal("no segment files found")
	}
	return best
}
