// Package spool is the disk tier of the feed's replay path: an
// append-only store of sequenced event batches in segment files, so a
// subscriber can resume from sequences that have long left the
// transport's bounded in-memory replay windows. stream.Server appends
// every broadcast batch here (when configured with WithSpool) and
// reads segments back to serve resumes the memory tier answers with
// ErrGap — making large checkpoint intervals safe with small replay
// windows, and a detector cold-start from a stale checkpoint a replay
// from disk instead of a silent coverage gap.
//
// # Segment format
//
// A segment file spool-<firstseq>.log (sequence zero-padded so
// lexicographic order is sequence order) holds consecutive
// length-prefixed batch frames in the canonical internal/wire
// encoding — byte-identical to the frames the transport sends, so one
// codec serves both tiers. Frames within and across segments are
// gapless: each frame's first sequence is the previous frame's last
// plus one. The highest-numbered segment is active (append target);
// the rest are sealed, immutable, and recorded in an atomically
// rewritten index file (spool.index.json) with their sequence range
// and byte size.
//
// Rolling is by size (WithSegmentBytes) or age (WithSegmentAge): the
// active segment is flushed, fsynced, sealed into the index, and a new
// active segment opened. Appends between rolls are buffered —
// durability is per sealed segment, matching the feed's semantics (the
// producer's in-memory sequence assignment dies with the process
// anyway; the spool's job is surviving *consumer* restarts).
//
// # Recovery
//
// Open replays the index, verifies every sealed segment (existence and
// size), and scans the unindexed tail segment frame by frame: a
// truncated or corrupt tail (torn write at crash) is truncated back to
// the last complete frame and appending continues there. Damaged or
// missing sealed segments are skipped with a loud log line, and the
// retained range shrinks to the contiguous run of segments ending at
// the newest — a reader never silently jumps a gap.
//
// # Retention
//
// Prune(floor, budget semantics): sealed segments are deleted oldest
// first while the spool exceeds the retention budget (WithRetainBytes;
// 0 keeps everything), but never past the floor — the transport passes
// the minimum acknowledged sequence across live subscriber sessions,
// so no un-acked sequence is ever deleted out from under a consumer.
package spool

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"sybilwild/internal/osn"
	"sybilwild/internal/wire"
)

// Defaults; each has an Option override.
const (
	// DefaultSegmentBytes rolls the active segment once it reaches this
	// size. Small enough that retention pruning has useful granularity,
	// large enough that fsync-on-roll is rare.
	DefaultSegmentBytes = 8 << 20
	// indexName is the atomic index of sealed segments.
	indexName = "spool.index.json"
	// indexVersion identifies the index schema; a mismatch on load
	// falls back to a full directory scan.
	indexVersion = 1
)

// ErrPruned is returned when a read asks for a sequence below the
// spool's retained range — the segments holding it were pruned (or
// damaged and skipped). The transport surfaces this as ErrGap.
var ErrPruned = errors.New("spool: sequence pruned from retention")

// ErrBroken is returned by Append after a write error has poisoned
// the spool; the store never silently drops a batch mid-stream.
var ErrBroken = errors.New("spool: store broken by earlier write error")

type options struct {
	segmentBytes int64
	segmentAge   time.Duration
	retainBytes  int64
	logf         func(format string, args ...any)
}

// Option configures Open.
type Option func(*options)

// WithSegmentBytes sets the size threshold at which the active
// segment is sealed and a new one started.
func WithSegmentBytes(n int64) Option {
	return func(o *options) {
		if n > 0 {
			o.segmentBytes = n
		}
	}
}

// WithSegmentAge sets an age threshold for rolling: an active segment
// older than d is sealed on the next append even if under the size
// threshold, bounding how long the newest data can sit unsynced.
// Zero (the default) disables age-based rolling.
func WithSegmentAge(d time.Duration) Option {
	return func(o *options) {
		if d > 0 {
			o.segmentAge = d
		}
	}
}

// WithRetainBytes sets the retention budget: once sealed segments
// exceed it, Prune deletes the oldest (never past its floor). Zero
// (the default) retains everything.
func WithRetainBytes(n int64) Option {
	return func(o *options) {
		if n >= 0 {
			o.retainBytes = n
		}
	}
}

// WithLogger routes the spool's loud-error lines (damaged segments,
// truncated tails) somewhere other than the standard logger.
func WithLogger(logf func(format string, args ...any)) Option {
	return func(o *options) {
		if logf != nil {
			o.logf = logf
		}
	}
}

// segment is one file's metadata. For the active (last) segment size
// tracks logical bytes including the write buffer; flushed tracks what
// a reader may safely ReadAt.
type segment struct {
	path   string
	first  uint64 // first sequence in the file
	last   uint64 // last sequence in the file (== first-1 when empty)
	size   int64  // bytes (logical, including unflushed buffer for active)
	sealed bool
}

// indexFile is the persisted form of the sealed-segment list.
type indexFile struct {
	Version  int            `json:"version"`
	Segments []indexSegment `json:"segments"`
}

type indexSegment struct {
	File  string `json:"file"`
	First uint64 `json:"first"`
	Last  uint64 `json:"last"`
	Bytes int64  `json:"bytes"`
}

// Spool is a directory of append-only segment files holding the
// sequenced event log. Safe for concurrent use: one appender (the
// transport's Broadcast path) and any number of Readers.
type Spool struct {
	dir string
	opt options

	mu        sync.Mutex
	segs      []*segment // ascending by first; last one is active iff !sealed
	f         *os.File   // active segment file (nil until first append of a segment)
	wbuf      []byte     // pending bytes not yet written to f
	flushed   int64      // bytes of the active segment visible to readers
	openedAt  time.Time  // active segment creation time (age-based rolling)
	end       uint64     // last sequence appended (0 when empty)
	scratch   []byte     // frame encode buffer
	errSticky error      // first write failure; poisons future appends
}

// Open creates dir if needed, recovers any existing segments (index
// replay, damaged-segment skip, tail truncation) and returns the
// store ready to append at End()+1.
func Open(dir string, opts ...Option) (*Spool, error) {
	o := options{segmentBytes: DefaultSegmentBytes, logf: log.Printf}
	for _, fn := range opts {
		fn(&o)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("spool: %w", err)
	}
	s := &Spool{dir: dir, opt: o}
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

// Dir returns the spool's directory.
func (s *Spool) Dir() string { return s.dir }

func (s *Spool) segPath(first uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("spool-%020d.log", first))
}

// seqOf parses the first sequence out of a segment filename,
// reporting ok=false for foreign files.
func seqOf(name string) (uint64, bool) {
	base := filepath.Base(name)
	if !strings.HasPrefix(base, "spool-") || !strings.HasSuffix(base, ".log") {
		return 0, false
	}
	seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(base, "spool-"), ".log"), 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// recover rebuilds in-memory state from the directory: sealed
// segments from the index (each verified on disk), then the unindexed
// tail scanned frame by frame with torn tails truncated away.
func (s *Spool) recover() error {
	idx := s.readIndex()

	// Every segment-named file on disk, ascending by first sequence.
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("spool: %w", err)
	}
	onDisk := map[uint64]string{}
	var firsts []uint64
	for _, e := range entries {
		if first, ok := seqOf(e.Name()); ok && !e.IsDir() {
			onDisk[first] = filepath.Join(s.dir, e.Name())
			firsts = append(firsts, first)
		}
	}
	sort.Slice(firsts, func(i, j int) bool { return firsts[i] < firsts[j] })

	// Sealed segments: trust the index, verify the bytes exist. The
	// indexed history's end is tracked across damaged entries too —
	// the tail segment's contiguity is judged against where the log
	// actually reached, not where the surviving files reach.
	indexed := map[uint64]bool{}
	for _, is := range idx {
		indexed[is.First] = true
		if is.Last > s.end {
			s.end = is.Last
		}
		path := filepath.Join(s.dir, filepath.Base(is.File))
		fi, err := os.Stat(path)
		switch {
		case err != nil:
			s.opt.logf("spool: sealed segment %s (seqs %d-%d) missing: %v — skipping; resumes below %d will fail",
				is.File, is.First, is.Last, err, is.Last+1)
			continue
		case fi.Size() != is.Bytes:
			s.opt.logf("spool: sealed segment %s damaged: %d bytes on disk, index records %d — skipping; resumes below %d will fail",
				is.File, fi.Size(), is.Bytes, is.Last+1)
			continue
		}
		s.segs = append(s.segs, &segment{path: path, first: is.First, last: is.Last, size: is.Bytes, sealed: true})
	}
	sort.Slice(s.segs, func(i, j int) bool { return s.segs[i].first < s.segs[j].first })

	// Unindexed files: normally at most one — the active tail being
	// written when the process died (the index is only rewritten on
	// roll). A lost or corrupt index leaves the whole history
	// unindexed, so every contiguous segment is scanned and re-adopted
	// (all but the newest resealed); anything breaking the chain is
	// foreign or beyond a torn segment and is skipped loudly. Getting
	// this right is what keeps End() honest — an understated End would
	// make a restarted producer reuse already-assigned sequence
	// numbers for different events.
	var recovered []*segment
	for _, first := range firsts {
		if indexed[first] {
			continue
		}
		path := onDisk[first]
		if s.end != 0 && first != s.end+1 {
			s.opt.logf("spool: segment %s starts at seq %d, expected %d — skipping damaged/foreign file",
				filepath.Base(path), first, s.end+1)
			continue
		}
		last, size, err := s.scanTail(path, first)
		if err != nil {
			s.opt.logf("spool: tail segment %s unreadable: %v — skipping", filepath.Base(path), err)
			continue
		}
		seg := &segment{path: path, first: first, last: last, size: size}
		recovered = append(recovered, seg)
		s.segs = append(s.segs, seg)
		s.end = last
	}
	if len(recovered) > 0 {
		for _, seg := range recovered[:len(recovered)-1] {
			seg.sealed = true // older than the tail: immutable again
		}
		active := recovered[len(recovered)-1]
		f, err := os.OpenFile(active.path, os.O_WRONLY, 0)
		if err != nil {
			return fmt.Errorf("spool: reopen tail: %w", err)
		}
		if _, err := f.Seek(active.size, io.SeekStart); err != nil {
			f.Close()
			return fmt.Errorf("spool: reopen tail: %w", err)
		}
		s.f = f
		s.flushed = active.size
		s.openedAt = time.Now()
		if len(recovered) > 1 {
			// The resealed segments came from a lost index; rewrite it
			// so the next open trusts them without a rescan.
			if err := s.writeIndexLocked(); err != nil {
				s.opt.logf("spool: index rewrite after recovery: %v", err)
			}
		}
	}

	// Drop any leading segments that no longer chain contiguously into
	// the retained suffix (holes left by damaged/missing files).
	s.segs = contiguousSuffix(s.segs, s.opt.logf)
	return nil
}

// contiguousSuffix returns the longest suffix of segs (ascending) in
// which each segment starts where the previous ended, logging anything
// it cuts away.
func contiguousSuffix(segs []*segment, logf func(string, ...any)) []*segment {
	start := 0
	for i := 1; i < len(segs); i++ {
		if segs[i].first != segs[i-1].last+1 {
			start = i
		}
	}
	for _, dropped := range segs[:start] {
		logf("spool: segment %s (seqs %d-%d) precedes a gap — outside the retained range",
			filepath.Base(dropped.path), dropped.first, dropped.last)
	}
	return segs[start:]
}

// scanTail walks the frames of a recovered tail segment, validating
// sequence continuity, and truncates the file back to the last
// complete frame when it finds a torn or corrupt tail. It returns the
// last sequence held and the surviving byte size.
func (s *Spool) scanTail(path string, first uint64) (last uint64, size int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	var (
		br   = newByteReader(f)
		next = first
		good int64
		evs  []osn.Event
	)
	for {
		payload, err := br.frame()
		if err != nil {
			if !errors.Is(err, io.EOF) {
				s.opt.logf("spool: %s: torn tail at byte %d (%v) — truncating to last complete batch",
					filepath.Base(path), good, err)
			}
			break
		}
		seq, batch, ok := wire.ParseBatch(payload, evs[:0])
		evs = batch[:0]
		if !ok || seq != next || len(batch) == 0 {
			s.opt.logf("spool: %s: corrupt frame at byte %d — truncating to last complete batch",
				filepath.Base(path), good)
			break
		}
		next = seq + uint64(len(batch))
		good = br.offset
	}
	if fi, err := f.Stat(); err == nil && fi.Size() != good {
		if err := os.Truncate(path, good); err != nil {
			return 0, 0, fmt.Errorf("truncate torn tail: %w", err)
		}
	}
	return next - 1, good, nil
}

// byteReader reads length-prefixed frames sequentially, tracking the
// offset of the end of the last complete frame.
type byteReader struct {
	r      io.Reader
	buf    []byte
	offset int64
}

func newByteReader(r io.Reader) *byteReader { return &byteReader{r: r} }

// frame returns the next payload, or an error (io.EOF at a clean
// boundary, io.ErrUnexpectedEOF or a decode error on a torn tail).
func (b *byteReader) frame() ([]byte, error) {
	payload, err := wire.ReadFrame(b.r, b.buf)
	if err != nil {
		return nil, err
	}
	b.buf = payload
	b.offset += 4 + int64(len(payload))
	return payload, nil
}

// Append stores a batch of events with first sequence first. Batches
// must be contiguous: first must equal End()+1 (any starting sequence
// is accepted on an empty spool). It reports whether the append
// sealed a segment — the transport uses that as its cue to run
// retention. Appends after a write failure return ErrBroken: the
// spool never hides a hole in the log.
func (s *Spool) Append(first uint64, events []osn.Event) (rolled bool, err error) {
	if len(events) == 0 {
		return false, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.scratch = wire.AppendBatch(s.scratch[:0], first, events)
	return s.appendFrameLocked(first, len(events), s.scratch)
}

// AppendFrame stores a pre-encoded canonical batch frame covering n
// events starting at first. payload must be byte-identical to what
// wire.AppendBatch(nil, first, events) would emit — the broker's
// fan-out encodes each batch exactly once under the sequencer and
// hands the same immutable bytes here and to every subscriber socket,
// so this entry point skips the re-encode Append would do. The bytes
// are copied into the segment buffer; the caller keeps ownership of
// payload. Same contiguity and rolling rules as Append.
func (s *Spool) AppendFrame(first uint64, n int, payload []byte) (rolled bool, err error) {
	if n == 0 {
		return false, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appendFrameLocked(first, n, payload)
}

func (s *Spool) appendFrameLocked(first uint64, n int, payload []byte) (rolled bool, err error) {
	if s.errSticky != nil {
		return false, ErrBroken
	}
	if s.end != 0 && first != s.end+1 {
		return false, fmt.Errorf("spool: append at seq %d, want %d (batches must be contiguous)", first, s.end+1)
	}
	frameLen := int64(4 + len(payload))

	active := s.active()
	if active != nil && (active.size+frameLen > s.opt.segmentBytes ||
		(s.opt.segmentAge > 0 && time.Since(s.openedAt) > s.opt.segmentAge)) {
		if err := s.rollLocked(); err != nil {
			s.errSticky = err
			return false, err
		}
		rolled = true
		active = nil
	}
	if active == nil {
		if err := s.openSegmentLocked(first); err != nil {
			s.errSticky = err
			return rolled, err
		}
		active = s.active()
	}
	s.wbuf = wire.AppendFrame(s.wbuf, payload)
	active.size += frameLen
	active.last = first + uint64(n) - 1
	s.end = active.last
	// Keep the OS-visible file loosely current without a syscall per
	// append: large pending buffers are written out eagerly, small
	// ones wait for the next reader flush or roll.
	if int64(len(s.wbuf)) >= 256<<10 {
		if err := s.flushLocked(); err != nil {
			s.errSticky = err
			return rolled, err
		}
	}
	return rolled, nil
}

// active returns the append-target segment, or nil when the newest
// segment is sealed (or the spool is empty).
func (s *Spool) active() *segment {
	if len(s.segs) == 0 {
		return nil
	}
	if seg := s.segs[len(s.segs)-1]; !seg.sealed {
		return seg
	}
	return nil
}

// openSegmentLocked creates a fresh active segment starting at seq.
func (s *Spool) openSegmentLocked(seq uint64) error {
	path := s.segPath(seq)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if errors.Is(err, os.ErrExist) {
		// A leftover file recovery declared damaged/foreign (it was
		// not admitted as the tail); the live log owns the name.
		s.opt.logf("spool: replacing damaged leftover segment %s", filepath.Base(path))
		if rerr := os.Remove(path); rerr == nil {
			f, err = os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
		}
	}
	if err != nil {
		return fmt.Errorf("spool: create segment: %w", err)
	}
	s.f = f
	s.flushed = 0
	s.openedAt = time.Now()
	s.segs = append(s.segs, &segment{path: path, first: seq, last: seq - 1})
	return nil
}

// flushLocked writes the pending buffer to the active file, making it
// visible to readers.
func (s *Spool) flushLocked() error {
	if len(s.wbuf) == 0 {
		return nil
	}
	if s.f == nil {
		return errors.New("spool: pending bytes with no active segment")
	}
	if _, err := s.f.Write(s.wbuf); err != nil {
		return fmt.Errorf("spool: write segment: %w", err)
	}
	s.flushed += int64(len(s.wbuf))
	s.wbuf = s.wbuf[:0]
	return nil
}

// rollLocked seals the active segment: flush, fsync, close, record in
// the atomically-rewritten index.
func (s *Spool) rollLocked() error {
	active := s.active()
	if active == nil {
		return nil
	}
	if err := s.flushLocked(); err != nil {
		return err
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("spool: fsync on roll: %w", err)
	}
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("spool: close on roll: %w", err)
	}
	s.f = nil
	active.sealed = true
	if err := s.writeIndexLocked(); err != nil {
		return err
	}
	return nil
}

// writeIndexLocked atomically rewrites the sealed-segment index
// (tmp file, fsync, rename — a reader never sees a torn index).
func (s *Spool) writeIndexLocked() error {
	idx := indexFile{Version: indexVersion}
	for _, seg := range s.segs {
		if seg.sealed {
			idx.Segments = append(idx.Segments, indexSegment{
				File: filepath.Base(seg.path), First: seg.first, Last: seg.last, Bytes: seg.size,
			})
		}
	}
	tmp, err := os.CreateTemp(s.dir, "spool.index-*.tmp")
	if err != nil {
		return fmt.Errorf("spool: index: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op once renamed
	enc := json.NewEncoder(tmp)
	if err := enc.Encode(&idx); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("spool: index: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, indexName)); err != nil {
		return fmt.Errorf("spool: index: %w", err)
	}
	if d, err := os.Open(s.dir); err == nil {
		d.Sync() // best effort: make the rename durable too
		d.Close()
	}
	return nil
}

// readIndex loads the sealed-segment index, returning nil (full
// rescan territory) when it is absent or unreadable.
func (s *Spool) readIndex() []indexSegment {
	data, err := os.ReadFile(filepath.Join(s.dir, indexName))
	if err != nil {
		return nil
	}
	var idx indexFile
	if json.Unmarshal(data, &idx) != nil || idx.Version != indexVersion {
		s.opt.logf("spool: unreadable or mismatched index %s — treating sealed segments as unindexed", indexName)
		return nil
	}
	return idx.Segments
}

// First returns the first retained sequence (0 when the spool is
// empty). A resume at any sequence in [First(), End()+1] is
// serviceable.
func (s *Spool) First() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.segs) == 0 {
		return 0
	}
	return s.segs[0].first
}

// End returns the last appended sequence (0 when the spool is empty).
func (s *Spool) End() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.end
}

// Stats summarizes the store for operator output.
type Stats struct {
	Segments int    // segment files retained (incl. active)
	Bytes    int64  // total logical bytes
	First    uint64 // first retained sequence (0: empty)
	End      uint64 // last appended sequence (0: empty)
}

// Stats returns a snapshot of spool accounting.
func (s *Spool) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{Segments: len(s.segs), End: s.end}
	if len(s.segs) > 0 {
		st.First = s.segs[0].first
	}
	for _, seg := range s.segs {
		st.Bytes += seg.size
	}
	return st
}

// Prune enforces the retention budget: while total size exceeds
// WithRetainBytes, sealed segments are deleted oldest-first — but
// never a segment holding sequences above floor. The transport passes
// the minimum acknowledged sequence across its subscriber sessions as
// floor, so pruning can starve on a lagging consumer but can never
// delete an event some session still needs. With a zero budget Prune
// is a no-op: everything is retained.
func (s *Spool) Prune(floor uint64) {
	if s.opt.retainBytes <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var total int64
	for _, seg := range s.segs {
		total += seg.size
	}
	removed := false
	for len(s.segs) > 0 && total > s.opt.retainBytes {
		oldest := s.segs[0]
		if !oldest.sealed || oldest.last > floor {
			break // active, or still within some subscriber's unacked range
		}
		if err := os.Remove(oldest.path); err != nil && !errors.Is(err, os.ErrNotExist) {
			s.opt.logf("spool: prune %s: %v", filepath.Base(oldest.path), err)
			break
		}
		total -= oldest.size
		s.segs = s.segs[1:]
		removed = true
	}
	if removed {
		if err := s.writeIndexLocked(); err != nil {
			s.opt.logf("spool: index rewrite after prune: %v", err)
		}
	}
}

// Close flushes and syncs the active segment and rewrites the index.
// The spool stays readable on disk; a later Open resumes appending.
func (s *Spool) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.flushLocked()
	if s.f != nil {
		if serr := s.f.Sync(); err == nil {
			err = serr
		}
		if cerr := s.f.Close(); err == nil {
			err = cerr
		}
		s.f = nil
	}
	if ierr := s.writeIndexLocked(); err == nil {
		err = ierr
	}
	return err
}

// Reader iterates batches from a starting sequence toward the head,
// reading sealed segments and the flushed prefix of the active one.
// A Reader holds no lock between calls and tolerates concurrent
// appends; it is not safe for concurrent use itself.
type Reader struct {
	sp   *Spool
	next uint64 // next sequence to hand out

	f     *os.File // current segment (read handle)
	path  string
	off   int64
	limit int64 // readable bytes in the current segment (cached; refreshed on exhaustion)
	hdr   [4]byte
	buf   []byte
}

// ReadFrom positions a reader at seq. Serviceable starting points are
// [First(), End()+1] on a non-empty spool (the latter meaning
// "caught up; wait for more"), or exactly 1... any seq on an empty
// spool positions at the (future) head. Reads below the retained
// range return ErrPruned.
func (s *Spool) ReadFrom(seq uint64) (*Reader, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.segs) > 0 {
		if seq < s.segs[0].first {
			return nil, fmt.Errorf("%w: seq %d below retained range [%d,%d]", ErrPruned, seq, s.segs[0].first, s.end)
		}
		if seq > s.end+1 {
			return nil, fmt.Errorf("spool: seq %d ahead of spooled log (end %d)", seq, s.end)
		}
	}
	return &Reader{sp: s, next: seq}, nil
}

// Next appends up to max events starting at the reader's position to
// dst, returning the first sequence and the filled slice (which may
// alias dst's backing array). It coalesces small on-disk frames up to
// max. io.EOF means the reader has caught up with everything
// appended; later calls may succeed again as the spool grows.
func (r *Reader) Next(dst []osn.Event, max int) (first uint64, evs []osn.Event, err error) {
	evs = dst
	first = r.next
	for len(evs)-len(dst) < max {
		payload, err := r.frameAt(r.next)
		if err != nil {
			if len(evs) > len(dst) {
				return first, evs, nil // hand out what we have before reporting EOF
			}
			return 0, dst, err
		}
		seq, batch, ok := wire.ParseBatch(payload, evs)
		if !ok {
			return 0, dst, fmt.Errorf("spool: corrupt frame in %s at byte %d (seq %d expected)",
				filepath.Base(r.path), r.off, r.next)
		}
		n := len(batch) - len(evs)
		if n == 0 || seq > r.next {
			return 0, dst, fmt.Errorf("spool: frame in %s covers seqs %d-%d, expected %d",
				filepath.Base(r.path), seq, seq+uint64(n)-1, r.next)
		}
		if seq+uint64(n)-1 < r.next {
			// Whole frame below the starting sequence: a mid-segment
			// start scans forward from the segment head.
			evs = batch[:len(evs)]
			continue
		}
		if seq < r.next { // first frame of a mid-segment start: trim the prefix
			skip := int(r.next - seq)
			copy(batch[len(evs):], batch[len(evs)+skip:])
			batch = batch[:len(batch)-skip]
		}
		evs = batch
		r.next = first + uint64(len(evs)-len(dst))
	}
	return first, evs, nil
}

// NextFrame returns the raw payload of the next on-disk frame at or
// past the reader's position, with the first sequence and event count
// it covers. Frames wholly below the position (a mid-segment start)
// are skipped; a frame straddling the position is returned whole, with
// first below the reader's prior position — the caller trims or
// re-encodes the suffix it wants. The payload aliases the reader's
// buffer and is only valid until the next call. This is the zero-copy
// counterpart of Next for callers that forward canonical frames
// verbatim instead of decoding them.
func (r *Reader) NextFrame() (first uint64, n int, payload []byte, err error) {
	for {
		payload, err = r.frameAt(r.next)
		if err != nil {
			return 0, 0, nil, err
		}
		var ok bool
		first, n, ok = wire.ParseBatchBounds(payload)
		if !ok {
			return 0, 0, nil, fmt.Errorf("spool: corrupt frame in %s at byte %d (seq %d expected)",
				filepath.Base(r.path), r.off, r.next)
		}
		if n == 0 || first > r.next {
			return 0, 0, nil, fmt.Errorf("spool: frame in %s covers seqs %d-%d, expected %d",
				filepath.Base(r.path), first, first+uint64(n)-1, r.next)
		}
		if first+uint64(n)-1 < r.next {
			continue // wholly below a mid-segment starting point
		}
		r.next = first + uint64(n)
		return first, n, payload, nil
	}
}

// frameAt returns the raw payload of the frame containing seq,
// advancing the reader's file position past it. io.EOF means seq is
// beyond everything flushed AND appended; the caller retries later.
// The read limit is cached so sealed segments are consumed without
// touching the spool lock per frame.
func (r *Reader) frameAt(seq uint64) ([]byte, error) {
	if r.f == nil || r.off+4 > r.limit {
		if err := r.reposition(seq); err != nil {
			return nil, err
		}
	}
	if _, err := r.f.ReadAt(r.hdr[:], r.off); err != nil {
		return nil, fmt.Errorf("spool: read %s: %w", filepath.Base(r.path), err)
	}
	n := int64(uint32(r.hdr[0])<<24 | uint32(r.hdr[1])<<16 | uint32(r.hdr[2])<<8 | uint32(r.hdr[3]))
	if n > wire.MaxFrameSize || r.off+4+n > r.limit {
		return nil, fmt.Errorf("spool: corrupt frame length %d in %s at byte %d", n, filepath.Base(r.path), r.off)
	}
	if cap(r.buf) < int(n) {
		r.buf = make([]byte, n)
	}
	r.buf = r.buf[:n]
	if _, err := r.f.ReadAt(r.buf, r.off+4); err != nil {
		return nil, fmt.Errorf("spool: read %s: %w", filepath.Base(r.path), err)
	}
	r.off += 4 + n
	return r.buf, nil
}

// reposition points the reader at the segment containing seq (opening
// it and resetting the offset on a segment switch) and refreshes the
// cached read limit — the full size for a sealed segment, the flushed
// prefix for the active one (pending appender bytes are flushed first
// so a catch-up never starves behind the write buffer).
func (r *Reader) reposition(seq uint64) error {
	r.sp.mu.Lock()
	defer r.sp.mu.Unlock()
	var target *segment
	for _, seg := range r.sp.segs {
		if seg.first <= seq && seq <= seg.last {
			target = seg
			break
		}
	}
	if target == nil {
		if len(r.sp.segs) > 0 && seq < r.sp.segs[0].first {
			return fmt.Errorf("%w: seq %d below retained range", ErrPruned, seq)
		}
		return io.EOF // at (or past) the head; nothing to read yet
	}
	if r.path != target.path {
		r.closeFile()
		f, err := os.Open(target.path)
		if err != nil {
			// Pruned between position checks, or damaged.
			return fmt.Errorf("%w: open %s: %v", ErrPruned, filepath.Base(target.path), err)
		}
		r.f = f
		r.path = target.path
		r.off = 0
	}
	if target.sealed {
		r.limit = target.size
		return nil
	}
	// Active segment: make everything appended visible, then read up
	// to the flushed watermark.
	if err := r.sp.flushLocked(); err != nil {
		return err
	}
	r.limit = r.sp.flushed
	if r.off >= r.limit {
		return io.EOF // caught up with the appender
	}
	return nil
}

func (r *Reader) closeFile() {
	if r.f != nil {
		r.f.Close()
		r.f = nil
		r.path = ""
		r.off = 0
	}
}

// Close releases the reader's file handle.
func (r *Reader) Close() error {
	r.closeFile()
	return nil
}
