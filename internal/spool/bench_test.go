package spool

import (
	"errors"
	"io"
	"testing"

	"sybilwild/internal/osn"
)

// BenchmarkSpoolAppend measures the disk tier's ingest cost in the
// shape Broadcast produces: one single-event batch per append,
// buffered writes, fsync only on segment roll.
func BenchmarkSpoolAppend(b *testing.B) {
	sp, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer sp.Close()
	ev := [1]osn.Event{{Type: osn.EvFriendRequest, At: 1, Actor: 2, Target: 3}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sp.Append(uint64(i)+1, ev[:]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "Mevents/s")
	st := sp.Stats()
	b.ReportMetric(float64(st.Bytes)/float64(b.N), "B/event")
}

// BenchmarkSpoolRead measures raw segment replay: decode throughput
// of a spooled log read back batch by batch, the storage-layer cost
// under BenchmarkResumeFromDisk's end-to-end number.
func BenchmarkSpoolRead(b *testing.B) {
	sp, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer sp.Close()
	ev := [1]osn.Event{{Type: osn.EvFriendRequest, At: 1, Actor: 2, Target: 3}}
	for i := 0; i < b.N; i++ {
		if _, err := sp.Append(uint64(i)+1, ev[:]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	rd, err := sp.ReadFrom(1)
	if err != nil {
		b.Fatal(err)
	}
	defer rd.Close()
	var buf []osn.Event
	total := 0
	for {
		_, evs, err := rd.Next(buf[:0], 256)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			b.Fatal(err)
		}
		total += len(evs)
		buf = evs
	}
	b.StopTimer()
	if total != b.N {
		b.Fatalf("read %d events, want %d", total, b.N)
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds()/1e6, "Mevents/s")
}
