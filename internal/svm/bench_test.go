package svm

import (
	"testing"

	"sybilwild/internal/stats"
)

func BenchmarkTrainRBF(b *testing.B) {
	r := stats.NewRand(1)
	x, y := blobs(r, 500, 2) // 1000 samples — the paper's ground-truth size
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Train(x, y, DefaultConfig())
	}
}

func BenchmarkTrainLinear(b *testing.B) {
	r := stats.NewRand(1)
	x, y := blobs(r, 500, 2)
	cfg := DefaultConfig()
	cfg.Kernel = Linear{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Train(x, y, cfg)
	}
}

func BenchmarkPredict(b *testing.B) {
	r := stats.NewRand(1)
	x, y := blobs(r, 500, 2)
	m := Train(x, y, DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Classify(x[i%len(x)])
	}
}

func BenchmarkCrossValidate(b *testing.B) {
	r := stats.NewRand(1)
	x, y := blobs(r, 200, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CrossValidate(x, y, 5, DefaultConfig())
	}
}
