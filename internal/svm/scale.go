package svm

import "math"

// Scaler standardizes features to zero mean and unit variance, fitted
// on training data only (so cross-validation folds don't leak).
type Scaler struct {
	Mean []float64
	Std  []float64
}

// FitScaler learns per-feature mean and standard deviation.
func FitScaler(x [][]float64) *Scaler {
	if len(x) == 0 {
		return &Scaler{}
	}
	d := len(x[0])
	s := &Scaler{Mean: make([]float64, d), Std: make([]float64, d)}
	for _, row := range x {
		for j, v := range row {
			s.Mean[j] += v
		}
	}
	for j := range s.Mean {
		s.Mean[j] /= float64(len(x))
	}
	for _, row := range x {
		for j, v := range row {
			dv := v - s.Mean[j]
			s.Std[j] += dv * dv
		}
	}
	for j := range s.Std {
		s.Std[j] = math.Sqrt(s.Std[j] / float64(len(x)))
		if s.Std[j] == 0 {
			s.Std[j] = 1
		}
	}
	return s
}

// Transform returns standardized copies of the rows.
func (s *Scaler) Transform(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	for i, row := range x {
		out[i] = s.TransformRow(row)
	}
	return out
}

// TransformRow standardizes a single row.
func (s *Scaler) TransformRow(row []float64) []float64 {
	out := make([]float64, len(row))
	for j, v := range row {
		out[j] = (v - s.Mean[j]) / s.Std[j]
	}
	return out
}
