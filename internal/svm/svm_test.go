package svm

import (
	"math"
	"testing"

	"sybilwild/internal/stats"
)

// blobs returns two Gaussian blobs labelled ±1.
func blobs(r *stats.Rand, n int, sep float64) ([][]float64, []float64) {
	var x [][]float64
	var y []float64
	for i := 0; i < n; i++ {
		x = append(x, []float64{r.NormFloat64() + sep, r.NormFloat64() + sep})
		y = append(y, 1)
		x = append(x, []float64{r.NormFloat64() - sep, r.NormFloat64() - sep})
		y = append(y, -1)
	}
	return x, y
}

func TestLinearSeparable(t *testing.T) {
	r := stats.NewRand(1)
	x, y := blobs(r, 100, 3)
	cfg := DefaultConfig()
	cfg.Kernel = Linear{}
	m := Train(x, y, cfg)
	errs := 0
	for i := range x {
		if m.Classify(x[i]) != (y[i] > 0) {
			errs++
		}
	}
	if errs > 2 {
		t.Fatalf("training errors = %d on separable blobs", errs)
	}
	if m.NumSupport() == 0 || m.NumSupport() == len(x) {
		t.Fatalf("support vectors = %d of %d", m.NumSupport(), len(x))
	}
}

func TestRBFNonlinear(t *testing.T) {
	// XOR-like problem: linear fails, RBF succeeds.
	r := stats.NewRand(2)
	var x [][]float64
	var y []float64
	for i := 0; i < 200; i++ {
		a := r.Float64()*2 - 1
		b := r.Float64()*2 - 1
		x = append(x, []float64{a, b})
		if (a > 0) == (b > 0) {
			y = append(y, 1)
		} else {
			y = append(y, -1)
		}
	}
	cfg := DefaultConfig()
	cfg.Kernel = RBF{Gamma: 2}
	cfg.MaxIter = 400
	m := Train(x, y, cfg)
	errs := 0
	for i := range x {
		if m.Classify(x[i]) != (y[i] > 0) {
			errs++
		}
	}
	if frac := float64(errs) / float64(len(x)); frac > 0.08 {
		t.Fatalf("RBF error rate = %.3f on XOR", frac)
	}
}

func TestLinearFailsOnXOR(t *testing.T) {
	// Sanity: the problem above is genuinely nonlinear.
	r := stats.NewRand(2)
	var x [][]float64
	var y []float64
	for i := 0; i < 200; i++ {
		a := r.Float64()*2 - 1
		b := r.Float64()*2 - 1
		x = append(x, []float64{a, b})
		if (a > 0) == (b > 0) {
			y = append(y, 1)
		} else {
			y = append(y, -1)
		}
	}
	cfg := DefaultConfig()
	cfg.Kernel = Linear{}
	m := Train(x, y, cfg)
	errs := 0
	for i := range x {
		if m.Classify(x[i]) != (y[i] > 0) {
			errs++
		}
	}
	if frac := float64(errs) / float64(len(x)); frac < 0.25 {
		t.Fatalf("linear kernel 'solved' XOR (%.3f error); test is broken", frac)
	}
}

func TestKernels(t *testing.T) {
	a := []float64{1, 2}
	b := []float64{3, -1}
	if got := (Linear{}).Eval(a, b); got != 1 {
		t.Fatalf("linear = %v", got)
	}
	if got := (Poly{Degree: 2, Coef: 1}).Eval(a, b); got != 4 {
		t.Fatalf("poly = %v", got)
	}
	rbf := RBF{Gamma: 0.5}
	if got := rbf.Eval(a, a); got != 1 {
		t.Fatalf("rbf self = %v", got)
	}
	want := math.Exp(-0.5 * (4 + 9))
	if got := rbf.Eval(a, b); math.Abs(got-want) > 1e-12 {
		t.Fatalf("rbf = %v, want %v", got, want)
	}
	for _, k := range []Kernel{Linear{}, rbf, Poly{Degree: 3}} {
		if k.String() == "" {
			t.Fatal("kernel has empty name")
		}
	}
}

func TestTrainValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on bad labels")
		}
	}()
	Train([][]float64{{1}}, []float64{2}, DefaultConfig())
}

func TestTrainEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on empty input")
		}
	}()
	Train(nil, nil, DefaultConfig())
}

func TestScaler(t *testing.T) {
	x := [][]float64{{1, 10}, {3, 10}, {5, 10}}
	s := FitScaler(x)
	if s.Mean[0] != 3 || s.Mean[1] != 10 {
		t.Fatalf("mean = %v", s.Mean)
	}
	if s.Std[1] != 1 {
		t.Fatalf("constant feature std should default to 1, got %v", s.Std[1])
	}
	tx := s.Transform(x)
	if math.Abs(tx[0][0]+tx[2][0]) > 1e-12 {
		t.Fatalf("standardization not symmetric: %v", tx)
	}
	if tx[0][1] != 0 {
		t.Fatalf("constant feature should map to 0: %v", tx[0][1])
	}
}

func TestScalerEmpty(t *testing.T) {
	s := FitScaler(nil)
	if len(s.Mean) != 0 {
		t.Fatal("empty scaler has dims")
	}
}

func TestCrossValidateAccuracy(t *testing.T) {
	r := stats.NewRand(3)
	x, y := blobs(r, 200, 2.5)
	c := CrossValidate(x, y, 5, DefaultConfig())
	if c.Accuracy() < 0.97 {
		t.Fatalf("CV accuracy = %.3f on well-separated blobs", c.Accuracy())
	}
	total := c.TP + c.TN + c.FP + c.FN
	if total != len(x) {
		t.Fatalf("CV covered %d samples, want %d (each exactly once)", total, len(x))
	}
}

func TestCrossValidateStratified(t *testing.T) {
	// Heavily imbalanced data: stratification must keep both classes in
	// every fold, or some folds would be single-class and unlearnable.
	r := stats.NewRand(4)
	var x [][]float64
	var y []float64
	for i := 0; i < 10; i++ {
		x = append(x, []float64{5 + r.NormFloat64()*0.1})
		y = append(y, 1)
	}
	for i := 0; i < 90; i++ {
		x = append(x, []float64{-5 + r.NormFloat64()*0.1})
		y = append(y, -1)
	}
	c := CrossValidate(x, y, 5, DefaultConfig())
	if c.TP != 10 {
		t.Fatalf("minority class TP = %d of 10", c.TP)
	}
}

func TestGridSearch(t *testing.T) {
	r := stats.NewRand(5)
	x, y := blobs(r, 80, 2.5)
	good := DefaultConfig()
	bad := DefaultConfig()
	bad.Kernel = RBF{Gamma: 10000} // absurd gamma: memorizes nothing useful
	best, conf := GridSearch(x, y, 4, []Config{bad, good})
	if best.Kernel.String() != good.Kernel.String() {
		t.Fatalf("grid search picked %v", best.Kernel)
	}
	if conf.Accuracy() < 0.9 {
		t.Fatalf("best accuracy = %.3f", conf.Accuracy())
	}
}

func TestDeterministicTraining(t *testing.T) {
	r := stats.NewRand(6)
	x, y := blobs(r, 60, 2)
	m1 := Train(x, y, DefaultConfig())
	m2 := Train(x, y, DefaultConfig())
	if m1.NumSupport() != m2.NumSupport() || m1.b != m2.b {
		t.Fatal("training not deterministic")
	}
}

func TestPolyKernelTraining(t *testing.T) {
	// A circular boundary: poly degree 2 separates it, linear cannot.
	r := stats.NewRand(7)
	var x [][]float64
	var y []float64
	for i := 0; i < 300; i++ {
		a := r.NormFloat64()
		b := r.NormFloat64()
		x = append(x, []float64{a, b})
		if a*a+b*b < 1 {
			y = append(y, 1)
		} else {
			y = append(y, -1)
		}
	}
	cfg := DefaultConfig()
	cfg.Kernel = Poly{Degree: 2, Coef: 1}
	cfg.MaxIter = 400
	m := Train(x, y, cfg)
	errs := 0
	for i := range x {
		if m.Classify(x[i]) != (y[i] > 0) {
			errs++
		}
	}
	if frac := float64(errs) / float64(len(x)); frac > 0.1 {
		t.Fatalf("poly kernel error rate = %.3f on circle", frac)
	}
}

func TestDecisionSignMatchesClassify(t *testing.T) {
	r := stats.NewRand(8)
	x, y := blobs(r, 50, 2)
	m := Train(x, y, DefaultConfig())
	for i := range x {
		if (m.Decision(x[i]) >= 0) != m.Classify(x[i]) {
			t.Fatal("Decision and Classify disagree")
		}
	}
}
