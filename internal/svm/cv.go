package svm

import (
	"sybilwild/internal/stats"
)

// CrossValidate performs stratified k-fold cross-validation — the
// paper's protocol: "randomly partition the original sample into 5
// sub-samples, 4 of which are used for training ... and the last used
// to test" — and returns the confusion matrix accumulated over all
// folds. Labels are ±1 with +1 = Sybil. Features are standardized
// inside each fold using training statistics only.
func CrossValidate(x [][]float64, y []float64, k int, cfg Config) stats.Confusion {
	if k < 2 {
		k = 2
	}
	r := stats.NewRand(cfg.Seed + 1000)
	// Stratified assignment: shuffle each class separately, deal into
	// folds round-robin.
	var pos, neg []int
	for i, v := range y {
		if v > 0 {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	stats.Shuffle(r, pos)
	stats.Shuffle(r, neg)
	fold := make([]int, len(y))
	for i, idx := range pos {
		fold[idx] = i % k
	}
	for i, idx := range neg {
		fold[idx] = i % k
	}

	var total stats.Confusion
	for f := 0; f < k; f++ {
		var trainX [][]float64
		var trainY []float64
		var testX [][]float64
		var testY []float64
		for i := range y {
			if fold[i] == f {
				testX = append(testX, x[i])
				testY = append(testY, y[i])
			} else {
				trainX = append(trainX, x[i])
				trainY = append(trainY, y[i])
			}
		}
		if len(trainX) == 0 || len(testX) == 0 {
			continue
		}
		sc := FitScaler(trainX)
		model := Train(sc.Transform(trainX), trainY, cfg)
		for i, row := range testX {
			pred := model.Classify(sc.TransformRow(row))
			total.Observe(testY[i] > 0, pred)
		}
	}
	return total
}

// GridSearch evaluates each candidate config with k-fold CV and
// returns the one with the highest accuracy, plus its confusion
// matrix.
func GridSearch(x [][]float64, y []float64, k int, candidates []Config) (Config, stats.Confusion) {
	best := candidates[0]
	var bestC stats.Confusion
	bestAcc := -1.0
	for _, cfg := range candidates {
		c := CrossValidate(x, y, k, cfg)
		if acc := c.Accuracy(); acc > bestAcc {
			bestAcc = acc
			best = cfg
			bestC = c
		}
	}
	return best, bestC
}
