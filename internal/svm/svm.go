// Package svm implements a from-scratch support vector machine
// (sequential minimal optimization, Platt's algorithm in the
// simplified form) with linear, RBF and polynomial kernels, feature
// standardization, and stratified k-fold cross-validation.
//
// The paper trains an SVM on its 1,000+1,000 ground-truth accounts and
// reports ~99% accuracy for both classes (Table 1); at that scale this
// implementation trains in well under a second, which is the point the
// paper then makes — the expensive classifier buys nothing over
// thresholds.
package svm

import (
	"fmt"
	"math"

	"sybilwild/internal/stats"
)

// Kernel computes inner products in feature space.
type Kernel interface {
	Eval(a, b []float64) float64
	String() string
}

// Linear is the standard dot-product kernel.
type Linear struct{}

// Eval implements Kernel.
func (Linear) Eval(a, b []float64) float64 { return dot(a, b) }

// String implements Kernel.
func (Linear) String() string { return "linear" }

// RBF is the Gaussian radial basis kernel exp(-γ‖a-b‖²).
type RBF struct{ Gamma float64 }

// Eval implements Kernel.
func (k RBF) Eval(a, b []float64) float64 {
	var d2 float64
	for i := range a {
		d := a[i] - b[i]
		d2 += d * d
	}
	return math.Exp(-k.Gamma * d2)
}

// String implements Kernel.
func (k RBF) String() string { return fmt.Sprintf("rbf(γ=%g)", k.Gamma) }

// Poly is the polynomial kernel (a·b + c)^d.
type Poly struct {
	Degree int
	Coef   float64
}

// Eval implements Kernel.
func (k Poly) Eval(a, b []float64) float64 {
	return math.Pow(dot(a, b)+k.Coef, float64(k.Degree))
}

// String implements Kernel.
func (k Poly) String() string { return fmt.Sprintf("poly(d=%d,c=%g)", k.Degree, k.Coef) }

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Config holds training hyperparameters.
type Config struct {
	C         float64 // soft-margin penalty
	Tol       float64 // KKT violation tolerance
	MaxPasses int     // passes without change before stopping
	MaxIter   int     // hard iteration cap
	Kernel    Kernel
	Seed      int64
}

// DefaultConfig returns hyperparameters that work well on the
// standardized Sybil feature space.
func DefaultConfig() Config {
	return Config{C: 10, Tol: 1e-3, MaxPasses: 8, MaxIter: 200, Kernel: RBF{Gamma: 0.5}, Seed: 1}
}

// Model is a trained SVM.
type Model struct {
	kernel Kernel
	x      [][]float64 // support vectors
	y      []float64   // labels of support vectors (±1)
	alpha  []float64
	b      float64
}

// Train fits an SVM on x (rows = samples) with labels y ∈ {+1, -1}
// using simplified SMO. It panics on shape mismatches or labels
// outside {+1, -1}.
func Train(x [][]float64, y []float64, cfg Config) *Model {
	n := len(x)
	if n == 0 || len(y) != n {
		panic("svm: bad training shapes")
	}
	for _, v := range y {
		if v != 1 && v != -1 {
			panic("svm: labels must be ±1")
		}
	}
	if cfg.Kernel == nil {
		cfg.Kernel = Linear{}
	}
	r := stats.NewRand(cfg.Seed)

	alpha := make([]float64, n)
	b := 0.0
	// Precompute the kernel matrix: ground-truth-scale problems
	// (n ≈ 2000) fit easily, and SMO touches entries many times.
	k := make([][]float64, n)
	for i := range k {
		k[i] = make([]float64, n)
		for j := 0; j <= i; j++ {
			v := cfg.Kernel.Eval(x[i], x[j])
			k[i][j] = v
			k[j][i] = v
		}
	}
	f := func(i int) float64 {
		s := b
		for j := 0; j < n; j++ {
			if alpha[j] != 0 {
				s += alpha[j] * y[j] * k[i][j]
			}
		}
		return s
	}

	passes := 0
	iter := 0
	for passes < cfg.MaxPasses && iter < cfg.MaxIter {
		iter++
		changed := 0
		for i := 0; i < n; i++ {
			ei := f(i) - y[i]
			if !((y[i]*ei < -cfg.Tol && alpha[i] < cfg.C) || (y[i]*ei > cfg.Tol && alpha[i] > 0)) {
				continue
			}
			j := r.Intn(n - 1)
			if j >= i {
				j++
			}
			ej := f(j) - y[j]
			ai, aj := alpha[i], alpha[j]
			var lo, hi float64
			if y[i] != y[j] {
				lo = math.Max(0, aj-ai)
				hi = math.Min(cfg.C, cfg.C+aj-ai)
			} else {
				lo = math.Max(0, ai+aj-cfg.C)
				hi = math.Min(cfg.C, ai+aj)
			}
			if lo == hi {
				continue
			}
			eta := 2*k[i][j] - k[i][i] - k[j][j]
			if eta >= 0 {
				continue
			}
			ajNew := aj - y[j]*(ei-ej)/eta
			if ajNew > hi {
				ajNew = hi
			} else if ajNew < lo {
				ajNew = lo
			}
			if math.Abs(ajNew-aj) < 1e-5 {
				continue
			}
			aiNew := ai + y[i]*y[j]*(aj-ajNew)
			b1 := b - ei - y[i]*(aiNew-ai)*k[i][i] - y[j]*(ajNew-aj)*k[i][j]
			b2 := b - ej - y[i]*(aiNew-ai)*k[i][j] - y[j]*(ajNew-aj)*k[j][j]
			switch {
			case aiNew > 0 && aiNew < cfg.C:
				b = b1
			case ajNew > 0 && ajNew < cfg.C:
				b = b2
			default:
				b = (b1 + b2) / 2
			}
			alpha[i], alpha[j] = aiNew, ajNew
			changed++
		}
		if changed == 0 {
			passes++
		} else {
			passes = 0
		}
	}

	// Keep only support vectors.
	m := &Model{kernel: cfg.Kernel, b: b}
	for i := 0; i < n; i++ {
		if alpha[i] > 1e-8 {
			m.x = append(m.x, x[i])
			m.y = append(m.y, y[i])
			m.alpha = append(m.alpha, alpha[i])
		}
	}
	return m
}

// Decision returns the signed decision value for a sample.
func (m *Model) Decision(x []float64) float64 {
	s := m.b
	for i := range m.x {
		s += m.alpha[i] * m.y[i] * m.kernel.Eval(m.x[i], x)
	}
	return s
}

// Classify returns true for the +1 class (Sybil).
func (m *Model) Classify(x []float64) bool { return m.Decision(x) >= 0 }

// NumSupport returns the number of support vectors retained.
func (m *Model) NumSupport() int { return len(m.x) }
