package sybtopo

import (
	"sort"

	"sybilwild/internal/graph"
	"sybilwild/internal/stats"
)

// SybilDegree returns the Sybil-edge degree of every Sybil.
func (t *Topology) SybilDegree() []int { return t.SybilGraph.Degrees() }

// TotalDegree returns, per Sybil, attack degree + Sybil-edge degree —
// the "All Edges" series of Figure 5.
func (t *Topology) TotalDegree() []int {
	out := make([]int, t.NumSybils())
	for i := range out {
		out[i] = int(t.AttackDeg[i]) + t.SybilGraph.Degree(graph.NodeID(i))
	}
	return out
}

// FracWithSybilEdge returns the fraction of Sybils with at least one
// Sybil edge (the paper reports ≈20%, §3.2).
func (t *Topology) FracWithSybilEdge() float64 {
	n := t.NumSybils()
	if n == 0 {
		return 0
	}
	c := 0
	for i := 0; i < n; i++ {
		if t.SybilGraph.Degree(graph.NodeID(i)) > 0 {
			c++
		}
	}
	return float64(c) / float64(n)
}

// ComponentInfo summarizes one connected Sybil component (Table 2 row).
type ComponentInfo struct {
	Sybils     int
	SybilEdges int
	AtkEdges   int64
	Audience   int64
	Members    []graph.NodeID
}

// Components returns the connected components of the Sybil-edge graph
// restricted to Sybils that have at least one Sybil edge, ordered by
// descending size. Audience is not filled in (it is expensive);
// use FillAudience for the rows you report.
func (t *Topology) Components() []ComponentInfo {
	// Mask out isolated Sybils: the paper's component analysis is over
	// Sybils with ≥1 Sybil edge.
	keep := make([]bool, t.NumSybils())
	for i := range keep {
		keep[i] = t.SybilGraph.Degree(graph.NodeID(i)) > 0
	}
	sub, _, rev := t.SybilGraph.Induced(keep)
	labels, sizes := sub.Components()
	groups := graph.ComponentMembers(labels, sizes)
	infos := make([]ComponentInfo, 0, len(groups))
	for _, grp := range groups {
		info := ComponentInfo{Sybils: len(grp)}
		seen := make(map[graph.NodeID]struct{}, len(grp))
		for _, sid := range grp {
			orig := rev[sid]
			info.Members = append(info.Members, orig)
			seen[orig] = struct{}{}
			info.AtkEdges += int64(t.AttackDeg[orig])
		}
		for _, sid := range grp {
			orig := rev[sid]
			for _, e := range t.SybilGraph.Neighbors(orig) {
				if _, ok := seen[e.To]; ok && orig < e.To {
					info.SybilEdges++
				}
			}
		}
		infos = append(infos, info)
	}
	sort.SliceStable(infos, func(a, b int) bool { return infos[a].Sybils > infos[b].Sybils })
	return infos
}

// FillAudience computes the distinct-normal audience of a component by
// regenerating each member's attack-target sample from its stored
// seed. Targets are drawn from the operator's pool for narrow-fleet
// members and from the global Zipf popularity distribution otherwise.
func (t *Topology) FillAudience(info *ComponentInfo) {
	seen := make(map[int64]struct{}, info.AtkEdges/2+16)
	for _, m := range info.Members {
		t.eachAttackTarget(int(m), func(target int64) {
			seen[target] = struct{}{}
		})
	}
	info.Audience = int64(len(seen))
}

// eachAttackTarget regenerates Sybil i's accepted attack targets.
func (t *Topology) eachAttackTarget(i int, fn func(int64)) {
	r := stats.NewRand(t.TargetSeed[i])
	deg := int(t.AttackDeg[i])
	if op := t.Op[i]; op >= 0 && t.Operators[op].Narrow {
		o := t.Operators[op]
		next := r.ZipfRanks(t.Cfg.ZipfS, int(o.PoolSize))
		for k := 0; k < deg; k++ {
			fn(o.PoolStart + int64(next()))
		}
		return
	}
	// Wide: a mixture of Zipf-popular head users and ordinary users
	// from the crawled neighbourhoods. The Zipf sampler needs an
	// int-sized n; the virtual normal population fits comfortably.
	next := r.ZipfRanks(t.Cfg.ZipfS, int(t.Normals))
	for k := 0; k < deg; k++ {
		if r.Bernoulli(t.Cfg.PopularTargetP) {
			fn(int64(next()))
		} else {
			fn(r.Int63n(t.Normals))
		}
	}
}

// AttackTargets returns Sybil i's regenerated attack-target list.
func (t *Topology) AttackTargets(i int) []int64 {
	out := make([]int64, 0, t.AttackDeg[i])
	t.eachAttackTarget(i, func(v int64) { out = append(out, v) })
	return out
}

// EdgeOrder describes where a Sybil's Sybil-edges fall in its
// chronological friend list — one column of Figure 8.
type EdgeOrder struct {
	Sybil      graph.NodeID
	TotalEdges int
	// Positions of Sybil edges in [0, TotalEdges), ascending.
	SybilRanks []int
}

// EdgeOrderOf reconstructs the creation-order column for one Sybil.
// Attack edges are spread over the account's activity window, so a
// Sybil edge's rank is its time-offset rank among all of the account's
// edges.
func (t *Topology) EdgeOrderOf(i graph.NodeID) EdgeOrder {
	nbrs := t.SybilGraph.Neighbors(i)
	total := int(t.AttackDeg[i]) + len(nbrs)
	eo := EdgeOrder{Sybil: i, TotalEdges: total}
	for _, e := range nbrs {
		frac := float64(e.Time-t.Arrival[i]) / float64(t.Window[i])
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		rank := int(frac * float64(total-1))
		eo.SybilRanks = append(eo.SybilRanks, rank)
	}
	sort.Ints(eo.SybilRanks)
	return eo
}

// IsIntentional reports whether Sybil i belongs to an intentional
// (deliberately linked) fleet — ground truth for validating the
// Figure 8 vertical-line detection.
func (t *Topology) IsIntentional(i graph.NodeID) bool {
	op := t.Op[i]
	return op >= 0 && t.Operators[op].Intentional
}

// GiantComponent returns the largest component (after Components()
// ordering). It panics if there are no components.
func (t *Topology) GiantComponent() ComponentInfo {
	comps := t.Components()
	if len(comps) == 0 {
		panic("sybtopo: no sybil components")
	}
	return comps[0]
}
