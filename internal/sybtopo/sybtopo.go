// Package sybtopo generates paper-scale Sybil topology without paying
// event-level simulation cost. It implements the same generative
// mechanism the paper identifies in §3.4 — popularity-biased target
// sampling by Sybil-management tools, Sybils accepting every incoming
// request — as a direct statistical model, so the Figure 5–9 and
// Table 2 analyses can run over hundreds of thousands of Sybils.
//
// The model distinguishes three attacker populations:
//
//   - Wide operators: the bulk of Sybils. Each samples attack targets
//     from the global (Zipf-popular) user population. Accidental
//     Sybil→Sybil edges form when the sampled "popular user" happens to
//     be another (successful, hence popular) Sybil; targets are drawn
//     preferentially by attractiveness.
//   - Narrow operators: professional fleets whose tools crawl a small
//     region of the graph. Their Sybils aim huge request volumes at a
//     small audience (Table 2's second component: 631 Sybils, 1M attack
//     edges, only 21K audience) and accidentally befriend each other at
//     a much higher rate, forming medium components disconnected from
//     the giant one.
//   - Intentional operators: the handful of attackers (the circled
//     columns of Figure 8) who deliberately chain their Sybils together
//     immediately at creation time.
//
// An agent-level cross-check lives in the ablation benches: at small
// scale, the full agents simulation and this model agree on the
// Sybil-edge fraction and component shape.
package sybtopo

import (
	"math"
	"slices"

	"sybilwild/internal/graph"
	"sybilwild/internal/sim"
	"sybilwild/internal/stats"
)

// Config parameterizes topology generation. All *Base fields are
// expressed at full paper scale (667,723 Sybils, 120M users) and are
// multiplied by Scale.
type Config struct {
	Scale float64 // fraction of paper scale; 0.1 ⇒ ~66,772 Sybils
	Seed  int64

	SybilsBase  int // 667,723 at scale 1
	NormalsBase int // 120M at scale 1

	// Attack-edge volume per Sybil (log-normal over accepted requests).
	AttackMuLog    float64
	AttackSigmaLog float64

	// Global accidental Sybil-edge rate: mean (over Sybils) number of
	// Sybil targets a wide Sybil's tool hands it. A Sybil's own rate
	// scales with its request volume — accidental Sybil targets are a
	// fixed small fraction of everything a tool crawls, so an account
	// sending 10× the requests collects ≈10× the accidental Sybil
	// edges. This volume-coupling is what produces the giant-but-loose
	// component: high-volume Sybils are simultaneously the most visible
	// targets and the most prolific requesters, so they form a sparse
	// core that low-volume Sybils dangle off with degree 1 (Figure 9).
	GlobalRate float64

	// RecencyDays bounds how old a Sybil account can be and still
	// surface in another tool's crawl: tools rank *currently* popular
	// accounts, and a dormant Sybil's visibility decays. This is also
	// what makes Sybil-edge positions uniform in the receiver's friend
	// list (Figure 8): edges land while both lists are still growing.
	RecencyDays int

	// Zipf exponent for target popularity within a crawl pool
	// (audience overlap).
	ZipfS float64

	// PopularTargetP is the probability a wide tool's request goes to a
	// Zipf-popular head user; the remainder go to ordinary users
	// discovered while crawling those hubs' neighbourhoods (snowball
	// sampling reaches both). This mixture sets the giant component's
	// audience/attack-edge ratio (Table 2 row 1: ≈0.66).
	PopularTargetP float64

	// Narrow operators: fleet sizes and audience pool sizes at full
	// scale, plus their attack-volume multiplier and intra-fleet
	// accidental edge rate.
	NarrowOpSizesBase []int
	NarrowPoolBase    []int
	NarrowAttackMult  float64
	NarrowIntraRate   float64

	// Intentional operators: number of deliberately-linked fleets at
	// full paper scale (multiplied by Scale like the other *Base
	// fields) and their size range.
	IntentionalOpsBase   int
	IntentionalMin       int
	IntentionalMax       int
	IntentionalExtraRate float64 // extra random intra-fleet links

	CampaignDays int // arrival spread (the paper's data covers 2008–2011)
}

// DefaultConfig returns the paper/10 default used by the benchmark
// harness. Unit tests use SmallConfig.
func DefaultConfig() Config {
	return Config{
		Scale:       0.1,
		Seed:        1,
		SybilsBase:  667723,
		NormalsBase: 120_000_000,

		AttackMuLog:    4.1, // median ≈ 60 accepted requests
		AttackSigmaLog: 1.1,

		GlobalRate:     0.24,
		RecencyDays:    150,
		ZipfS:          1.35,
		PopularTargetP: 0.25,

		NarrowOpSizesBase: []int{6310, 680, 510, 370, 200, 120},
		NarrowPoolBase:    []int{210140, 77020, 151790, 138860, 60000, 40000},
		NarrowAttackMult:  10,
		NarrowIntraRate:   1.8,

		IntentionalOpsBase:   400,
		IntentionalMin:       3,
		IntentionalMax:       16,
		IntentionalExtraRate: 0.5,

		CampaignDays: 3 * 365,
	}
}

// SmallConfig returns a fast configuration (~1/100 scale) for tests.
func SmallConfig(seed int64) Config {
	c := DefaultConfig()
	c.Scale = 0.01
	c.Seed = seed
	return c
}

// Operator describes one attacker fleet in the generated topology.
type Operator struct {
	Narrow      bool
	Intentional bool
	PoolStart   int64 // narrow ops: start of their audience block
	PoolSize    int64 // narrow ops: audience block size
	First, Last int   // member Sybil index range [First, Last]
}

// Topology is a generated Sybil topology. Sybil indices are dense
// [0, N) in arrival order; they are also the node IDs of SybilGraph.
type Topology struct {
	Cfg     Config
	Normals int64 // size of the virtual normal population

	// Per-Sybil data, indexed by Sybil (arrival order).
	AttackDeg  []int32    // accepted attack edges
	Arrival    []sim.Time // account creation time
	Window     []sim.Time // duration of the attack campaign activity
	TargetSeed []int64    // per-Sybil seed regenerating its attack targets
	Op         []int32    // operator index, -1 for independent wide Sybils

	Operators []Operator

	// SybilGraph holds only Sybil↔Sybil edges, timestamped with their
	// creation times.
	SybilGraph *graph.Graph
}

// NumSybils returns the number of generated Sybils.
func (t *Topology) NumSybils() int { return len(t.AttackDeg) }

// Generate builds a topology from the configuration.
func Generate(cfg Config) *Topology {
	r := stats.NewRand(cfg.Seed)
	n := int(float64(cfg.SybilsBase) * cfg.Scale)
	if n < 10 {
		n = 10
	}
	normals := int64(float64(cfg.NormalsBase) * cfg.Scale)
	if normals < 1000 {
		normals = 1000
	}
	campaign := sim.Time(cfg.CampaignDays) * sim.TicksPerDay

	t := &Topology{
		Cfg:        cfg,
		Normals:    normals,
		AttackDeg:  make([]int32, n),
		Arrival:    make([]sim.Time, n),
		Window:     make([]sim.Time, n),
		TargetSeed: make([]int64, n),
		Op:         make([]int32, n),
		SybilGraph: graph.New(n),
	}
	t.SybilGraph.AddNodes(n)

	// Arrivals: uniform over the campaign, sorted so index order is
	// arrival order.
	for i := 0; i < n; i++ {
		t.Arrival[i] = sim.Time(r.Int63n(int64(campaign)))
	}
	sortTimes(t.Arrival)
	for i := 0; i < n; i++ {
		t.Op[i] = -1
		t.TargetSeed[i] = r.Int63()
		t.AttackDeg[i] = int32(r.LogNormal(cfg.AttackMuLog, cfg.AttackSigmaLog)) + 1
		// Activity window: how long the account keeps sending.
		days := r.LogNormal(4.1, 0.6) // median ≈ 60 days
		t.Window[i] = sim.Time(days * float64(sim.TicksPerDay))
	}

	// Carve out narrow and intentional operator fleets as contiguous
	// arrival blocks (fleets spin up together).
	used := make([]bool, n)
	claimBlock := func(size int) (int, bool) {
		if size >= n {
			return 0, false
		}
		for try := 0; try < 50; try++ {
			start := r.Intn(n - size)
			ok := true
			for i := start; i < start+size; i++ {
				if used[i] {
					ok = false
					break
				}
			}
			if ok {
				for i := start; i < start+size; i++ {
					used[i] = true
				}
				return start, true
			}
		}
		return 0, false
	}

	for k, base := range cfg.NarrowOpSizesBase {
		size := int(float64(base) * cfg.Scale)
		if size < 3 {
			size = 3
		}
		start, ok := claimBlock(size)
		if !ok {
			continue
		}
		pool := int64(1000)
		if k < len(cfg.NarrowPoolBase) {
			pool = int64(float64(cfg.NarrowPoolBase[k]) * cfg.Scale)
		}
		if pool < 100 {
			pool = 100
		}
		poolStart := r.Int63n(maxI64(normals-pool, 1))
		op := Operator{Narrow: true, PoolStart: poolStart, PoolSize: pool, First: start, Last: start + size - 1}
		opIdx := int32(len(t.Operators))
		t.Operators = append(t.Operators, op)
		for i := start; i < start+size; i++ {
			t.Op[i] = opIdx
			t.AttackDeg[i] = int32(float64(t.AttackDeg[i]) * cfg.NarrowAttackMult)
		}
	}
	nIntentional := int(float64(cfg.IntentionalOpsBase) * cfg.Scale)
	if nIntentional < 2 {
		nIntentional = 2
	}
	for k := 0; k < nIntentional; k++ {
		size := cfg.IntentionalMin + r.Intn(cfg.IntentionalMax-cfg.IntentionalMin+1)
		start, ok := claimBlock(size)
		if !ok {
			continue
		}
		op := Operator{Intentional: true, First: start, Last: start + size - 1}
		opIdx := int32(len(t.Operators))
		t.Operators = append(t.Operators, op)
		for i := start; i < start+size; i++ {
			t.Op[i] = opIdx
		}
	}

	t.createSybilEdges(r)
	return t
}

// createSybilEdges lays down the three kinds of Sybil↔Sybil edges.
func (t *Topology) createSybilEdges(r *stats.Rand) {
	n := t.NumSybils()
	// Global attractiveness: a Sybil surfaces in a wide tool's crawl in
	// proportion to how popular it became. Narrow-fleet Sybils live in
	// crawl backwaters and do not surface globally.
	// Visibility is superlinear in popularity: crawl ranking compounds
	// degree (appearing in more friend lists, higher search placement),
	// so the probability a tool surfaces a Sybil grows faster than its
	// degree. The exponent concentrates accidental in-edges on the core.
	wPrefix := make([]float64, n+1)
	for i := 0; i < n; i++ {
		var w float64
		if op := t.Op[i]; op < 0 || !t.Operators[op].Narrow {
			a := float64(t.AttackDeg[i])
			w = a * math.Sqrt(a)
		}
		wPrefix[i+1] = wPrefix[i] + w
	}
	lookback := sim.Time(t.Cfg.RecencyDays) * sim.TicksPerDay
	if lookback <= 0 {
		lookback = 90 * sim.TicksPerDay
	}
	// firstAtOrAfter returns the first index whose arrival is ≥ at.
	firstAtOrAfter := func(at sim.Time) int {
		lo, hi := 0, n
		for lo < hi {
			mid := (lo + hi) / 2
			if t.Arrival[mid] < at {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}
	// pickConcurrent samples a target for a request sent at time ts by
	// Sybil j: a Sybil that arrived within the recency window before ts
	// and whose friend list is still growing (window covers ts), chosen
	// proportionally to global attractiveness. Returns -1 if none.
	pickConcurrent := func(j int, ts sim.Time) int {
		lo := firstAtOrAfter(ts - lookback)
		hi := firstAtOrAfter(ts + 1)
		if hi <= lo {
			return -1
		}
		mass := wPrefix[hi] - wPrefix[lo]
		if mass <= 0 {
			return -1
		}
		for try := 0; try < 10; try++ {
			u := wPrefix[lo] + r.Float64()*mass
			a, b := lo, hi-1
			for a < b {
				mid := (a + b) / 2
				if wPrefix[mid+1] <= u {
					a = mid + 1
				} else {
					b = mid
				}
			}
			if a != j && t.Arrival[a]+t.Window[a] >= ts {
				return a
			}
		}
		return -1
	}

	// Mean attack volume over globally-visible Sybils, for the
	// volume-coupled accidental rate.
	var meanA float64
	{
		var sum float64
		cnt := 0
		for i := 0; i < n; i++ {
			if op := t.Op[i]; op >= 0 && t.Operators[op].Narrow {
				continue
			}
			sum += float64(t.AttackDeg[i])
			cnt++
		}
		if cnt > 0 {
			meanA = sum / float64(cnt)
		}
	}

	for j := 0; j < n; j++ {
		opIdx := t.Op[j]
		switch {
		case opIdx >= 0 && t.Operators[opIdx].Narrow:
			op := t.Operators[opIdx]
			// Intra-fleet accidental edges: the fleet's tool crawls its
			// own region, where its own Sybils are the popular accounts.
			k := r.Poisson(t.Cfg.NarrowIntraRate)
			for e := 0; e < k; e++ {
				tgt := t.pickEarlierInOp(r, op, j)
				if tgt >= 0 {
					ts := t.Arrival[j] + sim.Time(r.Float64()*float64(t.Window[j]))
					t.SybilGraph.AddEdge(graph.NodeID(j), graph.NodeID(tgt), ts)
				}
			}
		case opIdx >= 0 && t.Operators[opIdx].Intentional:
			op := t.Operators[opIdx]
			// Deliberate linking: chain to the previous fleet member the
			// moment the account is created (Figure 8's vertical lines),
			// plus occasional extra links back into the fleet.
			if j > op.First {
				t.SybilGraph.AddEdge(graph.NodeID(j), graph.NodeID(j-1), t.Arrival[j])
				if r.Bernoulli(t.Cfg.IntentionalExtraRate) && j-op.First >= 2 {
					tgt := op.First + r.Intn(j-op.First)
					t.SybilGraph.AddEdge(graph.NodeID(j), graph.NodeID(tgt), t.Arrival[j]+1)
				}
			}
			// Intentional fleets still run wide tools afterwards.
			fallthrough
		default:
			rate := t.Cfg.GlobalRate
			if meanA > 0 {
				rate *= float64(t.AttackDeg[j]) / meanA
			}
			k := r.Poisson(rate)
			for e := 0; e < k; e++ {
				ts := t.Arrival[j] + sim.Time(r.Float64()*float64(t.Window[j]))
				tgt := pickConcurrent(j, ts)
				if tgt >= 0 {
					t.SybilGraph.AddEdge(graph.NodeID(j), graph.NodeID(tgt), ts)
				}
			}
		}
	}
}

func (t *Topology) pickEarlierInOp(r *stats.Rand, op Operator, j int) int {
	if j <= op.First {
		return -1
	}
	// Weighted by attack degree within the fleet's earlier members.
	var total float64
	for i := op.First; i < j; i++ {
		total += float64(t.AttackDeg[i])
	}
	if total <= 0 {
		return -1
	}
	u := r.Float64() * total
	for i := op.First; i < j; i++ {
		u -= float64(t.AttackDeg[i])
		if u <= 0 {
			return i
		}
	}
	return j - 1
}

func sortTimes(ts []sim.Time) {
	slices.Sort(ts)
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
