package sybtopo

import "testing"

func BenchmarkGenerateSmall(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Generate(SmallConfig(int64(i + 1)))
	}
}

func BenchmarkComponents(b *testing.B) {
	topo := Generate(SmallConfig(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		topo.Components()
	}
}

func BenchmarkFillAudienceGiant(b *testing.B) {
	topo := Generate(SmallConfig(1))
	giant := topo.GiantComponent()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := giant
		topo.FillAudience(&c)
	}
}
