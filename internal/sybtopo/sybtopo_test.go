package sybtopo

import (
	"testing"

	"sybilwild/internal/graph"
)

func genSmall(t *testing.T) *Topology {
	t.Helper()
	return Generate(SmallConfig(1))
}

func TestGenerateBasicShape(t *testing.T) {
	topo := genSmall(t)
	n := topo.NumSybils()
	if n < 6000 || n > 7000 {
		t.Fatalf("sybils = %d, want ≈6677 at 1/100 scale", n)
	}
	if topo.SybilGraph.NumNodes() != n {
		t.Fatal("graph size mismatch")
	}
	// Arrivals sorted.
	for i := 1; i < n; i++ {
		if topo.Arrival[i] < topo.Arrival[i-1] {
			t.Fatal("arrivals not sorted")
		}
	}
	for i := 0; i < n; i++ {
		if topo.AttackDeg[i] < 1 {
			t.Fatalf("attack degree %d at %d", topo.AttackDeg[i], i)
		}
		if topo.Window[i] <= 0 {
			t.Fatal("non-positive window")
		}
	}
}

func TestFracWithSybilEdgePaperBand(t *testing.T) {
	topo := genSmall(t)
	frac := topo.FracWithSybilEdge()
	// Paper §3.2: ~20% of Sybils have ≥1 Sybil edge. Allow a band.
	if frac < 0.10 || frac > 0.32 {
		t.Fatalf("frac with sybil edge = %.3f, want ≈0.20", frac)
	}
}

func TestGiantComponentShape(t *testing.T) {
	topo := genSmall(t)
	comps := topo.Components()
	if len(comps) < 20 {
		t.Fatalf("components = %d, want many", len(comps))
	}
	connected := 0
	for _, c := range comps {
		connected += c.Sybils
	}
	giant := comps[0]
	// The giant component holds a large share of connected Sybils
	// (paper: 63,541 of ~133K connected ≈ 48%).
	share := float64(giant.Sybils) / float64(connected)
	if share < 0.25 || share > 0.85 {
		t.Fatalf("giant share of connected = %.3f", share)
	}
	// 98% of components have <10 members (Figure 6).
	small := 0
	for _, c := range comps {
		if c.Sybils < 10 {
			small++
		}
	}
	if frac := float64(small) / float64(len(comps)); frac < 0.93 {
		t.Fatalf("small-component fraction = %.3f, want ≥0.93", frac)
	}
}

func TestAttackEdgesExceedSybilEdgesPerComponent(t *testing.T) {
	topo := genSmall(t)
	for i, c := range topo.Components() {
		if c.AtkEdges <= int64(c.SybilEdges) {
			t.Fatalf("component %d: attack %d ≤ sybil %d (Figure 7 violated)",
				i, c.AtkEdges, c.SybilEdges)
		}
	}
}

func TestGiantDegreeDistribution(t *testing.T) {
	topo := genSmall(t)
	giant := topo.GiantComponent()
	deg1, le10 := 0, 0
	for _, m := range giant.Members {
		d := topo.SybilGraph.Degree(m)
		if d == 1 {
			deg1++
		}
		if d <= 10 {
			le10++
		}
	}
	n := float64(giant.Sybils)
	// Paper Figure 9: 34.5% degree 1; 93.7% ≤ 10. Loose bands.
	if f := float64(deg1) / n; f < 0.20 || f > 0.60 {
		t.Fatalf("giant degree-1 fraction = %.3f, want ≈0.345", f)
	}
	if f := float64(le10) / n; f < 0.80 {
		t.Fatalf("giant ≤10 fraction = %.3f, want ≈0.937", f)
	}
}

func TestNarrowComponentsDetached(t *testing.T) {
	topo := genSmall(t)
	comps := topo.Components()
	giantSet := map[graph.NodeID]struct{}{}
	for _, m := range comps[0].Members {
		giantSet[m] = struct{}{}
	}
	// No narrow-fleet Sybil may sit inside the giant component: narrow
	// fleets are invisible to global crawls by construction.
	for i := 0; i < topo.NumSybils(); i++ {
		if op := topo.Op[i]; op >= 0 && topo.Operators[op].Narrow {
			if _, ok := giantSet[graph.NodeID(i)]; ok {
				t.Fatalf("narrow sybil %d inside giant component", i)
			}
		}
	}
	// The largest narrow fleet shows up as a single sizeable component.
	var largestNarrow int
	for _, op := range topo.Operators {
		if op.Narrow && op.Last-op.First+1 > largestNarrow {
			largestNarrow = op.Last - op.First + 1
		}
	}
	found := false
	for _, c := range comps[1:] {
		if c.Sybils >= largestNarrow*2/3 {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no component matching largest narrow fleet (%d members)", largestNarrow)
	}
}

func TestAudienceNarrowVsWide(t *testing.T) {
	topo := genSmall(t)
	comps := topo.Components()
	giant := comps[0]
	topo.FillAudience(&giant)
	if giant.Audience == 0 {
		t.Fatal("giant audience zero")
	}
	// Find the biggest narrow component and compare audience densities:
	// narrow fleets hammer a small pool, so audience/attack-edges is far
	// smaller than the giant's (Table 2, rows 1 vs 2).
	for i := range comps[1:] {
		c := comps[1+i]
		if c.Sybils < 20 {
			continue
		}
		m := c.Members[0]
		if op := topo.Op[m]; op >= 0 && topo.Operators[op].Narrow {
			topo.FillAudience(&c)
			gDens := float64(giant.Audience) / float64(giant.AtkEdges)
			nDens := float64(c.Audience) / float64(c.AtkEdges)
			if nDens >= gDens {
				t.Fatalf("narrow audience density %.4f not below giant %.4f", nDens, gDens)
			}
			return
		}
	}
	t.Skip("no sizeable narrow component in this seed")
}

func TestEdgeOrderReconstruction(t *testing.T) {
	topo := genSmall(t)
	giant := topo.GiantComponent()
	for _, m := range giant.Members[:min(200, len(giant.Members))] {
		eo := topo.EdgeOrderOf(m)
		if eo.TotalEdges < len(eo.SybilRanks) {
			t.Fatalf("total %d < sybil ranks %d", eo.TotalEdges, len(eo.SybilRanks))
		}
		for i, rk := range eo.SybilRanks {
			if rk < 0 || rk >= eo.TotalEdges {
				t.Fatalf("rank %d outside [0,%d)", rk, eo.TotalEdges)
			}
			if i > 0 && rk < eo.SybilRanks[i-1] {
				t.Fatal("ranks not ascending")
			}
		}
	}
}

func TestIntentionalEdgesComeFirst(t *testing.T) {
	topo := genSmall(t)
	// Members of intentional fleets have their first Sybil edge at the
	// very start of their friend list.
	checked := 0
	for i := 0; i < topo.NumSybils(); i++ {
		id := graph.NodeID(i)
		if !topo.IsIntentional(id) {
			continue
		}
		op := topo.Operators[topo.Op[i]]
		if i == op.First {
			continue // the fleet's first account links to nobody earlier
		}
		eo := topo.EdgeOrderOf(id)
		if len(eo.SybilRanks) == 0 {
			t.Fatalf("intentional sybil %d has no sybil edges", i)
		}
		// The chain edge was created at arrival time ⇒ rank ≈ 0. Allow a
		// tiny band for integer truncation.
		if eo.SybilRanks[0] > eo.TotalEdges/20 {
			t.Fatalf("intentional sybil %d first sybil edge at rank %d of %d",
				i, eo.SybilRanks[0], eo.TotalEdges)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no intentional sybils generated")
	}
}

func TestAccidentalEdgesSpreadOut(t *testing.T) {
	topo := genSmall(t)
	giant := topo.GiantComponent()
	// Pool normalized ranks of Sybil edges of non-intentional giant
	// members; they should be spread, not clustered at the start
	// (Figure 8: "almost uniformly random").
	var fracs []float64
	for _, m := range giant.Members {
		if topo.IsIntentional(m) {
			continue
		}
		eo := topo.EdgeOrderOf(m)
		if eo.TotalEdges < 2 {
			continue
		}
		for _, rk := range eo.SybilRanks {
			fracs = append(fracs, float64(rk)/float64(eo.TotalEdges-1))
		}
	}
	if len(fracs) < 50 {
		t.Skipf("too few accidental edges to test: %d", len(fracs))
	}
	var sum float64
	for _, f := range fracs {
		sum += f
	}
	mean := sum / float64(len(fracs))
	if mean < 0.35 || mean > 0.65 {
		t.Fatalf("accidental edge position mean = %.3f, want ≈0.5", mean)
	}
}

func TestDeterminism(t *testing.T) {
	a := Generate(SmallConfig(7))
	b := Generate(SmallConfig(7))
	if a.NumSybils() != b.NumSybils() || a.SybilGraph.NumEdges() != b.SybilGraph.NumEdges() {
		t.Fatal("same seed, different topology")
	}
	for i := 0; i < a.NumSybils(); i += 97 {
		ta := a.AttackTargets(i)
		tb := b.AttackTargets(i)
		if len(ta) != len(tb) {
			t.Fatal("target regeneration differs")
		}
		for k := range ta {
			if ta[k] != tb[k] {
				t.Fatal("target values differ")
			}
		}
	}
}

func TestAttackTargetsWithinPool(t *testing.T) {
	topo := genSmall(t)
	for i := 0; i < topo.NumSybils(); i += 13 {
		op := topo.Op[i]
		targets := topo.AttackTargets(i)
		if len(targets) != int(topo.AttackDeg[i]) {
			t.Fatalf("target count %d != attack degree %d", len(targets), topo.AttackDeg[i])
		}
		for _, tg := range targets {
			if tg < 0 || tg >= topo.Normals {
				t.Fatalf("target %d outside normal population", tg)
			}
			if op >= 0 && topo.Operators[op].Narrow {
				o := topo.Operators[op]
				if tg < o.PoolStart || tg >= o.PoolStart+o.PoolSize {
					t.Fatalf("narrow target %d outside pool [%d,%d)", tg, o.PoolStart, o.PoolStart+o.PoolSize)
				}
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
