// Live cluster rebalance, coordinator side: resize a running K-way
// detection cluster to K' workers with no restart and no event judged
// twice or dropped. The broker owns the consistent cut (its sequencer
// defines the order), the coordinator owns the state surgery:
//
//  1. PrepareRebalance fences the old group shape at a barrier B —
//     every old worker is served exactly what it is owed through B,
//     then handed off (stream.ErrRebalanced), upon which it offers its
//     snapshot cut precisely at B.
//  2. The coordinator polls the rendezvous until all K snapshots sit
//     at B (a fenced subscription cannot pass B, so seq == B is an
//     exact rendezvous, not a race), re-keys them into K' snapshots
//     (detector.RebalanceSnapshots), and offers the new set.
//  3. CommitRebalance unfences the new shape; new workers Start with
//     Handoff and adopt their snapshot, subscribing from B+1.
//
// The feed never pauses: post-barrier events keep flowing to the
// broker (and its spool) during the cutover; the new owners simply
// start behind and catch up.

package cluster

import (
	"encoding/json"
	"fmt"
	"time"

	"sybilwild/internal/detector"
	"sybilwild/internal/stream"
)

// Rebalance coordinates a live K=from → K'=to cutover against the
// broker at addr and returns the barrier sequence: old workers' state
// ends at it, new workers (Start with Handoff: true) resume from
// barrier+1. It blocks until every old partition's snapshot has
// rendezvoused at the barrier, the re-keyed snapshots are offered, and
// the commit lands — or until timeout, leaving the old shape fenced
// (re-running Rebalance with the same shapes resumes the same cutover:
// prepare is idempotent).
func Rebalance(addr string, from, to int, timeout time.Duration) (uint64, error) {
	if from < 2 || to < 1 || from == to {
		return 0, fmt.Errorf("cluster: invalid rebalance %d -> %d", from, to)
	}
	barrier, err := stream.PrepareRebalance(addr, from, to)
	if err != nil {
		return 0, err
	}
	deadline := time.Now().Add(timeout)
	snaps := make([]*detector.PipelineSnapshot, from)
	for p := 0; p < from; p++ {
		for {
			seq, data, err := stream.FetchSnapshot(addr, p, from)
			if err == nil && seq >= barrier {
				if seq > barrier {
					// Impossible while the fence holds (no old worker
					// sees past the barrier) — a snapshot beyond it means
					// the rendezvous was polluted and the cut is invalid.
					return 0, fmt.Errorf("cluster: partition %d/%d offered a snapshot at %d, past the barrier %d",
						p, from, seq, barrier)
				}
				var snap detector.PipelineSnapshot
				if err := json.Unmarshal(data, &snap); err != nil {
					return 0, fmt.Errorf("cluster: decode partition %d/%d snapshot: %w", p, from, err)
				}
				snaps[p] = &snap
				break
			}
			if time.Now().After(deadline) {
				if err != nil {
					return 0, fmt.Errorf("cluster: partition %d/%d never offered a snapshot: %w", p, from, err)
				}
				return 0, fmt.Errorf("cluster: partition %d/%d snapshot stuck at %d, barrier is %d",
					p, from, seq, barrier)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	out, err := detector.RebalanceSnapshots(snaps, to)
	if err != nil {
		return 0, err
	}
	for i, snap := range out {
		data, err := json.Marshal(snap)
		if err != nil {
			return 0, fmt.Errorf("cluster: encode rebalanced snapshot %d/%d: %w", i, to, err)
		}
		// A K'=1 output is stamped unpartitioned (0/0); its rendezvous
		// key is still (0, 1), where a single-worker Start looks.
		if err := stream.OfferSnapshot(addr, i, to, snap.Seq, data); err != nil {
			return 0, err
		}
	}
	if err := stream.CommitRebalance(addr, from, to, barrier); err != nil {
		return 0, err
	}
	return barrier, nil
}
