package cluster_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"sybilwild/internal/agents"
	"sybilwild/internal/cluster"
	"sybilwild/internal/detector"
	"sybilwild/internal/features"
	"sybilwild/internal/osn"
	"sybilwild/internal/sim"
	"sybilwild/internal/spool"
	"sybilwild/internal/stream"
)

// campaign caches one simulated Sybil campaign and its fitted rule:
// both the equality test and the benchmark replay the same feed, and
// the simulation dominates setup cost.
var campaign struct {
	once   sync.Once
	events []osn.Event
	rule   detector.Rule
}

func campaignFeed() ([]osn.Event, detector.Rule) {
	campaign.once.Do(func() {
		pop := agents.NewPopulation(61, agents.DefaultParams())
		pop.Bootstrap(1500)
		pop.LaunchSybils(25, 50*sim.TicksPerHour)
		pop.RunFor(200 * sim.TicksPerHour)
		campaign.events = pop.Net.Events()
		campaign.rule = detector.FitRule(
			features.Labelled(pop.Net, pop.Sybils, pop.Normals), detector.PaperRule())
	})
	return campaign.events, campaign.rule
}

// clusterServer builds a spool-backed broker: the spool retains the
// whole feed, so a replacement worker can backfill any resume point
// regardless of the in-memory window.
func clusterServer(t *testing.T) *stream.Server {
	t.Helper()
	sp, err := spool.Open(t.TempDir(), spool.WithSegmentBytes(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sp.Close() })
	srv, err := stream.NewServer("127.0.0.1:0",
		stream.WithReplayBuffer(4096), stream.WithSpool(sp))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func flagSet(ids []osn.AccountID) map[osn.AccountID]bool {
	set := make(map[osn.AccountID]bool, len(ids))
	for _, id := range ids {
		set[id] = true
	}
	return set
}

// TestPartitionedClusterFlagEquality is the PR's acceptance test: for
// K in {2, 3, 5}, K workers each subscribing to one partition of a
// broker feed must jointly flag exactly the accounts a single
// unpartitioned pipeline flags over the same event log — with one
// worker killed mid-campaign and replaced via broker snapshot handoff,
// and with the replacement applying no event at or below its
// snapshot's stamped sequence (zero spool replay into adopted state).
func TestPartitionedClusterFlagEquality(t *testing.T) {
	events, rule := campaignFeed()

	single := detector.NewPipeline(rule, nil, detector.WithGraphReconstruction())
	single.Ingest(detector.Batch{Events: events})
	single.Close()
	want := flagSet(single.FlaggedIDs())
	if len(want) == 0 {
		t.Fatal("single pipeline flagged nothing; equivalence test is vacuous")
	}

	for _, k := range []int{2, 3, 5} {
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			srv := clusterServer(t)
			workers := make([]*cluster.Worker, k)
			for part := 0; part < k; part++ {
				w, err := cluster.Start(cluster.Config{
					Addr: srv.Addr(), Part: part, Parts: k,
					Rule: rule, Shards: 2, CheckEvery: 1,
					SnapshotEvery: 4, Handoff: true,
				})
				if err != nil {
					t.Fatalf("start worker %d/%d: %v", part, k, err)
				}
				workers[part] = w
			}

			// First leg of the campaign, then wait for the victim to
			// have parked at least one snapshot at the broker.
			cut := 2 * len(events) / 5
			for _, ev := range events[:cut] {
				srv.Broadcast(ev)
			}
			victim := workers[0]
			deadline := time.Now().Add(10 * time.Second)
			for victim.OfferedSeq() == 0 {
				if time.Now().After(deadline) {
					t.Fatal("victim never offered a snapshot to the broker")
				}
				time.Sleep(5 * time.Millisecond)
			}

			// Crash the victim and adopt its partition on a fresh
			// worker from the broker's snapshot.
			victim.Kill()
			if err := victim.Wait(); err == nil {
				t.Fatal("killed worker reported a clean end of feed")
			}
			repl, err := cluster.Start(cluster.Config{
				Addr: srv.Addr(), Part: 0, Parts: k,
				Rule: rule, Shards: 2, CheckEvery: 1,
				SnapshotEvery: 4, Handoff: true,
			})
			if err != nil {
				t.Fatalf("start replacement: %v", err)
			}
			workers[0] = repl
			if repl.HandoffSeq() == 0 {
				t.Fatal("replacement cold-started despite an offered snapshot")
			}
			if repl.HandoffSeq() < victim.OfferedSeq() {
				t.Fatalf("replacement adopted seq %d, victim had offered %d",
					repl.HandoffSeq(), victim.OfferedSeq())
			}
			if repl.ResumedFrom() != repl.HandoffSeq()+1 {
				t.Fatalf("replacement resumed from %d, want snapshot seq %d + 1",
					repl.ResumedFrom(), repl.HandoffSeq())
			}

			// Rest of the campaign, clean shutdown, then the union check.
			for _, ev := range events[cut:] {
				srv.Broadcast(ev)
			}
			if err := srv.Close(); err != nil {
				t.Fatalf("broker close: %v", err)
			}
			union := make(map[osn.AccountID]int)
			for part, w := range workers {
				if err := w.Wait(); err != nil {
					t.Fatalf("worker %d/%d: %v", part, k, err)
				}
				if got := w.Pipeline().Seq(); got != uint64(len(events)) {
					t.Fatalf("worker %d/%d stopped at seq %d, feed ended at %d",
						part, k, got, len(events))
				}
				for _, id := range w.Pipeline().FlaggedIDs() {
					if osn.Partition(id, k) != part {
						t.Fatalf("worker %d/%d flagged account %d owned by partition %d",
							part, k, id, osn.Partition(id, k))
					}
					union[id]++
				}
			}
			if first := repl.FirstApplied(); first <= repl.HandoffSeq() {
				t.Fatalf("replacement replayed seq %d at or below its snapshot cut %d",
					first, repl.HandoffSeq())
			}
			for id, n := range union {
				if n != 1 {
					t.Fatalf("account %d flagged by %d workers", id, n)
				}
				if !want[id] {
					t.Fatalf("cluster flagged %d, single run did not", id)
				}
			}
			if len(union) != len(want) {
				t.Fatalf("cluster flagged %d accounts, single run flagged %d",
					len(union), len(want))
			}
		})
	}
}

// waitAdopted blocks until a relay edge's broker has adopted the feed
// through seq.
func waitAdopted(t *testing.T, e *stream.Relay, seq uint64) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for e.Server().HeadSeq() < seq {
		if time.Now().After(deadline) {
			t.Fatalf("edge head stuck at %d, want %d", e.Server().HeadSeq(), seq)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestRelayTreeFlagEquality is the relay tier's acceptance test: a
// K=4 worker cluster subscribed through a 2-level tree (root broker,
// two spooled edge relays, two workers each) must flag exactly the
// accounts a single direct pipeline flags — with one edge broker
// killed -9 mid-campaign and replaced on the same spool directory.
// The replacement edge resumes the upstream subscription from its
// spool's end; its workers find the crash emptied the edge's snapshot
// rendezvous and fall back to a cold start served from the edge spool
// — the deterministic-replay path — and the tree reconverges with no
// gaps and no duplicate flags.
func TestRelayTreeFlagEquality(t *testing.T) {
	events, rule := campaignFeed()

	single := detector.NewPipeline(rule, nil, detector.WithGraphReconstruction())
	single.Ingest(detector.Batch{Events: events})
	single.Close()
	want := flagSet(single.FlaggedIDs())
	if len(want) == 0 {
		t.Fatal("single pipeline flagged nothing; equivalence test is vacuous")
	}

	const k = 4
	root := clusterServer(t)
	newEdge := func(dir string) (*stream.Relay, *spool.Spool) {
		t.Helper()
		sp, err := spool.Open(dir, spool.WithSegmentBytes(1<<20))
		if err != nil {
			t.Fatal(err)
		}
		e, err := stream.NewRelay("127.0.0.1:0", root.Addr(),
			stream.WithRelayServer(stream.WithReplayBuffer(4096), stream.WithSpool(sp)))
		if err != nil {
			sp.Close()
			t.Fatal(err)
		}
		return e, sp
	}
	edgeA, spA := newEdge(t.TempDir())
	defer func() { edgeA.Close(); spA.Close() }()
	dirB := t.TempDir()
	edgeB, spB := newEdge(dirB)

	start := func(part int, addr string) *cluster.Worker {
		t.Helper()
		w, err := cluster.Start(cluster.Config{
			Addr: addr, Part: part, Parts: k,
			Rule: rule, Shards: 2, CheckEvery: 1,
			SnapshotEvery: 4, Handoff: true,
		})
		if err != nil {
			t.Fatalf("start worker %d/%d on %s: %v", part, k, addr, err)
		}
		return w
	}
	workers := make([]*cluster.Worker, k)
	for part := 0; part < k; part++ {
		addr := edgeA.Addr()
		if part >= k/2 {
			addr = edgeB.Addr()
		}
		workers[part] = start(part, addr)
	}

	// First leg of the campaign; both edges adopt it fully before the
	// kill, so the crash loses only in-memory state (sessions, snapshot
	// rendezvous), exactly like kill -9 of a streamd -relay process.
	cut := 2 * len(events) / 5
	for _, ev := range events[:cut] {
		root.Broadcast(ev)
	}
	waitAdopted(t, edgeB, uint64(cut))

	edgeB.Abort()
	if err := spB.Close(); err != nil {
		t.Fatal(err)
	}
	for part := k / 2; part < k; part++ {
		if err := workers[part].Wait(); err == nil {
			t.Fatalf("worker %d survived its edge's kill -9 with a clean end of feed", part)
		}
	}

	// Replacement edge on the same spool directory, new address: it
	// resumes upstream from the spool's end and serves its own backlog
	// to the replacement workers, which cold-start from sequence 1 —
	// the broker-held snapshots died with the edge.
	edgeB2, spB2 := newEdge(dirB)
	defer func() { edgeB2.Close(); spB2.Close() }()
	for part := k / 2; part < k; part++ {
		w := start(part, edgeB2.Addr())
		if w.HandoffSeq() != 0 {
			t.Fatalf("worker %d adopted a snapshot (seq %d) that should have died with the edge",
				part, w.HandoffSeq())
		}
		workers[part] = w
	}

	// Rest of the campaign, clean shutdown down the tree, union check.
	for _, ev := range events[cut:] {
		root.Broadcast(ev)
	}
	if err := root.Close(); err != nil {
		t.Fatalf("root close: %v", err)
	}
	if err := edgeA.Wait(); err != nil {
		t.Fatalf("edge A did not propagate eof cleanly: %v", err)
	}
	if err := edgeB2.Wait(); err != nil {
		t.Fatalf("replacement edge did not propagate eof cleanly: %v", err)
	}
	union := make(map[osn.AccountID]int)
	for part, w := range workers {
		if err := w.Wait(); err != nil {
			t.Fatalf("worker %d/%d: %v", part, k, err)
		}
		if got := w.Pipeline().Seq(); got != uint64(len(events)) {
			t.Fatalf("worker %d/%d stopped at seq %d, feed ended at %d",
				part, k, got, len(events))
		}
		for _, id := range w.Pipeline().FlaggedIDs() {
			if osn.Partition(id, k) != part {
				t.Fatalf("worker %d/%d flagged account %d owned by partition %d",
					part, k, id, osn.Partition(id, k))
			}
			union[id]++
		}
	}
	for id, n := range union {
		if n != 1 {
			t.Fatalf("account %d flagged by %d workers", id, n)
		}
		if !want[id] {
			t.Fatalf("tree cluster flagged %d, single run did not", id)
		}
	}
	if len(union) != len(want) {
		t.Fatalf("tree cluster flagged %d accounts, single run flagged %d",
			len(union), len(want))
	}
	if adopted := edgeA.Server().Stats().Adopted; adopted != uint64(len(events)) {
		t.Fatalf("edge A adopted %d events, feed carried %d", adopted, len(events))
	}
}

// TestWorkerInvalidPartition: the harness rejects partitions the
// broker would reject, before dialing anything.
func TestWorkerInvalidPartition(t *testing.T) {
	for _, bad := range []struct{ part, parts int }{{0, 0}, {-1, 2}, {2, 2}, {5, 3}} {
		if _, err := cluster.Start(cluster.Config{
			Addr: "127.0.0.1:0", Part: bad.part, Parts: bad.parts,
			Rule: detector.PaperRule(),
		}); err == nil {
			t.Fatalf("Start(%d/%d) succeeded, want error", bad.part, bad.parts)
		}
	}
}

// BenchmarkPartitionedIngest compares one pipeline ingesting the whole
// campaign against four partition-gated pipelines each ingesting their
// delivered slice in parallel — the in-process core of the cluster
// scaling claim, with the broker hop factored out. Total work at K=4
// is ~2.7x the single log (accepts replicate to every partition,
// requests to two), and single-core CI runners serialize the workers,
// so the bench gate holds workers=4 to at most 4x workers=1: loose
// enough to pass where no parallelism exists, tight enough to catch
// the filtering or contention pathologies it is there for.
func BenchmarkPartitionedIngest(b *testing.B) {
	events, rule := campaignFeed()
	for _, workers := range []int{1, 4} {
		slices := make([][]osn.Event, workers)
		if workers == 1 {
			slices[0] = events
		} else {
			for _, ev := range events {
				for part := 0; part < workers; part++ {
					if osn.PartitionDelivers(ev, part, workers) {
						slices[part] = append(slices[part], ev)
					}
				}
			}
		}
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for part := 0; part < workers; part++ {
					opts := []detector.PipelineOption{detector.WithGraphReconstruction()}
					if workers > 1 {
						opts = append(opts, detector.WithPartition(part, workers))
					}
					p := detector.NewPipeline(rule, nil, opts...)
					wg.Add(1)
					go func(part int) {
						defer wg.Done()
						p.Ingest(detector.Batch{Events: slices[part]})
						p.Close()
					}(part)
				}
				wg.Wait()
			}
		})
	}
}
