// Package cluster runs a partitioned detection cluster against one
// feed broker: K workers, each subscribing to one account partition of
// the feed (stream.WithPartition) and holding verdict authority over
// exactly that partition's accounts (detector.WithPartition). The
// union of the workers' flag sets equals a single unpartitioned
// detector run over the same feed — the broker delivers each worker
// its owned actor slice plus the cross-partition support events its
// accounts' features need (osn.PartitionDelivers), and evaluation
// ownership keeps verdicts exactly-once across the cluster.
//
// Workers periodically offer serialized pipeline snapshots to the
// broker's rendezvous store (stream.OfferSnapshot); a replacement
// worker started with Handoff adopts the freshest snapshot for its
// partition and resumes the feed from the snapshot's stamped sequence
// + 1 — state migration over the wire instead of replaying the
// partition's history from the spool. Cold starts (no snapshot
// offered) backfill from sequence 1, which the broker's spool must
// retain.
//
// A Worker is a deliberately small harness: one subscription, one
// pipeline, no transparent reconnect — when its connection dies the
// worker stops and reports the error, and the operator (or a test)
// starts a replacement. Reconnect policy lives in callers like
// cmd/detectd, not here.
package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"sybilwild/internal/detector"
	"sybilwild/internal/osn"
	"sybilwild/internal/stream"
)

// Config describes one cluster worker.
type Config struct {
	Addr        string // broker address
	Part, Parts int    // this worker's account partition

	Rule       detector.Rule
	Shards     int // pipeline shards (0: GOMAXPROCS)
	CheckEvery int // evaluate every Nth request (0: every request)

	// SnapshotEvery offers a serialized pipeline snapshot to the
	// broker's rendezvous every N ingested batches (0: never offer).
	SnapshotEvery int

	// Handoff makes Start fetch the partition's freshest broker
	// snapshot and adopt it — counters, graph, verdicts and stream
	// position — before subscribing. Without it (or when no snapshot
	// is offered) the worker cold-starts from sequence 1.
	Handoff bool

	// SessionID fixes the worker's subscriber session id. A promoted
	// standby must dial with the id it claimed the partition for
	// (stream.ClaimPartition), or the broker refuses it the key.
	// Empty: a random id.
	SessionID string

	// Audit records the global sequence of every owned-actor event the
	// worker applies (after replay trimming), for cutover audits: the
	// union of the cluster's audits must cover each sequence exactly
	// once across generations. Costs memory linear in owned events —
	// tests and verification runs only.
	Audit bool
}

// Worker is one partition's detector: a partitioned feed subscription
// draining into a partition-gated pipeline, with periodic snapshot
// offers. Start it with Start; stop it by closing the broker's feed
// (clean end) or Kill (simulated crash), then Wait.
type Worker struct {
	cfg Config
	p   *detector.Pipeline
	c   *stream.Client

	handoffSeq  uint64 // snapshot sequence adopted at start (0: cold start)
	resumedFrom uint64 // feed sequence the subscription started at

	offered      atomic.Uint64 // highest sequence successfully offered
	firstApplied atomic.Uint64 // lowest global sequence ingested (0: none yet)

	// Live-rebalance retirement; set by the loop before done closes,
	// read after Wait.
	rebalanced bool
	rebBarrier uint64
	rebNew     int

	ownedSeqs []uint64 // Audit: applied owned-actor sequences, in order

	err       error // terminal loop error; read after done closes
	done      chan struct{}
	closeOnce sync.Once
}

// Start builds the worker's pipeline (adopting a broker snapshot when
// Handoff is set and one is offered), subscribes to its partition of
// the feed, and begins ingesting in a background goroutine.
func Start(cfg Config) (*Worker, error) {
	if cfg.Parts < 1 || cfg.Part < 0 || cfg.Part >= cfg.Parts {
		return nil, fmt.Errorf("cluster: invalid partition %d/%d", cfg.Part, cfg.Parts)
	}
	opts := []detector.PipelineOption{
		detector.WithGraphReconstruction(),
		detector.WithPartition(cfg.Part, cfg.Parts),
	}
	if cfg.Shards > 0 {
		opts = append(opts, detector.WithShards(cfg.Shards))
	}
	if cfg.CheckEvery > 0 {
		opts = append(opts, detector.WithCheckEvery(cfg.CheckEvery))
	}
	w := &Worker{cfg: cfg, done: make(chan struct{})}
	resume := uint64(1)
	if cfg.Handoff {
		seq, data, err := stream.FetchSnapshot(cfg.Addr, cfg.Part, cfg.Parts)
		switch {
		case err == nil:
			var snap detector.PipelineSnapshot
			if err := json.Unmarshal(data, &snap); err != nil {
				return nil, fmt.Errorf("cluster: decode broker snapshot: %w", err)
			}
			p, from, err := detector.NewPipelineFromSnapshot(cfg.Rule, nil, &snap, opts...)
			if err != nil {
				return nil, fmt.Errorf("cluster: adopt broker snapshot: %w", err)
			}
			w.p, resume, w.handoffSeq = p, from, seq
		case errors.Is(err, stream.ErrNoSnapshot):
			// Nothing offered yet: cold start below.
		default:
			return nil, err
		}
	}
	if w.p == nil {
		w.p = detector.NewPipeline(cfg.Rule, nil, opts...)
	}
	w.resumedFrom = resume
	dialOpts := []stream.DialOption{stream.WithPartition(cfg.Part, cfg.Parts)}
	if cfg.SessionID != "" {
		dialOpts = append(dialOpts, stream.WithSessionID(cfg.SessionID))
	}
	c, err := stream.DialFrom(cfg.Addr, resume, dialOpts...)
	if err != nil {
		w.p.Close()
		return nil, err
	}
	w.c = c
	go w.loop()
	return w, nil
}

// loop drains the partitioned subscription into the pipeline until the
// feed ends (clean) or the connection dies (error), offering snapshots
// on the configured cadence. Runs on its own goroutine; the inline
// Snapshot call satisfies the pipeline's quiescence contract because
// this goroutine is the only ingester.
func (w *Worker) loop() {
	defer close(w.done)
	batches := 0
	for {
		evs, err := w.c.RecvBatch()
		if errors.Is(err, stream.ErrRebalanced) {
			// The broker retired this worker's group shape in a live
			// rebalance. Everything owed below the barrier has been
			// applied; pin the pipeline's cursor to the barrier (the
			// tail may have been all foreign) and offer the snapshot
			// the coordinator is waiting for. Retirement is a clean
			// exit, not an error.
			barrier, nparts, _ := w.c.Rebalanced()
			if barrier > w.p.Seq() {
				w.p.Ingest(detector.Batch{LastSeq: barrier})
			}
			w.offer()
			w.rebalanced, w.rebBarrier, w.rebNew = true, barrier, nparts
			return
		}
		if err != nil {
			if !errors.Is(err, stream.ErrClosed) {
				w.err = err
			}
			return
		}
		last := w.c.LastSeq()
		if last <= w.p.Seq() {
			continue
		}
		// Trim any replayed prefix at or below the pipeline's own
		// position. Partitioned frames are sparse in the global order,
		// so the trim walks per-event sequences, not arithmetic.
		seqs := w.c.LastBatchSeqs()
		if seqs != nil {
			drop := 0
			for drop < len(seqs) && seqs[drop] <= w.p.Seq() {
				drop++
			}
			evs, seqs = evs[drop:], seqs[drop:]
		} else if first := last - uint64(len(evs)) + 1; first <= w.p.Seq() {
			evs = evs[w.p.Seq()-first+1:]
		}
		if len(evs) > 0 && w.firstApplied.Load() == 0 {
			first := last - uint64(len(evs)) + 1
			if seqs != nil {
				first = seqs[0]
			}
			w.firstApplied.Store(first)
		}
		if w.cfg.Audit {
			first := last - uint64(len(evs)) + 1
			for i, ev := range evs {
				if osn.Partition(ev.Actor, w.cfg.Parts) != w.cfg.Part {
					continue
				}
				if seqs != nil {
					w.ownedSeqs = append(w.ownedSeqs, seqs[i])
				} else {
					w.ownedSeqs = append(w.ownedSeqs, first+uint64(i))
				}
			}
		}
		w.p.Ingest(detector.Batch{Events: evs, LastSeq: last})
		batches++
		if w.cfg.SnapshotEvery > 0 && batches%w.cfg.SnapshotEvery == 0 {
			w.offer()
		}
	}
}

// offer snapshots the pipeline and publishes it to the broker's
// rendezvous. Best-effort: a failed offer costs nothing but handoff
// freshness (the previous offer, or the spool, still covers recovery).
func (w *Worker) offer() {
	snap := w.p.Snapshot()
	data, err := json.Marshal(snap)
	if err != nil {
		return
	}
	if stream.OfferSnapshot(w.cfg.Addr, w.cfg.Part, w.cfg.Parts, snap.Seq, data) == nil {
		w.offered.Store(snap.Seq)
	}
}

// Kill severs the worker's feed connection without a final snapshot
// offer — a simulated crash. The ingest loop exits with the connection
// error; Wait returns it.
func (w *Worker) Kill() { w.c.Kick() }

// Wait blocks until the ingest loop has stopped, closes the pipeline,
// and returns the loop's terminal error (nil on clean end of feed).
// Idempotent.
func (w *Worker) Wait() error {
	<-w.done
	w.closeOnce.Do(func() {
		w.c.Close()
		w.p.Close()
	})
	return w.err
}

// Pipeline exposes the worker's detector. Flag queries are safe at any
// time; Tracked/Graph only after Wait.
func (w *Worker) Pipeline() *detector.Pipeline { return w.p }

// ResumedFrom returns the feed sequence the worker's subscription
// started at: 1 on a cold start, snapshot sequence + 1 after a
// handoff.
func (w *Worker) ResumedFrom() uint64 { return w.resumedFrom }

// HandoffSeq returns the stamped sequence of the broker snapshot the
// worker adopted at start, or 0 for a cold start.
func (w *Worker) HandoffSeq() uint64 { return w.handoffSeq }

// OfferedSeq returns the highest snapshot sequence this worker has
// successfully offered to the broker (0: none yet).
func (w *Worker) OfferedSeq() uint64 { return w.offered.Load() }

// FirstApplied returns the lowest global feed sequence the worker has
// ingested, 0 when nothing has been applied yet. After a handoff it
// must exceed HandoffSeq — the zero-replay property: no event at or
// below the snapshot's cut is ever re-applied.
func (w *Worker) FirstApplied() uint64 { return w.firstApplied.Load() }

// Rebalanced reports whether the worker was retired by a live
// rebalance, and if so the cutover barrier (its pipeline's final
// sequence) and the new partition group size. Valid after Wait.
func (w *Worker) Rebalanced() (barrier uint64, nparts int, ok bool) {
	return w.rebBarrier, w.rebNew, w.rebalanced
}

// OwnedSeqs returns the global sequences of every owned-actor event
// this worker applied, in feed order — the per-event owner audit a
// cutover verification sums across workers and generations. Requires
// Config.Audit; valid after Wait.
func (w *Worker) OwnedSeqs() []uint64 { return w.ownedSeqs }
