// Automatic standby promotion: a Standby watches one partition key on
// the broker and, when its worker dies (stall eviction, crash, kill),
// promotes itself — claims the key, adopts the dead worker's freshest
// broker snapshot, and resumes the feed from the snapshot's cut — with
// no operator action. The broker's claim protocol makes the promotion
// race-free: of N standbys watching the same partition, exactly one
// wins the claim; the rest keep watching (the winner's connection
// resets their qualifying streak).
//
// The promotion gate deliberately defers to a coordinated rebalance:
// a fence on the group shape (Barrier != 0) means a cutover is
// mid-flight and the coordinator, not the standby, owns recovery of
// the partition's state.

package cluster

import (
	"fmt"
	"sync"
	"time"

	"sybilwild/internal/stream"
)

// StandbyConfig describes a warm standby for one partition.
type StandbyConfig struct {
	// Worker is the configuration the standby promotes with. Handoff
	// and SessionID are controlled by the standby itself and may be
	// left zero.
	Worker Config

	// PollEvery is the broker polling cadence (default 50ms).
	PollEvery time.Duration

	// Confirm is how many consecutive qualifying polls (partition seen
	// before, nothing connected, snapshot available, no fence) must
	// accumulate before promoting — debounce against a worker's brief
	// reconnect window. Default 3.
	Confirm int
}

// Standby watches a partition and promotes itself into a Worker when
// the partition's owner dies. Create with StartStandby; Done closes
// when the watch ends (promotion finished, or Stop), after which
// Worker/Err report the outcome.
type Standby struct {
	cfg      StandbyConfig
	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}

	w   *Worker // promoted worker; nil if the watch ended without one
	err error
}

// StartStandby begins watching the partition described by
// cfg.Worker on its broker.
func StartStandby(cfg StandbyConfig) (*Standby, error) {
	if cfg.Worker.Parts < 1 || cfg.Worker.Part < 0 || cfg.Worker.Part >= cfg.Worker.Parts {
		return nil, fmt.Errorf("cluster: invalid partition %d/%d", cfg.Worker.Part, cfg.Worker.Parts)
	}
	if cfg.PollEvery <= 0 {
		cfg.PollEvery = 50 * time.Millisecond
	}
	if cfg.Confirm <= 0 {
		cfg.Confirm = 3
	}
	s := &Standby{cfg: cfg, stop: make(chan struct{}), done: make(chan struct{})}
	go s.watch()
	return s, nil
}

func (s *Standby) watch() {
	defer close(s.done)
	cfg := s.cfg.Worker
	streak := 0
	ticker := time.NewTicker(s.cfg.PollEvery)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
		}
		st, err := stream.QueryPartition(cfg.Addr, cfg.Part, cfg.Parts)
		if err != nil {
			streak = 0 // broker unreachable; not a dead worker
			continue
		}
		if !(st.Seen && st.Connected == 0 && st.SnapshotSeq > 0 && st.Barrier == 0) {
			streak = 0
			continue
		}
		if streak++; streak < s.cfg.Confirm {
			continue
		}
		// The partition had a worker, has none now, left a snapshot to
		// adopt, and no rebalance owns it: promote. Claim first so only
		// one standby proceeds; a lost claim just resumes watching.
		session := stream.NewSessionID()
		if err := stream.ClaimPartition(cfg.Addr, cfg.Part, cfg.Parts, session); err != nil {
			streak = 0
			continue
		}
		cfg.Handoff = true
		cfg.SessionID = session
		w, err := Start(cfg)
		if err != nil {
			// Claimed but could not start (broker died, snapshot became
			// unusable): surface it — the claim expires on its own.
			s.err = err
			return
		}
		s.w = w
		return
	}
}

// Done closes when the watch has ended: the standby promoted (Worker
// returns it), failed to (Err), or was stopped.
func (s *Standby) Done() <-chan struct{} { return s.done }

// Worker returns the promoted worker, nil if the watch ended without
// promoting. Valid after Done closes.
func (s *Standby) Worker() *Worker { return s.w }

// Err returns the promotion error, if any. Valid after Done closes.
func (s *Standby) Err() error { return s.err }

// Stop ends the watch if it has not promoted yet and waits for the
// watch goroutine to exit. A worker already promoted is not touched.
func (s *Standby) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.done
}
