package cluster_test

import (
	"fmt"
	"testing"
	"time"

	"sybilwild/internal/cluster"
	"sybilwild/internal/detector"
	"sybilwild/internal/osn"
)

// TestLiveRebalanceFlagEquality is the PR's acceptance test: a K-way
// detection cluster is resized to K' mid-campaign, under load, via the
// broker-coordinated cutover — and afterwards one of the new workers is
// killed and recovered by an unattended standby. Three properties must
// hold at the end:
//
//   - The new generation's union flag set is identical to a single
//     uninterrupted unpartitioned run over the same feed.
//   - No event is ever judged by two owners: the per-event owner audit
//     (Config.Audit) across both generations covers every sequence
//     1..len(events) exactly once.
//   - The standby promotion replays nothing at or below the snapshot
//     cut it adopted.
func TestLiveRebalanceFlagEquality(t *testing.T) {
	events, rule := campaignFeed()

	single := detector.NewPipeline(rule, nil, detector.WithGraphReconstruction())
	single.Ingest(detector.Batch{Events: events})
	single.Close()
	want := flagSet(single.FlaggedIDs())
	if len(want) == 0 {
		t.Fatal("single pipeline flagged nothing; equivalence test is vacuous")
	}

	for _, shape := range []struct{ from, to int }{{3, 5}, {4, 2}} {
		t.Run(fmt.Sprintf("k=%dto%d", shape.from, shape.to), func(t *testing.T) {
			srv := clusterServer(t)
			workerCfg := func(part, parts int) cluster.Config {
				return cluster.Config{
					Addr: srv.Addr(), Part: part, Parts: parts,
					Rule: rule, Shards: 2, CheckEvery: 1,
					SnapshotEvery: 4, Audit: true,
				}
			}
			oldGen := make([]*cluster.Worker, shape.from)
			for p := range oldGen {
				w, err := cluster.Start(workerCfg(p, shape.from))
				if err != nil {
					t.Fatalf("start worker %d/%d: %v", p, shape.from, err)
				}
				oldGen[p] = w
			}

			// First leg, then cut over while the second leg is being
			// broadcast — the feed never pauses for the rebalance.
			leg1, leg2 := 2*len(events)/5, 3*len(events)/5
			for _, ev := range events[:leg1] {
				srv.Broadcast(ev)
			}
			fed := make(chan struct{})
			go func() {
				defer close(fed)
				for _, ev := range events[leg1:leg2] {
					srv.Broadcast(ev)
				}
			}()
			barrier, err := cluster.Rebalance(srv.Addr(), shape.from, shape.to, 30*time.Second)
			if err != nil {
				t.Fatalf("rebalance %d -> %d: %v", shape.from, shape.to, err)
			}
			<-fed
			if barrier < uint64(leg1) || barrier > uint64(leg2) {
				t.Fatalf("barrier %d outside the broadcast window [%d, %d]", barrier, leg1, leg2)
			}

			// The old generation retires cleanly, every worker cut at
			// exactly the barrier.
			for p, w := range oldGen {
				if err := w.Wait(); err != nil {
					t.Fatalf("old worker %d/%d: %v", p, shape.from, err)
				}
				b, n, ok := w.Rebalanced()
				if !ok || b != barrier || n != shape.to {
					t.Fatalf("old worker %d/%d retired with (%d, %d, %v), want (%d, %d, true)",
						p, shape.from, b, n, ok, barrier, shape.to)
				}
				if got := w.Pipeline().Seq(); got != barrier {
					t.Fatalf("old worker %d/%d stopped at seq %d, barrier is %d", p, shape.from, got, barrier)
				}
			}

			// The new generation adopts the re-keyed snapshots and
			// resumes from barrier+1.
			newGen := make([]*cluster.Worker, shape.to)
			for p := range newGen {
				cfg := workerCfg(p, shape.to)
				cfg.Handoff = true
				w, err := cluster.Start(cfg)
				if err != nil {
					t.Fatalf("start new worker %d/%d: %v", p, shape.to, err)
				}
				if w.HandoffSeq() != barrier || w.ResumedFrom() != barrier+1 {
					t.Fatalf("new worker %d/%d adopted seq %d resuming %d, want %d resuming %d",
						p, shape.to, w.HandoffSeq(), w.ResumedFrom(), barrier, barrier+1)
				}
				newGen[p] = w
			}

			// Third leg under way; kill one new worker and let an
			// unattended standby recover it.
			fed3 := make(chan struct{})
			go func() {
				defer close(fed3)
				for _, ev := range events[leg2:] {
					srv.Broadcast(ev)
				}
			}()
			sb, err := cluster.StartStandby(cluster.StandbyConfig{
				Worker:    workerCfg(0, shape.to),
				PollEvery: 10 * time.Millisecond,
				Confirm:   2,
			})
			if err != nil {
				t.Fatal(err)
			}
			killed := newGen[0]
			killed.Kill()
			if err := killed.Wait(); err == nil {
				t.Fatal("killed worker reported a clean end of feed")
			}
			<-sb.Done()
			promoted := sb.Worker()
			if promoted == nil {
				t.Fatalf("standby never promoted: %v", sb.Err())
			}
			newGen[0] = promoted
			if promoted.HandoffSeq() < barrier {
				t.Fatalf("standby adopted seq %d, below the cutover barrier %d",
					promoted.HandoffSeq(), barrier)
			}

			<-fed3
			if err := srv.Close(); err != nil {
				t.Fatalf("broker close: %v", err)
			}
			for p, w := range newGen {
				if err := w.Wait(); err != nil {
					t.Fatalf("new worker %d/%d: %v", p, shape.to, err)
				}
				if got := w.Pipeline().Seq(); got != uint64(len(events)) {
					t.Fatalf("new worker %d/%d stopped at seq %d, feed ended at %d",
						p, shape.to, got, len(events))
				}
			}
			if first := promoted.FirstApplied(); first != 0 && first <= promoted.HandoffSeq() {
				t.Fatalf("standby replayed seq %d at or below its snapshot cut %d",
					first, promoted.HandoffSeq())
			}

			// Union flag equality: the new generation (whose snapshots
			// inherited the old generation's verdicts through the
			// re-keying) must flag exactly what the uninterrupted single
			// run flagged, each account in its owner partition only.
			union := make(map[osn.AccountID]int)
			for p, w := range newGen {
				for _, id := range w.Pipeline().FlaggedIDs() {
					if osn.Partition(id, shape.to) != p {
						t.Fatalf("new worker %d/%d flagged account %d owned by partition %d",
							p, shape.to, id, osn.Partition(id, shape.to))
					}
					union[id]++
				}
			}
			for id, n := range union {
				if n != 1 {
					t.Fatalf("account %d flagged by %d workers", id, n)
				}
				if !want[id] {
					t.Fatalf("cluster flagged %d, single run did not", id)
				}
			}
			if len(union) != len(want) {
				t.Fatalf("cluster flagged %d accounts, single run flagged %d", len(union), len(want))
			}

			// Per-event owner audit: every sequence judged exactly once
			// across generations. The killed worker's post-snapshot work
			// was discarded state — its audit counts only through the
			// cut the standby adopted; the standby re-judged the rest.
			judged := make(map[uint64]int, len(events))
			for _, w := range oldGen {
				for _, s := range w.OwnedSeqs() {
					judged[s]++
				}
			}
			for _, s := range killed.OwnedSeqs() {
				if s <= promoted.HandoffSeq() {
					judged[s]++
				}
			}
			for _, w := range newGen {
				for _, s := range w.OwnedSeqs() {
					judged[s]++
				}
			}
			for s := uint64(1); s <= uint64(len(events)); s++ {
				if judged[s] != 1 {
					t.Fatalf("seq %d judged by %d owners, want exactly 1", s, judged[s])
				}
			}
		})
	}
}
