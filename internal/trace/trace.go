// Package trace serializes generated datasets — the account table,
// friendship edges with creation times, and the operational event log
// — so experiments can be generated once (cmd/sybilgen) and analyzed
// repeatedly (cmd/sybildetect, cmd/experiments). The on-disk format is
// gob; a JSON export exists for interoperability with other tooling.
package trace

import (
	"compress/gzip"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"sybilwild/internal/graph"
	"sybilwild/internal/osn"
)

// Meta records how a dataset was produced.
type Meta struct {
	Seed        int64
	Description string
	Normals     int
	Sybils      int
	DurationH   int64 // observation window, hours
}

// Dataset is the serializable form of a finished simulation.
type Dataset struct {
	Meta     Meta
	Accounts []osn.Account
	Edges    []graph.EdgeTriple
	Events   []osn.Event
	// Ground truth, by account ID.
	SybilIDs  []osn.AccountID
	NormalIDs []osn.AccountID
}

// FromNetwork captures a network plus its ground-truth ID sets.
func FromNetwork(net *osn.Network, meta Meta, sybils, normals []osn.AccountID) *Dataset {
	meta.Normals = len(normals)
	meta.Sybils = len(sybils)
	return &Dataset{
		Meta:      meta,
		Accounts:  append([]osn.Account(nil), net.Accounts()...),
		Edges:     net.Graph().Edges(),
		Events:    append([]osn.Event(nil), net.Events()...),
		SybilIDs:  append([]osn.AccountID(nil), sybils...),
		NormalIDs: append([]osn.AccountID(nil), normals...),
	}
}

// Rebuild reconstructs the network.
func (d *Dataset) Rebuild() *osn.Network {
	return osn.Restore(d.Accounts, d.Edges, d.Events)
}

// Write streams the dataset as gzipped gob.
func (d *Dataset) Write(w io.Writer) error {
	zw := gzip.NewWriter(w)
	if err := gob.NewEncoder(zw).Encode(d); err != nil {
		zw.Close()
		return fmt.Errorf("trace: encode: %w", err)
	}
	return zw.Close()
}

// Read decodes a dataset written by Write.
func Read(r io.Reader) (*Dataset, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("trace: gzip: %w", err)
	}
	defer zr.Close()
	var d Dataset
	if err := gob.NewDecoder(zr).Decode(&d); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	return &d, nil
}

// Save writes the dataset to a file.
func (d *Dataset) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if err := d.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a dataset from a file.
func Load(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	return Read(f)
}

// WriteJSON exports the dataset as (uncompressed) JSON, for
// consumption outside Go.
func (d *Dataset) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(d); err != nil {
		return fmt.Errorf("trace: json: %w", err)
	}
	return nil
}
