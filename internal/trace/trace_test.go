package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"sybilwild/internal/features"
	"sybilwild/internal/osn"
)

func sampleNetwork(t *testing.T) (*osn.Network, []osn.AccountID, []osn.AccountID) {
	t.Helper()
	net := osn.NewNetwork()
	s := net.CreateAccount(osn.Female, osn.Sybil, 0)
	a := net.CreateAccount(osn.Male, osn.Normal, 0)
	b := net.CreateAccount(osn.Female, osn.Normal, 0)
	net.SendFriendRequest(s, a, 10)
	net.RespondFriendRequest(a, s, true, 20)
	net.SendFriendRequest(s, b, 30)
	net.RespondFriendRequest(b, s, false, 40)
	net.Ban(s, 50)
	return net, []osn.AccountID{s}, []osn.AccountID{a, b}
}

func TestRoundTripBuffer(t *testing.T) {
	net, sybils, normals := sampleNetwork(t)
	ds := FromNetwork(net, Meta{Seed: 42, Description: "test", DurationH: 400}, sybils, normals)
	var buf bytes.Buffer
	if err := ds.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta != ds.Meta {
		t.Fatalf("meta mismatch: %+v vs %+v", got.Meta, ds.Meta)
	}
	if len(got.Accounts) != 3 || len(got.Events) != len(ds.Events) || len(got.Edges) != 1 {
		t.Fatalf("shape mismatch: %d accounts %d events %d edges",
			len(got.Accounts), len(got.Events), len(got.Edges))
	}
	if got.Meta.Sybils != 1 || got.Meta.Normals != 2 {
		t.Fatalf("counts: %+v", got.Meta)
	}
}

func TestRebuildPreservesAnalysis(t *testing.T) {
	net, sybils, normals := sampleNetwork(t)
	ds := FromNetwork(net, Meta{}, sybils, normals)
	var buf bytes.Buffer
	if err := ds.Write(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	re := loaded.Rebuild()
	// Feature extraction must be identical on the rebuilt network.
	orig := features.Extract(net, []osn.AccountID{sybils[0]})[0]
	rebuilt := features.Extract(re, []osn.AccountID{loaded.SybilIDs[0]})[0]
	if orig != rebuilt {
		t.Fatalf("features diverge after round trip:\n%+v\n%+v", orig, rebuilt)
	}
	// Ban state must survive.
	if !re.Account(sybils[0]).Banned || re.Account(sybils[0]).BannedAt != 50 {
		t.Fatal("ban state lost")
	}
	if re.Graph().NumEdges() != net.Graph().NumEdges() {
		t.Fatal("edges lost")
	}
}

func TestSaveLoadFile(t *testing.T) {
	net, sybils, normals := sampleNetwork(t)
	ds := FromNetwork(net, Meta{Seed: 7}, sybils, normals)
	path := filepath.Join(t.TempDir(), "ds.gob.gz")
	if err := ds.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta.Seed != 7 {
		t.Fatalf("seed = %d", got.Meta.Seed)
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.gob.gz")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestReadGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not gzip"))); err == nil {
		t.Fatal("expected error for garbage input")
	}
}

func TestWriteJSON(t *testing.T) {
	net, sybils, normals := sampleNetwork(t)
	ds := FromNetwork(net, Meta{Description: "j"}, sybils, normals)
	var buf bytes.Buffer
	if err := ds.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"Description"`)) {
		t.Fatal("json missing fields")
	}
}

func TestSaveToBadPath(t *testing.T) {
	net, sybils, normals := sampleNetwork(t)
	ds := FromNetwork(net, Meta{}, sybils, normals)
	if err := ds.Save(string(os.PathSeparator) + "no/such/dir/x.gz"); err == nil {
		t.Fatal("expected error for bad path")
	}
}
