package stats

import (
	"math"
	"math/rand"
)

// Rand wraps math/rand with the distribution families the simulator
// needs. All sybilwild randomness flows through injected *Rand values so
// every experiment is reproducible from a single seed.
type Rand struct {
	*rand.Rand
}

// NewRand returns a deterministic generator for the given seed.
func NewRand(seed int64) *Rand {
	return &Rand{Rand: rand.New(rand.NewSource(seed))}
}

// Fork derives an independent child generator. Each call advances the
// parent, so successive forks are distinct but reproducible.
func (r *Rand) Fork() *Rand {
	return NewRand(r.Int63())
}

// Exponential draws from an exponential distribution with the given
// mean (not rate). Mean must be positive.
func (r *Rand) Exponential(mean float64) float64 {
	return r.ExpFloat64() * mean
}

// LogNormal draws from a log-normal distribution where the underlying
// normal has mean mu and standard deviation sigma.
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.NormFloat64()*sigma + mu)
}

// Pareto draws from a Pareto (power-law) distribution with scale xmin
// and shape alpha: P(X > x) = (xmin/x)^alpha for x ≥ xmin.
func (r *Rand) Pareto(xmin, alpha float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return xmin * math.Pow(u, -1/alpha)
}

// Bernoulli returns true with probability p.
func (r *Rand) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Poisson draws from a Poisson distribution with the given mean using
// Knuth's method for small means and a normal approximation for large
// ones. It is used for per-window invitation counts.
func (r *Rand) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 60 {
		// Normal approximation; adequate for workload generation.
		v := r.NormFloat64()*math.Sqrt(mean) + mean
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Beta draws from a Beta(a, b) distribution via Jöhnk's/gamma method.
// It models per-user accept probabilities (values in [0, 1]).
func (r *Rand) Beta(a, b float64) float64 {
	x := r.Gamma(a)
	y := r.Gamma(b)
	if x+y == 0 {
		return 0.5
	}
	return x / (x + y)
}

// Gamma draws from a Gamma distribution with shape k and scale 1 using
// the Marsaglia–Tsang method.
func (r *Rand) Gamma(k float64) float64 {
	if k < 1 {
		// Boost: Gamma(k) = Gamma(k+1) * U^(1/k)
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return r.Gamma(k+1) * math.Pow(u, 1/k)
	}
	d := k - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// ZipfRanks returns a sampler over ranks [0, n) following a Zipf
// distribution with exponent s ≥ 1. Used by snowball-sampling tools to
// bias target selection toward popular users.
func (r *Rand) ZipfRanks(s float64, n int) func() int {
	if n <= 0 {
		panic("stats: ZipfRanks needs n > 0")
	}
	if s < 1 {
		s = 1
	}
	z := rand.NewZipf(r.Rand, s, 1, uint64(n-1))
	if z == nil {
		panic("stats: invalid Zipf parameters")
	}
	return func() int { return int(z.Uint64()) }
}

// Shuffle permutes xs in place.
func Shuffle[T any](r *Rand, xs []T) {
	r.Rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// SampleWithoutReplacement picks k distinct indices from [0, n). When
// k ≥ n it returns all n indices in shuffled order.
func SampleWithoutReplacement(r *Rand, n, k int) []int {
	if k >= n {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		Shuffle(r, idx)
		return idx
	}
	// Floyd's algorithm.
	chosen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		t := r.Intn(j + 1)
		if _, ok := chosen[t]; ok {
			t = j
		}
		chosen[t] = struct{}{}
		out = append(out, t)
	}
	Shuffle(r, out)
	return out
}
