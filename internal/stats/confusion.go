package stats

import (
	"fmt"
	"strings"
)

// Confusion is a binary confusion matrix for Sybil classification,
// matching the layout of the paper's Table 1: rows are true classes,
// columns are predicted classes.
type Confusion struct {
	TP int // true Sybil predicted Sybil
	FN int // true Sybil predicted non-Sybil
	FP int // true non-Sybil predicted Sybil
	TN int // true non-Sybil predicted non-Sybil
}

// Observe records one classification outcome.
func (c *Confusion) Observe(actualSybil, predictedSybil bool) {
	switch {
	case actualSybil && predictedSybil:
		c.TP++
	case actualSybil && !predictedSybil:
		c.FN++
	case !actualSybil && predictedSybil:
		c.FP++
	default:
		c.TN++
	}
}

// Add accumulates another confusion matrix (e.g. across CV folds).
func (c *Confusion) Add(o Confusion) {
	c.TP += o.TP
	c.FN += o.FN
	c.FP += o.FP
	c.TN += o.TN
}

// TPR is the true-positive rate: detected Sybils / actual Sybils.
func (c *Confusion) TPR() float64 { return ratio(c.TP, c.TP+c.FN) }

// FNR is the false-negative rate.
func (c *Confusion) FNR() float64 { return ratio(c.FN, c.TP+c.FN) }

// FPR is the false-positive rate: normals flagged / actual normals.
func (c *Confusion) FPR() float64 { return ratio(c.FP, c.FP+c.TN) }

// TNR is the true-negative rate.
func (c *Confusion) TNR() float64 { return ratio(c.TN, c.FP+c.TN) }

// Accuracy is overall fraction correct.
func (c *Confusion) Accuracy() float64 {
	return ratio(c.TP+c.TN, c.TP+c.TN+c.FP+c.FN)
}

// Precision is TP / (TP + FP).
func (c *Confusion) Precision() float64 { return ratio(c.TP, c.TP+c.FP) }

// String renders the matrix in the percentage layout of Table 1.
func (c *Confusion) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %12s %12s\n", "", "Pred Sybil", "Pred Normal")
	fmt.Fprintf(&b, "%-16s %11.2f%% %11.2f%%\n", "True Sybil", 100*c.TPR(), 100*c.FNR())
	fmt.Fprintf(&b, "%-16s %11.2f%% %11.2f%%\n", "True Non-Sybil", 100*c.FPR(), 100*c.TNR())
	return b.String()
}

func ratio(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Table renders rows of cells as an aligned plain-text table with a
// header. Every experiment driver uses it so the output mirrors the
// paper's tables.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}
