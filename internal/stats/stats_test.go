package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.Std != 0 {
		t.Fatalf("empty summary not zero: %+v", s)
	}
}

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Fatalf("N = %d, want 8", s.N)
	}
	if s.Mean != 5 {
		t.Fatalf("Mean = %v, want 5", s.Mean)
	}
	// Sample std of that classic dataset is sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.Std-want) > 1e-12 {
		t.Fatalf("Std = %v, want %v", s.Std, want)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("Min/Max = %v/%v, want 2/9", s.Min, s.Max)
	}
	if s.Median != 4.5 {
		t.Fatalf("Median = %v, want 4.5", s.Median)
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestQuantileEdges(t *testing.T) {
	sorted := []float64{1, 2, 3, 4}
	if got := Quantile(sorted, 0); got != 1 {
		t.Fatalf("q0 = %v", got)
	}
	if got := Quantile(sorted, 1); got != 4 {
		t.Fatalf("q1 = %v", got)
	}
	if got := Quantile(sorted, 0.5); got != 2.5 {
		t.Fatalf("q0.5 = %v", got)
	}
}

func TestQuantilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty sample")
		}
	}()
	Quantile(nil, 0.5)
}

func TestFractionBelowAtMost(t *testing.T) {
	xs := []float64{1, 2, 2, 3}
	if got := FractionBelow(xs, 2); got != 0.25 {
		t.Fatalf("FractionBelow = %v", got)
	}
	if got := FractionAtMost(xs, 2); got != 0.75 {
		t.Fatalf("FractionAtMost = %v", got)
	}
}

func TestECDFEval(t *testing.T) {
	e := NewECDF([]float64{1, 2, 3, 4})
	cases := []struct {
		x, want float64
	}{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := e.Eval(c.x); got != c.want {
			t.Errorf("Eval(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestECDFMonotoneProperty(t *testing.T) {
	f := func(xs []float64, a, b float64) bool {
		for i, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				xs[i] = 0
			}
		}
		if len(xs) == 0 {
			return true
		}
		e := NewECDF(xs)
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		return e.Eval(lo) <= e.Eval(hi) && e.Eval(hi) <= 1 && e.Eval(lo) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestECDFPoints(t *testing.T) {
	e := NewECDF([]float64{5, 1, 3, 2, 4})
	pts := e.Points(5)
	if len(pts) != 5 {
		t.Fatalf("got %d points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].X < pts[i-1].X || pts[i].Y < pts[i-1].Y {
			t.Fatalf("points not monotone: %+v", pts)
		}
	}
	if pts[len(pts)-1].Y != 100 {
		t.Fatalf("last point Y = %v, want 100", pts[len(pts)-1].Y)
	}
}

func TestECDFQuantileInverse(t *testing.T) {
	f := func(raw []float64) bool {
		xs := raw[:0]
		for _, x := range raw {
			// Bound magnitudes: linear interpolation between values near
			// ±MaxFloat64 loses enough precision to break the invariant
			// in ways irrelevant to this library's domain.
			if !math.IsNaN(x) && math.Abs(x) < 1e12 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		e := NewECDF(xs)
		for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
			v := e.Quantile(q)
			// CDF at quantile must be at least q (within float fuzz).
			if e.Eval(v)+1e-9 < q {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramClamping(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.Add(-100)
	h.Add(100)
	h.Add(5)
	if h.Total() != 3 {
		t.Fatalf("Total = %d", h.Total())
	}
	if h.Counts[0] != 1 || h.Counts[4] != 1 || h.Counts[2] != 1 {
		t.Fatalf("counts = %v", h.Counts)
	}
	if got := h.Fraction(2); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Fatalf("Fraction = %v", got)
	}
}

func TestLogBins(t *testing.T) {
	edges := LogBins(1, 1000, 3)
	want := []float64{1, 10, 100, 1000}
	for i := range want {
		if math.Abs(edges[i]-want[i]) > 1e-9 {
			t.Fatalf("edges = %v", edges)
		}
	}
}

func TestDegreeDistribution(t *testing.T) {
	ds, counts := DegreeDistribution([]int{1, 1, 2, 5, 5, 5})
	if len(ds) != 3 || ds[0] != 1 || ds[1] != 2 || ds[2] != 5 {
		t.Fatalf("ds = %v", ds)
	}
	if counts[0] != 2 || counts[1] != 1 || counts[2] != 3 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestConfusion(t *testing.T) {
	var c Confusion
	c.Observe(true, true)
	c.Observe(true, false)
	c.Observe(false, true)
	c.Observe(false, false)
	if c.TP != 1 || c.FN != 1 || c.FP != 1 || c.TN != 1 {
		t.Fatalf("matrix = %+v", c)
	}
	if c.Accuracy() != 0.5 || c.TPR() != 0.5 || c.FPR() != 0.5 {
		t.Fatalf("rates wrong: %+v", c)
	}
	var sum Confusion
	sum.Add(c)
	sum.Add(c)
	if sum.TP != 2 || sum.TN != 2 {
		t.Fatalf("Add broken: %+v", sum)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestForkIndependence(t *testing.T) {
	r := NewRand(1)
	c1 := r.Fork()
	c2 := r.Fork()
	same := true
	for i := 0; i < 16; i++ {
		if c1.Int63() != c2.Int63() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("forked children produced identical streams")
	}
}

func TestExponentialMean(t *testing.T) {
	r := NewRand(7)
	var sum float64
	n := 20000
	for i := 0; i < n; i++ {
		sum += r.Exponential(3)
	}
	mean := sum / float64(n)
	if math.Abs(mean-3) > 0.1 {
		t.Fatalf("exponential mean = %v, want ~3", mean)
	}
}

func TestPoissonMean(t *testing.T) {
	r := NewRand(9)
	for _, mean := range []float64{0.5, 4, 80} {
		var sum float64
		n := 20000
		for i := 0; i < n; i++ {
			sum += float64(r.Poisson(mean))
		}
		got := sum / float64(n)
		if math.Abs(got-mean) > mean*0.05+0.05 {
			t.Fatalf("poisson(%v) mean = %v", mean, got)
		}
	}
}

func TestBetaRangeAndMean(t *testing.T) {
	r := NewRand(11)
	var sum float64
	n := 20000
	for i := 0; i < n; i++ {
		v := r.Beta(8, 2)
		if v < 0 || v > 1 {
			t.Fatalf("beta out of range: %v", v)
		}
		sum += v
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.8) > 0.02 {
		t.Fatalf("beta(8,2) mean = %v, want ~0.8", mean)
	}
}

func TestParetoTail(t *testing.T) {
	r := NewRand(13)
	n := 50000
	over := 0
	for i := 0; i < n; i++ {
		v := r.Pareto(1, 2)
		if v < 1 {
			t.Fatalf("pareto below xmin: %v", v)
		}
		if v > 2 {
			over++
		}
	}
	// P(X>2) = (1/2)^2 = 0.25
	frac := float64(over) / float64(n)
	if math.Abs(frac-0.25) > 0.02 {
		t.Fatalf("pareto tail = %v, want ~0.25", frac)
	}
}

func TestZipfRanksBias(t *testing.T) {
	r := NewRand(17)
	next := r.ZipfRanks(1.5, 100)
	counts := make([]int, 100)
	for i := 0; i < 50000; i++ {
		k := next()
		if k < 0 || k >= 100 {
			t.Fatalf("rank out of range: %d", k)
		}
		counts[k]++
	}
	if counts[0] <= counts[10] || counts[10] <= counts[50] {
		t.Fatalf("zipf not biased toward low ranks: %v %v %v", counts[0], counts[10], counts[50])
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	r := NewRand(19)
	for _, k := range []int{0, 1, 5, 10, 20} {
		got := SampleWithoutReplacement(r, 10, k)
		wantLen := k
		if k > 10 {
			wantLen = 10
		}
		if len(got) != wantLen {
			t.Fatalf("k=%d: len=%d", k, len(got))
		}
		seen := map[int]bool{}
		for _, v := range got {
			if v < 0 || v >= 10 || seen[v] {
				t.Fatalf("k=%d: bad sample %v", k, got)
			}
			seen[v] = true
		}
	}
}

func TestSampleWithoutReplacementUniform(t *testing.T) {
	r := NewRand(23)
	counts := make([]int, 10)
	for i := 0; i < 20000; i++ {
		for _, v := range SampleWithoutReplacement(r, 10, 3) {
			counts[v]++
		}
	}
	for i, c := range counts {
		frac := float64(c) / 60000
		if math.Abs(frac-0.1) > 0.01 {
			t.Fatalf("index %d frequency %v, want ~0.1", i, frac)
		}
	}
}

func TestTableRendering(t *testing.T) {
	out := Table([]string{"a", "bbbb"}, [][]string{{"xx", "y"}})
	if out == "" {
		t.Fatal("empty table")
	}
	lines := splitLines(out)
	if len(lines) != 3 {
		t.Fatalf("table lines = %d: %q", len(lines), out)
	}
}

func TestAsciiCDFContainsSeries(t *testing.T) {
	out := AsciiCDF(20, 5, 0, 10, map[string]*ECDF{
		"normal": NewECDF([]float64{1, 2, 3}),
		"sybil":  NewECDF([]float64{7, 8, 9}),
	})
	if out == "" {
		t.Fatal("empty plot")
	}
	if !containsRune(out, '*') || !containsRune(out, '+') {
		t.Fatalf("missing series markers: %q", out)
	}
}

func containsRune(s string, r rune) bool {
	for _, c := range s {
		if c == r {
			return true
		}
	}
	return false
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i, c := range s {
		if c == '\n' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

func TestQuantileSortedProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := raw[:0]
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		sort.Float64s(xs)
		q25 := Quantile(xs, 0.25)
		q75 := Quantile(xs, 0.75)
		return q25 <= q75 && q25 >= xs[0] && q75 <= xs[len(xs)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
