package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram is a fixed-bin histogram over [Lo, Hi). Values outside the
// range are clamped into the first/last bin so no observation is lost.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram creates a histogram with nbins equal-width bins over
// [lo, hi). It panics on nbins ≤ 0 or hi ≤ lo.
func NewHistogram(lo, hi float64, nbins int) *Histogram {
	if nbins <= 0 {
		panic("stats: histogram needs at least one bin")
	}
	if hi <= lo {
		panic("stats: histogram range is empty")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, nbins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
	h.total++
}

// Total returns the number of observations recorded.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}

// Fraction returns the fraction of observations in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}

// String renders the histogram as a simple bar chart.
func (h *Histogram) String() string {
	var b strings.Builder
	maxCount := 0
	for _, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	for i, c := range h.Counts {
		bar := 0
		if maxCount > 0 {
			bar = c * 40 / maxCount
		}
		fmt.Fprintf(&b, "%10.4g |%s %d\n", h.BinCenter(i), strings.Repeat("#", bar), c)
	}
	return b.String()
}

// LogBins returns n bin edges logarithmically spaced between lo and hi
// (both must be positive). The returned slice has n+1 edges. It is used
// for the paper's log-x-axis degree and cc distributions.
func LogBins(lo, hi float64, n int) []float64 {
	if lo <= 0 || hi <= lo || n <= 0 {
		panic("stats: invalid log bin parameters")
	}
	edges := make([]float64, n+1)
	llo, lhi := math.Log10(lo), math.Log10(hi)
	for i := 0; i <= n; i++ {
		edges[i] = math.Pow(10, llo+(lhi-llo)*float64(i)/float64(n))
	}
	return edges
}

// DegreeDistribution counts occurrences of each integer degree and
// returns (degrees ascending, count per degree). Useful for the
// paper's Figures 5 and 9.
func DegreeDistribution(degrees []int) (ds []int, counts []int) {
	m := map[int]int{}
	for _, d := range degrees {
		m[d]++
	}
	for d := range m {
		ds = append(ds, d)
	}
	sort.Ints(ds)
	counts = make([]int, len(ds))
	for i, d := range ds {
		counts[i] = m[d]
	}
	return ds, counts
}
