// Package stats provides the numerical substrate for the sybilwild
// reproduction: empirical CDFs, histograms, summary statistics,
// confusion matrices, random variates, and plain-text rendering of the
// tables and series the paper reports.
//
// Everything is deterministic given an injected rand source; no global
// RNG state is consumed anywhere in this package.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the standard moments and order statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes summary statistics of xs. It copies xs before
// sorting, so the argument is never mutated. A zero-length sample
// yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = Quantile(sorted, 0.5)
	return s
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of an ascending-sorted
// sample using linear interpolation between closest ranks. It panics if
// sorted is empty or q is outside [0, 1].
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("stats: Quantile of empty sample")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v outside [0,1]", q))
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of xs, or 0 for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// FractionBelow reports the fraction of xs strictly less than v.
func FractionBelow(xs []float64, v float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x < v {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// FractionAtMost reports the fraction of xs less than or equal to v.
func FractionAtMost(xs []float64, v float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x <= v {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}
