package stats

import (
	"fmt"
	"sort"
	"strings"
)

// ECDF is an empirical cumulative distribution function over a sample.
// The zero value is unusable; build one with NewECDF.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from xs. The input is copied.
func NewECDF(xs []float64) *ECDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// N returns the sample size.
func (e *ECDF) N() int { return len(e.sorted) }

// Eval returns P(X ≤ x), i.e. the fraction of the sample at most x.
func (e *ECDF) Eval(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	// First index with value > x.
	i := sort.Search(len(e.sorted), func(i int) bool { return e.sorted[i] > x })
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the q-quantile of the sample.
func (e *ECDF) Quantile(q float64) float64 { return Quantile(e.sorted, q) }

// Min returns the smallest sample value, or 0 for an empty sample.
func (e *ECDF) Min() float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	return e.sorted[0]
}

// Max returns the largest sample value, or 0 for an empty sample.
func (e *ECDF) Max() float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	return e.sorted[len(e.sorted)-1]
}

// Point is one (x, cumulative-percent) coordinate of a CDF series, as
// plotted in the paper's figures (y in percent, 0–100).
type Point struct {
	X float64
	Y float64
}

// Points returns n evenly spaced (by rank) CDF points suitable for
// plotting or for the experiment harness to print as a series.
func (e *ECDF) Points(n int) []Point {
	if len(e.sorted) == 0 || n <= 0 {
		return nil
	}
	if n > len(e.sorted) {
		n = len(e.sorted)
	}
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		// Rank positions spread across the full sample.
		idx := i * (len(e.sorted) - 1) / max(n-1, 1)
		pts = append(pts, Point{
			X: e.sorted[idx],
			Y: 100 * float64(idx+1) / float64(len(e.sorted)),
		})
	}
	return pts
}

// PointsAt evaluates the CDF at the given x positions, returning
// cumulative percent values. Useful for fixed-grid series like the
// paper's log-scaled x axes.
func (e *ECDF) PointsAt(xs []float64) []Point {
	pts := make([]Point, len(xs))
	for i, x := range xs {
		pts[i] = Point{X: x, Y: 100 * e.Eval(x)}
	}
	return pts
}

// AsciiCDF renders one or more named CDF series as a fixed-size ASCII
// plot, x spanning [xmin, xmax]. It is intentionally rough — the
// experiment harness uses it so humans can eyeball the same shapes the
// paper's figures show.
func AsciiCDF(width, height int, xmin, xmax float64, series map[string]*ECDF) string {
	if width < 8 {
		width = 8
	}
	if height < 4 {
		height = 4
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	markers := []byte{'*', '+', 'o', 'x', '#', '@'}
	names := make([]string, 0, len(series))
	for name := range series {
		names = append(names, name)
	}
	sort.Strings(names)
	for si, name := range names {
		e := series[name]
		m := markers[si%len(markers)]
		for col := 0; col < width; col++ {
			x := xmin + (xmax-xmin)*float64(col)/float64(width-1)
			y := e.Eval(x) // 0..1
			row := height - 1 - int(y*float64(height-1)+0.5)
			if row >= 0 && row < height {
				grid[row][col] = m
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "CDF (y: 0..100%%, x: %.3g..%.3g)\n", xmin, xmax)
	for _, row := range grid {
		b.WriteString("|")
		b.Write(row)
		b.WriteString("\n")
	}
	b.WriteString("+" + strings.Repeat("-", width) + "\n")
	for si, name := range names {
		fmt.Fprintf(&b, "  %c %s\n", markers[si%len(markers)], name)
	}
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
