package checkpoint

import (
	"os"
	"path/filepath"
	"testing"

	"sybilwild/internal/detector"
)

func snapAt(seq uint64) *detector.PipelineSnapshot {
	return &detector.PipelineSnapshot{
		Version:    detector.SnapshotVersion,
		Seq:        seq,
		Shards:     4,
		CheckEvery: 1,
	}
}

// TestWriteLatestRoundTrip: the newest checkpoint comes back with
// session and sequence intact.
func TestWriteLatestRoundTrip(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "ckpt"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if st, _, err := s.Latest(); err != nil || st != nil {
		t.Fatalf("empty store: st=%v err=%v, want nil,nil", st, err)
	}
	for _, seq := range []uint64{10, 250, 99} { // out-of-order write: newest by seq wins
		if _, err := s.Write("sess-a", snapAt(seq)); err != nil {
			t.Fatal(err)
		}
	}
	st, path, err := s.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if st == nil || st.Session != "sess-a" || st.Snapshot.Seq != 250 {
		t.Fatalf("latest = %+v (%s), want seq 250", st, path)
	}
}

// TestPruneKeepsNewest: only the newest keep generations survive.
func TestPruneKeepsNewest(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ckpt")
	s, err := Open(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 5; seq++ {
		if _, err := s.Write("s", snapAt(seq)); err != nil {
			t.Fatal(err)
		}
	}
	names, err := s.list()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 {
		t.Fatalf("kept %d files %v, want 2", len(names), names)
	}
	if st, _, _ := s.Latest(); st.Snapshot.Seq != 5 {
		t.Fatalf("latest seq %d after prune, want 5", st.Snapshot.Seq)
	}
}

// TestLatestSkipsDamagedNewest: a manually damaged newest file must
// not brick the store — the previous generation is restored instead.
func TestLatestSkipsDamagedNewest(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ckpt")
	s, err := Open(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Write("s", snapAt(7)); err != nil {
		t.Fatal(err)
	}
	path, err := s.Write("s", snapAt(8))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, from, err := s.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if st == nil || st.Snapshot.Seq != 7 {
		t.Fatalf("latest = %+v (%s), want fallback to seq 7", st, from)
	}
}

// TestLatestIgnoresForeignFiles: stray files in the directory are not
// checkpoints.
func TestLatestIgnoresForeignFiles(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ckpt")
	s, err := Open(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"README.txt", "checkpoint-abc.json", "checkpoint-1.tmp"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if st, _, err := s.Latest(); err != nil || st != nil {
		t.Fatalf("foreign files treated as checkpoints: st=%v err=%v", st, err)
	}
}
