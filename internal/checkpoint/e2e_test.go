package checkpoint

import (
	"reflect"
	"sort"
	"testing"
	"time"

	"sybilwild/internal/agents"
	"sybilwild/internal/detector"
	"sybilwild/internal/osn"
	"sybilwild/internal/sim"
	"sybilwild/internal/stream"
)

// TestKillRestoreFlagEquality is the acceptance-criterion end-to-end:
// a checkpointed consumer (manual-ack client + sharded pipeline +
// this package's store — exactly cmd/detectd's shape) is killed
// mid-stream with un-checkpointed progress in memory. Everything it
// held in RAM is discarded; only the checkpoint files and the
// server-side replay window survive, as after kill -9. A second
// consumer restores the newest checkpoint, resumes the feed from the
// sequence it covers, and must finish with a flag set identical to a
// serial Monitor replay of the same log.
func TestKillRestoreFlagEquality(t *testing.T) {
	pop := agents.NewPopulation(17, agents.DefaultParams())
	pop.Bootstrap(800)
	pop.LaunchSybils(15, 30*sim.TicksPerHour)
	pop.RunFor(120 * sim.TicksPerHour)
	events := pop.Net.Events()
	g := pop.Net.Graph()
	rule := detector.Rule{OutAcceptMax: 0.5, FreqMin: 20, CCMax: 0.05, MinObserved: 10}

	// Reference: serial replay, no network, no interruption. Same
	// check cadence as the pipelines — cadence positions are part of
	// the state a checkpoint must carry.
	ref := detector.NewMonitor(rule, g, nil)
	ref.CheckEvery = 3
	for _, ev := range events {
		ref.Observe(ev)
	}
	if ref.FlaggedCount() == 0 {
		t.Fatal("reference monitor flagged nothing; equality test is vacuous")
	}

	srv, err := stream.NewServer("127.0.0.1:0", stream.WithReplayBuffer(len(events)+16))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	store, err := Open(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}

	// Producer: start broadcasting once the first consumer is on.
	go func() {
		deadline := time.Now().Add(10 * time.Second)
		for srv.NumClients() == 0 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		for _, ev := range events {
			srv.Broadcast(ev)
		}
	}()

	// Phase 1: checkpointed consumer, killed a third of the way in.
	c1, err := stream.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	c1.SetManualAck(true)
	p1 := detector.NewPipeline(rule, g, detector.WithShards(4), detector.WithCheckEvery(3))
	killAt := uint64(len(events) / 3)
	batches := 0
	for c1.LastSeq() < killAt {
		evs, err := c1.RecvBatch()
		if err != nil {
			t.Fatalf("phase 1 recv: %v", err)
		}
		p1.Ingest(detector.Batch{Events: evs, LastSeq: c1.LastSeq()})
		if batches++; batches%7 == 0 {
			snap := p1.Snapshot()
			if _, err := store.Write(c1.Session(), snap); err != nil {
				t.Fatal(err)
			}
			c1.Ack(snap.Seq)
		}
	}
	// Guarantee un-checkpointed in-memory progress at the kill point:
	// apply a few more batches after whatever checkpoint came last.
	for i := 0; i < 3; i++ {
		evs, err := c1.RecvBatch()
		if err != nil {
			t.Fatalf("phase 1 tail recv: %v", err)
		}
		p1.Ingest(detector.Batch{Events: evs, LastSeq: c1.LastSeq()})
	}
	applied := c1.LastSeq()
	c1.Kick()  // the kill: connection severed without goodbye...
	p1.Close() // ...and the in-memory pipeline state is discarded.

	// What survives: the newest durable checkpoint, strictly behind
	// the killed consumer's in-memory progress.
	st, path, err := store.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if st == nil {
		t.Fatal("no checkpoint survived the kill")
	}
	if st.Snapshot.Seq == 0 || st.Snapshot.Seq >= applied {
		t.Fatalf("checkpoint %s covers seq %d, killed consumer had applied %d — no replay gap to prove recovery on", path, st.Snapshot.Seq, applied)
	}

	// Phase 2: restore and resume. The replay gap (checkpoint..applied
	// and beyond) is re-delivered by the feed because the manual acks
	// never ran ahead of a durable checkpoint.
	p2, from, err := detector.NewPipelineFromSnapshot(rule, g, st.Snapshot)
	if err != nil {
		t.Fatalf("restore %s: %v", path, err)
	}
	if from != st.Snapshot.Seq+1 {
		t.Fatalf("resume sequence %d, want %d", from, st.Snapshot.Seq+1)
	}
	c2, err := stream.DialResume(srv.Addr(), st.Session, from)
	if err != nil {
		t.Fatalf("DialResume from checkpoint: %v", err)
	}
	defer c2.Close()
	c2.SetManualAck(true)
	for c2.LastSeq() < uint64(len(events)) {
		evs, err := c2.RecvBatch()
		if err != nil {
			t.Fatalf("phase 2 recv at seq %d: %v", c2.LastSeq(), err)
		}
		p2.Ingest(detector.Batch{Events: evs, LastSeq: c2.LastSeq()})
	}
	finalSnap := p2.Snapshot()
	if _, err := store.Write(c2.Session(), finalSnap); err != nil {
		t.Fatal(err)
	}
	c2.Ack(finalSnap.Seq)
	p2.Close()
	if finalSnap.Seq != uint64(len(events)) {
		t.Fatalf("final checkpoint at seq %d, want %d", finalSnap.Seq, len(events))
	}

	want := sorted(ref.FlaggedIDs())
	got := sorted(p2.FlaggedIDs())
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("flag divergence across kill/restore:\n got %v\nwant %v", got, want)
	}
}

func sorted(ids []osn.AccountID) []osn.AccountID {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
