package checkpoint

import (
	"reflect"
	"testing"
	"time"

	"sybilwild/internal/agents"
	"sybilwild/internal/detector"
	"sybilwild/internal/sim"
	"sybilwild/internal/spool"
	"sybilwild/internal/stream"
)

// TestColdRestartFromStaleCheckpointViaSpool is the acceptance
// end-to-end for the feed's disk tier: the in-memory replay window is
// tiny (64 events — orders of magnitude below the checkpoint
// interval), the feed is spooled to disk segments, and a checkpointed
// consumer (manual-ack client + sharded pipeline + checkpoint store —
// cmd/detectd's exact shape) is killed without warning. Everything in
// RAM dies; by the time the replacement process cold-starts, the feed
// head has run thousands of events past the stale checkpoint, so the
// entire replay gap must be served from spool segments — the old
// contract would have answered with ErrGap and a lost detector. The
// recovered flag set must equal a serial Monitor replay of the same
// log: recovery is invisible in the verdicts.
func TestColdRestartFromStaleCheckpointViaSpool(t *testing.T) {
	pop := agents.NewPopulation(17, agents.DefaultParams())
	pop.Bootstrap(800)
	pop.LaunchSybils(15, 30*sim.TicksPerHour)
	pop.RunFor(120 * sim.TicksPerHour)
	events := pop.Net.Events()
	g := pop.Net.Graph()
	rule := detector.Rule{OutAcceptMax: 0.5, FreqMin: 20, CCMax: 0.05, MinObserved: 10}

	// Reference: serial replay, no network, no interruption.
	ref := detector.NewMonitor(rule, g, nil)
	ref.CheckEvery = 3
	for _, ev := range events {
		ref.Observe(ev)
	}
	if ref.FlaggedCount() == 0 {
		t.Fatal("reference monitor flagged nothing; equality test is vacuous")
	}

	const window = 64 // the acceptance criterion: replay window ≤ 64
	sp, err := spool.Open(t.TempDir(), spool.WithSegmentBytes(64<<10))
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	srv, err := stream.NewServer("127.0.0.1:0",
		stream.WithReplayBuffer(window), stream.WithSpool(sp))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	store, err := Open(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}

	// Producer: the whole campaign, started once the first consumer is
	// on. The tiny window would stall a spool-less feed the moment the
	// manual-ack consumer lags one checkpoint; here it flows.
	go func() {
		deadline := time.Now().Add(10 * time.Second)
		for srv.NumClients() == 0 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		for _, ev := range events {
			srv.Broadcast(ev)
		}
	}()

	// Phase 1: checkpointed consumer, killed a third of the way in.
	// Checkpoints are far apart (every 30 batches), so its acks trail
	// delivery by far more than the 64-event window.
	c1, err := stream.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	c1.SetManualAck(true)
	p1 := detector.NewPipeline(rule, g, detector.WithShards(4), detector.WithCheckEvery(3))
	killAt := uint64(len(events) / 3)
	batches := 0
	for c1.LastSeq() < killAt {
		evs, err := c1.RecvBatch()
		if err != nil {
			t.Fatalf("phase 1 recv: %v", err)
		}
		p1.Ingest(detector.Batch{Events: evs, LastSeq: c1.LastSeq()})
		if batches++; batches%30 == 0 {
			snap := p1.Snapshot()
			if _, err := store.Write(c1.Session(), snap); err != nil {
				t.Fatal(err)
			}
			c1.Ack(snap.Seq)
		}
	}
	c1.Kick()  // kill -9: connection severed without goodbye...
	p1.Close() // ...and every byte of in-memory state is discarded.

	// What survives: the newest durable checkpoint, stale by far more
	// than the in-memory window can replay.
	st, path, err := store.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if st == nil {
		t.Fatal("no checkpoint survived the kill")
	}

	// Let the feed run well past the kill point before the cold
	// restart, so even the kill-time in-flight events have long left
	// every ring.
	deadline := time.Now().Add(30 * time.Second)
	for sp.End() < uint64(len(events)) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if sp.End() != uint64(len(events)) {
		t.Fatalf("spool holds %d events, want %d — producer stalled", sp.End(), len(events))
	}
	if gap := uint64(len(events)) - st.Snapshot.Seq; gap <= window {
		t.Fatalf("replay gap is only %d events (≤ window %d); nothing would prove the disk tier", gap, window)
	}

	// Phase 2: cold restart. Restore the stale checkpoint, resume the
	// feed at the sequence it covers — thousands of events behind a
	// 64-event window. Only the spool can serve this.
	p2, from, err := detector.NewPipelineFromSnapshot(rule, g, st.Snapshot)
	if err != nil {
		t.Fatalf("restore %s: %v", path, err)
	}
	c2, err := stream.DialResume(srv.Addr(), st.Session, from)
	if err != nil {
		t.Fatalf("DialResume %d events behind the head with a %d-event window: %v",
			uint64(len(events))-st.Snapshot.Seq, window, err)
	}
	defer c2.Close()
	c2.SetManualAck(true)
	for c2.LastSeq() < uint64(len(events)) {
		evs, err := c2.RecvBatch()
		if err != nil {
			t.Fatalf("phase 2 recv at seq %d: %v", c2.LastSeq(), err)
		}
		p2.Ingest(detector.Batch{Events: evs, LastSeq: c2.LastSeq()})
	}
	finalSnap := p2.Snapshot()
	if _, err := store.Write(c2.Session(), finalSnap); err != nil {
		t.Fatal(err)
	}
	c2.Ack(finalSnap.Seq)
	p2.Close()
	if finalSnap.Seq != uint64(len(events)) {
		t.Fatalf("final checkpoint at seq %d, want %d", finalSnap.Seq, len(events))
	}

	want := sorted(ref.FlaggedIDs())
	got := sorted(p2.FlaggedIDs())
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("flag divergence across cold restart from stale checkpoint:\n got %v\nwant %v", got, want)
	}
	if ev := srv.Stats().Evicted; ev != 0 {
		t.Fatalf("evicted = %d, want 0 — the disk tier must make this scenario lossless", ev)
	}
}
