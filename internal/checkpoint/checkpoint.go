// Package checkpoint persists detector pipeline snapshots as atomic,
// versioned checkpoint files, giving cmd/detectd durable state: a
// periodic Pipeline.Snapshot lands on disk, the feed is acked only
// through the checkpointed sequence, and a restart (crash or clean)
// restores the newest checkpoint and resumes the stream from the
// sequence it covers — the checkpointed-stateful-consumer shape that
// makes kill -9 recovery exactly-once.
//
// File format: one JSON State per file, named
// checkpoint-<seq>.json with the sequence zero-padded so
// lexicographic order is sequence order. Writes go to a temporary
// file in the same directory, are fsynced, then renamed into place —
// a reader never observes a torn checkpoint. The store keeps the
// newest K files (older ones are pruned after a successful write), so
// one bad write can never destroy the only good checkpoint.
package checkpoint

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"sybilwild/internal/detector"
)

// FileVersion identifies the checkpoint file schema; a mismatch on
// load fails loudly rather than misreading state.
const FileVersion = 1

// DefaultKeep is how many checkpoint generations a store retains.
const DefaultKeep = 3

// State is everything a restart needs: the pipeline image and the
// stream session that can replay the events since it was cut.
type State struct {
	Version  int                        `json:"version"`
	Session  string                     `json:"session"`
	Snapshot *detector.PipelineSnapshot `json:"snapshot"`
}

// Store manages a directory of checkpoint files. Not safe for
// concurrent use; a daemon checkpoints from one goroutine.
type Store struct {
	dir  string
	keep int
}

// Open creates the directory if needed and returns a store keeping
// the newest keep checkpoints (values < 1 mean DefaultKeep).
func Open(dir string, keep int) (*Store, error) {
	if keep < 1 {
		keep = DefaultKeep
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return &Store{dir: dir, keep: keep}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) path(seq uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("checkpoint-%020d.json", seq))
}

// seqOf parses the sequence out of a checkpoint filename, reporting
// ok=false for foreign files.
func seqOf(name string) (uint64, bool) {
	base := filepath.Base(name)
	if !strings.HasPrefix(base, "checkpoint-") || !strings.HasSuffix(base, ".json") {
		return 0, false
	}
	seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(base, "checkpoint-"), ".json"), 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// list returns the store's checkpoint files sorted newest first.
func (s *Store) list() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	var names []string
	for _, e := range entries {
		if _, ok := seqOf(e.Name()); ok && !e.IsDir() {
			names = append(names, filepath.Join(s.dir, e.Name()))
		}
	}
	sort.Sort(sort.Reverse(sort.StringSlice(names))) // padded names: lexicographic = sequence
	return names, nil
}

// Write persists a snapshot atomically and prunes old generations.
// It returns the path written. The write is durable before the rename
// lands, so after Write returns it is safe to acknowledge the
// snapshot's sequence to the feed.
func (s *Store) Write(session string, snap *detector.PipelineSnapshot) (string, error) {
	st := State{Version: FileVersion, Session: session, Snapshot: snap}
	tmp, err := os.CreateTemp(s.dir, "checkpoint-*.tmp")
	if err != nil {
		return "", fmt.Errorf("checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op once renamed
	enc := json.NewEncoder(tmp)
	if err := enc.Encode(&st); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return "", fmt.Errorf("checkpoint: write: %w", err)
	}
	final := s.path(snap.Seq)
	if err := os.Rename(tmp.Name(), final); err != nil {
		return "", fmt.Errorf("checkpoint: %w", err)
	}
	if d, err := os.Open(s.dir); err == nil {
		d.Sync() // best effort: make the rename durable too
		d.Close()
	}
	s.prune()
	return final, nil
}

// prune removes checkpoints beyond the newest keep. Best effort:
// pruning failures never fail a write.
func (s *Store) prune() {
	names, err := s.list()
	if err != nil {
		return
	}
	for _, old := range names[min(s.keep, len(names)):] {
		os.Remove(old)
	}
}

// Latest loads the newest readable checkpoint, returning its state
// and path. Unreadable or schema-mismatched files are skipped in
// favor of the next-newest generation (the atomic write makes torn
// files impossible, but a store survives manual damage). With no
// usable checkpoint it returns (nil, "", nil): a fresh start, not an
// error.
func (s *Store) Latest() (*State, string, error) {
	names, err := s.list()
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, "", nil
		}
		return nil, "", err
	}
	for _, name := range names {
		data, err := os.ReadFile(name)
		if err != nil {
			continue
		}
		var st State
		if json.Unmarshal(data, &st) != nil || st.Version != FileVersion || st.Snapshot == nil {
			continue
		}
		return &st, name, nil
	}
	return nil, "", nil
}
