package stream

// This file is the broker half of the publish sub-protocol: the
// server-side ingest path that admits wire producers, fences their
// epochs, deduplicates reconnect replays by per-producer batch
// sequence, and runs every accepted batch through the single global
// sequencer — so K concurrent producers interleave into one totally
// ordered feed whose downstream frames, ring, and spool are
// byte-compatible with a single in-process Broadcast caller. The
// producer-side counterpart is Publisher (publisher.go); the frame
// vocabulary is in wire.go.

import (
	"bufio"
	"errors"
	"fmt"
	"log"
	"net"

	"encoding/json"

	"sybilwild/internal/osn"
)

// producerState is one wire producer's broker-side registration. It
// survives connection loss (same-epoch reconnects keep the batch
// sequence for dedupe) and process restart (a new epoch resets the
// batch sequence; the durable event count tells the deterministic
// producer where to resume). All fields are guarded by Server.mu.
type producerState struct {
	id    string
	epoch uint64 // current epoch; connections from older epochs are fenced
	bseq  uint64 // highest batch sequence sequenced in the current epoch

	batches uint64 // batches sequenced, all epochs
	events  uint64 // events sequenced, all epochs — the restart resume cursor
	dups    uint64 // replayed batches dropped by dedupe

	eof  bool // epoch closed for good; counts toward feed completion
	conn net.Conn
}

// ProducerStats is one wire producer's ingest accounting.
type ProducerStats struct {
	ID          string
	Connected   bool
	Epoch       uint64 // current epoch (increments on process restart)
	Batches     uint64 // batches sequenced across all epochs
	Events      uint64 // events sequenced across all epochs
	DedupeDrops uint64 // replayed batches dropped (reconnect resends)
	EOF         bool   // producer closed its epoch; no more events expected
}

// errFenced means a newer connection or epoch superseded this one; the
// stale connection must stop without touching producer state.
var errFenced = errors.New("stream: producer connection fenced by a newer one")

// IngestDone returns a channel closed once every producer in the
// declared group has closed its epoch (sent peof) — the broker's cue
// that the feed is complete and Close may drain subscribers and emit
// eof downstream. It never closes on a server that admits no wire
// producers.
func (s *Server) IngestDone() <-chan struct{} { return s.ingestDone }

// NumProducers returns the number of currently connected wire
// producers.
func (s *Server) NumProducers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, p := range s.producers {
		if p.conn != nil {
			n++
		}
	}
	return n
}

// servePublisher admits a wire producer and runs its ingest loop:
// pbatch frames are deduplicated, sequenced, and acked in arrival
// order; peof closes the producer's epoch. Runs on the connection's
// accept goroutine; the broker only ever writes to a producer from
// this loop, so no separate writer goroutine is needed.
func (s *Server) servePublisher(conn net.Conn, br *bufio.Reader, hello frame, buf []byte) {
	p, epoch, ackB, count, reject := s.admitProducer(hello, conn)
	if reject != "" {
		writeControl(conn, frame{T: framePWelcome, V: ProtocolVersion, Err: reject})
		conn.Close()
		return
	}
	if err := writeControl(conn, frame{T: framePWelcome, V: ProtocolVersion,
		Epoch: epoch, Bseq: ackB, Count: count}); err != nil {
		s.detachProducer(p, conn)
		return
	}

	bw := bufio.NewWriterSize(conn, 4<<10)
	var evbuf []osn.Event
	for {
		payload, err := readFrame(br, buf)
		if err != nil {
			s.detachProducer(p, conn)
			return
		}
		buf = payload
		bseq, evs, ok := parsePBatchFrame(payload, evbuf[:0])
		if !ok {
			// Control frame, or a pbatch from a non-canonical encoder.
			var f frame
			if err := json.Unmarshal(payload, &f); err != nil {
				log.Printf("stream: producer %s sent a bad frame: %v", p.id, err)
				s.detachProducer(p, conn)
				return
			}
			switch f.T {
			case framePEOF:
				s.closeEpoch(p)
				writeControl(bw, frame{T: framePEOF})
				bw.Flush()
				continue // producer hangs up once it reads the confirmation
			case framePBatch:
				bseq, evs, err = parsePBatchSlow(payload, evbuf[:0])
				if err != nil {
					log.Printf("stream: producer %s: %v", p.id, err)
					s.detachProducer(p, conn)
					return
				}
			default:
				log.Printf("stream: producer %s sent unexpected %q frame", p.id, f.T)
				s.detachProducer(p, conn)
				return
			}
		}
		evbuf = evs[:0]
		ack, err := s.ingest(p, conn, epoch, bseq, evs)
		if err != nil {
			if !errors.Is(err, errFenced) {
				log.Printf("stream: producer %s batch %d rejected: %v", p.id, bseq, err)
			}
			s.detachProducer(p, conn)
			return
		}
		if writeControl(bw, frame{T: framePAck, Bseq: ack}) != nil || bw.Flush() != nil {
			s.detachProducer(p, conn)
			return
		}
	}
}

// admitProducer registers (or re-attaches) the producer named in the
// phello under the epoch rules: epoch 0 requests a fresh epoch (a
// restarted process), a matching current epoch re-attaches (a
// reconnect), anything else is fenced off. It returns the producer,
// the granted epoch, the highest batch sequence already sequenced in
// it, and the total events durably sequenced from this producer — or
// a rejection reason.
func (s *Server) admitProducer(hello frame, conn net.Conn) (p *producerState, epoch, ackB, count uint64, reject string) {
	if hello.Producer == "" || hello.Producers < 1 {
		return nil, 0, 0, 0, "malformed phello (producer id and group size required)"
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closing {
		return nil, 0, 0, 0, "server closing"
	}
	if s.expectProducers == 0 {
		s.expectProducers = hello.Producers
	} else if s.expectProducers != hello.Producers {
		return nil, 0, 0, 0, fmt.Sprintf("producer group size mismatch: feed registered %d, phello says %d",
			s.expectProducers, hello.Producers)
	}
	p = s.producers[hello.Producer]
	if p == nil {
		p = &producerState{id: hello.Producer}
		s.producers[hello.Producer] = p
	}
	switch {
	case hello.Epoch == 0:
		// Restarted process: fence the old epoch, reset the batch
		// sequence. The event count below tells the producer how far
		// its deterministic stream already made it into the log.
		p.epoch++
		p.bseq = 0
	case hello.Epoch == p.epoch:
		// Reconnect within the epoch: keep the batch sequence so the
		// producer's resend of unacked batches dedupes.
	case hello.Epoch < p.epoch:
		return nil, 0, 0, 0, fmt.Sprintf("stale epoch %d (current is %d)", hello.Epoch, p.epoch)
	default:
		// An epoch this broker never granted — e.g. the producer
		// outlived a broker restart that lost the registry. Dedupe
		// state is gone, so admitting it could duplicate events;
		// reject loudly instead.
		return nil, 0, 0, 0, fmt.Sprintf("unknown epoch %d (broker has only granted %d)", hello.Epoch, p.epoch)
	}
	if p.conn != nil {
		p.conn.Close()
	}
	p.conn = conn
	return p, p.epoch, p.bseq, p.events, ""
}

// ingest runs one publish batch through the global sequencer: dedupe
// by producer batch sequence, then the shared batch fan-out core —
// one canonical encode per maxBatch run, one spool frame, one queue
// append per subscriber. The sequencer lock covers only the dedupe
// check and sequence assignment, so concurrent producers overlap
// everything else (encoding in parallel, delivery ordered by the
// fan-out ticket). It returns the batch sequence to acknowledge
// (monotone: replays ack the high-water mark), and only after the
// fan-out completes — an acked batch is in the spool and every
// subscriber queue, preserving at-least-once across a broker death.
// The total order of the feed is the order producers' batches acquire
// s.mu here, interleaved with any in-process Broadcast calls.
func (s *Server) ingest(p *producerState, conn net.Conn, epoch, bseq uint64, evs []osn.Event) (uint64, error) {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return 0, errors.New("server closing")
	}
	if p.epoch != epoch || p.conn != conn {
		s.mu.Unlock()
		return 0, errFenced
	}
	switch {
	case bseq == 0:
		s.mu.Unlock()
		return 0, errors.New("batch sequence 0 (sequences start at 1)")
	case bseq <= p.bseq:
		// A reconnect replayed a batch the broker already sequenced:
		// drop it, but still ack the high-water mark so the producer
		// can retire it.
		p.dups++
		hw := p.bseq
		s.mu.Unlock()
		return hw, nil
	case bseq > p.bseq+1:
		s.mu.Unlock()
		return 0, fmt.Errorf("batch sequence gap: have %d, got %d", p.bseq, bseq)
	}
	p.bseq = bseq
	p.batches++
	p.events += uint64(len(evs))
	first := s.seq + 1
	s.seq += uint64(len(evs))
	s.mu.Unlock()

	if len(evs) > 0 {
		s.fanout(first, len(evs), func() []osn.Event { return evs }, s.encodeChunks(first, evs))
	}
	return bseq, nil
}

// closeEpoch marks the producer's feed contribution complete. When
// every producer in the declared group has closed, the ingest-done
// channel closes — the broker's cue to drain subscribers and emit eof.
// Idempotent: a restarted producer that finds nothing left to publish
// may close again.
func (s *Server) closeEpoch(p *producerState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p.eof {
		return
	}
	p.eof = true
	s.eofed++
	if s.expectProducers > 0 && s.eofed >= s.expectProducers {
		select {
		case <-s.ingestDone:
		default:
			close(s.ingestDone)
		}
	}
}

// detachProducer drops the producer's connection (its registration
// and dedupe state survive for reconnect or restart).
func (s *Server) detachProducer(p *producerState, conn net.Conn) {
	s.mu.Lock()
	if p.conn == conn {
		p.conn = nil
	}
	s.mu.Unlock()
	conn.Close()
}
