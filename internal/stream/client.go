package stream

import (
	"bufio"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"time"

	"sybilwild/internal/osn"
)

// ErrClosed is returned by Recv/RecvBatch when the server ends the
// feed cleanly (eof frame). Any other receive error means the
// connection was lost and the session can be resumed with DialResume.
var ErrClosed = errors.New("stream: feed closed")

// ErrGap means the server can no longer replay the requested resume
// sequence — the session was evicted (overflow, stall, or linger
// expiry) and at-least-once delivery cannot be preserved. The loss is
// loud: consumers must rebuild state rather than continue silently.
var ErrGap = errors.New("stream: resume window lost")

// ErrRebalanced is returned by Recv/RecvBatch when the broker retires
// the subscription's partition group shape in a live rebalance: the
// client has been handed everything it is owed up to the cutover
// barrier (LastSeq() == barrier once this is returned) and will never
// receive another event on this subscription. The consumer should
// snapshot its state at the barrier and offer it for the new owners;
// Rebalanced() reports the barrier and the new group size.
var ErrRebalanced = errors.New("stream: partition group rebalanced")

// newSessionID returns a fresh random subscriber session id.
func newSessionID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("stream: crypto/rand unavailable: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// NewSessionID returns a fresh random subscriber session id, for
// callers that must fix the id before dialing — a standby claims a
// partition for a session id (ClaimPartition) and then dials with
// WithSessionID so admission can match the claim.
func NewSessionID() string { return newSessionID() }

// Client subscribes to a Server's event feed. A Client is not safe
// for concurrent use.
type Client struct {
	conn    net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	session string

	// Partitioned subscription (WithPartition); parts == 0 means the
	// full feed.
	part  int
	parts int

	lastSeq uint64 // last sequence handed to the caller
	acked   uint64 // last sequence acknowledged to the server

	pending     []osn.Event // decoded events not yet handed out
	firstSeq    uint64      // sequence of pending[0] (contiguous batches)
	pendingSeqs []uint64    // per-event sequences, parallel to pending (fbatch frames)
	frameLast   uint64      // cursor the current fbatch advances to once drained
	batchSeqs   []uint64    // sequences of the last RecvBatch (fbatch frames; else nil)
	evbuf       []osn.Event // reusable decode buffer backing pending
	seqbuf      []uint64    // reusable decode buffer backing pendingSeqs
	buf         []byte      // reusable frame buffer
	eof         bool

	// Live-rebalance hand-off (terminal, like eof): set when the
	// server retires this subscription's group shape.
	rebalanced bool
	rebBarrier uint64 // cutover barrier; lastSeq is advanced to it
	rebNew     int    // new partition group size

	manualAck bool // acks driven by Ack() instead of delivery
}

// dialConfig collects DialOption settings.
type dialConfig struct {
	part    int
	parts   int
	session string
}

// DialOption configures Dial, DialFrom and DialResume.
type DialOption func(*dialConfig)

// WithPartition subscribes to one account partition of the feed: the
// server delivers only the events partition part of parts receives
// (osn.PartitionDelivers — the partition's owned actor slice plus the
// cross-partition support events its detector needs), in fbatch
// frames carrying per-event global sequences. Sequence numbers,
// LastSeq, acks and resume all stay in global feed coordinates; the
// client's cursor also advances past foreign events it never sees.
// parts <= 1 subscribes to the full feed.
func WithPartition(part, parts int) DialOption {
	return func(c *dialConfig) {
		c.part, c.parts = part, parts
		if c.parts <= 1 {
			c.part, c.parts = 0, 0
		}
	}
}

// WithSessionID fixes the session id for Dial and DialFrom instead of
// generating a random one. A standby that claimed a partition
// (ClaimPartition) must dial with the claimed id, or admission will
// refuse it the key. With DialResume — which already names its session
// — the option takes precedence; don't mix the two.
func WithSessionID(id string) DialOption {
	return func(c *dialConfig) { c.session = id }
}

// Dial connects to a stream server as a fresh subscriber: it receives
// every event broadcast after the handshake.
func Dial(addr string, opts ...DialOption) (*Client, error) {
	return dial(addr, newSessionID(), 0, opts)
}

// DialFrom connects as a fresh subscriber that backfills history: the
// feed starts at sequence from (DialFrom(addr, 1) replays the feed
// from its beginning) and flips to live delivery once the backlog is
// drained — served from the server's disk spool, so the feed is a
// replayable log for new consumers, not only resumed ones. It returns
// an error wrapping ErrGap when from is below the spool's retention
// floor (or the server has no spool holding it).
func DialFrom(addr string, from uint64, opts ...DialOption) (*Client, error) {
	if from == 0 {
		return nil, errors.New("stream: DialFrom needs a sequence ≥ 1 (use Dial to start at the live head)")
	}
	c, err := dial(addr, newSessionID(), from, opts)
	if err != nil {
		return nil, err
	}
	c.lastSeq = from - 1
	c.acked = from - 1
	return c, nil
}

// DialResume reconnects an existing session, asking the feed to
// continue from sequence from (normally LastSeq()+1, with session and
// the sequence taken from the previous Client). It returns an error
// wrapping ErrGap when the server no longer holds that part of the
// stream.
func DialResume(addr, session string, from uint64, opts ...DialOption) (*Client, error) {
	if from == 0 || session == "" {
		return nil, errors.New("stream: DialResume needs a session and a sequence ≥ 1")
	}
	c, err := dial(addr, session, from, opts)
	if err != nil {
		return nil, err
	}
	c.lastSeq = from - 1
	c.acked = from - 1
	return c, nil
}

func dial(addr, session string, resume uint64, opts []DialOption) (*Client, error) {
	var cfg dialConfig
	for _, fn := range opts {
		fn(&cfg)
	}
	if cfg.parts > 0 && (cfg.part < 0 || cfg.part >= cfg.parts) {
		return nil, fmt.Errorf("stream: invalid partition %d/%d", cfg.part, cfg.parts)
	}
	if cfg.session != "" {
		session = cfg.session
	}
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("stream: dial: %w", err)
	}
	c := &Client{
		conn:    conn,
		br:      bufio.NewReaderSize(conn, 64<<10),
		bw:      bufio.NewWriterSize(conn, 4<<10),
		session: session,
		part:    cfg.part,
		parts:   cfg.parts,
	}
	conn.SetDeadline(time.Now().Add(handshakeTimeout))
	hello := frame{T: frameHello, V: ProtocolVersion, Session: session, Resume: resume,
		Part: cfg.part, Parts: cfg.parts}
	if err := writeControl(c.bw, hello); err == nil {
		err = c.bw.Flush()
	}
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("stream: handshake: %w", err)
	}
	payload, err := readFrame(c.br, nil)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("stream: handshake: %w", err)
	}
	var welcome frame
	if err := json.Unmarshal(payload, &welcome); err != nil || welcome.T != frameWelcome {
		conn.Close()
		return nil, fmt.Errorf("stream: handshake: expected welcome, got %q", payload)
	}
	if welcome.Err != "" {
		conn.Close()
		if resume > 0 {
			return nil, fmt.Errorf("%w: %s", ErrGap, welcome.Err)
		}
		return nil, fmt.Errorf("stream: subscription rejected: %s", welcome.Err)
	}
	conn.SetDeadline(time.Time{})
	if welcome.From > 0 {
		// Anchor the cursor: the feed starts at the server's global
		// sequence, not at 1.
		c.lastSeq = welcome.From - 1
		c.acked = c.lastSeq
	}
	c.buf = payload
	return c, nil
}

// Session returns the subscriber's session id, needed to resume.
func (c *Client) Session() string { return c.session }

// LastSeq returns the sequence number of the last event handed to the
// caller; resume from LastSeq()+1.
func (c *Client) LastSeq() uint64 { return c.lastSeq }

// SetManualAck switches acknowledgement control to the caller. By
// default the client acks whatever it has delivered, which trims the
// server's replay window as fast as the application consumes — right
// for stateless consumers, wrong for checkpointed ones: a consumer
// that acked past its last durable checkpoint and then crashed would
// find the events it needs already trimmed. In manual mode the client
// never acks on its own; the application calls Ack with its
// checkpointed sequence, so the server retains exactly the
// events-since-last-checkpoint a crash would need replayed. The replay
// window must be sized to cover one checkpoint interval or Broadcast
// backpressure kicks in.
func (c *Client) SetManualAck(on bool) { c.manualAck = on }

// Ack acknowledges delivery through seq (clamped to what has actually
// been delivered), flushing the frame immediately. Only useful in
// manual-ack mode — automatic acking supersedes it otherwise. A write
// error is advisory: the dead connection also surfaces on the next
// read, which is where resume handling lives.
func (c *Client) Ack(seq uint64) error {
	if seq > c.lastSeq {
		seq = c.lastSeq
	}
	if seq <= c.acked {
		return nil
	}
	if err := writeControl(c.bw, frame{T: frameAck, Ack: seq}); err != nil {
		return err
	}
	c.acked = seq
	return c.bw.Flush()
}

// flushAcks acknowledges everything delivered so far. It runs
// whenever the client is about to block for more data and on Close,
// which bounds the unacknowledged backlog by one wire batch. Write
// errors are ignored: a dead connection surfaces on the next read.
func (c *Client) flushAcks() {
	if c.manualAck {
		return
	}
	if c.lastSeq > c.acked {
		if writeControl(c.bw, frame{T: frameAck, Ack: c.lastSeq}) == nil {
			c.bw.Flush()
		}
		c.acked = c.lastSeq
	}
}

// fill blocks for the next non-empty batch, deduplicating any events
// the client already delivered (a resumed server may resend its
// in-flight window). Filtered batches (fbatch, partitioned
// subscriptions) carry per-event sequences; their empty form is a
// pure cursor advance past foreign events and never surfaces to the
// caller.
func (c *Client) fill() error {
	if c.eof {
		return ErrClosed
	}
	if c.rebalanced {
		return ErrRebalanced
	}
	c.flushAcks() // the server trims its window while we wait
	for {
		payload, err := readFrame(c.br, c.buf)
		if err != nil {
			return fmt.Errorf("stream: read: %w", err)
		}
		c.buf = payload
		seq, evs, ok := parseBatchFrame(payload, c.evbuf[:0])
		var seqs []uint64
		var fLast uint64
		fbatch := false
		if !ok {
			fLast, evs, seqs, fbatch = parseFBatchFrame(payload, c.evbuf[:0], c.seqbuf[:0])
			if !fbatch {
				// Control frame, or a batch from a non-canonical encoder.
				var f frame
				if err := json.Unmarshal(payload, &f); err != nil {
					return fmt.Errorf("stream: bad frame: %w", err)
				}
				switch f.T {
				case frameEOF:
					c.eof = true
					return ErrClosed
				case frameRebal:
					// Terminal hand-off: everything owed below the barrier
					// has been delivered, so the cursor snaps to it — the
					// events between lastSeq and the barrier were all
					// foreign.
					c.rebalanced = true
					c.rebBarrier = f.Barrier
					c.rebNew = f.NParts
					if f.Barrier > c.lastSeq {
						c.lastSeq = f.Barrier
					}
					c.flushAcks()
					return ErrRebalanced
				case frameBatch:
					seq, evs, err = parseBatchSlow(payload, c.evbuf[:0])
					if err != nil {
						return err
					}
				case frameFBatch:
					fLast, evs, seqs, err = parseFBatchSlow(payload, c.evbuf[:0], c.seqbuf[:0])
					if err != nil {
						return err
					}
					fbatch = true
				default:
					return fmt.Errorf("stream: unexpected %q frame mid-stream", f.T)
				}
			}
		}
		c.evbuf = evs[:0]
		if fbatch {
			c.seqbuf = seqs[:0]
			// Drop any resent prefix the client already delivered.
			drop := 0
			for drop < len(evs) && seqs[drop] <= c.lastSeq {
				drop++
			}
			evs, seqs = evs[drop:], seqs[drop:]
			if len(evs) == 0 {
				// Pure cursor advance (or a fully stale resend): the
				// filtered-out events will never arrive, so the cursor
				// moves without a delivery.
				if fLast > c.lastSeq {
					c.lastSeq = fLast
				}
				continue
			}
			if fLast < seqs[len(seqs)-1] {
				return fmt.Errorf("stream: fbatch cursor %d behind its own events (last seq %d)",
					fLast, seqs[len(seqs)-1])
			}
			c.pending = evs
			c.pendingSeqs = seqs
			c.frameLast = fLast
			return nil
		}
		if len(evs) == 0 {
			continue
		}
		last := seq + uint64(len(evs)) - 1
		if last <= c.lastSeq {
			continue // whole batch already delivered
		}
		if seq <= c.lastSeq {
			evs = evs[c.lastSeq+1-seq:]
			seq = c.lastSeq + 1
		}
		if seq != c.lastSeq+1 {
			return fmt.Errorf("stream: sequence gap: expected %d, got batch at %d", c.lastSeq+1, seq)
		}
		c.pending = evs
		c.pendingSeqs = nil
		c.firstSeq = seq
		return nil
	}
}

// Recv blocks for the next event. It returns ErrClosed on clean end
// of feed; any other error means the connection died and the session
// may be resumed.
func (c *Client) Recv() (osn.Event, error) {
	if len(c.pending) == 0 {
		if err := c.fill(); err != nil {
			return osn.Event{}, err
		}
	}
	ev := c.pending[0]
	c.pending = c.pending[1:]
	c.batchSeqs = nil
	if c.pendingSeqs != nil {
		c.lastSeq = c.pendingSeqs[0]
		c.pendingSeqs = c.pendingSeqs[1:]
		if len(c.pending) == 0 {
			// Frame drained: the cursor also covers the trailing
			// foreign events the frame skipped over.
			if c.frameLast > c.lastSeq {
				c.lastSeq = c.frameLast
			}
			c.pendingSeqs = nil
		}
		return ev, nil
	}
	c.lastSeq = c.firstSeq
	c.firstSeq++
	return ev, nil
}

// RecvBatch blocks for the next batch of events, handing over whole
// wire batches so consumers can amortize their own per-event costs
// (e.g. feeding detector.Pipeline.Ingest). The returned slice is only
// valid until the next Recv or RecvBatch call.
func (c *Client) RecvBatch() ([]osn.Event, error) {
	if len(c.pending) == 0 {
		if err := c.fill(); err != nil {
			return nil, err
		}
	}
	evs := c.pending
	c.pending = nil
	if c.pendingSeqs != nil {
		c.batchSeqs = c.pendingSeqs
		c.pendingSeqs = nil
		c.lastSeq = c.frameLast
		return evs, nil
	}
	c.batchSeqs = nil
	c.lastSeq = c.firstSeq + uint64(len(evs)) - 1
	return evs, nil
}

// LastBatchSeqs returns the global sequences of the events the last
// RecvBatch returned, parallel to that slice — or nil when the batch
// was contiguous (sequences then run from LastSeq()−len+1 through
// LastSeq()). Partitioned subscriptions need this: their slice of the
// feed is sparse, so consumers that trim replayed prefixes by
// sequence arithmetic must use per-event sequences instead. Valid
// until the next Recv or RecvBatch call.
func (c *Client) LastBatchSeqs() []uint64 { return c.batchSeqs }

// Partition returns the client's partition subscription (part, parts);
// parts == 0 means the full feed.
func (c *Client) Partition() (part, parts int) { return c.part, c.parts }

// Rebalanced reports the live-rebalance hand-off, valid once
// Recv/RecvBatch has returned ErrRebalanced: the cutover barrier (the
// last sequence this subscription's state may cover) and the new
// partition group size.
func (c *Client) Rebalanced() (barrier uint64, nparts int, ok bool) {
	return c.rebBarrier, c.rebNew, c.rebalanced
}

// Close acknowledges everything delivered (unless in manual-ack mode)
// and disconnects. The session remains resumable on the server until
// its linger expires.
func (c *Client) Close() error {
	c.flushAcks()
	return c.conn.Close()
}

// Kick severs the connection without touching any client buffers,
// unblocking a Recv/RecvBatch pending in another goroutine (it
// returns a connection-loss error, so the session stays resumable).
// Safe to call concurrently with the owning goroutine's calls.
func (c *Client) Kick() { c.conn.Close() }

// Interrupt makes a pending (or the next) Recv/RecvBatch fail with a
// timeout error while leaving the connection itself usable for writes
// — unlike Kick, the interrupted loop can still send a final Ack and
// Close cleanly, which is how a signal handler stops an ingest loop
// that must checkpoint-and-acknowledge on the way out. Reads must not
// be retried after an Interrupt (a frame may have been consumed
// partially); resume the session on a fresh connection instead. Safe
// to call concurrently with the owning goroutine's calls.
func (c *Client) Interrupt() { c.conn.SetReadDeadline(time.Now()) }

// Subscribe dials addr and delivers events to fn until the server
// ends the feed, transparently resuming the session (exponential
// backoff, up to maxRetries consecutive failures) when the connection
// drops mid-stream. Sequence numbers make the combined stream
// exactly-once: fn sees every event delivered after the first
// handshake, with no gaps and no duplicates. It returns nil on clean
// end of feed, an error wrapping ErrGap if the server evicted the
// session (events were irrecoverably lost), or the last dial error.
func Subscribe(addr string, fn func(osn.Event), maxRetries int, opts ...DialOption) error {
	return subscribe(addr, maxRetries, opts, func(c *Client) error {
		for {
			ev, err := c.Recv()
			if err != nil {
				return err
			}
			fn(ev)
		}
	})
}

// SubscribeBatch is Subscribe at batch granularity: fn receives whole
// wire batches (valid only during the call), preserving order. Same
// delivery guarantees and return conventions as Subscribe.
func SubscribeBatch(addr string, fn func([]osn.Event), maxRetries int, opts ...DialOption) error {
	return subscribe(addr, maxRetries, opts, func(c *Client) error {
		for {
			evs, err := c.RecvBatch()
			if err != nil {
				return err
			}
			fn(evs)
		}
	})
}

func subscribe(addr string, maxRetries int, opts []DialOption, drain func(*Client) error) error {
	backoff := 50 * time.Millisecond
	retries := 0
	session := ""
	var last uint64
	for {
		var c *Client
		var err error
		if session == "" {
			c, err = Dial(addr, opts...)
		} else {
			c, err = DialResume(addr, session, last+1, opts...)
		}
		if err != nil {
			if errors.Is(err, ErrGap) {
				return err
			}
			retries++
			if retries > maxRetries {
				return err
			}
			time.Sleep(backoff)
			if backoff < 2*time.Second {
				backoff *= 2
			}
			continue
		}
		retries = 0
		backoff = 50 * time.Millisecond
		session = c.Session()
		err = drain(c)
		last = c.LastSeq()
		c.Close()
		if errors.Is(err, ErrClosed) {
			return nil // clean end of feed
		}
		if errors.Is(err, ErrRebalanced) {
			// Terminal: the partition group was retired; resuming would
			// only replay the hand-off.
			return err
		}
		// Connection lost mid-stream: resume from the next sequence.
	}
}
