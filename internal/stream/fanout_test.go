package stream

// Fan-out equivalence: the single-encode broker must put exactly the
// canonical bytes on every socket. These tests capture raw frames with
// a minimal hand-rolled subscriber (no Client-side re-parsing
// tolerance) and assert that every data frame is byte-identical to a
// fresh canonical encode of its own decoded content — which pins the
// splice-merge paths to the encoder — that every subscriber sees the
// same gapless event stream, and that the number of canonical encodes
// performed is a function of the feed shape, not of the subscriber
// count.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"testing"

	"sybilwild/internal/osn"
	"sybilwild/internal/wire"
)

// rawSub is a frame-capturing subscriber speaking just enough of the
// protocol to handshake and drain the feed to eof.
type rawSub struct {
	conn net.Conn
	br   *bufio.Reader
	from uint64 // welcome anchor: first sequence this subscriber will see

	frames [][]byte // every data frame payload, verbatim
}

func dialRawSub(t *testing.T, addr, session string, part, parts int) *rawSub {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	bw := bufio.NewWriter(conn)
	if err := writeControl(bw, frame{T: frameHello, V: ProtocolVersion, Session: session, Part: part, Parts: parts}); err == nil {
		err = bw.Flush()
	}
	if err != nil {
		t.Fatalf("raw hello: %v", err)
	}
	br := bufio.NewReaderSize(conn, 64<<10)
	payload, err := readFrame(br, nil)
	if err != nil {
		t.Fatalf("raw welcome: %v", err)
	}
	var welcome frame
	if err := json.Unmarshal(payload, &welcome); err != nil || welcome.T != frameWelcome || welcome.Err != "" {
		t.Fatalf("raw welcome: %q", payload)
	}
	return &rawSub{conn: conn, br: br, from: welcome.From}
}

// drain reads frames until eof, keeping a verbatim copy of each data
// frame payload.
func (r *rawSub) drain() error {
	for {
		payload, err := readFrame(r.br, nil)
		if err != nil {
			return err
		}
		var f frame
		if json.Unmarshal(payload, &f) == nil && f.T == frameEOF {
			r.conn.Close()
			return nil
		}
		cp := make([]byte, len(payload))
		copy(cp, payload)
		r.frames = append(r.frames, cp)
	}
}

// checkBatches asserts the subscriber's captured frames are all
// canonical batch payloads, byte-identical to a fresh encode of their
// decoded content, and that they concatenate to exactly want starting
// at r.from.
func (r *rawSub) checkBatches(t *testing.T, want []osn.Event) {
	t.Helper()
	next := r.from
	var got []osn.Event
	for i, payload := range r.frames {
		seq, evs, ok := wire.ParseBatch(payload, nil)
		if !ok {
			t.Fatalf("frame %d is not a canonical batch: %q", i, payload)
		}
		if reenc := wire.AppendBatch(nil, seq, evs); string(reenc) != string(payload) {
			t.Fatalf("frame %d diverges from the canonical encoder:\n%s\n%s", i, payload, reenc)
		}
		if seq != next {
			t.Fatalf("frame %d starts at seq %d, want %d", i, seq, next)
		}
		next = seq + uint64(len(evs))
		got = append(got, evs...)
	}
	if len(got) != len(want) {
		t.Fatalf("subscriber decoded %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d: %+v, want %+v", i, got[i], want[i])
		}
	}
}

// checkFBatches asserts canonical fbatch frames with strictly
// ascending owned sequences, returning the (seq, event) pairs seen.
func (r *rawSub) checkFBatches(t *testing.T, part, parts int) map[uint64]osn.Event {
	t.Helper()
	owned := make(map[uint64]osn.Event)
	lastSeq := r.from - 1
	cursor := r.from - 1
	for i, payload := range r.frames {
		last, evs, seqs, ok := wire.ParseFBatch(payload, nil, nil)
		if !ok {
			t.Fatalf("frame %d is not a canonical fbatch: %q", i, payload)
		}
		if reenc := wire.AppendFBatch(nil, last, seqs, evs); string(reenc) != string(payload) {
			t.Fatalf("frame %d diverges from the canonical encoder:\n%s\n%s", i, payload, reenc)
		}
		if last < cursor {
			t.Fatalf("frame %d cursor went backward: %d after %d", i, last, cursor)
		}
		cursor = last
		for k, seq := range seqs {
			if seq <= lastSeq {
				t.Fatalf("frame %d event seq %d not ascending past %d", i, seq, lastSeq)
			}
			if seq > last {
				t.Fatalf("frame %d event seq %d above its cursor %d", i, seq, last)
			}
			if !osn.PartitionDelivers(evs[k], part, parts) {
				t.Fatalf("frame %d event %+v not owned by partition %d/%d", i, evs[k], part, parts)
			}
			lastSeq = seq
			owned[seq] = evs[k]
		}
	}
	return owned
}

// TestFanoutByteIdenticalAcrossSubscribers: N full-feed subscribers
// plus one subscriber per partition of a 4-way split all drain the same
// broadcast feed; every frame must carry canonical bytes and every
// subscriber must see the identical event stream — while the server's
// encode counter stays bounded by the feed shape (chunks and
// partitions), not the subscriber count.
func TestFanoutByteIdenticalAcrossSubscribers(t *testing.T) {
	leakCheck(t)
	const (
		maxBatch  = 16
		batchLen  = 56 // not a multiple of maxBatch: exercises short tail chunks
		batches   = 12
		partParts = 4
	)
	events := make([]osn.Event, 0, batches*batchLen)
	for i := 0; i < batches*batchLen; i++ {
		events = append(events, testEvent(i))
	}
	for _, subs := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("subs=%d", subs), func(t *testing.T) {
			s, err := NewServer("127.0.0.1:0",
				WithMaxBatch(maxBatch), WithReplayBuffer(len(events)+1))
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()

			readers := make([]*rawSub, 0, subs+partParts)
			for i := 0; i < subs; i++ {
				readers = append(readers, dialRawSub(t, s.Addr(), fmt.Sprintf("full-%d", i), 0, 0))
			}
			for part := 0; part < partParts; part++ {
				readers = append(readers, dialRawSub(t, s.Addr(), fmt.Sprintf("part-%d", part), part, partParts))
			}

			var wg sync.WaitGroup
			errs := make([]error, len(readers))
			for i, r := range readers {
				wg.Add(1)
				go func(i int, r *rawSub) {
					defer wg.Done()
					errs[i] = r.drain()
				}(i, r)
			}
			for off := 0; off < len(events); off += batchLen {
				s.BroadcastBatch(events[off : off+batchLen])
			}
			if err := s.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
			wg.Wait()
			for i, err := range errs {
				if err != nil {
					t.Fatalf("subscriber %d drain: %v", i, err)
				}
			}

			for _, r := range readers[:subs] {
				r.checkBatches(t, events)
			}
			// Delivery is exactly-one-plus-support (friend events also
			// reach the counterpart's partition), so partitions may
			// overlap — but they must agree, and jointly cover the feed.
			union := make(map[uint64]osn.Event)
			for part := 0; part < partParts; part++ {
				for seq, ev := range readers[subs+part].checkFBatches(t, part, partParts) {
					if prev, dup := union[seq]; dup && prev != ev {
						t.Fatalf("seq %d delivered divergently: %+v vs %+v", seq, prev, ev)
					}
					union[seq] = ev
				}
			}
			if len(union) != len(events) {
				t.Fatalf("partitions jointly delivered %d events, want %d", len(union), len(events))
			}
			for seq, ev := range union {
				if want := events[seq-1]; ev != want {
					t.Fatalf("seq %d: %+v, want %+v", seq, ev, want)
				}
			}

			// The single-encode invariant: one canonical encode per
			// chunk plus at most one filtered encode per chunk per
			// partition — independent of the subscriber count.
			chunks := batches * ((batchLen + maxBatch - 1) / maxBatch)
			if enc := s.Stats().Encodes; enc == 0 || enc > uint64(chunks*(1+partParts)) {
				t.Fatalf("encodes = %d with %d subscribers, want in [1, %d]",
					enc, subs, chunks*(1+partParts))
			}
		})
	}
}
