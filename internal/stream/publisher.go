package stream

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"encoding/json"

	"sybilwild/internal/osn"
)

// This file is the producer half of the publish sub-protocol: the
// client a simulation shard (or any event source) uses to feed a
// broker over the wire. The broker half is publish.go; the frame
// vocabulary is in wire.go.

// Publisher defaults; each has a PublisherOption override.
const (
	// DefaultPublishWindow is the maximum unacknowledged batches a
	// publisher keeps in flight before blocking — the producer-side
	// backpressure bound, and exactly the set resent after a
	// reconnect.
	DefaultPublishWindow = 64
	// DefaultPublishRetries bounds consecutive reconnect attempts.
	DefaultPublishRetries = 10
)

// ErrPublisherClosed is returned by Publish after Close or Abort.
var ErrPublisherClosed = errors.New("stream: publisher closed")

type publisherOptions struct {
	maxBatch   int
	flushEvery time.Duration
	window     int
	retries    int
}

// PublisherOption configures NewPublisher.
type PublisherOption func(*publisherOptions)

// WithPublishMaxBatch sets the events coalesced per pbatch frame.
func WithPublishMaxBatch(n int) PublisherOption {
	return func(o *publisherOptions) {
		if n > 0 {
			o.maxBatch = n
		}
	}
}

// WithPublishFlushEvery bounds how long a partially filled batch may
// sit before the next Publish call flushes it.
func WithPublishFlushEvery(d time.Duration) PublisherOption {
	return func(o *publisherOptions) {
		if d > 0 {
			o.flushEvery = d
		}
	}
}

// WithPublishWindow sets the maximum unacknowledged batches in flight.
func WithPublishWindow(n int) PublisherOption {
	return func(o *publisherOptions) {
		if n > 0 {
			o.window = n
		}
	}
}

// WithPublishRetries sets the maximum consecutive reconnect attempts.
func WithPublishRetries(n int) PublisherOption {
	return func(o *publisherOptions) {
		if n >= 0 {
			o.retries = n
		}
	}
}

// PublisherStats is a publisher's send-side accounting.
type PublisherStats struct {
	Batches uint64 // batches sent (first transmission only)
	Events  uint64 // events published
	Acked   uint64 // highest batch sequence the broker has acknowledged
	Resent  uint64 // batches retransmitted after reconnects (deduped by the broker)
}

// pubBatch is one encoded, unacknowledged batch retained for resend.
type pubBatch struct {
	bseq    uint64
	events  int
	payload []byte
}

// Publisher feeds events into a broker over the publish sub-protocol.
// It coalesces events into pbatch frames, keeps a bounded window of
// unacknowledged batches for resend, reconnects transparently within
// its epoch (the broker deduplicates the resends), and closes the
// producer's epoch with a confirmed peof. A Publisher is not safe for
// concurrent use.
//
// Exactly-once across process death is a joint contract with a
// deterministic event source: NewPublisher with a fresh epoch learns
// from the broker how many of this producer's events are already
// sequenced (SkipEvents), and the restarted source regenerates and
// skips exactly that many before publishing the rest.
type Publisher struct {
	addr  string
	id    string
	group int
	opt   publisherOptions

	mu   sync.Mutex
	cond *sync.Cond // ack progress, peof confirmation, or connection death

	conn net.Conn // nil while detached
	bw   *bufio.Writer
	gen  int // connection generation; stale ack readers exit on mismatch

	epoch uint64
	skip  uint64 // events already sequenced from this producer (restart cursor)

	bseq    uint64 // last batch sequence assigned
	acked   uint64 // highest batch sequence acknowledged
	unacked []pubBatch
	eofAck  bool

	cur        []osn.Event // batch under construction
	curStarted time.Time
	closed     bool
	err        error // terminal failure; sticky

	stats PublisherStats
}

// NewPublisher connects to a broker and registers producer id within
// a group of `group` producers jointly generating one feed (the
// broker holds the downstream eof until all of them close). It always
// requests a fresh epoch; a restarted process therefore fences any
// zombie connection from its predecessor, and SkipEvents reports how
// far the predecessor's events already made it into the log.
func NewPublisher(addr, id string, group int, opts ...PublisherOption) (*Publisher, error) {
	if id == "" || group < 1 {
		return nil, errors.New("stream: publisher needs an id and a group size ≥ 1")
	}
	p := &Publisher{
		addr:  addr,
		id:    id,
		group: group,
		opt: publisherOptions{
			maxBatch:   DefaultMaxBatch,
			flushEvery: DefaultFlushEvery,
			window:     DefaultPublishWindow,
			retries:    DefaultPublishRetries,
		},
	}
	for _, fn := range opts {
		fn(&p.opt)
	}
	p.cond = sync.NewCond(&p.mu)
	conn, br, welcome, err := publishHandshake(addr, id, group, 0)
	if err != nil {
		return nil, err
	}
	p.epoch = welcome.Epoch
	p.skip = welcome.Count
	p.mu.Lock()
	p.attachLocked(conn, br)
	p.mu.Unlock()
	return p, nil
}

// publishHandshake dials the broker and exchanges phello/pwelcome. On
// success the returned reader carries any broker bytes buffered past
// the welcome and must be the one the ack loop keeps reading.
func publishHandshake(addr, id string, group int, epoch uint64) (net.Conn, *bufio.Reader, frame, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, nil, frame{}, fmt.Errorf("stream: publish dial: %w", err)
	}
	conn.SetDeadline(time.Now().Add(handshakeTimeout))
	bw := bufio.NewWriterSize(conn, 4<<10)
	hello := frame{T: framePHello, V: ProtocolVersion, Producer: id, Producers: group, Epoch: epoch}
	if err := writeControl(bw, hello); err == nil {
		err = bw.Flush()
	}
	if err != nil {
		conn.Close()
		return nil, nil, frame{}, fmt.Errorf("stream: publish handshake: %w", err)
	}
	br := bufio.NewReaderSize(conn, 4<<10)
	payload, err := readFrame(br, nil)
	if err != nil {
		conn.Close()
		return nil, nil, frame{}, fmt.Errorf("stream: publish handshake: %w", err)
	}
	var welcome frame
	if err := json.Unmarshal(payload, &welcome); err != nil || welcome.T != framePWelcome {
		conn.Close()
		return nil, nil, frame{}, fmt.Errorf("stream: publish handshake: expected pwelcome, got %q", payload)
	}
	if welcome.Err != "" {
		conn.Close()
		return nil, nil, frame{}, fmt.Errorf("stream: publish rejected: %s", welcome.Err)
	}
	conn.SetDeadline(time.Time{})
	return conn, br, welcome, nil
}

// attachLocked binds a fresh connection and starts its ack reader.
// p.mu must be held.
func (p *Publisher) attachLocked(conn net.Conn, br *bufio.Reader) {
	p.gen++
	p.conn = conn
	p.bw = bufio.NewWriterSize(conn, 64<<10)
	go p.ackLoop(conn, br, p.gen)
}

// ackLoop consumes broker→producer frames (pack, peof confirmation)
// until the connection dies or a newer one supersedes it.
func (p *Publisher) ackLoop(conn net.Conn, br *bufio.Reader, gen int) {
	var buf []byte
	for {
		payload, err := readFrame(br, buf)
		if err != nil {
			p.mu.Lock()
			if p.gen == gen && p.conn == conn {
				p.conn = nil
				conn.Close()
			}
			p.cond.Broadcast()
			p.mu.Unlock()
			return
		}
		buf = payload
		var f frame
		if json.Unmarshal(payload, &f) != nil {
			continue
		}
		p.mu.Lock()
		if p.gen != gen {
			p.mu.Unlock()
			return
		}
		switch f.T {
		case framePAck:
			if f.Bseq > p.acked {
				p.acked = f.Bseq
				p.stats.Acked = f.Bseq
				i := 0
				for i < len(p.unacked) && p.unacked[i].bseq <= f.Bseq {
					i++
				}
				p.unacked = p.unacked[i:]
			}
		case framePEOF:
			p.eofAck = true
		}
		p.cond.Broadcast()
		p.mu.Unlock()
	}
}

// Epoch returns the broker-granted epoch this publisher runs under.
func (p *Publisher) Epoch() uint64 { return p.epoch }

// SkipEvents returns how many of this producer's events the broker
// already holds from previous epochs. A deterministic producer
// regenerates its event stream and skips exactly this many — the
// exactly-once half that lives above the transport.
func (p *Publisher) SkipEvents() uint64 { return p.skip }

// Stats returns a snapshot of send-side accounting.
func (p *Publisher) Stats() PublisherStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Publish queues one event, flushing the current batch when it is
// full or has aged past the flush interval. It blocks when the
// unacknowledged window is full (broker backpressure) and reconnects
// transparently if the connection has died.
func (p *Publisher) Publish(ev osn.Event) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.err != nil {
		return p.err
	}
	if p.closed {
		return ErrPublisherClosed
	}
	if len(p.cur) == 0 {
		p.curStarted = time.Now()
	}
	p.cur = append(p.cur, ev)
	if len(p.cur) >= p.opt.maxBatch || time.Since(p.curStarted) >= p.opt.flushEvery {
		return p.flushLocked()
	}
	return nil
}

// Flush sends the batch under construction, if any.
func (p *Publisher) Flush() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.err != nil {
		return p.err
	}
	if p.closed {
		return ErrPublisherClosed
	}
	if len(p.cur) == 0 {
		return nil
	}
	return p.flushLocked()
}

// flushLocked seals the current batch, waits for window space, and
// transmits. p.mu must be held.
func (p *Publisher) flushLocked() error {
	for len(p.unacked) >= p.opt.window {
		if p.err != nil {
			return p.err
		}
		if p.conn == nil {
			if err := p.reconnectLocked(); err != nil {
				return err
			}
			continue
		}
		p.cond.Wait()
	}
	p.bseq++
	pb := pubBatch{
		bseq:    p.bseq,
		events:  len(p.cur),
		payload: appendPBatchFrame(nil, p.bseq, p.cur),
	}
	p.unacked = append(p.unacked, pb)
	p.stats.Batches++
	p.stats.Events += uint64(pb.events)
	p.cur = p.cur[:0]
	if p.conn == nil {
		// reconnectLocked resends the whole unacked window, which now
		// includes this batch.
		return p.reconnectLocked()
	}
	if err := p.writeBatchLocked(pb); err != nil {
		return p.reconnectLocked()
	}
	return nil
}

// writeBatchLocked transmits one encoded batch on the current
// connection, detaching it on failure. p.mu must be held.
func (p *Publisher) writeBatchLocked(pb pubBatch) error {
	if err := writeFrame(p.bw, pb.payload); err == nil {
		if err = p.bw.Flush(); err == nil {
			return nil
		}
	}
	p.detachLocked()
	return errors.New("stream: publish write failed")
}

// detachLocked severs the current connection (the broker keeps the
// session; a same-epoch reconnect resumes it). p.mu must be held.
func (p *Publisher) detachLocked() {
	if p.conn != nil {
		p.conn.Close()
		p.conn = nil
	}
}

// reconnectLocked re-dials within the current epoch and retransmits
// every unacknowledged batch (the broker's dedupe drops the ones it
// already sequenced). Exponential backoff, bounded by the retries
// option; a final failure is sticky. p.mu must be held on entry and
// is held on return, but is released around each dial and backoff
// sleep so Abort (and Stats polls) never block behind the retry
// ladder.
func (p *Publisher) reconnectLocked() error {
	if p.err != nil {
		return p.err
	}
	backoff := 50 * time.Millisecond
	var lastErr error
	for attempt := 0; attempt <= p.opt.retries; attempt++ {
		p.mu.Unlock()
		if attempt > 0 {
			time.Sleep(backoff)
			if backoff < 2*time.Second {
				backoff *= 2
			}
		}
		conn, br, welcome, err := publishHandshake(p.addr, p.id, p.group, p.epoch)
		p.mu.Lock()
		if p.closed || p.err != nil {
			// Aborted while we were dialing.
			if err == nil {
				conn.Close()
			}
			if p.err != nil {
				return p.err
			}
			return ErrPublisherClosed
		}
		if err != nil {
			lastErr = err
			continue
		}
		// The broker reports what it already has; retire those batches
		// and resend the remainder in order on the new connection.
		if welcome.Bseq > p.acked {
			p.acked = welcome.Bseq
			p.stats.Acked = welcome.Bseq
		}
		i := 0
		for i < len(p.unacked) && p.unacked[i].bseq <= p.acked {
			i++
		}
		p.unacked = p.unacked[i:]
		p.gen++
		p.conn = conn
		p.bw = bufio.NewWriterSize(conn, 64<<10)
		ok := true
		for _, pb := range p.unacked {
			if err := writeFrame(p.bw, pb.payload); err != nil {
				ok = false
				break
			}
			p.stats.Resent++
		}
		if ok {
			if err := p.bw.Flush(); err != nil {
				ok = false
			}
		}
		if !ok {
			p.detachLocked()
			lastErr = errors.New("stream: publish resend failed")
			continue
		}
		go p.ackLoop(conn, br, p.gen)
		return nil
	}
	p.err = fmt.Errorf("stream: publisher gave up after %d reconnect attempts: %w", p.opt.retries, lastErr)
	p.cond.Broadcast()
	return p.err
}

// Close flushes the batch under construction, waits for every batch
// to be acknowledged, closes the producer's epoch with a confirmed
// peof, and hangs up. The broker ends the downstream feed once every
// producer in the group has closed.
func (p *Publisher) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return p.err
	}
	if p.err == nil && len(p.cur) > 0 {
		p.flushLocked()
	}
	// The peof must trail every batch on the same connection; a
	// reconnect resends the unacked window first, so the order is
	// preserved across connection loss too.
	sentGen := -1
	for p.err == nil && !p.eofAck {
		if p.conn == nil {
			if err := p.reconnectLocked(); err != nil {
				break
			}
		}
		if p.gen != sentGen {
			if writeControl(p.bw, frame{T: framePEOF}) != nil || p.bw.Flush() != nil {
				p.detachLocked()
				continue
			}
			sentGen = p.gen
		}
		p.cond.Wait()
	}
	p.closed = true
	p.detachLocked()
	p.gen++ // retire any ack reader
	if p.err != nil {
		return p.err
	}
	return nil
}

// Abort severs the connection without closing the epoch — the
// transport-level equivalent of kill -9, used by tests and emergency
// shutdown paths. The broker keeps the producer's registration; a
// successor process (fresh epoch) resumes via SkipEvents.
func (p *Publisher) Abort() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.err == nil {
		p.err = ErrPublisherClosed
	}
	p.closed = true
	p.detachLocked()
	p.gen++
	p.cond.Broadcast()
}

// PartitionActor deterministically assigns an actor to one of n
// producers (FNV-1a over the account id; it is osn.Partition, the
// system-wide partition function). K producer processes running the
// same seeded simulation and each publishing only the actors assigned
// to their index jointly emit exactly the event set a single producer
// would — the contract renrend's publish mode and the broker rely on.
// The broker's partitioned subscriptions and the detector's
// evaluation ownership use the same function, so producer-side and
// broker-side partitioning always agree.
func PartitionActor(id osn.AccountID, n int) int {
	return osn.Partition(id, n)
}
