package stream

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"sybilwild/internal/osn"
	"sybilwild/internal/spool"
)

// pubEvent tags an event so a test can attribute it to a producer and
// a position in that producer's stream: Actor is the producer index,
// At the per-producer event index.
func pubEvent(producer, i int) osn.Event {
	return osn.Event{Type: osn.EvMessage, At: int64(i), Actor: osn.AccountID(producer), Target: 1}
}

// drainAll collects the whole feed through eof, returning the events
// in delivery order. Runs in the caller's goroutine.
func drainAll(t *testing.T, c *Client) []osn.Event {
	t.Helper()
	var got []osn.Event
	for {
		evs, err := c.RecvBatch()
		if errors.Is(err, ErrClosed) {
			return got
		}
		if err != nil {
			t.Fatalf("recv: %v", err)
		}
		got = append(got, evs...)
	}
}

// closeOnIngestDone closes the server (drain + downstream eof) once
// every producer has closed its epoch — the broker owner's loop, as
// cmd/streamd runs it.
func closeOnIngestDone(srv *Server) {
	go func() {
		<-srv.IngestDone()
		srv.Close()
	}()
}

func TestPublishDelivery(t *testing.T) {
	leakCheck(t)
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	sub, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	pub, err := NewPublisher(srv.Addr(), "p0", 1, WithPublishMaxBatch(16))
	if err != nil {
		t.Fatal(err)
	}
	if pub.Epoch() != 1 || pub.SkipEvents() != 0 {
		t.Fatalf("fresh producer: epoch=%d skip=%d, want 1,0", pub.Epoch(), pub.SkipEvents())
	}
	const n = 500
	for i := 0; i < n; i++ {
		if err := pub.Publish(pubEvent(0, i)); err != nil {
			t.Fatal(err)
		}
	}
	closeOnIngestDone(srv)
	if err := pub.Close(); err != nil {
		t.Fatal(err)
	}

	got := drainAll(t, sub)
	if len(got) != n {
		t.Fatalf("delivered %d events, want %d", len(got), n)
	}
	for i, ev := range got {
		if ev.At != int64(i) {
			t.Fatalf("event %d out of order: At=%d", i, ev.At)
		}
	}
	sub.Close()
	srv.Close() // synchronize: waits for connection goroutines, so all acks are counted
	st := srv.Stats()
	if st.Broadcast != n || st.Delivered != n {
		t.Fatalf("audit: sent=%d delivered=%d, want %d==%d", st.Broadcast, st.Delivered, n, n)
	}
	if len(st.PerProducer) != 1 {
		t.Fatalf("PerProducer: %+v", st.PerProducer)
	}
	ps := st.PerProducer[0]
	if ps.ID != "p0" || ps.Events != n || ps.Epoch != 1 || !ps.EOF || ps.DedupeDrops != 0 {
		t.Fatalf("producer stats: %+v", ps)
	}
}

// TestPublishInterleavedStress exercises the concurrent-producer
// ingest path under the race detector: several publishers hammer one
// broker at tiny batch sizes, and the merged feed must contain every
// producer's stream as an order-preserved subsequence with nothing
// lost, duplicated, or reordered within a producer.
func TestPublishInterleavedStress(t *testing.T) {
	leakCheck(t)
	const producers, perProducer = 4, 2000
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	sub, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	var wg sync.WaitGroup
	errs := make(chan error, producers)
	for pi := 0; pi < producers; pi++ {
		wg.Add(1)
		go func(pi int) {
			defer wg.Done()
			pub, err := NewPublisher(srv.Addr(), fmt.Sprintf("p%d", pi), producers,
				WithPublishMaxBatch(7), WithPublishWindow(4))
			if err != nil {
				errs <- err
				return
			}
			for i := 0; i < perProducer; i++ {
				if err := pub.Publish(pubEvent(pi, i)); err != nil {
					errs <- err
					return
				}
			}
			errs <- pub.Close()
		}(pi)
	}
	closeOnIngestDone(srv)

	// Drain concurrently: total traffic exceeds the replay window, so
	// the producers need the subscriber's acks to make progress.
	got := drainAll(t, sub)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != producers*perProducer {
		t.Fatalf("delivered %d events, want %d", len(got), producers*perProducer)
	}
	next := make([]int64, producers)
	for _, ev := range got {
		pi := int(ev.Actor)
		if ev.At != next[pi] {
			t.Fatalf("producer %d stream broken: got At=%d, want %d", pi, ev.At, next[pi])
		}
		next[pi]++
	}
	sub.Close()
	srv.Close() // synchronize before reading the audit
	st := srv.Stats()
	if st.Delivered != uint64(producers*perProducer) {
		t.Fatalf("audit: sent=%d delivered=%d", st.Broadcast, st.Delivered)
	}
}

// rawProducer drives the publish sub-protocol frame by frame, so
// tests control exactly what is sent and when — the wire-level
// equivalent of a misbehaving or crash-prone producer.
type rawProducer struct {
	t    *testing.T
	conn net.Conn
	br   *bufio.Reader
}

func dialRawProducer(t *testing.T, addr, id string, group int, epoch uint64) (*rawProducer, frame) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	p := &rawProducer{t: t, conn: conn, br: bufio.NewReader(conn)}
	p.send(frame{T: framePHello, V: ProtocolVersion, Producer: id, Producers: group, Epoch: epoch})
	return p, p.recv()
}

func (p *rawProducer) send(f frame) {
	p.t.Helper()
	if err := writeControl(p.conn, f); err != nil {
		p.t.Fatal(err)
	}
}

func (p *rawProducer) sendBatch(bseq uint64, evs []osn.Event) {
	p.t.Helper()
	if err := writeFrame(p.conn, appendPBatchFrame(nil, bseq, evs)); err != nil {
		p.t.Fatal(err)
	}
}

func (p *rawProducer) recv() frame {
	p.t.Helper()
	p.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	payload, err := readFrame(p.br, nil)
	if err != nil {
		p.t.Fatal(err)
	}
	var f frame
	if err := json.Unmarshal(payload, &f); err != nil {
		p.t.Fatal(err)
	}
	return f
}

// TestPublishReconnectDedupe is the sequencer's dedupe property: a
// producer that loses its connection after the broker sequenced a
// batch but before the ack arrived resends it on reconnect, and the
// broker delivers it downstream exactly once.
func TestPublishReconnectDedupe(t *testing.T) {
	leakCheck(t)
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	sub, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	p, w := dialRawProducer(t, srv.Addr(), "p0", 1, 0)
	if w.Err != "" || w.Epoch != 1 {
		t.Fatalf("pwelcome: %+v", w)
	}
	p.sendBatch(1, []osn.Event{pubEvent(0, 0), pubEvent(0, 1)})
	p.sendBatch(2, []osn.Event{pubEvent(0, 2)})
	if a := p.recv(); a.T != framePAck || a.Bseq != 1 {
		t.Fatalf("ack: %+v", a)
	}
	if a := p.recv(); a.T != framePAck || a.Bseq != 2 {
		t.Fatalf("ack: %+v", a)
	}
	// The connection dies with batch 2's ack "lost" from the
	// producer's point of view: reconnect in the same epoch and learn
	// the broker already has it.
	p.conn.Close()
	p2, w2 := dialRawProducer(t, srv.Addr(), "p0", 1, 1)
	if w2.Err != "" || w2.Epoch != 1 || w2.Bseq != 2 || w2.Count != 3 {
		t.Fatalf("reconnect pwelcome: %+v", w2)
	}
	// A paranoid producer resends batch 2 anyway; the broker must
	// drop it (acking the high-water mark) and sequence only batch 3.
	p2.sendBatch(2, []osn.Event{pubEvent(0, 2)})
	p2.sendBatch(3, []osn.Event{pubEvent(0, 3)})
	if a := p2.recv(); a.T != framePAck || a.Bseq != 2 {
		t.Fatalf("replay ack: %+v", a)
	}
	if a := p2.recv(); a.T != framePAck || a.Bseq != 3 {
		t.Fatalf("ack: %+v", a)
	}
	p2.send(frame{T: framePEOF})
	if f := p2.recv(); f.T != framePEOF {
		t.Fatalf("peof confirmation: %+v", f)
	}
	p2.conn.Close()

	closeOnIngestDone(srv)
	got := drainAll(t, sub)
	if len(got) != 4 {
		t.Fatalf("delivered %d events, want 4 (replay must dedupe)", len(got))
	}
	for i, ev := range got {
		if ev.At != int64(i) {
			t.Fatalf("event %d: At=%d", i, ev.At)
		}
	}
	sub.Close()
	st := srv.Stats()
	if len(st.PerProducer) != 1 || st.PerProducer[0].DedupeDrops != 1 {
		t.Fatalf("dedupe drops not counted: %+v", st.PerProducer)
	}
}

// TestPublishBatchGapRejected: a producer that skips a batch sequence
// is cut off rather than silently creating a hole.
func TestPublishBatchGapRejected(t *testing.T) {
	leakCheck(t)
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	p, w := dialRawProducer(t, srv.Addr(), "p0", 1, 0)
	if w.Err != "" {
		t.Fatalf("pwelcome: %+v", w)
	}
	p.sendBatch(1, []osn.Event{pubEvent(0, 0)})
	if a := p.recv(); a.T != framePAck || a.Bseq != 1 {
		t.Fatalf("ack: %+v", a)
	}
	p.sendBatch(3, []osn.Event{pubEvent(0, 9)}) // gap: batch 2 never sent
	p.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := readFrame(p.br, nil); err == nil {
		t.Fatal("broker acked across a batch sequence gap")
	}
}

// TestEOFAfterLastEpoch: with K producers registered, the downstream
// feed must not end until the last one closes its epoch.
func TestEOFAfterLastEpoch(t *testing.T) {
	leakCheck(t)
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	sub, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	pubs := make([]*Publisher, 2)
	for i := range pubs {
		pubs[i], err = NewPublisher(srv.Addr(), fmt.Sprintf("p%d", i), 2)
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := pubs[0].Publish(pubEvent(0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := pubs[0].Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-srv.IngestDone():
		t.Fatal("ingest reported done with one of two producers still open")
	case <-time.After(50 * time.Millisecond):
	}
	if err := pubs[1].Publish(pubEvent(1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := pubs[1].Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-srv.IngestDone():
	case <-time.After(5 * time.Second):
		t.Fatal("ingest never completed after the last epoch closed")
	}
	closeOnIngestDone(srv)
	if got := drainAll(t, sub); len(got) != 2 {
		t.Fatalf("delivered %d events, want 2", len(got))
	}
}

// TestRestartedProducerResumesViaSkip is the process-death half of
// exactly-once: a producer dies without closing (transport-level
// kill -9), and its deterministic successor — same id, fresh epoch —
// learns from the broker how many events are already sequenced, skips
// them, and publishes the rest. Downstream sees each event once.
func TestRestartedProducerResumesViaSkip(t *testing.T) {
	leakCheck(t)
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	sub, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	const total = 900
	pub, err := NewPublisher(srv.Addr(), "p0", 1, WithPublishMaxBatch(8))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < total/3; i++ {
		if err := pub.Publish(pubEvent(0, i)); err != nil {
			t.Fatal(err)
		}
	}
	// Let every flushed batch reach the broker before dying — an
	// immediate abort could fence the whole epoch's in-flight batches
	// (also correct, but then there is no skip to assert on).
	for deadline := time.Now().Add(5 * time.Second); ; {
		st := pub.Stats()
		if st.Acked == st.Batches {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("broker never acked the backlog: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	pub.Abort() // die mid-feed, epoch never closed

	resumed, err := NewPublisher(srv.Addr(), "p0", 1, WithPublishMaxBatch(8))
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Epoch() != 2 {
		t.Fatalf("restart epoch: %d, want 2", resumed.Epoch())
	}
	skip := resumed.SkipEvents()
	if skip == 0 || skip > total/3 {
		t.Fatalf("skip=%d, want in (0, %d]", skip, total/3)
	}
	// Deterministic regeneration: replay the same stream, skipping the
	// prefix the broker already holds.
	for i := int(skip); i < total; i++ {
		if err := resumed.Publish(pubEvent(0, i)); err != nil {
			t.Fatal(err)
		}
	}
	closeOnIngestDone(srv)
	if err := resumed.Close(); err != nil {
		t.Fatal(err)
	}
	got := drainAll(t, sub)
	if len(got) != total {
		t.Fatalf("delivered %d events, want %d (no gaps, no duplicates)", len(got), total)
	}
	for i, ev := range got {
		if ev.At != int64(i) {
			t.Fatalf("event %d: At=%d", i, ev.At)
		}
	}
}

// TestStaleEpochFenced: once a successor has taken a fresh epoch, the
// predecessor's zombie connection is refused.
func TestStaleEpochFenced(t *testing.T) {
	leakCheck(t)
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := NewPublisher(srv.Addr(), "p0", 1); err != nil {
		t.Fatal(err)
	}
	// A zombie from before the restart phellos with the old epoch 1 —
	// but the live publisher above already moved the producer to
	// epoch 1, so ask with an epoch that was fenced off: simulate by
	// taking epoch 2 (restart), then phello with epoch 1.
	if _, err := NewPublisher(srv.Addr(), "p0", 1); err != nil {
		t.Fatal(err)
	}
	_, w := dialRawProducer(t, srv.Addr(), "p0", 1, 1)
	if w.Err == "" {
		t.Fatalf("stale epoch admitted: %+v", w)
	}
}

// TestProducerGroupSizeMismatch: all producers must agree on the
// group size the downstream eof waits for.
func TestProducerGroupSizeMismatch(t *testing.T) {
	leakCheck(t)
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := NewPublisher(srv.Addr(), "p0", 3); err != nil {
		t.Fatal(err)
	}
	if _, err := NewPublisher(srv.Addr(), "p1", 2); err == nil {
		t.Fatal("mismatched group size admitted")
	}
}

// TestDialFromBackfillsSpooledHistory: a brand-new subscriber joins
// with from=1 and receives the feed's entire spooled history before
// flipping live — the feed as a replayable log, not just a resumable
// one.
func TestDialFromBackfillsSpooledHistory(t *testing.T) {
	leakCheck(t)
	srv, _ := spooledServer(t, 16)
	const history = 400
	for i := 0; i < history; i++ {
		srv.Broadcast(testEvent(i))
	}
	c, err := DialFrom(srv.Addr(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	recvThrough(t, c, history)
	// Still live after the backfill: a fresh broadcast arrives.
	srv.Broadcast(testEvent(history))
	recvThrough(t, c, history+1)
}

// TestDialFromHeadOfEmptyFeed: from=1 on a feed that has nothing yet
// admits a live session (nothing to backfill), even without a spool.
func TestDialFromHeadOfEmptyFeed(t *testing.T) {
	leakCheck(t)
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := DialFrom(srv.Addr(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv.Broadcast(testEvent(0))
	recvThrough(t, c, 1)
}

// TestDialFromBelowRetentionIsErrGap: history pruned past the
// requested sequence rejects loudly with ErrGap, and history that
// never spooled (memory-only feed) does too.
func TestDialFromBelowRetentionIsErrGap(t *testing.T) {
	leakCheck(t)
	sp, err := spool.Open(t.TempDir(), spool.WithSegmentBytes(512), spool.WithRetainBytes(1024))
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	srv, err := NewServer("127.0.0.1:0", WithReplayBuffer(16), WithSpool(sp))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr()) // acked subscriber so pruning can move the floor
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 2000; i++ {
		srv.Broadcast(testEvent(i))
		if i%16 == 0 {
			recvThrough(t, c, uint64(i+1))
		}
	}
	recvThrough(t, c, 2000)
	if sp.First() <= 1 {
		t.Skip("retention did not prune far enough to exercise the floor")
	}
	if _, err := DialFrom(srv.Addr(), 1); !errors.Is(err, ErrGap) {
		t.Fatalf("backfill below the retention floor: err=%v, want ErrGap", err)
	}

	mem, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()
	mem.Broadcast(testEvent(0))
	if _, err := DialFrom(mem.Addr(), 1); !errors.Is(err, ErrGap) {
		t.Fatalf("backfill on a memory-only feed with history: err=%v, want ErrGap", err)
	}
}

// TestPublishIntoSpooledBroker: wire-produced batches land in the
// spool like Broadcast ones, so a late subscriber can backfill a
// multi-producer feed from sequence 1.
func TestPublishIntoSpooledBroker(t *testing.T) {
	leakCheck(t)
	srv, sp := spooledServer(t, 16)
	const producers, perProducer = 3, 200
	var wg sync.WaitGroup
	for pi := 0; pi < producers; pi++ {
		wg.Add(1)
		go func(pi int) {
			defer wg.Done()
			pub, err := NewPublisher(srv.Addr(), fmt.Sprintf("p%d", pi), producers, WithPublishMaxBatch(10))
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < perProducer; i++ {
				if err := pub.Publish(pubEvent(pi, i)); err != nil {
					t.Error(err)
					return
				}
			}
			if err := pub.Close(); err != nil {
				t.Error(err)
			}
		}(pi)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if end := sp.End(); end != producers*perProducer {
		t.Fatalf("spool end %d, want %d", end, producers*perProducer)
	}
	// No subscriber was connected while the producers ran; the spool
	// alone serves the whole history.
	c, err := DialFrom(srv.Addr(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var got []osn.Event
	for len(got) < producers*perProducer {
		evs, err := c.RecvBatch()
		if err != nil {
			t.Fatalf("backfill: %v", err)
		}
		got = append(got, evs...)
	}
	next := make([]int64, producers)
	for _, ev := range got {
		pi := int(ev.Actor)
		if ev.At != next[pi] {
			t.Fatalf("producer %d stream broken in backfill: got At=%d, want %d", pi, ev.At, next[pi])
		}
		next[pi]++
	}
}

// TestAbortInterruptsReconnect: Abort is the emergency stop, so it
// must cut through a reconnect backoff ladder instead of queueing
// behind it (the publisher releases its lock around dial and sleep).
func TestAbortInterruptsReconnect(t *testing.T) {
	leakCheck(t)
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pub, err := NewPublisher(srv.Addr(), "p0", 1, WithPublishRetries(100))
	if err != nil {
		t.Fatal(err)
	}
	srv.Close() // broker gone: the next flush enters the retry ladder

	done := make(chan error, 1)
	go func() {
		var perr error
		for i := 0; perr == nil && i < 10000; i++ {
			perr = pub.Publish(pubEvent(0, i))
		}
		done <- perr
	}()
	time.Sleep(50 * time.Millisecond) // let the publisher hit reconnect
	start := time.Now()
	pub.Abort()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("publishing into a dead broker never failed")
		}
		if elapsed := time.Since(start); elapsed > 3*time.Second {
			t.Fatalf("Publish took %v to observe Abort", elapsed)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Abort did not interrupt the reconnect ladder")
	}
}
