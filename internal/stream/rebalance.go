// Rebalance sub-protocol: broker-coordinated live cutover of a
// partition group from K to K' workers without stopping the feed.
//
// The broker is the only place a consistent cut exists — its sequencer
// assigns the global order — so the coordinator (detectd -rebalance)
// asks it to PREPARE: pick the barrier B = current head sequence and
// fence every subscriber of the old group shape. A fenced session is
// served everything it is owed up to and including B, then receives a
// terminal rebal frame instead of more events; its feed cursor can
// never pass B. The old workers react by snapshotting at exactly B and
// offering the snapshot to the broker's rendezvous store. The
// coordinator fetches all K snapshots, re-keys them into K'
// (detector.RebalanceSnapshots), offers the new set, and COMMITs. New
// workers restore and subscribe from B+1; the fence on the old shape
// stays forever (stragglers of a dead shape must not judge events the
// new owners already own), while the commit lifts any stale fence on
// the *new* shape so its subscribers can join.
//
// Two auxiliary exchanges support unattended standbys: rstatus/rinfo
// reports a partition key's liveness (connected sessions, whether the
// key was ever subscribed, the freshest held snapshot, any fence), and
// rclaim reserves a key for one session id so two standbys racing to
// replace a dead worker cannot both win — admission consumes the claim
// when the named session connects and rejects other sessions while the
// claim is fresh.
//
// All four exchanges ride one short-lived connection each on the
// regular listen port, selected by the first frame's type, exactly
// like the snapshot sub-protocol.

package stream

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"time"
)

// PartitionStatus is the broker's view of one partition key,
// returned by QueryPartition. A standby promotes when the key has been
// seen (a worker once served it), nothing is connected now, a snapshot
// is available to adopt, and no fence is pending (a fence means a
// coordinated rebalance is mid-flight — the coordinator, not the
// standby, owns the recovery).
type PartitionStatus struct {
	Connected   int    // sessions currently connected on this key
	Seen        bool   // a subscriber ever served this key on this broker
	SnapshotSeq uint64 // stamp of the freshest held snapshot; 0 = none
	Barrier     uint64 // fence barrier on this group shape; 0 = not fenced
}

// connectedOnLocked counts sessions currently connected for partition
// part of parts (parts == 1 matches full-feed sessions, which admit
// normalizes to 0/0). Caller holds s.mu.
func (s *Server) connectedOnLocked(part, parts int) int {
	if parts == 1 {
		part, parts = 0, 0
	}
	s.smu.Lock()
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.smu.Unlock()
	n := 0
	for _, sess := range sessions {
		sess.mu.Lock()
		if sess.part == part && sess.parts == parts && sess.conn != nil && !sess.gone {
			n++
		}
		sess.mu.Unlock()
	}
	return n
}

// serveRebPrepare installs a fence on an old group shape and replies
// with the chosen barrier. Idempotent: re-preparing the same K→K'
// returns the already-chosen barrier, so a coordinator can retry
// across a dropped connection; a conflicting K→K” is rejected until
// the first rebalance's fence is superseded.
func (s *Server) serveRebPrepare(conn net.Conn, hello frame) {
	defer conn.Close()
	if hello.Parts < 2 || hello.NParts < 1 || hello.Parts == hello.NParts {
		writeControl(conn, frame{T: frameRebOK, Err: "invalid rebalance shape"})
		return
	}
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		writeControl(conn, frame{T: frameRebOK, Err: "server closing"})
		return
	}
	if f := s.fences[hello.Parts]; f != nil {
		barrier, nparts := f.barrier, f.nparts
		s.mu.Unlock()
		if nparts != hello.NParts {
			writeControl(conn, frame{T: frameRebOK,
				Err: fmt.Sprintf("partition group %d already rebalancing to %d", hello.Parts, nparts)})
			return
		}
		writeControl(conn, frame{T: frameRebOK, Parts: hello.Parts, NParts: hello.NParts, Barrier: barrier})
		return
	}
	f := &fence{from: hello.Parts, nparts: hello.NParts, barrier: s.seq}
	s.fences[hello.Parts] = f
	s.rebLog = append(s.rebLog, f)
	// Fence every session of the old shape. All their queued chunks end
	// at or below the barrier (it is the head sequence, and new chunks
	// are clamped by appendChunk), so clamping the feed cursor is
	// enough; the broadcast wakes writers parked waiting for feed
	// progress that will never come.
	s.smu.Lock()
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.smu.Unlock()
	for _, sess := range sessions {
		sess.mu.Lock()
		if sess.parts == hello.Parts && sess.fencedAt == 0 {
			sess.fencedAt, sess.fenceNew = f.barrier, f.nparts
			if sess.feedSeq > f.barrier {
				sess.feedSeq = f.barrier
			}
			sess.cond.Broadcast()
		}
		sess.mu.Unlock()
	}
	barrier := f.barrier
	s.mu.Unlock()
	writeControl(conn, frame{T: frameRebOK, Parts: hello.Parts, NParts: hello.NParts, Barrier: barrier})
}

// serveRebCommit marks a prepared rebalance committed. The old shape's
// fence stays (its sessions are retired for good); the commit lifts
// any stale fence keyed by the *new* shape, so a chained rebalance
// back to a previously-retired group size can admit subscribers again.
func (s *Server) serveRebCommit(conn net.Conn, hello frame) {
	defer conn.Close()
	s.mu.Lock()
	f := s.fences[hello.Parts]
	switch {
	case f == nil:
		s.mu.Unlock()
		writeControl(conn, frame{T: frameRebOK,
			Err: fmt.Sprintf("no rebalance prepared for partition group %d", hello.Parts)})
		return
	case f.nparts != hello.NParts || f.barrier != hello.Barrier:
		have, at := f.nparts, f.barrier
		s.mu.Unlock()
		writeControl(conn, frame{T: frameRebOK,
			Err: fmt.Sprintf("commit names %d@%d, prepared rebalance is %d@%d", hello.NParts, hello.Barrier, have, at)})
		return
	}
	f.committed = true
	delete(s.fences, hello.NParts)
	s.mu.Unlock()
	writeControl(conn, frame{T: frameRebOK, Parts: hello.Parts, NParts: hello.NParts, Barrier: hello.Barrier})
}

// serveRebStatus reports a partition key's liveness for standby
// promotion decisions.
func (s *Server) serveRebStatus(conn net.Conn, hello frame) {
	defer conn.Close()
	if hello.Parts < 1 || hello.Part < 0 || hello.Part >= hello.Parts {
		writeControl(conn, frame{T: frameRebInfo, Err: "invalid partition"})
		return
	}
	s.mu.Lock()
	connected := s.connectedOnLocked(hello.Part, hello.Parts)
	seen := s.everSeen[partKey{part: hello.Part, parts: hello.Parts}]
	var barrier uint64
	if f := s.fences[hello.Parts]; f != nil {
		barrier = f.barrier
	}
	s.mu.Unlock()
	var snapSeq uint64
	s.snapMu.Lock()
	if v, ok := s.snaps[snapKey{part: hello.Part, parts: hello.Parts}]; ok {
		snapSeq = v.seq
	}
	s.snapMu.Unlock()
	writeControl(conn, frame{T: frameRebInfo, Part: hello.Part, Parts: hello.Parts,
		Connected: connected, Seen: seen, Seq: snapSeq, Barrier: barrier})
}

// serveRebClaim reserves a partition key for one session id. Granted
// only while nothing is connected on the key and no other fresh claim
// holds it; a granted claim expires after the session linger if the
// claimant never connects.
func (s *Server) serveRebClaim(conn net.Conn, hello frame) {
	defer conn.Close()
	if hello.Parts < 1 || hello.Part < 0 || hello.Part >= hello.Parts || hello.Session == "" {
		writeControl(conn, frame{T: frameRebOK, Err: "invalid claim"})
		return
	}
	key := partKey{part: hello.Part, parts: hello.Parts}
	s.mu.Lock()
	if n := s.connectedOnLocked(hello.Part, hello.Parts); n > 0 {
		s.mu.Unlock()
		writeControl(conn, frame{T: frameRebOK,
			Err: fmt.Sprintf("partition %d/%d has %d connected session(s)", hello.Part, hello.Parts, n)})
		return
	}
	if c, ok := s.claims[key]; ok && c.session != hello.Session && time.Since(c.at) < s.opt.linger {
		s.mu.Unlock()
		writeControl(conn, frame{T: frameRebOK, Err: "partition already claimed"})
		return
	}
	s.claims[key] = claim{session: hello.Session, at: time.Now()}
	s.mu.Unlock()
	writeControl(conn, frame{T: frameRebOK, Part: hello.Part, Parts: hello.Parts})
}

// rebExchange runs one request/reply control exchange on a short-lived
// connection and returns the reply frame.
func rebExchange(addr string, req frame, wantT string) (frame, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return frame{}, fmt.Errorf("stream: rebalance dial: %w", err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(handshakeTimeout))
	if err := writeControl(conn, req); err != nil {
		return frame{}, fmt.Errorf("stream: rebalance %s: %w", req.T, err)
	}
	payload, err := readFrame(bufio.NewReader(conn), nil)
	if err != nil {
		return frame{}, fmt.Errorf("stream: rebalance %s: %w", req.T, err)
	}
	var f frame
	if err := json.Unmarshal(payload, &f); err != nil || f.T != wantT {
		return frame{}, fmt.Errorf("stream: rebalance %s: unexpected reply %q", req.T, payload)
	}
	if f.Err != "" {
		return frame{}, fmt.Errorf("stream: rebalance %s rejected: %s", req.T, f.Err)
	}
	return f, nil
}

// PrepareRebalance asks the broker to fence partition group `from` for
// a cutover to `to` workers and returns the barrier it chose: old
// owners drain to the barrier and snapshot there; new owners subscribe
// from barrier+1. Idempotent per (from, to) — a retry returns the same
// barrier.
func PrepareRebalance(addr string, from, to int) (uint64, error) {
	f, err := rebExchange(addr,
		frame{T: frameRebPrep, V: ProtocolVersion, Parts: from, NParts: to}, frameRebOK)
	if err != nil {
		return 0, err
	}
	return f.Barrier, nil
}

// CommitRebalance finalizes a prepared from→to rebalance at the
// barrier PrepareRebalance returned, unfencing the new group shape.
func CommitRebalance(addr string, from, to int, barrier uint64) error {
	_, err := rebExchange(addr,
		frame{T: frameRebCommit, V: ProtocolVersion, Parts: from, NParts: to, Barrier: barrier}, frameRebOK)
	return err
}

// QueryPartition reports the broker's view of one partition key; see
// PartitionStatus for the standby promotion reading of it.
func QueryPartition(addr string, part, parts int) (PartitionStatus, error) {
	f, err := rebExchange(addr,
		frame{T: frameRebStatus, V: ProtocolVersion, Part: part, Parts: parts}, frameRebInfo)
	if err != nil {
		return PartitionStatus{}, err
	}
	return PartitionStatus{Connected: f.Connected, Seen: f.Seen, SnapshotSeq: f.Seq, Barrier: f.Barrier}, nil
}

// ClaimPartition reserves partition part of parts for the given
// session id, so that exactly one standby wins a dead worker's slot.
// The claimant must then dial with WithSessionID(session); other
// sessions are refused the key while the claim is fresh.
func ClaimPartition(addr string, part, parts int, session string) error {
	_, err := rebExchange(addr,
		frame{T: frameRebClaim, V: ProtocolVersion, Part: part, Parts: parts, Session: session}, frameRebOK)
	return err
}
