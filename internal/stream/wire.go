package stream

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"sybilwild/internal/osn"
	"sybilwild/internal/sim"
)

// This file is the v2 wire protocol: framing, the frame vocabulary,
// and the batch codec. The full specification (handshake, sequence
// and ack semantics, resume rules) lives in docs/ARCHITECTURE.md; the
// shapes here are the normative encoding.
//
// Every frame is a 4-byte big-endian payload length followed by a
// JSON object. The object's "t" field names the frame type:
//
//	client → server   hello {"t":"hello","v":2,"session":S,"resume":R}
//	                  ack   {"t":"ack","ack":N}
//	server → client   welcome {"t":"welcome","v":2,"from":F}
//	                          {"t":"welcome","v":2,"err":"..."}
//	                  batch   {"t":"batch","seq":F,"events":[...]}
//	                  eof     {"t":"eof"}
//
// Events inside a batch frame carry consecutive sequence numbers
// starting at the frame's "seq"; acks name the highest sequence the
// client has delivered to its application.

// ProtocolVersion is the feed protocol generation spoken by this
// package. Version 1 (unframed newline-delimited JSON, no sequencing,
// drop-oldest overflow) is no longer served.
const ProtocolVersion = 2

// Frame type tags.
const (
	frameHello   = "hello"
	frameWelcome = "welcome"
	frameBatch   = "batch"
	frameAck     = "ack"
	frameEOF     = "eof"
)

// frame is the JSON form of every control frame. Batch frames use the
// same shape but are encoded and decoded on a hand-rolled hot path
// (appendBatchFrame / parseBatchFrame); the struct remains their
// fallback and interop form.
type frame struct {
	T       string      `json:"t"`
	V       int         `json:"v,omitempty"`
	Session string      `json:"session,omitempty"`
	Resume  uint64      `json:"resume,omitempty"`
	From    uint64      `json:"from,omitempty"`
	Err     string      `json:"err,omitempty"`
	Ack     uint64      `json:"ack,omitempty"`
	Seq     uint64      `json:"seq,omitempty"`
	Events  []WireEvent `json:"events,omitempty"`
}

// maxFrameSize bounds a single frame; a reader rejects anything
// larger rather than trusting a corrupt length prefix.
const maxFrameSize = 16 << 20

// writeFrame emits one length-prefixed frame payload.
func writeFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// writeControl marshals and emits a control frame.
func writeControl(w io.Writer, f frame) error {
	payload, err := json.Marshal(f)
	if err != nil {
		return err
	}
	return writeFrame(w, payload)
}

// readFrame reads one length-prefixed payload, reusing buf when it is
// large enough. The returned slice is only valid until the next call.
func readFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrameSize {
		return nil, fmt.Errorf("stream: frame of %d bytes exceeds limit", n)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// WireEvent is the JSON wire form of an osn.Event.
type WireEvent struct {
	Type   string `json:"type"`
	At     int64  `json:"at"`
	Actor  int32  `json:"actor"`
	Target int32  `json:"target"`
	Aux    int32  `json:"aux,omitempty"`
}

// FromOSN converts an event to wire form.
func FromOSN(ev osn.Event) WireEvent {
	return WireEvent{
		Type:   ev.Type.String(),
		At:     ev.At,
		Actor:  int32(ev.Actor),
		Target: int32(ev.Target),
		Aux:    ev.Aux,
	}
}

// eventTypeFromString inverts osn.EventType.String. Taking []byte lets
// the batch fast path switch without allocating a string per event.
func eventTypeFromString[S string | []byte](s S) (osn.EventType, error) {
	switch string(s) {
	case "friend_request":
		return osn.EvFriendRequest, nil
	case "friend_accept":
		return osn.EvFriendAccept, nil
	case "friend_reject":
		return osn.EvFriendReject, nil
	case "message":
		return osn.EvMessage, nil
	case "ban":
		return osn.EvBan, nil
	case "blog_post":
		return osn.EvBlogPost, nil
	case "blog_share":
		return osn.EvBlogShare, nil
	default:
		return 0, fmt.Errorf("stream: unknown event type %q", s)
	}
}

// ToOSN converts back from wire form.
func (w WireEvent) ToOSN() (osn.Event, error) {
	typ, err := eventTypeFromString(w.Type)
	if err != nil {
		return osn.Event{}, err
	}
	return osn.Event{
		Type:   typ,
		At:     sim.Time(w.At),
		Actor:  osn.AccountID(w.Actor),
		Target: osn.AccountID(w.Target),
		Aux:    w.Aux,
	}, nil
}

// --- batch hot path ---
//
// Batch frames dominate feed traffic, so both directions avoid
// encoding/json reflection. appendBatchFrame emits the canonical
// encoding; parseBatchFrame accepts exactly that canonical encoding
// and reports !ok on anything else, in which case the caller reparses
// with encoding/json (parseBatchSlow). Either way the decoded events
// are identical — TestBatchCodecAgreesWithJSON holds the two paths
// together.

// appendBatchFrame appends the canonical JSON batch frame for events
// with first sequence seq to dst and returns the extended slice.
func appendBatchFrame(dst []byte, seq uint64, events []osn.Event) []byte {
	dst = append(dst, `{"t":"batch","seq":`...)
	dst = strconv.AppendUint(dst, seq, 10)
	dst = append(dst, `,"events":[`...)
	for i, ev := range events {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = append(dst, `{"type":"`...)
		dst = append(dst, ev.Type.String()...)
		dst = append(dst, `","at":`...)
		dst = strconv.AppendInt(dst, ev.At, 10)
		dst = append(dst, `,"actor":`...)
		dst = strconv.AppendInt(dst, int64(int32(ev.Actor)), 10)
		dst = append(dst, `,"target":`...)
		dst = strconv.AppendInt(dst, int64(int32(ev.Target)), 10)
		if ev.Aux != 0 {
			dst = append(dst, `,"aux":`...)
			dst = strconv.AppendInt(dst, int64(ev.Aux), 10)
		}
		dst = append(dst, '}')
	}
	dst = append(dst, ']', '}')
	return dst
}

// batchCursor walks a canonical batch payload.
type batchCursor struct {
	b []byte
	i int
}

func (c *batchCursor) lit(s string) bool {
	if c.i+len(s) > len(c.b) || string(c.b[c.i:c.i+len(s)]) != s {
		return false
	}
	c.i += len(s)
	return true
}

func (c *batchCursor) uint() (uint64, bool) {
	start := c.i
	var v uint64
	for c.i < len(c.b) && c.b[c.i] >= '0' && c.b[c.i] <= '9' {
		v = v*10 + uint64(c.b[c.i]-'0')
		c.i++
	}
	return v, c.i > start
}

func (c *batchCursor) int() (int64, bool) {
	neg := false
	if c.i < len(c.b) && c.b[c.i] == '-' {
		neg = true
		c.i++
	}
	v, ok := c.uint()
	if !ok {
		return 0, false
	}
	if neg {
		return -int64(v), true
	}
	return int64(v), true
}

// str parses a canonical string value (no escapes) including both
// quotes, returning the unquoted bytes.
func (c *batchCursor) str() ([]byte, bool) {
	if c.i >= len(c.b) || c.b[c.i] != '"' {
		return nil, false
	}
	c.i++
	start := c.i
	for c.i < len(c.b) {
		switch c.b[c.i] {
		case '\\':
			return nil, false // non-canonical; fall back
		case '"':
			s := c.b[start:c.i]
			c.i++
			return s, true
		}
		c.i++
	}
	return nil, false
}

// parseBatchFrame decodes a canonical batch payload into events
// appended to dst. ok is false when the payload deviates from the
// canonical form (the caller then falls back to encoding/json).
func parseBatchFrame(payload []byte, dst []osn.Event) (seq uint64, evs []osn.Event, ok bool) {
	c := batchCursor{b: payload}
	if !c.lit(`{"t":"batch","seq":`) {
		return 0, dst, false
	}
	seq, numOK := c.uint()
	if !numOK || !c.lit(`,"events":[`) {
		return 0, dst, false
	}
	evs = dst
	for n := 0; ; n++ {
		if c.lit(`]}`) {
			break
		}
		if n > 0 && !c.lit(`,`) {
			return 0, dst, false
		}
		if !c.lit(`{"type":`) {
			return 0, dst, false
		}
		typStr, sOK := c.str()
		if !sOK {
			return 0, dst, false
		}
		typ, err := eventTypeFromString(typStr)
		if err != nil {
			return 0, dst, false
		}
		if !c.lit(`,"at":`) {
			return 0, dst, false
		}
		at, aOK := c.int()
		if !aOK || !c.lit(`,"actor":`) {
			return 0, dst, false
		}
		actor, acOK := c.int()
		if !acOK || !c.lit(`,"target":`) {
			return 0, dst, false
		}
		target, tOK := c.int()
		if !tOK {
			return 0, dst, false
		}
		var aux int64
		if c.lit(`,"aux":`) {
			var xOK bool
			aux, xOK = c.int()
			if !xOK {
				return 0, dst, false
			}
		}
		if !c.lit(`}`) {
			return 0, dst, false
		}
		evs = append(evs, osn.Event{
			Type:   typ,
			At:     sim.Time(at),
			Actor:  osn.AccountID(int32(actor)),
			Target: osn.AccountID(int32(target)),
			Aux:    int32(aux),
		})
	}
	if c.i != len(payload) {
		return 0, dst, false
	}
	return seq, evs, true
}

// parseBatchSlow is the encoding/json fallback for batch payloads from
// non-canonical encoders.
func parseBatchSlow(payload []byte, dst []osn.Event) (uint64, []osn.Event, error) {
	var f frame
	if err := json.Unmarshal(payload, &f); err != nil {
		return 0, dst, fmt.Errorf("stream: bad frame: %w", err)
	}
	if f.T != frameBatch {
		return 0, dst, fmt.Errorf("stream: unexpected frame type %q", f.T)
	}
	for _, w := range f.Events {
		ev, err := w.ToOSN()
		if err != nil {
			return 0, dst, err
		}
		dst = append(dst, ev)
	}
	return f.Seq, dst, nil
}
