package stream

import (
	"encoding/json"
	"fmt"
	"io"

	"sybilwild/internal/osn"
	"sybilwild/internal/wire"
)

// This file is the v2 wire protocol's frame vocabulary. The framing
// and the batch codec live one layer down in internal/wire (shared
// with the disk spool, whose segments hold byte-identical frames); the
// full specification — handshake, sequence and ack semantics, resume
// rules — is in docs/ARCHITECTURE.md.
//
// Every frame is a 4-byte big-endian payload length followed by a
// JSON object. The object's "t" field names the frame type. The
// subscribe side:
//
//	client → server   hello {"t":"hello","v":2,"session":S,"resume":R}
//	                  ack   {"t":"ack","ack":N}
//	server → client   welcome {"t":"welcome","v":2,"from":F}
//	                          {"t":"welcome","v":2,"err":"..."}
//	                  batch   {"t":"batch","seq":F,"events":[...]}
//	                  eof     {"t":"eof"}
//
// Events inside a batch frame carry consecutive sequence numbers
// starting at the frame's "seq"; acks name the highest sequence the
// client has delivered to its application.
//
// A relay hop (streamd -relay; see relay.go) subscribes with the same
// hello, flagged "relay":true so the upstream broker's audit can tell
// an interior hop from a leaf consumer. Every welcome carries "hop",
// the answering broker's depth in the relay tree (0 = the root broker,
// omitted from the JSON; a relay serves hop = upstream's hop + 1), so
// each hop learns its depth from its upstream at handshake time:
//
//	relay → broker    hello   {"t":"hello","v":2,"session":S,"resume":R,"relay":true}
//	broker → relay    welcome {"t":"welcome","v":2,"from":F,"hop":H}
//
// A partitioned subscriber (hello carries "part" and "parts") receives
// filtered batches instead — its slice of the feed is sparse in the
// global order, so each event carries its own sequence and the frame
// carries "last", the feed cursor the frame advances the subscriber
// to (an fbatch with no events purely moves the cursor past
// filtered-out foreign events):
//
//	server → client   fbatch {"t":"fbatch","last":L,"events":[{"seq":N,...},...]}
//
// The snapshot sub-protocol (same listen port, the first frame's type
// selects the role; one short-lived connection per transfer) moves a
// partition's serialized detector state through the broker:
//
//	worker → broker   soffer {"t":"soffer","v":2,"part":I,"parts":K,"seq":S,"size":B}
//	                  <raw payload frame of B bytes>
//	broker → worker   sok    {"t":"sok"}  /  {"t":"sok","err":"..."}
//
//	worker → broker   sfetch {"t":"sfetch","v":2,"part":I,"parts":K}
//	broker → worker   snap   {"t":"snap","part":I,"parts":K,"seq":S,"size":B}
//	                  <raw payload frame of B bytes>
//	                  — or {"t":"snap","err":"none"} when nothing is held
//
// The broker stores the highest-sequence snapshot per (part, parts)
// key; offers at or above the held sequence replace it, stale offers
// are acknowledged and dropped.
//
// The rebalance sub-protocol (live K→K' cutover; one short-lived
// connection per control exchange, same port). A prepare fences the
// old group at a barrier — the broker's current head sequence — and
// every fenced subscriber receives, in-stream after its last event at
// or below the barrier, a rebal announcement instead of more feed:
//
//	coordinator → broker   rprepare {"t":"rprepare","v":2,"parts":K,"nparts":N}
//	broker → coordinator   rok      {"t":"rok","barrier":B}  /  {"t":"rok","err":"..."}
//	coordinator → broker   rcommit  {"t":"rcommit","v":2,"parts":K,"nparts":N,"barrier":B}
//	broker → subscriber    rebal    {"t":"rebal","barrier":B,"parts":K,"nparts":N}   (in-stream)
//
//	standby → broker       rstatus  {"t":"rstatus","v":2,"part":I,"parts":K}
//	broker → standby       rinfo    {"t":"rinfo","connected":C,"seen":true,"seq":S,"barrier":B}
//	standby → broker       rclaim   {"t":"rclaim","v":2,"part":I,"parts":K,"session":ID}
//	broker → standby       rok      {"t":"rok"}  /  {"t":"rok","err":"..."}
//
// rinfo reports the partition key's health: connected subscriber
// count, whether any subscriber was ever admitted on the key, the
// sequence of the freshest held snapshot, and the group's fence
// barrier (0 while unfenced). A granted rclaim reserves the partition
// for the named session id — other sessions are refused admission on
// the key until the claim is consumed or its linger expires — which
// is how exactly one standby wins a promotion race.
//
// The publish side (producer → broker, over the same listen port; the
// first frame's type selects the role):
//
//	producer → broker   phello {"t":"phello","v":2,"producer":P,"producers":K,"epoch":E}
//	                    pbatch {"t":"pbatch","bseq":B,"events":[...]}
//	                    peof   {"t":"peof"}
//	broker → producer   pwelcome {"t":"pwelcome","v":2,"epoch":E,"bseq":B,"count":C}
//	                             {"t":"pwelcome","v":2,"err":"..."}
//	                    pack     {"t":"pack","bseq":B}
//	                    peof     {"t":"peof"}
//
// A producer names itself (producer id P), declares the size K of its
// producer group, and either continues its current epoch (E > 0, a
// reconnect within one process lifetime) or asks for a fresh one
// (E = 0, a restarted process). The pwelcome grants the epoch and
// reports B, the highest producer batch sequence the broker has
// already sequenced in that epoch (resend only above it), and C, the
// total events durably sequenced from this producer across all epochs
// (a deterministic producer skips that many on restart). pbatch
// sequences are per producer and contiguous from 1 within an epoch;
// the broker drops (but still acks) replays at or below B, so a
// reconnect that resends in-flight batches delivers them downstream
// exactly once. peof closes the producer's epoch for good; the broker
// confirms with a peof of its own and ends the downstream feed only
// after every one of the K producers has closed.

// ProtocolVersion is the feed protocol generation spoken by this
// package. Version 1 (unframed newline-delimited JSON, no sequencing,
// drop-oldest overflow) is no longer served.
const ProtocolVersion = 2

// Frame type tags.
const (
	frameHello   = "hello"
	frameWelcome = "welcome"
	frameBatch   = "batch"
	frameFBatch  = "fbatch"
	frameAck     = "ack"
	frameEOF     = "eof"

	// Publish sub-protocol (producer → broker ingest).
	framePHello   = "phello"
	framePWelcome = "pwelcome"
	framePBatch   = "pbatch"
	framePAck     = "pack"
	framePEOF     = "peof"

	// Snapshot sub-protocol (partition state through the broker).
	frameSnapOffer = "soffer"
	frameSnapFetch = "sfetch"
	frameSnapOK    = "sok"
	frameSnap      = "snap"

	// Rebalance sub-protocol (live K→K' cutover; see rebalance.go).
	// rebal is the in-stream cutover announcement sent to fenced
	// partition subscribers; the rest are control frames on their own
	// short-lived connections.
	frameRebal     = "rebal"
	frameRebPrep   = "rprepare"
	frameRebCommit = "rcommit"
	frameRebOK     = "rok"
	frameRebStatus = "rstatus"
	frameRebInfo   = "rinfo"
	frameRebClaim  = "rclaim"
)

// snapNone is the well-known error a snapshot fetch gets when the
// broker holds nothing for the partition; the client maps it to
// ErrNoSnapshot.
const snapNone = "none"

// frame is the JSON form of every control frame. Batch frames use the
// same shape but are encoded and decoded on a hand-rolled hot path
// (wire.AppendBatch / wire.ParseBatch); the struct remains their
// fallback and interop form.
type frame struct {
	T       string      `json:"t"`
	V       int         `json:"v,omitempty"`
	Session string      `json:"session,omitempty"`
	Resume  uint64      `json:"resume,omitempty"`
	From    uint64      `json:"from,omitempty"`
	Err     string      `json:"err,omitempty"`
	Ack     uint64      `json:"ack,omitempty"`
	Seq     uint64      `json:"seq,omitempty"`
	Events  []WireEvent `json:"events,omitempty"`

	// Partitioned-subscription and snapshot sub-protocol fields.
	Part  int    `json:"part,omitempty"`  // partition index (hello/soffer/sfetch/snap)
	Parts int    `json:"parts,omitempty"` // partition group size; 0 = full feed
	Last  uint64 `json:"last,omitempty"`  // feed cursor covered by an fbatch
	Size  uint64 `json:"size,omitempty"`  // snapshot payload bytes (soffer/snap)

	// Publish sub-protocol fields.
	Producer  string `json:"producer,omitempty"`  // producer id (phello)
	Producers int    `json:"producers,omitempty"` // producer group size (phello)
	Epoch     uint64 `json:"epoch,omitempty"`     // producer epoch (phello request / pwelcome grant)
	Bseq      uint64 `json:"bseq,omitempty"`      // per-producer batch sequence (pbatch/pack/pwelcome)
	Count     uint64 `json:"count,omitempty"`     // events durably sequenced from this producer (pwelcome)

	// Rebalance sub-protocol fields.
	Barrier   uint64 `json:"barrier,omitempty"`   // cutover barrier sequence (rprepare reply, rcommit, rebal, rinfo)
	NParts    int    `json:"nparts,omitempty"`    // new partition group size (rprepare, rcommit, rebal)
	Connected int    `json:"connected,omitempty"` // connected sessions on the partition key (rinfo)
	Seen      bool   `json:"seen,omitempty"`      // a worker was ever admitted on the key (rinfo)

	// Relay-tier handshake fields (relay.go).
	Relay bool `json:"relay,omitempty"` // hello: this subscriber is an interior relay hop
	Hop   int  `json:"hop,omitempty"`   // welcome: answering broker's tree depth (0 = root)
}

// WireEvent is the JSON wire form of an osn.Event.
type WireEvent = wire.Event

// FromOSN converts an event to wire form.
func FromOSN(ev osn.Event) WireEvent { return wire.FromOSN(ev) }

// writeFrame emits one length-prefixed frame payload.
func writeFrame(w io.Writer, payload []byte) error { return wire.WriteFrame(w, payload) }

// writeControl marshals and emits a control frame.
func writeControl(w io.Writer, f frame) error {
	payload, err := json.Marshal(f)
	if err != nil {
		return err
	}
	return writeFrame(w, payload)
}

// readFrame reads one length-prefixed payload, reusing buf when it is
// large enough. The returned slice is only valid until the next call.
func readFrame(r io.Reader, buf []byte) ([]byte, error) { return wire.ReadFrame(r, buf) }

// appendBatchFrame appends the canonical JSON batch frame for events
// with first sequence seq to dst and returns the extended slice.
func appendBatchFrame(dst []byte, seq uint64, events []osn.Event) []byte {
	return wire.AppendBatch(dst, seq, events)
}

// parseBatchFrame decodes a canonical batch payload into events
// appended to dst. ok is false when the payload deviates from the
// canonical form (the caller then falls back to encoding/json).
func parseBatchFrame(payload []byte, dst []osn.Event) (seq uint64, evs []osn.Event, ok bool) {
	return wire.ParseBatch(payload, dst)
}

// parseBatchSlow is the encoding/json fallback for batch payloads from
// non-canonical encoders.
func parseBatchSlow(payload []byte, dst []osn.Event) (uint64, []osn.Event, error) {
	f, evs, err := parseEventFrameSlow(payload, frameBatch, dst)
	return f.Seq, evs, err
}

// appendFBatchFrame appends the canonical filtered-batch frame — the
// partitioned-subscriber form, per-event sequences plus the covering
// cursor last — to dst and returns the extended slice.
func appendFBatchFrame(dst []byte, last uint64, seqs []uint64, events []osn.Event) []byte {
	return wire.AppendFBatch(dst, last, seqs, events)
}

// parseFBatchFrame decodes a canonical filtered-batch payload,
// appending events to dstEvs and their sequences to dstSeqs. ok is
// false when the payload deviates from the canonical form.
func parseFBatchFrame(payload []byte, dstEvs []osn.Event, dstSeqs []uint64) (last uint64, evs []osn.Event, seqs []uint64, ok bool) {
	return wire.ParseFBatch(payload, dstEvs, dstSeqs)
}

// parseFBatchSlow is the encoding/json fallback for filtered batches
// from non-canonical encoders.
func parseFBatchSlow(payload []byte, dstEvs []osn.Event, dstSeqs []uint64) (uint64, []osn.Event, []uint64, error) {
	var f frame
	if err := json.Unmarshal(payload, &f); err != nil {
		return 0, dstEvs, dstSeqs, fmt.Errorf("stream: bad frame: %w", err)
	}
	if f.T != frameFBatch {
		return 0, dstEvs, dstSeqs, fmt.Errorf("stream: unexpected frame type %q", f.T)
	}
	for _, w := range f.Events {
		ev, err := w.ToOSN()
		if err != nil {
			return 0, dstEvs, dstSeqs, err
		}
		dstEvs = append(dstEvs, ev)
		dstSeqs = append(dstSeqs, w.Seq)
	}
	return f.Last, dstEvs, dstSeqs, nil
}

// appendPBatchFrame appends the canonical publish batch frame (batch
// sequence bseq) to dst and returns the extended slice.
func appendPBatchFrame(dst []byte, bseq uint64, events []osn.Event) []byte {
	return wire.AppendPBatch(dst, bseq, events)
}

// parsePBatchFrame decodes a canonical publish batch payload into
// events appended to dst. ok is false when the payload deviates from
// the canonical form (the broker then falls back to encoding/json).
func parsePBatchFrame(payload []byte, dst []osn.Event) (bseq uint64, evs []osn.Event, ok bool) {
	return wire.ParsePBatch(payload, dst)
}

// parsePBatchSlow is the encoding/json fallback for publish batches
// from non-canonical encoders.
func parsePBatchSlow(payload []byte, dst []osn.Event) (uint64, []osn.Event, error) {
	f, evs, err := parseEventFrameSlow(payload, framePBatch, dst)
	return f.Bseq, evs, err
}

func parseEventFrameSlow(payload []byte, want string, dst []osn.Event) (frame, []osn.Event, error) {
	var f frame
	if err := json.Unmarshal(payload, &f); err != nil {
		return f, dst, fmt.Errorf("stream: bad frame: %w", err)
	}
	if f.T != want {
		return f, dst, fmt.Errorf("stream: unexpected frame type %q", f.T)
	}
	for _, w := range f.Events {
		ev, err := w.ToOSN()
		if err != nil {
			return f, dst, err
		}
		dst = append(dst, ev)
	}
	return f, dst, nil
}
