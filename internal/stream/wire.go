package stream

import (
	"encoding/json"
	"fmt"
	"io"

	"sybilwild/internal/osn"
	"sybilwild/internal/wire"
)

// This file is the v2 wire protocol's frame vocabulary. The framing
// and the batch codec live one layer down in internal/wire (shared
// with the disk spool, whose segments hold byte-identical frames); the
// full specification — handshake, sequence and ack semantics, resume
// rules — is in docs/ARCHITECTURE.md.
//
// Every frame is a 4-byte big-endian payload length followed by a
// JSON object. The object's "t" field names the frame type:
//
//	client → server   hello {"t":"hello","v":2,"session":S,"resume":R}
//	                  ack   {"t":"ack","ack":N}
//	server → client   welcome {"t":"welcome","v":2,"from":F}
//	                          {"t":"welcome","v":2,"err":"..."}
//	                  batch   {"t":"batch","seq":F,"events":[...]}
//	                  eof     {"t":"eof"}
//
// Events inside a batch frame carry consecutive sequence numbers
// starting at the frame's "seq"; acks name the highest sequence the
// client has delivered to its application.

// ProtocolVersion is the feed protocol generation spoken by this
// package. Version 1 (unframed newline-delimited JSON, no sequencing,
// drop-oldest overflow) is no longer served.
const ProtocolVersion = 2

// Frame type tags.
const (
	frameHello   = "hello"
	frameWelcome = "welcome"
	frameBatch   = "batch"
	frameAck     = "ack"
	frameEOF     = "eof"
)

// frame is the JSON form of every control frame. Batch frames use the
// same shape but are encoded and decoded on a hand-rolled hot path
// (wire.AppendBatch / wire.ParseBatch); the struct remains their
// fallback and interop form.
type frame struct {
	T       string      `json:"t"`
	V       int         `json:"v,omitempty"`
	Session string      `json:"session,omitempty"`
	Resume  uint64      `json:"resume,omitempty"`
	From    uint64      `json:"from,omitempty"`
	Err     string      `json:"err,omitempty"`
	Ack     uint64      `json:"ack,omitempty"`
	Seq     uint64      `json:"seq,omitempty"`
	Events  []WireEvent `json:"events,omitempty"`
}

// WireEvent is the JSON wire form of an osn.Event.
type WireEvent = wire.Event

// FromOSN converts an event to wire form.
func FromOSN(ev osn.Event) WireEvent { return wire.FromOSN(ev) }

// writeFrame emits one length-prefixed frame payload.
func writeFrame(w io.Writer, payload []byte) error { return wire.WriteFrame(w, payload) }

// writeControl marshals and emits a control frame.
func writeControl(w io.Writer, f frame) error {
	payload, err := json.Marshal(f)
	if err != nil {
		return err
	}
	return writeFrame(w, payload)
}

// readFrame reads one length-prefixed payload, reusing buf when it is
// large enough. The returned slice is only valid until the next call.
func readFrame(r io.Reader, buf []byte) ([]byte, error) { return wire.ReadFrame(r, buf) }

// appendBatchFrame appends the canonical JSON batch frame for events
// with first sequence seq to dst and returns the extended slice.
func appendBatchFrame(dst []byte, seq uint64, events []osn.Event) []byte {
	return wire.AppendBatch(dst, seq, events)
}

// parseBatchFrame decodes a canonical batch payload into events
// appended to dst. ok is false when the payload deviates from the
// canonical form (the caller then falls back to encoding/json).
func parseBatchFrame(payload []byte, dst []osn.Event) (seq uint64, evs []osn.Event, ok bool) {
	return wire.ParseBatch(payload, dst)
}

// parseBatchSlow is the encoding/json fallback for batch payloads from
// non-canonical encoders.
func parseBatchSlow(payload []byte, dst []osn.Event) (uint64, []osn.Event, error) {
	var f frame
	if err := json.Unmarshal(payload, &f); err != nil {
		return 0, dst, fmt.Errorf("stream: bad frame: %w", err)
	}
	if f.T != frameBatch {
		return 0, dst, fmt.Errorf("stream: unexpected frame type %q", f.T)
	}
	for _, w := range f.Events {
		ev, err := w.ToOSN()
		if err != nil {
			return 0, dst, err
		}
		dst = append(dst, ev)
	}
	return f.Seq, dst, nil
}
