package stream

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"sybilwild/internal/agents"
	"sybilwild/internal/detector"
	"sybilwild/internal/osn"
	"sybilwild/internal/sim"
)

// simEvents runs the reference campaign once and returns its full
// operational log.
func simEvents(seed int64) []osn.Event {
	pop := agents.NewPopulation(seed, agents.DefaultParams())
	pop.Bootstrap(800)
	pop.LaunchSybils(15, 30*sim.TicksPerHour)
	pop.RunFor(120 * sim.TicksPerHour)
	return pop.Net.Events()
}

// TestSimulationDeterminism pins the contract renrend's publish mode
// is built on: two populations from the same seed emit byte-for-byte
// identical event streams, so K processes each running the simulation
// and publishing disjoint actor partitions jointly reproduce exactly
// the single-process event set.
func TestSimulationDeterminism(t *testing.T) {
	a := simEvents(99)
	b := simEvents(99)
	if len(a) != len(b) {
		t.Fatalf("event counts diverge: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d diverges: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestPartitionActorCoversAndAgrees: the partition function is total,
// stable, and splits a real population roughly evenly.
func TestPartitionActorCoversAndAgrees(t *testing.T) {
	const n = 3
	counts := make([]int, n)
	for id := osn.AccountID(0); id < 10000; id++ {
		pi := PartitionActor(id, n)
		if pi < 0 || pi >= n {
			t.Fatalf("partition out of range: %d", pi)
		}
		if pi != PartitionActor(id, n) {
			t.Fatalf("partition unstable for %d", id)
		}
		counts[pi]++
	}
	for i, c := range counts {
		if c < 10000/n/2 {
			t.Fatalf("partition %d badly skewed: %v", i, counts)
		}
	}
}

// TestMultiProducerFlagEquality is the tentpole E2E at package level:
// three producers jointly publish one campaign's partitioned event
// set into a single broker — one of them killed mid-feed at the
// transport level and restarted into a fresh epoch — and the sharded
// detection pipeline consuming the merged feed must flag exactly the
// account set a serial replay of the single-producer log flags, with
// every event sequenced exactly once.
func TestMultiProducerFlagEquality(t *testing.T) {
	const producers = 3
	events := simEvents(17)
	rule := detector.Rule{OutAcceptMax: 0.5, FreqMin: 20, CCMax: 0.05, MinObserved: 10}

	// Reference: serial replay of the canonical single-producer order,
	// graph rebuilt from the feed alone (as detectd would).
	ref := detector.NewPipeline(rule, nil, detector.WithShards(1), detector.WithGraphReconstruction())
	ref.Ingest(detector.Batch{Events: events})
	ref.Close()
	want := ref.FlaggedIDs()
	if len(want) == 0 {
		t.Fatal("reference pipeline flagged nothing; equality test is vacuous")
	}

	parts := make([][]osn.Event, producers)
	for _, ev := range events {
		pi := PartitionActor(ev.Actor, producers)
		parts[pi] = append(parts[pi], ev)
	}
	total := 0
	for pi, part := range parts {
		if len(part) == 0 {
			t.Fatalf("partition %d empty; population too small for the test", pi)
		}
		total += len(part)
	}
	if total != len(events) {
		t.Fatalf("partitions cover %d of %d events", total, len(events))
	}

	srv, err := NewServer("127.0.0.1:0", WithReplayBuffer(8192))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	pipe := detector.NewPipeline(rule, nil, detector.WithShards(4), detector.WithGraphReconstruction())
	subDone := make(chan error, 1)
	go func() {
		subDone <- SubscribeBatch(srv.Addr(), func(evs []osn.Event) {
			pipe.Ingest(detector.Batch{Events: evs})
		}, 10)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for srv.NumClients() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	var wg sync.WaitGroup
	errs := make(chan error, producers)
	for pi := 0; pi < producers; pi++ {
		wg.Add(1)
		go func(pi int) {
			defer wg.Done()
			errs <- publishPartition(srv.Addr(), pi, producers, parts[pi], pi == 1)
		}(pi)
	}
	closeOnIngestDone(srv)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := <-subDone; err != nil {
		t.Fatalf("subscriber: %v", err)
	}
	pipe.Close()
	srv.Close() // synchronize accounting

	st := srv.Stats()
	if st.Broadcast != uint64(len(events)) {
		t.Fatalf("sequenced %d events, want exactly %d (kill/restart must not gap or duplicate)",
			st.Broadcast, len(events))
	}
	if st.Delivered != st.Broadcast || st.Evicted != 0 {
		t.Fatalf("audit: sent=%d delivered=%d evicted=%d", st.Broadcast, st.Delivered, st.Evicted)
	}

	got := pipe.FlaggedIDs()
	wantSet := make(map[osn.AccountID]bool, len(want))
	for _, id := range want {
		wantSet[id] = true
	}
	if len(got) != len(want) {
		t.Fatalf("flag divergence: single-producer replay flagged %d, multi-producer feed flagged %d",
			len(want), len(got))
	}
	for _, id := range got {
		if !wantSet[id] {
			t.Fatalf("flag divergence: account %d flagged only over the multi-producer feed", id)
		}
	}
}

// publishPartition plays one producer process: publish the partition
// in order, and — when kill is set — abort mid-feed and restart as a
// fresh process would: new epoch, skip the prefix the broker reports
// durable, publish the rest.
func publishPartition(addr string, pi, producers int, part []osn.Event, kill bool) error {
	id := fmt.Sprintf("p%d", pi)
	pub, err := NewPublisher(addr, id, producers, WithPublishMaxBatch(64))
	if err != nil {
		return err
	}
	if pub.SkipEvents() != 0 {
		return fmt.Errorf("producer %s: fresh feed reports %d durable events", id, pub.SkipEvents())
	}
	cut := len(part)
	if kill {
		cut = len(part) / 2
	}
	for i := 0; i < cut; i++ {
		if err := pub.Publish(part[i]); err != nil {
			return err
		}
	}
	if kill {
		// Die without closing the epoch, mid-campaign, with batches
		// possibly in flight; then restart.
		for deadline := time.Now().Add(5 * time.Second); ; {
			st := pub.Stats()
			if st.Acked == st.Batches || time.Now().After(deadline) {
				break
			}
			time.Sleep(time.Millisecond)
		}
		pub.Abort()
		pub, err = NewPublisher(addr, id, producers, WithPublishMaxBatch(64))
		if err != nil {
			return err
		}
		if pub.Epoch() < 2 {
			return fmt.Errorf("producer %s: restart stayed in epoch %d", id, pub.Epoch())
		}
		skip := int(pub.SkipEvents())
		if skip > cut {
			return fmt.Errorf("producer %s: broker claims %d durable events, only %d were published", id, skip, cut)
		}
		for i := skip; i < len(part); i++ {
			if err := pub.Publish(part[i]); err != nil {
				return err
			}
		}
	}
	return pub.Close()
}
