package stream

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"sybilwild/internal/osn"
	"sybilwild/internal/spool"
	"sybilwild/internal/wire"
)

// --- v1 baseline ---
//
// A faithful miniature of the protocol this package replaced:
// newline-delimited JSON, one marshal and one channel hop per event,
// per-client buffer that sheds its oldest entry when full. It exists
// only as the benchmark baseline for the v2 batched path; note its
// throughput number counts broadcast events, delivered or not —
// losslessness is exactly what it lacked.

const v1Buffer = 4096

type v1Server struct {
	ln      net.Listener
	mu      sync.Mutex
	clients map[net.Conn]chan []byte
	closed  bool
	wg      sync.WaitGroup
}

func newV1Server(addr string) (*v1Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &v1Server{ln: ln, clients: make(map[net.Conn]chan []byte)}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			ch := make(chan []byte, v1Buffer)
			s.mu.Lock()
			if s.closed {
				s.mu.Unlock()
				conn.Close()
				return
			}
			s.clients[conn] = ch
			s.mu.Unlock()
			s.wg.Add(1)
			go s.writeLoop(conn, ch)
		}
	}()
	return s, nil
}

func (s *v1Server) writeLoop(conn net.Conn, ch chan []byte) {
	defer s.wg.Done()
	defer conn.Close()
	w := bufio.NewWriter(conn)
	for line := range ch {
		if _, err := w.Write(line); err != nil {
			return
		}
		if len(ch) == 0 {
			if err := w.Flush(); err != nil {
				return
			}
		}
	}
	w.Flush()
}

func (s *v1Server) broadcast(ev osn.Event) {
	line, err := json.Marshal(FromOSN(ev))
	if err != nil {
		return
	}
	line = append(line, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ch := range s.clients {
		for {
			select {
			case ch <- line:
			default:
				select { // full: drop the oldest and retry
				case <-ch:
				default:
				}
				continue
			}
			break
		}
	}
}

func (s *v1Server) close() {
	s.mu.Lock()
	s.closed = true
	s.ln.Close()
	for conn, ch := range s.clients {
		close(ch)
		delete(s.clients, conn)
		_ = conn
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// BenchmarkBroadcastDrain is the tentpole before/after: end-to-end
// feed throughput with one subscriber draining. The v2 numbers are
// honest (every event broadcast is delivered, decoded and
// acknowledged — the broadcast blocks otherwise): v2-batched feeds
// the broker the way production callers do (BroadcastBatch runs — the
// single-encode hot path), v2-per-event is the compatibility path
// that pays one chunk encode per event. The v1 number is the old
// per-event protocol, which keeps its pace by shedding events the
// client never sees.
func BenchmarkBroadcastDrain(b *testing.B) {
	ev := osn.Event{Type: osn.EvFriendRequest, At: 1, Actor: 2, Target: 3}

	drainV2 := func(b *testing.B, feed func(s *Server, n int)) {
		s, err := NewServer("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		c, err := Dial(s.Addr())
		if err != nil {
			b.Fatal(err)
		}
		done := make(chan int)
		go func() {
			n := 0
			for {
				evs, err := c.RecvBatch()
				if err != nil {
					c.Close() // prompt close lets the server tear down without waiting out the drain deadline
					done <- n
					return
				}
				n += len(evs)
			}
		}()
		b.ReportAllocs()
		b.ResetTimer()
		feed(s, b.N)
		s.Close() // drains the window: delivery is part of the cost
		got := <-done
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "Mevents/s")
		if got != b.N {
			b.Fatalf("lost events: delivered %d of %d", got, b.N)
		}
	}

	b.Run("v2-batched", func(b *testing.B) {
		batch := make([]osn.Event, DefaultMaxBatch)
		for i := range batch {
			batch[i] = ev
		}
		drainV2(b, func(s *Server, n int) {
			for sent := 0; sent < n; {
				run := batch
				if rest := n - sent; rest < len(run) {
					run = run[:rest]
				}
				s.BroadcastBatch(run)
				sent += len(run)
			}
		})
	})

	b.Run("v2-per-event", func(b *testing.B) {
		drainV2(b, func(s *Server, n int) {
			for i := 0; i < n; i++ {
				s.Broadcast(ev)
			}
		})
	})

	b.Run("v1-per-event", func(b *testing.B) {
		s, err := newV1Server("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		conn, err := net.DialTimeout("tcp", s.ln.Addr().String(), 5*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			s.mu.Lock()
			n := len(s.clients)
			s.mu.Unlock()
			if n > 0 {
				break
			}
			time.Sleep(time.Millisecond)
		}
		done := make(chan int)
		go func() {
			sc := bufio.NewScanner(conn)
			sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
			n := 0
			for sc.Scan() {
				var w WireEvent
				if json.Unmarshal(sc.Bytes(), &w) == nil {
					n++
				}
			}
			done <- n
		}()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.broadcast(ev)
		}
		s.close()
		got := <-done
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "Mevents/s")
		b.ReportMetric(float64(b.N-got), "lost")
		conn.Close()
	})
}

// BenchmarkBroadcastFanout is the single-encode fan-out claim as a
// number: the broker-side cost of feeding K subscribers the same feed.
// Every subscriber's socket carries the same shared pre-encoded
// frames, so the sequencer+encode+queue hot path should be nearly flat
// in K — only per-socket kernel writes scale — and the bench-gate pins
// subs=16 to within 2x of subs=1. Subscribers drain raw frames (bounds
// probe only, no per-event decode: on a small runner K decoding
// clients would swamp the one broker being measured) and every event
// is verified delivered to every subscriber; the replay window covers
// the run so the timed loop is the fan-out itself, never a wait on the
// slowest reader. Events are fed through BroadcastBatch in
// maxBatch-sized runs — the shape the hot path is built for.
func BenchmarkBroadcastFanout(b *testing.B) {
	for _, subs := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("subs=%d", subs), func(b *testing.B) {
			const fanoutBatch = 4 * DefaultMaxBatch // larger frames amortize per-socket syscalls
			s, err := NewServer("127.0.0.1:0",
				WithMaxBatch(fanoutBatch), WithReplayBuffer(b.N+fanoutBatch))
			if err != nil {
				b.Fatal(err)
			}
			done := make(chan int, subs)
			for i := 0; i < subs; i++ {
				conn, err := net.DialTimeout("tcp", s.Addr(), 5*time.Second)
				if err != nil {
					b.Fatal(err)
				}
				bw := bufio.NewWriter(conn)
				if err := writeControl(bw, frame{T: frameHello, V: ProtocolVersion,
					Session: fmt.Sprintf("bench-%d", i)}); err == nil {
					err = bw.Flush()
				}
				if err != nil {
					b.Fatal(err)
				}
				br := bufio.NewReaderSize(conn, 64<<10)
				if _, err := readFrame(br, nil); err != nil { // welcome
					b.Fatal(err)
				}
				go func(conn net.Conn, br *bufio.Reader) {
					// No acks: the replay window covers the whole run, so
					// acking per frame would only add syscalls to the
					// shared core; losslessness is still proven by the
					// per-subscriber count below.
					defer conn.Close()
					n := 0
					var buf []byte
					for {
						payload, err := readFrame(br, buf)
						if err != nil {
							done <- -1
							return
						}
						buf = payload
						_, k, ok := wire.ParseBatchBounds(payload)
						if !ok { // eof (or another control frame): drain ends
							done <- n
							return
						}
						n += k
					}
				}(conn, br)
			}
			batch := make([]osn.Event, fanoutBatch)
			for i := range batch {
				batch[i] = osn.Event{
					Type: osn.EvFriendRequest, At: int64(i),
					Actor: osn.AccountID(i), Target: osn.AccountID(i + 1),
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for sent := 0; sent < b.N; {
				run := batch
				if rest := b.N - sent; rest < len(run) {
					run = run[:rest]
				}
				s.BroadcastBatch(run)
				sent += len(run)
			}
			b.StopTimer()
			s.Close() // drains every window; losslessness verified below
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "Mevents/s")
			for i := 0; i < subs; i++ {
				if got := <-done; got != b.N {
					b.Fatalf("subscriber lost events: delivered %d of %d", got, b.N)
				}
			}
		})
	}
}

// benchRawSubs attaches n no-ack raw-frame subscribers to addr and
// returns their per-subscriber delivered-event counts (sent on eof;
// -1 on error). Shared by the fan-out and relay benchmarks: bounds
// probe only, no per-event decode, so K readers don't swamp the one
// broker being measured.
func benchRawSubs(b *testing.B, addr string, n int) chan int {
	b.Helper()
	done := make(chan int, n)
	for i := 0; i < n; i++ {
		conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		bw := bufio.NewWriter(conn)
		if err := writeControl(bw, frame{T: frameHello, V: ProtocolVersion,
			Session: fmt.Sprintf("bench-%s-%d", addr, i)}); err == nil {
			err = bw.Flush()
		}
		if err != nil {
			b.Fatal(err)
		}
		br := bufio.NewReaderSize(conn, 64<<10)
		if _, err := readFrame(br, nil); err != nil { // welcome
			b.Fatal(err)
		}
		go func(conn net.Conn, br *bufio.Reader) {
			defer conn.Close()
			n := 0
			var buf []byte
			for {
				payload, err := readFrame(br, buf)
				if err != nil {
					done <- -1
					return
				}
				buf = payload
				_, k, ok := wire.ParseBatchBounds(payload)
				if !ok { // eof: drain complete
					done <- n
					return
				}
				n += k
			}
		}(conn, br)
	}
	return done
}

// BenchmarkRelayFanout is the relay tier's perf claim as numbers.
//
// root-downstream=N times the root's ingest (BroadcastBatch through
// the hop's adoption, i.e. until the edge's head catches up) with N
// subscribers hanging off the edge: the bench-gate pins N=64 to within
// 1.5x of N=0, because the whole point of the tier is that downstream
// consumers cost the root nothing — they ride the edge's fan-out of
// frames the root encoded once.
//
// flat-subs=128 vs tree-edges=2x64 is the scaling claim at 100+
// subscribers: one broker draining 128 subscribers against a 2-level
// tree (root feeding 2 edge relays, 64 subscribers each), full drain
// included in the timed region. On multi-core hardware the tree wins
// outright — each edge's write loop runs on its own core and the root
// only serves 2 sessions; the CI gate allows modest slack because a
// single-core runner serializes all 130 socket streams, making the
// tree's strictly-larger total work visible instead of its
// parallelism.
func BenchmarkRelayFanout(b *testing.B) {
	const fanoutBatch = 4 * DefaultMaxBatch
	batch := make([]osn.Event, fanoutBatch)
	for i := range batch {
		batch[i] = osn.Event{
			Type: osn.EvFriendRequest, At: int64(i),
			Actor: osn.AccountID(i), Target: osn.AccountID(i + 1),
		}
	}
	feed := func(s *Server, n int) {
		for sent := 0; sent < n; {
			run := batch
			if rest := n - sent; rest < len(run) {
				run = run[:rest]
			}
			s.BroadcastBatch(run)
			sent += len(run)
		}
	}
	drain := func(b *testing.B, done chan int, subs int) {
		b.Helper()
		for i := 0; i < subs; i++ {
			if got := <-done; got != b.N {
				b.Fatalf("subscriber lost events: delivered %d of %d", got, b.N)
			}
		}
	}

	for _, downstream := range []int{0, 64} {
		b.Run(fmt.Sprintf("root-downstream=%d", downstream), func(b *testing.B) {
			root, err := NewServer("127.0.0.1:0",
				WithMaxBatch(fanoutBatch), WithReplayBuffer(b.N+fanoutBatch))
			if err != nil {
				b.Fatal(err)
			}
			edge, err := NewRelay("127.0.0.1:0", root.Addr(),
				WithRelayServer(WithMaxBatch(fanoutBatch), WithReplayBuffer(b.N+fanoutBatch)))
			if err != nil {
				b.Fatal(err)
			}
			done := benchRawSubs(b, edge.Addr(), downstream)
			waitClients(b, root, 1) // spool-less root: the hop must be attached before the feed starts
			b.ReportAllocs()
			b.ResetTimer()
			feed(root, b.N)
			waitHead(b, edge.Server(), uint64(b.N)) // the hop's adoption is part of ingest
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "Mevents/s")
			if err := root.Close(); err != nil {
				b.Fatal(err)
			}
			if err := edge.Wait(); err != nil {
				b.Fatal(err)
			}
			drain(b, done, downstream)
			if enc := edge.Server().Stats().Encodes; enc != 0 {
				b.Fatalf("interior hop re-encoded %d times, want 0", enc)
			}
		})
	}

	b.Run("flat-subs=128", func(b *testing.B) {
		s, err := NewServer("127.0.0.1:0",
			WithMaxBatch(fanoutBatch), WithReplayBuffer(b.N+fanoutBatch))
		if err != nil {
			b.Fatal(err)
		}
		done := benchRawSubs(b, s.Addr(), 128)
		b.ReportAllocs()
		b.ResetTimer()
		feed(s, b.N)
		s.Close() // full drain to 128 subscribers is the measured cost
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "Mevents/s")
		drain(b, done, 128)
	})

	b.Run("tree-edges=2x64", func(b *testing.B) {
		root, err := NewServer("127.0.0.1:0",
			WithMaxBatch(fanoutBatch), WithReplayBuffer(b.N+fanoutBatch))
		if err != nil {
			b.Fatal(err)
		}
		edges := make([]*Relay, 2)
		var done [2]chan int
		for i := range edges {
			edges[i], err = NewRelay("127.0.0.1:0", root.Addr(),
				WithRelayServer(WithMaxBatch(fanoutBatch), WithReplayBuffer(b.N+fanoutBatch)))
			if err != nil {
				b.Fatal(err)
			}
			done[i] = benchRawSubs(b, edges[i].Addr(), 64)
		}
		waitClients(b, root, 2) // both hops attached before the feed starts
		b.ReportAllocs()
		b.ResetTimer()
		feed(root, b.N)
		if err := root.Close(); err != nil { // eof cascades; edges drain their 64 each
			b.Fatal(err)
		}
		for _, e := range edges {
			if err := e.Wait(); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "Mevents/s")
		for i := range edges {
			drain(b, done[i], 64)
		}
	})
}

// BenchmarkBatchCodec isolates the hand-rolled batch hot path against
// the encoding/json fallback it shadows.
func BenchmarkBatchCodec(b *testing.B) {
	events := make([]osn.Event, DefaultMaxBatch)
	for i := range events {
		events[i] = osn.Event{
			Type: osn.EvFriendRequest, At: int64(i) * 7,
			Actor: osn.AccountID(i), Target: osn.AccountID(i + 1),
		}
	}
	payload := appendBatchFrame(nil, 1, events)

	b.Run("Encode", func(b *testing.B) {
		var buf []byte
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = appendBatchFrame(buf[:0], 1, events)
		}
	})
	b.Run("EncodeJSON", func(b *testing.B) {
		wire := make([]WireEvent, len(events))
		for i, ev := range events {
			wire[i] = FromOSN(ev)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := json.Marshal(frame{T: frameBatch, Seq: 1, Events: wire}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Decode", func(b *testing.B) {
		var dst []osn.Event
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var ok bool
			_, dst, ok = parseBatchFrame(payload, dst[:0])
			if !ok {
				b.Fatal("canonical payload rejected")
			}
		}
	})
	b.Run("DecodeJSON", func(b *testing.B) {
		var dst []osn.Event
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var err error
			_, dst, err = parseBatchSlow(payload, dst[:0])
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkResumeFromDisk is the two-tier replay path end to end: the
// whole feed is broadcast through a server whose in-memory window
// holds only 64 events, then a subscriber resumes from sequence 1 —
// every event it drains is served from spool segments before the
// session flips back to the live ring.
func BenchmarkResumeFromDisk(b *testing.B) {
	sp, err := spool.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer sp.Close()
	s, err := NewServer("127.0.0.1:0", WithReplayBuffer(64), WithSpool(sp))
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	ev := osn.Event{Type: osn.EvFriendRequest, At: 1, Actor: 2, Target: 3}
	// Register the session, then fill the spool while it is detached:
	// by resume time the memory ring holds only the newest 64 events.
	c, err := Dial(s.Addr())
	if err != nil {
		b.Fatal(err)
	}
	session := c.Session()
	c.Kick()
	deadline := time.Now().Add(5 * time.Second)
	for s.NumClients() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < b.N; i++ {
		s.Broadcast(ev)
	}
	b.ReportAllocs()
	b.ResetTimer()
	c2, err := DialResume(s.Addr(), session, 1)
	if err != nil {
		b.Fatal(err)
	}
	defer c2.Close()
	got := 0
	for uint64(got) < uint64(b.N) {
		evs, err := c2.RecvBatch()
		if err != nil {
			b.Fatalf("drain at %d of %d: %v", got, b.N, err)
		}
		got += len(evs)
	}
	b.StopTimer()
	b.ReportMetric(float64(got)/b.Elapsed().Seconds()/1e6, "Mevents/s")
}

// BenchmarkPublishIngest measures the wire-fed broker end to end:
// K publishers over loopback TCP, the global sequencer merging their
// batches, one subscriber draining the totally ordered feed. The
// 1-vs-4 comparison is the concurrent-producer path's price and
// payoff: more producers mean more sequencer contention but also more
// pipelined encode/transmit work feeding it.
func BenchmarkPublishIngest(b *testing.B) {
	ev := osn.Event{Type: osn.EvFriendRequest, At: 1, Actor: 2, Target: 3}
	for _, producers := range []int{1, 4} {
		b.Run(fmt.Sprintf("producers=%d", producers), func(b *testing.B) {
			srv, err := NewServer("127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			sub, err := Dial(srv.Addr())
			if err != nil {
				b.Fatal(err)
			}
			done := make(chan int)
			go func() {
				n := 0
				for {
					evs, err := sub.RecvBatch()
					if err != nil {
						sub.Close()
						done <- n
						return
					}
					n += len(evs)
				}
			}()
			per := b.N / producers
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			for pi := 0; pi < producers; pi++ {
				wg.Add(1)
				go func(pi int) {
					defer wg.Done()
					pub, err := NewPublisher(srv.Addr(), fmt.Sprintf("p%d", pi), producers)
					if err != nil {
						b.Error(err)
						return
					}
					n := per
					if pi == 0 {
						n += b.N % producers
					}
					for i := 0; i < n; i++ {
						if err := pub.Publish(ev); err != nil {
							b.Error(err)
							return
						}
					}
					if err := pub.Close(); err != nil {
						b.Error(err)
					}
				}(pi)
			}
			wg.Wait()
			if !b.Failed() {
				// Only wait for epoch closure when every producer got
				// there; an errored producer never sends peof.
				<-srv.IngestDone()
			}
			srv.Close() // drains the subscriber: delivery is part of the cost
			got := <-done
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "Mevents/s")
			if !b.Failed() && got != b.N {
				b.Fatalf("lost events: delivered %d of %d", got, b.N)
			}
		})
	}
}
