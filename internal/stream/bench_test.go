package stream

import (
	"testing"
	"time"

	"sybilwild/internal/osn"
)

// BenchmarkBroadcastDrain measures end-to-end event throughput with
// one active subscriber draining the feed.
func BenchmarkBroadcastDrain(b *testing.B) {
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	deadline := time.Now().Add(2 * time.Second)
	for s.NumClients() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			if _, err := c.Recv(); err != nil {
				return
			}
		}
	}()
	ev := osn.Event{Type: osn.EvFriendRequest, At: 1, Actor: 2, Target: 3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Broadcast(ev)
	}
	b.StopTimer()
	s.Close()
	<-done
}

func BenchmarkWireMarshal(b *testing.B) {
	ev := osn.Event{Type: osn.EvFriendAccept, At: 12345, Actor: 77, Target: 99}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := FromOSN(ev)
		if _, err := w.ToOSN(); err != nil {
			b.Fatal(err)
		}
	}
}
