package stream

// Relay-tier tests: the sequence-adoption contract (byte-identical
// frames downstream, zero re-encodes at the interior hop), the full
// lifecycle (kill -9 of either endpoint, resume from the relay's own
// spool, eof propagation, ErrGap below upstream retention), and the
// edge serving everything a first-tier broker serves (partitioned
// fbatch subscriptions, snapshot rendezvous).

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"sybilwild/internal/spool"
	"sybilwild/internal/wire"
)

// rawFeed subscribes to addr with a hand-rolled no-ack session and
// returns every batch frame payload verbatim (copies), ending on the
// first control frame (eof). The replay window on the server must
// cover the whole feed since nothing is ever acknowledged.
type rawFeed struct {
	frames [][]byte
	events int
	err    error
}

func rawSubscribe(t *testing.T, addr, session string) <-chan rawFeed {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	bw := bufio.NewWriter(conn)
	if err := writeControl(bw, frame{T: frameHello, V: ProtocolVersion, Session: session}); err == nil {
		err = bw.Flush()
	}
	if err != nil {
		conn.Close()
		t.Fatal(err)
	}
	br := bufio.NewReaderSize(conn, 64<<10)
	if _, err := readFrame(br, nil); err != nil { // welcome
		conn.Close()
		t.Fatal(err)
	}
	done := make(chan rawFeed, 1)
	go func() {
		defer conn.Close()
		var out rawFeed
		var buf []byte
		for {
			payload, err := readFrame(br, buf)
			if err != nil {
				out.err = err
				done <- out
				return
			}
			buf = payload
			_, k, ok := wire.ParseBatchBounds(payload)
			if !ok { // eof: clean end of feed
				done <- out
				return
			}
			out.frames = append(out.frames, append([]byte(nil), payload...))
			out.events += k
		}
	}()
	return done
}

// waitHead blocks until the server's head reaches seq — how tests
// rendezvous with a relay that adopts asynchronously.
func waitHead(t testing.TB, s *Server, seq uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for s.HeadSeq() < seq {
		if time.Now().After(deadline) {
			t.Fatalf("head stuck at %d, want %d", s.HeadSeq(), seq)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRelayByteIdentityZeroEncodes is the tentpole contract as a test:
// every frame the root encodes once crosses the interior hop and
// reaches the edge's subscriber byte-identical, the edge's Encodes
// counter never moves, and its Adopted counter accounts for every
// event. Batches are broadcast in exact maxBatch runs so neither hop's
// writer coalesces and the frame sequence is deterministic.
func TestRelayByteIdentityZeroEncodes(t *testing.T) {
	leakCheck(t)
	const batches, total = 40, 40 * DefaultMaxBatch
	root, err := NewServer("127.0.0.1:0", WithReplayBuffer(total+DefaultMaxBatch))
	if err != nil {
		t.Fatal(err)
	}
	defer root.Close()
	edge, err := NewRelay("127.0.0.1:0", root.Addr(),
		WithRelayServer(WithReplayBuffer(total+DefaultMaxBatch)))
	if err != nil {
		t.Fatal(err)
	}
	defer edge.Close()

	rootFeed := rawSubscribe(t, root.Addr(), "raw-root")
	edgeFeed := rawSubscribe(t, edge.Addr(), "raw-edge")
	waitClients(t, root, 2) // raw subscriber + the relay itself
	waitClients(t, edge.Server(), 1)

	evs := partEvents(total, 7)
	for i := 0; i < batches; i++ {
		root.BroadcastBatch(evs[i*DefaultMaxBatch : (i+1)*DefaultMaxBatch])
	}

	// The relay's session is flagged in the root's accounting — the
	// per-hop audit line's raw material. (Checked before Close empties
	// the session table.)
	sawRelay := false
	for _, ss := range root.Stats().PerSession {
		sawRelay = sawRelay || ss.Relay
	}
	if !sawRelay {
		t.Fatal("no session marked Relay in the root's stats")
	}

	if err := root.Close(); err != nil {
		t.Fatal(err)
	}
	if err := edge.Wait(); err != nil {
		t.Fatalf("relay did not end cleanly: %v", err)
	}

	up, down := <-rootFeed, <-edgeFeed
	if up.err != nil || down.err != nil {
		t.Fatalf("subscriber errors: root %v, edge %v", up.err, down.err)
	}
	if up.events != total || down.events != total {
		t.Fatalf("delivered %d upstream / %d downstream, want %d", up.events, down.events, total)
	}
	if len(up.frames) != len(down.frames) {
		t.Fatalf("frame count differs across the hop: %d upstream, %d downstream", len(up.frames), len(down.frames))
	}
	for i := range up.frames {
		if !bytes.Equal(up.frames[i], down.frames[i]) {
			t.Fatalf("frame %d not byte-identical across the hop:\nup   %s\ndown %s",
				i, up.frames[i], down.frames[i])
		}
	}

	st := edge.Server().Stats()
	if st.Encodes != 0 {
		t.Fatalf("interior hop re-encoded %d times, want 0", st.Encodes)
	}
	if st.Adopted != total {
		t.Fatalf("Adopted = %d, want %d", st.Adopted, total)
	}
	if st.Hop != 1 {
		t.Fatalf("edge hop = %d, want 1", st.Hop)
	}
	rs := edge.Stats()
	if rs.Events != total || rs.Seq != total || rs.Reconnects != 0 {
		t.Fatalf("relay stats %+v, want %d events through seq %d with 0 reconnects", rs, total, total)
	}
}

// TestRelayEdgeKillResume is the edge half of the kill -9 lifecycle: an
// edge relay dies mid-feed (Abort: no drain, no eof, spool as a crash
// leaves it), a replacement opens the same spool directory on a new
// address, resumes upstream from exactly the first missing sequence,
// and the downstream subscriber resumes against the replacement served
// from the shared spool — no gaps, no duplicates, byte math checked by
// recvThrough's At stamps.
func TestRelayEdgeKillResume(t *testing.T) {
	leakCheck(t)
	const half, total = 1500, 3000
	rootSpool, err := spool.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer rootSpool.Close()
	root, err := NewServer("127.0.0.1:0", WithReplayBuffer(64), WithSpool(rootSpool))
	if err != nil {
		t.Fatal(err)
	}
	defer root.Close()

	edgeDir := t.TempDir()
	edgeSpool, err := spool.Open(edgeDir)
	if err != nil {
		t.Fatal(err)
	}
	edge, err := NewRelay("127.0.0.1:0", root.Addr(),
		WithRelayServer(WithReplayBuffer(64), WithSpool(edgeSpool)))
	if err != nil {
		t.Fatal(err)
	}

	c, err := Dial(edge.Addr())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < half; i++ {
		root.Broadcast(testEvent(i))
	}
	recvThrough(t, c, half)
	session, last := c.Session(), c.LastSeq()

	// kill -9 the edge: subscriber and upstream link die without
	// goodbye; the spool keeps what was adopted.
	edge.Abort()
	if err := edgeSpool.Close(); err != nil {
		t.Fatal(err)
	}
	c.Kick()

	// The feed runs on while the edge is down; the root's spool is what
	// heals the missed range on reconnect.
	for i := half; i < total; i++ {
		root.Broadcast(testEvent(i))
	}

	edgeSpool2, err := spool.Open(edgeDir)
	if err != nil {
		t.Fatal(err)
	}
	defer edgeSpool2.Close()
	edge2, err := NewRelay("127.0.0.1:0", root.Addr(),
		WithRelayServer(WithReplayBuffer(64), WithSpool(edgeSpool2)))
	if err != nil {
		t.Fatal(err)
	}
	defer edge2.Close()

	// The subscriber resumes its session against the replacement: the
	// session id is unknown there, so admission serves the backlog from
	// the shared spool directory — disk first, live once caught up.
	c2, err := DialResume(edge2.Addr(), session, last+1)
	if err != nil {
		t.Fatalf("resume against replacement edge: %v", err)
	}
	recvThrough(t, c2, total)
	c2.Close()

	waitHead(t, edge2.Server(), total)
	if err := root.Close(); err != nil {
		t.Fatal(err)
	}
	if err := edge2.Wait(); err != nil {
		t.Fatalf("replacement relay did not end cleanly: %v", err)
	}
}

// TestRelayRootKillResume is the root half: the root dies (kill -9)
// mid-feed, restarts on the same address and spool, and the relay's
// reconnect loop resumes its session — unknown to the restarted root,
// so served from the root's spool — without losing or duplicating a
// sequence downstream.
func TestRelayRootKillResume(t *testing.T) {
	leakCheck(t)
	const half, total = 1200, 2400
	rootDir := t.TempDir()
	rootSpool, err := spool.Open(rootDir)
	if err != nil {
		t.Fatal(err)
	}
	root, err := NewServer("127.0.0.1:0", WithReplayBuffer(64), WithSpool(rootSpool))
	if err != nil {
		t.Fatal(err)
	}
	rootAddr := root.Addr()

	edge, err := NewRelay("127.0.0.1:0", rootAddr,
		WithRelayServer(WithReplayBuffer(64)), WithRelayRetries(20))
	if err != nil {
		t.Fatal(err)
	}
	defer edge.Close()
	c, err := Dial(edge.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i := 0; i < half; i++ {
		root.Broadcast(testEvent(i))
	}
	recvThrough(t, c, half)

	root.Abort()
	if err := rootSpool.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart the root on the same address and spool: the sequencer
	// continues where the spool ends, the relay reconnects with backoff.
	rootSpool2, err := spool.Open(rootDir)
	if err != nil {
		t.Fatal(err)
	}
	defer rootSpool2.Close()
	root2, err := NewServer(rootAddr, WithReplayBuffer(64), WithSpool(rootSpool2))
	if err != nil {
		t.Fatal(err)
	}
	defer root2.Close()
	for i := half; i < total; i++ {
		root2.Broadcast(testEvent(i))
	}
	recvThrough(t, c, total)
	if edge.Stats().Reconnects == 0 {
		t.Fatal("relay claims it never reconnected across the root restart")
	}
	c.Close() // prompt close spares the edge its drain deadline at eof
	if err := root2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := edge.Wait(); err != nil {
		t.Fatalf("relay did not end cleanly after root restart: %v", err)
	}
}

// TestRelayResumeBelowRetentionIsErrGap: when the upstream has pruned
// past what a (re)starting relay needs, the relay must fail loudly
// with ErrGap — a hidden gap would silently corrupt every consumer
// below the hop — and must not hang or spin in the reconnect loop.
func TestRelayResumeBelowRetentionIsErrGap(t *testing.T) {
	leakCheck(t)
	sp, err := spool.Open(t.TempDir(),
		spool.WithSegmentBytes(1024), spool.WithRetainBytes(2048))
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	root, err := NewServer("127.0.0.1:0", WithReplayBuffer(8), WithSpool(sp))
	if err != nil {
		t.Fatal(err)
	}
	defer root.Close()
	for i := 0; i < 3000; i++ {
		root.Broadcast(testEvent(i))
	}
	if sp.First() <= 1 {
		t.Fatal("test premise broken: retention never pruned")
	}

	// A fresh relay (empty spool) must backfill from sequence 1, which
	// the root no longer holds.
	edge, err := NewRelay("127.0.0.1:0", root.Addr())
	if err != nil {
		t.Fatal(err)
	}
	werr := make(chan error, 1)
	go func() { werr <- edge.Wait() }()
	select {
	case err := <-werr:
		if !errors.Is(err, ErrGap) {
			t.Fatalf("relay below retention: err = %v, want ErrGap", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("relay hung instead of surfacing ErrGap")
	}
	edge.Close()
}

// TestRelayEOFBeforeCatchup: upstream eof arrives while an edge
// subscriber is still deep in spool catch-up. The edge must finish
// serving the backlog — disk segments, then the drained window — and
// only then say eof, so a late consumer still sees the whole feed.
func TestRelayEOFBeforeCatchup(t *testing.T) {
	leakCheck(t)
	const total = 4000
	root, err := NewServer("127.0.0.1:0", WithReplayBuffer(total+256))
	if err != nil {
		t.Fatal(err)
	}
	defer root.Close()
	edgeSpool, err := spool.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer edgeSpool.Close()
	edge, err := NewRelay("127.0.0.1:0", root.Addr(),
		WithRelayServer(WithReplayBuffer(32), WithSpool(edgeSpool)))
	if err != nil {
		t.Fatal(err)
	}
	defer edge.Close()
	waitClients(t, root, 1)

	for i := 0; i < total; i++ {
		root.Broadcast(testEvent(i))
	}
	waitHead(t, edge.Server(), total)

	// Late subscriber: starts at sequence 1 against a 32-event window —
	// catch-up is served from the edge's spool, and the eof below races
	// it.
	c, err := DialFrom(edge.Addr(), 1)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	var drainErr error
	go func() {
		defer wg.Done()
		for c.LastSeq() < total {
			if _, err := c.RecvBatch(); err != nil {
				drainErr = fmt.Errorf("at seq %d: %w", c.LastSeq(), err)
				return
			}
		}
		// Whole feed seen; the next read must be the clean eof.
		if _, err := c.RecvBatch(); !errors.Is(err, ErrClosed) {
			drainErr = fmt.Errorf("after full drain: %v, want ErrClosed", err)
		}
	}()
	if err := root.Close(); err != nil { // eof heads down the tree immediately
		t.Fatal(err)
	}
	wg.Wait()
	c.Close()
	if drainErr != nil {
		t.Fatal(drainErr)
	}
	if err := edge.Wait(); err != nil {
		t.Fatalf("relay did not end cleanly: %v", err)
	}
}

// TestRelayPartitionedEdge: the edge serves everything a first-tier
// broker serves — partitioned fbatch subscriptions filtered at the
// edge (per-event global sequences intact, cursor ending at the feed
// head) and the snapshot rendezvous store for workers joining there.
func TestRelayPartitionedEdge(t *testing.T) {
	leakCheck(t)
	const K, total = 2, 1500
	evs := partEvents(total, 11)
	root, err := NewServer("127.0.0.1:0", WithReplayBuffer(total+256))
	if err != nil {
		t.Fatal(err)
	}
	defer root.Close()
	edge, err := NewRelay("127.0.0.1:0", root.Addr(),
		WithRelayServer(WithReplayBuffer(total+256)))
	if err != nil {
		t.Fatal(err)
	}
	defer edge.Close()

	clients := make([]*Client, K)
	for p := 0; p < K; p++ {
		c, err := Dial(edge.Addr(), WithPartition(p, K))
		if err != nil {
			t.Fatalf("dial edge partition %d: %v", p, err)
		}
		defer c.Close()
		clients[p] = c
	}
	waitClients(t, edge.Server(), K)

	type result struct {
		seqs []uint64
		last uint64
		err  error
	}
	results := make([]result, K)
	var wg sync.WaitGroup
	for p, c := range clients {
		wg.Add(1)
		go func(p int, c *Client) {
			defer wg.Done()
			r := &results[p]
			for {
				batch, err := c.RecvBatch()
				if errors.Is(err, ErrClosed) {
					r.last = c.LastSeq()
					c.Close() // prompt close spares the edge its drain deadline
					return
				}
				if err != nil {
					r.err = err
					return
				}
				r.seqs = append(r.seqs, c.LastBatchSeqs()[:len(batch)]...)
			}
		}(p, c)
	}

	root.BroadcastBatch(evs)
	if err := root.Close(); err != nil {
		t.Fatal(err)
	}
	if err := edge.Wait(); err != nil {
		t.Fatalf("relay did not end cleanly: %v", err)
	}
	wg.Wait()
	for p := 0; p < K; p++ {
		r := results[p]
		if r.err != nil {
			t.Fatalf("partition %d: %v", p, r.err)
		}
		want := wantSeqs(evs, p, K)
		if len(r.seqs) != len(want) {
			t.Fatalf("partition %d received %d events at the edge, contract says %d", p, len(r.seqs), len(want))
		}
		for i := range want {
			if r.seqs[i] != want[i] {
				t.Fatalf("partition %d event %d has seq %d, want %d", p, i, r.seqs[i], want[i])
			}
		}
		if r.last != total {
			t.Fatalf("partition %d cursor ended at %d, want %d", p, r.last, total)
		}
	}
}

// TestRelaySnapshotRendezvousAtEdge: workers joining at an edge must
// find the snapshot rendezvous there, not at the root.
// TestRelayRejectsProducers: a relay hop's sequencer is seated by the
// upstream feed, so a wire producer publishing into it would race the
// adopted sequence space — the publish handshake must be rejected
// loudly at the hop, and still admitted at the root.
func TestRelayRejectsProducers(t *testing.T) {
	leakCheck(t)
	root, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer root.Close()
	edge, err := NewRelay("127.0.0.1:0", root.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer edge.Close()

	if _, err := NewPublisher(edge.Addr(), "p0", 1); err == nil ||
		!strings.Contains(err.Error(), "relay hop") {
		t.Fatalf("publish into a relay hop: err = %v, want a relay-hop rejection", err)
	}
	pub, err := NewPublisher(root.Addr(), "p0", 1)
	if err != nil {
		t.Fatalf("publish into the root: %v", err)
	}
	pub.Abort()
	root.Close()
	if err := edge.Wait(); err != nil {
		t.Fatalf("relay did not end cleanly: %v", err)
	}
}

func TestRelaySnapshotRendezvousAtEdge(t *testing.T) {
	leakCheck(t)
	root, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer root.Close()
	edge, err := NewRelay("127.0.0.1:0", root.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer edge.Close()

	if _, _, err := FetchSnapshot(edge.Addr(), 0, 2); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("fetch before any offer: err = %v, want ErrNoSnapshot", err)
	}
	if err := OfferSnapshot(edge.Addr(), 0, 2, 42, []byte("edge-held")); err != nil {
		t.Fatal(err)
	}
	seq, data, err := FetchSnapshot(edge.Addr(), 0, 2)
	if err != nil || seq != 42 || string(data) != "edge-held" {
		t.Fatalf("edge rendezvous returned (%d, %q, %v), want (42, edge-held, nil)", seq, data, err)
	}
	root.Close()
	if err := edge.Wait(); err != nil {
		t.Fatalf("relay did not end cleanly: %v", err)
	}
}
