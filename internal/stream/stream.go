// Package stream carries OSN events over TCP, mirroring how the
// paper's detector consumed Renren's operational log feed in
// production. Version 2 of the protocol is lossless: events carry
// global sequence numbers and travel in length-prefixed batches, each
// subscriber holds a bounded replay window on the server that is
// trimmed by client acknowledgements, and a subscriber that falls
// behind applies backpressure to the producer instead of losing its
// oldest events. A briefly-disconnected subscriber redials with its
// last delivered sequence and the server replays the gap, so delivery
// is at least once end to end (and exactly once through Subscribe,
// which deduplicates on sequence numbers).
//
// The server is a producer-agnostic broker: events enter either via
// in-process Broadcast calls or from any number of concurrent wire
// producers speaking the publish sub-protocol (phello/pbatch/pack —
// see publish.go and Publisher), all merged by one global sequencer
// into the same totally ordered feed. Producer batches carry
// per-producer sequence numbers so a reconnect's resends deduplicate,
// epochs let a killed-and-restarted deterministic producer resume
// exactly where the broker's log ends, and the downstream eof is
// emitted only after every registered producer has closed its epoch.
//
// With WithSpool the replay path is two-tier: every broadcast batch
// is also appended to a disk spool (internal/spool), and a resume the
// in-memory window can no longer serve — a consumer that fell past
// the window, or one cold-starting from a stale checkpoint — is
// caught up from segment files and handed back to the live ring, so
// ErrGap retreats to genuine retention loss. A subscriber whose
// window fills is likewise demoted to disk catch-up instead of
// stalling the producer.
//
// The wire protocol — framing, the handshake, sequence/ack semantics
// and the resume rules — is specified in docs/ARCHITECTURE.md.
package stream

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"encoding/json"

	"sybilwild/internal/osn"
	"sybilwild/internal/spool"
)

// Server tunables. Each has a ServerOption override; the defaults suit
// production-shaped feeds, tests shrink them to force the edge cases.
const (
	// DefaultReplayBuffer is the per-subscriber replay window: events
	// broadcast but not yet acknowledged. A subscriber holding the
	// producer back for more than the window applies backpressure
	// (or, when a spool is configured, falls back to disk catch-up).
	DefaultReplayBuffer = 16384
	// DefaultMaxBatch caps events per batch frame.
	DefaultMaxBatch = 256
	// DefaultFlushEvery bounds how long a coalescing writer sits on
	// buffered bytes under sustained load.
	DefaultFlushEvery = 2 * time.Millisecond
	// DefaultSessionLinger is how long a disconnected session's replay
	// window is kept for resume before it is evicted.
	DefaultSessionLinger = 30 * time.Second
	// DefaultStallTimeout is how long Broadcast blocks on one full
	// connected subscriber before evicting it (liveness backstop: a
	// dead-but-connected client cannot wedge the feed forever). Not
	// reached when a spool is configured — a full window demotes to
	// disk catch-up instead of blocking.
	DefaultStallTimeout = 30 * time.Second
	// DefaultDrainTimeout bounds Close: per-connection deadline for
	// flushing the remaining window and the eof frame.
	DefaultDrainTimeout = 5 * time.Second

	handshakeTimeout = 10 * time.Second
)

type serverOptions struct {
	replay     int
	maxBatch   int
	flushEvery time.Duration
	linger     time.Duration
	stall      time.Duration
	drain      time.Duration
	spool      *spool.Spool
}

// ServerOption configures NewServer.
type ServerOption func(*serverOptions)

// WithReplayBuffer sets the per-subscriber replay window in events.
func WithReplayBuffer(n int) ServerOption {
	return func(o *serverOptions) {
		if n > 0 {
			o.replay = n
		}
	}
}

// WithMaxBatch sets the maximum events per batch frame.
func WithMaxBatch(n int) ServerOption {
	return func(o *serverOptions) {
		if n > 0 {
			o.maxBatch = n
		}
	}
}

// WithFlushEvery sets the coalescing writers' flush latency bound.
func WithFlushEvery(d time.Duration) ServerOption {
	return func(o *serverOptions) {
		if d > 0 {
			o.flushEvery = d
		}
	}
}

// WithSessionLinger sets how long a disconnected session may await
// resume before eviction.
func WithSessionLinger(d time.Duration) ServerOption {
	return func(o *serverOptions) {
		if d > 0 {
			o.linger = d
		}
	}
}

// WithStallTimeout sets how long Broadcast waits on one full connected
// subscriber before evicting it (spool-less servers only).
func WithStallTimeout(d time.Duration) ServerOption {
	return func(o *serverOptions) {
		if d > 0 {
			o.stall = d
		}
	}
}

// WithDrainTimeout sets the per-connection flush deadline Close
// applies.
func WithDrainTimeout(d time.Duration) ServerOption {
	return func(o *serverOptions) {
		if d > 0 {
			o.drain = d
		}
	}
}

// WithSpool attaches a disk spool as the second replay tier: every
// broadcast is appended to it, resumes the memory window cannot serve
// are caught up from its segments, and a subscriber overflowing its
// window is demoted to disk catch-up instead of applying backpressure
// or being evicted. The server adopts the spool's last sequence as
// its own starting sequence, so a restarted producer reusing a spool
// directory keeps the log gapless. Retention pruning runs on segment
// roll, pinned to the minimum acknowledged sequence across sessions.
func WithSpool(sp *spool.Spool) ServerOption {
	return func(o *serverOptions) { o.spool = sp }
}

// Server broadcasts events to TCP subscribers with at-least-once
// delivery. Events enter the feed two ways, freely mixed: in-process
// Broadcast calls, and wire producers speaking the publish
// sub-protocol (see publish.go) — both run through the same global
// sequencer, so the downstream feed is one totally ordered sequence
// space regardless of how many producers feed it. Broadcast and Close
// must not overlap (wire producers need no such care: a closing
// sequencer refuses their batches); Broadcast itself is safe for
// concurrent use.
type Server struct {
	ln  net.Listener
	opt serverOptions

	mu       sync.Mutex
	sessions map[string]*session
	seq      uint64 // last sequence number assigned
	closing  bool
	bcast    [1]osn.Event // reusable single-event batch for spool appends

	// Wire-producer ingest (publish sub-protocol; see publish.go).
	producers       map[string]*producerState
	expectProducers int // producer group size, fixed by the first phello
	eofed           int // producers that closed their epoch
	ingestDone      chan struct{}

	delivered atomic.Uint64
	evicted   atomic.Uint64

	// Snapshot rendezvous: latest offered detector snapshot per
	// partition key (snapshot sub-protocol; see snapshot.go).
	snapMu sync.Mutex
	snaps  map[snapKey]snapVal

	spoolBroken atomic.Bool // a spool write failed; disk tier is offline
	spoolErrMu  sync.Mutex
	spoolErr    error

	wg sync.WaitGroup
}

// session is one subscriber's server-side state: a bounded ring of
// events awaiting acknowledgement, cursors into it, and the (possibly
// nil, while disconnected) current connection.
//
// A session is in exactly one of two modes. Live: the writer drains
// the ring, which Broadcast appends to. Catch-up (spool servers
// only): the ring is empty, the writer streams batches from the disk
// spool, and Broadcast merely notes the advancing head (feedSeq);
// when the catch-up reaches the head the session flips back to live
// atomically with respect to Broadcast.
//
// A partitioned session (parts > 0) additionally filters: append only
// rings events its partition receives (osn.PartitionDelivers), each
// stamped with its global sequence in the parallel seqs ring, and the
// writer emits fbatch frames whose "last" cursor also covers the
// filtered-out foreign events — so acks, window trims, spool
// retention, and resume all keep working in global feed coordinates
// while only the partition's slice crosses the wire.
type session struct {
	id  string
	srv *Server

	// Partitioned subscription (immutable after creation); parts == 0
	// means the full feed.
	part  int
	parts int

	mu   sync.Mutex
	cond *sync.Cond  // writer wake: pending events, acks, close, or conn change
	ring []osn.Event // circular; holds seqs (base, base+n]
	head int         // ring index of seq base+1
	n    int
	// Partitioned sessions only: seqs[i] is the global sequence of
	// ring[i] (the slice is sparse, so ring arithmetic cannot derive
	// it), and sentIdx counts ring entries (from head) the writer has
	// already framed. Unpartitioned sessions derive both from the
	// contiguous cursors below.
	seqs    []uint64
	sentIdx int
	// Cursors: acked ≤ sent, base ≤ sent ≤ base+n. In live mode the
	// ring holds (base, base+n]: (base, sent] are in flight, (sent,
	// base+n] await the writer, and base tracks acked. In catch-up
	// mode the ring is empty and (acked, sent] are in flight from
	// disk; base is reset to sent when the session flips live, so
	// base can run ahead of acked until the client's acks catch up.
	// Partitioned sessions use the same cursors in global feed
	// coordinates: sent is the cursor covered by emitted frames (an
	// fbatch's "last"), base the trim floor — entries still rung have
	// sequences > base.
	acked uint64
	sent  uint64
	base  uint64

	catchup bool   // writer streams from the spool instead of the ring
	feedSeq uint64 // highest sequence Broadcast has shown this session

	conn       net.Conn // nil while detached
	gen        int      // connection generation; stale writers exit on mismatch
	detachedAt time.Time
	closing    bool
	gone       bool // evicted: removed from srv.sessions

	space chan struct{} // capacity 1; producer wake after ack trim or detach
}

// ServerStats is a snapshot of feed accounting.
type ServerStats struct {
	Broadcast uint64 // events broadcast (highest sequence assigned)
	// Delivered sums acknowledged feed-cursor progress across
	// subscribers. Partitioned subscribers acknowledge global cursor
	// positions (their acks also cover foreign events they never
	// received), so with K partitions Delivered approaches K× the
	// broadcast count even though each event crossed the wire once.
	Delivered uint64
	Sessions  int    // sessions held (connected or lingering for resume)
	Evicted   uint64 // sessions evicted with unrecoverable undelivered events — the only loss path
	// PerSession breaks lag down by subscriber, sorted worst-lagging
	// first, so an operator can see which consumer is holding the feed
	// back before the stall timeout evicts it.
	PerSession []SessionStats
	// PerProducer breaks ingest down by wire producer (publish
	// sub-protocol), sorted by id. Broadcast above remains the global
	// sent count: every producer's events land in the one sequence
	// space, so an audit against Delivered must use it, not any single
	// producer's count.
	PerProducer []ProducerStats
	// Spool accounting, when a disk tier is configured. SpoolFirst is
	// the oldest retained sequence (resumes reach back this far);
	// SpoolErr reports the write failure that took the disk tier
	// offline, if any.
	SpoolFirst uint64
	SpoolEnd   uint64
	SpoolErr   string
	// Snapshots lists the detector snapshots currently held for
	// handoff, sorted by (parts, part).
	Snapshots []SnapshotStats
}

// SessionStats is one subscriber session's flow-control view.
type SessionStats struct {
	ID        string  // client-chosen session id
	Connected bool    // false while lingering for resume
	CatchUp   bool    // serving from the disk spool, not the live ring
	Part      int     // partition index (meaningful when Parts > 0)
	Parts     int     // partition group size; 0 = full feed
	Acked     uint64  // highest sequence the client has acknowledged
	Behind    uint64  // events behind the feed head (broadcast − acked)
	Buffered  int     // replay-window fill: events held awaiting ack
	Window    int     // replay-window capacity
	Fill      float64 // Buffered/Window; at 1.0 this session stalls a spool-less Broadcast
}

// SnapshotStats describes one held snapshot in the broker's
// rendezvous store.
type SnapshotStats struct {
	Part  int    // partition the snapshot covers
	Parts int    // partition group size
	Seq   uint64 // feed sequence the snapshot is stamped at
	Bytes int    // serialized payload size
}

// NewServer listens on addr (e.g. "127.0.0.1:0") and starts accepting
// subscribers.
func NewServer(addr string, opts ...ServerOption) (*Server, error) {
	o := serverOptions{
		replay:     DefaultReplayBuffer,
		maxBatch:   DefaultMaxBatch,
		flushEvery: DefaultFlushEvery,
		linger:     DefaultSessionLinger,
		stall:      DefaultStallTimeout,
		drain:      DefaultDrainTimeout,
	}
	for _, fn := range opts {
		fn(&o)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("stream: listen: %w", err)
	}
	s := &Server{
		ln:         ln,
		opt:        o,
		sessions:   make(map[string]*session),
		producers:  make(map[string]*producerState),
		ingestDone: make(chan struct{}),
	}
	if o.spool != nil {
		// Adopt the spooled log's position: a restarted producer
		// continues the sequence space instead of reusing numbers the
		// spool already assigned to different events.
		s.seq = o.spool.End()
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// spoolUsable reports whether the disk tier can serve and accept
// data.
func (s *Server) spoolUsable() bool {
	return s.opt.spool != nil && !s.spoolBroken.Load()
}

// Broadcast assigns the event the next sequence number, appends it to
// the spool (when configured), and appends it to every session's
// replay window. Without a spool it blocks — up to the stall timeout
// per subscriber — when a connected subscriber's window is full, so a
// slow consumer slows the feed down instead of losing events; with a
// spool the full subscriber is demoted to disk catch-up and the feed
// keeps flowing. Safe for concurrent use; must not overlap Close.
func (s *Server) Broadcast(ev osn.Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	if s.spoolUsable() {
		s.bcast[0] = ev
		rolled, err := s.opt.spool.Append(s.seq, s.bcast[:1])
		if err != nil {
			// The disk tier is gone, loudly; the memory tier keeps the
			// feed alive with its original semantics.
			s.spoolBroken.Store(true)
			s.spoolErrMu.Lock()
			s.spoolErr = err
			s.spoolErrMu.Unlock()
			log.Printf("stream: spool append failed, disk replay tier offline: %v", err)
		} else if rolled {
			s.opt.spool.Prune(s.minAckedLocked())
		}
	}
	for _, sess := range s.sessions {
		sess.append(ev, s.seq) // may evict, deleting from s.sessions (safe during range)
	}
}

// minAckedLocked is the retention floor: the lowest acknowledged
// sequence across live sessions. Caller holds s.mu.
func (s *Server) minAckedLocked() uint64 {
	floor := s.seq
	for _, sess := range s.sessions {
		sess.mu.Lock()
		if sess.acked < floor {
			floor = sess.acked
		}
		sess.mu.Unlock()
	}
	return floor
}

// append adds ev (sequence seq) to the session's window, blocking
// while a spool-less connected subscriber's window is full. Caller
// holds srv.mu (evictions mutate the session table). Returns false if
// the session was evicted.
func (sess *session) append(ev osn.Event, seq uint64) bool {
	sess.mu.Lock()
	sess.feedSeq = seq
	if sess.parts > 0 && !osn.PartitionDelivers(ev, sess.part, sess.parts) {
		// Foreign event: this partition never receives it — only the
		// subscriber's cursor moves. The writer is woken so it can emit
		// a cursor-advance frame once enough silent feed accumulates
		// (its wait condition measures feedSeq − sent); the ring cannot
		// overflow on foreign events, so none of the backpressure or
		// demotion machinery below applies. The linger clock still
		// does: a detached partition subscriber expires even if every
		// event in the meantime was foreign.
		if sess.gone || sess.closing {
			alive := !sess.gone
			sess.mu.Unlock()
			return alive
		}
		if sess.conn == nil && time.Since(sess.detachedAt) > sess.srv.opt.linger {
			sess.evictLocked()
			sess.mu.Unlock()
			return false
		}
		sess.cond.Signal()
		sess.mu.Unlock()
		return true
	}
	for {
		if sess.gone || sess.closing {
			alive := !sess.gone
			sess.mu.Unlock()
			return alive
		}
		lingered := sess.conn == nil && time.Since(sess.detachedAt) > sess.srv.opt.linger
		if sess.catchup {
			if lingered {
				// Disk catch-up does not extend a session's lifetime:
				// the resume window still expires (the data survives in
				// the spool for a recreated session).
				sess.evictLocked()
				sess.mu.Unlock()
				return false
			}
			// The spool holds the event; wake a writer waiting at the
			// old head so it keeps reading.
			sess.cond.Signal()
			sess.mu.Unlock()
			return true
		}
		full := sess.n == len(sess.ring)
		if full && sess.srv.spoolUsable() && !lingered {
			// Window overflow with a disk tier: spill to catch-up
			// instead of blocking the producer (connected) or dying
			// (detached). The ring's contents are all in the spool.
			sess.demoteLocked()
			sess.cond.Broadcast()
			sess.mu.Unlock()
			return true
		}
		if sess.conn == nil && (full || lingered) {
			// Nobody to wait for: the window overflowed while detached
			// with no disk tier to spill to, or the resume window
			// expired.
			sess.evictLocked()
			sess.mu.Unlock()
			return false
		}
		if !full {
			break
		}
		// Connected and full, no spool: backpressure, bounded by the
		// stall timeout.
		sess.mu.Unlock()
		timer := time.NewTimer(sess.srv.opt.stall)
		select {
		case <-sess.space:
			timer.Stop()
			sess.mu.Lock()
		case <-timer.C:
			sess.mu.Lock()
			if sess.n == len(sess.ring) && sess.conn != nil && !sess.gone && !sess.closing {
				sess.evictLocked()
				sess.mu.Unlock()
				return false
			}
		}
	}
	idx := (sess.head + sess.n) % len(sess.ring)
	sess.ring[idx] = ev
	if sess.parts > 0 {
		sess.seqs[idx] = seq
	}
	sess.n++
	sess.cond.Signal()
	sess.mu.Unlock()
	return true
}

// demoteLocked switches the session from live ring delivery to spool
// catch-up. The ring is cleared — everything it held is on disk — and
// the writer picks up reading at sent+1. sess.mu must be held.
func (sess *session) demoteLocked() {
	sess.catchup = true
	sess.head, sess.n, sess.sentIdx = 0, 0, 0
	select {
	case sess.space <- struct{}{}:
	default:
	}
}

// evictLocked removes the session permanently. Both srv.mu and sess.mu
// must be held. Loss is only counted when undelivered events die with
// the session irrecoverably — a usable spool still holds them for a
// later resume, so spooled evictions are not loss.
func (sess *session) evictLocked() {
	if sess.gone {
		return
	}
	sess.gone = true
	delete(sess.srv.sessions, sess.id)
	undelivered := sess.n > 0 || (sess.catchup && sess.acked < sess.feedSeq)
	if undelivered && !sess.srv.spoolUsable() {
		sess.srv.evicted.Add(1)
	}
	if sess.conn != nil {
		sess.conn.Close()
		sess.conn = nil
	}
	sess.gen++
	sess.cond.Broadcast()
}

// ackTo processes a client acknowledgement: advance the delivered
// high-water mark, trim the ring past the acked prefix, and wake a
// producer or catch-up writer blocked on the window.
func (sess *session) ackTo(seq uint64) {
	sess.mu.Lock()
	if seq > sess.sent {
		seq = sess.sent // cannot ack what was never sent
	}
	if seq > sess.acked {
		sess.srv.delivered.Add(seq - sess.acked)
		sess.acked = seq
	}
	switch {
	case sess.catchup:
	case sess.parts > 0:
		sess.trimPartLocked(seq)
	case seq > sess.base:
		delta := int(seq - sess.base)
		sess.head = (sess.head + delta) % len(sess.ring)
		sess.n -= delta
		sess.base = seq
		select {
		case sess.space <- struct{}{}:
		default:
		}
	}
	sess.mu.Unlock()
}

// trimPartLocked drops ring entries with sequence ≤ seq from a
// partitioned session's window and advances the trim floor. Acks name
// global feed cursors, so the trim walks the sparse seqs ring instead
// of using contiguous arithmetic. sess.mu must be held.
func (sess *session) trimPartLocked(seq uint64) {
	trimmed := 0
	for sess.n > 0 && sess.seqs[sess.head] <= seq {
		sess.head = (sess.head + 1) % len(sess.ring)
		sess.n--
		trimmed++
	}
	if trimmed > 0 {
		sess.sentIdx -= trimmed
		if sess.sentIdx < 0 {
			sess.sentIdx = 0
		}
		select {
		case sess.space <- struct{}{}:
		default:
		}
	}
	if seq > sess.base {
		sess.base = seq
	}
}

// attachLocked binds conn as the session's current connection, kicking
// any previous one. sess.mu must be held. Returns the new generation.
func (sess *session) attachLocked(conn net.Conn) int {
	if sess.conn != nil {
		sess.conn.Close()
	}
	sess.gen++
	sess.conn = conn
	sess.cond.Broadcast() // stop a stale writer
	select {
	case sess.space <- struct{}{}: // producer may re-evaluate: connected again
	default:
	}
	return sess.gen
}

// detach drops the session's connection (keeping the window for
// resume) if gen is still the current generation.
func (s *Server) detach(sess *session, gen int) {
	sess.mu.Lock()
	if sess.gen == gen && !sess.gone {
		sess.gen++
		if sess.conn != nil {
			sess.conn.Close()
			sess.conn = nil
		}
		sess.detachedAt = time.Now()
		sess.cond.Broadcast()
		select {
		case sess.space <- struct{}{}: // producer must stop waiting on acks
		default:
		}
	}
	sess.mu.Unlock()
}

// evict removes the session under the full lock order (used by the
// catch-up writer when the spool can no longer serve it).
func (s *Server) evict(sess *session) {
	s.mu.Lock()
	sess.mu.Lock()
	sess.evictLocked()
	sess.mu.Unlock()
	s.mu.Unlock()
}

// serveConn performs the handshake, then runs the connection's ack
// reader; the batch writer runs in its own goroutine.
func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
	br := bufio.NewReaderSize(conn, 32<<10)
	payload, err := readFrame(br, nil)
	if err != nil {
		conn.Close()
		return
	}
	var hello frame
	if err := json.Unmarshal(payload, &hello); err != nil {
		writeControl(conn, frame{T: frameWelcome, V: ProtocolVersion, Err: "malformed hello"})
		conn.Close()
		return
	}
	if hello.V != ProtocolVersion {
		t := frameWelcome
		switch hello.T {
		case framePHello:
			t = framePWelcome
		case frameSnapOffer:
			t = frameSnapOK
		case frameSnapFetch:
			t = frameSnap
		}
		writeControl(conn, frame{T: t, V: ProtocolVersion,
			Err: fmt.Sprintf("unsupported protocol version %d", hello.V)})
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})
	switch hello.T {
	case framePHello:
		// The connection is a wire producer, not a subscriber: hand it
		// to the ingest path (publish.go).
		s.servePublisher(conn, br, hello, payload)
		return
	case frameSnapOffer:
		s.serveSnapOffer(conn, br, hello)
		return
	case frameSnapFetch:
		s.serveSnapFetch(conn, hello)
		return
	}
	if hello.T != frameHello || hello.Session == "" {
		writeControl(conn, frame{T: frameWelcome, V: ProtocolVersion, Err: "malformed hello"})
		conn.Close()
		return
	}

	sess, gen, from, reject := s.admit(hello, conn)
	if reject != "" {
		writeControl(conn, frame{T: frameWelcome, V: ProtocolVersion, Err: reject})
		conn.Close()
		return
	}
	if err := writeControl(conn, frame{T: frameWelcome, V: ProtocolVersion, From: from}); err != nil {
		s.detach(sess, gen)
		return
	}
	s.wg.Add(1)
	go s.writer(sess, conn, gen)

	// Ack reader: this goroutine owns conn teardown via detach.
	for {
		payload, err := readFrame(br, payload)
		if err != nil {
			s.detach(sess, gen)
			return
		}
		var f frame
		if json.Unmarshal(payload, &f) == nil && f.T == frameAck {
			sess.ackTo(f.Ack)
		}
	}
}

// admit registers or resumes the session named in hello and attaches
// conn to it. It returns the session, the connection generation and
// the first sequence the writer will send, or a rejection reason.
//
// Resume resolution is two-tier: the session's in-memory ring first;
// then, when the requested sequence has left memory (trimmed, window
// overflowed, session evicted or never known), the disk spool — the
// session is (re)created in catch-up mode and served from segments
// until it reaches the head. Only a sequence below the spool's
// retained range, or a missing/broken spool, rejects.
func (s *Server) admit(hello frame, conn net.Conn) (sess *session, gen int, from uint64, reject string) {
	// Normalize the partition request: a group of one is the full
	// feed, served on the cheaper contiguous path.
	if hello.Parts == 1 {
		hello.Part, hello.Parts = 0, 0
	}
	if hello.Parts < 0 || hello.Part < 0 || (hello.Parts > 0 && hello.Part >= hello.Parts) {
		return nil, 0, 0, "invalid partition"
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closing {
		return nil, 0, 0, "server closing"
	}
	sess = s.sessions[hello.Session]
	if sess != nil && hello.Resume > 0 &&
		(sess.parts != hello.Parts || sess.part != hello.Part) {
		// A session's filter is part of its delivery state: the acks
		// and cursors only make sense for the slice they were earned
		// on. Changing partition means starting a fresh session.
		return nil, 0, 0, "partition mismatch for resumed session"
	}
	if hello.Resume == 0 {
		// Fresh subscription from the next broadcast on. Reusing a live
		// session id replaces (evicts) the old session.
		if sess != nil {
			sess.mu.Lock()
			sess.evictLocked()
			sess.mu.Unlock()
		}
		sess = s.newSessionLocked(hello.Session, s.seq, false, hello.Part, hello.Parts)
		sess.mu.Lock()
		gen = sess.attachLocked(conn)
		sess.mu.Unlock()
		return sess, gen, s.seq + 1, ""
	}
	r := hello.Resume
	if r > s.seq+1 {
		return nil, 0, 0, "resume sequence ahead of feed"
	}
	if sess == nil && r == s.seq+1 {
		// Resuming exactly at the head needs no replay from either
		// tier: admit a live session. This is also how a DialFrom(1)
		// subscriber joins an empty feed.
		sess = s.newSessionLocked(hello.Session, s.seq, false, hello.Part, hello.Parts)
		sess.mu.Lock()
		gen = sess.attachLocked(conn)
		sess.mu.Unlock()
		return sess, gen, r, ""
	}
	if sess != nil {
		sess.mu.Lock()
		switch {
		case !sess.catchup && sess.parts == 0 && r > sess.base && r <= sess.base+uint64(sess.n)+1:
			// Memory tier: the ring still holds (or abuts) r.
			// Resuming from r implicitly acknowledges everything
			// before it.
			if r-1 > sess.acked {
				s.delivered.Add(r - 1 - sess.acked)
				sess.acked = r - 1
			}
			if delta := int(r - 1 - sess.base); delta > 0 {
				sess.head = (sess.head + delta) % len(sess.ring)
				sess.n -= delta
				sess.base = r - 1
				select {
				case sess.space <- struct{}{}:
				default:
				}
			}
			sess.sent = r - 1 // rewind: resend anything in flight when the conn died
			gen = sess.attachLocked(conn)
			sess.mu.Unlock()
			return sess, gen, r, ""
		case !sess.catchup && sess.parts > 0 && r > sess.base:
			// Partitioned memory tier: entries ≤ base are trimmed, so
			// r > base means every partition event ≥ r is still rung.
			// Resume implicitly acks below r; the writer resends the
			// whole remaining ring (sentIdx rewinds to 0).
			if r-1 > sess.acked {
				s.delivered.Add(r - 1 - sess.acked)
				sess.acked = r - 1
			}
			sess.trimPartLocked(r - 1)
			sess.sent = r - 1
			sess.sentIdx = 0
			gen = sess.attachLocked(conn)
			sess.mu.Unlock()
			return sess, gen, r, ""
		case sess.catchup && r > sess.acked:
			// Already catching up; rewind the disk cursor to r.
			s.delivered.Add(r - 1 - sess.acked)
			sess.acked = r - 1
			sess.sent = r - 1
			gen = sess.attachLocked(conn)
			sess.mu.Unlock()
			return sess, gen, r, ""
		}
		// The memory tier cannot serve r (trimmed, or a stale client
		// behind its own acks). Fall through to the disk tier with a
		// fresh session object.
		if !s.spoolServes(r) {
			sess.mu.Unlock()
			return nil, 0, 0, "resume sequence already trimmed"
		}
		sess.evictLocked()
		sess.mu.Unlock()
	} else if !s.spoolServes(r) {
		if s.spoolUsable() {
			// A backfilling subscriber (DialFrom) asked below what
			// retention still holds.
			return nil, 0, 0, "resume sequence below the spool retention floor"
		}
		return nil, 0, 0, "unknown session (resume window expired)"
	}
	// Disk tier: catch up from segment files, then flip live.
	sess = s.newSessionLocked(hello.Session, r-1, r <= s.seq, hello.Part, hello.Parts)
	sess.mu.Lock()
	gen = sess.attachLocked(conn)
	sess.mu.Unlock()
	return sess, gen, r, ""
}

// spoolServes reports whether the disk tier retains sequence r.
// Caller holds s.mu.
func (s *Server) spoolServes(r uint64) bool {
	if !s.spoolUsable() {
		return false
	}
	first := s.opt.spool.First()
	return first != 0 && first <= r
}

// newSessionLocked registers a session whose cursors sit at seq
// (acked = sent = base = seq), subscribed to partition part of parts
// (0/0 for the full feed). Caller holds s.mu.
func (s *Server) newSessionLocked(id string, seq uint64, catchup bool, part, parts int) *session {
	sess := &session{
		id:      id,
		srv:     s,
		part:    part,
		parts:   parts,
		ring:    make([]osn.Event, s.opt.replay),
		acked:   seq,
		sent:    seq,
		base:    seq,
		feedSeq: s.seq,
		catchup: catchup,
		space:   make(chan struct{}, 1),
	}
	if parts > 0 {
		sess.seqs = make([]uint64, s.opt.replay)
	}
	sess.cond = sync.NewCond(&sess.mu)
	s.sessions[id] = sess
	return sess
}

// writer drains the session onto one connection, switching between
// live-ring delivery and disk catch-up as the session's mode changes,
// until the connection dies, the generation moves on, or the feed
// ends.
func (s *Server) writer(sess *session, conn net.Conn, gen int) {
	defer s.wg.Done()
	bw := bufio.NewWriterSize(conn, 64<<10)
	for {
		sess.mu.Lock()
		cu := sess.catchup
		stale := sess.gen != gen
		sess.mu.Unlock()
		if stale {
			return
		}
		switch {
		case cu:
			if !s.writeCatchup(sess, conn, bw, gen) {
				return
			}
		case sess.parts > 0:
			if !s.writeLivePart(sess, conn, bw, gen) {
				return
			}
		default:
			if !s.writeLive(sess, conn, bw, gen) {
				return
			}
		}
	}
}

// writeLive drains the session's ring onto the connection in
// coalesced batch frames: up to maxBatch events per frame, flushed
// when the window is momentarily empty or the flush interval elapses.
// At server close it finishes the window, sends the eof frame and
// arms a read deadline so the ack reader also terminates. It returns
// true when the session demoted to catch-up (the caller switches
// loops), false when this writer is done.
func (s *Server) writeLive(sess *session, conn net.Conn, bw *bufio.Writer, gen int) bool {
	scratch := make([]osn.Event, 0, s.opt.maxBatch)
	var payload []byte
	lastFlush := time.Now()
	for {
		sess.mu.Lock()
		for sess.gen == gen && !sess.closing && !sess.catchup &&
			sess.sent == sess.base+uint64(sess.n) {
			sess.cond.Wait()
		}
		if sess.gen != gen {
			sess.mu.Unlock()
			return false
		}
		if sess.catchup {
			sess.mu.Unlock()
			if err := bw.Flush(); err != nil {
				s.detach(sess, gen)
				return false
			}
			return true
		}
		pending := int(sess.base + uint64(sess.n) - sess.sent)
		if pending == 0 { // implies closing: window drained, say goodbye
			sess.mu.Unlock()
			writeControl(bw, frame{T: frameEOF})
			bw.Flush()
			conn.SetReadDeadline(time.Now().Add(s.opt.drain))
			return false
		}
		nb := pending
		if nb > s.opt.maxBatch {
			nb = s.opt.maxBatch
		}
		first := sess.sent + 1
		off := int(sess.sent - sess.base)
		scratch = scratch[:0]
		for k := 0; k < nb; k++ {
			scratch = append(scratch, sess.ring[(sess.head+off+k)%len(sess.ring)])
		}
		sess.sent += uint64(nb)
		drained := sess.sent == sess.base+uint64(sess.n)
		sess.mu.Unlock()

		payload = appendBatchFrame(payload[:0], first, scratch)
		if err := writeFrame(bw, payload); err != nil {
			s.detach(sess, gen)
			return false
		}
		if drained || time.Since(lastFlush) >= s.opt.flushEvery {
			if err := bw.Flush(); err != nil {
				s.detach(sess, gen)
				return false
			}
			lastFlush = time.Now()
		}
	}
}

// advanceEvery is how much silent (filtered-out) feed accumulates
// before a partitioned writer sends an empty fbatch purely to move
// the subscriber's cursor. Cursor advances are what let a partition
// subscriber's acks track the feed head — trimming spool retention
// and resume floors — through stretches owned by other partitions.
// Tied to maxBatch so tests that shrink batches shrink advance
// latency with them.
func (s *Server) advanceEvery() uint64 { return uint64(s.opt.maxBatch) }

// writeLivePart is writeLive for a partitioned session: it drains the
// filtered ring as fbatch frames (per-event global sequences plus the
// covering cursor), and emits empty cursor-advance frames across
// silent stretches of foreign events. Same return contract as
// writeLive.
func (s *Server) writeLivePart(sess *session, conn net.Conn, bw *bufio.Writer, gen int) bool {
	scratch := make([]osn.Event, 0, s.opt.maxBatch)
	seqScratch := make([]uint64, 0, s.opt.maxBatch)
	var payload []byte
	lastFlush := time.Now()
	adv := s.advanceEvery()
	for {
		sess.mu.Lock()
		for sess.gen == gen && !sess.closing && !sess.catchup &&
			sess.sentIdx == sess.n && sess.feedSeq-sess.sent < adv {
			sess.cond.Wait()
		}
		if sess.gen != gen {
			sess.mu.Unlock()
			return false
		}
		if sess.catchup {
			sess.mu.Unlock()
			if err := bw.Flush(); err != nil {
				s.detach(sess, gen)
				return false
			}
			return true
		}
		pending := sess.n - sess.sentIdx
		if pending == 0 {
			last := sess.feedSeq
			if sess.closing {
				// Window drained: final cursor advance (the feed may
				// have ended mid-silence), goodbye, and a read deadline
				// so the ack reader terminates too.
				advance := last > sess.sent
				sess.sent = last
				sess.mu.Unlock()
				if advance {
					payload = appendFBatchFrame(payload[:0], last, nil, nil)
					writeFrame(bw, payload)
				}
				writeControl(bw, frame{T: frameEOF})
				bw.Flush()
				conn.SetReadDeadline(time.Now().Add(s.opt.drain))
				return false
			}
			if last <= sess.sent {
				// Spurious wake (attach/detach broadcast); nothing new.
				sess.mu.Unlock()
				continue
			}
			sess.sent = last
			sess.mu.Unlock()
			payload = appendFBatchFrame(payload[:0], last, nil, nil)
			if err := writeFrame(bw, payload); err != nil {
				s.detach(sess, gen)
				return false
			}
			if err := bw.Flush(); err != nil {
				s.detach(sess, gen)
				return false
			}
			lastFlush = time.Now()
			continue
		}
		nb := pending
		if nb > s.opt.maxBatch {
			nb = s.opt.maxBatch
		}
		scratch, seqScratch = scratch[:0], seqScratch[:0]
		for k := 0; k < nb; k++ {
			idx := (sess.head + sess.sentIdx + k) % len(sess.ring)
			scratch = append(scratch, sess.ring[idx])
			seqScratch = append(seqScratch, sess.seqs[idx])
		}
		sess.sentIdx += nb
		last := seqScratch[nb-1]
		drained := sess.sentIdx == sess.n
		if drained && sess.feedSeq > last {
			// Ring drained: extend the cursor over the trailing foreign
			// run so the subscriber's acks track the feed head.
			last = sess.feedSeq
		}
		sess.sent = last
		sess.mu.Unlock()

		payload = appendFBatchFrame(payload[:0], last, seqScratch, scratch)
		if err := writeFrame(bw, payload); err != nil {
			s.detach(sess, gen)
			return false
		}
		if drained || time.Since(lastFlush) >= s.opt.flushEvery {
			if err := bw.Flush(); err != nil {
				s.detach(sess, gen)
				return false
			}
			lastFlush = time.Now()
		}
	}
}

// writeCatchup streams the gap (sent, head] from the disk spool onto
// the connection, then flips the session back to live delivery
// atomically with Broadcast. Unlike the live ring there is no
// ack-driven flow control here — the data already sits on disk, so a
// slow reader costs no server memory and TCP backpressure alone paces
// the transfer (this is also what lets a manual-ack consumer whose
// acks are sparser than its window catch up without deadlocking). It
// returns true on a successful flip, false when this writer is done
// (conn death, generation change, or an unserviceable spool — which
// evicts the session loudly).
func (s *Server) writeCatchup(sess *session, conn net.Conn, bw *bufio.Writer, gen int) bool {
	sess.mu.Lock()
	from := sess.sent + 1
	told := sess.sent // cursor actually framed to the client (partitioned)
	sess.mu.Unlock()
	rd, err := s.opt.spool.ReadFrom(from)
	if err != nil {
		log.Printf("stream: session %s catch-up at seq %d unserviceable: %v", sess.id, from, err)
		s.evict(sess)
		return false
	}
	defer rd.Close()
	scratch := make([]osn.Event, 0, s.opt.maxBatch)
	var keep []osn.Event
	var keepSeqs []uint64
	var payload []byte
	lastFlush := time.Now()
	adv := s.advanceEvery()
	for {
		sess.mu.Lock()
		if sess.gen != gen || sess.gone {
			sess.mu.Unlock()
			return false
		}
		sess.mu.Unlock()

		first, evs, err := rd.Next(scratch[:0], s.opt.maxBatch)
		switch {
		case errors.Is(err, io.EOF):
			// Reached everything spooled. Flush the wire, then try to
			// flip live: under s.mu no new sequence can be assigned,
			// so sent == s.seq means the ring takes over gaplessly.
			if sess.parts > 0 {
				// Bring the client's cursor current first, so the flip
				// boundary is exact even when the tail of the spool was
				// all foreign events.
				sess.mu.Lock()
				cur := sess.sent
				sess.mu.Unlock()
				if cur > told {
					payload = appendFBatchFrame(payload[:0], cur, nil, nil)
					if werr := writeFrame(bw, payload); werr != nil {
						s.detach(sess, gen)
						return false
					}
					told = cur
				}
			}
			if ferr := bw.Flush(); ferr != nil {
				s.detach(sess, gen)
				return false
			}
			lastFlush = time.Now()
			s.mu.Lock()
			sess.mu.Lock()
			if sess.gen != gen || sess.gone {
				sess.mu.Unlock()
				s.mu.Unlock()
				return false
			}
			if s.seq == sess.sent {
				sess.catchup = false
				sess.base = sess.sent
				sess.head, sess.n, sess.sentIdx = 0, 0, 0
				sess.mu.Unlock()
				s.mu.Unlock()
				return true
			}
			s.mu.Unlock()
			if s.spoolBroken.Load() {
				// The feed ran ahead of a dead spool: this gap can
				// never be served. Loud loss.
				sess.mu.Unlock()
				log.Printf("stream: session %s stranded mid-catch-up by spool failure", sess.id)
				s.evict(sess)
				return false
			}
			// More was broadcast while we flushed; wait for the spool
			// to show it (feedSeq advances after the spool append).
			for sess.gen == gen && !sess.closing && !sess.gone && sess.feedSeq <= sess.sent {
				sess.cond.Wait()
			}
			stale := sess.gen != gen || sess.gone
			sess.mu.Unlock()
			if stale {
				return false
			}
			continue
		case err != nil:
			log.Printf("stream: session %s catch-up read failed: %v", sess.id, err)
			s.evict(sess)
			return false
		}

		end := first + uint64(len(evs)) - 1
		sess.mu.Lock()
		if sess.gen != gen || sess.gone {
			sess.mu.Unlock()
			return false
		}
		sess.sent = end
		sess.mu.Unlock()

		if sess.parts > 0 {
			// Filter the chunk down to the partition's slice; the
			// frame's cursor still covers the whole chunk. A fully
			// foreign chunk is framed only once enough silence has
			// accumulated to be worth a cursor advance.
			keep, keepSeqs = filterPartition(evs, first, sess.part, sess.parts, keep[:0], keepSeqs[:0])
			if len(keep) == 0 && end-told < adv {
				scratch = evs[:0]
				continue
			}
			payload = appendFBatchFrame(payload[:0], end, keepSeqs, keep)
			told = end
		} else {
			payload = appendBatchFrame(payload[:0], first, evs)
		}
		if err := writeFrame(bw, payload); err != nil {
			s.detach(sess, gen)
			return false
		}
		if time.Since(lastFlush) >= s.opt.flushEvery {
			if err := bw.Flush(); err != nil {
				s.detach(sess, gen)
				return false
			}
			lastFlush = time.Now()
		}
		scratch = evs[:0]
	}
}

// filterPartition appends the events of a contiguous run (first
// sequence first) that partition part of parts receives to keep, with
// their global sequences appended in parallel to keepSeqs.
func filterPartition(evs []osn.Event, first uint64, part, parts int, keep []osn.Event, keepSeqs []uint64) ([]osn.Event, []uint64) {
	for i, ev := range evs {
		if osn.PartitionDelivers(ev, part, parts) {
			keep = append(keep, ev)
			keepSeqs = append(keepSeqs, first+uint64(i))
		}
	}
	return keep, keepSeqs
}

// Stats returns a snapshot of feed accounting, including per-session
// subscriber lag and disk-tier bounds.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	seq := s.seq
	per := make([]SessionStats, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sess.mu.Lock()
		st := SessionStats{
			ID:        sess.id,
			Connected: sess.conn != nil,
			CatchUp:   sess.catchup,
			Part:      sess.part,
			Parts:     sess.parts,
			Acked:     sess.acked,
			Buffered:  sess.n,
			Window:    len(sess.ring),
		}
		sess.mu.Unlock()
		if seq > st.Acked {
			st.Behind = seq - st.Acked
		}
		if st.Window > 0 {
			st.Fill = float64(st.Buffered) / float64(st.Window)
		}
		per = append(per, st)
	}
	prod := make([]ProducerStats, 0, len(s.producers))
	for _, p := range s.producers {
		prod = append(prod, ProducerStats{
			ID:          p.id,
			Connected:   p.conn != nil,
			Epoch:       p.epoch,
			Batches:     p.batches,
			Events:      p.events,
			DedupeDrops: p.dups,
			EOF:         p.eof,
		})
	}
	s.mu.Unlock()
	sort.Slice(prod, func(i, j int) bool { return prod[i].ID < prod[j].ID })
	sort.Slice(per, func(i, j int) bool {
		if per[i].Behind != per[j].Behind {
			return per[i].Behind > per[j].Behind
		}
		return per[i].ID < per[j].ID
	})
	st := ServerStats{
		Broadcast:   seq,
		Delivered:   s.delivered.Load(),
		Sessions:    len(per),
		Evicted:     s.evicted.Load(),
		PerSession:  per,
		PerProducer: prod,
	}
	if s.opt.spool != nil {
		st.SpoolFirst = s.opt.spool.First()
		st.SpoolEnd = s.opt.spool.End()
		s.spoolErrMu.Lock()
		if s.spoolErr != nil {
			st.SpoolErr = s.spoolErr.Error()
		}
		s.spoolErrMu.Unlock()
	}
	st.Snapshots = s.snapshotStats()
	return st
}

// NumClients returns the number of currently connected subscribers
// (lingering disconnected sessions not included).
func (s *Server) NumClients() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, sess := range s.sessions {
		sess.mu.Lock()
		if sess.conn != nil {
			n++
		}
		sess.mu.Unlock()
	}
	return n
}

// Close stops accepting, drains every connected subscriber's remaining
// window (bounded by the drain timeout), sends each an eof frame, and
// waits for all connection goroutines to finish. All Broadcast calls
// must have returned. The spool, if any, is not closed — it belongs
// to the caller and outlives the server.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closing = true
	err := s.ln.Close()
	for _, p := range s.producers {
		// Sever producers: any pbatch still in flight is refused by the
		// closing sequencer (ingest checks s.closing), so the cut is
		// clean — the producer's unacked batches stay unacked.
		if p.conn != nil {
			p.conn.Close()
			p.conn = nil
		}
	}
	for id, sess := range s.sessions {
		sess.mu.Lock()
		sess.closing = true
		if sess.conn != nil {
			sess.conn.SetWriteDeadline(time.Now().Add(s.opt.drain))
			sess.cond.Broadcast() // writer: drain, eof, exit
		} else {
			// Nothing to drain to; the window dies with the server
			// (but spooled events survive on disk for a restarted
			// producer).
			sess.gone = true
			if (sess.n > 0 || (sess.catchup && sess.acked < sess.feedSeq)) && !s.spoolUsable() {
				s.evicted.Add(1)
			}
			delete(s.sessions, id)
		}
		sess.mu.Unlock()
	}
	s.mu.Unlock()
	s.wg.Wait()
	s.mu.Lock()
	for id, sess := range s.sessions {
		// Anything still buffered here died undelivered (e.g. the
		// drain deadline cut off a stalled subscriber): that is loss,
		// and loss is always counted — unless the spool still holds
		// it for a future resume against a restarted producer.
		sess.mu.Lock()
		if (sess.n > 0 || (sess.catchup && sess.acked < sess.feedSeq)) && !s.spoolUsable() {
			s.evicted.Add(1)
		}
		sess.gone = true
		sess.mu.Unlock()
		delete(s.sessions, id)
	}
	s.mu.Unlock()
	return err
}
