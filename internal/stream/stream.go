// Package stream carries OSN events over TCP, mirroring how the
// paper's detector consumed Renren's operational log feed in
// production. Version 2 of the protocol is lossless: events carry
// global sequence numbers and travel in length-prefixed batches, each
// subscriber holds a bounded replay window on the server that is
// trimmed by client acknowledgements, and a subscriber that falls
// behind applies backpressure to the producer instead of losing its
// oldest events. A briefly-disconnected subscriber redials with its
// last delivered sequence and the server replays the gap, so delivery
// is at least once end to end (and exactly once through Subscribe,
// which deduplicates on sequence numbers).
//
// The server is a producer-agnostic broker: events enter either via
// in-process Broadcast calls or from any number of concurrent wire
// producers speaking the publish sub-protocol (phello/pbatch/pack —
// see publish.go and Publisher), all merged by one global sequencer
// into the same totally ordered feed. Producer batches carry
// per-producer sequence numbers so a reconnect's resends deduplicate,
// epochs let a killed-and-restarted deterministic producer resume
// exactly where the broker's log ends, and the downstream eof is
// emitted only after every registered producer has closed its epoch.
//
// With WithSpool the replay path is two-tier: every broadcast batch
// is also appended to a disk spool (internal/spool), and a resume the
// in-memory window can no longer serve — a consumer that fell past
// the window, or one cold-starting from a stale checkpoint — is
// caught up from segment files and handed back to the live ring, so
// ErrGap retreats to genuine retention loss. A subscriber whose
// window fills is likewise demoted to disk catch-up instead of
// stalling the producer.
//
// The wire protocol — framing, the handshake, sequence/ack semantics
// and the resume rules — is specified in docs/ARCHITECTURE.md.
package stream

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"encoding/json"

	"sybilwild/internal/osn"
	"sybilwild/internal/spool"
	"sybilwild/internal/wire"
)

// Server tunables. Each has a ServerOption override; the defaults suit
// production-shaped feeds, tests shrink them to force the edge cases.
const (
	// DefaultReplayBuffer is the per-subscriber replay window: events
	// broadcast but not yet acknowledged. A subscriber holding the
	// producer back for more than the window applies backpressure
	// (or, when a spool is configured, falls back to disk catch-up).
	DefaultReplayBuffer = 16384
	// DefaultMaxBatch caps events per batch frame.
	DefaultMaxBatch = 256
	// DefaultFlushEvery bounds how long a coalescing writer sits on
	// buffered bytes under sustained load.
	DefaultFlushEvery = 2 * time.Millisecond
	// DefaultSessionLinger is how long a disconnected session's replay
	// window is kept for resume before it is evicted.
	DefaultSessionLinger = 30 * time.Second
	// DefaultStallTimeout is how long Broadcast blocks on one full
	// connected subscriber before evicting it (liveness backstop: a
	// dead-but-connected client cannot wedge the feed forever). Not
	// reached when a spool is configured — a full window demotes to
	// disk catch-up instead of blocking.
	DefaultStallTimeout = 30 * time.Second
	// DefaultDrainTimeout bounds Close: per-connection deadline for
	// flushing the remaining window and the eof frame.
	DefaultDrainTimeout = 5 * time.Second

	handshakeTimeout = 10 * time.Second
)

type serverOptions struct {
	replay     int
	maxBatch   int
	flushEvery time.Duration
	linger     time.Duration
	stall      time.Duration
	drain      time.Duration
	spool      *spool.Spool
	adopting   bool
}

// withAdopting marks the server as a sequence-adopting relay hop:
// its sequencer is seated by the upstream feed (AdoptFrame), so wire
// producers are rejected — adoption and local sequencing don't mix.
func withAdopting() ServerOption {
	return func(o *serverOptions) { o.adopting = true }
}

// ServerOption configures NewServer.
type ServerOption func(*serverOptions)

// WithReplayBuffer sets the per-subscriber replay window in events.
func WithReplayBuffer(n int) ServerOption {
	return func(o *serverOptions) {
		if n > 0 {
			o.replay = n
		}
	}
}

// WithMaxBatch sets the maximum events per batch frame.
func WithMaxBatch(n int) ServerOption {
	return func(o *serverOptions) {
		if n > 0 {
			o.maxBatch = n
		}
	}
}

// WithFlushEvery sets the coalescing writers' flush latency bound.
func WithFlushEvery(d time.Duration) ServerOption {
	return func(o *serverOptions) {
		if d > 0 {
			o.flushEvery = d
		}
	}
}

// WithSessionLinger sets how long a disconnected session may await
// resume before eviction.
func WithSessionLinger(d time.Duration) ServerOption {
	return func(o *serverOptions) {
		if d > 0 {
			o.linger = d
		}
	}
}

// WithStallTimeout sets how long Broadcast waits on one full connected
// subscriber before evicting it (spool-less servers only).
func WithStallTimeout(d time.Duration) ServerOption {
	return func(o *serverOptions) {
		if d > 0 {
			o.stall = d
		}
	}
}

// WithDrainTimeout sets the per-connection flush deadline Close
// applies.
func WithDrainTimeout(d time.Duration) ServerOption {
	return func(o *serverOptions) {
		if d > 0 {
			o.drain = d
		}
	}
}

// WithSpool attaches a disk spool as the second replay tier: every
// broadcast is appended to it, resumes the memory window cannot serve
// are caught up from its segments, and a subscriber overflowing its
// window is demoted to disk catch-up instead of applying backpressure
// or being evicted. The server adopts the spool's last sequence as
// its own starting sequence, so a restarted producer reusing a spool
// directory keeps the log gapless. Retention pruning runs on segment
// roll, pinned to the minimum acknowledged sequence across sessions.
func WithSpool(sp *spool.Spool) ServerOption {
	return func(o *serverOptions) { o.spool = sp }
}

// Server broadcasts events to TCP subscribers with at-least-once
// delivery. Events enter the feed two ways, freely mixed: in-process
// Broadcast calls, and wire producers speaking the publish
// sub-protocol (see publish.go) — both run through the same global
// sequencer, so the downstream feed is one totally ordered sequence
// space regardless of how many producers feed it. Broadcast and Close
// must not overlap (wire producers need no such care: a closing
// sequencer refuses their batches); Broadcast itself is safe for
// concurrent use.
type Server struct {
	ln  net.Listener
	opt serverOptions

	// mu is the sequencer lock: it covers only sequence assignment,
	// the closing flag, and the producer registry — the phase-1
	// critical section of the batch fan-out. Encoding, the spool
	// append, and per-session delivery all happen after it is
	// released, ordered by the fan-out ticket below, so concurrent
	// producers overlap everything but the sequence assignment itself.
	mu      sync.Mutex
	seq     uint64 // last sequence number assigned
	closing bool

	// Wire-producer ingest (publish sub-protocol; see publish.go),
	// guarded by mu.
	producers       map[string]*producerState
	expectProducers int // producer group size, fixed by the first phello
	eofed           int // producers that closed their epoch
	ingestDone      chan struct{}

	// smu guards the sessions map — and nothing else. It is a leaf
	// lock in the order mu → sess.mu → smu: eviction deletes a map
	// entry while holding its sess.mu, and fan-out/Stats snapshot the
	// session list under smu alone, then release it before touching
	// any sess.mu.
	smu      sync.Mutex
	sessions map[string]*session

	// Fan-out ticket: batches acquire sequence ranges under mu, then
	// hit the spool and the sessions strictly in sequence order.
	// fanNext is the first sequence whose batch has not yet completed
	// fan-out; Close waits for fanNext == seq+1 before draining.
	fanMu   sync.Mutex
	fanCond *sync.Cond
	fanNext uint64
	// fanScratch is the session-snapshot buffer reused across fan-outs
	// (safe: the ticket serializes the fan-out body). Touched only by
	// the batch currently holding the ticket.
	fanScratch []*session

	// Incremental spool-retention floor: the min acked sequence
	// across sessions, recomputed (under smu) only when floorStale —
	// set by session churn and by acks that advance the current floor
	// — so a segment roll's Prune is O(1) in the common case.
	ackFloor   atomic.Uint64
	floorStale atomic.Bool

	encodes   atomic.Uint64 // canonical batch/fbatch frame encodes (observability)
	delivered atomic.Uint64
	evicted   atomic.Uint64

	// Relay tier: adopted counts events ingested in sequence-adopting
	// mode (AdoptFrame — upstream frames re-served without an encode);
	// hop is this broker's depth in a relay tree (0 = root), learned
	// from the upstream welcome by the owning Relay and echoed in every
	// welcome this server sends.
	adopted atomic.Uint64
	hop     atomic.Int32

	// Live-rebalance coordination (rebalance sub-protocol; see
	// rebalance.go), guarded by mu — fences are installed under the
	// sequencer lock so the barrier is exact and admission checks see
	// them atomically. fences holds the active admission fence per OLD
	// group size (an entry outlives its commit: a stale worker of a
	// retired shape must never be re-admitted past the barrier);
	// rebLog is the append-only audit of every rebalance prepared on
	// this server. claims maps a partition key to the session id a
	// standby reserved it for; everSeen records keys that ever
	// admitted a subscriber (so a standby can tell "worker died" from
	// "worker never started").
	fences   map[int]*fence
	rebLog   []*fence
	claims   map[partKey]claim
	everSeen map[partKey]bool

	// Snapshot rendezvous: latest offered detector snapshot per
	// partition key (snapshot sub-protocol; see snapshot.go).
	snapMu sync.Mutex
	snaps  map[snapKey]snapVal

	spoolBroken atomic.Bool // a spool write failed; disk tier is offline
	spoolErrMu  sync.Mutex
	spoolErr    error

	wg sync.WaitGroup
}

// chunk is one immutable pre-encoded slice of the feed: up to maxBatch
// events encoded exactly once into a canonical frame payload, then
// shared by reference — the spool appends the same bytes every
// subscriber socket writes. For an unpartitioned chunk the payload is
// a batch frame and first..last is a contiguous run. For a filtered
// chunk (parts > 0, built once per partition per batch and shared by
// every session on that partition) the payload is an fbatch frame,
// first/last are the first/last sequences the partition owns inside
// the source chunk, n counts only those, and cursor — the source
// chunk's end — is the feed position the frame advances the
// subscriber to.
type chunk struct {
	first   uint64
	last    uint64
	n       int
	cursor  uint64
	payload []byte
	part    int
	parts   int
}

// partKey identifies one shared partition filter.
type partKey struct{ part, parts int }

// fence is one live rebalance: partition group `from` is cut at
// `barrier` in favour of a group of `nparts`. Guarded by Server.mu.
type fence struct {
	from      int
	nparts    int
	barrier   uint64
	committed bool
}

// claim reserves a partition key for a standby's promotion session.
// Guarded by Server.mu; expires after the session linger.
type claim struct {
	session string
	at      time.Time
}

// session is one subscriber's server-side state: a bounded window of
// shared frame chunks awaiting acknowledgement, cursors over the feed,
// and the (possibly nil, while disconnected) current connection.
//
// A session is in exactly one of two modes. Live: the writer drains
// the chunk queue, which fan-out appends to. Catch-up (spool servers
// only): the queue is empty, the writer streams frames from the disk
// spool, and fan-out merely notes the advancing head (feedSeq); when
// the catch-up reaches the head the session flips back to live.
//
// A partitioned session (parts > 0) queues the shared filtered chunks
// built once per (part, parts) per batch — the writer forwards their
// fbatch payloads verbatim, so acks, window trims, spool retention,
// and resume all keep working in global feed coordinates while only
// the partition's slice crosses the wire.
type session struct {
	id  string
	srv *Server

	// Partitioned subscription (immutable after creation); parts == 0
	// means the full feed.
	part  int
	parts int

	// relay marks a subscriber that identified itself as an interior
	// relay hop (hello "relay":true) — audit only, delivery is
	// identical. Sticky across resumes; guarded by mu.
	relay bool

	window int // replay-window capacity in events (immutable)

	mu   sync.Mutex
	cond *sync.Cond // writer wake: pending chunks, acks, close, or conn change

	// chunks is the replay window: pre-encoded shared chunks in feed
	// order, chunks[:sentChunks] already framed to the client and
	// awaiting ack, the rest awaiting the writer. buffered counts the
	// events they hold against the window capacity: for an
	// unpartitioned session it is exactly tail−base (the front chunk
	// may be partially acknowledged), for a partitioned session the
	// sum of queued chunks' owned events (trimmed chunk-at-a-time
	// when a whole chunk falls at or below the ack).
	chunks     []*chunk
	sentChunks int
	buffered   int

	// Cursors: acked ≤ sent ≤ feedSeq, base ≤ sent. In live mode
	// (base, base+buffered] is windowed: (base, sent] in flight,
	// the rest awaiting the writer, base tracking acked. In catch-up
	// mode the queue is empty and (acked, sent] are in flight from
	// disk; base is reset to sent when the session flips live, so
	// base can run ahead of acked until the client's acks catch up.
	// Partitioned sessions use the same cursors in global feed
	// coordinates: sent is the cursor covered by emitted frames (an
	// fbatch's "last"), base the trim floor — queued chunks hold
	// sequences > base.
	acked uint64
	sent  uint64
	base  uint64

	// ackedA mirrors acked for the lock-free retention-floor scan
	// (srv.ackFloor); it is written only under mu.
	ackedA atomic.Uint64

	catchup bool   // writer streams from the spool instead of the queue
	feedSeq uint64 // highest sequence fan-out has shown this session

	// Rebalance fence (sticky once set): this session receives nothing
	// past fencedAt; once everything at or below it is framed, the
	// writer emits a rebal announcement naming fenceNew and ends the
	// subscription. Set under sess.mu, either by the prepare walking
	// live sessions or by admit for sessions (re)joining a fenced
	// group.
	fencedAt uint64
	fenceNew int

	conn       net.Conn // nil while detached
	gen        int      // connection generation; stale writers exit on mismatch
	detachedAt time.Time
	closing    bool
	gone       bool // evicted: removed from srv.sessions

	space chan struct{} // capacity 1; producer wake after ack trim or detach
}

// ServerStats is a snapshot of feed accounting.
type ServerStats struct {
	Broadcast uint64 // events broadcast (highest sequence assigned)
	// Delivered sums acknowledged feed-cursor progress across
	// subscribers. Partitioned subscribers acknowledge global cursor
	// positions (their acks also cover foreign events they never
	// received), so with K partitions Delivered approaches K× the
	// broadcast count even though each event crossed the wire once.
	Delivered uint64
	Sessions  int    // sessions held (connected or lingering for resume)
	Evicted   uint64 // sessions evicted with unrecoverable undelivered events — the only loss path
	// Encodes counts canonical batch/fbatch frame encodes performed —
	// the fan-out hot path's unit of work. Shared-frame delivery keeps
	// it O(events/maxBatch + partitions) per batch regardless of the
	// subscriber count (each batch is encoded once, not once per
	// session); catch-up suffix trims and partitioned disk catch-up
	// add to it.
	Encodes uint64
	// Adopted counts events ingested in sequence-adopting mode
	// (AdoptFrame): upstream-sequenced frames re-served as shared bytes
	// with no local encode. On an interior relay hop Broadcast ==
	// Adopted and Encodes stays 0 (barring mid-frame resume suffixes).
	Adopted uint64
	// Hop is this broker's depth in a relay tree: 0 for a root broker
	// (local sequencer), n for a relay n hops below the root.
	Hop int
	// PerSession breaks lag down by subscriber, sorted worst-lagging
	// first, so an operator can see which consumer is holding the feed
	// back before the stall timeout evicts it.
	PerSession []SessionStats
	// PerProducer breaks ingest down by wire producer (publish
	// sub-protocol), sorted by id. Broadcast above remains the global
	// sent count: every producer's events land in the one sequence
	// space, so an audit against Delivered must use it, not any single
	// producer's count.
	PerProducer []ProducerStats
	// Spool accounting, when a disk tier is configured. SpoolFirst is
	// the oldest retained sequence (resumes reach back this far);
	// SpoolErr reports the write failure that took the disk tier
	// offline, if any.
	SpoolFirst uint64
	SpoolEnd   uint64
	SpoolErr   string
	// Snapshots lists the detector snapshots currently held for
	// handoff, sorted by (parts, part).
	Snapshots []SnapshotStats
	// Rebalances is the append-only audit of every rebalance prepared
	// on this broker, in preparation order.
	Rebalances []RebalanceStats
}

// SessionStats is one subscriber session's flow-control view.
type SessionStats struct {
	ID        string  // client-chosen session id
	Connected bool    // false while lingering for resume
	CatchUp   bool    // serving from the disk spool, not the live ring
	Relay     bool    // subscriber identified itself as a relay hop
	Part      int     // partition index (meaningful when Parts > 0)
	Parts     int     // partition group size; 0 = full feed
	Acked     uint64  // highest sequence the client has acknowledged
	Behind    uint64  // events behind the feed head (broadcast − acked)
	Buffered  int     // replay-window fill: events held awaiting ack
	Window    int     // replay-window capacity
	Fill      float64 // Buffered/Window; at 1.0 this session stalls a spool-less Broadcast
}

// RebalanceStats describes one rebalance the broker coordinated:
// the old group shape, the new one, the sequence barrier the cutover
// fenced at, and whether the coordinator committed it.
type RebalanceStats struct {
	From      int    // old partition group size
	To        int    // new partition group size
	Barrier   uint64 // common cut sequence: old owners end at it, new owners start after it
	Committed bool
}

// SnapshotStats describes one held snapshot in the broker's
// rendezvous store.
type SnapshotStats struct {
	Part  int    // partition the snapshot covers
	Parts int    // partition group size
	Seq   uint64 // feed sequence the snapshot is stamped at
	Bytes int    // serialized payload size
}

// NewServer listens on addr (e.g. "127.0.0.1:0") and starts accepting
// subscribers.
func NewServer(addr string, opts ...ServerOption) (*Server, error) {
	o := serverOptions{
		replay:     DefaultReplayBuffer,
		maxBatch:   DefaultMaxBatch,
		flushEvery: DefaultFlushEvery,
		linger:     DefaultSessionLinger,
		stall:      DefaultStallTimeout,
		drain:      DefaultDrainTimeout,
	}
	for _, fn := range opts {
		fn(&o)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("stream: listen: %w", err)
	}
	s := &Server{
		ln:         ln,
		opt:        o,
		sessions:   make(map[string]*session),
		producers:  make(map[string]*producerState),
		fences:     make(map[int]*fence),
		claims:     make(map[partKey]claim),
		everSeen:   make(map[partKey]bool),
		ingestDone: make(chan struct{}),
	}
	if o.spool != nil {
		// Adopt the spooled log's position: a restarted producer
		// continues the sequence space instead of reusing numbers the
		// spool already assigned to different events.
		s.seq = o.spool.End()
	}
	s.fanCond = sync.NewCond(&s.fanMu)
	s.fanNext = s.seq + 1
	s.floorStale.Store(true)
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// HeadSeq returns the highest global sequence assigned on this feed —
// a relay resumes its upstream subscription from HeadSeq()+1, which
// after a restart is the spool's adopted end.
func (s *Server) HeadSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// spoolUsable reports whether the disk tier can serve and accept
// data.
func (s *Server) spoolUsable() bool {
	return s.opt.spool != nil && !s.spoolBroken.Load()
}

// Broadcast assigns the event the next sequence number and runs it
// through the batch fan-out core (it is BroadcastBatch of one event —
// callers with more than one event at hand should pass the whole
// batch, which spools and fans out a single shared frame per maxBatch
// run instead of one per event). Safe for concurrent use; must not
// overlap Close.
func (s *Server) Broadcast(ev osn.Event) {
	evs := [1]osn.Event{ev}
	s.BroadcastBatch(evs[:])
}

// BroadcastBatch assigns the events one contiguous run of sequence
// numbers and fans the batch out: the canonical frame is encoded
// exactly once per maxBatch chunk under no lock, appended to the
// spool (when configured), and shared by reference with every
// session's replay window — N subscribers cost N queue appends, not N
// re-encodes. Without a spool it blocks — up to the stall timeout per
// subscriber — while a connected subscriber's window is full, so a
// slow consumer slows the feed down instead of losing events; with a
// spool the full subscriber is demoted to disk catch-up and the feed
// keeps flowing. Safe for concurrent use (concurrent batches
// interleave at sequencing, never within a batch); must not overlap
// Close.
func (s *Server) BroadcastBatch(evs []osn.Event) {
	if len(evs) == 0 {
		return
	}
	s.mu.Lock()
	first := s.seq + 1
	s.seq += uint64(len(evs))
	s.mu.Unlock()
	s.fanout(first, len(evs), func() []osn.Event { return evs }, s.encodeChunks(first, evs))
}

// Conservative per-frame size bounds, used to pre-size chunk payload
// allocations so the canonical encode never pays append-growth
// reallocations (from a nil buffer the doubling growth allocates
// ~2.5x the final frame size — pure GC churn on the hot path).
const (
	framePrefixBound = 64  // tag + 20-digit sequence/cursor + events opener
	batchEventBound  = 128 // one encoded event object, worst-case digits
	fbatchEventBound = 156 // batch event + embedded `"seq":<20 digits>,`
)

// encodeChunks performs the batch's only canonical encode: one shared
// immutable frame payload per maxBatch run. No lock is held — with
// multiple producers the encodes themselves run concurrently; only
// delivery is ordered (by the fan-out ticket).
func (s *Server) encodeChunks(first uint64, evs []osn.Event) []*chunk {
	n := (len(evs) + s.opt.maxBatch - 1) / s.opt.maxBatch
	chunks := make([]*chunk, 0, n)
	slab := make([]chunk, 0, n) // one allocation for all chunk headers
	for off := 0; off < len(evs); off += s.opt.maxBatch {
		end := off + s.opt.maxBatch
		if end > len(evs) {
			end = len(evs)
		}
		cf := first + uint64(off)
		cl := first + uint64(end) - 1
		buf := make([]byte, 0, framePrefixBound+batchEventBound*(end-off))
		slab = append(slab, chunk{
			first:   cf,
			last:    cl,
			n:       end - off,
			cursor:  cl,
			payload: wire.AppendBatch(buf, cf, evs[off:end]),
		})
		chunks = append(chunks, &slab[len(slab)-1])
		s.encodes.Add(1)
	}
	return chunks
}

// ErrAdoptGap is returned by AdoptFrame when a frame starts past the
// local head + 1: sequence adoption preserves the upstream's numbering
// verbatim, so a gap can only mean frames were lost between hops — the
// relay must reconnect and resume rather than paper over it.
var ErrAdoptGap = errors.New("stream: adopted frame out of sequence")

// AdoptFrame ingests one canonical batch frame in sequence-adopting
// mode: the frame keeps the global sequences its upstream broker
// assigned instead of passing through the local sequencer, and its
// payload — already canonical bytes — becomes the shared chunk that
// the spool and every subscriber queue reference. An interior relay
// hop therefore costs zero encodes (the Encodes counter does not move)
// and zero event-level copies; events are decoded from the payload
// only if a partitioned subscriber needs a filtered view, and even
// then only once per frame. The payload is retained by reference — the
// caller must hand over ownership and never reuse its backing array.
//
// Frames must arrive in feed order. A frame entirely at or below the
// head is a reconnect resend and is dropped whole (nil error); one
// straddling the head — a resume that landed mid-frame upstream — has
// its suffix re-encoded locally, the single counted encode on the
// adoption path; one starting past head+1 returns ErrAdoptGap with the
// head untouched. Safe for concurrent use with subscriber traffic, but
// a server has exactly one adopter (its relay's upstream loop) and
// adoption must not be mixed with Broadcast or publish ingest: both
// assign local sequences, which is precisely what adoption forgoes.
func (s *Server) AdoptFrame(payload []byte) error {
	first, n, ok := wire.ParseBatchBounds(payload)
	if !ok {
		return errors.New("stream: adopt: not a canonical batch frame")
	}
	if n == 0 {
		return nil
	}
	last := first + uint64(n) - 1
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return errors.New("stream: adopt: server closing")
	}
	head := s.seq
	s.mu.Unlock()
	switch {
	case last <= head:
		return nil // stale resend: everything here is already adopted
	case first > head+1:
		return fmt.Errorf("%w: head %d, frame starts at %d", ErrAdoptGap, head, first)
	case first <= head:
		// Straddling resend: re-encode the surviving suffix before
		// touching the sequencer, so a corrupt frame can never leave a
		// hole in the fan-out ticket order. This is the one encode
		// adoption pays, at most once per upstream reconnect.
		var ok bool
		payload, _, ok = wire.SuffixBatch(nil, payload, head+1, nil)
		if !ok {
			return fmt.Errorf("stream: adopt: corrupt batch frame at seq %d", first)
		}
		s.encodes.Add(1)
		first = head + 1
		n = int(last - head)
	}
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return errors.New("stream: adopt: server closing")
	}
	if s.seq != first-1 {
		// The head moved between the check and the claim: a second
		// adopter or an interleaved Broadcast — both contract
		// violations. Refuse loudly instead of corrupting the order.
		cur := s.seq
		s.mu.Unlock()
		return fmt.Errorf("stream: adopt: concurrent sequencing (head moved %d → %d)", head, cur)
	}
	s.seq = last
	s.mu.Unlock()
	s.adopted.Add(uint64(n))

	c := &chunk{first: first, last: last, n: n, cursor: last, payload: payload}
	var evs []osn.Event
	s.fanout(first, n, func() []osn.Event {
		if evs == nil {
			var ok bool
			if _, evs, ok = wire.ParseBatch(c.payload, nil); !ok {
				var err error
				if _, evs, err = parseBatchSlow(c.payload, nil); err != nil {
					// Bounds parsed but the body didn't — only a
					// non-canonical upstream encoder gets here. The raw
					// frame already reached full-feed subscribers
					// verbatim; partitioned views degrade to a pure
					// cursor advance rather than crashing the hop.
					log.Printf("stream: adopt: undecodable batch at seq %d: %v", c.first, err)
					evs = make([]osn.Event, c.n)
				}
			}
		}
		return evs
	}, []*chunk{c})
	return nil
}

// fanout delivers one sequenced batch: spool append (the same shared
// bytes), then one queue append per session per chunk. Batches pass
// through strictly in sequence order — each waits for its ticket —
// which is what keeps the spool contiguous and every session's queue
// in feed order while concurrent producers encode in parallel. n is
// the batch's event count; events provides the decoded batch and is
// only called when a partitioned session needs a filtered view — an
// encode-side caller returns the slice it already holds, a relay
// adopting pre-encoded frames decodes on demand, so a hop with no
// partitioned subscribers never decodes at all. The slice events
// returns must remain valid until fanout returns (partition filters
// are built lazily from it, once per (part, parts) and shared across
// sessions).
func (s *Server) fanout(first uint64, n int, events func() []osn.Event, chunks []*chunk) {
	s.fanMu.Lock()
	for s.fanNext != first {
		s.fanCond.Wait()
	}
	s.fanMu.Unlock()

	if s.spoolUsable() {
		for _, c := range chunks {
			rolled, err := s.opt.spool.AppendFrame(c.first, c.n, c.payload)
			if err != nil {
				// The disk tier is gone, loudly; the memory tier keeps
				// the feed alive with its original semantics.
				s.spoolBroken.Store(true)
				s.spoolErrMu.Lock()
				s.spoolErr = err
				s.spoolErrMu.Unlock()
				log.Printf("stream: spool append failed, disk replay tier offline: %v", err)
				break
			}
			if rolled {
				s.pruneSpool(c.last)
			}
		}
	}

	// The fan-out body runs exclusively (the next batch's ticket is
	// granted only at the bottom), so the session snapshot lives in a
	// reused scratch slice instead of a fresh allocation per batch.
	s.smu.Lock()
	sessions := s.fanScratch[:0]
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.fanScratch = sessions
	s.smu.Unlock()

	var fcache map[partKey][]*chunk
	var evs []osn.Event
	for _, sess := range sessions {
		if sess.parts == 0 {
			for _, c := range chunks {
				if !sess.appendChunk(c, c.cursor) {
					break
				}
			}
			continue
		}
		key := partKey{sess.part, sess.parts}
		fchunks, ok := fcache[key]
		if !ok {
			if evs == nil {
				evs = events() // first partitioned session pays the (single) decode
			}
			fchunks = s.filterChunks(chunks, evs, first, sess.part, sess.parts)
			if fcache == nil {
				fcache = make(map[partKey][]*chunk)
			}
			fcache[key] = fchunks
		}
		for i, c := range chunks {
			if !sess.appendChunk(fchunks[i], c.cursor) {
				break
			}
		}
	}

	s.fanMu.Lock()
	s.fanNext = first + uint64(n)
	s.fanCond.Broadcast()
	s.fanMu.Unlock()
}

// filterChunks builds the shared filtered-chunk set for one
// partition: one fbatch payload per source chunk, encoded once and
// queued by every session on the partition; nil where the partition
// owns nothing in a chunk (the cursor-only case).
func (s *Server) filterChunks(chunks []*chunk, evs []osn.Event, first uint64, part, parts int) []*chunk {
	out := make([]*chunk, len(chunks))
	var keep []osn.Event
	var seqs []uint64
	for i, c := range chunks {
		off := int(c.first - first)
		keep, seqs = filterPartition(evs[off:off+c.n], c.first, part, parts, keep[:0], seqs[:0])
		if len(keep) == 0 {
			continue
		}
		buf := make([]byte, 0, framePrefixBound+fbatchEventBound*len(keep))
		out[i] = &chunk{
			first:   seqs[0],
			last:    seqs[len(seqs)-1],
			n:       len(keep),
			cursor:  c.cursor,
			payload: wire.AppendFBatch(buf, c.cursor, seqs, keep),
			part:    part,
			parts:   parts,
		}
		s.encodes.Add(1)
	}
	return out
}

// waitFanned blocks until the batch containing seq has completed
// fan-out — in particular, until the spool holds it. Catch-up writers
// use it to bridge the window between sequence assignment and the
// spool append without spinning.
func (s *Server) waitFanned(seq uint64) {
	s.fanMu.Lock()
	for s.fanNext <= seq {
		s.fanCond.Wait()
	}
	s.fanMu.Unlock()
}

// pruneSpool runs retention after a segment roll, pinned to the ack
// floor. The floor is cached: the scan over sessions only reruns when
// session churn or a floor-advancing ack marked it stale, so the
// common roll is O(1). Holding smu across the compute-and-prune pair
// closes the race with a catch-up admit — a session resuming from the
// spool becomes visible to the scan (and re-checks retention) under
// the same lock, so pruning can never pass a just-admitted reader.
func (s *Server) pruneSpool(head uint64) {
	s.smu.Lock()
	floor := s.ackFloor.Load()
	if s.floorStale.Load() {
		s.floorStale.Store(false)
		floor = head
		for _, sess := range s.sessions {
			if a := sess.ackedA.Load(); a < floor {
				floor = a
			}
		}
		s.ackFloor.Store(floor)
	}
	s.opt.spool.Prune(floor)
	s.smu.Unlock()
}

// appendChunk adds one shared chunk to the session's window, blocking
// while a spool-less connected subscriber's window is full. A nil
// chunk (partitioned sessions: the partition owns nothing in this
// run) and a chunk at or below the session's base (admitted after the
// batch was sequenced; its cursors already cover it) only advance the
// feed cursor. cursor is the feed position the run ends at. Returns
// false if the session was evicted.
func (sess *session) appendChunk(c *chunk, cursor uint64) bool {
	sess.mu.Lock()
	if cursor > sess.feedSeq {
		sess.feedSeq = cursor
	}
	if f := sess.fencedAt; f > 0 {
		// Fenced session: nothing past the barrier is ever queued or
		// covered. The barrier falls on a batch boundary (both are
		// assigned under the sequencer lock) and a chunk never spans
		// batches, so a chunk is pre- or post-barrier wholesale.
		if sess.feedSeq > f {
			sess.feedSeq = f
		}
		if c != nil && c.first > f {
			c = nil
		}
	}
	if c == nil || c.last <= sess.base {
		// Foreign run: only the subscriber's cursor moves. The writer
		// is woken so it can emit a cursor-advance frame once enough
		// silent feed accumulates (its wait condition measures feedSeq
		// − sent); the window cannot overflow on foreign runs, so none
		// of the backpressure or demotion machinery below applies. The
		// linger clock still does: a detached partition subscriber
		// expires even if every event in the meantime was foreign.
		if sess.gone || sess.closing {
			alive := !sess.gone
			sess.mu.Unlock()
			return alive
		}
		if sess.conn == nil && time.Since(sess.detachedAt) > sess.srv.opt.linger {
			sess.evictLocked()
			sess.mu.Unlock()
			return false
		}
		sess.cond.Signal()
		sess.mu.Unlock()
		return true
	}
	for {
		if sess.gone || sess.closing {
			alive := !sess.gone
			sess.mu.Unlock()
			return alive
		}
		lingered := sess.conn == nil && time.Since(sess.detachedAt) > sess.srv.opt.linger
		if sess.catchup {
			if lingered {
				// Disk catch-up does not extend a session's lifetime:
				// the resume window still expires (the data survives in
				// the spool for a recreated session).
				sess.evictLocked()
				sess.mu.Unlock()
				return false
			}
			// The spool holds the chunk; wake a writer waiting at the
			// old head so it keeps reading.
			sess.cond.Signal()
			sess.mu.Unlock()
			return true
		}
		// An empty window always accepts a chunk (even one larger than
		// the window — transient overfill beats a permanent wedge when
		// window < maxBatch); otherwise the whole chunk must fit.
		full := sess.buffered > 0 && sess.buffered+c.n > sess.window
		if full && sess.srv.spoolUsable() && !lingered {
			// Window overflow with a disk tier: spill to catch-up
			// instead of blocking the producer (connected) or dying
			// (detached). The window's contents are all in the spool.
			sess.demoteLocked()
			sess.cond.Broadcast()
			sess.mu.Unlock()
			return true
		}
		if sess.conn == nil && (full || lingered) {
			// Nobody to wait for: the window overflowed while detached
			// with no disk tier to spill to, or the resume window
			// expired.
			sess.evictLocked()
			sess.mu.Unlock()
			return false
		}
		if !full {
			break
		}
		// Connected and full, no spool: backpressure, bounded by the
		// stall timeout.
		sess.mu.Unlock()
		timer := time.NewTimer(sess.srv.opt.stall)
		select {
		case <-sess.space:
			timer.Stop()
			sess.mu.Lock()
		case <-timer.C:
			sess.mu.Lock()
			if sess.buffered > 0 && sess.buffered+c.n > sess.window &&
				sess.conn != nil && !sess.gone && !sess.closing {
				sess.evictLocked()
				sess.mu.Unlock()
				return false
			}
		}
	}
	sess.chunks = append(sess.chunks, c)
	sess.buffered += c.n
	sess.cond.Signal()
	sess.mu.Unlock()
	return true
}

// demoteLocked switches the session from live queue delivery to spool
// catch-up. The queue is cleared — everything it held is on disk —
// and the writer picks up reading at sent+1. sess.mu must be held.
func (sess *session) demoteLocked() {
	sess.catchup = true
	sess.chunks = nil
	sess.sentChunks = 0
	sess.buffered = 0
	select {
	case sess.space <- struct{}{}:
	default:
	}
}

// evictLocked removes the session permanently. sess.mu must be held
// (smu is taken inside, just for the map delete — the identity check
// keeps a delayed eviction from deleting a newer session reusing the
// id). Loss is only counted when undelivered events die with the
// session irrecoverably — a usable spool still holds them for a later
// resume, so spooled evictions are not loss.
func (sess *session) evictLocked() {
	if sess.gone {
		return
	}
	sess.gone = true
	srv := sess.srv
	srv.smu.Lock()
	if srv.sessions[sess.id] == sess {
		delete(srv.sessions, sess.id)
	}
	srv.smu.Unlock()
	srv.floorStale.Store(true)
	undelivered := sess.buffered > 0 || (sess.catchup && sess.acked < sess.feedSeq)
	if undelivered && !srv.spoolUsable() {
		srv.evicted.Add(1)
	}
	if sess.conn != nil {
		sess.conn.Close()
		sess.conn = nil
	}
	sess.gen++
	sess.cond.Broadcast()
	select {
	case sess.space <- struct{}{}: // unblock a producer stalled on this window
	default:
	}
}

// ackTo processes a client acknowledgement: advance the delivered
// high-water mark, trim fully-acknowledged chunks, and wake a
// producer or catch-up writer blocked on the window.
func (sess *session) ackTo(seq uint64) {
	sess.mu.Lock()
	if seq > sess.sent {
		seq = sess.sent // cannot ack what was never sent
	}
	if seq > sess.acked {
		sess.srv.delivered.Add(seq - sess.acked)
		old := sess.acked
		sess.acked = seq
		sess.ackedA.Store(seq)
		if old == sess.srv.ackFloor.Load() {
			// This session may have been the retention floor; let the
			// next roll rescan so pruning can make progress.
			sess.srv.floorStale.Store(true)
		}
	}
	switch {
	case sess.catchup:
	case sess.parts > 0:
		sess.trimPartLocked(seq)
	case seq > sess.base:
		sess.trimLocked(seq)
	}
	sess.mu.Unlock()
}

// trimLocked advances an unpartitioned session's trim floor to seq
// and drops fully-acknowledged chunks from the queue front (a
// straddling chunk stays until its last event is acked; its shared
// payload costs nothing extra). sess.mu must be held; seq > base.
func (sess *session) trimLocked(seq uint64) {
	sess.buffered -= int(seq - sess.base)
	sess.base = seq
	popped := 0
	for popped < len(sess.chunks) && sess.chunks[popped].last <= seq {
		sess.chunks[popped] = nil
		popped++
	}
	if popped > 0 {
		sess.chunks = sess.chunks[popped:]
		sess.sentChunks -= popped
		if sess.sentChunks < 0 {
			sess.sentChunks = 0
		}
	}
	select {
	case sess.space <- struct{}{}:
	default:
	}
}

// trimPartLocked drops queued chunks whose last owned sequence is at
// or below seq from a partitioned session's window and advances the
// trim floor. Acks name global feed cursors; trimming is
// chunk-granular (a chunk with any event above the ack stays whole —
// a chunk-sized overshoot, bounded by maxBatch, in exchange for never
// re-slicing a shared frame). sess.mu must be held.
func (sess *session) trimPartLocked(seq uint64) {
	popped := 0
	for popped < len(sess.chunks) && sess.chunks[popped].last <= seq {
		sess.buffered -= sess.chunks[popped].n
		sess.chunks[popped] = nil
		popped++
	}
	if popped > 0 {
		sess.chunks = sess.chunks[popped:]
		sess.sentChunks -= popped
		if sess.sentChunks < 0 {
			sess.sentChunks = 0
		}
		select {
		case sess.space <- struct{}{}:
		default:
		}
	}
	if seq > sess.base {
		sess.base = seq
	}
}

// attachLocked binds conn as the session's current connection, kicking
// any previous one. sess.mu must be held. Returns the new generation.
func (sess *session) attachLocked(conn net.Conn) int {
	if sess.conn != nil {
		sess.conn.Close()
	}
	sess.gen++
	sess.conn = conn
	sess.cond.Broadcast() // stop a stale writer
	select {
	case sess.space <- struct{}{}: // producer may re-evaluate: connected again
	default:
	}
	return sess.gen
}

// detach drops the session's connection (keeping the window for
// resume) if gen is still the current generation.
func (s *Server) detach(sess *session, gen int) {
	sess.mu.Lock()
	if sess.gen == gen && !sess.gone {
		sess.gen++
		if sess.conn != nil {
			sess.conn.Close()
			sess.conn = nil
		}
		sess.detachedAt = time.Now()
		sess.cond.Broadcast()
		select {
		case sess.space <- struct{}{}: // producer must stop waiting on acks
		default:
		}
	}
	sess.mu.Unlock()
}

// evict removes the session (used by the catch-up writer when the
// spool can no longer serve it).
func (s *Server) evict(sess *session) {
	sess.mu.Lock()
	sess.evictLocked()
	sess.mu.Unlock()
}

// serveConn performs the handshake, then runs the connection's ack
// reader; the batch writer runs in its own goroutine.
func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
	br := bufio.NewReaderSize(conn, 32<<10)
	payload, err := readFrame(br, nil)
	if err != nil {
		conn.Close()
		return
	}
	var hello frame
	if err := json.Unmarshal(payload, &hello); err != nil {
		writeControl(conn, frame{T: frameWelcome, V: ProtocolVersion, Err: "malformed hello"})
		conn.Close()
		return
	}
	if hello.V != ProtocolVersion {
		t := frameWelcome
		switch hello.T {
		case framePHello:
			t = framePWelcome
		case frameSnapOffer:
			t = frameSnapOK
		case frameSnapFetch:
			t = frameSnap
		}
		writeControl(conn, frame{T: t, V: ProtocolVersion,
			Err: fmt.Sprintf("unsupported protocol version %d", hello.V)})
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})
	switch hello.T {
	case framePHello:
		// The connection is a wire producer, not a subscriber: hand it
		// to the ingest path (publish.go). A relay hop's sequencer is
		// seated by the upstream feed, so it admits no producers.
		if s.opt.adopting {
			writeControl(conn, frame{T: framePWelcome, V: ProtocolVersion,
				Err: "broker is a relay hop: publish to the root broker"})
			conn.Close()
			return
		}
		s.servePublisher(conn, br, hello, payload)
		return
	case frameSnapOffer:
		s.serveSnapOffer(conn, br, hello)
		return
	case frameSnapFetch:
		s.serveSnapFetch(conn, hello)
		return
	case frameRebPrep:
		s.serveRebPrepare(conn, hello)
		return
	case frameRebCommit:
		s.serveRebCommit(conn, hello)
		return
	case frameRebStatus:
		s.serveRebStatus(conn, hello)
		return
	case frameRebClaim:
		s.serveRebClaim(conn, hello)
		return
	}
	if hello.T != frameHello || hello.Session == "" {
		writeControl(conn, frame{T: frameWelcome, V: ProtocolVersion, Err: "malformed hello"})
		conn.Close()
		return
	}

	sess, gen, from, reject := s.admit(hello, conn)
	if reject != "" {
		writeControl(conn, frame{T: frameWelcome, V: ProtocolVersion, Err: reject})
		conn.Close()
		return
	}
	if hello.Relay {
		sess.mu.Lock()
		sess.relay = true
		sess.mu.Unlock()
	}
	if err := writeControl(conn, frame{T: frameWelcome, V: ProtocolVersion, From: from,
		Hop: int(s.hop.Load())}); err != nil {
		s.detach(sess, gen)
		return
	}
	s.wg.Add(1)
	go s.writer(sess, conn, gen)

	// Ack reader: this goroutine owns conn teardown via detach.
	for {
		payload, err := readFrame(br, payload)
		if err != nil {
			s.detach(sess, gen)
			return
		}
		var f frame
		if json.Unmarshal(payload, &f) == nil && f.T == frameAck {
			sess.ackTo(f.Ack)
		}
	}
}

// admit registers or resumes the session named in hello and attaches
// conn to it. It returns the session, the connection generation and
// the first sequence the writer will send, or a rejection reason.
//
// Resume resolution is two-tier: the session's in-memory ring first;
// then, when the requested sequence has left memory (trimmed, window
// overflowed, session evicted or never known), the disk spool — the
// session is (re)created in catch-up mode and served from segments
// until it reaches the head. Only a sequence below the spool's
// retained range, or a missing/broken spool, rejects.
func (s *Server) admit(hello frame, conn net.Conn) (sess *session, gen int, from uint64, reject string) {
	// Normalize the partition request: a group of one is the full
	// feed, served on the cheaper contiguous path.
	if hello.Parts == 1 {
		hello.Part, hello.Parts = 0, 0
	}
	if hello.Parts < 0 || hello.Part < 0 || (hello.Parts > 0 && hello.Part >= hello.Parts) {
		return nil, 0, 0, "invalid partition"
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closing {
		return nil, 0, 0, "server closing"
	}
	var fencedAt uint64
	var fenceNew int
	if hello.Parts >= 2 {
		key := partKey{part: hello.Part, parts: hello.Parts}
		if f := s.fences[hello.Parts]; f != nil {
			// The group shape was rebalanced away. A fresh join would
			// double-judge post-barrier events against the new owners;
			// a resume may only drain what it is owed below the
			// barrier, then gets the rebal hand-off like everyone else.
			if hello.Resume == 0 || hello.Resume > f.barrier+1 {
				return nil, 0, 0, fmt.Sprintf("partition group %d rebalanced to %d at barrier %d", f.from, f.nparts, f.barrier)
			}
			fencedAt, fenceNew = f.barrier, f.nparts
		}
		if c, ok := s.claims[key]; ok {
			switch {
			case hello.Session == c.session:
				delete(s.claims, key) // claim consumed by its holder
			case time.Since(c.at) < s.opt.linger:
				return nil, 0, 0, "partition claimed by another session"
			default:
				delete(s.claims, key) // claimant never showed; let go
			}
		}
		s.everSeen[key] = true
	}
	s.smu.Lock()
	sess = s.sessions[hello.Session]
	s.smu.Unlock()
	if sess != nil && hello.Resume > 0 &&
		(sess.parts != hello.Parts || sess.part != hello.Part) {
		// A session's filter is part of its delivery state: the acks
		// and cursors only make sense for the slice they were earned
		// on. Changing partition means starting a fresh session.
		return nil, 0, 0, "partition mismatch for resumed session"
	}
	if hello.Resume == 0 {
		// Fresh subscription from the next broadcast on. Reusing a live
		// session id replaces (evicts) the old session.
		if sess != nil {
			sess.mu.Lock()
			sess.evictLocked()
			sess.mu.Unlock()
		}
		sess = s.newSessionLocked(hello.Session, s.seq, false, hello.Part, hello.Parts)
		sess.mu.Lock()
		gen = sess.attachLocked(conn)
		sess.mu.Unlock()
		return sess, gen, s.seq + 1, ""
	}
	r := hello.Resume
	if r > s.seq+1 {
		return nil, 0, 0, "resume sequence ahead of feed"
	}
	if sess == nil && r == s.seq+1 {
		// Resuming exactly at the head needs no replay from either
		// tier: admit a live session. This is also how a DialFrom(1)
		// subscriber joins an empty feed.
		sess = s.newSessionLocked(hello.Session, s.seq, false, hello.Part, hello.Parts)
		sess.mu.Lock()
		if fencedAt > 0 {
			sess.fencedAt, sess.fenceNew = fencedAt, fenceNew
			if sess.feedSeq > fencedAt {
				sess.feedSeq = fencedAt
			}
		}
		gen = sess.attachLocked(conn)
		sess.mu.Unlock()
		return sess, gen, r, ""
	}
	if sess != nil {
		sess.mu.Lock()
		if sess.gone {
			// Evicted between the map lookup and taking its lock (a
			// concurrent fan-out expired its linger): resume falls
			// through to the disk tier like any unknown session.
			sess.mu.Unlock()
			sess = nil
		}
	}
	if sess != nil {
		switch {
		case !sess.catchup && sess.parts == 0 && r > sess.base && r <= sess.base+uint64(sess.buffered)+1:
			// Memory tier: the window still holds (or abuts) r.
			// Resuming from r implicitly acknowledges everything
			// before it.
			if r-1 > sess.acked {
				s.delivered.Add(r - 1 - sess.acked)
				sess.acked = r - 1
				sess.ackedA.Store(r - 1)
			}
			if r-1 > sess.base {
				sess.trimLocked(r - 1)
			}
			// Rewind: resend anything in flight when the conn died.
			// Every remaining chunk ends above sent, so none count as
			// framed; the writer re-encodes a straddling front chunk's
			// suffix so the first frame starts exactly at r.
			sess.sent = r - 1
			sess.sentChunks = 0
			gen = sess.attachLocked(conn)
			sess.mu.Unlock()
			return sess, gen, r, ""
		case !sess.catchup && sess.parts > 0 && r > sess.base:
			// Partitioned memory tier: chunks at or below base are
			// trimmed, so r > base means every partition event ≥ r is
			// still queued. Resume implicitly acks below r; the writer
			// resends the remaining chunks whole (the client drops
			// per-event sequences at or below its cursor).
			if r-1 > sess.acked {
				s.delivered.Add(r - 1 - sess.acked)
				sess.acked = r - 1
				sess.ackedA.Store(r - 1)
			}
			sess.trimPartLocked(r - 1)
			sess.sent = r - 1
			sess.sentChunks = 0
			gen = sess.attachLocked(conn)
			sess.mu.Unlock()
			return sess, gen, r, ""
		case sess.catchup && r > sess.acked:
			// Already catching up; rewind the disk cursor to r.
			s.delivered.Add(r - 1 - sess.acked)
			sess.acked = r - 1
			sess.ackedA.Store(r - 1)
			sess.sent = r - 1
			gen = sess.attachLocked(conn)
			sess.mu.Unlock()
			return sess, gen, r, ""
		}
		// The memory tier cannot serve r (trimmed, or a stale client
		// behind its own acks). Fall through to the disk tier with a
		// fresh session object.
		if !s.spoolServes(r) {
			sess.mu.Unlock()
			return nil, 0, 0, "resume sequence already trimmed"
		}
		sess.evictLocked()
		sess.mu.Unlock()
	} else if !s.spoolServes(r) {
		if s.spoolUsable() {
			// A backfilling subscriber (DialFrom) asked below what
			// retention still holds.
			return nil, 0, 0, "resume sequence below the spool retention floor"
		}
		return nil, 0, 0, "unknown session (resume window expired)"
	}
	// Disk tier: catch up from segment files, then flip live.
	catchup := r <= s.seq
	sess = s.newSessionLocked(hello.Session, r-1, catchup, hello.Part, hello.Parts)
	if fencedAt > 0 {
		sess.mu.Lock()
		sess.fencedAt, sess.fenceNew = fencedAt, fenceNew
		if sess.feedSeq > fencedAt {
			sess.feedSeq = fencedAt
		}
		sess.mu.Unlock()
	}
	if catchup {
		// Retention re-check under smu, now that the session's ack
		// position is visible to the floor scan: a prune that raced
		// this admit either saw the session (and spared r) or finished
		// before this check (and is caught here). pruneSpool holds smu
		// across its compute-and-prune, so there is no in-between.
		s.smu.Lock()
		served := s.spoolServes(r)
		s.smu.Unlock()
		if !served {
			sess.mu.Lock()
			sess.evictLocked()
			sess.mu.Unlock()
			return nil, 0, 0, "resume sequence below the spool retention floor"
		}
	}
	sess.mu.Lock()
	gen = sess.attachLocked(conn)
	sess.mu.Unlock()
	return sess, gen, r, ""
}

// spoolServes reports whether the disk tier retains sequence r.
// Caller holds s.mu.
func (s *Server) spoolServes(r uint64) bool {
	if !s.spoolUsable() {
		return false
	}
	first := s.opt.spool.First()
	return first != 0 && first <= r
}

// newSessionLocked registers a session whose cursors sit at seq
// (acked = sent = base = seq), subscribed to partition part of parts
// (0/0 for the full feed). The window is an empty chunk queue — no
// per-session event ring is allocated; queued chunks are shared.
// Caller holds s.mu; the map insert takes smu and marks the retention
// floor stale (the new session's ack position may lower it).
func (s *Server) newSessionLocked(id string, seq uint64, catchup bool, part, parts int) *session {
	sess := &session{
		id:      id,
		srv:     s,
		part:    part,
		parts:   parts,
		window:  s.opt.replay,
		acked:   seq,
		sent:    seq,
		base:    seq,
		feedSeq: s.seq,
		catchup: catchup,
		space:   make(chan struct{}, 1),
	}
	sess.ackedA.Store(seq)
	sess.cond = sync.NewCond(&sess.mu)
	s.smu.Lock()
	s.sessions[id] = sess
	s.floorStale.Store(true)
	s.smu.Unlock()
	return sess
}

// writer drains the session onto one connection, switching between
// live-ring delivery and disk catch-up as the session's mode changes,
// until the connection dies, the generation moves on, or the feed
// ends.
func (s *Server) writer(sess *session, conn net.Conn, gen int) {
	defer s.wg.Done()
	bw := bufio.NewWriterSize(conn, 64<<10)
	for {
		sess.mu.Lock()
		cu := sess.catchup
		stale := sess.gen != gen
		sess.mu.Unlock()
		if stale {
			return
		}
		switch {
		case cu:
			if !s.writeCatchup(sess, conn, bw, gen) {
				return
			}
		case sess.parts > 0:
			if !s.writeLivePart(sess, conn, bw, gen) {
				return
			}
		default:
			if !s.writeLive(sess, conn, bw, gen) {
				return
			}
		}
	}
}

// writeLive drains the session's chunk queue onto the connection.
// Chunks carry pre-encoded shared frames, so the common case is a
// zero-encode write of the shared bytes; consecutive small chunks
// (single-event Broadcasts) are coalesced up to maxBatch by byte
// splicing — a memcpy merge that reproduces the canonical encoding
// exactly, still with no encoder on the path. Only a resume landing
// mid-chunk re-encodes (the suffix of one frame, once per resume). At
// server close it finishes the window, sends the eof frame and arms a
// read deadline so the ack reader also terminates. It returns true
// when the session demoted to catch-up (the caller switches loops),
// false when this writer is done.
func (s *Server) writeLive(sess *session, conn net.Conn, bw *bufio.Writer, gen int) bool {
	var scratch []osn.Event
	var payload []byte
	out := make([]*chunk, 0, 32)
	lastFlush := time.Now()
	for {
		sess.mu.Lock()
		for sess.gen == gen && !sess.closing && !sess.catchup &&
			sess.sentChunks == len(sess.chunks) {
			sess.cond.Wait()
		}
		if sess.gen != gen {
			sess.mu.Unlock()
			return false
		}
		if sess.catchup {
			sess.mu.Unlock()
			if err := bw.Flush(); err != nil {
				s.detach(sess, gen)
				return false
			}
			return true
		}
		if sess.sentChunks == len(sess.chunks) { // implies closing: window drained, say goodbye
			sess.mu.Unlock()
			writeControl(bw, frame{T: frameEOF})
			bw.Flush()
			conn.SetReadDeadline(time.Now().Add(s.opt.drain))
			return false
		}
		out = append(out[:0], sess.chunks[sess.sentChunks:]...)
		from := sess.sent + 1 // > out[0].first only on a mid-chunk resume
		sess.sentChunks = len(sess.chunks)
		sess.sent = out[len(out)-1].last
		sess.mu.Unlock()

		i := 0
		if from > out[0].first {
			// Resume rewound into this chunk: re-encode the suffix so
			// the first frame starts exactly at the resume point.
			var evs []osn.Event
			var ok bool
			payload, evs, ok = wire.SuffixBatch(payload[:0], out[0].payload, from, scratch[:0])
			if !ok {
				log.Printf("stream: session %s: corrupt shared chunk at seq %d", sess.id, out[0].first)
				s.detach(sess, gen)
				return false
			}
			scratch = evs[:0]
			s.encodes.Add(1)
			if err := writeFrame(bw, payload); err != nil {
				s.detach(sess, gen)
				return false
			}
			i = 1
		}
		for i < len(out) {
			j, total := i+1, out[i].n
			for j < len(out) && total+out[j].n <= s.opt.maxBatch {
				total += out[j].n
				j++
			}
			var err error
			if j == i+1 {
				err = writeFrame(bw, out[i].payload) // shared bytes, zero copy
			} else {
				payload = spliceChunks(payload[:0], out[i:j])
				err = writeFrame(bw, payload)
			}
			if err != nil {
				s.detach(sess, gen)
				return false
			}
			i = j
		}

		sess.mu.Lock()
		drained := sess.sentChunks == len(sess.chunks)
		sess.mu.Unlock()
		if drained || time.Since(lastFlush) >= s.opt.flushEvery {
			if err := bw.Flush(); err != nil {
				s.detach(sess, gen)
				return false
			}
			lastFlush = time.Now()
		}
	}
}

// spliceChunks merges consecutive contiguous batch chunks into one
// canonical batch payload by byte splicing: the first payload minus
// its closing "]}", then each following chunk's events section behind
// a comma. The result is byte-identical to a fresh encode of the
// concatenated events (pinned in internal/wire's tests) without
// running the encoder.
func spliceChunks(dst []byte, chunks []*chunk) []byte {
	p0 := chunks[0].payload
	dst = append(dst, p0[:len(p0)-2]...)
	for _, c := range chunks[1:] {
		sec, ok := wire.BatchEventsSection(c.payload)
		if !ok {
			// Cannot happen for frames this server encoded; keep the
			// wire canonical anyway by dropping the merge.
			continue
		}
		dst = append(dst, ',')
		dst = append(dst, sec...)
	}
	return append(dst, ']', '}')
}

// advanceEvery is how much silent (filtered-out) feed accumulates
// before a partitioned writer sends an empty fbatch purely to move
// the subscriber's cursor. Cursor advances are what let a partition
// subscriber's acks track the feed head — trimming spool retention
// and resume floors — through stretches owned by other partitions.
// Tied to maxBatch so tests that shrink batches shrink advance
// latency with them.
func (s *Server) advanceEvery() uint64 { return uint64(s.opt.maxBatch) }

// writeLivePart is writeLive for a partitioned session: it drains the
// queue of pre-filtered shared fbatch frames (encoded once per
// (part, parts) per batch and shared across every session on the
// partition), and emits empty cursor-advance frames across silent
// stretches of foreign events. A resume that rewinds into a chunk
// resends the whole shared frame — the client's per-event sequence
// dedupe makes that wire-legal — so this path never re-encodes. Same
// return contract as writeLive.
func (s *Server) writeLivePart(sess *session, conn net.Conn, bw *bufio.Writer, gen int) bool {
	var payload []byte
	out := make([]*chunk, 0, 32)
	adv := s.advanceEvery()
	for {
		sess.mu.Lock()
		for sess.gen == gen && !sess.closing && !sess.catchup &&
			sess.sentChunks == len(sess.chunks) && sess.feedSeq-sess.sent < adv &&
			!(sess.fencedAt > 0 && sess.feedSeq >= sess.fencedAt) {
			sess.cond.Wait()
		}
		if sess.gen != gen {
			sess.mu.Unlock()
			return false
		}
		if sess.catchup {
			sess.mu.Unlock()
			if err := bw.Flush(); err != nil {
				s.detach(sess, gen)
				return false
			}
			return true
		}
		if f := sess.fencedAt; f > 0 && sess.sentChunks == len(sess.chunks) && sess.feedSeq >= f {
			// Fenced and fully drained: the fence clamps feedSeq to the
			// barrier, and the cursor only reaches it once every
			// pre-barrier batch has fanned out to this session, so
			// everything the old owner is entitled to has been framed.
			// Bring the cursor exactly to the barrier, announce the
			// cutover, and end the subscription (the drain deadline
			// bounds the ack reader like the eof path).
			advance := f > sess.sent
			nparts := sess.fenceNew
			sess.sent = f
			sess.mu.Unlock()
			if advance {
				payload = appendFBatchFrame(payload[:0], f, nil, nil)
				if writeFrame(bw, payload) != nil {
					s.detach(sess, gen)
					return false
				}
			}
			payload = wire.AppendRebal(payload[:0], wire.Rebal{Barrier: f, Parts: sess.parts, NParts: nparts})
			writeFrame(bw, payload)
			bw.Flush()
			conn.SetReadDeadline(time.Now().Add(s.opt.drain))
			return false
		}
		if sess.sentChunks == len(sess.chunks) {
			last := sess.feedSeq
			if sess.closing {
				// Window drained: final cursor advance (the feed may
				// have ended mid-silence), goodbye, and a read deadline
				// so the ack reader terminates too.
				advance := last > sess.sent
				sess.sent = last
				sess.mu.Unlock()
				if advance {
					payload = appendFBatchFrame(payload[:0], last, nil, nil)
					writeFrame(bw, payload)
				}
				writeControl(bw, frame{T: frameEOF})
				bw.Flush()
				conn.SetReadDeadline(time.Now().Add(s.opt.drain))
				return false
			}
			if last <= sess.sent {
				// Spurious wake (attach/detach broadcast); nothing new.
				sess.mu.Unlock()
				continue
			}
			sess.sent = last
			sess.mu.Unlock()
			payload = appendFBatchFrame(payload[:0], last, nil, nil)
			if err := writeFrame(bw, payload); err != nil {
				s.detach(sess, gen)
				return false
			}
			if err := bw.Flush(); err != nil {
				s.detach(sess, gen)
				return false
			}
			continue
		}
		out = append(out[:0], sess.chunks[sess.sentChunks:]...)
		sess.sentChunks = len(sess.chunks)
		cur := out[len(out)-1].cursor
		if sess.feedSeq > cur {
			// Queue drained: extend the cursor over the trailing foreign
			// run so the subscriber's acks track the feed head.
			cur = sess.feedSeq
		}
		sess.sent = cur
		sess.mu.Unlock()

		i := 0
		for i < len(out) {
			j, total := i+1, out[i].n
			for j < len(out) && total+out[j].n <= s.opt.maxBatch {
				total += out[j].n
				j++
			}
			last := out[j-1].cursor
			if j == len(out) && cur > last {
				last = cur
			}
			var werr error
			if j == i+1 && last == out[i].cursor {
				werr = writeFrame(bw, out[i].payload) // shared bytes, zero copy
			} else {
				payload = spliceFChunks(payload[:0], last, out[i:j])
				werr = writeFrame(bw, payload)
			}
			if werr != nil {
				s.detach(sess, gen)
				return false
			}
			i = j
		}
		if err := bw.Flush(); err != nil {
			s.detach(sess, gen)
			return false
		}
	}
}

// spliceFChunks merges consecutive filtered chunks into one canonical
// fbatch payload carrying cursor `last`: the events of fbatch frames
// embed their own global sequences, so their sections splice behind a
// fresh prefix just like batch frames — byte-identical to a single
// fresh encode of the merged run, with no encoder on the path.
func spliceFChunks(dst []byte, last uint64, chunks []*chunk) []byte {
	dst = wire.AppendFBatch(dst, last, nil, nil)
	dst = dst[:len(dst)-2]
	for k, c := range chunks {
		sec, ok := wire.FBatchEventsSection(c.payload)
		if !ok {
			// Cannot happen for frames this server encoded; keep the
			// wire canonical anyway by dropping the merge.
			continue
		}
		if k > 0 {
			dst = append(dst, ',')
		}
		dst = append(dst, sec...)
	}
	return append(dst, ']', '}')
}

// writeCatchup streams the gap (sent, head] from the disk spool onto
// the connection, then flips the session back to live delivery
// atomically with Broadcast. Unlike the live ring there is no
// ack-driven flow control here — the data already sits on disk, so a
// slow reader costs no server memory and TCP backpressure alone paces
// the transfer (this is also what lets a manual-ack consumer whose
// acks are sparser than its window catch up without deadlocking). It
// returns true on a successful flip, false when this writer is done
// (conn death, generation change, or an unserviceable spool — which
// evicts the session loudly).
func (s *Server) writeCatchup(sess *session, conn net.Conn, bw *bufio.Writer, gen int) bool {
	sess.mu.Lock()
	from := sess.sent + 1
	told := sess.sent // cursor actually framed to the client (partitioned)
	sess.mu.Unlock()
	// The resume point may be sequenced but still mid-fan-out (the
	// spool append happens inside fanout, after the ticket clears).
	// Wait for its batch to land before reading — but only for
	// sequences that were actually assigned; waiting on an unassigned
	// one would block until some future broadcast.
	s.mu.Lock()
	assigned := from <= s.seq
	s.mu.Unlock()
	if assigned {
		s.waitFanned(from)
	}
	rd, err := s.opt.spool.ReadFrom(from)
	if err != nil {
		log.Printf("stream: session %s catch-up at seq %d unserviceable: %v", sess.id, from, err)
		s.evict(sess)
		return false
	}
	defer rd.Close()
	scratch := make([]osn.Event, 0, s.opt.maxBatch)
	var keep []osn.Event
	var keepSeqs []uint64
	var payload []byte
	lastFlush := time.Now()
	adv := s.advanceEvery()
	// Unpartitioned catch-up forwards the spool's frames as raw bytes,
	// coalescing small ones (per-event broadcasts) up to maxBatch by
	// the same byte splice the live path uses: acc holds canonical
	// batch bytes minus the closing "]}" covering accN events.
	next := from
	var acc []byte
	accN := 0
	flushAcc := func() error {
		if accN == 0 {
			return nil
		}
		acc = append(acc, ']', '}')
		werr := writeFrame(bw, acc)
		acc, accN = acc[:0], 0
		return werr
	}
	// finishFence ends a fenced session's catch-up once the disk read
	// has covered everything at or below the barrier: cursor advance to
	// the barrier (if the tail was foreign), the rebal announcement,
	// and a read deadline so the ack reader terminates. Only
	// partitioned sessions are ever fenced, so acc is always empty
	// here.
	finishFence := func(f uint64, fnew int) bool {
		sess.mu.Lock()
		sess.sent = f
		sess.mu.Unlock()
		if told < f {
			payload = appendFBatchFrame(payload[:0], f, nil, nil)
			if writeFrame(bw, payload) != nil {
				s.detach(sess, gen)
				return false
			}
		}
		payload = wire.AppendRebal(payload[:0], wire.Rebal{Barrier: f, Parts: sess.parts, NParts: fnew})
		writeFrame(bw, payload)
		bw.Flush()
		conn.SetReadDeadline(time.Now().Add(s.opt.drain))
		return false
	}
	for {
		sess.mu.Lock()
		if sess.gen != gen || sess.gone {
			sess.mu.Unlock()
			return false
		}
		fenced, fenceNew, cur := sess.fencedAt, sess.fenceNew, sess.sent
		sess.mu.Unlock()
		if fenced > 0 && cur >= fenced {
			return finishFence(fenced, fenceNew)
		}

		var first, end uint64
		var rerr error
		var raw []byte
		var rawN int
		if sess.parts > 0 {
			var evs []osn.Event
			first, evs, rerr = rd.Next(scratch[:0], s.opt.maxBatch)
			if rerr == nil {
				end = first + uint64(len(evs)) - 1
				// Re-read the fence: it may have been installed while
				// Next was reading, and post-barrier spool appends are
				// sequenced after the install — so whenever the run
				// carries events past a fresh barrier, this re-read is
				// guaranteed to observe it (the top-of-loop read can be
				// one iteration stale).
				sess.mu.Lock()
				fenced, fenceNew = sess.fencedAt, sess.fenceNew
				sess.mu.Unlock()
				if fenced > 0 && end > fenced {
					// The spool run crosses the barrier (disk reads may
					// coalesce frames): deliver only the pre-barrier
					// prefix; the next loop iteration emits the rebal.
					if first > fenced {
						evs = evs[:0]
					} else {
						evs = evs[:fenced-first+1]
					}
					end = fenced
				}
				scratch = evs[:0]
				// Filter the run down to the partition's slice; the
				// frame's cursor still covers the whole run. A fully
				// foreign run is framed only once enough silence has
				// accumulated to be worth a cursor advance.
				keep, keepSeqs = filterPartition(evs, first, sess.part, sess.parts, keep[:0], keepSeqs[:0])
			}
		} else {
			first, rawN, raw, rerr = rd.NextFrame()
			if rerr == nil {
				end = first + uint64(rawN) - 1
			}
		}
		switch {
		case errors.Is(rerr, io.EOF):
			// Reached everything spooled. Flush the wire, then try to
			// flip live: under s.mu no new sequence can be assigned,
			// so sent == s.seq means the chunk queue takes over
			// gaplessly.
			if ferr := flushAcc(); ferr != nil {
				s.detach(sess, gen)
				return false
			}
			if sess.parts > 0 {
				// Bring the client's cursor current first, so the flip
				// boundary is exact even when the tail of the spool was
				// all foreign events.
				sess.mu.Lock()
				cur := sess.sent
				sess.mu.Unlock()
				if cur > told {
					payload = appendFBatchFrame(payload[:0], cur, nil, nil)
					if werr := writeFrame(bw, payload); werr != nil {
						s.detach(sess, gen)
						return false
					}
					told = cur
				}
			}
			if ferr := bw.Flush(); ferr != nil {
				s.detach(sess, gen)
				return false
			}
			lastFlush = time.Now()
			s.mu.Lock()
			sess.mu.Lock()
			if sess.gen != gen || sess.gone {
				sess.mu.Unlock()
				s.mu.Unlock()
				return false
			}
			if s.seq == sess.sent {
				sess.catchup = false
				sess.base = sess.sent
				sess.chunks = nil
				sess.sentChunks = 0
				sess.buffered = 0
				sess.mu.Unlock()
				s.mu.Unlock()
				return true
			}
			s.mu.Unlock()
			if s.spoolBroken.Load() {
				// The feed ran ahead of a dead spool: this gap can
				// never be served. Loud loss.
				sess.mu.Unlock()
				log.Printf("stream: session %s stranded mid-catch-up by spool failure", sess.id)
				s.evict(sess)
				return false
			}
			// More was broadcast while we flushed; wait for the spool
			// to show it (feedSeq advances after the spool append). A
			// fenced session's feedSeq is clamped at the barrier, so
			// once sent reaches it nothing more ever arrives — fall
			// through to the rebal instead of waiting forever.
			for sess.gen == gen && !sess.closing && !sess.gone && sess.feedSeq <= sess.sent &&
				!(sess.fencedAt > 0 && sess.sent >= sess.fencedAt) {
				sess.cond.Wait()
			}
			stale := sess.gen != gen || sess.gone
			f, fnew, cur := sess.fencedAt, sess.fenceNew, sess.sent
			sess.mu.Unlock()
			if stale {
				return false
			}
			if f > 0 && cur >= f {
				return finishFence(f, fnew)
			}
			continue
		case rerr != nil:
			log.Printf("stream: session %s catch-up read failed: %v", sess.id, rerr)
			s.evict(sess)
			return false
		}

		sess.mu.Lock()
		if sess.gen != gen || sess.gone {
			sess.mu.Unlock()
			return false
		}
		sess.sent = end
		sess.mu.Unlock()

		if sess.parts > 0 {
			if len(keep) == 0 && end-told < adv {
				continue
			}
			payload = appendFBatchFrame(payload[:0], end, keepSeqs, keep)
			told = end
			if werr := writeFrame(bw, payload); werr != nil {
				s.detach(sess, gen)
				return false
			}
		} else if first < next {
			// ReadFrom landed mid-frame: re-encode the suffix so the
			// first frame starts exactly at the resume point. Happens
			// at most once per resume.
			var evs []osn.Event
			var ok bool
			payload, evs, ok = wire.SuffixBatch(payload[:0], raw, next, scratch[:0])
			if !ok {
				log.Printf("stream: session %s: corrupt spool frame at seq %d", sess.id, first)
				s.evict(sess)
				return false
			}
			scratch = evs[:0]
			s.encodes.Add(1)
			if werr := writeFrame(bw, payload); werr != nil {
				s.detach(sess, gen)
				return false
			}
			next = end + 1
		} else {
			if accN > 0 && accN+rawN > s.opt.maxBatch {
				if werr := flushAcc(); werr != nil {
					s.detach(sess, gen)
					return false
				}
			}
			switch {
			case accN == 0 && rawN >= s.opt.maxBatch:
				if werr := writeFrame(bw, raw); werr != nil { // raw disk bytes, no encode
					s.detach(sess, gen)
					return false
				}
			case accN == 0:
				acc = append(acc[:0], raw[:len(raw)-2]...)
				accN = rawN
			default:
				sec, ok := wire.BatchEventsSection(raw)
				if !ok {
					log.Printf("stream: session %s: corrupt spool frame at seq %d", sess.id, first)
					s.evict(sess)
					return false
				}
				acc = append(acc, ',')
				acc = append(acc, sec...)
				accN += rawN
			}
			next = end + 1
		}
		if time.Since(lastFlush) >= s.opt.flushEvery {
			if werr := flushAcc(); werr != nil {
				s.detach(sess, gen)
				return false
			}
			if werr := bw.Flush(); werr != nil {
				s.detach(sess, gen)
				return false
			}
			lastFlush = time.Now()
		}
	}
}

// filterPartition appends the events of a contiguous run (first
// sequence first) that partition part of parts receives to keep, with
// their global sequences appended in parallel to keepSeqs.
func filterPartition(evs []osn.Event, first uint64, part, parts int, keep []osn.Event, keepSeqs []uint64) ([]osn.Event, []uint64) {
	for i, ev := range evs {
		if osn.PartitionDelivers(ev, part, parts) {
			keep = append(keep, ev)
			keepSeqs = append(keepSeqs, first+uint64(i))
		}
	}
	return keep, keepSeqs
}

// Stats returns a snapshot of feed accounting, including per-session
// subscriber lag and disk-tier bounds.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	seq := s.seq
	reb := make([]RebalanceStats, 0, len(s.rebLog))
	for _, f := range s.rebLog {
		reb = append(reb, RebalanceStats{From: f.from, To: f.nparts, Barrier: f.barrier, Committed: f.committed})
	}
	prod := make([]ProducerStats, 0, len(s.producers))
	for _, p := range s.producers {
		prod = append(prod, ProducerStats{
			ID:          p.id,
			Connected:   p.conn != nil,
			Epoch:       p.epoch,
			Batches:     p.batches,
			Events:      p.events,
			DedupeDrops: p.dups,
			EOF:         p.eof,
		})
	}
	s.mu.Unlock()
	s.smu.Lock()
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.smu.Unlock()
	per := make([]SessionStats, 0, len(sessions))
	for _, sess := range sessions {
		sess.mu.Lock()
		st := SessionStats{
			ID:        sess.id,
			Connected: sess.conn != nil,
			CatchUp:   sess.catchup,
			Relay:     sess.relay,
			Part:      sess.part,
			Parts:     sess.parts,
			Acked:     sess.acked,
			Buffered:  sess.buffered,
			Window:    sess.window,
		}
		sess.mu.Unlock()
		if seq > st.Acked {
			st.Behind = seq - st.Acked
		}
		if st.Window > 0 {
			st.Fill = float64(st.Buffered) / float64(st.Window)
		}
		per = append(per, st)
	}
	sort.Slice(prod, func(i, j int) bool { return prod[i].ID < prod[j].ID })
	sort.Slice(per, func(i, j int) bool {
		if per[i].Behind != per[j].Behind {
			return per[i].Behind > per[j].Behind
		}
		return per[i].ID < per[j].ID
	})
	st := ServerStats{
		Broadcast:   seq,
		Delivered:   s.delivered.Load(),
		Encodes:     s.encodes.Load(),
		Adopted:     s.adopted.Load(),
		Hop:         int(s.hop.Load()),
		Sessions:    len(per),
		Evicted:     s.evicted.Load(),
		PerSession:  per,
		PerProducer: prod,
	}
	if s.opt.spool != nil {
		st.SpoolFirst = s.opt.spool.First()
		st.SpoolEnd = s.opt.spool.End()
		s.spoolErrMu.Lock()
		if s.spoolErr != nil {
			st.SpoolErr = s.spoolErr.Error()
		}
		s.spoolErrMu.Unlock()
	}
	st.Snapshots = s.snapshotStats()
	st.Rebalances = reb
	return st
}

// NumClients returns the number of currently connected subscribers
// (lingering disconnected sessions not included).
func (s *Server) NumClients() int {
	s.smu.Lock()
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.smu.Unlock()
	n := 0
	for _, sess := range sessions {
		sess.mu.Lock()
		if sess.conn != nil {
			n++
		}
		sess.mu.Unlock()
	}
	return n
}

// Close stops accepting, drains every connected subscriber's remaining
// window (bounded by the drain timeout), sends each an eof frame, and
// waits for all connection goroutines to finish. All Broadcast calls
// must have returned. The spool, if any, is not closed — it belongs
// to the caller and outlives the server.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closing = true
	err := s.ln.Close()
	for _, p := range s.producers {
		// Sever producers: any pbatch still in flight is refused by the
		// closing sequencer (ingest checks s.closing), so the cut is
		// clean — the producer's unacked batches stay unacked.
		if p.conn != nil {
			p.conn.Close()
			p.conn = nil
		}
	}
	seq := s.seq
	s.mu.Unlock()

	// Let any batch already past the sequencer finish its fan-out, so
	// the final events reach the spool and every session's queue before
	// the drain starts.
	s.fanMu.Lock()
	for s.fanNext <= seq {
		s.fanCond.Wait()
	}
	s.fanMu.Unlock()

	s.smu.Lock()
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.smu.Unlock()
	for _, sess := range sessions {
		sess.mu.Lock()
		if sess.gone {
			sess.mu.Unlock()
			continue
		}
		sess.closing = true
		if sess.conn != nil {
			sess.conn.SetWriteDeadline(time.Now().Add(s.opt.drain))
			sess.cond.Broadcast() // writer: drain, eof, exit
		} else {
			// Nothing to drain to; the window dies with the server
			// (but spooled events survive on disk for a restarted
			// producer). evictLocked counts the loss.
			sess.evictLocked()
		}
		sess.mu.Unlock()
	}
	s.wg.Wait()
	// Final sweep: anything still buffered here died undelivered (e.g.
	// the drain deadline cut off a stalled subscriber): that is loss,
	// and loss is always counted — unless the spool still holds it for
	// a future resume against a restarted producer.
	s.smu.Lock()
	rest := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		rest = append(rest, sess)
	}
	s.smu.Unlock()
	for _, sess := range rest {
		sess.mu.Lock()
		sess.evictLocked()
		sess.mu.Unlock()
	}
	return err
}

// Abort is the test double for kill -9: it severs the listener and
// every connection without draining windows or sending eof, and leaves
// the spool exactly as a crash would — last appended frame durable,
// nothing flushed on the way out. Subscribers see a dead TCP peer, not
// a protocol goodbye, which is precisely what resume and relay
// reconnect logic must survive. Safe to call concurrently with
// Broadcast/AdoptFrame; in-flight fan-outs are unblocked by the
// evictions rather than waited for.
func (s *Server) Abort() {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closing = true
	s.ln.Close()
	for _, p := range s.producers {
		if p.conn != nil {
			p.conn.Close()
			p.conn = nil
		}
	}
	s.mu.Unlock()

	s.smu.Lock()
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.smu.Unlock()
	for _, sess := range sessions {
		sess.mu.Lock()
		sess.evictLocked()
		sess.mu.Unlock()
	}
	s.wg.Wait()
}
