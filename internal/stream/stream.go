// Package stream carries OSN events over TCP, mirroring how the
// paper's detector consumed Renren's operational log feed in
// production. Version 2 of the protocol is lossless: events carry
// global sequence numbers and travel in length-prefixed batches, each
// subscriber holds a bounded replay window on the server that is
// trimmed by client acknowledgements, and a subscriber that falls
// behind applies backpressure to the producer instead of losing its
// oldest events. A briefly-disconnected subscriber redials with its
// last delivered sequence and the server replays the gap, so delivery
// is at least once end to end (and exactly once through Subscribe,
// which deduplicates on sequence numbers).
//
// The wire protocol — framing, the handshake, sequence/ack semantics
// and the resume rules — is specified in docs/ARCHITECTURE.md.
package stream

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sybilwild/internal/osn"
)

// Server tunables. Each has a ServerOption override; the defaults suit
// production-shaped feeds, tests shrink them to force the edge cases.
const (
	// DefaultReplayBuffer is the per-subscriber replay window: events
	// broadcast but not yet acknowledged. A subscriber holding the
	// producer back for more than the window applies backpressure.
	DefaultReplayBuffer = 16384
	// DefaultMaxBatch caps events per batch frame.
	DefaultMaxBatch = 256
	// DefaultFlushEvery bounds how long a coalescing writer sits on
	// buffered bytes under sustained load.
	DefaultFlushEvery = 2 * time.Millisecond
	// DefaultSessionLinger is how long a disconnected session's replay
	// window is kept for resume before it is evicted.
	DefaultSessionLinger = 30 * time.Second
	// DefaultStallTimeout is how long Broadcast blocks on one full
	// connected subscriber before evicting it (liveness backstop: a
	// dead-but-connected client cannot wedge the feed forever).
	DefaultStallTimeout = 30 * time.Second
	// DefaultDrainTimeout bounds Close: per-connection deadline for
	// flushing the remaining window and the eof frame.
	DefaultDrainTimeout = 5 * time.Second

	handshakeTimeout = 10 * time.Second
)

type serverOptions struct {
	replay     int
	maxBatch   int
	flushEvery time.Duration
	linger     time.Duration
	stall      time.Duration
	drain      time.Duration
}

// ServerOption configures NewServer.
type ServerOption func(*serverOptions)

// WithReplayBuffer sets the per-subscriber replay window in events.
func WithReplayBuffer(n int) ServerOption {
	return func(o *serverOptions) {
		if n > 0 {
			o.replay = n
		}
	}
}

// WithMaxBatch sets the maximum events per batch frame.
func WithMaxBatch(n int) ServerOption {
	return func(o *serverOptions) {
		if n > 0 {
			o.maxBatch = n
		}
	}
}

// WithFlushEvery sets the coalescing writers' flush latency bound.
func WithFlushEvery(d time.Duration) ServerOption {
	return func(o *serverOptions) {
		if d > 0 {
			o.flushEvery = d
		}
	}
}

// WithSessionLinger sets how long a disconnected session may await
// resume before eviction.
func WithSessionLinger(d time.Duration) ServerOption {
	return func(o *serverOptions) {
		if d > 0 {
			o.linger = d
		}
	}
}

// WithStallTimeout sets how long Broadcast waits on one full connected
// subscriber before evicting it.
func WithStallTimeout(d time.Duration) ServerOption {
	return func(o *serverOptions) {
		if d > 0 {
			o.stall = d
		}
	}
}

// WithDrainTimeout sets the per-connection flush deadline Close
// applies.
func WithDrainTimeout(d time.Duration) ServerOption {
	return func(o *serverOptions) {
		if d > 0 {
			o.drain = d
		}
	}
}

// Server broadcasts events to TCP subscribers with at-least-once
// delivery. Broadcast and Close must not overlap; Broadcast itself is
// safe for concurrent use.
type Server struct {
	ln  net.Listener
	opt serverOptions

	mu       sync.Mutex
	sessions map[string]*session
	seq      uint64 // last sequence number assigned
	closing  bool

	delivered atomic.Uint64
	evicted   atomic.Uint64

	wg sync.WaitGroup
}

// session is one subscriber's server-side state: a bounded ring of
// events awaiting acknowledgement, cursors into it, and the (possibly
// nil, while disconnected) current connection.
type session struct {
	id  string
	srv *Server

	mu   sync.Mutex
	cond *sync.Cond  // writer wake: pending events, close, or conn change
	ring []osn.Event // circular; holds seqs (acked, acked+n]
	head int         // ring index of seq acked+1
	n    int
	// Cursors: acked ≤ sent ≤ acked+n. Entries at or below acked are
	// trimmed; (acked, sent] are in flight; (sent, acked+n] await the
	// writer.
	acked uint64
	sent  uint64

	conn       net.Conn // nil while detached
	gen        int      // connection generation; stale writers exit on mismatch
	detachedAt time.Time
	closing    bool
	gone       bool // evicted: removed from srv.sessions

	space chan struct{} // capacity 1; producer wake after ack trim or detach
}

// ServerStats is a snapshot of feed accounting.
type ServerStats struct {
	Broadcast uint64 // events broadcast (highest sequence assigned)
	Delivered uint64 // events acknowledged by subscribers, summed
	Sessions  int    // sessions held (connected or lingering for resume)
	Evicted   uint64 // sessions evicted with undelivered events — the only loss path
	// PerSession breaks lag down by subscriber, sorted worst-lagging
	// first, so an operator can see which consumer is holding the feed
	// back before the stall timeout evicts it.
	PerSession []SessionStats
}

// SessionStats is one subscriber session's flow-control view.
type SessionStats struct {
	ID        string  // client-chosen session id
	Connected bool    // false while lingering for resume
	Acked     uint64  // highest sequence the client has acknowledged
	Behind    uint64  // events behind the feed head (broadcast − acked)
	Buffered  int     // replay-window fill: events held awaiting ack
	Window    int     // replay-window capacity
	Fill      float64 // Buffered/Window; at 1.0 this session stalls Broadcast
}

// NewServer listens on addr (e.g. "127.0.0.1:0") and starts accepting
// subscribers.
func NewServer(addr string, opts ...ServerOption) (*Server, error) {
	o := serverOptions{
		replay:     DefaultReplayBuffer,
		maxBatch:   DefaultMaxBatch,
		flushEvery: DefaultFlushEvery,
		linger:     DefaultSessionLinger,
		stall:      DefaultStallTimeout,
		drain:      DefaultDrainTimeout,
	}
	for _, fn := range opts {
		fn(&o)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("stream: listen: %w", err)
	}
	s := &Server{ln: ln, opt: o, sessions: make(map[string]*session)}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// Broadcast assigns the event the next sequence number and appends it
// to every session's replay window. It blocks — up to the stall
// timeout per subscriber — when a connected subscriber's window is
// full, so a slow consumer slows the feed down instead of losing
// events. Safe for concurrent use; must not overlap Close.
func (s *Server) Broadcast(ev osn.Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	for _, sess := range s.sessions {
		sess.append(ev) // may evict, deleting from s.sessions (safe during range)
	}
}

// append adds ev to the session's window, blocking while a connected
// subscriber's window is full. Caller holds srv.mu (evictions mutate
// the session table). Returns false if the session was evicted.
func (sess *session) append(ev osn.Event) bool {
	sess.mu.Lock()
	for {
		if sess.gone || sess.closing {
			alive := !sess.gone
			sess.mu.Unlock()
			return alive
		}
		if sess.conn == nil && (sess.n == len(sess.ring) ||
			time.Since(sess.detachedAt) > sess.srv.opt.linger) {
			// Nobody to wait for: the window overflowed while detached,
			// or the resume window expired.
			sess.evictLocked()
			sess.mu.Unlock()
			return false
		}
		if sess.n < len(sess.ring) {
			break
		}
		// Connected and full: backpressure, bounded by the stall
		// timeout.
		sess.mu.Unlock()
		timer := time.NewTimer(sess.srv.opt.stall)
		select {
		case <-sess.space:
			timer.Stop()
			sess.mu.Lock()
		case <-timer.C:
			sess.mu.Lock()
			if sess.n == len(sess.ring) && sess.conn != nil && !sess.gone && !sess.closing {
				sess.evictLocked()
				sess.mu.Unlock()
				return false
			}
		}
	}
	sess.ring[(sess.head+sess.n)%len(sess.ring)] = ev
	sess.n++
	sess.cond.Signal()
	sess.mu.Unlock()
	return true
}

// evictLocked removes the session permanently. Both srv.mu and sess.mu
// must be held. Loss is only counted when undelivered events die with
// the session.
func (sess *session) evictLocked() {
	if sess.gone {
		return
	}
	sess.gone = true
	delete(sess.srv.sessions, sess.id)
	if sess.n > 0 {
		sess.srv.evicted.Add(1)
	}
	if sess.conn != nil {
		sess.conn.Close()
		sess.conn = nil
	}
	sess.gen++
	sess.cond.Broadcast()
}

// ackTo processes a client acknowledgement: trim the window through
// seq and wake a producer blocked on the window.
func (sess *session) ackTo(seq uint64) {
	sess.mu.Lock()
	if seq > sess.sent {
		seq = sess.sent // cannot ack what was never sent
	}
	if seq > sess.acked {
		delta := int(seq - sess.acked)
		sess.head = (sess.head + delta) % len(sess.ring)
		sess.n -= delta
		sess.acked = seq
		sess.srv.delivered.Add(uint64(delta))
		select {
		case sess.space <- struct{}{}:
		default:
		}
	}
	sess.mu.Unlock()
}

// attachLocked binds conn as the session's current connection, kicking
// any previous one. sess.mu must be held. Returns the new generation.
func (sess *session) attachLocked(conn net.Conn) int {
	if sess.conn != nil {
		sess.conn.Close()
	}
	sess.gen++
	sess.conn = conn
	sess.cond.Broadcast() // stop a stale writer
	select {
	case sess.space <- struct{}{}: // producer may re-evaluate: connected again
	default:
	}
	return sess.gen
}

// detach drops the session's connection (keeping the window for
// resume) if gen is still the current generation.
func (s *Server) detach(sess *session, gen int) {
	sess.mu.Lock()
	if sess.gen == gen && !sess.gone {
		sess.gen++
		if sess.conn != nil {
			sess.conn.Close()
			sess.conn = nil
		}
		sess.detachedAt = time.Now()
		sess.cond.Broadcast()
		select {
		case sess.space <- struct{}{}: // producer must stop waiting on acks
		default:
		}
	}
	sess.mu.Unlock()
}

// serveConn performs the handshake, then runs the connection's ack
// reader; the batch writer runs in its own goroutine.
func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
	br := bufio.NewReaderSize(conn, 32<<10)
	payload, err := readFrame(br, nil)
	if err != nil {
		conn.Close()
		return
	}
	var hello frame
	if err := json.Unmarshal(payload, &hello); err != nil ||
		hello.T != frameHello || hello.Session == "" {
		writeControl(conn, frame{T: frameWelcome, V: ProtocolVersion, Err: "malformed hello"})
		conn.Close()
		return
	}
	if hello.V != ProtocolVersion {
		writeControl(conn, frame{T: frameWelcome, V: ProtocolVersion,
			Err: fmt.Sprintf("unsupported protocol version %d", hello.V)})
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})

	sess, gen, from, reject := s.admit(hello, conn)
	if reject != "" {
		writeControl(conn, frame{T: frameWelcome, V: ProtocolVersion, Err: reject})
		conn.Close()
		return
	}
	if err := writeControl(conn, frame{T: frameWelcome, V: ProtocolVersion, From: from}); err != nil {
		s.detach(sess, gen)
		return
	}
	s.wg.Add(1)
	go s.writer(sess, conn, gen)

	// Ack reader: this goroutine owns conn teardown via detach.
	for {
		payload, err := readFrame(br, payload)
		if err != nil {
			s.detach(sess, gen)
			return
		}
		var f frame
		if json.Unmarshal(payload, &f) == nil && f.T == frameAck {
			sess.ackTo(f.Ack)
		}
	}
}

// admit registers or resumes the session named in hello and attaches
// conn to it. It returns the session, the connection generation and
// the first sequence the writer will send, or a rejection reason.
func (s *Server) admit(hello frame, conn net.Conn) (sess *session, gen int, from uint64, reject string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closing {
		return nil, 0, 0, "server closing"
	}
	sess = s.sessions[hello.Session]
	if hello.Resume == 0 {
		// Fresh subscription from the next broadcast on. Reusing a live
		// session id replaces (evicts) the old session.
		if sess != nil {
			sess.mu.Lock()
			sess.evictLocked()
			sess.mu.Unlock()
		}
		sess = &session{
			id:    hello.Session,
			srv:   s,
			ring:  make([]osn.Event, s.opt.replay),
			acked: s.seq,
			sent:  s.seq,
			space: make(chan struct{}, 1),
		}
		sess.cond = sync.NewCond(&sess.mu)
		s.sessions[hello.Session] = sess
		sess.mu.Lock()
		gen = sess.attachLocked(conn)
		sess.mu.Unlock()
		return sess, gen, s.seq + 1, ""
	}
	if sess == nil {
		return nil, 0, 0, "unknown session (resume window expired)"
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	switch r := hello.Resume; {
	case r <= sess.acked:
		return nil, 0, 0, "resume sequence already trimmed"
	case r > sess.acked+uint64(sess.n)+1:
		return nil, 0, 0, "resume sequence ahead of feed"
	default:
		// Resuming from r implicitly acknowledges everything before it.
		if delta := int(r - 1 - sess.acked); delta > 0 {
			sess.head = (sess.head + delta) % len(sess.ring)
			sess.n -= delta
			sess.acked = r - 1
			s.delivered.Add(uint64(delta))
			select {
			case sess.space <- struct{}{}:
			default:
			}
		}
		sess.sent = r - 1 // rewind: resend anything in flight when the conn died
		gen = sess.attachLocked(conn)
		return sess, gen, r, ""
	}
}

// writer drains the session's window onto one connection in coalesced
// batch frames: up to maxBatch events per frame, flushed when the
// window is momentarily empty or the flush interval elapses. At server
// close it finishes the window, sends the eof frame and arms a read
// deadline so the ack reader also terminates.
func (s *Server) writer(sess *session, conn net.Conn, gen int) {
	defer s.wg.Done()
	bw := bufio.NewWriterSize(conn, 64<<10)
	scratch := make([]osn.Event, 0, s.opt.maxBatch)
	var payload []byte
	lastFlush := time.Now()
	for {
		sess.mu.Lock()
		for sess.gen == gen && !sess.closing && sess.sent == sess.acked+uint64(sess.n) {
			sess.cond.Wait()
		}
		if sess.gen != gen {
			sess.mu.Unlock()
			return
		}
		pending := int(sess.acked + uint64(sess.n) - sess.sent)
		if pending == 0 { // implies closing: window drained, say goodbye
			sess.mu.Unlock()
			writeControl(bw, frame{T: frameEOF})
			bw.Flush()
			conn.SetReadDeadline(time.Now().Add(s.opt.drain))
			return
		}
		nb := pending
		if nb > s.opt.maxBatch {
			nb = s.opt.maxBatch
		}
		first := sess.sent + 1
		off := int(sess.sent - sess.acked)
		scratch = scratch[:0]
		for k := 0; k < nb; k++ {
			scratch = append(scratch, sess.ring[(sess.head+off+k)%len(sess.ring)])
		}
		sess.sent += uint64(nb)
		drained := sess.sent == sess.acked+uint64(sess.n)
		sess.mu.Unlock()

		payload = appendBatchFrame(payload[:0], first, scratch)
		if err := writeFrame(bw, payload); err != nil {
			s.detach(sess, gen)
			return
		}
		if drained || time.Since(lastFlush) >= s.opt.flushEvery {
			if err := bw.Flush(); err != nil {
				s.detach(sess, gen)
				return
			}
			lastFlush = time.Now()
		}
	}
}

// Stats returns a snapshot of feed accounting, including per-session
// subscriber lag.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	seq := s.seq
	per := make([]SessionStats, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sess.mu.Lock()
		st := SessionStats{
			ID:        sess.id,
			Connected: sess.conn != nil,
			Acked:     sess.acked,
			Buffered:  sess.n,
			Window:    len(sess.ring),
		}
		sess.mu.Unlock()
		if seq > st.Acked {
			st.Behind = seq - st.Acked
		}
		if st.Window > 0 {
			st.Fill = float64(st.Buffered) / float64(st.Window)
		}
		per = append(per, st)
	}
	s.mu.Unlock()
	sort.Slice(per, func(i, j int) bool {
		if per[i].Behind != per[j].Behind {
			return per[i].Behind > per[j].Behind
		}
		return per[i].ID < per[j].ID
	})
	return ServerStats{
		Broadcast:  seq,
		Delivered:  s.delivered.Load(),
		Sessions:   len(per),
		Evicted:    s.evicted.Load(),
		PerSession: per,
	}
}

// NumClients returns the number of currently connected subscribers
// (lingering disconnected sessions not included).
func (s *Server) NumClients() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, sess := range s.sessions {
		sess.mu.Lock()
		if sess.conn != nil {
			n++
		}
		sess.mu.Unlock()
	}
	return n
}

// Close stops accepting, drains every connected subscriber's remaining
// window (bounded by the drain timeout), sends each an eof frame, and
// waits for all connection goroutines to finish. All Broadcast calls
// must have returned.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closing = true
	err := s.ln.Close()
	for id, sess := range s.sessions {
		sess.mu.Lock()
		sess.closing = true
		if sess.conn != nil {
			sess.conn.SetWriteDeadline(time.Now().Add(s.opt.drain))
			sess.cond.Broadcast() // writer: drain, eof, exit
		} else {
			// Nothing to drain to; the window dies with the server.
			sess.gone = true
			if sess.n > 0 {
				s.evicted.Add(1)
			}
			delete(s.sessions, id)
		}
		sess.mu.Unlock()
	}
	s.mu.Unlock()
	s.wg.Wait()
	s.mu.Lock()
	for id, sess := range s.sessions {
		// Anything still buffered here died undelivered (e.g. the
		// drain deadline cut off a stalled subscriber): that is loss,
		// and loss is always counted.
		sess.mu.Lock()
		if sess.n > 0 {
			s.evicted.Add(1)
		}
		sess.gone = true
		sess.mu.Unlock()
		delete(s.sessions, id)
	}
	s.mu.Unlock()
	return err
}
