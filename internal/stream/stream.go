// Package stream carries OSN events over TCP as newline-delimited
// JSON, mirroring how the paper's detector consumed Renren's
// operational log feed in production. A Server fans events out to any
// number of subscribers with per-client buffering (slow consumers drop
// oldest events rather than stalling the simulation); a Client
// receives events and hands them to a callback, reconnecting with
// backoff if the feed drops.
package stream

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"sybilwild/internal/osn"
	"sybilwild/internal/sim"
)

// WireEvent is the JSON wire form of an osn.Event.
type WireEvent struct {
	Type   string `json:"type"`
	At     int64  `json:"at"`
	Actor  int32  `json:"actor"`
	Target int32  `json:"target"`
	Aux    int32  `json:"aux,omitempty"`
}

// FromOSN converts an event to wire form.
func FromOSN(ev osn.Event) WireEvent {
	return WireEvent{
		Type:   ev.Type.String(),
		At:     ev.At,
		Actor:  int32(ev.Actor),
		Target: int32(ev.Target),
		Aux:    ev.Aux,
	}
}

// ToOSN converts back from wire form.
func (w WireEvent) ToOSN() (osn.Event, error) {
	var typ osn.EventType
	switch w.Type {
	case "friend_request":
		typ = osn.EvFriendRequest
	case "friend_accept":
		typ = osn.EvFriendAccept
	case "friend_reject":
		typ = osn.EvFriendReject
	case "message":
		typ = osn.EvMessage
	case "ban":
		typ = osn.EvBan
	case "blog_post":
		typ = osn.EvBlogPost
	case "blog_share":
		typ = osn.EvBlogShare
	default:
		return osn.Event{}, fmt.Errorf("stream: unknown event type %q", w.Type)
	}
	return osn.Event{
		Type:   typ,
		At:     sim.Time(w.At),
		Actor:  osn.AccountID(w.Actor),
		Target: osn.AccountID(w.Target),
		Aux:    w.Aux,
	}, nil
}

// ClientBuffer is the per-subscriber event buffer size; when a
// subscriber falls this far behind, its oldest events are dropped.
const ClientBuffer = 4096

// Server broadcasts events to TCP subscribers.
type Server struct {
	ln net.Listener

	mu      sync.Mutex
	clients map[net.Conn]chan []byte
	dropped uint64
	closed  bool
	wg      sync.WaitGroup
}

// NewServer listens on addr (e.g. "127.0.0.1:0") and starts accepting
// subscribers.
func NewServer(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("stream: listen: %w", err)
	}
	s := &Server{ln: ln, clients: make(map[net.Conn]chan []byte)}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		ch := make(chan []byte, ClientBuffer)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.clients[conn] = ch
		s.mu.Unlock()
		s.wg.Add(1)
		go s.writeLoop(conn, ch)
	}
}

func (s *Server) writeLoop(conn net.Conn, ch chan []byte) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.clients, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	w := bufio.NewWriter(conn)
	for line := range ch {
		if line == nil {
			return // close sentinel
		}
		if _, err := w.Write(line); err != nil {
			return
		}
		// Flush when the buffer has drained so bursts batch but the
		// tail is never delayed.
		if len(ch) == 0 {
			if err := w.Flush(); err != nil {
				return
			}
		}
	}
}

// Broadcast sends an event to all connected subscribers. It never
// blocks: a subscriber whose buffer is full loses its oldest queued
// event (counted in Dropped).
func (s *Server) Broadcast(ev osn.Event) {
	line, err := json.Marshal(FromOSN(ev))
	if err != nil {
		return // unreachable for this type; keep Broadcast infallible
	}
	line = append(line, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ch := range s.clients {
		for {
			select {
			case ch <- line:
			default:
				// Full: drop the oldest and retry.
				select {
				case <-ch:
					s.dropped++
				default:
				}
				continue
			}
			break
		}
	}
}

// Dropped returns the number of events dropped across all subscribers.
func (s *Server) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// NumClients returns the current subscriber count.
func (s *Server) NumClients() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.clients)
}

// Close stops accepting, disconnects all subscribers and waits for
// writer goroutines to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.ln.Close()
	for conn, ch := range s.clients {
		close(ch)
		conn.Close()
		delete(s.clients, conn)
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// ErrClosed is returned by Client.Recv after Close.
var ErrClosed = errors.New("stream: client closed")

// Client subscribes to a Server's event feed.
type Client struct {
	conn net.Conn
	sc   *bufio.Scanner
}

// Dial connects to a stream server.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("stream: dial: %w", err)
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	return &Client{conn: conn, sc: sc}, nil
}

// Recv blocks for the next event. It returns an error when the
// connection ends or a frame fails to parse.
func (c *Client) Recv() (osn.Event, error) {
	if !c.sc.Scan() {
		if err := c.sc.Err(); err != nil {
			return osn.Event{}, fmt.Errorf("stream: read: %w", err)
		}
		return osn.Event{}, ErrClosed
	}
	var w WireEvent
	if err := json.Unmarshal(c.sc.Bytes(), &w); err != nil {
		return osn.Event{}, fmt.Errorf("stream: bad frame: %w", err)
	}
	return w.ToOSN()
}

// Close disconnects the client.
func (c *Client) Close() error { return c.conn.Close() }

// Subscribe dials addr and delivers events to fn until the connection
// ends, reconnecting with exponential backoff up to maxRetries
// consecutive failures. It returns the first permanent error.
func Subscribe(addr string, fn func(osn.Event), maxRetries int) error {
	backoff := 50 * time.Millisecond
	retries := 0
	for {
		c, err := Dial(addr)
		if err != nil {
			retries++
			if retries > maxRetries {
				return err
			}
			time.Sleep(backoff)
			if backoff < 2*time.Second {
				backoff *= 2
			}
			continue
		}
		retries = 0
		backoff = 50 * time.Millisecond
		for {
			ev, err := c.Recv()
			if err != nil {
				c.Close()
				if errors.Is(err, ErrClosed) {
					return nil // clean end of feed
				}
				break // reconnect
			}
			fn(ev)
		}
	}
}
