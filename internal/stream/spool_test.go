package stream

import (
	"errors"
	"testing"
	"time"

	"sybilwild/internal/spool"
)

// spooledServer builds a server with a tiny in-memory window backed
// by a disk spool in a test temp dir.
func spooledServer(t *testing.T, window int, opts ...ServerOption) (*Server, *spool.Spool) {
	t.Helper()
	sp, err := spool.Open(t.TempDir(), spool.WithSegmentBytes(4096))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sp.Close() })
	srv, err := NewServer("127.0.0.1:0",
		append([]ServerOption{WithReplayBuffer(window), WithSpool(sp)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, sp
}

// recvThrough drains the client until lastSeq reaches target,
// checking sequence continuity via the events' At stamps (testEvent(i)
// is broadcast as sequence i+1).
func recvThrough(t *testing.T, c *Client, target uint64) {
	t.Helper()
	for c.LastSeq() < target {
		evs, err := c.RecvBatch()
		if err != nil {
			t.Fatalf("recv at seq %d: %v", c.LastSeq(), err)
		}
		base := c.LastSeq() - uint64(len(evs)) + 1
		for i, ev := range evs {
			if want := int64(base) + int64(i) - 1; ev.At != want {
				t.Fatalf("seq %d carries event At=%d, want %d", base+uint64(i), ev.At, want)
			}
		}
	}
}

// TestResumePastWindowFromSpool is the tentpole behavior: a
// subscriber disconnects, the feed runs hundreds of events past its
// 16-event window, and the resume is still served — the gap coming
// from disk segments — with no ErrGap and no discontinuity.
func TestResumePastWindowFromSpool(t *testing.T) {
	const total = 2000
	srv, _ := spooledServer(t, 16)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		srv.Broadcast(testEvent(i))
	}
	recvThrough(t, c, 50)
	session, last := c.Session(), c.LastSeq()
	c.Kick() // hard kill, no goodbye
	waitDetached(t, srv)

	// The feed runs far past the window while the subscriber is gone;
	// without the spool this session would be evicted and the resume
	// answered with ErrGap.
	for i := 100; i < total; i++ {
		srv.Broadcast(testEvent(i))
	}

	c2, err := DialResume(srv.Addr(), session, last+1)
	if err != nil {
		t.Fatalf("resume past window: %v", err)
	}
	defer c2.Close()
	recvThrough(t, c2, total)

	// And the session is live again: new broadcasts flow through the
	// memory ring.
	srv.Broadcast(testEvent(total))
	recvThrough(t, c2, total+1)
	if st := srv.Stats(); st.Evicted != 0 {
		t.Fatalf("evicted = %d, want 0 (nothing was lost)", st.Evicted)
	}
}

// TestResumeEvictedSessionFromSpool: even after the session itself is
// long gone (linger expiry), a resume with its id is recreated from
// disk — the cold-start path a detector restoring a stale checkpoint
// takes.
func TestResumeEvictedSessionFromSpool(t *testing.T) {
	srv, _ := spooledServer(t, 8, WithSessionLinger(10*time.Millisecond))
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		srv.Broadcast(testEvent(i))
	}
	recvThrough(t, c, 10)
	session, last := c.Session(), c.LastSeq()
	c.Kick()
	waitDetached(t, srv)
	time.Sleep(30 * time.Millisecond) // linger expires
	for i := 20; i < 500; i++ {
		srv.Broadcast(testEvent(i)) // sweeps the expired session away
	}
	if srv.Stats().Sessions != 0 {
		t.Fatal("test premise broken: session still held")
	}

	c2, err := DialResume(srv.Addr(), session, last+1)
	if err != nil {
		t.Fatalf("cold resume of evicted session: %v", err)
	}
	defer c2.Close()
	recvThrough(t, c2, 500)
	if st := srv.Stats(); st.Evicted != 0 {
		t.Fatalf("evicted = %d, want 0 (spool retains everything)", st.Evicted)
	}
}

// TestSlowSubscriberDemotedNotStalled: with a spool, a subscriber
// overflowing its window no longer blocks Broadcast (nor gets
// evicted) — it is demoted to disk catch-up and still receives every
// event.
func TestSlowSubscriberDemotedNotStalled(t *testing.T) {
	const total = 5000
	srv, _ := spooledServer(t, 16, WithStallTimeout(50*time.Millisecond))
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Broadcast everything before the consumer reads a byte: the
	// 16-event window overflows immediately. Without the spool this
	// would block for the stall timeout and then evict; with it, the
	// loop must complete quickly.
	start := time.Now()
	demoted := false
	for i := 0; i < total; i++ {
		srv.Broadcast(testEvent(i))
		if !demoted && i%256 == 0 {
			for _, ss := range srv.Stats().PerSession {
				demoted = demoted || ss.CatchUp
			}
		}
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Broadcast of %d events took %v; demotion did not bypass backpressure", total, elapsed)
	}
	if !demoted {
		t.Fatal("session never entered catch-up mode")
	}
	recvThrough(t, c, total)
	if st := srv.Stats(); st.Evicted != 0 {
		t.Fatalf("evicted = %d, want 0", st.Evicted)
	}
}

// TestSpooledServerAdoptsSequence: a restarted producer reusing the
// spool directory continues the sequence space, and a subscriber from
// the previous incarnation resumes across the restart — disk history
// first, live events after.
func TestSpooledServerAdoptsSequence(t *testing.T) {
	dir := t.TempDir()
	sp, err := spool.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer("127.0.0.1:0", WithReplayBuffer(16), WithSpool(sp))
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		srv.Broadcast(testEvent(i))
	}
	recvThrough(t, c, 120)
	session, last := c.Session(), c.LastSeq()
	c.Close()
	srv.Close()
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart on the same spool.
	sp2, err := spool.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer sp2.Close()
	srv2, err := NewServer("127.0.0.1:0", WithReplayBuffer(16), WithSpool(sp2))
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	srv2.Broadcast(testEvent(300)) // must be assigned sequence 301, not 1

	c2, err := DialResume(srv2.Addr(), session, last+1)
	if err != nil {
		t.Fatalf("resume across producer restart: %v", err)
	}
	defer c2.Close()
	recvThrough(t, c2, 301)
}

// TestResumeBelowRetentionIsErrGap: pruned history answers resumes
// with a loud ErrGap, exactly like the memory tier used to — the
// spool narrows the gap, it must never hide one.
func TestResumeBelowRetentionIsErrGap(t *testing.T) {
	sp, err := spool.Open(t.TempDir(),
		spool.WithSegmentBytes(1024), spool.WithRetainBytes(2048))
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	srv, err := NewServer("127.0.0.1:0", WithReplayBuffer(8), WithSpool(sp),
		WithSessionLinger(10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	srv.Broadcast(testEvent(0))
	recvThrough(t, c, 1)
	session := c.Session()
	c.Close() // clean close acks everything delivered
	waitDetached(t, srv)
	time.Sleep(30 * time.Millisecond) // linger expires: nothing pins retention
	for i := 1; i < 3000; i++ {
		srv.Broadcast(testEvent(i))
	}
	if sp.First() <= 1 {
		t.Fatal("test premise broken: retention never pruned")
	}
	if _, err := DialResume(srv.Addr(), session, 2); !errors.Is(err, ErrGap) {
		t.Fatalf("resume below retention: err = %v, want ErrGap", err)
	}
}

// TestManualAckLargeLagOverSpool is the detectd shape that motivates
// the disk tier: a manual-ack consumer whose acks move only at
// checkpoints, with a window far smaller than the checkpoint
// interval. Without the spool the producer/consumer pair would
// deadlock (broken only by stall eviction); with it the consumer is
// demoted and the feed drains fully.
func TestManualAckLargeLagOverSpool(t *testing.T) {
	const total = 4000
	srv, _ := spooledServer(t, 32, WithStallTimeout(100*time.Millisecond))
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetManualAck(true)

	done := make(chan error, 1)
	go func() {
		for c.LastSeq() < total {
			if _, err := c.RecvBatch(); err != nil {
				done <- err
				return
			}
			// Checkpoint-shaped acks: every 1000 events, far beyond the
			// 32-event window.
			if seq := c.LastSeq(); seq/1000 > c.acked/1000 {
				c.Ack(seq / 1000 * 1000)
			}
		}
		done <- nil
	}()
	for i := 0; i < total; i++ {
		srv.Broadcast(testEvent(i))
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("consumer died: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("manual-ack consumer never drained the spooled feed")
	}
	if st := srv.Stats(); st.Evicted != 0 {
		t.Fatalf("evicted = %d, want 0", st.Evicted)
	}
}
