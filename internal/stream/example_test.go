package stream_test

import (
	"fmt"
	"time"

	"sybilwild/internal/osn"
	"sybilwild/internal/stream"
)

// ExampleServer wires a feed server to a subscriber via Subscribe,
// the resuming at-least-once consumption loop: the server drains its
// replay window into the subscriber before ending the feed, so every
// broadcast event arrives even though Close races the consumption.
func ExampleServer() {
	srv, err := stream.NewServer("127.0.0.1:0")
	if err != nil {
		panic(err)
	}

	received := make(chan int, 1)
	go func() {
		n := 0
		if err := stream.Subscribe(srv.Addr(), func(osn.Event) { n++ }, 5); err != nil {
			panic(err)
		}
		received <- n
	}()
	for srv.NumClients() == 0 {
		time.Sleep(time.Millisecond)
	}

	for i := 0; i < 1000; i++ {
		srv.Broadcast(osn.Event{Type: osn.EvFriendRequest, At: int64(i), Actor: 1, Target: 2})
	}
	srv.Close() // drain, then end of feed

	fmt.Println("received", <-received, "events")
	st := srv.Stats()
	fmt.Println("lossless:", st.Delivered == st.Broadcast && st.Evicted == 0)
	// Output:
	// received 1000 events
	// lossless: true
}

// ExampleDial drives the client by hand: Recv yields events in
// sequence order, and LastSeq names the resume point a reconnecting
// client would pass to DialResume.
func ExampleDial() {
	srv, err := stream.NewServer("127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	defer srv.Close()

	c, err := stream.Dial(srv.Addr())
	if err != nil {
		panic(err)
	}
	defer c.Close()

	srv.Broadcast(osn.Event{Type: osn.EvFriendRequest, At: 10, Actor: 7, Target: 9})
	srv.Broadcast(osn.Event{Type: osn.EvFriendAccept, At: 11, Actor: 9, Target: 7})

	for i := 0; i < 2; i++ {
		ev, err := c.Recv()
		if err != nil {
			panic(err)
		}
		fmt.Printf("seq %d: %s %d->%d\n", c.LastSeq(), ev.Type, ev.Actor, ev.Target)
	}
	// Output:
	// seq 1: friend_request 7->9
	// seq 2: friend_accept 9->7
}
