package stream

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"sybilwild/internal/osn"
)

// partEvents builds a deterministic pseudo-random event stream whose
// actors, targets and types spread across partitions, exercising every
// branch of the delivery contract (owned, replicated accepts,
// target-routed requests and bans, foreign).
func partEvents(n int, seed int64) []osn.Event {
	rng := rand.New(rand.NewSource(seed))
	types := []osn.EventType{
		osn.EvFriendRequest, osn.EvFriendAccept, osn.EvFriendReject,
		osn.EvMessage, osn.EvBan, osn.EvBlogPost, osn.EvBlogShare,
	}
	evs := make([]osn.Event, n)
	for i := range evs {
		evs[i] = osn.Event{
			Type:   types[rng.Intn(len(types))],
			At:     int64(i),
			Actor:  osn.AccountID(rng.Intn(200)),
			Target: osn.AccountID(rng.Intn(200)),
		}
	}
	return evs
}

// wantSeqs returns the global sequences partition part of parts
// receives when evs are broadcast as sequences 1..len(evs) — the
// oracle every partitioned-delivery test checks against.
func wantSeqs(evs []osn.Event, part, parts int) []uint64 {
	var out []uint64
	for i, ev := range evs {
		if osn.PartitionDelivers(ev, part, parts) {
			out = append(out, uint64(i+1))
		}
	}
	return out
}

// actorIn finds an account id the given partition owns.
func actorIn(t *testing.T, part, parts int) osn.AccountID {
	t.Helper()
	for id := osn.AccountID(1); id < 10000; id++ {
		if osn.Partition(id, parts) == part {
			return id
		}
	}
	t.Fatalf("no account id in partition %d/%d within 10000", part, parts)
	return 0
}

// TestPartitionActorAgreesWithOwnerPartition pins the producer-side
// shard router to the broker-side owner function: renrend -publish
// splits the population with PartitionActor, the broker filters
// subscriptions with osn.Partition, and a drift between the two would
// silently misroute accounts.
func TestPartitionActorAgreesWithOwnerPartition(t *testing.T) {
	for _, k := range []int{1, 2, 3, 5, 8, 64} {
		for id := 0; id < 5000; id++ {
			if got, want := PartitionActor(osn.AccountID(id), k), osn.Partition(osn.AccountID(id), k); got != want {
				t.Fatalf("PartitionActor(%d, %d) = %d, osn.Partition = %d", id, k, got, want)
			}
		}
	}
}

// TestPartitionedDeliveryMatchesContract is the broker-side half of
// the partition-filtering property: K subscribers each taking one
// slice of the same feed must receive exactly the events
// osn.PartitionDelivers assigns them — same order, same per-event
// global sequences — and every subscriber's cursor must end at the
// feed head even though none of them saw every event.
func TestPartitionedDeliveryMatchesContract(t *testing.T) {
	leakCheck(t)
	const K, total = 3, 2000
	evs := partEvents(total, 1)
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	clients := make([]*Client, K)
	for p := 0; p < K; p++ {
		c, err := Dial(s.Addr(), WithPartition(p, K))
		if err != nil {
			t.Fatalf("dial partition %d: %v", p, err)
		}
		defer c.Close()
		clients[p] = c
	}
	waitClients(t, s, K)

	type result struct {
		evs  []osn.Event
		seqs []uint64
		last uint64
		err  error
	}
	results := make([]result, K)
	var wg sync.WaitGroup
	for p, c := range clients {
		wg.Add(1)
		go func(p int, c *Client) {
			defer wg.Done()
			r := &results[p]
			for {
				batch, err := c.RecvBatch()
				if errors.Is(err, ErrClosed) {
					r.last = c.LastSeq()
					return
				}
				if err != nil {
					r.err = err
					return
				}
				seqs := c.LastBatchSeqs()
				if len(seqs) != len(batch) {
					r.err = fmt.Errorf("LastBatchSeqs has %d entries for a %d-event batch", len(seqs), len(batch))
					return
				}
				r.evs = append(r.evs, batch...)
				r.seqs = append(r.seqs, seqs...)
			}
		}(p, c)
	}

	for _, ev := range evs {
		s.Broadcast(ev)
	}
	s.Close() // drains every window, then eof
	wg.Wait()

	for p := 0; p < K; p++ {
		r := results[p]
		if r.err != nil {
			t.Fatalf("partition %d: %v", p, r.err)
		}
		want := wantSeqs(evs, p, K)
		if len(r.seqs) != len(want) {
			t.Fatalf("partition %d received %d events, contract says %d", p, len(r.seqs), len(want))
		}
		for i, seq := range r.seqs {
			if seq != want[i] {
				t.Fatalf("partition %d event %d has seq %d, want %d", p, i, seq, want[i])
			}
			if r.evs[i] != evs[seq-1] {
				t.Fatalf("partition %d seq %d carries %+v, broadcast was %+v", p, seq, r.evs[i], evs[seq-1])
			}
		}
		if r.last != total {
			t.Fatalf("partition %d cursor ended at %d, want the feed head %d", p, r.last, total)
		}
	}
}

// TestPartitionedRecvSingleEvents drives the per-event Recv path over
// a filtered subscription: each delivered event must advance LastSeq
// to at least its own global sequence, and the filtered stream must
// match the contract exactly.
func TestPartitionedRecvSingleEvents(t *testing.T) {
	leakCheck(t)
	const K, total = 2, 800
	evs := partEvents(total, 2)
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr(), WithPartition(0, K))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	waitClients(t, s, 1)

	for _, ev := range evs {
		s.Broadcast(ev)
	}
	want := wantSeqs(evs, 0, K)
	done := make(chan error, 1)
	go func() { done <- s.Close() }()
	for i, seq := range want {
		ev, err := c.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if ev != evs[seq-1] {
			t.Fatalf("recv %d: got %+v, want seq %d = %+v", i, ev, seq, evs[seq-1])
		}
		if c.LastSeq() < seq {
			t.Fatalf("recv %d: LastSeq %d behind the event's seq %d", i, c.LastSeq(), seq)
		}
	}
	if _, err := c.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("after drain: err = %v, want ErrClosed", err)
	}
	if c.LastSeq() != total {
		t.Fatalf("cursor ended at %d, want %d", c.LastSeq(), total)
	}
	c.Close()
	if err := <-done; err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestPartitionedCursorAdvancesPastForeignEvents: a subscriber whose
// partition owns none of the traffic must still track the feed head —
// empty fbatch frames advance its cursor, its acks follow, and the
// server's delivered accounting shows the progress. Without this a
// silent partition would pin the resume window at zero forever.
func TestPartitionedCursorAdvancesPastForeignEvents(t *testing.T) {
	leakCheck(t)
	const K = 2
	foreign := actorIn(t, 0, K)
	owned := actorIn(t, 1, K)
	s, err := NewServer("127.0.0.1:0", WithMaxBatch(4))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr(), WithPartition(1, K))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	waitClients(t, s, 1)

	// 100 owner-only events for the other partition: nothing to
	// deliver, but ≥ maxBatch of silence forces cursor-advance frames.
	for i := 0; i < 100; i++ {
		s.Broadcast(osn.Event{Type: osn.EvMessage, At: int64(i), Actor: foreign, Target: foreign})
	}
	s.Broadcast(osn.Event{Type: osn.EvMessage, At: 100, Actor: owned, Target: owned})
	ev, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if ev.At != 100 {
		t.Fatalf("got %+v, want the single owned event", ev)
	}
	if c.LastSeq() != 101 {
		t.Fatalf("LastSeq = %d, want 101 (cursor over the foreign run)", c.LastSeq())
	}
	// The client acks the advanced cursor when it next blocks; the
	// foreign events count as delivered cursor progress server-side.
	done := make(chan struct{})
	go func() { defer close(done); c.Recv() }() // flushes the ack, then blocks
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := s.Stats(); st.Delivered >= 100 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("delivered never covered the foreign run: %+v", s.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	c.Kick()
	<-done
}

// TestPartitionedResumeAfterKill kills a partitioned subscriber's
// connection mid-stream and resumes: the filtered feed must continue
// with no gap and no duplicate, in global coordinates.
func TestPartitionedResumeAfterKill(t *testing.T) {
	leakCheck(t)
	const K, total = 3, 3000
	evs := partEvents(total, 3)
	s, err := NewServer("127.0.0.1:0", WithReplayBuffer(total+16))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr(), WithPartition(1, K))
	if err != nil {
		t.Fatal(err)
	}
	waitClients(t, s, 1)
	for _, ev := range evs {
		s.Broadcast(ev)
	}
	want := wantSeqs(evs, 1, K)
	read := 0
	for read < len(want)/3 {
		ev, err := c.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", read, err)
		}
		if ev != evs[want[read]-1] {
			t.Fatalf("recv %d: got %+v, want seq %d", read, ev, want[read])
		}
		read++
	}
	c.conn.Close() // hard kill, no goodbye

	// The cursor may sit past want[read-1] (a drained frame covers
	// trailing foreign events); the remainder is whatever the contract
	// puts above it.
	c2, err := DialResume(s.Addr(), c.Session(), c.LastSeq()+1, WithPartition(1, K))
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	defer c2.Close()
	for _, seq := range want[read:] {
		if seq <= c.LastSeq() {
			t.Fatalf("cursor %d jumped over undelivered owned seq %d", c.LastSeq(), seq)
		}
		ev, err := c2.Recv()
		if err != nil {
			t.Fatalf("recv seq %d after resume: %v", seq, err)
		}
		if ev != evs[seq-1] {
			t.Fatalf("gap or duplicate after resume: got %+v, want seq %d = %+v", ev, seq, evs[seq-1])
		}
	}
}

// TestPartitionedResumePartitionMismatchRejected: a session's filter
// is part of its delivery state — resuming it under a different
// partition (or unpartitioned) must be refused loudly, not silently
// served the wrong slice.
func TestPartitionedResumePartitionMismatchRejected(t *testing.T) {
	leakCheck(t)
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr(), WithPartition(0, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	waitClients(t, s, 1)
	s.Broadcast(osn.Event{Type: osn.EvMessage, At: 1, Actor: actorIn(t, 0, 2)})
	if _, err := c.Recv(); err != nil {
		t.Fatal(err)
	}
	c.conn.Close()

	for name, opts := range map[string][]DialOption{
		"different partition": {WithPartition(1, 2)},
		"different group":     {WithPartition(0, 3)},
		"unpartitioned":       nil,
	} {
		_, err := DialResume(s.Addr(), c.Session(), c.LastSeq()+1, opts...)
		if !errors.Is(err, ErrGap) || !strings.Contains(err.Error(), "partition mismatch") {
			t.Fatalf("%s resume: err = %v, want ErrGap with a partition mismatch", name, err)
		}
	}
	// The matching partition still resumes fine.
	c2, err := DialResume(s.Addr(), c.Session(), c.LastSeq()+1, WithPartition(0, 2))
	if err != nil {
		t.Fatalf("matching resume: %v", err)
	}
	c2.Close()
}

// TestDialInvalidPartition: out-of-range requests die client-side.
func TestDialInvalidPartition(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", WithPartition(3, 2)); err == nil || !strings.Contains(err.Error(), "invalid partition") {
		t.Fatalf("err = %v, want invalid partition", err)
	}
	if _, err := Dial("127.0.0.1:1", WithPartition(-1, 4)); err == nil || !strings.Contains(err.Error(), "invalid partition") {
		t.Fatalf("err = %v, want invalid partition", err)
	}
}

// TestPartitionedCatchupFromSpool is the teardown audit for the
// demotion and catch-up-flip paths under a filtered subscription: a
// partitioned subscriber detaches, the feed overruns its tiny window
// (demoting the session to disk catch-up), and the resume must replay
// the filtered slice from the spool, flip to live delivery at an
// exact boundary, and keep serving live events — leaking neither
// goroutines nor fds across the whole dance.
func TestPartitionedCatchupFromSpool(t *testing.T) {
	leakCheck(t)
	const K, burst, live = 2, 2000, 100
	evs := partEvents(burst+live, 4)
	srv, _ := spooledServer(t, 16, WithMaxBatch(32))
	c, err := Dial(srv.Addr(), WithPartition(1, K))
	if err != nil {
		t.Fatal(err)
	}
	waitClients(t, srv, 1)
	c.conn.Close() // detach before any delivery
	waitDetached(t, srv)

	for _, ev := range evs[:burst] {
		srv.Broadcast(ev) // overruns the 16-slot window → demotion
	}
	c2, err := DialResume(srv.Addr(), c.Session(), 1, WithPartition(1, K))
	if err != nil {
		t.Fatalf("resume into catch-up: %v", err)
	}
	defer c2.Close()

	want := wantSeqs(evs, 1, K)
	got := make([]uint64, 0, len(want))
	for len(got) < len(want) {
		batch, err := c2.RecvBatch()
		if err != nil {
			t.Fatalf("recv after %d events: %v", len(got), err)
		}
		seqs := c2.LastBatchSeqs()
		if len(seqs) != len(batch) {
			t.Fatalf("LastBatchSeqs has %d entries for a %d-event batch", len(seqs), len(batch))
		}
		for i, seq := range seqs {
			if batch[i] != evs[seq-1] {
				t.Fatalf("seq %d carries %+v, broadcast was %+v", seq, batch[i], evs[seq-1])
			}
		}
		got = append(got, seqs...)
		if len(got) == len(wantSeqs(evs[:burst], 1, K)) {
			// Catch-up replayed the whole burst; the rest arrives live
			// through the flipped session.
			for _, ev := range evs[burst:] {
				srv.Broadcast(ev)
			}
		}
	}
	for i, seq := range got {
		if seq != want[i] {
			t.Fatalf("event %d has seq %d, want %d", i, seq, want[i])
		}
	}
}

// TestPartitionedBackfillFromStart: a brand-new partitioned consumer
// replays the whole spooled history of its slice (DialFrom(1)) before
// going live — the cluster-worker cold-start path.
func TestPartitionedBackfillFromStart(t *testing.T) {
	leakCheck(t)
	const K, total = 3, 1500
	evs := partEvents(total, 5)
	srv, _ := spooledServer(t, 16)
	for _, ev := range evs {
		srv.Broadcast(ev)
	}
	for p := 0; p < K; p++ {
		c, err := DialFrom(srv.Addr(), 1, WithPartition(p, K))
		if err != nil {
			t.Fatalf("backfill partition %d: %v", p, err)
		}
		want := wantSeqs(evs, p, K)
		for i := 0; i < len(want); {
			batch, err := c.RecvBatch()
			if err != nil {
				t.Fatalf("partition %d recv: %v", p, err)
			}
			for j, seq := range c.LastBatchSeqs() {
				if seq != want[i] {
					t.Fatalf("partition %d event %d has seq %d, want %d", p, i, seq, want[i])
				}
				if batch[j] != evs[seq-1] {
					t.Fatalf("partition %d seq %d carries wrong event", p, seq)
				}
				i++
			}
		}
		c.Close()
	}
}

// TestPartitionedStalledSubscriberEvicted is the kick-path audit under
// filtered subscriptions: a partitioned subscriber that never drains
// its owned slice is evicted after the stall timeout without wedging
// the producer, and the eviction tears the connection down.
func TestPartitionedStalledSubscriberEvicted(t *testing.T) {
	leakCheck(t)
	const K = 2
	owned := actorIn(t, 0, K)
	s, err := NewServer("127.0.0.1:0",
		WithReplayBuffer(8), WithStallTimeout(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr(), WithPartition(0, K))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	waitClients(t, s, 1)
	start := time.Now()
	for i := 0; i < 1000; i++ { // all owned, never read: window fills, then eviction
		s.Broadcast(osn.Event{Type: osn.EvMessage, At: int64(i), Actor: owned, Target: owned})
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("broadcast wedged for %v despite stall timeout", d)
	}
	if st := s.Stats(); st.Evicted != 1 {
		t.Fatalf("stats = %+v, want exactly one eviction", st)
	}
	// Frames already on the wire still drain; the eviction then
	// surfaces as a connection error, never a clean eof.
	for {
		_, err := c.Recv()
		if err == nil {
			continue
		}
		if errors.Is(err, ErrClosed) {
			t.Fatalf("evicted subscriber saw a clean eof, want a connection error")
		}
		break
	}
}

// TestPartitionedLingerExpiryEvicted: the linger clock must run for a
// detached partitioned session even when every event in the meantime
// was foreign — the foreign fast path skips the ring but not the
// session's lifetime bookkeeping.
func TestPartitionedLingerExpiryEvicted(t *testing.T) {
	leakCheck(t)
	const K = 2
	foreign := actorIn(t, 1, K)
	s, err := NewServer("127.0.0.1:0", WithSessionLinger(30*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr(), WithPartition(0, K))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	waitClients(t, s, 1)
	c.conn.Close()
	waitDetached(t, s)
	time.Sleep(60 * time.Millisecond)
	// A purely foreign event must still trigger the expiry sweep.
	s.Broadcast(osn.Event{Type: osn.EvMessage, At: 0, Actor: foreign, Target: foreign})
	if _, err := DialResume(s.Addr(), c.Session(), 1, WithPartition(0, K)); !errors.Is(err, ErrGap) {
		t.Fatalf("resume after linger expiry: err = %v, want ErrGap", err)
	}
}

// TestSnapshotOfferFetchRoundTrip exercises the rendezvous store end
// to end: miss, offer, fetch, freshness rules, key isolation, stats.
func TestSnapshotOfferFetchRoundTrip(t *testing.T) {
	leakCheck(t)
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	addr := s.Addr()

	if _, _, err := FetchSnapshot(addr, 1, 3); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("fetch before any offer: err = %v, want ErrNoSnapshot", err)
	}

	blob := []byte("\x00\x01snapshot payload \xff not JSON at all")
	if err := OfferSnapshot(addr, 1, 3, 500, blob); err != nil {
		t.Fatalf("offer: %v", err)
	}
	seq, data, err := FetchSnapshot(addr, 1, 3)
	if err != nil {
		t.Fatalf("fetch: %v", err)
	}
	if seq != 500 || !bytes.Equal(data, blob) {
		t.Fatalf("fetch = (%d, %q), want (500, original payload)", seq, data)
	}

	// A stale offer must not regress the held snapshot.
	if err := OfferSnapshot(addr, 1, 3, 400, []byte("older")); err != nil {
		t.Fatalf("stale offer: %v", err)
	}
	if seq, _, _ := FetchSnapshot(addr, 1, 3); seq != 500 {
		t.Fatalf("stale offer regressed the store to seq %d", seq)
	}
	// A fresher offer replaces it.
	if err := OfferSnapshot(addr, 1, 3, 600, []byte("newer")); err != nil {
		t.Fatalf("fresher offer: %v", err)
	}
	if seq, data, _ := FetchSnapshot(addr, 1, 3); seq != 600 || string(data) != "newer" {
		t.Fatalf("fetch after fresher offer = (%d, %q)", seq, data)
	}

	// Keys are (part, parts): a 2-way snapshot is invisible to 3-way.
	if err := OfferSnapshot(addr, 1, 2, 50, []byte("two-way")); err != nil {
		t.Fatal(err)
	}
	if seq, data, _ := FetchSnapshot(addr, 1, 3); seq != 600 || string(data) != "newer" {
		t.Fatalf("(1,2) offer bled into (1,3): (%d, %q)", seq, data)
	}
	if _, _, err := FetchSnapshot(addr, 0, 3); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("fetch of unoffered sibling partition: err = %v, want ErrNoSnapshot", err)
	}

	snaps := s.Stats().Snapshots
	if len(snaps) != 2 {
		t.Fatalf("stats list %d snapshots, want 2: %+v", len(snaps), snaps)
	}
	if snaps[0].Parts != 2 || snaps[0].Part != 1 || snaps[0].Seq != 50 ||
		snaps[1].Parts != 3 || snaps[1].Part != 1 || snaps[1].Seq != 600 || snaps[1].Bytes != len("newer") {
		t.Fatalf("snapshot stats = %+v", snaps)
	}

	// Invalid partitions die before touching the network or the store.
	if err := OfferSnapshot(addr, 3, 3, 1, nil); err == nil {
		t.Fatal("offer with part == parts accepted")
	}
	if _, _, err := FetchSnapshot(addr, -1, 3); err == nil {
		t.Fatal("fetch with negative part accepted")
	}
}

// TestSnapshotLargerThanFrameLimit: snapshot payloads ride the
// header's declared size, not MaxFrameSize — a graph snapshot past
// 16 MiB must transfer intact.
func TestSnapshotLargerThanFrameLimit(t *testing.T) {
	leakCheck(t)
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	big := make([]byte, 17<<20)
	for i := range big {
		big[i] = byte(i * 2654435761)
	}
	if err := OfferSnapshot(s.Addr(), 0, 2, 9001, big); err != nil {
		t.Fatalf("offer: %v", err)
	}
	seq, data, err := FetchSnapshot(s.Addr(), 0, 2)
	if err != nil {
		t.Fatalf("fetch: %v", err)
	}
	if seq != 9001 || !bytes.Equal(data, big) {
		t.Fatalf("large snapshot corrupted in transit (seq %d, %d bytes)", seq, len(data))
	}
}
