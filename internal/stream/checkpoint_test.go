package stream

import (
	"errors"
	"testing"
	"time"
)

// waitStats polls the server until cond is satisfied by a stats
// snapshot (acks travel the wire asynchronously).
func waitStats(t *testing.T, s *Server, what string, cond func(ServerStats) bool) ServerStats {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := s.Stats()
		if cond(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s; stats %+v", what, st)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestManualAckPinsWindowToCheckpoints is the checkpointed-consumer
// contract at stream level: in manual-ack mode delivery does not trim
// the server's replay window — only explicit Ck acks do — so a crash
// after delivery but before checkpoint can still resume from the last
// acked (checkpointed) sequence and replay the difference.
func TestManualAckPinsWindowToCheckpoints(t *testing.T) {
	const total = 120
	s, err := NewServer("127.0.0.1:0", WithReplayBuffer(total+16))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	c.SetManualAck(true)
	for i := 0; i < total; i++ {
		s.Broadcast(testEvent(i))
	}
	for i := 0; i < total; i++ {
		if _, err := c.Recv(); err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
	}
	// Everything delivered, nothing acked: the window must still hold
	// all of it.
	st := s.Stats()
	if len(st.PerSession) != 1 || st.PerSession[0].Buffered != total || st.PerSession[0].Behind != total {
		t.Fatalf("manual-ack session trimmed without an ack: %+v", st.PerSession)
	}

	// "Checkpoint" at sequence 40: ack it and watch the window trim to
	// exactly the unacked remainder.
	if err := c.Ack(40); err != nil {
		t.Fatal(err)
	}
	waitStats(t, s, "ack 40 to trim", func(st ServerStats) bool {
		return len(st.PerSession) == 1 && st.PerSession[0].Acked == 40 && st.PerSession[0].Buffered == total-40
	})

	// Crash after delivering all 120 with only 40 checkpointed: resume
	// from 41 must replay 41..120.
	c.Kick()
	c2, err := DialResume(s.Addr(), c.Session(), 41)
	if err != nil {
		t.Fatalf("resume from checkpoint: %v", err)
	}
	defer c2.Close()
	for i := 40; i < total; i++ {
		ev, err := c2.Recv()
		if err != nil {
			t.Fatalf("replay recv %d: %v", i, err)
		}
		if ev.At != int64(i) {
			t.Fatalf("replay event %d: At=%d, want %d", i, ev.At, i)
		}
	}
}

// TestManualAckCloseDoesNotAck: Close in manual mode must not push
// the server's cursor past the last explicit ack (a graceful exit
// before the final checkpoint would otherwise break crash recovery).
func TestManualAckCloseDoesNotAck(t *testing.T) {
	s, err := NewServer("127.0.0.1:0", WithReplayBuffer(64))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	c.SetManualAck(true)
	for i := 0; i < 10; i++ {
		s.Broadcast(testEvent(i))
	}
	for i := 0; i < 10; i++ {
		if _, err := c.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()
	waitDetached(t, s)
	if st := s.Stats(); len(st.PerSession) != 1 || st.PerSession[0].Acked != 0 {
		t.Fatalf("manual-ack Close acked: %+v", st.PerSession)
	}
}

// TestPerSessionLagOrdering: the slowest consumer sorts first, with
// lag measured both as events-behind-head and window fill, so the
// operator can spot who is about to stall the feed.
func TestPerSessionLagOrdering(t *testing.T) {
	const window = 64
	s, err := NewServer("127.0.0.1:0", WithReplayBuffer(window))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	fast, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer fast.Close()
	slow, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()
	slow.SetManualAck(true) // consumes but never acks: lag accumulates

	const n = 48
	for i := 0; i < n; i++ {
		s.Broadcast(testEvent(i))
	}
	for i := 0; i < n; i++ {
		if _, err := fast.Recv(); err != nil {
			t.Fatal(err)
		}
		if _, err := slow.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	// One more Recv on fast would block; force its acks out instead.
	fast.flushAcks()

	st := waitStats(t, s, "fast session to drain", func(st ServerStats) bool {
		return len(st.PerSession) == 2 && st.PerSession[1].Behind == 0
	})
	worst := st.PerSession[0]
	if worst.ID != slow.Session() {
		t.Fatalf("worst-lagging session is %q, want the slow one %q", worst.ID, slow.Session())
	}
	if worst.Behind != n || worst.Buffered != n || worst.Window != window {
		t.Fatalf("slow session lag = %+v, want behind=%d buffered=%d window=%d", worst, n, n, window)
	}
	if want := float64(n) / float64(window); worst.Fill != want {
		t.Fatalf("slow session fill = %v, want %v", worst.Fill, want)
	}
	if !worst.Connected {
		t.Fatal("slow session should report connected")
	}
}

// TestInterruptAllowsFinalAck: Interrupt fails the pending read but
// keeps the connection good for a last Ack — the graceful-shutdown
// path, where the final checkpoint must still be acknowledged.
func TestInterruptAllowsFinalAck(t *testing.T) {
	s, err := NewServer("127.0.0.1:0", WithReplayBuffer(64))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	c.SetManualAck(true)
	for i := 0; i < 10; i++ {
		s.Broadcast(testEvent(i))
	}
	for i := 0; i < 10; i++ {
		if _, err := c.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		c.Interrupt()
	}()
	if _, err := c.Recv(); err == nil || errors.Is(err, ErrClosed) {
		t.Fatalf("recv survived interrupt: err = %v", err)
	}
	if err := c.Ack(10); err != nil {
		t.Fatalf("ack after interrupt: %v", err)
	}
	waitStats(t, s, "final ack to land", func(st ServerStats) bool {
		return len(st.PerSession) == 1 && st.PerSession[0].Acked == 10
	})
	c.Close()
}

// TestKickIsResumable: Kick severs without acking or ending the
// session; a DialResume picks up where delivery stopped.
func TestKickIsResumable(t *testing.T) {
	s, err := NewServer("127.0.0.1:0", WithReplayBuffer(64))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	s.Broadcast(testEvent(0))
	if _, err := c.Recv(); err != nil {
		t.Fatal(err)
	}
	c.Kick()
	if _, err := c.Recv(); err == nil || errors.Is(err, ErrClosed) {
		t.Fatalf("recv after kick: err = %v, want connection loss", err)
	}
	c2, err := DialResume(s.Addr(), c.Session(), c.LastSeq()+1)
	if err != nil {
		t.Fatalf("resume after kick: %v", err)
	}
	defer c2.Close()
	s.Broadcast(testEvent(1))
	ev, err := c2.Recv()
	if err != nil || ev.At != 1 {
		t.Fatalf("post-kick resume recv = %v, %v", ev, err)
	}
}
