package stream

// Relay is the interior node of a broker tree: it subscribes to an
// upstream broker as an ordinary resumable session and feeds its own
// Server in sequence-adopting mode (AdoptFrame), so the canonical
// frame bytes the upstream encoded once are spooled and fanned out
// here without a single re-encode or event-level copy. A 2-level tree
// — one root broker, E edge relays, S subscribers each — serves E×S
// consumers while the root pays for E sessions and each edge pays for
// S, which is what makes fan-out at 100+ subscribers flat instead of
// linear in one broker's write loop.
//
// The relay owns the full subscriber lifecycle on its upstream side:
// it resumes from its own spool head across restarts of either
// endpoint (reconnect with exponential backoff; an error wrapping
// ErrGap is terminal — the upstream pruned below our head and the gap
// cannot be hidden), and on upstream eof it drains and closes its own
// server, propagating the eof down the tree. On the downstream side it
// is just a Server: resumable sessions, partitioned fbatch
// subscriptions, and snapshot rendezvous are all served at the edge.

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"sybilwild/internal/wire"
)

// relayAckEvery bounds how many adopted events may go unacknowledged
// while the upstream keeps the relay busy: the pump acks whenever its
// read buffer drains, and at least once per this many events so a
// firehose upstream still trims its replay window.
const relayAckEvery = 1024

// relayConfig collects RelayOption settings.
type relayConfig struct {
	srvOpts    []ServerOption
	maxRetries int
}

// RelayOption configures NewRelay.
type RelayOption func(*relayConfig)

// WithRelayServer passes server options through to the relay's
// downstream broker — spool, window, linger, batch sizing all apply
// exactly as on a standalone Server.
func WithRelayServer(opts ...ServerOption) RelayOption {
	return func(c *relayConfig) { c.srvOpts = append(c.srvOpts, opts...) }
}

// WithRelayRetries bounds consecutive upstream dial failures before
// the relay gives up (default 8; backoff doubles 50ms → 2s between
// attempts). Failures reset on any successful handshake.
func WithRelayRetries(n int) RelayOption {
	return func(c *relayConfig) { c.maxRetries = n }
}

// RelayStats is a point-in-time snapshot of one relay hop, the
// substance of the per-hop audit line.
type RelayStats struct {
	Upstream   string // upstream broker address
	Hop        int    // tree depth of this relay's server (root = 0)
	Seq        uint64 // highest adopted global sequence (== downstream head)
	Frames     uint64 // upstream frames adopted
	Events     uint64 // upstream events adopted
	Reconnects uint64 // upstream reconnects survived
}

// Relay chains this process's broker onto an upstream one. Create with
// NewRelay; stop with Close (drain downstream, like a clean shutdown)
// or Abort (kill -9 double). Wait blocks until the upstream feed ends
// or the relay fails terminally.
type Relay struct {
	srv      *Server
	upstream string
	session  string
	retries  int

	mu     sync.Mutex
	conn   net.Conn // current upstream connection, severed by Close/Abort
	closed bool
	abort  bool

	quit chan struct{} // closed once, wakes the backoff sleep
	done chan struct{} // closed when the run loop exits

	hop        atomic.Int32
	frames     atomic.Uint64
	events     atomic.Uint64
	reconnects atomic.Uint64

	errMu sync.Mutex
	err   error
}

// NewRelay starts a broker on addr that mirrors the feed served at
// upstream. The local server comes up immediately — downstream
// subscribers can connect and (if the relay has a spool) backfill
// before the upstream link is even established — and the upstream
// subscription resumes from the local head: an empty spool asks for
// sequence 1 (full backfill), a restarted relay asks for exactly the
// first frame it is missing.
func NewRelay(addr, upstream string, opts ...RelayOption) (*Relay, error) {
	cfg := relayConfig{maxRetries: 8}
	for _, fn := range opts {
		fn(&cfg)
	}
	// NewServer already seats the sequencer at the spool's end, so a
	// spooled relay restarting mid-feed resumes at exactly the first
	// frame it is missing — no relay-specific recovery step needed.
	srv, err := NewServer(addr, append(cfg.srvOpts, withAdopting())...)
	if err != nil {
		return nil, err
	}
	r := &Relay{
		srv:      srv,
		upstream: upstream,
		session:  newSessionID(),
		retries:  cfg.maxRetries,
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go r.run()
	return r, nil
}

// Server returns the relay's downstream broker, for stats and
// snapshot-rendezvous wiring. Lifecycle (Close/Abort) belongs to the
// Relay — don't close the server directly.
func (r *Relay) Server() *Server { return r.srv }

// Addr returns the downstream listen address.
func (r *Relay) Addr() string { return r.srv.Addr() }

// Hop returns this relay's depth in the broker tree: its upstream's
// hop + 1, so a relay on the root is hop 1. Zero until the first
// handshake completes.
func (r *Relay) Hop() int { return int(r.hop.Load()) }

// Stats snapshots the relay's upstream-side counters.
func (r *Relay) Stats() RelayStats {
	return RelayStats{
		Upstream:   r.upstream,
		Hop:        int(r.hop.Load()),
		Seq:        r.srv.HeadSeq(),
		Frames:     r.frames.Load(),
		Events:     r.events.Load(),
		Reconnects: r.reconnects.Load(),
	}
}

// Wait blocks until the relay stops on its own: nil after upstream eof
// has been propagated downstream, an error wrapping ErrGap when the
// upstream pruned past our resume point, or the last dial error when
// reconnection attempts are exhausted. Close and Abort also unblock it.
func (r *Relay) Wait() error {
	<-r.done
	r.errMu.Lock()
	defer r.errMu.Unlock()
	return r.err
}

// Close stops the relay cleanly: the upstream link is severed, then
// the downstream server drains every subscriber's window and sends
// eof, exactly like Close on a standalone broker.
func (r *Relay) Close() error {
	r.shutdown(false)
	<-r.done
	return r.srv.Close()
}

// Abort is the kill -9 double, matching Server.Abort: upstream link
// and every downstream connection severed without drain or eof, spool
// left as a crash would. A replacement relay opened on the same spool
// directory resumes where this one died.
func (r *Relay) Abort() {
	r.shutdown(true)
	r.srv.Abort()
	<-r.done
}

func (r *Relay) shutdown(abort bool) {
	r.mu.Lock()
	if !r.closed {
		r.closed = true
		r.abort = abort
		close(r.quit)
	}
	if abort {
		r.abort = true
	}
	if r.conn != nil {
		r.conn.Close()
		r.conn = nil
	}
	r.mu.Unlock()
}

func (r *Relay) isClosed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.closed
}

func (r *Relay) fail(err error) {
	r.errMu.Lock()
	if r.err == nil {
		r.err = err
	}
	r.errMu.Unlock()
}

// run is the upstream loop: dial (with resume from the local head),
// pump frames into AdoptFrame, reconnect on connection loss. It exits
// on upstream eof (propagated downstream via Close), a terminal error
// (ErrGap, exhausted retries), or Close/Abort.
func (r *Relay) run() {
	defer close(r.done)
	backoff := 50 * time.Millisecond
	fails := 0
	for {
		if r.isClosed() {
			return
		}
		conn, br, err := r.dialUpstream()
		if err != nil {
			if r.isClosed() {
				return
			}
			if errors.Is(err, ErrGap) {
				// The upstream no longer holds our next sequence; no
				// amount of retrying recovers the lost range. Loud and
				// terminal, per the delivery contract.
				r.fail(err)
				return
			}
			fails++
			if fails > r.retries {
				r.fail(err)
				return
			}
			select {
			case <-time.After(backoff):
			case <-r.quit:
				return
			}
			if backoff < 2*time.Second {
				backoff *= 2
			}
			continue
		}
		fails = 0
		backoff = 50 * time.Millisecond

		eof, err := r.pump(conn, br)
		r.mu.Lock()
		if r.conn == conn {
			r.conn = nil
		}
		r.mu.Unlock()
		conn.Close()
		switch {
		case eof:
			// Upstream feed complete: drain our own subscribers and
			// send them eof — the propagation step that walks the tree.
			r.mu.Lock()
			aborted := r.abort
			r.mu.Unlock()
			if !aborted {
				if cerr := r.srv.Close(); cerr != nil {
					r.fail(cerr)
				}
			}
			return
		case r.isClosed():
			return
		case err != nil && errors.Is(err, errAdoptFatal):
			r.fail(err)
			return
		default:
			// Connection lost mid-stream: resume the session from the
			// local head on a fresh connection.
			r.reconnects.Add(1)
		}
	}
}

// errAdoptFatal tags pump errors that reconnecting cannot fix (the
// downstream server refused a frame for a non-transient reason).
var errAdoptFatal = errors.New("stream: relay ingest failed")

// dialUpstream performs the relay handshake: an ordinary subscriber
// hello with Relay set and Resume at the local head + 1, so the
// upstream either replays what this hop is missing (memory window or
// its own spool) or rejects with the gap error. The welcome's Hop
// field tells the relay its depth; the downstream server advertises
// hop+1 in its own welcomes.
func (r *Relay) dialUpstream() (net.Conn, *bufio.Reader, error) {
	conn, err := net.DialTimeout("tcp", r.upstream, 5*time.Second)
	if err != nil {
		return nil, nil, fmt.Errorf("stream: relay dial %s: %w", r.upstream, err)
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		conn.Close()
		return nil, nil, errors.New("stream: relay closed")
	}
	r.conn = conn
	r.mu.Unlock()

	resume := r.srv.HeadSeq() + 1
	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriterSize(conn, 4<<10)
	conn.SetDeadline(time.Now().Add(handshakeTimeout))
	hello := frame{T: frameHello, V: ProtocolVersion, Session: r.session, Resume: resume, Relay: true}
	if err := writeControl(bw, hello); err == nil {
		err = bw.Flush()
	}
	if err != nil {
		conn.Close()
		return nil, nil, fmt.Errorf("stream: relay handshake: %w", err)
	}
	payload, err := readFrame(br, nil)
	if err != nil {
		conn.Close()
		return nil, nil, fmt.Errorf("stream: relay handshake: %w", err)
	}
	var welcome frame
	if err := json.Unmarshal(payload, &welcome); err != nil || welcome.T != frameWelcome {
		conn.Close()
		return nil, nil, fmt.Errorf("stream: relay handshake: expected welcome, got %q", payload)
	}
	if welcome.Err != "" {
		conn.Close()
		return nil, nil, fmt.Errorf("%w: %s", ErrGap, welcome.Err)
	}
	conn.SetDeadline(time.Time{})
	hop := int32(welcome.Hop + 1)
	r.hop.Store(hop)
	r.srv.hop.Store(hop)
	return conn, br, nil
}

// pump reads upstream frames and adopts them until eof, connection
// loss, or a fatal ingest error. Each batch frame gets a fresh buffer
// — AdoptFrame retains the payload by reference as the shared chunk —
// while control frames are rare enough that the allocation doesn't
// matter. Acks ride on idle moments (empty read buffer) and at least
// every relayAckEvery events, keeping the upstream window trimmed
// without an ack per frame.
func (r *Relay) pump(conn net.Conn, br *bufio.Reader) (eof bool, err error) {
	bw := bufio.NewWriterSize(conn, 1<<10)
	var acked uint64
	ack := func() {
		if head := r.srv.HeadSeq(); head > acked {
			if writeControl(bw, frame{T: frameAck, Ack: head}) == nil && bw.Flush() == nil {
				acked = head
			}
		}
	}
	for {
		payload, rerr := readFrame(br, nil)
		if rerr != nil {
			return false, rerr
		}
		if first, n, ok := wire.ParseBatchBounds(payload); ok {
			if aerr := r.srv.AdoptFrame(payload); aerr != nil {
				if errors.Is(aerr, ErrAdoptGap) {
					// The resumed stream skipped frames — only a broken
					// upstream produces this; reconnect and re-resume.
					return false, aerr
				}
				return false, fmt.Errorf("%w: batch at %d/%d: %v", errAdoptFatal, first, n, aerr)
			}
			r.frames.Add(1)
			r.events.Add(uint64(n))
			if r.srv.HeadSeq()-acked >= relayAckEvery || br.Buffered() == 0 {
				ack()
			}
			continue
		}
		var f frame
		if uerr := json.Unmarshal(payload, &f); uerr != nil {
			return false, fmt.Errorf("stream: relay: bad upstream frame: %w", uerr)
		}
		switch f.T {
		case frameEOF:
			ack() // retire everything delivered before hanging up
			return true, nil
		case frameBatch:
			// A batch from a non-canonical encoder: AdoptFrame's whole
			// point is reusing canonical bytes, so this is fatal rather
			// than silently re-encoded.
			return false, fmt.Errorf("%w: upstream sent a non-canonical batch frame", errAdoptFatal)
		default:
			return false, fmt.Errorf("%w: unexpected %q frame on relay feed", errAdoptFatal, f.T)
		}
	}
}
