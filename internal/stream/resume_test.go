package stream

import (
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sybilwild/internal/agents"
	"sybilwild/internal/detector"
	"sybilwild/internal/osn"
	"sybilwild/internal/sim"
)

// TestResumeAfterKill kills the client's connection mid-stream and
// redials with the last delivered sequence: the combined stream must
// have no gap and no duplicate.
func TestResumeAfterKill(t *testing.T) {
	const total = 3000
	s, err := NewServer("127.0.0.1:0", WithReplayBuffer(total+16))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < total; i++ {
		s.Broadcast(testEvent(i))
	}
	for i := 0; i < total/3; i++ {
		ev, err := c.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if ev.At != int64(i) {
			t.Fatalf("event %d: At=%d", i, ev.At)
		}
	}
	c.conn.Close() // hard kill, no goodbye

	c2, err := DialResume(s.Addr(), c.Session(), c.LastSeq()+1)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	defer c2.Close()
	for i := total / 3; i < total; i++ {
		ev, err := c2.Recv()
		if err != nil {
			t.Fatalf("recv %d after resume: %v", i, err)
		}
		if ev.At != int64(i) {
			t.Fatalf("gap or duplicate after resume: event %d has At=%d", i, ev.At)
		}
	}
}

// TestResumeResendsInFlight asks the server to rewind to a sequence
// the client already received but did not acknowledge: the server must
// resend its in-flight window (at-least-once), and the client-side
// dedupe must swallow the overlap so Recv stays exactly-once.
func TestResumeResendsInFlight(t *testing.T) {
	const total = 600
	s, err := NewServer("127.0.0.1:0", WithReplayBuffer(total+16))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < total; i++ {
		s.Broadcast(testEvent(i))
	}
	for i := 0; i < 500; i++ {
		if _, err := c.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	c.conn.Close()
	if c.acked >= c.LastSeq() {
		t.Fatalf("test premise broken: everything delivered (%d) was already acked (%d)",
			c.LastSeq(), c.acked)
	}
	// Rewind to the first unacked sequence, behind what was delivered.
	// The wire carries the overlap again; LastSeq-based dedupe must
	// discard it.
	from := c.acked + 1
	c2, err := DialResume(s.Addr(), c.Session(), from)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	defer c2.Close()
	c2.lastSeq = c.LastSeq() // what the application really saw
	c2.acked = c2.lastSeq
	for i := 500; i < total; i++ {
		ev, err := c2.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if ev.At != int64(i) {
			t.Fatalf("dedupe failed: event %d has At=%d", i, ev.At)
		}
	}
}

// TestResumeRejections: every way a resume can be unserviceable must
// produce a loud ErrGap, never a silent restart.
func TestResumeRejections(t *testing.T) {
	s, err := NewServer("127.0.0.1:0", WithReplayBuffer(32))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	s.Broadcast(testEvent(0))
	// An unknown session may resume only at the live head — that needs
	// no replay from either tier (TestDialFromHeadOfEmptyFeed); any
	// sequence below the head is a gap.
	if _, err := DialResume(s.Addr(), "nosuchsession", 1); !errors.Is(err, ErrGap) {
		t.Fatalf("unknown session below the head: err = %v, want ErrGap", err)
	}
	if _, err := c.Recv(); err != nil {
		t.Fatal(err)
	}
	c.conn.Close()
	if _, err := DialResume(s.Addr(), c.Session(), c.LastSeq()+100); !errors.Is(err, ErrGap) {
		t.Fatalf("resume ahead of feed: err = %v, want ErrGap", err)
	}

	// Overflow the detached session's window: it is evicted, and the
	// loss shows up both as ErrGap and in Stats.
	waitDetached(t, s)
	for i := 0; i < 100; i++ {
		s.Broadcast(testEvent(i))
	}
	if st := s.Stats(); st.Evicted != 1 {
		t.Fatalf("stats = %+v, want one eviction", st)
	}
	if _, err := DialResume(s.Addr(), c.Session(), c.LastSeq()+1); !errors.Is(err, ErrGap) {
		t.Fatalf("resume after eviction: err = %v, want ErrGap", err)
	}
}

// waitDetached blocks until the server has noticed its only client's
// connection is gone (so the next broadcasts exercise the detached
// code path deterministically).
func waitDetached(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.NumClients() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("server never noticed the disconnect")
		}
		time.Sleep(time.Millisecond)
	}
}

// killableProxy forwards TCP to a target and can kill all active
// connections, simulating a network blip between subscriber and feed.
type killableProxy struct {
	ln     net.Listener
	target string

	mu    sync.Mutex
	conns []net.Conn

	accepted atomic.Int32
	wg       sync.WaitGroup
}

func newKillableProxy(t *testing.T, target string) *killableProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &killableProxy{ln: ln, target: target}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		for {
			in, err := ln.Accept()
			if err != nil {
				return
			}
			out, err := net.Dial("tcp", target)
			if err != nil {
				in.Close()
				continue
			}
			p.accepted.Add(1)
			p.mu.Lock()
			p.conns = append(p.conns, in, out)
			p.mu.Unlock()
			p.wg.Add(2)
			go func() { defer p.wg.Done(); io.Copy(out, in); out.Close(); in.Close() }()
			go func() { defer p.wg.Done(); io.Copy(in, out); in.Close(); out.Close() }()
		}
	}()
	return p
}

func (p *killableProxy) Addr() string { return p.ln.Addr().String() }

func (p *killableProxy) killConns() {
	p.mu.Lock()
	for _, c := range p.conns {
		c.Close()
	}
	p.conns = nil
	p.mu.Unlock()
}

func (p *killableProxy) Close() {
	p.ln.Close()
	p.killConns()
	p.wg.Wait()
}

// TestSubscribeResumesAcrossKillNoFlagDivergence is the satellite
// end-to-end check: stream a full Sybil campaign log to a subscriber
// feeding a Monitor, kill the connection mid-stream (Subscribe must
// transparently resume), and require the flag set to match a serial
// Monitor replay of the same log exactly — any lost or duplicated
// event would shift a feature counter and diverge the verdicts.
func TestSubscribeResumesAcrossKillNoFlagDivergence(t *testing.T) {
	pop := agents.NewPopulation(17, agents.DefaultParams())
	pop.Bootstrap(800)
	pop.LaunchSybils(15, 30*sim.TicksPerHour)
	pop.RunFor(120 * sim.TicksPerHour)
	events := pop.Net.Events()
	g := pop.Net.Graph()
	rule := detector.Rule{OutAcceptMax: 0.5, FreqMin: 20, CCMax: 0.05, MinObserved: 10}

	// Reference: serial replay, no network.
	ref := detector.NewMonitor(rule, g, nil)
	for _, ev := range events {
		ref.Observe(ev)
	}
	if ref.FlaggedCount() == 0 {
		t.Fatal("reference monitor flagged nothing; divergence test is vacuous")
	}

	s, err := NewServer("127.0.0.1:0", WithReplayBuffer(len(events)+16))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	proxy := newKillableProxy(t, s.Addr())
	defer proxy.Close()

	live := detector.NewMonitor(rule, g, nil)
	var received atomic.Int64
	killAt := int64(len(events) / 3)
	done := make(chan error, 1)
	go func() {
		done <- Subscribe(proxy.Addr(), func(ev osn.Event) {
			if received.Add(1) == killAt {
				proxy.killConns() // mid-stream network blip
			}
			live.Observe(ev)
		}, 10)
	}()

	deadline := time.Now().Add(10 * time.Second)
	for s.NumClients() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	for _, ev := range events {
		s.Broadcast(ev)
	}
	for received.Load() < int64(len(events)) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	s.Close()
	if err := <-done; err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	if got := received.Load(); got != int64(len(events)) {
		t.Fatalf("delivered %d events across the kill, want exactly %d", got, len(events))
	}
	if proxy.accepted.Load() < 2 {
		t.Fatalf("proxy saw %d connections; the kill never forced a resume", proxy.accepted.Load())
	}

	want := ref.FlaggedIDs()
	got := live.FlaggedIDs()
	if len(want) != len(got) {
		t.Fatalf("flag divergence: serial replay flagged %d, resumed stream flagged %d", len(want), len(got))
	}
	wantSet := make(map[osn.AccountID]bool, len(want))
	for _, id := range want {
		wantSet[id] = true
	}
	for _, id := range got {
		if !wantSet[id] {
			t.Fatalf("flag divergence: account %d flagged only over the resumed stream", id)
		}
	}
}
