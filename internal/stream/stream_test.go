package stream

import (
	"encoding/json"
	"errors"
	"reflect"
	"testing"
	"time"

	"sybilwild/internal/osn"
)

func testEvent(i int) osn.Event {
	return osn.Event{Type: osn.EvFriendRequest, At: int64(i), Actor: 1, Target: osn.AccountID(i)}
}

func TestWireRoundTrip(t *testing.T) {
	evs := []osn.Event{
		{Type: osn.EvFriendRequest, At: 10, Actor: 1, Target: 2},
		{Type: osn.EvFriendAccept, At: 11, Actor: 2, Target: 1},
		{Type: osn.EvFriendReject, At: 12, Actor: 3, Target: 1},
		{Type: osn.EvMessage, At: 13, Actor: 1, Target: 4},
		{Type: osn.EvBan, At: 14, Target: 1},
	}
	for _, ev := range evs {
		got, err := FromOSN(ev).ToOSN()
		if err != nil {
			t.Fatalf("%v: %v", ev, err)
		}
		if got != ev {
			t.Fatalf("round trip: %+v != %+v", got, ev)
		}
	}
}

func TestWireUnknownType(t *testing.T) {
	if _, err := (WireEvent{Type: "bogus"}).ToOSN(); err == nil {
		t.Fatal("expected error for unknown type")
	}
}

// TestBatchCodecAgreesWithJSON pins the hand-rolled batch fast path to
// the encoding/json semantics of the same frame: the canonical encoder
// must produce valid JSON that the reflection path decodes to the
// same events, and the fast parser must decode the canonical bytes to
// the same events again.
func TestBatchCodecAgreesWithJSON(t *testing.T) {
	events := []osn.Event{
		{Type: osn.EvFriendRequest, At: 0, Actor: 0, Target: 0},
		{Type: osn.EvFriendAccept, At: 123456789012, Actor: 2147483647, Target: -5},
		{Type: osn.EvBlogShare, At: -3, Actor: 7, Target: 9, Aux: 42},
		{Type: osn.EvBan, At: 14, Target: 1, Aux: -1},
		{Type: osn.EvMessage, At: 5, Actor: 3, Target: 4},
	}
	for n := 0; n <= len(events); n++ {
		payload := appendBatchFrame(nil, 99, events[:n])
		if !json.Valid(payload) {
			t.Fatalf("canonical batch is not valid JSON: %s", payload)
		}
		seqSlow, evsSlow, err := parseBatchSlow(payload, nil)
		if err != nil {
			t.Fatalf("slow parse: %v", err)
		}
		seqFast, evsFast, ok := parseBatchFrame(payload, nil)
		if !ok {
			t.Fatalf("fast parser rejected canonical bytes: %s", payload)
		}
		if seqSlow != 99 || seqFast != 99 {
			t.Fatalf("seq: slow=%d fast=%d", seqSlow, seqFast)
		}
		if !reflect.DeepEqual(evsSlow, evsFast) ||
			(n > 0 && !reflect.DeepEqual(evsFast, events[:n])) {
			t.Fatalf("decode mismatch at n=%d:\nslow %+v\nfast %+v", n, evsSlow, evsFast)
		}
	}
}

// TestBatchParserFallsBack feeds the fast parser non-canonical but
// valid frames; it must refuse them (the slow path then handles them)
// rather than mis-parse.
func TestBatchParserFallsBack(t *testing.T) {
	for _, payload := range []string{
		`{"seq":1,"t":"batch","events":[]}`,                               // key order
		`{"t":"batch","seq":1,"events":[{"at":1,"type":"ban"}]}`,          // event key order
		`{"t": "batch","seq":1,"events":[]}`,                              // whitespace
		`{"t":"batch","seq":1,"events":[{"type":"\u0062an","at":1}]}`,     // escapes
		`{"t":"ack","ack":4}`,                                             // different frame
		`{"t":"batch","seq":1,"events":[{"type":"nope","at":1}]} `,        // unknown type
		`{"t":"batch","seq":1,"events":[{"type":"ban","at":1}],"x":true}`, // trailing key
	} {
		if _, _, ok := parseBatchFrame([]byte(payload), nil); ok {
			t.Fatalf("fast parser accepted non-canonical payload: %s", payload)
		}
	}
	// The slow path must still handle a reordered batch correctly.
	seq, evs, err := parseBatchSlow([]byte(`{"seq":7,"events":[{"at":1,"type":"ban","target":3}],"t":"batch"}`), nil)
	if err != nil || seq != 7 || len(evs) != 1 || evs[0].Type != osn.EvBan || evs[0].Target != 3 {
		t.Fatalf("slow parse of reordered batch: seq=%d evs=%+v err=%v", seq, evs, err)
	}
}

func waitClients(t testing.TB, s *Server, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.NumClients() < n {
		if time.Now().After(deadline) {
			t.Fatalf("clients never reached %d", n)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestServerClientDelivery(t *testing.T) {
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 1000
	for i := 0; i < n; i++ {
		s.Broadcast(testEvent(i))
	}
	for i := 0; i < n; i++ {
		ev, err := c.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if ev.At != int64(i) || ev.Target != osn.AccountID(i) {
			t.Fatalf("event %d out of order: %+v", i, ev)
		}
	}
	if got := c.LastSeq(); got != n {
		t.Fatalf("LastSeq = %d, want %d", got, n)
	}
	if st := s.Stats(); st.Broadcast != n || st.Evicted != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMultipleSubscribers(t *testing.T) {
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var clients []*Client
	for i := 0; i < 3; i++ {
		c, err := Dial(s.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients = append(clients, c)
	}
	s.Broadcast(testEvent(7))
	for i, c := range clients {
		ev, err := c.Recv()
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
		if ev.At != 7 {
			t.Fatalf("client %d got %+v", i, ev)
		}
	}
}

func TestLateSubscriberStartsAtCurrentSeq(t *testing.T) {
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Broadcast(testEvent(1))
	s.Broadcast(testEvent(2))
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s.Broadcast(testEvent(3))
	ev, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if ev.At != 3 {
		t.Fatalf("late subscriber saw %+v, want the post-handshake event", ev)
	}
	if c.LastSeq() != 3 {
		t.Fatalf("LastSeq = %d, want 3 (global sequence, not per-client count)", c.LastSeq())
	}
}

func TestRecvAfterServerClose(t *testing.T) {
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	closed := make(chan error, 1)
	go func() { closed <- s.Close() }() // returns once the client hangs up
	if _, err := c.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	// And it stays closed.
	if _, err := c.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("second recv err = %v, want ErrClosed", err)
	}
	c.Close()
	if err := <-closed; err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestCloseDrainsPendingWindow: events broadcast but not yet read must
// survive Close — the window drains to the subscriber before the eof
// frame, so nothing is lost at shutdown.
func TestCloseDrainsPendingWindow(t *testing.T) {
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const n = 5000
	for i := 0; i < n; i++ {
		s.Broadcast(testEvent(i))
	}
	done := make(chan error, 1)
	go func() { done <- s.Close() }()
	for i := 0; i < n; i++ {
		ev, err := c.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if ev.At != int64(i) {
			t.Fatalf("event %d: got At=%d", i, ev.At)
		}
	}
	if _, err := c.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("after drain: err = %v, want ErrClosed", err)
	}
	c.Close()
	if err := <-done; err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestStallingSubscriberLosesNothing is the at-least-once acceptance
// test: a subscriber that stalls longer than the replay window would
// have lost events under the v1 drop-oldest feed. Under v2 the
// producer blocks until the subscriber drains, and every event arrives
// exactly once, in order.
func TestStallingSubscriberLosesNothing(t *testing.T) {
	const window = 64
	s, err := NewServer("127.0.0.1:0",
		WithReplayBuffer(window), WithMaxBatch(16), WithStallTimeout(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const total = window * 40 // far beyond the replay window
	sent := make(chan struct{})
	go func() {
		defer close(sent)
		for i := 0; i < total; i++ {
			s.Broadcast(testEvent(i)) // blocks while the subscriber stalls
		}
	}()

	// Read a little, then stall long enough for the producer to slam
	// into the full window, then drain.
	for i := 0; i < 10; i++ {
		if _, err := c.Recv(); err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
	}
	time.Sleep(300 * time.Millisecond)

	for i := 10; i < total; i++ {
		ev, err := c.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if ev.At != int64(i) {
			t.Fatalf("lost or reordered: event %d has At=%d", i, ev.At)
		}
	}
	<-sent
	if st := s.Stats(); st.Evicted != 0 || st.Broadcast != total {
		t.Fatalf("stats after stall = %+v", st)
	}
}

// TestStalledBeyondTimeoutIsEvicted: the liveness backstop. A
// connected subscriber that never drains is evicted after the stall
// timeout — loudly, in Stats — instead of wedging the feed forever.
func TestStalledBeyondTimeoutIsEvicted(t *testing.T) {
	s, err := NewServer("127.0.0.1:0",
		WithReplayBuffer(8), WithStallTimeout(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	waitClients(t, s, 1)
	start := time.Now()
	for i := 0; i < 1000; i++ { // never read: window fills, then eviction
		s.Broadcast(testEvent(i))
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("broadcast wedged for %v despite stall timeout", d)
	}
	if st := s.Stats(); st.Evicted != 1 {
		t.Fatalf("stats = %+v, want exactly one eviction", st)
	}
}

func TestSubscribeDeliversAndEnds(t *testing.T) {
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan osn.Event, 16)
	done := make(chan error, 1)
	go func() {
		done <- Subscribe(s.Addr(), func(ev osn.Event) { got <- ev }, 3)
	}()
	waitClients(t, s, 1)
	s.Broadcast(testEvent(1))
	select {
	case ev := <-got:
		if ev.At != 1 {
			t.Fatalf("got %+v", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timeout waiting for event")
	}
	s.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("subscribe ended with error: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("subscribe did not end after server close")
	}
}

func TestSubscribeBatchDeliversInOrder(t *testing.T) {
	s, err := NewServer("127.0.0.1:0", WithMaxBatch(32))
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	var seen []int64
	done := make(chan error, 1)
	batches := 0
	go func() {
		done <- SubscribeBatch(s.Addr(), func(evs []osn.Event) {
			batches++
			for _, ev := range evs {
				seen = append(seen, ev.At)
			}
		}, 3)
	}()
	waitClients(t, s, 1)
	for i := 0; i < n; i++ {
		s.Broadcast(testEvent(i))
	}
	s.Close()
	if err := <-done; err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	if len(seen) != n {
		t.Fatalf("delivered %d events, want %d", len(seen), n)
	}
	for i, at := range seen {
		if at != int64(i) {
			t.Fatalf("event %d has At=%d", i, at)
		}
	}
	if batches >= n {
		t.Fatalf("no batching: %d batches for %d events", batches, n)
	}
}

func TestSubscribeFailsWhenNoServer(t *testing.T) {
	err := Subscribe("127.0.0.1:1", func(osn.Event) {}, 1)
	if err == nil {
		t.Fatal("expected dial failure")
	}
}

func TestDialBadAddress(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Fatal("expected dial error")
	}
}

func TestServerDoubleClose(t *testing.T) {
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestConcurrentBroadcasters(t *testing.T) {
	// Broadcast must be safe from multiple goroutines (e.g. several
	// simulation shards feeding one server) and still assign a single
	// gapless sequence.
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const writers, per = 8, 200
	done := make(chan struct{})
	for w := 0; w < writers; w++ {
		w := w
		go func() {
			for i := 0; i < per; i++ {
				s.Broadcast(testEvent(w*per + i))
			}
			done <- struct{}{}
		}()
	}
	for w := 0; w < writers; w++ {
		<-done
	}
	for seen := 0; seen < writers*per; seen++ {
		if _, err := c.Recv(); err != nil {
			t.Fatalf("recv after %d: %v", seen, err)
		}
	}
	if c.LastSeq() != writers*per {
		t.Fatalf("LastSeq = %d, want %d", c.LastSeq(), writers*per)
	}
}

// TestDeliveredAccounting: the ack plumbing must account every event
// the subscriber consumed, so sent-vs-delivered is auditable from the
// server side (what examples/realtime reports).
func TestDeliveredAccounting(t *testing.T) {
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	for i := 0; i < n; i++ {
		s.Broadcast(testEvent(i))
	}
	for i := 0; i < n; i++ {
		if _, err := c.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	c.Close() // final ack flushes on close
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := s.Stats(); st.Delivered == n {
			if st.Broadcast != n {
				t.Fatalf("stats = %+v", st)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("delivered never reached %d: %+v", n, s.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}
