package stream

import (
	"errors"
	"testing"
	"time"

	"sybilwild/internal/osn"
)

func testEvent(i int) osn.Event {
	return osn.Event{Type: osn.EvFriendRequest, At: int64(i), Actor: 1, Target: osn.AccountID(i)}
}

func TestWireRoundTrip(t *testing.T) {
	evs := []osn.Event{
		{Type: osn.EvFriendRequest, At: 10, Actor: 1, Target: 2},
		{Type: osn.EvFriendAccept, At: 11, Actor: 2, Target: 1},
		{Type: osn.EvFriendReject, At: 12, Actor: 3, Target: 1},
		{Type: osn.EvMessage, At: 13, Actor: 1, Target: 4},
		{Type: osn.EvBan, At: 14, Target: 1},
	}
	for _, ev := range evs {
		got, err := FromOSN(ev).ToOSN()
		if err != nil {
			t.Fatalf("%v: %v", ev, err)
		}
		if got != ev {
			t.Fatalf("round trip: %+v != %+v", got, ev)
		}
	}
}

func TestWireUnknownType(t *testing.T) {
	if _, err := (WireEvent{Type: "bogus"}).ToOSN(); err == nil {
		t.Fatal("expected error for unknown type")
	}
}

func TestServerClientDelivery(t *testing.T) {
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	waitClients(t, s, 1)

	const n = 100
	for i := 0; i < n; i++ {
		s.Broadcast(testEvent(i))
	}
	for i := 0; i < n; i++ {
		ev, err := c.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if ev.At != int64(i) || ev.Target != osn.AccountID(i) {
			t.Fatalf("event %d out of order: %+v", i, ev)
		}
	}
	if s.Dropped() != 0 {
		t.Fatalf("dropped = %d", s.Dropped())
	}
}

func TestMultipleSubscribers(t *testing.T) {
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var clients []*Client
	for i := 0; i < 3; i++ {
		c, err := Dial(s.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients = append(clients, c)
	}
	waitClients(t, s, 3)
	s.Broadcast(testEvent(7))
	for i, c := range clients {
		ev, err := c.Recv()
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
		if ev.At != 7 {
			t.Fatalf("client %d got %+v", i, ev)
		}
	}
}

func TestRecvAfterServerClose(t *testing.T) {
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	waitClients(t, s, 1)
	s.Close()
	if _, err := c.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestSlowConsumerDropsOldest(t *testing.T) {
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	waitClients(t, s, 1)
	// Without reading, flood far beyond the buffer. TCP + bufio absorb
	// some, but the per-client channel must shed the rest.
	total := ClientBuffer * 40
	for i := 0; i < total; i++ {
		s.Broadcast(testEvent(i))
	}
	if s.Dropped() == 0 {
		t.Fatal("no events dropped despite unbounded flood")
	}
	// The client must still receive a consistent (ascending) stream.
	last := int64(-1)
	for i := 0; i < 100; i++ {
		ev, err := c.Recv()
		if err != nil {
			t.Fatalf("recv: %v", err)
		}
		if ev.At <= last {
			t.Fatalf("stream went backwards: %d after %d", ev.At, last)
		}
		last = ev.At
	}
}

func TestSubscribeDeliversAndEnds(t *testing.T) {
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	waitClientsN := func(n int) {
		deadline := time.Now().Add(2 * time.Second)
		for s.NumClients() < n && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
	}
	got := make(chan osn.Event, 16)
	done := make(chan error, 1)
	go func() {
		done <- Subscribe(s.Addr(), func(ev osn.Event) { got <- ev }, 3)
	}()
	waitClientsN(1)
	s.Broadcast(testEvent(1))
	select {
	case ev := <-got:
		if ev.At != 1 {
			t.Fatalf("got %+v", ev)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timeout waiting for event")
	}
	s.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("subscribe ended with error: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("subscribe did not end after server close")
	}
}

func TestSubscribeFailsWhenNoServer(t *testing.T) {
	err := Subscribe("127.0.0.1:1", func(osn.Event) {}, 1)
	if err == nil {
		t.Fatal("expected dial failure")
	}
}

func TestDialBadAddress(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Fatal("expected dial error")
	}
}

func TestServerDoubleClose(t *testing.T) {
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func waitClients(t *testing.T, s *Server, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for s.NumClients() < n {
		if time.Now().After(deadline) {
			t.Fatalf("clients never reached %d", n)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestConcurrentBroadcasters(t *testing.T) {
	// Broadcast must be safe from multiple goroutines (e.g. several
	// simulation shards feeding one server).
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	waitClients(t, s, 1)
	const writers, per = 8, 200
	done := make(chan struct{})
	for w := 0; w < writers; w++ {
		w := w
		go func() {
			for i := 0; i < per; i++ {
				s.Broadcast(testEvent(w*per + i))
			}
			done <- struct{}{}
		}()
	}
	for w := 0; w < writers; w++ {
		<-done
	}
	seen := 0
	for seen < writers*per {
		if _, err := c.Recv(); err != nil {
			t.Fatalf("recv after %d: %v", seen, err)
		}
		seen++
	}
}
