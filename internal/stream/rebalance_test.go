package stream

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"sybilwild/internal/osn"
)

// TestRebalanceCutover is the full broker-coordinated cutover: a 2-way
// partition group drains exactly its pre-barrier slice and is handed
// off, a 3-way group adopts from barrier+1 and splits the rest
// exactly-once, and the rebalance lands in the stats audit.
func TestRebalanceCutover(t *testing.T) {
	leakCheck(t)
	const oldK, newK, pre, post = 2, 3, 900, 400
	evs := partEvents(pre+post, 11)
	srv, _ := spooledServer(t, 64, WithMaxBatch(32))

	old := make([]*Client, oldK)
	for p := 0; p < oldK; p++ {
		c, err := Dial(srv.Addr(), WithPartition(p, oldK))
		if err != nil {
			t.Fatalf("dial partition %d: %v", p, err)
		}
		defer c.Close()
		old[p] = c
	}
	waitClients(t, srv, oldK)

	type result struct {
		seqs    []uint64
		last    uint64
		barrier uint64
		nparts  int
		err     error
	}
	results := make([]result, oldK)
	var wg sync.WaitGroup
	for p, c := range old {
		wg.Add(1)
		go func(p int, c *Client) {
			defer wg.Done()
			r := &results[p]
			for {
				_, err := c.RecvBatch()
				if errors.Is(err, ErrRebalanced) {
					r.last = c.LastSeq()
					r.barrier, r.nparts, _ = c.Rebalanced()
					return
				}
				if err != nil {
					r.err = err
					return
				}
				r.seqs = append(r.seqs, c.LastBatchSeqs()...)
			}
		}(p, c)
	}

	for _, ev := range evs[:pre] {
		srv.Broadcast(ev)
	}
	barrier, err := PrepareRebalance(srv.Addr(), oldK, newK)
	if err != nil {
		t.Fatal(err)
	}
	if barrier != pre {
		t.Fatalf("barrier = %d, want the head at prepare time %d", barrier, pre)
	}
	// Post-barrier traffic flows while the old group drains out — the
	// feed never pauses.
	for _, ev := range evs[pre:] {
		srv.Broadcast(ev)
	}
	wg.Wait()
	for p := range results {
		r := results[p]
		if r.err != nil {
			t.Fatalf("old partition %d: %v", p, r.err)
		}
		if r.barrier != barrier || r.nparts != newK || r.last != barrier {
			t.Fatalf("old partition %d handed off at (barrier=%d nparts=%d last=%d), want (%d, %d, %d)",
				p, r.barrier, r.nparts, r.last, barrier, newK, barrier)
		}
		want := wantSeqs(evs[:pre], p, oldK)
		if len(r.seqs) != len(want) {
			t.Fatalf("old partition %d received %d events before the barrier, contract says %d",
				p, len(r.seqs), len(want))
		}
		for i, seq := range r.seqs {
			if seq != want[i] {
				t.Fatalf("old partition %d event %d has seq %d, want %d", p, i, seq, want[i])
			}
		}
	}

	if err := CommitRebalance(srv.Addr(), oldK, newK, barrier); err != nil {
		t.Fatal(err)
	}

	// New owners adopt from barrier+1: their union must be exactly the
	// post-barrier slice, each sequence judged by exactly one owner.
	owners := make(map[uint64]int)
	for p := 0; p < newK; p++ {
		c, err := DialFrom(srv.Addr(), barrier+1, WithPartition(p, newK))
		if err != nil {
			t.Fatalf("new partition %d: %v", p, err)
		}
		var want []uint64
		for _, seq := range wantSeqs(evs, p, newK) {
			if seq > barrier {
				want = append(want, seq)
			}
		}
		var got []uint64
		for len(got) < len(want) {
			_, err := c.RecvBatch()
			if err != nil {
				t.Fatalf("new partition %d recv: %v", p, err)
			}
			got = append(got, c.LastBatchSeqs()...)
		}
		for i, seq := range got {
			if seq != want[i] {
				t.Fatalf("new partition %d event %d has seq %d, want %d", p, i, seq, want[i])
			}
			// Delivery legitimately replicates support events; the
			// exactly-once property is about judging, which follows the
			// actor's owner.
			if osn.Partition(evs[seq-1].Actor, newK) == p {
				if prev, dup := owners[seq]; dup {
					t.Fatalf("seq %d judged by both new partitions %d and %d", seq, prev, p)
				}
				owners[seq] = p
			}
		}
		c.Close()
	}
	for seq := barrier + 1; seq <= uint64(pre+post); seq++ {
		if _, ok := owners[seq]; !ok {
			t.Fatalf("seq %d judged by no new owner", seq)
		}
	}

	st := srv.Stats()
	if len(st.Rebalances) != 1 {
		t.Fatalf("stats list %d rebalances, want 1: %+v", len(st.Rebalances), st.Rebalances)
	}
	if got, want := st.Rebalances[0], (RebalanceStats{From: oldK, To: newK, Barrier: barrier, Committed: true}); got != want {
		t.Fatalf("rebalance audit = %+v, want %+v", got, want)
	}
}

// TestRebalanceFenceAdmission pins the fencing rules: idempotent
// prepare, conflicting prepare rejected, fresh joins and beyond-barrier
// resumes of a fenced shape refused, a pre-barrier backfill drained
// exactly to the barrier then handed off, commit validation, and the
// old shape staying fenced after commit while the new shape admits.
func TestRebalanceFenceAdmission(t *testing.T) {
	leakCheck(t)
	const K = 2
	evs := partEvents(70, 12)
	srv, _ := spooledServer(t, 16, WithMaxBatch(8))
	for _, ev := range evs[:50] {
		srv.Broadcast(ev)
	}
	barrier, err := PrepareRebalance(srv.Addr(), K, 3)
	if err != nil {
		t.Fatal(err)
	}
	if barrier != 50 {
		t.Fatalf("barrier = %d, want 50", barrier)
	}
	if b2, err := PrepareRebalance(srv.Addr(), K, 3); err != nil || b2 != barrier {
		t.Fatalf("idempotent re-prepare = (%d, %v), want (%d, nil)", b2, err, barrier)
	}
	if _, err := PrepareRebalance(srv.Addr(), K, 4); err == nil || !strings.Contains(err.Error(), "already rebalancing") {
		t.Fatalf("conflicting prepare: err = %v, want 'already rebalancing'", err)
	}
	if _, err := PrepareRebalance(srv.Addr(), K, K); err == nil {
		t.Fatal("K→K prepare accepted; the shape must change")
	}
	for _, ev := range evs[50:] {
		srv.Broadcast(ev)
	}

	if _, err := Dial(srv.Addr(), WithPartition(0, K)); err == nil || !strings.Contains(err.Error(), "rebalanced") {
		t.Fatalf("fresh join of fenced shape: err = %v, want a rebalanced rejection", err)
	}
	if _, err := DialResume(srv.Addr(), "ghost", barrier+2, WithPartition(0, K)); err == nil || !strings.Contains(err.Error(), "rebalanced") {
		t.Fatalf("beyond-barrier resume: err = %v, want a rebalanced rejection", err)
	}

	// A backfill below the barrier is still owed its pre-barrier slice:
	// it drains exactly to the barrier through the disk tier, then gets
	// the same hand-off as a live subscriber.
	c, err := DialFrom(srv.Addr(), 1, WithPartition(1, K))
	if err != nil {
		t.Fatalf("pre-barrier backfill refused: %v", err)
	}
	want := wantSeqs(evs[:50], 1, K)
	var got []uint64
	for {
		_, err := c.RecvBatch()
		if errors.Is(err, ErrRebalanced) {
			break
		}
		if err != nil {
			t.Fatalf("backfill recv: %v", err)
		}
		got = append(got, c.LastBatchSeqs()...)
	}
	if len(got) != len(want) {
		t.Fatalf("backfill received %d events, contract says %d below the barrier", len(got), len(want))
	}
	for i, seq := range got {
		if seq != want[i] {
			t.Fatalf("backfill event %d has seq %d, want %d", i, seq, want[i])
		}
	}
	if b, n, ok := c.Rebalanced(); !ok || b != barrier || n != 3 || c.LastSeq() != barrier {
		t.Fatalf("backfill hand-off = (%d, %d, %v) at cursor %d, want (%d, 3, true) at %d",
			b, n, ok, c.LastSeq(), barrier, barrier)
	}
	c.Close()

	if err := CommitRebalance(srv.Addr(), K, 3, barrier+1); err == nil {
		t.Fatal("commit with the wrong barrier accepted")
	}
	if err := CommitRebalance(srv.Addr(), 5, 2, 10); err == nil {
		t.Fatal("commit without a prepared rebalance accepted")
	}
	if err := CommitRebalance(srv.Addr(), K, 3, barrier); err != nil {
		t.Fatal(err)
	}
	if err := CommitRebalance(srv.Addr(), K, 3, barrier); err != nil {
		t.Fatalf("idempotent re-commit: %v", err)
	}

	// The old shape stays fenced forever; the new shape admits.
	if _, err := Dial(srv.Addr(), WithPartition(0, K)); err == nil {
		t.Fatal("fenced shape admitted a fresh join after commit")
	}
	c3, err := Dial(srv.Addr(), WithPartition(0, 3))
	if err != nil {
		t.Fatalf("new shape refused after commit: %v", err)
	}
	c3.Close()
}

// TestRebalanceClaimAndStatus covers the standby-promotion exchanges:
// rstatus reflecting liveness, snapshots and fences, and rclaim's
// exactly-one-winner admission.
func TestRebalanceClaimAndStatus(t *testing.T) {
	leakCheck(t)
	const K = 2
	srv, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	st, err := QueryPartition(srv.Addr(), 0, K)
	if err != nil {
		t.Fatal(err)
	}
	if st.Seen || st.Connected != 0 || st.SnapshotSeq != 0 || st.Barrier != 0 {
		t.Fatalf("virgin partition status = %+v, want zero", st)
	}

	c, err := Dial(srv.Addr(), WithPartition(0, K))
	if err != nil {
		t.Fatal(err)
	}
	waitClients(t, srv, 1)
	if st, _ = QueryPartition(srv.Addr(), 0, K); !st.Seen || st.Connected != 1 {
		t.Fatalf("status with live subscriber = %+v, want seen, 1 connected", st)
	}
	if err := ClaimPartition(srv.Addr(), 0, K, "standby-a"); err == nil {
		t.Fatal("claim granted while a session is connected")
	}

	c.Kick()
	waitDetached(t, srv)
	if st, _ = QueryPartition(srv.Addr(), 0, K); !st.Seen || st.Connected != 0 {
		t.Fatalf("status after disconnect = %+v, want seen, 0 connected", st)
	}
	if err := ClaimPartition(srv.Addr(), 0, K, "standby-a"); err != nil {
		t.Fatalf("claim on a dead partition: %v", err)
	}
	if err := ClaimPartition(srv.Addr(), 0, K, "standby-b"); err == nil {
		t.Fatal("second standby's claim granted while the first is fresh")
	}
	if _, err := Dial(srv.Addr(), WithPartition(0, K), WithSessionID("standby-b")); err == nil ||
		!strings.Contains(err.Error(), "claimed") {
		t.Fatalf("unclaimed session admitted onto a claimed key: %v", err)
	}
	c2, err := Dial(srv.Addr(), WithPartition(0, K), WithSessionID("standby-a"))
	if err != nil {
		t.Fatalf("claim holder refused its key: %v", err)
	}
	waitClients(t, srv, 1)
	if err := ClaimPartition(srv.Addr(), 0, K, "standby-c"); err == nil {
		t.Fatal("claim granted while the promoted standby is connected")
	}
	c2.Close()

	if err := OfferSnapshot(srv.Addr(), 0, K, 42, []byte("snap")); err != nil {
		t.Fatal(err)
	}
	srv.Broadcast(osn.Event{Type: osn.EvMessage, Actor: 1, Target: 2})
	if _, err := PrepareRebalance(srv.Addr(), K, 1); err != nil {
		t.Fatal(err)
	}
	if st, _ = QueryPartition(srv.Addr(), 0, K); st.SnapshotSeq != 42 || st.Barrier != 1 {
		t.Fatalf("status after offer+prepare = %+v, want snapshot 42, barrier 1", st)
	}
}
