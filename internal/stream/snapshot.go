// Snapshot sub-protocol: the broker doubles as a rendezvous for
// detector partition state. A running worker periodically OFFERS its
// partition's serialized detector.PipelineSnapshot (stamped with the
// feed sequence it covers); a new or standby worker joining a
// rebalance FETCHES the partition's latest snapshot and resumes the
// feed from the stamped sequence + 1 — state migration instead of
// spool replay. The broker stores exactly one snapshot per
// (part, parts) key, keeping the highest-sequence offer, all in
// memory: a snapshot is a cache of detector state, the durable
// recovery path remains the spool + the worker's own checkpoints.
//
// Transfers ride one short-lived connection each on the server's
// regular listen port; the first frame's type (soffer / sfetch)
// selects the role, exactly like the publish sub-protocol. The frame
// pair itself — a "snap" header followed by a raw payload frame — is
// codec'd in internal/wire (AppendSnapHeader / ParseSnapHeader).

package stream

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sort"
	"time"

	"sybilwild/internal/wire"
)

// ErrNoSnapshot is returned by FetchSnapshot when the broker holds no
// snapshot for the requested partition — the worker should fall back
// to its local checkpoint or a from-the-start backfill.
var ErrNoSnapshot = errors.New("stream: no snapshot offered for this partition")

// snapKey identifies a partition's slot in the rendezvous store. The
// group size is part of the key: a (0,2) snapshot is useless to a
// worker joining a 3-way cluster.
type snapKey struct {
	part  int
	parts int
}

// snapVal is one held snapshot: the feed sequence it is stamped at
// and the serialized payload (immutable once stored).
type snapVal struct {
	seq  uint64
	data []byte
}

// storeSnapshot keeps the offer if it is at least as fresh as what is
// held. Equal sequences replace (idempotent re-offer); older offers
// are dropped — a lagging worker must not regress the rendezvous.
func (s *Server) storeSnapshot(k snapKey, seq uint64, data []byte) bool {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	if s.snaps == nil {
		s.snaps = make(map[snapKey]snapVal)
	}
	if held, ok := s.snaps[k]; ok && held.seq > seq {
		return false
	}
	s.snaps[k] = snapVal{seq: seq, data: data}
	return true
}

// snapshotStats lists held snapshots sorted by (parts, part).
func (s *Server) snapshotStats() []SnapshotStats {
	s.snapMu.Lock()
	out := make([]SnapshotStats, 0, len(s.snaps))
	for k, v := range s.snaps {
		out = append(out, SnapshotStats{Part: k.part, Parts: k.parts, Seq: v.seq, Bytes: len(v.data)})
	}
	s.snapMu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Parts != out[j].Parts {
			return out[i].Parts < out[j].Parts
		}
		return out[i].Part < out[j].Part
	})
	return out
}

// serveSnapOffer handles one worker→broker snapshot offer: validate
// the announced header, read the raw payload frame, store, confirm.
func (s *Server) serveSnapOffer(conn net.Conn, br *bufio.Reader, hello frame) {
	defer conn.Close()
	if hello.Parts < 1 || hello.Part < 0 || hello.Part >= hello.Parts {
		writeControl(conn, frame{T: frameSnapOK, Err: "invalid partition"})
		return
	}
	if hello.Size > wire.MaxSnapshotSize {
		writeControl(conn, frame{T: frameSnapOK, Err: "snapshot too large"})
		return
	}
	conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
	payload, err := wire.ReadFrameLimit(br, nil, wire.MaxSnapshotSize)
	if err != nil {
		return // connection died mid-transfer; nothing to confirm
	}
	if uint64(len(payload)) != hello.Size {
		writeControl(conn, frame{T: frameSnapOK,
			Err: fmt.Sprintf("payload of %d bytes does not match announced size %d", len(payload), hello.Size)})
		return
	}
	s.storeSnapshot(snapKey{part: hello.Part, parts: hello.Parts}, hello.Seq, payload)
	writeControl(conn, frame{T: frameSnapOK})
}

// serveSnapFetch handles one worker→broker snapshot fetch: reply with
// the held snap frame pair, or a tagged miss.
func (s *Server) serveSnapFetch(conn net.Conn, hello frame) {
	defer conn.Close()
	if hello.Parts < 1 || hello.Part < 0 || hello.Part >= hello.Parts {
		writeControl(conn, frame{T: frameSnap, Err: "invalid partition"})
		return
	}
	k := snapKey{part: hello.Part, parts: hello.Parts}
	s.snapMu.Lock()
	v, ok := s.snaps[k]
	s.snapMu.Unlock()
	if !ok {
		writeControl(conn, frame{T: frameSnap, Err: snapNone})
		return
	}
	conn.SetWriteDeadline(time.Now().Add(handshakeTimeout))
	bw := bufio.NewWriterSize(conn, 64<<10)
	hdr := wire.AppendSnapHeader(nil, wire.SnapHeader{
		Part: k.part, Parts: k.parts, Seq: v.seq, Size: uint64(len(v.data)),
	})
	if writeFrame(bw, hdr) != nil {
		return
	}
	if writeFrame(bw, v.data) != nil {
		return
	}
	bw.Flush()
}

// OfferSnapshot publishes a partition's serialized detector snapshot,
// stamped with the feed sequence it covers, to the broker's
// rendezvous store (one short-lived connection). The broker keeps the
// highest-sequence offer per (part, parts); offering below it is not
// an error — the fresher snapshot simply stays.
func OfferSnapshot(addr string, part, parts int, seq uint64, data []byte) error {
	if parts < 1 || part < 0 || part >= parts {
		return fmt.Errorf("stream: invalid partition %d/%d", part, parts)
	}
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return fmt.Errorf("stream: snapshot offer dial: %w", err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(handshakeTimeout))
	bw := bufio.NewWriterSize(conn, 64<<10)
	offer := frame{T: frameSnapOffer, V: ProtocolVersion,
		Part: part, Parts: parts, Seq: seq, Size: uint64(len(data))}
	if err := writeControl(bw, offer); err != nil {
		return fmt.Errorf("stream: snapshot offer: %w", err)
	}
	if err := writeFrame(bw, data); err != nil {
		return fmt.Errorf("stream: snapshot offer: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("stream: snapshot offer: %w", err)
	}
	payload, err := readFrame(bufio.NewReader(conn), nil)
	if err != nil {
		return fmt.Errorf("stream: snapshot offer: %w", err)
	}
	var ok frame
	if err := json.Unmarshal(payload, &ok); err != nil || ok.T != frameSnapOK {
		return fmt.Errorf("stream: snapshot offer: unexpected reply %q", payload)
	}
	if ok.Err != "" {
		return fmt.Errorf("stream: snapshot offer rejected: %s", ok.Err)
	}
	return nil
}

// FetchSnapshot retrieves the latest snapshot the broker holds for
// partition part of parts: the stamped feed sequence and the
// serialized detector.PipelineSnapshot payload. It returns an error
// wrapping ErrNoSnapshot when the broker holds nothing for the key.
func FetchSnapshot(addr string, part, parts int) (seq uint64, data []byte, err error) {
	if parts < 1 || part < 0 || part >= parts {
		return 0, nil, fmt.Errorf("stream: invalid partition %d/%d", part, parts)
	}
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return 0, nil, fmt.Errorf("stream: snapshot fetch dial: %w", err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(handshakeTimeout))
	bw := bufio.NewWriterSize(conn, 4<<10)
	req := frame{T: frameSnapFetch, V: ProtocolVersion, Part: part, Parts: parts}
	if err := writeControl(bw, req); err != nil {
		return 0, nil, fmt.Errorf("stream: snapshot fetch: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return 0, nil, fmt.Errorf("stream: snapshot fetch: %w", err)
	}
	br := bufio.NewReaderSize(conn, 64<<10)
	payload, err := readFrame(br, nil)
	if err != nil {
		return 0, nil, fmt.Errorf("stream: snapshot fetch: %w", err)
	}
	h, ok := wire.ParseSnapHeader(payload)
	if !ok {
		// Control reply: a miss or a rejection.
		var f frame
		if err := json.Unmarshal(payload, &f); err != nil || f.T != frameSnap {
			return 0, nil, fmt.Errorf("stream: snapshot fetch: unexpected reply %q", payload)
		}
		if f.Err == snapNone {
			return 0, nil, fmt.Errorf("%w (partition %d/%d)", ErrNoSnapshot, part, parts)
		}
		return 0, nil, fmt.Errorf("stream: snapshot fetch rejected: %s", f.Err)
	}
	if h.Part != part || h.Parts != parts {
		return 0, nil, fmt.Errorf("stream: snapshot fetch: header names partition %d/%d, asked %d/%d",
			h.Part, h.Parts, part, parts)
	}
	data, err = wire.ReadFrameLimit(br, nil, h.Size)
	if err != nil {
		return 0, nil, fmt.Errorf("stream: snapshot fetch: %w", err)
	}
	if uint64(len(data)) != h.Size {
		return 0, nil, fmt.Errorf("stream: snapshot fetch: payload of %d bytes does not match announced %d",
			len(data), h.Size)
	}
	return h.Seq, data, nil
}
