package stream

import (
	"os"
	"runtime"
	"testing"
	"time"
)

// leakCheck snapshots the process's goroutine and file-descriptor
// counts and registers a cleanup that fails the test if either has
// grown once the test (including its own deferred teardown) finishes.
// Session teardown is asynchronous — writers drain, ack readers hit
// their read deadline, connections close in the background — so the
// comparison retries until a deadline instead of sampling once.
//
// Call it first in the test body: t.Cleanup functions run after the
// test's defers, so servers and clients closed via defer are already
// down when the counts are compared.
func leakCheck(t *testing.T) {
	t.Helper()
	g0 := runtime.NumGoroutine()
	f0 := countFDs()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		for {
			runtime.GC()
			g, f := runtime.NumGoroutine(), countFDs()
			if g <= g0 && f <= f0 {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Fatalf("leaked: goroutines %d → %d, fds %d → %d\n%s",
					g0, g, f0, f, buf[:n])
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
}

// countFDs returns the number of open file descriptors, or 0 when the
// platform offers no cheap way to count them (the goroutine check
// still runs).
func countFDs() int {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return 0
	}
	return len(ents)
}
