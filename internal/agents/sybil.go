package agents

import (
	"sybilwild/internal/graph"
	"sybilwild/internal/osn"
	"sybilwild/internal/sim"
	"sybilwild/internal/stats"
)

// Tool models one of the commercial Sybil-management tools of Table 3.
// Each tool keeps a target queue refilled by popularity-biased snowball
// sampling over the live social graph — the mechanism the paper infers
// from the tools' advertised functionality (§3.4). Because the sample
// is popularity-biased and successful Sybils become popular, tools
// occasionally hand out *Sybil* targets, which is exactly how the
// paper's accidental Sybil edges form.
type Tool struct {
	Name  string
	Bias  float64 // snowball popularity bias in [0, 1]
	Batch int     // targets fetched per snowball run

	// Fresh reports whether an account is "young" (created inside the
	// attack window). Tools hunt established super nodes — profiles
	// with history, shared content, and search visibility — so a young
	// account that surfaces in the crawl is only used with probability
	// FreshTargetP. Sybil accounts are all young, which is what keeps
	// accidental Sybil→Sybil targeting rare (≈20% of Sybils end up with
	// any Sybil edge in the paper) without the tool ever knowing which
	// accounts are Sybils.
	Fresh        func(osn.AccountID) bool
	FreshTargetP float64

	r     *stats.Rand
	queue []osn.AccountID
}

// NewTool builds a tool strategy.
func NewTool(name string, bias float64, batch int, r *stats.Rand) *Tool {
	return &Tool{Name: name, Bias: bias, Batch: batch, FreshTargetP: 1, r: r}
}

// NextTarget pops the next usable target, refilling the queue via
// snowball sampling when empty. usable filters out targets the calling
// Sybil cannot request (itself, existing friends, pending requests,
// banned accounts).
func (t *Tool) NextTarget(g *graph.Graph, usable func(osn.AccountID) bool) (osn.AccountID, bool) {
	for attempts := 0; attempts < 4; attempts++ {
		for len(t.queue) > 0 {
			id := t.queue[len(t.queue)-1]
			t.queue = t.queue[:len(t.queue)-1]
			if !usable(id) {
				continue
			}
			if t.Fresh != nil && t.Fresh(id) && !t.r.Bernoulli(t.FreshTargetP) {
				continue
			}
			return id, true
		}
		t.refill(g)
		if len(t.queue) == 0 {
			break
		}
	}
	return 0, false
}

func (t *Tool) refill(g *graph.Graph) {
	n := g.NumNodes()
	if n == 0 {
		return
	}
	// Seed the snowball from accounts scattered across the graph, so a
	// batch mixes locally-popular users from many regions rather than
	// one tight neighbourhood (tools crawl from whatever entry points
	// they have). More seeds → targets less interconnected → the low
	// Sybil clustering coefficient of Figure 4 emerges.
	nSeeds := t.Batch / 4
	if nSeeds < 3 {
		nSeeds = 3
	}
	seeds := make([]graph.NodeID, 0, nSeeds)
	for i := 0; i < nSeeds; i++ {
		seeds = append(seeds, graph.NodeID(t.r.Intn(n)))
	}
	sample := g.Snowball(t.r, seeds, t.Batch, t.Bias)
	// Keep discovery order: it interleaves regions, so consecutive
	// targets come from different neighbourhoods. (Sorting the batch by
	// global degree would hand every Sybil the same interconnected hub
	// clique as its first friends — an artifact, not tool behaviour.)
	stats.Shuffle(t.r, sample)
	t.queue = append(t.queue, sample...)
}

// sybilAgent drives one Sybil account: aggressive invitation bursts
// against tool-provided targets while active, and near-immediate
// acceptance of every incoming request (Figure 3).
type sybilAgent struct {
	pop  *Population
	id   osn.AccountID
	tool *Tool
	r    *stats.Rand
}

func (a *sybilAgent) start() {
	a.scheduleInvite()
	a.scheduleInbox()
}

// burstCadenceHours is how often a Sybil's tool wakes up to fire a
// batch of requests. Sending in batches decouples the achievable
// request rate from the 1-tick (1-minute) simulation resolution:
// a 60+/hour Sybil simply sends several requests per wakeup.
const burstCadenceHours = 0.2

func (a *sybilAgent) scheduleInvite() {
	tr := a.pop.trait(a.id)
	if a.pop.Eng.Now() >= tr.activeUntil {
		return // campaign over; the account goes dormant but keeps accepting
	}
	gapHours := a.r.Exponential(burstCadenceHours)
	ticks := sim.Time(gapHours*float64(sim.TicksPerHour)) + 1
	a.pop.Eng.After(ticks, func() {
		a.invite(float64(ticks) / float64(sim.TicksPerHour))
	})
}

func (a *sybilAgent) invite(elapsedHours float64) {
	if a.banned() || a.pop.Eng.Now() >= a.pop.End {
		return
	}
	net := a.pop.Net
	g := net.Graph()
	usable := func(id osn.AccountID) bool {
		if id == a.id || net.Account(id).Banned || g.HasEdge(a.id, id) {
			return false
		}
		for _, p := range net.PendingFor(id) {
			if p.From == a.id {
				return false
			}
		}
		return true
	}
	n := a.r.Poisson(a.pop.trait(a.id).ratePerHour * elapsedHours)
	for i := 0; i < n; i++ {
		target, ok := a.tool.NextTarget(g, usable)
		if !ok {
			break
		}
		_ = net.SendFriendRequest(a.id, target, a.pop.Eng.Now())
	}
	a.scheduleInvite()
}

func (a *sybilAgent) scheduleInbox() {
	gapHours := a.r.Exponential(a.pop.P.SybilInboxMeanHours)
	a.pop.Eng.After(sim.Time(gapHours*float64(sim.TicksPerHour))+1, a.checkInbox)
}

func (a *sybilAgent) checkInbox() {
	if a.banned() || a.pop.Eng.Now() >= a.pop.End {
		return
	}
	now := a.pop.Eng.Now()
	pend := append([]osn.PendingRequest(nil), a.pop.Net.PendingFor(a.id)...)
	for _, p := range pend {
		_ = a.pop.Net.RespondFriendRequest(a.id, p.From, true, now)
	}
	a.scheduleInbox()
}

func (a *sybilAgent) banned() bool { return a.pop.Net.Account(a.id).Banned }
