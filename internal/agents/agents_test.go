package agents

import (
	"testing"

	"sybilwild/internal/graph"
	"sybilwild/internal/osn"
	"sybilwild/internal/sim"
	"sybilwild/internal/stats"
)

func TestBuildBackgroundShape(t *testing.T) {
	net := osn.NewNetwork()
	r := stats.NewRand(1)
	p := DefaultParams()
	ids := BuildBackground(net, r, p, 500, 1000000)
	if len(ids) != 500 || net.NumAccounts() != 500 {
		t.Fatalf("accounts = %d", net.NumAccounts())
	}
	g := net.Graph()
	if g.NumEdges() < 500*(p.BootstrapM-1) {
		t.Fatalf("too few edges: %d", g.NumEdges())
	}
	// Power-lawish: max degree far above mean.
	ds := g.Degrees()
	maxDeg, sum := 0, 0
	for _, d := range ds {
		sum += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	mean := float64(sum) / float64(len(ds))
	if float64(maxDeg) < 3*mean {
		t.Fatalf("no hubs: max=%d mean=%.1f", maxDeg, mean)
	}
	// Triad formation yields non-trivial clustering.
	if cc := g.AverageClustering(); cc < 0.01 {
		t.Fatalf("background clustering too low: %v", cc)
	}
	// One connected component (seed clique + growth attaches everyone).
	_, sizes := g.Components()
	if len(sizes) != 1 {
		t.Fatalf("background graph fragmented: %d components", len(sizes))
	}
	// Edge timestamps within the span and node creation times ascending.
	for _, e := range g.Edges() {
		if e.Time < 0 || e.Time > 1000000 {
			t.Fatalf("edge time out of span: %d", e.Time)
		}
	}
}

func TestBuildBackgroundGenderMix(t *testing.T) {
	net := osn.NewNetwork()
	ids := BuildBackground(net, stats.NewRand(2), DefaultParams(), 2000, 100000)
	females := 0
	for _, id := range ids {
		if net.Account(id).Gender == osn.Female {
			females++
		}
	}
	frac := float64(females) / float64(len(ids))
	if frac < 0.42 || frac > 0.52 {
		t.Fatalf("female fraction = %v, want ~0.465", frac)
	}
}

func TestToolNextTargetFiltersAndRefills(t *testing.T) {
	g := graph.New(0)
	g.AddNodes(50)
	for i := 1; i < 50; i++ {
		g.AddEdge(0, graph.NodeID(i), int64(i))
	}
	tool := NewTool("test", 1, 10, stats.NewRand(3))
	seen := map[osn.AccountID]bool{}
	for i := 0; i < 20; i++ {
		id, ok := tool.NextTarget(g, func(id osn.AccountID) bool { return !seen[id] })
		if !ok {
			break
		}
		if seen[id] {
			t.Fatalf("target %d repeated despite filter", id)
		}
		seen[id] = true
	}
	if len(seen) < 10 {
		t.Fatalf("tool produced only %d targets", len(seen))
	}
}

func TestToolExhaustion(t *testing.T) {
	g := graph.New(0)
	g.AddNodes(3)
	g.AddEdge(0, 1, 0)
	g.AddEdge(1, 2, 0)
	tool := NewTool("test", 0.5, 5, stats.NewRand(4))
	_, ok := tool.NextTarget(g, func(osn.AccountID) bool { return false })
	if ok {
		t.Fatal("NextTarget returned a target despite nothing usable")
	}
}

// buildSmallCampaign runs a small but full end-to-end campaign used by
// several calibration tests.
func buildSmallCampaign(t *testing.T, seed int64, nNormal, nSybil int) *Population {
	t.Helper()
	pop := NewPopulation(seed, DefaultParams())
	pop.Bootstrap(nNormal)
	pop.LaunchSybils(nSybil, 100*sim.TicksPerHour)
	pop.RunFor(400 * sim.TicksPerHour)
	return pop
}

func TestCampaignEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign in -short mode")
	}
	// The Sybil:normal ratio matters: at Renren scale Sybils are ~0.5%
	// of accounts. Saturating a tiny normal population with Sybil
	// requests produces topology artifacts no real OSN shows.
	pop := buildSmallCampaign(t, 7, 5000, 60)

	// Count per-account request/accept outcomes straight from the log.
	type tally struct{ sent, accepted, incoming, incAccepted int }
	tl := make([]tally, pop.Net.NumAccounts())
	for _, ev := range pop.Net.Events() {
		switch ev.Type {
		case osn.EvFriendRequest:
			tl[ev.Actor].sent++
			tl[ev.Target].incoming++
		case osn.EvFriendAccept:
			// Actor accepted Target's request.
			tl[ev.Target].accepted++
			tl[ev.Actor].incAccepted++
		}
	}

	var sybSent, sybAccepted, normSent, normAccepted int
	for _, id := range pop.Sybils {
		sybSent += tl[id].sent
		sybAccepted += tl[id].accepted
	}
	for _, id := range pop.Normals {
		normSent += tl[id].sent
		normAccepted += tl[id].accepted
	}
	if sybSent == 0 || normSent == 0 {
		t.Fatalf("no activity: sybSent=%d normSent=%d", sybSent, normSent)
	}

	// Figure 2 shape: Sybil outgoing accept ratio far below normal.
	sybRatio := float64(sybAccepted) / float64(sybSent)
	normRatio := float64(normAccepted) / float64(normSent)
	if sybRatio < 0.10 || sybRatio > 0.45 {
		t.Errorf("sybil outgoing accept ratio = %.3f, want ≈0.26", sybRatio)
	}
	if normRatio < 0.60 || normRatio > 0.92 {
		t.Errorf("normal outgoing accept ratio = %.3f, want ≈0.79", normRatio)
	}
	if normRatio-sybRatio < 0.25 {
		t.Errorf("accept ratios not separated: sybil %.3f normal %.3f", sybRatio, normRatio)
	}

	// Figure 1 shape: Sybils send at far higher rates than normals.
	sybPer := float64(sybSent) / float64(len(pop.Sybils))
	normPer := float64(normSent) / float64(len(pop.Normals))
	if sybPer < 20*normPer {
		t.Errorf("sybil volume not dominant: sybil %.1f/acct normal %.1f/acct", sybPer, normPer)
	}

	// Figure 3 shape: Sybils accept essentially every incoming request.
	var sybInc, sybIncAcc int
	for _, id := range pop.Sybils {
		sybInc += tl[id].incoming
		sybIncAcc += tl[id].incAccepted
	}
	if sybInc > 20 { // only meaningful with some incoming volume
		incRatio := float64(sybIncAcc) / float64(sybInc)
		if incRatio < 0.80 {
			t.Errorf("sybil incoming accept ratio = %.3f, want ≈1", incRatio)
		}
	}

	// Sybil edges exist but are a small minority of Sybil friendships
	// (Figure 5 shape: most Sybil edges are attack edges).
	mask := pop.Net.SybilMask()
	g := pop.Net.Graph()
	cs := g.CutOf(mask)
	if cs.Cut == 0 {
		t.Fatal("no attack edges formed")
	}
	if cs.Internal >= cs.Cut {
		t.Errorf("sybil edges (%d) not below attack edges (%d)", cs.Internal, cs.Cut)
	}

	// Figure 4 shape: normal first-50 clustering well above Sybil.
	var normCC, sybCC []float64
	for _, id := range pop.Normals {
		if g.Degree(id) >= 2 {
			normCC = append(normCC, g.ClusteringFirstK(id, 50))
		}
	}
	for _, id := range pop.Sybils {
		if g.Degree(id) >= 2 {
			sybCC = append(sybCC, g.ClusteringFirstK(id, 50))
		}
	}
	mn, ms := stats.Mean(normCC), stats.Mean(sybCC)
	if mn < 5*ms {
		t.Errorf("clustering not separated: normal %.4f sybil %.4f", mn, ms)
	}
	if mn < 0.005 {
		t.Errorf("normal clustering too low: %.5f", mn)
	}
}

func TestCampaignDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("determinism check in -short mode")
	}
	a := buildSmallCampaign(t, 99, 300, 40)
	b := buildSmallCampaign(t, 99, 300, 40)
	ea, eb := a.Net.Events(), b.Net.Events()
	if len(ea) != len(eb) {
		t.Fatalf("event counts differ: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, ea[i], eb[i])
		}
	}
	if a.Net.Graph().NumEdges() != b.Net.Graph().NumEdges() {
		t.Fatal("edge counts differ")
	}
}

func TestCampaignSeedSensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sensitivity in -short mode")
	}
	a := buildSmallCampaign(t, 1, 300, 40)
	b := buildSmallCampaign(t, 2, 300, 40)
	if len(a.Net.Events()) == len(b.Net.Events()) &&
		a.Net.Graph().NumEdges() == b.Net.Graph().NumEdges() {
		t.Fatal("different seeds produced identical campaigns")
	}
}

func TestSybilGenderSkew(t *testing.T) {
	pop := NewPopulation(5, DefaultParams())
	pop.Bootstrap(50)
	pop.LaunchSybils(1000, sim.TicksPerHour)
	females := 0
	for _, id := range pop.Sybils {
		if pop.Net.Account(id).Gender == osn.Female {
			females++
		}
	}
	frac := float64(females) / float64(len(pop.Sybils))
	if frac < 0.72 || frac > 0.83 {
		t.Fatalf("sybil female fraction = %v, want ~0.773", frac)
	}
}

func TestCreatePageKeepsTraitsAligned(t *testing.T) {
	pop := NewPopulation(6, DefaultParams())
	pop.Bootstrap(20)
	pg := pop.CreatePage(0)
	if pop.Net.Account(pg).Kind != osn.Page {
		t.Fatal("page kind wrong")
	}
	// Must not panic on trait lookup after page creation.
	pop.LaunchSybils(3, 1)
	_ = pop.trait(pop.Sybils[0])
}

func TestRunForTwicePanics(t *testing.T) {
	pop := NewPopulation(8, DefaultParams())
	pop.Bootstrap(10)
	pop.RunFor(1)
	defer func() {
		if recover() == nil {
			t.Fatal("second RunFor did not panic")
		}
	}()
	pop.RunFor(1)
}

func TestHasMutualFriend(t *testing.T) {
	g := graph.New(0)
	g.AddNodes(4)
	g.AddEdge(0, 2, 0)
	g.AddEdge(1, 2, 0)
	g.AddEdge(0, 3, 0)
	if !hasMutualFriend(g, 0, 1) {
		t.Fatal("mutual friend via 2 not found")
	}
	if hasMutualFriend(g, 1, 3) {
		t.Fatal("phantom mutual friend")
	}
}
