package agents

import (
	"sybilwild/internal/osn"
	"sybilwild/internal/sim"
	"sybilwild/internal/stats"
)

// normalAgent drives one normal user: a slow trickle of invitations to
// acquaintances (mostly friends-of-friends, sometimes someone from a
// different circle) and periodic inbox processing.
type normalAgent struct {
	pop *Population
	id  osn.AccountID
	r   *stats.Rand
}

func (a *normalAgent) start() {
	a.scheduleInvite()
	a.scheduleInbox()
}

func (a *normalAgent) scheduleInvite() {
	rate := a.pop.trait(a.id).ratePerHour
	if rate <= 0 {
		return
	}
	gapHours := a.r.Exponential(1 / rate)
	a.pop.Eng.After(sim.Time(gapHours*float64(sim.TicksPerHour))+1, a.invite)
}

func (a *normalAgent) scheduleInbox() {
	gapHours := a.r.Exponential(a.pop.P.NormalInboxMeanHours)
	a.pop.Eng.After(sim.Time(gapHours*float64(sim.TicksPerHour))+1, a.checkInbox)
}

func (a *normalAgent) invite() {
	if a.done() {
		return
	}
	if target, ok := a.pickTarget(); ok {
		// Errors (duplicate request, races with bans) are expected
		// business outcomes, not failures.
		_ = a.pop.Net.SendFriendRequest(a.id, target, a.pop.Eng.Now())
	}
	a.scheduleInvite()
}

// pickTarget chooses an invitation target: with probability
// NormalFoFProb a friend-of-friend (closing a triangle, the Figure 4
// clustering signal), otherwise a random other normal user (an offline
// acquaintance from a different circle).
func (a *normalAgent) pickTarget() (osn.AccountID, bool) {
	g := a.pop.Net.Graph()
	if a.r.Bernoulli(a.pop.P.NormalFoFProb) {
		nbrs := g.Neighbors(a.id)
		if len(nbrs) > 0 {
			f := nbrs[a.r.Intn(len(nbrs))].To
			fn := g.Neighbors(f)
			if len(fn) > 0 {
				cand := fn[a.r.Intn(len(fn))].To
				if cand != a.id && !g.HasEdge(a.id, cand) && !a.pop.Net.Account(cand).Banned {
					return cand, true
				}
			}
		}
		// Fall through to a random pick when triangle closing fails.
	}
	if len(a.pop.Normals) < 2 {
		return 0, false
	}
	for try := 0; try < 8; try++ {
		cand := a.pop.Normals[a.r.Intn(len(a.pop.Normals))]
		if cand != a.id && !g.HasEdge(a.id, cand) && !a.pop.Net.Account(cand).Banned {
			return cand, true
		}
	}
	return 0, false
}

func (a *normalAgent) checkInbox() {
	if a.done() {
		return
	}
	now := a.pop.Eng.Now()
	// Snapshot: responding mutates the pending queue.
	pend := append([]osn.PendingRequest(nil), a.pop.Net.PendingFor(a.id)...)
	for _, p := range pend {
		accept := a.pop.decideAccept(a.id, p.From)
		_ = a.pop.Net.RespondFriendRequest(a.id, p.From, accept, now)
	}
	a.scheduleInbox()
}

func (a *normalAgent) done() bool {
	return a.pop.Net.Account(a.id).Banned || a.pop.Eng.Now() >= a.pop.End
}
