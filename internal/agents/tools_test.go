package agents

import (
	"testing"

	"sybilwild/internal/osn"
	"sybilwild/internal/sim"
	"sybilwild/internal/stats"
)

// TestToolFreshFilterRejectsYoungAccounts verifies the mechanism that
// keeps accidental Sybil edges rare: young accounts surface from the
// crawl only with probability FreshTargetP.
func TestToolFreshFilterRejectsYoungAccounts(t *testing.T) {
	net := osn.NewNetwork()
	r := stats.NewRand(5)
	p := DefaultParams()
	ids := BuildBackground(net, r, p, 300, 1000)
	g := net.Graph()

	tool := NewTool("t", 0.8, 50, stats.NewRand(6))
	// Mark half of the accounts "fresh".
	fresh := map[osn.AccountID]bool{}
	for i, id := range ids {
		if i%2 == 0 {
			fresh[id] = true
		}
	}
	tool.Fresh = func(id osn.AccountID) bool { return fresh[id] }
	tool.FreshTargetP = 0 // absolute rejection

	for i := 0; i < 100; i++ {
		id, ok := tool.NextTarget(g, func(osn.AccountID) bool { return true })
		if !ok {
			break
		}
		if fresh[id] {
			t.Fatalf("fresh account %d surfaced with FreshTargetP=0", id)
		}
	}
}

func TestToolFreshFilterProbabilistic(t *testing.T) {
	net := osn.NewNetwork()
	r := stats.NewRand(7)
	ids := BuildBackground(net, r, DefaultParams(), 300, 1000)
	g := net.Graph()
	tool := NewTool("t", 0.8, 50, stats.NewRand(8))
	fresh := map[osn.AccountID]bool{}
	for _, id := range ids {
		fresh[id] = true // everything fresh
	}
	tool.Fresh = func(id osn.AccountID) bool { return fresh[id] }
	tool.FreshTargetP = 0.5
	got := 0
	for i := 0; i < 200; i++ {
		if _, ok := tool.NextTarget(g, func(osn.AccountID) bool { return true }); ok {
			got++
		}
	}
	if got == 0 {
		t.Fatal("probabilistic fresh filter rejected everything")
	}
}

// TestToolShares verifies the market-share assignment matches
// configuration within sampling tolerance.
func TestToolShares(t *testing.T) {
	pop := NewPopulation(11, DefaultParams())
	pop.Bootstrap(100)
	r := stats.NewRand(12)
	counts := map[string]int{}
	for i := 0; i < 10000; i++ {
		counts[pop.pickTool(r).Name]++
	}
	frac := func(name string) float64 { return float64(counts[name]) / 10000 }
	if f := frac("Renren Marketing Assistant V1.0"); f < 0.46 || f > 0.54 {
		t.Fatalf("marketing share = %v, want ≈0.5", f)
	}
	if f := frac("Renren Super Node Collector V1.0"); f < 0.26 || f > 0.34 {
		t.Fatalf("super-node share = %v, want ≈0.3", f)
	}
	if f := frac("Renren Almighty Assistant V5.8"); f < 0.16 || f > 0.24 {
		t.Fatalf("almighty share = %v, want ≈0.2", f)
	}
}

// TestSybilBurstSending verifies a Sybil's realized request volume
// tracks its configured rate (the Figure 1 signal) despite the
// burst-batched scheduling.
func TestSybilBurstSending(t *testing.T) {
	pop := NewPopulation(13, DefaultParams())
	pop.Bootstrap(3000)
	pop.LaunchSybils(30, sim.TicksPerHour)
	pop.RunFor(400 * sim.TicksPerHour)

	sent := map[osn.AccountID]int{}
	firstAt := map[osn.AccountID]int64{}
	lastAt := map[osn.AccountID]int64{}
	for _, ev := range pop.Net.Events() {
		if ev.Type != osn.EvFriendRequest {
			continue
		}
		if pop.Net.Account(ev.Actor).Kind != osn.Sybil {
			continue
		}
		sent[ev.Actor]++
		if _, ok := firstAt[ev.Actor]; !ok {
			firstAt[ev.Actor] = ev.At
		}
		lastAt[ev.Actor] = ev.At
	}
	checked := 0
	for _, id := range pop.Sybils {
		if sent[id] < 50 {
			continue // short-lived account; rate estimate too noisy
		}
		spanHours := float64(lastAt[id]-firstAt[id]) / float64(sim.TicksPerHour)
		if spanHours <= 1 {
			continue
		}
		realized := float64(sent[id]) / spanHours
		want := pop.trait(id).ratePerHour
		if realized < want*0.5 || realized > want*1.8 {
			t.Errorf("sybil %d realized %.1f/h vs configured %.1f/h", id, realized, want)
		}
		checked++
	}
	if checked < 10 {
		t.Fatalf("only %d sybils checkable", checked)
	}
}
