package agents

import (
	"sybilwild/internal/graph"
	"sybilwild/internal/osn"
	"sybilwild/internal/sim"
	"sybilwild/internal/stats"
)

// BuildBackground creates n normal accounts and grows the pre-attack
// friendship history among them. The background network is
// community-structured, mirroring Renren's origin as a college
// network: users join communities (schools, workplaces) grown with
// preferential attachment plus triad formation, and a sparse set of
// cross-community acquaintance edges ties the graph together.
//
// This structure matters for the reproduction: locally popular users
// in *different* communities are rarely interconnected, which is why a
// Sybil befriending popular strangers across the network ends up with
// a near-zero clustering coefficient (Figure 4) even though each
// community is internally clustered.
//
// Friendships created here are written directly to the graph without
// request events: they are history from before the operational log
// under observation begins, like accounts predating the paper's
// measurement window. Edge timestamps are spread over the configured
// bootstrap span ending at `end`.
func BuildBackground(net *osn.Network, r *stats.Rand, p Params, n int, end sim.Time) []osn.AccountID {
	span := sim.Time(p.BootstrapSpanDays) * sim.TicksPerDay
	start := end - span
	if start < 0 {
		start = 0
	}
	csize := p.CommunitySize
	if csize < p.BootstrapM+2 {
		csize = p.BootstrapM + 2
	}
	ids := make([]osn.AccountID, 0, n)
	g := net.Graph()

	// Edge timestamps tick forward over the span as edges are created.
	totalEdges := n*p.BootstrapM + n/2 + 1
	step := span / sim.Time(totalEdges)
	if step < 1 {
		step = 1
	}
	t := start

	var communities [][]osn.AccountID
	for created := 0; created < n; {
		size := csize
		if n-created < size {
			size = n - created
		}
		members := growCommunity(net, g, r, p, size, start, span, &t, step, n, created)
		communities = append(communities, members)
		ids = append(ids, members...)
		created += size
	}

	// Cross-community acquaintance edges: each node independently gains
	// a small number of links into other communities.
	if len(communities) > 1 {
		for ci, members := range communities {
			for _, u := range members {
				if !r.Bernoulli(p.CrossCommunityP) {
					continue
				}
				cj := r.Intn(len(communities) - 1)
				if cj >= ci {
					cj++
				}
				other := communities[cj]
				v := other[r.Intn(len(other))]
				if !g.HasEdge(u, v) {
					g.AddEdge(u, v, t)
					t += step
				}
			}
		}
	}
	return ids
}

// growCommunity creates `size` accounts and grows a Holme–Kim style
// community among them: each arrival attaches to m targets chosen
// preferentially, closing a triangle with probability BootstrapTriadP.
func growCommunity(net *osn.Network, g *graph.Graph, r *stats.Rand, p Params, size int, start, span sim.Time, t *sim.Time, step sim.Time, totalN, createdSoFar int) []osn.AccountID {
	members := make([]osn.AccountID, size)
	for i := 0; i < size; i++ {
		// Creation time proportional to overall progress so "first k
		// friends by time" ordering is meaningful across communities.
		frac := float64(createdSoFar+i) / float64(totalN)
		at := start + sim.Time(frac*float64(span))
		gender := osn.Male
		if drawGender(r, p.NormalFemaleFrac) {
			gender = osn.Female
		}
		members[i] = net.CreateAccount(gender, osn.Normal, at)
	}
	m := p.BootstrapM
	if m < 1 {
		m = 1
	}
	seed := m + 1
	if seed > size {
		seed = size
	}
	// Preferential-attachment endpoint pool local to the community.
	endpoints := make([]osn.AccountID, 0, 2*size*m)
	for i := 0; i < seed; i++ {
		for j := i + 1; j < seed; j++ {
			if g.AddEdge(members[i], members[j], *t) {
				endpoints = append(endpoints, members[i], members[j])
				*t += step
			}
		}
	}
	for i := seed; i < size; i++ {
		u := members[i]
		var lastTarget osn.AccountID = -1
		added := 0
		for attempts := 0; added < m && attempts < 10*m+20; attempts++ {
			var v osn.AccountID
			if lastTarget >= 0 && r.Bernoulli(p.BootstrapTriadP) {
				nbrs := g.Neighbors(lastTarget)
				if len(nbrs) == 0 {
					continue
				}
				v = nbrs[r.Intn(len(nbrs))].To
			} else if len(endpoints) > 0 {
				v = endpoints[r.Intn(len(endpoints))]
			} else {
				v = members[r.Intn(i)]
			}
			if v == u || g.HasEdge(u, v) {
				continue
			}
			g.AddEdge(u, v, *t)
			endpoints = append(endpoints, u, v)
			lastTarget = v
			added++
			*t += step
		}
	}
	return members
}
