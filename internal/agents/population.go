package agents

import (
	"fmt"

	"sybilwild/internal/graph"
	"sybilwild/internal/osn"
	"sybilwild/internal/sim"
	"sybilwild/internal/stats"
)

// traits are the hidden per-account behavioural parameters. Detectors
// never see them; they exist only to generate behaviour.
type traits struct {
	friendliness float64 // P(accept acquaintance request)
	careless     float64 // base P(accept stranger request)
	ratePerHour  float64 // invitation rate
	activeUntil  sim.Time
}

// Population wires the OSN, the event engine, and the agent models
// into one runnable scenario. Build one with NewPopulation, then call
// Bootstrap, StartNormals, LaunchSybils and Run.
type Population struct {
	P   Params
	Net *osn.Network
	Eng *sim.Engine
	R   *stats.Rand

	Normals []osn.AccountID
	Sybils  []osn.AccountID

	traits []traits
	tools  []*Tool

	// ObsStart is when the observation window (and agent activity)
	// begins: the end of the bootstrap history.
	ObsStart sim.Time
	// End is when agents stop scheduling new activity.
	End sim.Time
}

// NewPopulation creates an empty population with the given seed.
func NewPopulation(seed int64, p Params) *Population {
	return &Population{
		P:   p,
		Net: osn.NewNetwork(),
		Eng: &sim.Engine{},
		R:   stats.NewRand(seed),
	}
}

// Bootstrap builds the pre-attack background network of nNormal users
// and marks the observation start.
func (pop *Population) Bootstrap(nNormal int) {
	span := sim.Time(pop.P.BootstrapSpanDays) * sim.TicksPerDay
	pop.ObsStart = span
	pop.Normals = BuildBackground(pop.Net, pop.R.Fork(), pop.P, nNormal, span)
	for range pop.Normals {
		pop.traits = append(pop.traits, traits{})
	}
	r := pop.R.Fork()
	for i := range pop.Normals {
		pop.traits[i] = traits{
			friendliness: r.Beta(pop.P.FriendlinessAlpha, pop.P.FriendlinessBeta),
			careless:     r.Beta(pop.P.CarelessAlpha, pop.P.CarelessBeta),
			ratePerHour:  r.LogNormal(pop.P.NormalRateMuLog, pop.P.NormalRateSigmaLog),
		}
	}
	pop.tools = []*Tool{
		NewTool("Renren Marketing Assistant V1.0", 0.70, 120, pop.R.Fork()),
		NewTool("Renren Super Node Collector V1.0", 0.95, 60, pop.R.Fork()),
		NewTool("Renren Almighty Assistant V5.8", 0.50, 200, pop.R.Fork()),
	}
	for _, tool := range pop.tools {
		tool.Fresh = func(id osn.AccountID) bool {
			return pop.Net.Account(id).CreatedAt >= pop.ObsStart
		}
		tool.FreshTargetP = pop.P.FreshTargetP
	}
}

// StartNormals schedules every normal user's invitation and inbox
// loops over [ObsStart, End]. Call after setting End (via Run's
// duration) — in practice use RunFor which handles ordering.
func (pop *Population) startNormals() {
	for _, id := range pop.Normals {
		a := &normalAgent{pop: pop, id: id, r: pop.R.Fork()}
		a.start()
	}
}

// LaunchSybils creates n Sybil accounts with arrivals staggered
// uniformly over the first `over` ticks of the observation window.
// Each account is assigned to a Table 3 tool per the configured market
// share and runs until its active lifetime expires.
func (pop *Population) LaunchSybils(n int, over sim.Time) {
	r := pop.R.Fork()
	for i := 0; i < n; i++ {
		arrive := pop.ObsStart + sim.Time(r.Int63n(int64(maxTime(over, 1))))
		gender := osn.Male
		if drawGender(r, pop.P.SybilFemaleFrac) {
			gender = osn.Female
		}
		id := pop.Net.CreateAccount(gender, osn.Sybil, arrive)
		pop.Sybils = append(pop.Sybils, id)
		activeHours := r.LogNormal(pop.P.SybilActiveMuLog, pop.P.SybilActiveSigmaLog)
		tr := traits{
			ratePerHour: r.LogNormal(pop.P.SybilRateMuLog, pop.P.SybilRateSigmaLog),
			activeUntil: arrive + sim.Time(activeHours*float64(sim.TicksPerHour)),
		}
		pop.traits = append(pop.traits, tr)
		a := &sybilAgent{pop: pop, id: id, tool: pop.pickTool(r), r: pop.R.Fork()}
		pop.Eng.Schedule(arrive, a.start)
	}
}

func (pop *Population) pickTool(r *stats.Rand) *Tool {
	x := r.Float64()
	switch {
	case x < pop.P.ToolShareMarketing:
		return pop.tools[0]
	case x < pop.P.ToolShareMarketing+pop.P.ToolShareSuperNode:
		return pop.tools[1]
	default:
		return pop.tools[2]
	}
}

// RunFor runs the observation window for the given duration. It
// schedules normal agents, then drives the engine. It may be called
// once per population.
func (pop *Population) RunFor(d sim.Time) {
	if pop.End != 0 {
		panic("agents: RunFor called twice")
	}
	pop.End = pop.ObsStart + d
	// Advance the engine clock to the observation start so agent
	// scheduling is relative to it.
	pop.Eng.Run(pop.ObsStart)
	pop.startNormals()
	pop.Eng.Run(pop.End)
}

// trait returns the hidden traits of an account.
func (pop *Population) trait(id osn.AccountID) *traits { return &pop.traits[id] }

// CreatePage adds a commercial page account (passive; it neither sends
// invitations nor processes an inbox). Pages keep the hidden-trait
// table aligned with the account table.
func (pop *Population) CreatePage(at sim.Time) osn.AccountID {
	id := pop.Net.CreateAccount(osn.Female, osn.Page, at)
	pop.traits = append(pop.traits, traits{})
	return id
}

// genderFactor is the stranger-accept multiplier for a requester's
// profile gender (§2.2: Sybils use attractive female profiles because
// they convert better).
func (pop *Population) genderFactor(req osn.AccountID) float64 {
	if pop.Net.Account(req).Gender == osn.Female {
		return pop.P.FemaleBoost
	}
	return pop.P.MaleFactor
}

// popBoost raises a recipient's stranger-accept probability with its
// popularity (§3.4: popular users are "more likely to be open or
// careless about accepting friend requests from strangers").
func (pop *Population) popBoost(rec osn.AccountID) float64 {
	deg := float64(pop.Net.Graph().Degree(rec))
	f := deg / 50
	if f > 1 {
		f = 1
	}
	return pop.P.PopCarelessBoost * f
}

// decideAccept models the recipient's decision on a pending request.
//
// Requests from normal accounts model offline acquaintance: accepted
// with the recipient's friendliness. Requests from Sybil accounts are
// stranger requests: accepted with carelessness scaled by requester
// gender and recipient popularity, plus a small bonus when a mutual
// friend exists. The Kind check is part of the *behaviour generator*
// (real people invite people they know), not information any detector
// sees.
func (pop *Population) decideAccept(rec, req osn.AccountID) bool {
	tr := pop.trait(rec)
	if pop.Net.Account(rec).Kind == osn.Sybil {
		return true // Figure 3: Sybils accept essentially everything
	}
	if pop.Net.Account(req).Kind == osn.Normal {
		return pop.R.Bernoulli(tr.friendliness)
	}
	p := tr.careless * (1 + pop.popBoost(rec)) * pop.genderFactor(req)
	if hasMutualFriend(pop.Net.Graph(), rec, req) {
		p += 0.02
	}
	if p > 0.97 {
		p = 0.97
	}
	return pop.R.Bernoulli(p)
}

// hasMutualFriend reports whether a and b share at least one common
// neighbour.
func hasMutualFriend(g *graph.Graph, a, b osn.AccountID) bool {
	na, nb := g.Neighbors(a), g.Neighbors(b)
	if len(na) > len(nb) {
		na, nb = nb, na
	}
	if len(na) == 0 {
		return false
	}
	set := make(map[graph.NodeID]struct{}, len(na))
	for _, e := range na {
		set[e.To] = struct{}{}
	}
	for _, e := range nb {
		if _, ok := set[e.To]; ok {
			return true
		}
	}
	return false
}

// Stats returns a one-line description of the population, useful in
// logs and examples.
func (pop *Population) Stats() string {
	g := pop.Net.Graph()
	return fmt.Sprintf("accounts=%d (normal=%d sybil=%d) edges=%d events=%d",
		pop.Net.NumAccounts(), len(pop.Normals), len(pop.Sybils), g.NumEdges(), len(pop.Net.Events()))
}

func maxTime(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}
