// Package agents implements the generative behaviour models that stand
// in for the paper's proprietary ground truth: NormalUser and Sybil
// account agents driven by the sim engine, the commercial Sybil-tool
// strategies of Table 3, and a population builder that assembles a
// Renren-like network and runs an attack campaign over it.
//
// Every numeric default below is calibrated against a statistic the
// paper publishes; the comment on each field cites it.
package agents

import "sybilwild/internal/stats"

// Params holds all behavioural constants. Zero value is not usable;
// start from DefaultParams.
type Params struct {
	// Demographics.
	NormalFemaleFrac float64 // 46.5% of Renren users are female (§2.2)
	SybilFemaleFrac  float64 // 77.3% of ground-truth Sybils present female profiles (§2.2)

	// Normal invitation behaviour. Per-user long-term invitation rates
	// are log-normal; Figure 1 requires nearly all normal users to send
	// fewer than 20 invitations per 400-hour window.
	NormalRateMuLog    float64 // mu of log(invites/hour)
	NormalRateSigmaLog float64 // sigma of log(invites/hour)

	// Sybil invitation behaviour. Figure 1: ~70% of Sybils average ≥40
	// invites/hour and ~98% average ≥20 while active.
	SybilRateMuLog    float64 // mu of log(invites/hour) while active
	SybilRateSigmaLog float64 // sigma of log(invites/hour)

	// Sybil active lifetime (hours of invitation activity before the
	// account goes dormant or is banned by Renren's legacy systems).
	SybilActiveMuLog    float64
	SybilActiveSigmaLog float64

	// Accept-decision model. A normal user accepts a request from
	// someone sharing a mutual friend with probability ~Friendliness,
	// and from a stranger with probability ~Carelessness (scaled by the
	// requester's profile gender). Figure 2: outgoing accept ratio
	// averages 0.79 for normal senders and 0.26 for Sybils.
	FriendlinessAlpha float64 // Beta params, mean ≈ 0.79
	FriendlinessBeta  float64
	CarelessAlpha     float64 // Beta params, mean ≈ 0.24 before gender scaling
	CarelessBeta      float64
	FemaleBoost       float64 // stranger-accept multiplier for female requesters
	MaleFactor        float64 // stranger-accept multiplier for male requesters

	// Popularity carelessness coupling: the paper observes Sybils
	// target popular users *because* they are more likely to accept
	// strangers (§2.2, §3.4). Stranger-accept probability is raised by
	// up to PopCarelessBoost for the highest-degree users.
	PopCarelessBoost float64

	// Normal targeting: probability an invitation goes to a
	// friend-of-friend (drives the Figure 4 clustering coefficient
	// signal; remainder goes to a random stranger — new communities).
	NormalFoFProb float64

	// Inbox handling: mean hours between inbox checks.
	NormalInboxMeanHours float64
	SybilInboxMeanHours  float64 // Sybils accept almost immediately (Fig 3)

	// Bootstrap (pre-attack) background graph: community-structured
	// Holme–Kim growth (Renren grew out of college networks).
	BootstrapM        int     // edges per arriving node
	BootstrapTriadP   float64 // probability an edge closes a triangle
	BootstrapSpanDays int     // how many simulated days the history spans
	CommunitySize     int     // members per community
	CrossCommunityP   float64 // per-node probability of a cross-community link

	// FreshTargetP is the probability a tool uses a crawled target that
	// is a young account (created inside the attack window). Tools hunt
	// established super nodes; young accounts — including every Sybil —
	// surface in the crawl only occasionally. This single dial controls
	// the accidental Sybil-edge rate (§3.4).
	FreshTargetP float64

	// Sybil tool market share (must sum to 1): fraction of Sybil
	// accounts managed by each of the Table 3 tools.
	ToolShareMarketing float64
	ToolShareSuperNode float64
	ToolShareAlmighty  float64
}

// DefaultParams returns the calibration used throughout the
// reproduction. See EXPERIMENTS.md for the measured-vs-paper deltas
// these values produce.
func DefaultParams() Params {
	return Params{
		NormalFemaleFrac: 0.465,
		SybilFemaleFrac:  0.773,

		// exp(mu)=0.009/h → ≈3.6 invites per 400 h median; the tail is
		// tuned so <1% of normal users cross 20 invites per 400-hour
		// window (Figure 1: "accounts sending more than 20 invites per
		// time interval are Sybils").
		NormalRateMuLog:    -4.7,
		NormalRateSigmaLog: 0.65,

		// exp(mu)=55/h median, sigma 0.5 → P(<40/h) ≈ 26%, P(<20/h) ≈ 2%.
		SybilRateMuLog:    4.007,
		SybilRateSigmaLog: 0.5,

		// Median 12 active hours, heavy tail.
		SybilActiveMuLog:    2.48,
		SybilActiveSigmaLog: 0.6,

		FriendlinessAlpha: 4.74, // mean 0.79
		FriendlinessBeta:  1.26,
		CarelessAlpha:     1.7, // mean ≈ 0.20
		CarelessBeta:      6.8,
		FemaleBoost:       1.15,
		MaleFactor:        0.70,
		PopCarelessBoost:  0.15,

		NormalFoFProb: 0.62,

		NormalInboxMeanHours: 10,
		SybilInboxMeanHours:  0.5,

		BootstrapM:        5,
		BootstrapTriadP:   0.25,
		BootstrapSpanDays: 365,
		CommunitySize:     150,
		CrossCommunityP:   0.15,
		FreshTargetP:      0.0015,

		ToolShareMarketing: 0.5,
		ToolShareSuperNode: 0.3,
		ToolShareAlmighty:  0.2,
	}
}

// drawGender samples a profile gender with the given female fraction.
func drawGender(r *stats.Rand, femaleFrac float64) bool {
	return r.Bernoulli(femaleFrac)
}
