package wire

import (
	"bytes"
	"testing"

	"sybilwild/internal/osn"
)

// TestFrameRoundTrip: WriteFrame and AppendFrame must produce the
// same bytes, and ReadFrame must invert both.
func TestFrameRoundTrip(t *testing.T) {
	payload := []byte(`{"t":"batch","seq":7,"events":[]}`)
	var viaWriter bytes.Buffer
	if err := WriteFrame(&viaWriter, payload); err != nil {
		t.Fatal(err)
	}
	viaAppend := AppendFrame(nil, payload)
	if !bytes.Equal(viaWriter.Bytes(), viaAppend) {
		t.Fatalf("WriteFrame and AppendFrame disagree:\n%q\n%q", viaWriter.Bytes(), viaAppend)
	}
	got, err := ReadFrame(bytes.NewReader(viaAppend), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("round trip: %q, want %q", got, payload)
	}
}

// TestReadFrameRejectsOversizedLength: a corrupt length prefix must
// fail loudly instead of allocating gigabytes.
func TestReadFrameRejectsOversizedLength(t *testing.T) {
	hdr := []byte{0xff, 0xff, 0xff, 0xff}
	if _, err := ReadFrame(bytes.NewReader(hdr), nil); err == nil {
		t.Fatal("oversized frame length accepted")
	}
}

// TestBatchCodecRoundTrip exercises the canonical encode/decode pair
// directly (the transport's fallback-agreement test lives in
// internal/stream; the spool has no fallback, so the strict path must
// stand on its own).
func TestBatchCodecRoundTrip(t *testing.T) {
	events := []osn.Event{
		{Type: osn.EvFriendRequest, At: 0, Actor: 1, Target: 2},
		{Type: osn.EvFriendAccept, At: -5, Actor: 3, Target: 4, Aux: 9},
		{Type: osn.EvBan, At: 1 << 40, Actor: -7, Target: 0},
	}
	payload := AppendBatch(nil, 42, events)
	seq, got, ok := ParseBatch(payload, nil)
	if !ok {
		t.Fatalf("canonical payload rejected: %s", payload)
	}
	if seq != 42 || len(got) != len(events) {
		t.Fatalf("seq=%d n=%d, want 42/%d", seq, len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d: %+v, want %+v", i, got[i], events[i])
		}
	}
	if _, _, ok := ParseBatch(payload[:len(payload)-1], nil); ok {
		t.Fatal("truncated payload accepted")
	}
}

// TestParseBatchBounds pins the cheap bounds probe against the full
// parser on canonical payloads of every shape the broker produces,
// including the empty batch.
func TestParseBatchBounds(t *testing.T) {
	cases := [][]osn.Event{
		nil,
		{{Type: osn.EvMessage, At: 1, Actor: 2, Target: 3}},
		{
			{Type: osn.EvFriendRequest, At: 0, Actor: 1, Target: 2},
			{Type: osn.EvFriendAccept, At: -5, Actor: 3, Target: 4, Aux: 9},
			{Type: osn.EvBan, At: 1 << 40, Actor: -7, Target: 0},
		},
	}
	for _, events := range cases {
		payload := AppendBatch(nil, 42, events)
		first, n, ok := ParseBatchBounds(payload)
		if !ok || first != 42 || n != len(events) {
			t.Fatalf("bounds of %s: first=%d n=%d ok=%v, want 42/%d/true", payload, first, n, ok, len(events))
		}
	}
	if _, _, ok := ParseBatchBounds(AppendPBatch(nil, 1, nil)); ok {
		t.Fatal("bounds probe accepted a pbatch payload")
	}
	if _, _, ok := ParseBatchBounds([]byte(`{"t":"batch","seq":1,"events":[`)); ok {
		t.Fatal("bounds probe accepted a truncated payload")
	}
}

// TestBatchEventsSectionSplice pins the splice contract: joining the
// events sections of consecutive frames with ',' under a fresh prefix
// must reproduce AppendBatch over the concatenated events, byte for
// byte — this is what lets the broker merge pre-encoded frames with
// memcpy instead of a re-encode.
func TestBatchEventsSectionSplice(t *testing.T) {
	a := []osn.Event{
		{Type: osn.EvFriendRequest, At: 1, Actor: 1, Target: 2},
		{Type: osn.EvMessage, At: 2, Actor: 2, Target: 1, Aux: 5},
	}
	b := []osn.Event{
		{Type: osn.EvBan, At: 3, Actor: -1, Target: 4},
	}
	fa := AppendBatch(nil, 10, a)
	fb := AppendBatch(nil, 12, b)
	sa, ok := BatchEventsSection(fa)
	if !ok {
		t.Fatalf("section of %s rejected", fa)
	}
	sb, ok := BatchEventsSection(fb)
	if !ok {
		t.Fatalf("section of %s rejected", fb)
	}
	spliced := AppendBatch(nil, 10, nil)
	spliced = spliced[:len(spliced)-2] // drop "]}"
	spliced = append(spliced, sa...)
	spliced = append(spliced, ',')
	spliced = append(spliced, sb...)
	spliced = append(spliced, ']', '}')
	want := AppendBatch(nil, 10, append(append([]osn.Event{}, a...), b...))
	if !bytes.Equal(spliced, want) {
		t.Fatalf("splice diverges from fresh encode:\n%s\n%s", spliced, want)
	}
	// An empty batch's section is empty, so a splice starting from it
	// must not emit a leading comma; pin the section itself.
	se, ok := BatchEventsSection(AppendBatch(nil, 1, nil))
	if !ok || len(se) != 0 {
		t.Fatalf("empty batch section: %q ok=%v, want empty/true", se, ok)
	}
	if _, ok := BatchEventsSection(AppendPBatch(nil, 1, a)); ok {
		t.Fatal("events section accepted a pbatch payload")
	}
}

// TestPBatchCodecRoundTrip pins the publish-side batch form: same
// canonical event encoding as the downstream batch, different tag and
// sequence meaning — and neither parser may accept the other's tag,
// or a misrouted frame would be silently re-interpreted.
func TestPBatchCodecRoundTrip(t *testing.T) {
	events := []osn.Event{
		{Type: osn.EvFriendRequest, At: 10, Actor: 1, Target: 2},
		{Type: osn.EvBlogShare, At: 11, Actor: 2, Target: 1, Aux: 3},
	}
	payload := AppendPBatch(nil, 7, events)
	bseq, got, ok := ParsePBatch(payload, nil)
	if !ok {
		t.Fatalf("canonical pbatch rejected: %s", payload)
	}
	if bseq != 7 || len(got) != len(events) {
		t.Fatalf("bseq=%d n=%d, want 7/%d", bseq, len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d: %+v, want %+v", i, got[i], events[i])
		}
	}
	if _, _, ok := ParseBatch(payload, nil); ok {
		t.Fatal("ParseBatch accepted a pbatch payload")
	}
	if _, _, ok := ParsePBatch(AppendBatch(nil, 7, events), nil); ok {
		t.Fatal("ParsePBatch accepted a batch payload")
	}
}

// TestSuffixBatch pins the mid-frame re-encode: the suffix starting at
// any sequence inside a canonical payload's run must be byte-identical
// to a fresh encode of the trailing events — this is what a resumed
// subscriber (and a relay adopting a straddling resend) receives as
// its first frame.
func TestSuffixBatch(t *testing.T) {
	events := []osn.Event{
		{Type: osn.EvFriendRequest, At: 10, Actor: 1, Target: 2},
		{Type: osn.EvFriendAccept, At: 11, Actor: 2, Target: 1},
		{Type: osn.EvBlogShare, At: 12, Actor: 3, Target: 4, Aux: 9},
	}
	payload := AppendBatch(nil, 5, events)
	var scratch []osn.Event
	for from := uint64(5); from <= 8; from++ {
		var got []byte
		var ok bool
		got, scratch, ok = SuffixBatch(nil, payload, from, scratch[:0])
		if !ok {
			t.Fatalf("suffix from %d rejected", from)
		}
		want := AppendBatch(nil, from, events[from-5:])
		if string(got) != string(want) {
			t.Fatalf("suffix from %d: %s, want %s", from, got, want)
		}
	}
	if _, _, ok := SuffixBatch(nil, payload, 4, nil); ok {
		t.Fatal("accepted a suffix before the frame's run")
	}
	if _, _, ok := SuffixBatch(nil, payload, 9, nil); ok {
		t.Fatal("accepted a suffix past the frame's run")
	}
	if _, _, ok := SuffixBatch(nil, AppendPBatch(nil, 5, events), 6, nil); ok {
		t.Fatal("accepted a pbatch payload")
	}
}
