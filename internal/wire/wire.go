// Package wire is the codec layer shared by the feed transport
// (internal/stream) and the disk spool (internal/spool): length-prefix
// framing and the canonical JSON batch encoding for sequenced event
// runs. Keeping the codec below both packages means a spool segment
// holds byte-identical frames to the ones the transport sends, so
// replaying from disk is the same decode path as replaying from
// memory.
//
// A frame is a 4-byte big-endian payload length followed by a JSON
// payload. The batch payload's canonical form is
//
//	{"t":"batch","seq":N,"events":[{"type":"...","at":T,"actor":A,"target":B,"aux":X},...]}
//
// with exact key order, no whitespace, and "aux" omitted when zero.
// AppendBatch emits exactly this form; ParseBatch accepts exactly this
// form and reports !ok on anything else, in which case transport-level
// callers fall back to encoding/json (the spool never needs to: it
// only reads frames it wrote). The publish-side "pbatch" frame —
// producer→broker, numbered by the producer's own batch sequence
// instead of the feed's global one — is the same shape under the tag
// `{"t":"pbatch","bseq":N,...}` and shares the encoder and parser
// (AppendPBatch / ParsePBatch).
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"strconv"

	"sybilwild/internal/osn"
	"sybilwild/internal/sim"
)

// MaxFrameSize bounds a single frame; readers reject anything larger
// rather than trusting a corrupt length prefix.
const MaxFrameSize = 16 << 20

// WriteFrame emits one length-prefixed frame payload.
func WriteFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// AppendFrame appends the length prefix and payload to dst — the
// in-memory form of WriteFrame, used when the caller batches its own
// writes (e.g. the spool appending to a segment buffer).
func AppendFrame(dst, payload []byte) []byte {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// ReadFrame reads one length-prefixed payload, reusing buf when it is
// large enough. The returned slice is only valid until the next call.
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) {
	return ReadFrameLimit(r, buf, MaxFrameSize)
}

// ReadFrameLimit is ReadFrame with a caller-chosen size bound, for
// frame pairs whose header announces a payload larger than
// MaxFrameSize (snapshot payloads, bounded by MaxSnapshotSize and the
// header's own declared size).
func ReadFrameLimit(r io.Reader, buf []byte, limit uint64) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if uint64(n) > limit {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// Event is the JSON wire form of an osn.Event. Seq is only set inside
// "fbatch" frames, where delivered events are sparse in the global
// order and each one carries its own feed sequence; contiguous batch
// frames number events implicitly from the frame's first sequence and
// leave Seq zero.
type Event struct {
	Seq    uint64 `json:"seq,omitempty"`
	Type   string `json:"type"`
	At     int64  `json:"at"`
	Actor  int32  `json:"actor"`
	Target int32  `json:"target"`
	Aux    int32  `json:"aux,omitempty"`
}

// FromOSN converts an event to wire form.
func FromOSN(ev osn.Event) Event {
	return Event{
		Type:   ev.Type.String(),
		At:     ev.At,
		Actor:  int32(ev.Actor),
		Target: int32(ev.Target),
		Aux:    ev.Aux,
	}
}

// EventTypeFromString inverts osn.EventType.String. Taking []byte lets
// the batch fast path switch without allocating a string per event.
func EventTypeFromString[S string | []byte](s S) (osn.EventType, error) {
	switch string(s) {
	case "friend_request":
		return osn.EvFriendRequest, nil
	case "friend_accept":
		return osn.EvFriendAccept, nil
	case "friend_reject":
		return osn.EvFriendReject, nil
	case "message":
		return osn.EvMessage, nil
	case "ban":
		return osn.EvBan, nil
	case "blog_post":
		return osn.EvBlogPost, nil
	case "blog_share":
		return osn.EvBlogShare, nil
	default:
		return 0, fmt.Errorf("wire: unknown event type %q", s)
	}
}

// ToOSN converts back from wire form.
func (w Event) ToOSN() (osn.Event, error) {
	typ, err := EventTypeFromString(w.Type)
	if err != nil {
		return osn.Event{}, err
	}
	return osn.Event{
		Type:   typ,
		At:     sim.Time(w.At),
		Actor:  osn.AccountID(w.Actor),
		Target: osn.AccountID(w.Target),
		Aux:    w.Aux,
	}, nil
}

// Canonical payload prefixes for the two batch-shaped frames: the
// downstream batch (sequenced in the feed's global order) and the
// publish-side pbatch (sequenced per producer for reconnect dedupe).
// Both share one encoder and one parser; only the tag and the meaning
// of the leading number differ.
const (
	batchPrefix  = `{"t":"batch","seq":`
	pbatchPrefix = `{"t":"pbatch","bseq":`
)

// AppendBatch appends the canonical JSON batch payload for events with
// first sequence seq to dst and returns the extended slice. Batch
// payloads dominate feed traffic and fill every spool segment, so the
// encoding avoids encoding/json reflection entirely.
func AppendBatch(dst []byte, seq uint64, events []osn.Event) []byte {
	return appendBatch(dst, batchPrefix, seq, events)
}

// AppendPBatch appends the canonical publish batch payload — the
// producer→broker form, tagged "pbatch" and numbered by the producer's
// own batch sequence — to dst and returns the extended slice.
func AppendPBatch(dst []byte, bseq uint64, events []osn.Event) []byte {
	return appendBatch(dst, pbatchPrefix, bseq, events)
}

func appendBatch(dst []byte, prefix string, seq uint64, events []osn.Event) []byte {
	dst = append(dst, prefix...)
	dst = strconv.AppendUint(dst, seq, 10)
	dst = append(dst, `,"events":[`...)
	for i, ev := range events {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = append(dst, `{"type":"`...)
		dst = append(dst, ev.Type.String()...)
		dst = append(dst, `","at":`...)
		dst = strconv.AppendInt(dst, ev.At, 10)
		dst = append(dst, `,"actor":`...)
		dst = strconv.AppendInt(dst, int64(int32(ev.Actor)), 10)
		dst = append(dst, `,"target":`...)
		dst = strconv.AppendInt(dst, int64(int32(ev.Target)), 10)
		if ev.Aux != 0 {
			dst = append(dst, `,"aux":`...)
			dst = strconv.AppendInt(dst, int64(ev.Aux), 10)
		}
		dst = append(dst, '}')
	}
	dst = append(dst, ']', '}')
	return dst
}

// batchCursor walks a canonical batch payload.
type batchCursor struct {
	b []byte
	i int
}

func (c *batchCursor) lit(s string) bool {
	if c.i+len(s) > len(c.b) || string(c.b[c.i:c.i+len(s)]) != s {
		return false
	}
	c.i += len(s)
	return true
}

func (c *batchCursor) uint() (uint64, bool) {
	start := c.i
	var v uint64
	for c.i < len(c.b) && c.b[c.i] >= '0' && c.b[c.i] <= '9' {
		v = v*10 + uint64(c.b[c.i]-'0')
		c.i++
	}
	return v, c.i > start
}

func (c *batchCursor) int() (int64, bool) {
	neg := false
	if c.i < len(c.b) && c.b[c.i] == '-' {
		neg = true
		c.i++
	}
	v, ok := c.uint()
	if !ok {
		return 0, false
	}
	if neg {
		return -int64(v), true
	}
	return int64(v), true
}

// str parses a canonical string value (no escapes) including both
// quotes, returning the unquoted bytes.
func (c *batchCursor) str() ([]byte, bool) {
	if c.i >= len(c.b) || c.b[c.i] != '"' {
		return nil, false
	}
	c.i++
	start := c.i
	for c.i < len(c.b) {
		switch c.b[c.i] {
		case '\\':
			return nil, false // non-canonical; fall back
		case '"':
			s := c.b[start:c.i]
			c.i++
			return s, true
		}
		c.i++
	}
	return nil, false
}

// ParseBatch decodes a canonical batch payload into events appended to
// dst. ok is false when the payload deviates from the canonical form;
// transport callers then fall back to encoding/json, storage callers
// treat it as corruption.
func ParseBatch(payload []byte, dst []osn.Event) (seq uint64, evs []osn.Event, ok bool) {
	return parseBatch(payload, batchPrefix, dst)
}

// ParsePBatch decodes a canonical publish batch payload (the
// producer→broker "pbatch" form) into events appended to dst,
// returning the producer's batch sequence. Same canonical-form rules
// as ParseBatch.
func ParsePBatch(payload []byte, dst []osn.Event) (bseq uint64, evs []osn.Event, ok bool) {
	return parseBatch(payload, pbatchPrefix, dst)
}

// ParseBatchBounds reports the first sequence and event count of a
// canonical batch payload without decoding the events. It exists for
// the broker's shared-frame fan-out, which moves pre-encoded frames
// around and only needs to know which sequence run a frame covers.
// The payload must have been produced by AppendBatch; counting relies
// on canonical event objects being flat, with enum-only string values
// that can never contain '{'.
func ParseBatchBounds(payload []byte) (first uint64, n int, ok bool) {
	c := batchCursor{b: payload}
	if !c.lit(batchPrefix) {
		return 0, 0, false
	}
	first, numOK := c.uint()
	if !numOK || !c.lit(`,"events":[`) {
		return 0, 0, false
	}
	if len(payload) < c.i+2 || payload[len(payload)-2] != ']' || payload[len(payload)-1] != '}' {
		return 0, 0, false
	}
	for _, b := range payload[c.i : len(payload)-2] {
		if b == '{' {
			n++
		}
	}
	return first, n, true
}

// BatchEventsSection returns the raw contents of a canonical batch
// payload's events array (the bytes between '[' and ']'). Splicing
// these sections with ',' separators under a fresh batch prefix yields
// a frame byte-identical to AppendBatch over the concatenated events —
// the merge path for coalescing consecutive pre-encoded frames without
// touching an encoder. The payload must have been produced by
// AppendBatch.
func BatchEventsSection(payload []byte) ([]byte, bool) {
	c := batchCursor{b: payload}
	if !c.lit(batchPrefix) {
		return nil, false
	}
	if _, numOK := c.uint(); !numOK || !c.lit(`,"events":[`) {
		return nil, false
	}
	if len(payload) < c.i+2 || payload[len(payload)-2] != ']' || payload[len(payload)-1] != '}' {
		return nil, false
	}
	return payload[c.i : len(payload)-2], true
}

// SuffixBatch re-encodes the tail of a canonical batch payload so the
// result starts exactly at sequence from: the payload is decoded (into
// scratch, which callers reuse across calls), events below from are
// dropped, and the remainder is freshly encoded onto dst. This is the
// one encode shared-frame plumbing ever pays — a resume or a relay
// adoption landing mid-frame, at most once per (re)connection. evs is
// the decode buffer for recycling (evs[:0] as the next scratch). ok is
// false when the payload is not canonical or from lies outside the
// frame's sequence run (before its first event or past one-off its
// end).
func SuffixBatch(dst, payload []byte, from uint64, scratch []osn.Event) (out []byte, evs []osn.Event, ok bool) {
	seq, evs, ok := ParseBatch(payload, scratch)
	if !ok || from < seq || from-seq > uint64(len(evs)) {
		return dst, evs, false
	}
	return AppendBatch(dst, from, evs[from-seq:]), evs, true
}

func parseBatch(payload []byte, prefix string, dst []osn.Event) (seq uint64, evs []osn.Event, ok bool) {
	c := batchCursor{b: payload}
	if !c.lit(prefix) {
		return 0, dst, false
	}
	seq, numOK := c.uint()
	if !numOK || !c.lit(`,"events":[`) {
		return 0, dst, false
	}
	evs = dst
	for n := 0; ; n++ {
		if c.lit(`]}`) {
			break
		}
		if n > 0 && !c.lit(`,`) {
			return 0, dst, false
		}
		if !c.lit(`{"type":`) {
			return 0, dst, false
		}
		typStr, sOK := c.str()
		if !sOK {
			return 0, dst, false
		}
		typ, err := EventTypeFromString(typStr)
		if err != nil {
			return 0, dst, false
		}
		if !c.lit(`,"at":`) {
			return 0, dst, false
		}
		at, aOK := c.int()
		if !aOK || !c.lit(`,"actor":`) {
			return 0, dst, false
		}
		actor, acOK := c.int()
		if !acOK || !c.lit(`,"target":`) {
			return 0, dst, false
		}
		target, tOK := c.int()
		if !tOK {
			return 0, dst, false
		}
		var aux int64
		if c.lit(`,"aux":`) {
			var xOK bool
			aux, xOK = c.int()
			if !xOK {
				return 0, dst, false
			}
		}
		if !c.lit(`}`) {
			return 0, dst, false
		}
		evs = append(evs, osn.Event{
			Type:   typ,
			At:     sim.Time(at),
			Actor:  osn.AccountID(int32(actor)),
			Target: osn.AccountID(int32(target)),
			Aux:    int32(aux),
		})
	}
	if c.i != len(payload) {
		return 0, dst, false
	}
	return seq, evs, true
}
