// Codec additions for the partitioned cluster: the "fbatch" frame (a
// filtered batch — the downstream form sent to partitioned
// subscribers, where delivered sequences are sparse in the global
// order) and the snapshot frame pair (a "snap" header followed by a
// raw payload) that moves detector.PipelineSnapshot between workers
// and the broker.

package wire

import (
	"strconv"

	"sybilwild/internal/osn"
	"sybilwild/internal/sim"
)

// MaxSnapshotSize bounds a snapshot payload announced by a snap
// header. Snapshots are one frame pair per partition, not a stream,
// so the bound is generous — it exists to reject corrupt headers, not
// to size buffers.
const MaxSnapshotSize = 1 << 30

// Canonical fbatch prefix. A filtered batch carries per-event global
// sequences (the partition's slice of the feed is sparse, so a single
// first-sequence cannot describe it) plus "last", the cursor the
// subscriber has provably seen through: last >= every event sequence
// in the frame, and an fbatch with no events at all is a pure cursor
// advance past filtered-out foreign events.
//
//	{"t":"fbatch","last":L,"events":[{"seq":N,"type":"...","at":T,"actor":A,"target":B,"aux":X},...]}
const fbatchPrefix = `{"t":"fbatch","last":`

// AppendFBatch appends the canonical filtered-batch payload to dst:
// events[i] is stamped with global sequence seqs[i], and last is the
// feed cursor the frame advances the subscriber to. len(seqs) must
// equal len(events).
func AppendFBatch(dst []byte, last uint64, seqs []uint64, events []osn.Event) []byte {
	dst = append(dst, fbatchPrefix...)
	dst = strconv.AppendUint(dst, last, 10)
	dst = append(dst, `,"events":[`...)
	for i, ev := range events {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = append(dst, `{"seq":`...)
		dst = strconv.AppendUint(dst, seqs[i], 10)
		dst = append(dst, `,"type":"`...)
		dst = append(dst, ev.Type.String()...)
		dst = append(dst, `","at":`...)
		dst = strconv.AppendInt(dst, ev.At, 10)
		dst = append(dst, `,"actor":`...)
		dst = strconv.AppendInt(dst, int64(int32(ev.Actor)), 10)
		dst = append(dst, `,"target":`...)
		dst = strconv.AppendInt(dst, int64(int32(ev.Target)), 10)
		if ev.Aux != 0 {
			dst = append(dst, `,"aux":`...)
			dst = strconv.AppendInt(dst, int64(ev.Aux), 10)
		}
		dst = append(dst, '}')
	}
	dst = append(dst, ']', '}')
	return dst
}

// FBatchEventsSection returns the byte range of a canonical
// filtered-batch payload holding the comma-separated event objects
// (empty for a pure cursor advance), aliasing payload. Because events
// carry their own "seq" fields, the sections of consecutive fbatch
// frames splice with ',' under a fresh prefix carrying the final
// frame's cursor into a payload byte-identical to a single AppendFBatch
// over the concatenated events — the fbatch analogue of
// BatchEventsSection. ok is false when payload is not a canonical
// fbatch.
func FBatchEventsSection(payload []byte) ([]byte, bool) {
	c := batchCursor{b: payload}
	if !c.lit(fbatchPrefix) {
		return nil, false
	}
	if _, numOK := c.uint(); !numOK || !c.lit(`,"events":[`) {
		return nil, false
	}
	if len(payload) < c.i+2 || payload[len(payload)-2] != ']' || payload[len(payload)-1] != '}' {
		return nil, false
	}
	return payload[c.i : len(payload)-2], true
}

// ParseFBatch decodes a canonical filtered-batch payload, appending
// events to dstEvs and their global sequences (parallel, same length)
// to dstSeqs. ok is false on any deviation from the canonical form;
// transport callers then fall back to encoding/json.
func ParseFBatch(payload []byte, dstEvs []osn.Event, dstSeqs []uint64) (last uint64, evs []osn.Event, seqs []uint64, ok bool) {
	c := batchCursor{b: payload}
	if !c.lit(fbatchPrefix) {
		return 0, dstEvs, dstSeqs, false
	}
	last, numOK := c.uint()
	if !numOK || !c.lit(`,"events":[`) {
		return 0, dstEvs, dstSeqs, false
	}
	evs, seqs = dstEvs, dstSeqs
	for n := 0; ; n++ {
		if c.lit(`]}`) {
			break
		}
		if n > 0 && !c.lit(`,`) {
			return 0, dstEvs, dstSeqs, false
		}
		if !c.lit(`{"seq":`) {
			return 0, dstEvs, dstSeqs, false
		}
		seq, qOK := c.uint()
		if !qOK || !c.lit(`,"type":`) {
			return 0, dstEvs, dstSeqs, false
		}
		typStr, sOK := c.str()
		if !sOK {
			return 0, dstEvs, dstSeqs, false
		}
		typ, err := EventTypeFromString(typStr)
		if err != nil {
			return 0, dstEvs, dstSeqs, false
		}
		if !c.lit(`,"at":`) {
			return 0, dstEvs, dstSeqs, false
		}
		at, aOK := c.int()
		if !aOK || !c.lit(`,"actor":`) {
			return 0, dstEvs, dstSeqs, false
		}
		actor, acOK := c.int()
		if !acOK || !c.lit(`,"target":`) {
			return 0, dstEvs, dstSeqs, false
		}
		target, tOK := c.int()
		if !tOK {
			return 0, dstEvs, dstSeqs, false
		}
		var aux int64
		if c.lit(`,"aux":`) {
			var xOK bool
			aux, xOK = c.int()
			if !xOK {
				return 0, dstEvs, dstSeqs, false
			}
		}
		if !c.lit(`}`) {
			return 0, dstEvs, dstSeqs, false
		}
		evs = append(evs, osn.Event{
			Type:   typ,
			At:     sim.Time(at),
			Actor:  osn.AccountID(int32(actor)),
			Target: osn.AccountID(int32(target)),
			Aux:    int32(aux),
		})
		seqs = append(seqs, seq)
	}
	if c.i != len(payload) {
		return 0, dstEvs, dstSeqs, false
	}
	return last, evs, seqs, true
}

// SnapHeader announces a snapshot payload: which partition it covers,
// the feed sequence the snapshot is stamped at (a worker restored
// from it resumes at Seq+1), and the byte length of the raw payload
// frame that follows.
type SnapHeader struct {
	Part  int
	Parts int
	Seq   uint64
	Size  uint64
}

// Canonical snap-header prefix. The snapshot frame pair is this
// header followed by one raw (non-JSON) frame of exactly Size bytes
// holding the serialized detector.PipelineSnapshot.
//
//	{"t":"snap","part":P,"parts":K,"seq":S,"size":B}
const snapPrefix = `{"t":"snap","part":`

// AppendSnapHeader appends the canonical snapshot header payload.
func AppendSnapHeader(dst []byte, h SnapHeader) []byte {
	dst = append(dst, snapPrefix...)
	dst = strconv.AppendInt(dst, int64(h.Part), 10)
	dst = append(dst, `,"parts":`...)
	dst = strconv.AppendInt(dst, int64(h.Parts), 10)
	dst = append(dst, `,"seq":`...)
	dst = strconv.AppendUint(dst, h.Seq, 10)
	dst = append(dst, `,"size":`...)
	dst = strconv.AppendUint(dst, h.Size, 10)
	return append(dst, '}')
}

// ParseSnapHeader decodes a canonical snapshot header. ok is false on
// any deviation (including a Size beyond MaxSnapshotSize, which a
// reader must treat as corruption rather than allocate for).
func ParseSnapHeader(payload []byte) (h SnapHeader, ok bool) {
	c := batchCursor{b: payload}
	if !c.lit(snapPrefix) {
		return SnapHeader{}, false
	}
	part, pOK := c.int()
	if !pOK || !c.lit(`,"parts":`) {
		return SnapHeader{}, false
	}
	parts, kOK := c.int()
	if !kOK || !c.lit(`,"seq":`) {
		return SnapHeader{}, false
	}
	seq, sOK := c.uint()
	if !sOK || !c.lit(`,"size":`) {
		return SnapHeader{}, false
	}
	size, zOK := c.uint()
	if !zOK || !c.lit(`}`) || c.i != len(payload) {
		return SnapHeader{}, false
	}
	if parts < 1 || part < 0 || part >= parts || size > MaxSnapshotSize {
		return SnapHeader{}, false
	}
	return SnapHeader{Part: int(part), Parts: int(parts), Seq: seq, Size: size}, true
}
