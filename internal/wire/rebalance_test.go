package wire

import (
	"encoding/json"
	"testing"
)

func TestRebalRoundTrip(t *testing.T) {
	cases := []Rebal{
		{Barrier: 0, Parts: 2, NParts: 1},
		{Barrier: 1, Parts: 3, NParts: 5},
		{Barrier: 1<<63 + 7, Parts: 4, NParts: 2},
	}
	for _, r := range cases {
		enc := AppendRebal(nil, r)
		got, ok := ParseRebal(enc)
		if !ok || got != r {
			t.Fatalf("round trip %+v: wire %q gave %+v ok=%v", r, enc, got, ok)
		}
	}
}

// The canonical encoding must stay plain JSON: generic decoders (the
// stream client's control-frame fallback) read the same fields.
func TestRebalIsPlainJSON(t *testing.T) {
	enc := AppendRebal(nil, Rebal{Barrier: 42, Parts: 3, NParts: 5})
	var f struct {
		T       string `json:"t"`
		Barrier uint64 `json:"barrier"`
		Parts   int    `json:"parts"`
		NParts  int    `json:"nparts"`
	}
	if err := json.Unmarshal(enc, &f); err != nil {
		t.Fatalf("canonical rebal is not valid JSON: %v (%q)", err, enc)
	}
	if f.T != "rebal" || f.Barrier != 42 || f.Parts != 3 || f.NParts != 5 {
		t.Fatalf("JSON view mismatch: %+v from %q", f, enc)
	}
}

func TestRebalRejects(t *testing.T) {
	bad := []string{
		``,
		`{"t":"rebal"}`,
		`{"t":"rebal","barrier":1,"parts":2,"nparts":1}x`,  // trailing bytes
		`{"t":"rebal","barrier":1,"parts":1,"nparts":2}`,   // parts < 2: nothing to fence
		`{"t":"rebal","barrier":1,"parts":3,"nparts":0}`,   // empty new group
		`{"t":"rebal","barrier":1,"parts":4,"nparts":4}`,   // not a cutover
		`{"t":"rebal","barrier":-1,"parts":2,"nparts":3}`,  // negative barrier
		`{"t":"rebal","parts":2,"nparts":3,"barrier":1}`,   // non-canonical field order
		`{"t":"fbatch","barrier":1,"parts":2,"nparts":3}`,  // wrong type tag
		`{"t":"rebal","barrier":1,"parts":2.0,"nparts":3}`, // non-integer
	}
	for _, s := range bad {
		if r, ok := ParseRebal([]byte(s)); ok {
			t.Fatalf("accepted %q as %+v", s, r)
		}
	}
}
