// Codec for the live-rebalance cutover: the "rebal" frame a broker
// sends in-stream to every fenced partition subscriber once it has
// delivered everything at or below the rebalance barrier. The frame
// names the barrier (the last global sequence the old partition group
// owns), the old group size and the new one — enough for a worker to
// pin its final snapshot at the barrier and for an operator to know
// what shape to restart with. The surrounding prepare/commit control
// frames stay ordinary JSON control frames (internal/stream); only
// this frame rides the hot delivery path and gets a canonical codec.

package wire

import "strconv"

// Rebal is the in-stream rebalance announcement: partition group
// Parts is retired at sequence Barrier in favour of a group of NParts.
type Rebal struct {
	Barrier uint64
	Parts   int
	NParts  int
}

// Canonical rebal prefix.
//
//	{"t":"rebal","barrier":B,"parts":K,"nparts":N}
const rebalPrefix = `{"t":"rebal","barrier":`

// AppendRebal appends the canonical rebalance-announcement payload.
func AppendRebal(dst []byte, r Rebal) []byte {
	dst = append(dst, rebalPrefix...)
	dst = strconv.AppendUint(dst, r.Barrier, 10)
	dst = append(dst, `,"parts":`...)
	dst = strconv.AppendInt(dst, int64(r.Parts), 10)
	dst = append(dst, `,"nparts":`...)
	dst = strconv.AppendInt(dst, int64(r.NParts), 10)
	return append(dst, '}')
}

// ParseRebal decodes a canonical rebalance announcement. ok is false
// on any deviation from the canonical form or on semantic nonsense:
// only a real partition group (Parts ≥ 2) can be rebalanced, the new
// group must hold at least one partition, and a "rebalance" onto the
// same size is not a cutover.
func ParseRebal(payload []byte) (r Rebal, ok bool) {
	c := batchCursor{b: payload}
	if !c.lit(rebalPrefix) {
		return Rebal{}, false
	}
	barrier, bOK := c.uint()
	if !bOK || !c.lit(`,"parts":`) {
		return Rebal{}, false
	}
	parts, pOK := c.int()
	if !pOK || !c.lit(`,"nparts":`) {
		return Rebal{}, false
	}
	nparts, nOK := c.int()
	if !nOK || !c.lit(`}`) || c.i != len(payload) {
		return Rebal{}, false
	}
	if parts < 2 || nparts < 1 || parts == nparts {
		return Rebal{}, false
	}
	return Rebal{Barrier: barrier, Parts: int(parts), NParts: int(nparts)}, true
}
