package wire

import (
	"bytes"
	"testing"

	"sybilwild/internal/osn"
)

// TestFBatchCodecRoundTrip pins the filtered-batch form: per-event
// global sequences (sparse), a trailing cursor "last" that may exceed
// the final event's sequence, and the empty frame (a pure cursor
// advance). None of the three parsers may accept another's tag.
func TestFBatchCodecRoundTrip(t *testing.T) {
	events := []osn.Event{
		{Type: osn.EvFriendRequest, At: 0, Actor: 1, Target: 2},
		{Type: osn.EvFriendAccept, At: -5, Actor: 3, Target: 4, Aux: 9},
		{Type: osn.EvMessage, At: 1 << 40, Actor: -7, Target: 0},
	}
	seqs := []uint64{3, 9, 10}
	payload := AppendFBatch(nil, 14, seqs, events)
	last, gotEvs, gotSeqs, ok := ParseFBatch(payload, nil, nil)
	if !ok {
		t.Fatalf("canonical fbatch rejected: %s", payload)
	}
	if last != 14 || len(gotEvs) != len(events) || len(gotSeqs) != len(seqs) {
		t.Fatalf("last=%d nev=%d nseq=%d, want 14/%d/%d", last, len(gotEvs), len(gotSeqs), len(events), len(seqs))
	}
	for i := range events {
		if gotEvs[i] != events[i] || gotSeqs[i] != seqs[i] {
			t.Fatalf("event %d: %+v seq %d, want %+v seq %d", i, gotEvs[i], gotSeqs[i], events[i], seqs[i])
		}
	}
	if _, _, _, ok := ParseFBatch(payload[:len(payload)-1], nil, nil); ok {
		t.Fatal("truncated fbatch accepted")
	}
	if _, _, ok := ParseBatch(payload, nil); ok {
		t.Fatal("ParseBatch accepted an fbatch payload")
	}
	if _, _, _, ok := ParseFBatch(AppendBatch(nil, 14, events), nil, nil); ok {
		t.Fatal("ParseFBatch accepted a batch payload")
	}
}

// TestFBatchEmptyAdvance: an fbatch with no events is legal — it is
// how the broker moves a partitioned subscriber's cursor past a run
// of foreign events without sending them.
func TestFBatchEmptyAdvance(t *testing.T) {
	payload := AppendFBatch(nil, 1234, nil, nil)
	last, evs, seqs, ok := ParseFBatch(payload, nil, nil)
	if !ok || last != 1234 || len(evs) != 0 || len(seqs) != 0 {
		t.Fatalf("empty fbatch: ok=%v last=%d nev=%d nseq=%d", ok, last, len(evs), len(seqs))
	}
}

// TestFBatchEventsSectionSplice pins the fbatch splice contract:
// because every event object embeds its own global "seq", joining the
// events sections of consecutive frames with ',' under a fresh prefix
// carrying the FINAL frame's cursor must reproduce AppendFBatch over
// the concatenated (seqs, events), byte for byte — what lets the
// broker coalesce pre-encoded partitioned frames with memcpy instead
// of a re-encode.
func TestFBatchEventsSectionSplice(t *testing.T) {
	aEvs := []osn.Event{
		{Type: osn.EvFriendRequest, At: 1, Actor: 1, Target: 2},
		{Type: osn.EvMessage, At: 2, Actor: 2, Target: 1, Aux: 5},
	}
	aSeqs := []uint64{3, 7}
	bEvs := []osn.Event{
		{Type: osn.EvBan, At: 3, Actor: -1, Target: 4},
	}
	bSeqs := []uint64{11}
	fa := AppendFBatch(nil, 8, aSeqs, aEvs)
	fb := AppendFBatch(nil, 13, bSeqs, bEvs)
	sa, ok := FBatchEventsSection(fa)
	if !ok {
		t.Fatalf("section of %s rejected", fa)
	}
	sb, ok := FBatchEventsSection(fb)
	if !ok {
		t.Fatalf("section of %s rejected", fb)
	}
	spliced := AppendFBatch(nil, 13, nil, nil) // final frame's cursor
	spliced = spliced[:len(spliced)-2]         // drop "]}"
	spliced = append(spliced, sa...)
	spliced = append(spliced, ',')
	spliced = append(spliced, sb...)
	spliced = append(spliced, ']', '}')
	want := AppendFBatch(nil, 13,
		append(append([]uint64{}, aSeqs...), bSeqs...),
		append(append([]osn.Event{}, aEvs...), bEvs...))
	if !bytes.Equal(spliced, want) {
		t.Fatalf("splice diverges from fresh encode:\n%s\n%s", spliced, want)
	}
	// A pure cursor advance has an empty section — a splice starting
	// from it must not emit a leading comma; pin the section itself.
	se, ok := FBatchEventsSection(AppendFBatch(nil, 99, nil, nil))
	if !ok || len(se) != 0 {
		t.Fatalf("empty fbatch section: %q ok=%v, want empty/true", se, ok)
	}
	if _, ok := FBatchEventsSection(AppendBatch(nil, 1, aEvs)); ok {
		t.Fatal("fbatch events section accepted a batch payload")
	}
	if _, ok := BatchEventsSection(fa); ok {
		t.Fatal("batch events section accepted an fbatch payload")
	}
}

// TestSnapHeaderRoundTrip pins the snapshot header and its validation
// rules: part within [0,parts), parts >= 1, size bounded.
func TestSnapHeaderRoundTrip(t *testing.T) {
	h := SnapHeader{Part: 2, Parts: 5, Seq: 99123, Size: 4096}
	payload := AppendSnapHeader(nil, h)
	got, ok := ParseSnapHeader(payload)
	if !ok || got != h {
		t.Fatalf("round trip: ok=%v got=%+v want %+v (payload %s)", ok, got, h, payload)
	}
	bad := []SnapHeader{
		{Part: 5, Parts: 5, Seq: 1, Size: 1},                   // part out of range
		{Part: -1, Parts: 5, Seq: 1, Size: 1},                  // negative part
		{Part: 0, Parts: 0, Seq: 1, Size: 1},                   // zero parts
		{Part: 0, Parts: 1, Seq: 1, Size: MaxSnapshotSize + 1}, // oversized payload
	}
	for _, b := range bad {
		if _, ok := ParseSnapHeader(AppendSnapHeader(nil, b)); ok {
			t.Fatalf("invalid header accepted: %+v", b)
		}
	}
	if _, ok := ParseSnapHeader(payload[:len(payload)-1]); ok {
		t.Fatal("truncated snap header accepted")
	}
}
