package wire

import (
	"bytes"
	"encoding/binary"
	"testing"

	"sybilwild/internal/osn"
	"sybilwild/internal/sim"
)

// The wire codecs face two distinct adversaries: the canonical
// encoders (round trips must be lossless for every representable
// value) and corrupt bytes off a socket or a damaged spool segment
// (parsers must return ok=false or an error, never panic or
// misallocate). Each fuzz target exercises both with the same input:
// the raw bytes are thrown at the parser directly, then reinterpreted
// as a deterministic event generator whose output is encoded and
// parsed back.

// fuzzEvents derives events (and ascending sparse global sequences)
// from fuzz bytes, 16 bytes per event, covering every event type and
// the full id/time/aux ranges including negatives and zero aux.
func fuzzEvents(data []byte) ([]osn.Event, []uint64) {
	var evs []osn.Event
	var seqs []uint64
	var seq uint64
	for len(data) >= 16 {
		c := data[:16]
		data = data[16:]
		seq += 1 + uint64(c[0]%7)
		evs = append(evs, osn.Event{
			Type:   osn.EventType(c[1] % 7),
			At:     sim.Time(int64(int32(binary.LittleEndian.Uint32(c[2:6])))),
			Actor:  osn.AccountID(binary.LittleEndian.Uint32(c[6:10])),
			Target: osn.AccountID(binary.LittleEndian.Uint32(c[10:14])),
			Aux:    int32(int16(binary.LittleEndian.Uint16(c[14:16]))),
		})
		seqs = append(seqs, seq)
	}
	return evs, seqs
}

func eventsEqual(a, b []osn.Event) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func seqsEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func FuzzBatch(f *testing.F) {
	f.Add([]byte(`{"t":"batch","seq":1,"events":[]}`))
	f.Add(AppendBatch(nil, 42, []osn.Event{
		{Type: osn.EvFriendRequest, At: 7, Actor: 1, Target: 2},
		{Type: osn.EvBlogShare, At: -3, Actor: 4, Target: 5, Aux: -9},
	}))
	f.Add([]byte(`{"t":"batch","seq":01,"events":[]}`))
	f.Add([]byte(`{"t":"batch","seq":1,"events":[{"type":"warp"}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Corrupt input: must not panic; accepted values must survive
		// a re-encode/re-parse cycle unchanged.
		if seq, evs, ok := ParseBatch(data, nil); ok {
			enc := AppendBatch(nil, seq, evs)
			seq2, evs2, ok2 := ParseBatch(enc, nil)
			if !ok2 || seq2 != seq || !eventsEqual(evs2, evs) {
				t.Fatalf("accepted batch not idempotent: %q -> %q", data, enc)
			}
		}
		// Generator round trip.
		evs, _ := fuzzEvents(data)
		seq := uint64(len(data))
		enc := AppendBatch(nil, seq, evs)
		seq2, evs2, ok := ParseBatch(enc, nil)
		if !ok || seq2 != seq || !eventsEqual(evs2, evs) {
			t.Fatalf("batch round trip lost events: %d on wire as %q", len(evs), enc)
		}
	})
}

func FuzzPBatch(f *testing.F) {
	f.Add([]byte(`{"t":"pbatch","bseq":9,"events":[]}`))
	f.Add(AppendPBatch(nil, 3, []osn.Event{{Type: osn.EvBan, Target: 8}}))
	f.Add([]byte(`{"t":"pbatch","bseq":-1,"events":[]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		if bseq, evs, ok := ParsePBatch(data, nil); ok {
			enc := AppendPBatch(nil, bseq, evs)
			bseq2, evs2, ok2 := ParsePBatch(enc, nil)
			if !ok2 || bseq2 != bseq || !eventsEqual(evs2, evs) {
				t.Fatalf("accepted pbatch not idempotent: %q -> %q", data, enc)
			}
		}
		evs, _ := fuzzEvents(data)
		bseq := uint64(len(data)) * 3
		enc := AppendPBatch(nil, bseq, evs)
		bseq2, evs2, ok := ParsePBatch(enc, nil)
		if !ok || bseq2 != bseq || !eventsEqual(evs2, evs) {
			t.Fatalf("pbatch round trip lost events: %d on wire as %q", len(evs), enc)
		}
	})
}

func FuzzFBatch(f *testing.F) {
	f.Add([]byte(`{"t":"fbatch","last":5,"events":[]}`))
	f.Add(AppendFBatch(nil, 12, []uint64{3, 12}, []osn.Event{
		{Type: osn.EvFriendAccept, At: 1, Actor: 2, Target: 3},
		{Type: osn.EvMessage, At: 4, Actor: 5, Target: 6, Aux: 7},
	}))
	f.Add([]byte(`{"t":"fbatch","last":5,"events":[{"seq":-2}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		if last, evs, seqs, ok := ParseFBatch(data, nil, nil); ok {
			if len(evs) != len(seqs) {
				t.Fatalf("accepted fbatch with %d events but %d seqs", len(evs), len(seqs))
			}
			enc := AppendFBatch(nil, last, seqs, evs)
			last2, evs2, seqs2, ok2 := ParseFBatch(enc, nil, nil)
			if !ok2 || last2 != last || !eventsEqual(evs2, evs) || !seqsEqual(seqs2, seqs) {
				t.Fatalf("accepted fbatch not idempotent: %q -> %q", data, enc)
			}
		}
		evs, seqs := fuzzEvents(data)
		var last uint64
		if n := len(seqs); n > 0 {
			last = seqs[n-1] + uint64(len(data)%3)
		}
		enc := AppendFBatch(nil, last, seqs, evs)
		last2, evs2, seqs2, ok := ParseFBatch(enc, nil, nil)
		if !ok || last2 != last || !eventsEqual(evs2, evs) || !seqsEqual(seqs2, seqs) {
			t.Fatalf("fbatch round trip lost events: %d on wire as %q", len(evs), enc)
		}
	})
}

func FuzzSnapHeader(f *testing.F) {
	f.Add([]byte(`{"t":"snap","part":0,"parts":1,"seq":0,"size":0}`))
	f.Add(AppendSnapHeader(nil, SnapHeader{Part: 2, Parts: 5, Seq: 900, Size: 1 << 20}))
	f.Add([]byte(`{"t":"snap","part":3,"parts":2,"seq":1,"size":1}`))
	f.Add([]byte(`{"t":"snap","part":0,"parts":1,"seq":1,"size":99999999999}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		if h, ok := ParseSnapHeader(data); ok {
			if h.Parts < 1 || h.Part < 0 || h.Part >= h.Parts || h.Size > MaxSnapshotSize {
				t.Fatalf("parser accepted out-of-contract header %+v from %q", h, data)
			}
			enc := AppendSnapHeader(nil, h)
			h2, ok2 := ParseSnapHeader(enc)
			if !ok2 || h2 != h {
				t.Fatalf("accepted snap header not idempotent: %q -> %q", data, enc)
			}
		}
		// Generator round trip over normalized-valid headers.
		if len(data) >= 18 {
			h := SnapHeader{
				Parts: 1 + int(data[0]%64),
				Seq:   binary.LittleEndian.Uint64(data[2:10]),
				Size:  binary.LittleEndian.Uint64(data[10:18]) % (MaxSnapshotSize + 1),
			}
			h.Part = int(data[1]) % h.Parts
			enc := AppendSnapHeader(nil, h)
			h2, ok := ParseSnapHeader(enc)
			if !ok || h2 != h {
				t.Fatalf("snap header round trip: %+v on wire as %q gave %+v", h, enc, h2)
			}
		}
	})
}

func FuzzRebal(f *testing.F) {
	f.Add([]byte(`{"t":"rebal","barrier":0,"parts":2,"nparts":1}`))
	f.Add(AppendRebal(nil, Rebal{Barrier: 12345, Parts: 3, NParts: 5}))
	f.Add([]byte(`{"t":"rebal","barrier":7,"parts":4,"nparts":4}`))
	f.Add([]byte(`{"t":"rebal","barrier":7,"parts":1,"nparts":2}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		if r, ok := ParseRebal(data); ok {
			if r.Parts < 2 || r.NParts < 1 || r.Parts == r.NParts {
				t.Fatalf("parser accepted out-of-contract rebal %+v from %q", r, data)
			}
			enc := AppendRebal(nil, r)
			r2, ok2 := ParseRebal(enc)
			if !ok2 || r2 != r {
				t.Fatalf("accepted rebal not idempotent: %q -> %q", data, enc)
			}
		}
		// Generator round trip over normalized-valid announcements.
		if len(data) >= 10 {
			r := Rebal{
				Barrier: binary.LittleEndian.Uint64(data[2:10]),
				Parts:   2 + int(data[0]%64),
			}
			r.NParts = 1 + int(data[1])%128
			if r.NParts == r.Parts {
				r.NParts++
			}
			enc := AppendRebal(nil, r)
			r2, ok := ParseRebal(enc)
			if !ok || r2 != r {
				t.Fatalf("rebal round trip: %+v on wire as %q gave %+v", r, enc, r2)
			}
		}
	})
}

func FuzzReadFrame(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0})
	f.Add(AppendFrame(nil, []byte(`{"t":"batch","seq":1,"events":[]}`)))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 'x'})
	f.Add([]byte{0, 0, 0, 5, 'a', 'b'})
	f.Fuzz(func(t *testing.T, data []byte) {
		// A corrupt length prefix must produce an error (or a short
		// read), never a panic or a trusting allocation; an accepted
		// frame must round trip through AppendFrame.
		payload, err := ReadFrame(bytes.NewReader(data), nil)
		if err == nil {
			re, err := ReadFrame(bytes.NewReader(AppendFrame(nil, payload)), nil)
			if err != nil || !bytes.Equal(re, payload) {
				t.Fatalf("frame round trip: %q -> %q, %v", payload, re, err)
			}
		}
		// A tiny limit turns any announced size above it into an
		// error before any payload byte is read.
		if _, err := ReadFrameLimit(bytes.NewReader(data), nil, 8); err == nil && len(data) >= 4 {
			if n := binary.BigEndian.Uint32(data[:4]); n > 8 {
				t.Fatalf("limit 8 accepted a %d-byte frame", n)
			}
		}
	})
}
