package osn

import (
	"math/rand"
	"testing"
)

// TestPartitionExhaustiveDisjoint: ownership is a function — for any
// (K, account) exactly one partition index owns the account, the
// index is in range, and it is stable across calls. K <= 1 always
// maps to 0.
func TestPartitionExhaustiveDisjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ids := make([]AccountID, 0, 2000)
	for i := 0; i < 1000; i++ {
		ids = append(ids, AccountID(i))
	}
	for i := 0; i < 1000; i++ {
		ids = append(ids, AccountID(rng.Int31()))
	}
	for _, k := range []int{-1, 0, 1, 2, 3, 5, 8, 64} {
		counts := make([]int, max(k, 1))
		for _, id := range ids {
			p := Partition(id, k)
			if p < 0 || p >= len(counts) {
				t.Fatalf("Partition(%d, %d) = %d out of range", id, k, p)
			}
			if again := Partition(id, k); again != p {
				t.Fatalf("Partition(%d, %d) unstable: %d then %d", id, k, p, again)
			}
			counts[p]++
		}
		if k <= 1 {
			if counts[0] != len(ids) {
				t.Fatalf("k=%d: want all ids in partition 0", k)
			}
			continue
		}
		// FNV-1a should spread the account space roughly evenly; an
		// empty partition at these K would starve a worker entirely.
		for p, c := range counts {
			if c == 0 {
				t.Fatalf("k=%d: partition %d owns no accounts out of %d", k, p, len(ids))
			}
		}
	}
}

// TestPartitionDeliversContract pins the delivery predicate against
// its spec: the owner always receives the event, accepts fan out to
// every partition, requests and bans reach the target's partition,
// everything else stays owner-only — and the union over partitions
// covers every event (nothing is dropped by filtering).
func TestPartitionDeliversContract(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	types := []EventType{
		EvFriendRequest, EvFriendAccept, EvFriendReject,
		EvMessage, EvBan, EvBlogPost, EvBlogShare,
	}
	for _, k := range []int{1, 2, 3, 5, 7} {
		for i := 0; i < 5000; i++ {
			ev := Event{
				Type:   types[rng.Intn(len(types))],
				Actor:  AccountID(rng.Int31n(1 << 20)),
				Target: AccountID(rng.Int31n(1 << 20)),
			}
			owner := Partition(ev.Actor, k)
			delivered := 0
			for p := 0; p < k; p++ {
				got := PartitionDelivers(ev, p, k)
				want := p == owner
				switch ev.Type {
				case EvFriendAccept:
					want = true
				case EvFriendRequest, EvBan:
					want = want || p == Partition(ev.Target, k)
				}
				if got != want {
					t.Fatalf("k=%d part=%d ev=%+v: delivers=%v want %v", k, p, ev, got, want)
				}
				if got {
					delivered++
				}
			}
			if delivered == 0 {
				t.Fatalf("k=%d ev=%+v delivered to no partition", k, ev)
			}
			if !PartitionDelivers(ev, owner, k) {
				t.Fatalf("k=%d ev=%+v not delivered to its owner %d", k, ev, owner)
			}
		}
	}
}
