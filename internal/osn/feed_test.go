package osn

import "testing"

// chainNet builds a path of friends: 0-1-2-3-4.
func chainNet(t *testing.T, n int) *Network {
	t.Helper()
	net := NewNetwork()
	for i := 0; i < n; i++ {
		net.CreateAccount(Female, Normal, 0)
	}
	for i := 0; i < n-1; i++ {
		net.SendFriendRequest(AccountID(i), AccountID(i+1), 1)
		net.RespondFriendRequest(AccountID(i+1), AccountID(i), true, 2)
	}
	return net
}

func TestPostBlogVisibility(t *testing.T) {
	net := chainNet(t, 4)
	id, err := net.PostBlog(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !net.CanSee(0, id) {
		t.Fatal("author cannot see own blog")
	}
	if !net.CanSee(1, id) {
		t.Fatal("friend cannot see blog")
	}
	if net.CanSee(2, id) {
		t.Fatal("2-hop user sees unshared blog")
	}
	if net.BlogSharers(id) != 1 {
		t.Fatalf("sharers = %d", net.BlogSharers(id))
	}
	if net.BlogAudience(id) != 1 {
		t.Fatalf("audience = %d, want 1 (only node 1)", net.BlogAudience(id))
	}
}

func TestShareCascadeExtendsReach(t *testing.T) {
	net := chainNet(t, 5)
	id, _ := net.PostBlog(0, 10)
	// 2 cannot share yet (not visible).
	if err := net.ShareBlog(2, id, 11); err != ErrNotVisible {
		t.Fatalf("2-hop share err = %v", err)
	}
	if err := net.ShareBlog(1, id, 12); err != nil {
		t.Fatal(err)
	}
	// Now 2 can see and share; the cascade hops outward.
	if !net.CanSee(2, id) {
		t.Fatal("cascade did not extend visibility")
	}
	if err := net.ShareBlog(2, id, 13); err != nil {
		t.Fatal(err)
	}
	if net.BlogSharers(id) != 3 {
		t.Fatalf("sharers = %d", net.BlogSharers(id))
	}
	// Audience: nodes 3 (friend of sharer 2); 0,1,2 are sharers.
	if net.BlogAudience(id) != 1 {
		t.Fatalf("audience = %d", net.BlogAudience(id))
	}
}

func TestShareValidation(t *testing.T) {
	net := chainNet(t, 3)
	id, _ := net.PostBlog(0, 1)
	if err := net.ShareBlog(1, id, 2); err != nil {
		t.Fatal(err)
	}
	if err := net.ShareBlog(1, id, 3); err != ErrReshared {
		t.Fatalf("duplicate share err = %v", err)
	}
	if err := net.ShareBlog(1, BlogID(99), 3); err != ErrNoBlog {
		t.Fatalf("missing blog err = %v", err)
	}
	net.Ban(2, 4)
	if err := net.ShareBlog(2, id, 5); err != ErrBanned {
		t.Fatalf("banned share err = %v", err)
	}
	if _, err := net.PostBlog(2, 6); err != ErrBanned {
		t.Fatalf("banned post err = %v", err)
	}
}

func TestFeedEventsLogged(t *testing.T) {
	net := chainNet(t, 3)
	id, _ := net.PostBlog(0, 5)
	net.ShareBlog(1, id, 6)
	var post, share int
	for _, ev := range net.Events() {
		switch ev.Type {
		case EvBlogPost:
			post++
			if ev.Aux != int32(id) || ev.Actor != 0 {
				t.Fatalf("post event wrong: %+v", ev)
			}
		case EvBlogShare:
			share++
			if ev.Aux != int32(id) || ev.Actor != 1 || ev.Target != 0 {
				t.Fatalf("share event wrong: %+v", ev)
			}
		}
	}
	if post != 1 || share != 1 {
		t.Fatalf("feed events = %d posts %d shares", post, share)
	}
}

func TestBlogQueriesOutOfRange(t *testing.T) {
	net := chainNet(t, 2)
	if net.BlogSharers(5) != 0 || net.BlogAudience(5) != 0 || net.CanSee(0, 5) {
		t.Fatal("out-of-range blog queries not zero")
	}
}
