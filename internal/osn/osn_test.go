package osn

import (
	"testing"
)

func twoAccounts() (*Network, AccountID, AccountID) {
	n := NewNetwork()
	a := n.CreateAccount(Female, Normal, 0)
	b := n.CreateAccount(Male, Sybil, 0)
	return n, a, b
}

func TestCreateAccount(t *testing.T) {
	n, a, b := twoAccounts()
	if n.NumAccounts() != 2 {
		t.Fatalf("accounts = %d", n.NumAccounts())
	}
	if n.Account(a).Gender != Female || n.Account(b).Kind != Sybil {
		t.Fatal("profile fields wrong")
	}
	if n.Graph().NumNodes() != 2 {
		t.Fatal("graph nodes out of sync")
	}
}

func TestFriendRequestLifecycleAccept(t *testing.T) {
	n, a, b := twoAccounts()
	if err := n.SendFriendRequest(a, b, 10); err != nil {
		t.Fatal(err)
	}
	if got := n.PendingFor(b); len(got) != 1 || got[0].From != a || got[0].At != 10 {
		t.Fatalf("pending = %+v", got)
	}
	if err := n.RespondFriendRequest(b, a, true, 25); err != nil {
		t.Fatal(err)
	}
	if len(n.PendingFor(b)) != 0 {
		t.Fatal("pending not cleared")
	}
	if !n.Graph().HasEdge(a, b) {
		t.Fatal("edge missing after accept")
	}
	if n.Friends(a)[0].Time != 25 {
		t.Fatalf("edge time = %d, want response time 25", n.Friends(a)[0].Time)
	}
	evs := n.Events()
	if len(evs) != 2 || evs[0].Type != EvFriendRequest || evs[1].Type != EvFriendAccept {
		t.Fatalf("events = %+v", evs)
	}
}

func TestFriendRequestReject(t *testing.T) {
	n, a, b := twoAccounts()
	n.SendFriendRequest(a, b, 1)
	if err := n.RespondFriendRequest(b, a, false, 2); err != nil {
		t.Fatal(err)
	}
	if n.Graph().HasEdge(a, b) {
		t.Fatal("edge created on reject")
	}
	evs := n.Events()
	if evs[len(evs)-1].Type != EvFriendReject {
		t.Fatalf("last event = %v", evs[len(evs)-1].Type)
	}
}

func TestRequestValidation(t *testing.T) {
	n, a, b := twoAccounts()
	if err := n.SendFriendRequest(a, a, 0); err != ErrSelfRequest {
		t.Fatalf("self request err = %v", err)
	}
	n.SendFriendRequest(a, b, 1)
	if err := n.SendFriendRequest(a, b, 2); err != ErrDuplicate {
		t.Fatalf("duplicate err = %v", err)
	}
	n.RespondFriendRequest(b, a, true, 3)
	if err := n.SendFriendRequest(a, b, 4); err != ErrAlreadyFriends {
		t.Fatalf("already-friends err = %v", err)
	}
}

func TestSymmetricRequestAutoAccepts(t *testing.T) {
	n, a, b := twoAccounts()
	n.SendFriendRequest(a, b, 1)
	if err := n.SendFriendRequest(b, a, 5); err != nil {
		t.Fatalf("symmetric request err = %v", err)
	}
	if !n.Graph().HasEdge(a, b) {
		t.Fatal("symmetric requests did not auto-friend")
	}
	if len(n.PendingFor(a)) != 0 || len(n.PendingFor(b)) != 0 {
		t.Fatal("pending queues not cleared")
	}
}

func TestRespondWithoutRequest(t *testing.T) {
	n, a, b := twoAccounts()
	if err := n.RespondFriendRequest(b, a, true, 1); err != ErrNoRequest {
		t.Fatalf("err = %v", err)
	}
}

func TestBanBlocksActivity(t *testing.T) {
	n, a, b := twoAccounts()
	n.Ban(b, 7)
	if !n.Account(b).Banned || n.Account(b).BannedAt != 7 {
		t.Fatal("ban not recorded")
	}
	if err := n.SendFriendRequest(b, a, 8); err != ErrBanned {
		t.Fatalf("banned send err = %v", err)
	}
	if err := n.SendFriendRequest(a, b, 8); err != ErrBanned {
		t.Fatalf("send-to-banned err = %v", err)
	}
	if err := n.SendMessage(b, a, 8); err != ErrBanned {
		t.Fatalf("banned message err = %v", err)
	}
	// Idempotent: only one ban event.
	n.Ban(b, 9)
	bans := 0
	for _, ev := range n.Events() {
		if ev.Type == EvBan {
			bans++
		}
	}
	if bans != 1 {
		t.Fatalf("ban events = %d", bans)
	}
}

func TestAcceptFromBannedRequesterDropped(t *testing.T) {
	n, a, b := twoAccounts()
	n.SendFriendRequest(b, a, 1)
	n.Ban(b, 2)
	if err := n.RespondFriendRequest(a, b, true, 3); err != ErrBanned {
		t.Fatalf("err = %v", err)
	}
	if n.Graph().HasEdge(a, b) {
		t.Fatal("edge created with banned account")
	}
}

func TestObserverSeesEverything(t *testing.T) {
	n := NewNetwork()
	var seen []Event
	n.RegisterObserver(func(ev Event) { seen = append(seen, ev) })
	a := n.CreateAccount(Female, Normal, 0)
	b := n.CreateAccount(Female, Normal, 0)
	n.SendFriendRequest(a, b, 1)
	n.RespondFriendRequest(b, a, true, 2)
	n.SendMessage(a, b, 3)
	n.Ban(a, 4)
	if len(seen) != len(n.Events()) || len(seen) != 4 {
		t.Fatalf("observer saw %d events, log has %d", len(seen), len(n.Events()))
	}
}

func TestKeepLogOff(t *testing.T) {
	n := NewNetwork()
	n.SetKeepLog(false)
	count := 0
	n.RegisterObserver(func(Event) { count++ })
	a := n.CreateAccount(Female, Normal, 0)
	b := n.CreateAccount(Female, Normal, 0)
	n.SendFriendRequest(a, b, 1)
	if len(n.Events()) != 0 {
		t.Fatal("log retained with keepLog=false")
	}
	if count != 1 {
		t.Fatalf("observer count = %d", count)
	}
}

func TestPendingArrivalOrder(t *testing.T) {
	n := NewNetwork()
	target := n.CreateAccount(Female, Normal, 0)
	var senders []AccountID
	for i := 0; i < 5; i++ {
		s := n.CreateAccount(Male, Sybil, 0)
		senders = append(senders, s)
		n.SendFriendRequest(s, target, int64(10+i))
	}
	pend := n.PendingFor(target)
	for i, p := range pend {
		if p.From != senders[i] {
			t.Fatalf("pending order = %+v", pend)
		}
	}
}

func TestSybilMask(t *testing.T) {
	n, _, b := twoAccounts()
	mask := n.SybilMask()
	if mask[0] || !mask[b] {
		t.Fatalf("mask = %v", mask)
	}
}

func TestKindString(t *testing.T) {
	if Normal.String() != "normal" || Sybil.String() != "sybil" || Page.String() != "page" {
		t.Fatal("kind names wrong")
	}
	if EvFriendRequest.String() != "friend_request" || EvBan.String() != "ban" {
		t.Fatal("event names wrong")
	}
}

func TestFanOut(t *testing.T) {
	n := NewNetwork()
	a := n.CreateAccount(Male, Normal, 0)
	b := n.CreateAccount(Female, Normal, 0)
	var first, second []EventType
	n.RegisterObserver(FanOut(
		func(ev Event) { first = append(first, ev.Type) },
		func(ev Event) {
			second = append(second, ev.Type)
			if len(second) != len(first) {
				t.Error("fan-out order violated: second observer ran before first")
			}
		},
	))
	n.SendFriendRequest(a, b, 1)
	n.RespondFriendRequest(b, a, true, 2)
	want := []EventType{EvFriendRequest, EvFriendAccept}
	if len(first) != len(want) || len(second) != len(want) {
		t.Fatalf("fan-out delivered %d/%d events, want %d", len(first), len(second), len(want))
	}
	for i, w := range want {
		if first[i] != w || second[i] != w {
			t.Fatalf("fan-out event %d = %v/%v, want %v", i, first[i], second[i], w)
		}
	}
}

func TestFilterTypes(t *testing.T) {
	n := NewNetwork()
	a := n.CreateAccount(Male, Normal, 0)
	b := n.CreateAccount(Female, Normal, 0)
	var got []EventType
	n.RegisterObserver(FilterTypes(
		func(ev Event) { got = append(got, ev.Type) },
		EvFriendRequest,
	))
	n.SendFriendRequest(a, b, 1)
	n.RespondFriendRequest(b, a, true, 2)
	n.SendMessage(a, b, 3)
	if len(got) != 1 || got[0] != EvFriendRequest {
		t.Fatalf("filter passed %v, want [friend_request]", got)
	}
}
