// Partitioning of the account space for the detection cluster: one
// hash function shared by producers (sharded simulation), the broker
// (filtered subscriptions), and the detector (evaluation ownership),
// so "which worker owns account X" has exactly one answer everywhere.
package osn

import "hash/fnv"

// Partition deterministically assigns an account to one of n
// partitions (FNV-1a over the little-endian account id). It is the
// single partition function for the whole system: sharded producers
// split the simulated population with it, the broker filters
// partitioned subscriptions with it, and partitioned detector
// pipelines use it to decide which accounts they evaluate. n <= 1
// means "unpartitioned" and always returns 0.
func Partition(id AccountID, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New32a()
	var b [4]byte
	v := uint32(id)
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	h.Write(b[:])
	return int(h.Sum32() % uint32(n))
}

// PartitionDelivers reports whether a partitioned feed subscription
// (index part of parts) receives ev. Every event is OWNED by exactly
// one partition — Partition(ev.Actor, parts) — and ownership decides
// which worker evaluates and may flag the actor. But the paper's
// feature vector is not actor-local: an account's outgoing-accept
// ratio is updated by accept events whose actor is the accepting
// friend (possibly foreign), and its clustering coefficient needs
// edges BETWEEN its friends (neither endpoint the account). So beyond
// the owned slice each partition also receives the support slice it
// needs to keep its owned accounts' features exact:
//
//   - friend_accept events go to every partition: they are the graph
//     edges (clustering coefficient is a two-hop structural feature —
//     any partition may own an account adjacent to the new edge) and
//     they carry the target's outgoing-accept credit.
//   - friend_request events additionally go to the target's
//     partition (the target's incoming-request counter).
//   - everything else (messages, bans, blog activity) goes only to
//     the owner.
//
// Evaluation stays exactly-one (ownership); delivery is
// exactly-one-plus-support. The union of K partitioned pipelines'
// flag sets therefore equals a single unpartitioned run, which is the
// cluster's correctness contract.
func PartitionDelivers(ev Event, part, parts int) bool {
	if parts <= 1 {
		return true
	}
	if Partition(ev.Actor, parts) == part {
		return true
	}
	switch ev.Type {
	case EvFriendAccept:
		return true
	case EvFriendRequest, EvBan:
		return Partition(ev.Target, parts) == part
	}
	return false
}
