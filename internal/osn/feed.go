package osn

import (
	"errors"

	"sybilwild/internal/sim"
)

// The feed subsystem models Renren's most popular activity (§2.1):
// sharing blog entries, which propagate across multiple social hops
// "much like retweets on Twitter". It is the delivery surface Sybil
// ad campaigns exploit once friendships are in place.

// BlogID identifies a blog entry.
type BlogID int32

// Feed errors.
var (
	ErrNoBlog     = errors.New("osn: no such blog")
	ErrNotVisible = errors.New("osn: blog not visible to this user")
	ErrReshared   = errors.New("osn: user already shared this blog")
)

type blog struct {
	author  AccountID
	at      sim.Time
	sharers map[AccountID]struct{} // author + everyone who re-shared
}

// PostBlog publishes a blog entry by author and returns its ID. The
// entry is immediately visible to the author's friends.
func (n *Network) PostBlog(author AccountID, at sim.Time) (BlogID, error) {
	if n.accounts[author].Banned {
		return 0, ErrBanned
	}
	id := BlogID(len(n.blogs))
	n.blogs = append(n.blogs, blog{
		author:  author,
		at:      at,
		sharers: map[AccountID]struct{}{author: {}},
	})
	n.emit(Event{Type: EvBlogPost, At: at, Actor: author, Aux: int32(id)})
	return id, nil
}

// ShareBlog re-shares a blog entry, extending its reach by one hop.
// The sharer must be able to see the entry: one of their friends must
// already be among its sharers. Sharing is idempotent-checked.
func (n *Network) ShareBlog(sharer AccountID, id BlogID, at sim.Time) error {
	if int(id) < 0 || int(id) >= len(n.blogs) {
		return ErrNoBlog
	}
	if n.accounts[sharer].Banned {
		return ErrBanned
	}
	b := &n.blogs[id]
	if _, dup := b.sharers[sharer]; dup {
		return ErrReshared
	}
	visible := false
	for _, e := range n.g.Neighbors(sharer) {
		if _, ok := b.sharers[e.To]; ok {
			visible = true
			break
		}
	}
	if !visible {
		return ErrNotVisible
	}
	b.sharers[sharer] = struct{}{}
	n.emit(Event{Type: EvBlogShare, At: at, Actor: sharer, Target: b.author, Aux: int32(id)})
	return nil
}

// BlogSharers returns how many accounts (author included) have shared
// the entry.
func (n *Network) BlogSharers(id BlogID) int {
	if int(id) < 0 || int(id) >= len(n.blogs) {
		return 0
	}
	return len(n.blogs[id].sharers)
}

// BlogAudience returns the entry's current reach: the number of
// distinct accounts with at least one sharer among their friends
// (sharers themselves excluded).
func (n *Network) BlogAudience(id BlogID) int {
	if int(id) < 0 || int(id) >= len(n.blogs) {
		return 0
	}
	b := &n.blogs[id]
	seen := make(map[AccountID]struct{})
	for s := range b.sharers {
		for _, e := range n.g.Neighbors(s) {
			if _, isSharer := b.sharers[e.To]; !isSharer {
				seen[e.To] = struct{}{}
			}
		}
	}
	return len(seen)
}

// CanSee reports whether the user currently sees the blog in their
// feed (a friend has shared it) or is a sharer themselves.
func (n *Network) CanSee(user AccountID, id BlogID) bool {
	if int(id) < 0 || int(id) >= len(n.blogs) {
		return false
	}
	b := &n.blogs[id]
	if _, ok := b.sharers[user]; ok {
		return true
	}
	for _, e := range n.g.Neighbors(user) {
		if _, ok := b.sharers[e.To]; ok {
			return true
		}
	}
	return false
}
