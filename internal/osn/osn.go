// Package osn implements the Renren-substitute online social network:
// accounts with profiles, the friend-request lifecycle (send, accept,
// reject), timestamped bidirectional friendships, messaging, and ban
// machinery, all recorded to an append-only event log.
//
// The paper's detector consumed Renren's production friend-invitation
// logs; this package produces logs with the same information content
// (who asked whom, when, and what the recipient decided), which is all
// that the downstream feature extraction requires.
package osn

import (
	"errors"
	"fmt"

	"sybilwild/internal/graph"
	"sybilwild/internal/sim"
)

// AccountID identifies an account. It doubles as the account's node ID
// in the social graph.
type AccountID = graph.NodeID

// Gender of the profile (the paper reports Sybils skew 77.3% female
// profile photos vs 46.5% in the user population).
type Gender uint8

// Gender values.
const (
	Male Gender = iota
	Female
)

// Kind is the ground-truth class of an account. The simulator knows the
// truth because it created the account; detectors never see this field.
type Kind uint8

// Kind values.
const (
	Normal Kind = iota
	Sybil
	Page // commercial page; target of Sybil ad campaigns
)

// String returns a short human-readable kind name.
func (k Kind) String() string {
	switch k {
	case Normal:
		return "normal"
	case Sybil:
		return "sybil"
	case Page:
		return "page"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Account is a user profile plus account state.
type Account struct {
	ID        AccountID
	Gender    Gender
	Kind      Kind
	CreatedAt sim.Time
	Banned    bool
	BannedAt  sim.Time
}

// EventType enumerates log event kinds.
type EventType uint8

// Event types.
const (
	EvFriendRequest EventType = iota // Actor asked Target
	EvFriendAccept                   // Actor (recipient) accepted Target's request; edge created
	EvFriendReject                   // Actor (recipient) rejected Target's request
	EvMessage                        // Actor messaged Target (spam surface)
	EvBan                            // Target banned (Actor unused)
	EvBlogPost                       // Actor published blog Aux
	EvBlogShare                      // Actor re-shared blog Aux by Target
)

// String returns the event type name.
func (t EventType) String() string {
	switch t {
	case EvFriendRequest:
		return "friend_request"
	case EvFriendAccept:
		return "friend_accept"
	case EvFriendReject:
		return "friend_reject"
	case EvMessage:
		return "message"
	case EvBan:
		return "ban"
	case EvBlogPost:
		return "blog_post"
	case EvBlogShare:
		return "blog_share"
	default:
		return fmt.Sprintf("event(%d)", uint8(t))
	}
}

// Event is one operational-log record. Aux carries the blog ID for
// feed events and is zero otherwise.
type Event struct {
	Type   EventType
	At     sim.Time
	Actor  AccountID
	Target AccountID
	Aux    int32
}

// Observer receives every event as it is appended. Observers run
// synchronously inside the mutating call; they must not mutate the
// network reentrantly.
type Observer func(Event)

// FanOut combines observers into one that forwards each event to all
// of them in order — the hook point for wiring several consumers (a
// feed broadcaster, a detection pipeline, a metrics counter) to one
// registration.
func FanOut(obs ...Observer) Observer {
	return func(ev Event) {
		for _, o := range obs {
			o(ev)
		}
	}
}

// FilterTypes wraps an observer so it only sees the given event types.
// Consumers that care about a slice of the log (the detector only
// consumes the friend-request lifecycle) skip the rest without paying
// for their own dispatch.
func FilterTypes(o Observer, types ...EventType) Observer {
	var want [256]bool
	for _, t := range types {
		want[t] = true
	}
	return func(ev Event) {
		if want[ev.Type] {
			o(ev)
		}
	}
}

// Request errors.
var (
	ErrBanned         = errors.New("osn: account is banned")
	ErrSelfRequest    = errors.New("osn: cannot friend yourself")
	ErrAlreadyFriends = errors.New("osn: already friends")
	ErrDuplicate      = errors.New("osn: request already pending")
	ErrNoRequest      = errors.New("osn: no such pending request")
)

// PendingRequest is an incoming friend request awaiting a decision.
type PendingRequest struct {
	From AccountID
	At   sim.Time
}

// Network is the OSN state. It is not safe for concurrent use; the
// simulation is single-threaded and streaming consumers attach via
// observers.
type Network struct {
	accounts  []Account
	g         *graph.Graph
	pendingIn [][]PendingRequest // per-recipient queue, arrival order
	events    []Event
	observers []Observer
	keepLog   bool
	blogs     []blog
}

// NewNetwork returns an empty network that records its event log in
// memory (see SetKeepLog to disable for very large runs where only
// observers are needed).
func NewNetwork() *Network {
	return &Network{g: graph.New(0), keepLog: true}
}

// SetKeepLog toggles in-memory event-log retention. Observers fire
// regardless.
func (n *Network) SetKeepLog(keep bool) { n.keepLog = keep }

// RegisterObserver attaches a synchronous event observer.
func (n *Network) RegisterObserver(o Observer) { n.observers = append(n.observers, o) }

// CreateAccount registers a new account and returns its ID.
func (n *Network) CreateAccount(g Gender, k Kind, at sim.Time) AccountID {
	id := n.g.AddNode()
	n.accounts = append(n.accounts, Account{ID: id, Gender: g, Kind: k, CreatedAt: at})
	n.pendingIn = append(n.pendingIn, nil)
	return id
}

// NumAccounts returns the number of accounts ever created.
func (n *Network) NumAccounts() int { return len(n.accounts) }

// Account returns a copy of the account record.
func (n *Network) Account(id AccountID) Account { return n.accounts[id] }

// Graph exposes the accepted-friendship graph. Callers must treat it
// as read-only.
func (n *Network) Graph() *graph.Graph { return n.g }

// Events returns the retained event log. Callers must not modify it.
func (n *Network) Events() []Event { return n.events }

// Accounts returns the account table. Callers must not modify it.
func (n *Network) Accounts() []Account { return n.accounts }

func (n *Network) emit(ev Event) {
	if n.keepLog {
		n.events = append(n.events, ev)
	}
	for _, o := range n.observers {
		o(ev)
	}
}

// SendFriendRequest records that from asked to at time at. The request
// sits in to's pending queue until RespondFriendRequest.
func (n *Network) SendFriendRequest(from, to AccountID, at sim.Time) error {
	if from == to {
		return ErrSelfRequest
	}
	if n.accounts[from].Banned || n.accounts[to].Banned {
		return ErrBanned
	}
	if n.g.HasEdge(from, to) {
		return ErrAlreadyFriends
	}
	for _, p := range n.pendingIn[to] {
		if p.From == from {
			return ErrDuplicate
		}
	}
	// A symmetric pending request (to already asked from) is treated as
	// an implicit accept, like production OSNs do.
	for i, p := range n.pendingIn[from] {
		if p.From == to {
			n.pendingIn[from] = append(n.pendingIn[from][:i], n.pendingIn[from][i+1:]...)
			n.emit(Event{Type: EvFriendRequest, At: at, Actor: from, Target: to})
			n.g.AddEdge(from, to, at)
			n.emit(Event{Type: EvFriendAccept, At: at, Actor: from, Target: to})
			return nil
		}
	}
	n.pendingIn[to] = append(n.pendingIn[to], PendingRequest{From: from, At: at})
	n.emit(Event{Type: EvFriendRequest, At: at, Actor: from, Target: to})
	return nil
}

// RespondFriendRequest has `to` accept or reject the pending request
// from `from`. Accepting creates the friendship edge stamped with the
// response time (edge creation time, per the paper's timestamp data).
func (n *Network) RespondFriendRequest(to, from AccountID, accept bool, at sim.Time) error {
	if n.accounts[to].Banned {
		return ErrBanned
	}
	idx := -1
	for i, p := range n.pendingIn[to] {
		if p.From == from {
			idx = i
			break
		}
	}
	if idx < 0 {
		return ErrNoRequest
	}
	n.pendingIn[to] = append(n.pendingIn[to][:idx], n.pendingIn[to][idx+1:]...)
	if accept {
		if n.accounts[from].Banned {
			// Requester was banned while pending: drop silently.
			return ErrBanned
		}
		n.g.AddEdge(to, from, at)
		n.emit(Event{Type: EvFriendAccept, At: at, Actor: to, Target: from})
		return nil
	}
	n.emit(Event{Type: EvFriendReject, At: at, Actor: to, Target: from})
	return nil
}

// PendingFor returns to's incoming pending requests in arrival order.
// Callers must not modify the returned slice.
func (n *Network) PendingFor(to AccountID) []PendingRequest { return n.pendingIn[to] }

// Friends returns id's friendships in creation order.
func (n *Network) Friends(id AccountID) []graph.Edge { return n.g.Neighbors(id) }

// SendMessage records a message (the spam-delivery surface).
func (n *Network) SendMessage(from, to AccountID, at sim.Time) error {
	if n.accounts[from].Banned {
		return ErrBanned
	}
	n.emit(Event{Type: EvMessage, At: at, Actor: from, Target: to})
	return nil
}

// Ban marks the account banned. Banned accounts can no longer send
// requests or messages and their pending outgoing requests can no
// longer be accepted. Banning is idempotent.
func (n *Network) Ban(id AccountID, at sim.Time) {
	if n.accounts[id].Banned {
		return
	}
	n.accounts[id].Banned = true
	n.accounts[id].BannedAt = at
	n.emit(Event{Type: EvBan, At: at, Target: id})
}

// Restore rebuilds a Network from serialized state: the account
// table, the friendship edges, and the event log. Pending requests are
// not part of serialized state (the paper's analyses never consume
// them), so the restored network has empty pending queues.
func Restore(accounts []Account, edges []graph.EdgeTriple, events []Event) *Network {
	n := NewNetwork()
	for _, a := range accounts {
		id := n.CreateAccount(a.Gender, a.Kind, a.CreatedAt)
		if id != a.ID {
			panic("osn: account table not dense by ID")
		}
		n.accounts[id].Banned = a.Banned
		n.accounts[id].BannedAt = a.BannedAt
	}
	for _, e := range edges {
		n.g.AddEdge(e.U, e.V, e.Time)
	}
	n.events = append(n.events, events...)
	return n
}

// SybilMask returns a ground-truth membership mask over all accounts
// (true where Kind == Sybil), sized for the current graph.
func (n *Network) SybilMask() []bool {
	mask := make([]bool, len(n.accounts))
	for i := range n.accounts {
		mask[i] = n.accounts[i].Kind == Sybil
	}
	return mask
}
