package osn

import (
	"testing"

	"sybilwild/internal/stats"
)

// TestRandomOperationInvariants drives the network with random
// operation sequences and checks the structural invariants that every
// downstream analysis depends on.
func TestRandomOperationInvariants(t *testing.T) {
	r := stats.NewRand(71)
	for trial := 0; trial < 10; trial++ {
		net := NewNetwork()
		n := 20 + r.Intn(30)
		for i := 0; i < n; i++ {
			k := Normal
			if r.Bernoulli(0.3) {
				k = Sybil
			}
			net.CreateAccount(Female, k, 0)
		}
		var at int64 = 1
		for op := 0; op < 800; op++ {
			at++
			a := AccountID(r.Intn(n))
			b := AccountID(r.Intn(n))
			switch r.Intn(10) {
			case 0:
				net.Ban(a, at)
			case 1, 2, 3:
				if pend := net.PendingFor(a); len(pend) > 0 {
					p := pend[r.Intn(len(pend))]
					net.RespondFriendRequest(a, p.From, r.Bernoulli(0.5), at)
				}
			default:
				net.SendFriendRequest(a, b, at)
			}
		}

		g := net.Graph()
		// Invariant 1: no pending request duplicates an existing edge.
		for id := 0; id < n; id++ {
			for _, p := range net.PendingFor(AccountID(id)) {
				if g.HasEdge(AccountID(id), p.From) {
					t.Fatal("pending request alongside existing friendship")
				}
				if p.From == AccountID(id) {
					t.Fatal("self-request in pending queue")
				}
			}
		}
		// Invariant 2: accepted-edge count equals accept events.
		accepts := 0
		for _, ev := range net.Events() {
			if ev.Type == EvFriendAccept {
				accepts++
			}
		}
		if accepts != g.NumEdges() {
			t.Fatalf("accept events %d != edges %d", accepts, g.NumEdges())
		}
		// Invariant 3: event log times are non-decreasing (ops were).
		var last int64 = -1
		for _, ev := range net.Events() {
			if ev.At < last {
				t.Fatalf("event log time regressed: %d after %d", ev.At, last)
			}
			last = ev.At
		}
		// Invariant 4: banned accounts sent nothing after their ban.
		bannedAt := map[AccountID]int64{}
		for _, ev := range net.Events() {
			if ev.Type == EvBan {
				bannedAt[ev.Target] = ev.At
			}
		}
		for _, ev := range net.Events() {
			if ev.Type != EvFriendRequest {
				continue
			}
			if when, ok := bannedAt[ev.Actor]; ok && ev.At > when {
				t.Fatalf("banned account %d sent a request at %d (banned %d)",
					ev.Actor, ev.At, when)
			}
		}
	}
}

// TestPendingNeverDuplicates verifies the duplicate-request guard under
// repeated attempts.
func TestPendingNeverDuplicates(t *testing.T) {
	net := NewNetwork()
	a := net.CreateAccount(Female, Sybil, 0)
	b := net.CreateAccount(Male, Normal, 0)
	if err := net.SendFriendRequest(a, b, 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := net.SendFriendRequest(a, b, int64(2+i)); err != ErrDuplicate {
			t.Fatalf("attempt %d err = %v", i, err)
		}
	}
	if len(net.PendingFor(b)) != 1 {
		t.Fatalf("pending = %d", len(net.PendingFor(b)))
	}
}
