package graph

import (
	"testing"

	"sybilwild/internal/stats"
)

func benchGraph(b *testing.B, n, m int) *Graph {
	b.Helper()
	r := stats.NewRand(1)
	g := New(n)
	g.AddNodes(n)
	for i := 0; i < m; i++ {
		u := NodeID(r.Intn(n))
		v := NodeID(r.Intn(n))
		if u != v {
			g.AddEdge(u, v, int64(i))
		}
	}
	return g
}

func BenchmarkAddEdge(b *testing.B) {
	b.ReportAllocs()
	g := New(b.N + 2)
	g.AddNodes(b.N + 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.AddEdge(NodeID(i), NodeID(i+1), int64(i))
	}
}

func BenchmarkHasEdge(b *testing.B) {
	g := benchGraph(b, 10000, 50000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.HasEdge(NodeID(i%10000), NodeID((i*7)%10000))
	}
}

func BenchmarkComponents(b *testing.B) {
	g := benchGraph(b, 20000, 60000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		labels, _ := g.Components()
		_ = labels
	}
}

func BenchmarkClusteringFirstK(b *testing.B) {
	g := benchGraph(b, 5000, 50000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ClusteringFirstK(NodeID(i%5000), 50)
	}
}

func BenchmarkMaxFlow(b *testing.B) {
	g := benchGraph(b, 2000, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.MaxFlow(0, NodeID(1000+i%500), 1)
	}
}

func BenchmarkSnowball(b *testing.B) {
	g := benchGraph(b, 10000, 50000)
	r := stats.NewRand(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Snowball(r, []NodeID{NodeID(i % 10000)}, 100, 0.8)
	}
}

func BenchmarkRandomRoute(b *testing.B) {
	g := benchGraph(b, 10000, 50000)
	perm := NewSeededPermuter(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.RandomRoute(perm, NodeID(i%10000), 50)
	}
}
