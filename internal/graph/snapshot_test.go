package graph

import (
	"encoding/json"
	"math/rand"
	"testing"
)

// TestSnapshotRoundTrip: for random graphs, FromSnapshot(Snapshot())
// must reproduce the graph exactly — node count, edge set, and the
// per-node adjacency insertion order the first-K-friends clustering
// metric depends on — including through a JSON encode/decode, which is
// how checkpoints actually travel.
func TestSnapshotRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		r := rand.New(rand.NewSource(seed))
		g := New(0)
		n := 50 + r.Intn(200)
		g.AddNodes(n)
		for i := 0; i < 4*n; i++ {
			u, v := NodeID(r.Intn(n)), NodeID(r.Intn(n))
			if u != v {
				g.AddEdge(u, v, int64(i))
			}
		}

		data, err := json.Marshal(g.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		var snap Snapshot
		if err := json.Unmarshal(data, &snap); err != nil {
			t.Fatal(err)
		}
		h, err := FromSnapshot(snap)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !g.Equal(h) {
			t.Fatalf("seed %d: round trip lost edges or creation order", seed)
		}
		for u := 0; u < n; u++ {
			a, b := g.Neighbors(NodeID(u)), h.Neighbors(NodeID(u))
			if len(a) != len(b) {
				t.Fatalf("seed %d: node %d degree %d vs %d", seed, u, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("seed %d: node %d adjacency order diverged at %d", seed, u, i)
				}
			}
			if g.ClusteringFirstK(NodeID(u), 50) != h.ClusteringFirstK(NodeID(u), 50) {
				t.Fatalf("seed %d: node %d clustering coefficient diverged", seed, u)
			}
		}
	}
}

// TestSnapshotStaysValidWhileGraphGrows: the snapshot's edge slice is
// a copy, not a view.
func TestSnapshotStaysValidWhileGraphGrows(t *testing.T) {
	g := New(0)
	g.AddNodes(4)
	g.AddEdge(0, 1, 1)
	snap := g.Snapshot()
	g.AddEdge(2, 3, 2)
	if len(snap.Edges) != 1 || snap.Nodes != 4 {
		t.Fatalf("snapshot mutated by later growth: %+v", snap)
	}
}

// TestFromSnapshotRejectsCorruption: out-of-range endpoints and
// self-loops must fail loudly, not panic later.
func TestFromSnapshotRejectsCorruption(t *testing.T) {
	cases := []Snapshot{
		{Nodes: 2, Edges: []EdgeTriple{{U: 0, V: 5, Time: 1}}},
		{Nodes: 2, Edges: []EdgeTriple{{U: -1, V: 1, Time: 1}}},
		{Nodes: 2, Edges: []EdgeTriple{{U: 1, V: 1, Time: 1}}},
		{Nodes: 2, Edges: []EdgeTriple{{U: 0, V: 1, Time: 1}, {U: 0, V: 1, Time: 2}}},
		{Nodes: -1},
	}
	for i, snap := range cases {
		if _, err := FromSnapshot(snap); err == nil {
			t.Errorf("case %d: corrupt snapshot accepted", i)
		}
	}
}
