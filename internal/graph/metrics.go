package graph

// CutStats describes the edges incident to a node set S: Internal
// counts edges with both endpoints in S, Cut counts edges with exactly
// one endpoint in S. For a Sybil component, Internal is the paper's
// "Sybil edges" and Cut is its "attack edges".
type CutStats struct {
	Internal int
	Cut      int
}

// CutOf computes CutStats for the set marked true in member. member
// must have length NumNodes.
func (g *Graph) CutOf(member []bool) CutStats {
	if len(member) != g.NumNodes() {
		panic("graph: member mask length mismatch")
	}
	var cs CutStats
	for u := range g.adj {
		if !member[u] {
			continue
		}
		for _, e := range g.adj[u] {
			if member[e.To] {
				if NodeID(u) < e.To {
					cs.Internal++
				}
			} else {
				cs.Cut++
			}
		}
	}
	return cs
}

// Conductance returns cut(S) / min(vol(S), vol(V\S)), the standard
// community-quality measure. Community-based Sybil detectors assume
// the Sybil region has low conductance; the paper shows it does not.
// Returns 1 for degenerate sets (empty, full, or zero volume).
func (g *Graph) Conductance(member []bool) float64 {
	if len(member) != g.NumNodes() {
		panic("graph: member mask length mismatch")
	}
	cut := 0
	volS := 0
	volAll := 0
	for u := range g.adj {
		d := len(g.adj[u])
		volAll += d
		if !member[u] {
			continue
		}
		volS += d
		for _, e := range g.adj[u] {
			if !member[e.To] {
				cut++
			}
		}
	}
	volT := volAll - volS
	minVol := volS
	if volT < minVol {
		minVol = volT
	}
	if minVol == 0 {
		return 1
	}
	return float64(cut) / float64(minVol)
}

// Audience returns the number of distinct non-member nodes adjacent to
// the member set — the paper's Table 2 "audience" column (normal users
// exposed to the Sybil component).
func (g *Graph) Audience(member []bool) int {
	if len(member) != g.NumNodes() {
		panic("graph: member mask length mismatch")
	}
	seen := make(map[NodeID]struct{})
	for u := range g.adj {
		if !member[u] {
			continue
		}
		for _, e := range g.adj[u] {
			if !member[e.To] {
				seen[e.To] = struct{}{}
			}
		}
	}
	return len(seen)
}
