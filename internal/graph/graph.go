// Package graph implements the social-graph substrate of the sybilwild
// reproduction: an undirected graph with per-edge creation timestamps,
// plus the analyses the paper runs over it — degree distributions,
// clustering coefficients, connected components, snowball and random-walk
// sampling, conductance, and max-flow (for the SumUp baseline).
//
// Node identifiers are dense integers assigned by AddNode, so all
// structures are slice-backed and the package comfortably handles the
// paper-scale graphs (10⁵–10⁶ nodes, 10⁶–10⁷ edges) without hashing
// overhead on the hot paths.
package graph

import "fmt"

// NodeID identifies a node. IDs are dense: the n-th added node has ID n-1.
type NodeID int32

// Edge is one directed half of an undirected edge, stored in the
// adjacency list of its source node. Adjacency lists preserve insertion
// order, which the paper's Figure 8 analysis relies on (the order in
// which an account added its friends).
type Edge struct {
	To   NodeID
	Time int64 // creation timestamp, simulation ticks
}

// Graph is an undirected graph with timestamped edges. The zero value
// is an empty graph ready to use. Graph is not safe for concurrent
// mutation; concurrent reads are safe.
type Graph struct {
	adj [][]Edge
	// order records undirected edges in creation order (canonical
	// U < V). Serialization replays it so per-node friend-list order —
	// which the first-50-friends clustering metric and the Figure 8
	// analysis depend on — survives a round trip exactly.
	order []EdgeTriple
}

// New returns an empty graph pre-sized for n nodes.
func New(n int) *Graph {
	return &Graph{adj: make([][]Edge, 0, n)}
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.adj) }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return len(g.order) }

// AddNode creates a new node and returns its ID.
func (g *Graph) AddNode() NodeID {
	g.adj = append(g.adj, nil)
	return NodeID(len(g.adj) - 1)
}

// AddNodes creates n nodes and returns the ID of the first.
func (g *Graph) AddNodes(n int) NodeID {
	first := NodeID(len(g.adj))
	g.adj = append(g.adj, make([][]Edge, n)...)
	return first
}

// AddEdge inserts the undirected edge {u, v} with creation time t.
// It panics on self-loops or out-of-range IDs and reports whether the
// edge was added (false if it already existed).
func (g *Graph) AddEdge(u, v NodeID, t int64) bool {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop on node %d", u))
	}
	g.check(u)
	g.check(v)
	if g.HasEdge(u, v) {
		return false
	}
	g.addEdgeUnchecked(u, v, t)
	return true
}

// HasEdge reports whether {u, v} exists. It scans the smaller of the
// two adjacency lists.
func (g *Graph) HasEdge(u, v NodeID) bool {
	g.check(u)
	g.check(v)
	a, b := u, v
	if len(g.adj[a]) > len(g.adj[b]) {
		a, b = b, a
	}
	for _, e := range g.adj[a] {
		if e.To == b {
			return true
		}
	}
	return false
}

// Degree returns the number of neighbours of u.
func (g *Graph) Degree(u NodeID) int {
	g.check(u)
	return len(g.adj[u])
}

// Neighbors returns u's adjacency list in edge-insertion order. The
// returned slice is the internal storage: callers must not modify it.
func (g *Graph) Neighbors(u NodeID) []Edge {
	g.check(u)
	return g.adj[u]
}

// Degrees returns the degree of every node, indexed by NodeID.
func (g *Graph) Degrees() []int {
	ds := make([]int, len(g.adj))
	for i := range g.adj {
		ds[i] = len(g.adj[i])
	}
	return ds
}

func (g *Graph) check(u NodeID) {
	if u < 0 || int(u) >= len(g.adj) {
		panic(fmt.Sprintf("graph: node %d out of range [0,%d)", u, len(g.adj)))
	}
}

// Induced builds the subgraph induced by keep (nodes for which
// keep[id] is true). It returns the new graph plus the mapping from
// original IDs to induced IDs (-1 when excluded) and the reverse
// mapping. Edge insertion order — and therefore timestamps and creation
// order — is preserved per node.
func (g *Graph) Induced(keep []bool) (sub *Graph, fwd []NodeID, rev []NodeID) {
	if len(keep) != len(g.adj) {
		panic("graph: keep mask length mismatch")
	}
	fwd = make([]NodeID, len(g.adj))
	for i := range fwd {
		fwd[i] = -1
	}
	sub = New(0)
	for i, k := range keep {
		if k {
			id := sub.AddNode()
			fwd[i] = id
			rev = append(rev, NodeID(i))
		}
	}
	for u := range g.adj {
		if fwd[u] < 0 {
			continue
		}
		for _, e := range g.adj[u] {
			if NodeID(u) < e.To && fwd[e.To] >= 0 {
				sub.addEdgeUnchecked(fwd[u], fwd[e.To], e.Time)
			}
		}
	}
	// Re-sort each adjacency list by time so creation order survives the
	// u<v insertion pass above.
	for u := range sub.adj {
		sortEdgesByTime(sub.adj[u])
	}
	return sub, fwd, rev
}

// addEdgeUnchecked inserts without the duplicate scan; used internally
// where the caller guarantees uniqueness.
func (g *Graph) addEdgeUnchecked(u, v NodeID, t int64) {
	g.adj[u] = append(g.adj[u], Edge{To: v, Time: t})
	g.adj[v] = append(g.adj[v], Edge{To: u, Time: t})
	a, b := u, v
	if a > b {
		a, b = b, a
	}
	g.order = append(g.order, EdgeTriple{U: a, V: b, Time: t})
}

func sortEdgesByTime(es []Edge) {
	// Insertion sort: lists are usually nearly sorted already because
	// simulation inserts in time order.
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && es[j].Time < es[j-1].Time; j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
}

// EdgeTriple is one undirected edge in canonical (U < V) form.
type EdgeTriple struct {
	U, V NodeID
	Time int64
}

// Edges returns every undirected edge exactly once (U < V), in
// creation order. The returned slice is a copy.
func (g *Graph) Edges() []EdgeTriple {
	return append([]EdgeTriple(nil), g.order...)
}
