package graph

import "sort"

// UnionFind is a weighted-quick-union disjoint-set structure with path
// compression.
type UnionFind struct {
	parent []int32
	size   []int32
}

// NewUnionFind creates n singleton sets.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{parent: make([]int32, n), size: make([]int32, n)}
	for i := range uf.parent {
		uf.parent[i] = int32(i)
		uf.size[i] = 1
	}
	return uf
}

// Find returns the representative of x's set.
func (uf *UnionFind) Find(x int) int {
	r := int32(x)
	for uf.parent[r] != r {
		uf.parent[r] = uf.parent[uf.parent[r]] // path halving
		r = uf.parent[r]
	}
	return int(r)
}

// Union merges the sets containing x and y and reports whether a merge
// happened (false if they were already together).
func (uf *UnionFind) Union(x, y int) bool {
	rx, ry := uf.Find(x), uf.Find(y)
	if rx == ry {
		return false
	}
	if uf.size[rx] < uf.size[ry] {
		rx, ry = ry, rx
	}
	uf.parent[ry] = int32(rx)
	uf.size[rx] += uf.size[ry]
	return true
}

// SetSize returns the size of x's set.
func (uf *UnionFind) SetSize(x int) int { return int(uf.size[uf.Find(x)]) }

// Components labels every node with a component index in [0, k) and
// returns the label slice plus per-component sizes, computed with
// union-find. Component indices are assigned in increasing order of the
// smallest node ID they contain.
func (g *Graph) Components() (labels []int32, sizes []int) {
	uf := NewUnionFind(len(g.adj))
	for u := range g.adj {
		for _, e := range g.adj[u] {
			if NodeID(u) < e.To {
				uf.Union(u, int(e.To))
			}
		}
	}
	labels = make([]int32, len(g.adj))
	next := int32(0)
	rootLabel := make(map[int]int32, 64)
	for u := range g.adj {
		r := uf.Find(u)
		l, ok := rootLabel[r]
		if !ok {
			l = next
			next++
			rootLabel[r] = l
			sizes = append(sizes, 0)
		}
		labels[u] = l
		sizes[l]++
	}
	return labels, sizes
}

// ComponentsBFS computes the same labelling as Components using BFS.
// It exists as an independent implementation for property testing.
func (g *Graph) ComponentsBFS() (labels []int32, sizes []int) {
	labels = make([]int32, len(g.adj))
	for i := range labels {
		labels[i] = -1
	}
	next := int32(0)
	queue := make([]NodeID, 0, 1024)
	for start := range g.adj {
		if labels[start] >= 0 {
			continue
		}
		labels[start] = next
		size := 1
		queue = append(queue[:0], NodeID(start))
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, e := range g.adj[u] {
				if labels[e.To] < 0 {
					labels[e.To] = next
					size++
					queue = append(queue, e.To)
				}
			}
		}
		sizes = append(sizes, size)
		next++
	}
	return labels, sizes
}

// ComponentMembers groups node IDs by component label, sorted by
// descending component size (ties broken by label).
func ComponentMembers(labels []int32, sizes []int) [][]NodeID {
	order := make([]int, len(sizes))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if sizes[order[a]] != sizes[order[b]] {
			return sizes[order[a]] > sizes[order[b]]
		}
		return order[a] < order[b]
	})
	rank := make([]int, len(sizes))
	for r, l := range order {
		rank[l] = r
	}
	groups := make([][]NodeID, len(sizes))
	for i := range groups {
		groups[i] = make([]NodeID, 0, sizes[order[i]])
	}
	for id, l := range labels {
		groups[rank[l]] = append(groups[rank[l]], NodeID(id))
	}
	return groups
}
