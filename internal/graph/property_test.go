package graph

import (
	"testing"

	"sybilwild/internal/stats"
)

// TestMaxFlowSymmetryProperty: on an undirected graph, flow(s,t) must
// equal flow(t,s).
func TestMaxFlowSymmetryProperty(t *testing.T) {
	r := stats.NewRand(101)
	for trial := 0; trial < 20; trial++ {
		n := 4 + r.Intn(25)
		g := randomGraph(r, n, r.Intn(4*n)+n)
		s := NodeID(r.Intn(n))
		d := NodeID(r.Intn(n))
		if s == d {
			continue
		}
		if f1, f2 := g.MaxFlow(s, d, 1), g.MaxFlow(d, s, 1); f1 != f2 {
			t.Fatalf("asymmetric flow: %d vs %d", f1, f2)
		}
	}
}

// TestMaxFlowCapacityScalingProperty: doubling uniform capacities must
// exactly double the max flow.
func TestMaxFlowCapacityScalingProperty(t *testing.T) {
	r := stats.NewRand(103)
	for trial := 0; trial < 20; trial++ {
		n := 4 + r.Intn(20)
		g := randomGraph(r, n, 3*n)
		s, d := NodeID(0), NodeID(n-1)
		f1 := g.MaxFlow(s, d, 1)
		f2 := g.MaxFlow(s, d, 2)
		if f2 != 2*f1 {
			t.Fatalf("capacity scaling broken: cap1=%d cap2=%d", f1, f2)
		}
	}
}

// TestMaxFlowMatchesCutOnBridge: a known bottleneck bounds the flow
// exactly (max-flow = min-cut on a constructed instance).
func TestMaxFlowMatchesCutOnBridge(t *testing.T) {
	r := stats.NewRand(107)
	// Two dense blobs joined by exactly k bridges.
	for _, k := range []int{1, 2, 3, 5} {
		g := New(0)
		g.AddNodes(30)
		for i := 0; i < 15; i++ {
			for j := i + 1; j < 15; j++ {
				if r.Bernoulli(0.5) {
					g.AddEdge(NodeID(i), NodeID(j), 0)
				}
			}
		}
		for i := 15; i < 30; i++ {
			for j := i + 1; j < 30; j++ {
				if r.Bernoulli(0.5) {
					g.AddEdge(NodeID(i), NodeID(j), 0)
				}
			}
		}
		for b := 0; b < k; b++ {
			g.AddEdge(NodeID(b), NodeID(15+b), 0)
		}
		// Guarantee s and t are connected to their blobs.
		g.AddEdge(0, 1, 0)
		g.AddEdge(28, 29, 0)
		f := g.MaxFlow(1, 29, 1)
		if f > k {
			t.Fatalf("flow %d exceeds bridge cut %d", f, k)
		}
	}
}

// TestInducedEdgeCountProperty: the induced subgraph contains exactly
// the edges with both endpoints kept.
func TestInducedEdgeCountProperty(t *testing.T) {
	r := stats.NewRand(109)
	for trial := 0; trial < 25; trial++ {
		n := 3 + r.Intn(40)
		g := randomGraph(r, n, r.Intn(3*n))
		keep := make([]bool, n)
		for i := range keep {
			keep[i] = r.Bernoulli(0.5)
		}
		want := 0
		for _, e := range g.Edges() {
			if keep[e.U] && keep[e.V] {
				want++
			}
		}
		sub, _, _ := g.Induced(keep)
		if sub.NumEdges() != want {
			t.Fatalf("induced edges = %d, want %d", sub.NumEdges(), want)
		}
	}
}

// TestConductanceComplementProperty: conductance(S) == conductance(V\S)
// by symmetry of cut and min-volume.
func TestConductanceComplementProperty(t *testing.T) {
	r := stats.NewRand(113)
	for trial := 0; trial < 25; trial++ {
		n := 4 + r.Intn(30)
		g := randomGraph(r, n, 3*n)
		member := make([]bool, n)
		for i := range member {
			member[i] = r.Bernoulli(0.4)
		}
		comp := make([]bool, n)
		for i := range comp {
			comp[i] = !member[i]
		}
		if a, b := g.Conductance(member), g.Conductance(comp); a != b {
			t.Fatalf("conductance asymmetric: %v vs %v", a, b)
		}
	}
}

// TestEdgesMatchAdjacency: Edges() and adjacency lists describe the
// same edge set, and NumEdges agrees.
func TestEdgesMatchAdjacency(t *testing.T) {
	r := stats.NewRand(127)
	g := randomGraph(r, 50, 120)
	es := g.Edges()
	if len(es) != g.NumEdges() {
		t.Fatalf("Edges len %d != NumEdges %d", len(es), g.NumEdges())
	}
	for _, e := range es {
		if !g.HasEdge(e.U, e.V) {
			t.Fatalf("listed edge %v missing from adjacency", e)
		}
	}
	// Degree sum = 2m.
	sum := 0
	for _, d := range g.Degrees() {
		sum += d
	}
	if sum != 2*g.NumEdges() {
		t.Fatalf("degree sum %d != 2m %d", sum, 2*g.NumEdges())
	}
}

// TestEdgesCreationOrder: Edges() preserves insertion order, which the
// trace round trip depends on.
func TestEdgesCreationOrder(t *testing.T) {
	g := New(5)
	g.AddNodes(5)
	g.AddEdge(3, 1, 10)
	g.AddEdge(0, 4, 20)
	g.AddEdge(2, 0, 30)
	es := g.Edges()
	if es[0].Time != 10 || es[1].Time != 20 || es[2].Time != 30 {
		t.Fatalf("creation order lost: %+v", es)
	}
	if es[0].U != 1 || es[0].V != 3 {
		t.Fatalf("edges not canonical: %+v", es[0])
	}
}

// TestAudienceBounds: audience is bounded by the number of non-members
// and by the attack-edge count.
func TestAudienceBoundsProperty(t *testing.T) {
	r := stats.NewRand(131)
	for trial := 0; trial < 25; trial++ {
		n := 4 + r.Intn(40)
		g := randomGraph(r, n, 3*n)
		member := make([]bool, n)
		nonMembers := 0
		for i := range member {
			member[i] = r.Bernoulli(0.3)
			if !member[i] {
				nonMembers++
			}
		}
		aud := g.Audience(member)
		cs := g.CutOf(member)
		if aud > nonMembers {
			t.Fatalf("audience %d exceeds non-members %d", aud, nonMembers)
		}
		if aud > cs.Cut {
			t.Fatalf("audience %d exceeds attack edges %d", aud, cs.Cut)
		}
		if cs.Cut > 0 && aud == 0 {
			t.Fatal("attack edges without audience")
		}
	}
}
