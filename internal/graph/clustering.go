package graph

// LocalClustering returns the clustering coefficient of u over its full
// neighbourhood: the fraction of pairs of u's neighbours that are
// themselves connected. Nodes with degree < 2 have coefficient 0.
func (g *Graph) LocalClustering(u NodeID) float64 {
	return g.clusteringOver(g.Neighbors(u))
}

// ClusteringFirstK returns the clustering coefficient computed over
// only the first k friends of u in edge-creation order, the metric the
// paper uses (Figure 4, k = 50) so the detector can act before an
// account finishes building its friend list.
func (g *Graph) ClusteringFirstK(u NodeID, k int) float64 {
	nbrs := g.Neighbors(u)
	if len(nbrs) > k {
		nbrs = nbrs[:k]
	}
	return g.clusteringOver(nbrs)
}

func (g *Graph) clusteringOver(nbrs []Edge) float64 {
	n := len(nbrs)
	if n < 2 {
		return 0
	}
	// Membership set over the (at most k) selected neighbours, then a
	// single scan of each neighbour's adjacency list. O(sum deg(nbr)).
	member := make(map[NodeID]struct{}, n)
	for _, e := range nbrs {
		member[e.To] = struct{}{}
	}
	links := 0
	for _, e := range nbrs {
		for _, f := range g.adj[e.To] {
			if _, ok := member[f.To]; ok {
				links++ // counted twice, once per endpoint
			}
		}
	}
	pairs := n * (n - 1) / 2
	return float64(links/2) / float64(pairs)
}

// AverageClustering returns the mean LocalClustering over all nodes
// with degree ≥ 2, or 0 if no such node exists.
func (g *Graph) AverageClustering() float64 {
	var sum float64
	n := 0
	for u := range g.adj {
		if len(g.adj[u]) >= 2 {
			sum += g.LocalClustering(NodeID(u))
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
