package graph

import (
	"testing"

	"sybilwild/internal/stats"
)

func path(n int) *Graph {
	g := New(n)
	g.AddNodes(n)
	for i := 0; i < n-1; i++ {
		g.AddEdge(NodeID(i), NodeID(i+1), int64(i))
	}
	return g
}

func complete(n int) *Graph {
	g := New(n)
	g.AddNodes(n)
	t := int64(0)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(NodeID(i), NodeID(j), t)
			t++
		}
	}
	return g
}

// randomGraph returns an Erdős–Rényi style graph with n nodes and
// roughly m edges.
func randomGraph(r *stats.Rand, n, m int) *Graph {
	g := New(n)
	g.AddNodes(n)
	for i := 0; i < m; i++ {
		u := NodeID(r.Intn(n))
		v := NodeID(r.Intn(n))
		if u != v {
			g.AddEdge(u, v, int64(i))
		}
	}
	return g
}

func TestAddEdgeBasics(t *testing.T) {
	g := New(3)
	g.AddNodes(3)
	if !g.AddEdge(0, 1, 5) {
		t.Fatal("first add returned false")
	}
	if g.AddEdge(1, 0, 6) {
		t.Fatal("duplicate add returned true")
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge not visible from both sides")
	}
	if g.HasEdge(0, 2) {
		t.Fatal("phantom edge")
	}
	if g.Degree(0) != 1 || g.Degree(2) != 0 {
		t.Fatal("degree wrong")
	}
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on self-loop")
		}
	}()
	g := New(1)
	g.AddNodes(1)
	g.AddEdge(0, 0, 0)
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on out-of-range node")
		}
	}()
	g := New(1)
	g.AddNodes(1)
	g.Degree(5)
}

func TestNeighborsPreserveInsertionOrder(t *testing.T) {
	g := New(4)
	g.AddNodes(4)
	g.AddEdge(0, 2, 10)
	g.AddEdge(0, 1, 20)
	g.AddEdge(0, 3, 30)
	nbrs := g.Neighbors(0)
	want := []NodeID{2, 1, 3}
	for i, e := range nbrs {
		if e.To != want[i] {
			t.Fatalf("order = %v", nbrs)
		}
	}
	if nbrs[0].Time != 10 || nbrs[2].Time != 30 {
		t.Fatalf("timestamps = %v", nbrs)
	}
}

func TestEdgesEnumeratesOnce(t *testing.T) {
	g := complete(4)
	es := g.Edges()
	if len(es) != 6 {
		t.Fatalf("edges = %d, want 6", len(es))
	}
	for _, e := range es {
		if e.U >= e.V {
			t.Fatalf("edge not canonical: %+v", e)
		}
	}
}

func TestComponentsPathAndIslands(t *testing.T) {
	g := path(4)
	g.AddNodes(2) // two isolated nodes
	labels, sizes := g.Components()
	if len(sizes) != 3 {
		t.Fatalf("components = %d, want 3", len(sizes))
	}
	if sizes[labels[0]] != 4 {
		t.Fatalf("path component size = %d", sizes[labels[0]])
	}
	if labels[4] == labels[5] {
		t.Fatal("isolated nodes share a component")
	}
}

func TestComponentsMatchBFSProperty(t *testing.T) {
	r := stats.NewRand(31)
	for trial := 0; trial < 30; trial++ {
		n := 2 + r.Intn(60)
		g := randomGraph(r, n, r.Intn(3*n))
		l1, s1 := g.Components()
		l2, s2 := g.ComponentsBFS()
		if len(s1) != len(s2) {
			t.Fatalf("component counts differ: %d vs %d", len(s1), len(s2))
		}
		// The labelings must induce the same partition.
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				same1 := l1[u] == l1[v]
				same2 := l2[u] == l2[v]
				if same1 != same2 {
					t.Fatalf("partition mismatch at (%d,%d)", u, v)
				}
			}
		}
	}
}

func TestComponentSizesPartitionNodes(t *testing.T) {
	r := stats.NewRand(37)
	for trial := 0; trial < 30; trial++ {
		n := 1 + r.Intn(80)
		g := randomGraph(r, n, r.Intn(2*n))
		_, sizes := g.Components()
		total := 0
		for _, s := range sizes {
			if s <= 0 {
				t.Fatalf("non-positive component size %d", s)
			}
			total += s
		}
		if total != n {
			t.Fatalf("sizes sum to %d, want %d", total, n)
		}
	}
}

func TestComponentMembersSortedBySize(t *testing.T) {
	g := path(5)
	g.AddNodes(1)
	g.AddEdge(5, 0, 99) // join the island to the path: single comp of 6
	g.AddNodes(3)
	g.AddEdge(6, 7, 1) // pair
	labels, sizes := g.Components()
	groups := ComponentMembers(labels, sizes)
	if len(groups) != 3 {
		t.Fatalf("groups = %d", len(groups))
	}
	if len(groups[0]) != 6 || len(groups[1]) != 2 || len(groups[2]) != 1 {
		t.Fatalf("group sizes = %d %d %d", len(groups[0]), len(groups[1]), len(groups[2]))
	}
}

func TestUnionFind(t *testing.T) {
	uf := NewUnionFind(5)
	if !uf.Union(0, 1) || !uf.Union(1, 2) {
		t.Fatal("union returned false")
	}
	if uf.Union(0, 2) {
		t.Fatal("redundant union returned true")
	}
	if uf.Find(0) != uf.Find(2) {
		t.Fatal("0 and 2 not joined")
	}
	if uf.SetSize(1) != 3 {
		t.Fatalf("SetSize = %d", uf.SetSize(1))
	}
	if uf.Find(3) == uf.Find(0) {
		t.Fatal("3 spuriously joined")
	}
}

func TestClusteringComplete(t *testing.T) {
	g := complete(5)
	for u := 0; u < 5; u++ {
		if cc := g.LocalClustering(NodeID(u)); cc != 1 {
			t.Fatalf("cc of complete graph node = %v", cc)
		}
	}
}

func TestClusteringStar(t *testing.T) {
	// Star: hub 0 with 4 spokes, no spoke-spoke edges.
	g := New(5)
	g.AddNodes(5)
	for i := 1; i < 5; i++ {
		g.AddEdge(0, NodeID(i), int64(i))
	}
	if cc := g.LocalClustering(0); cc != 0 {
		t.Fatalf("hub cc = %v", cc)
	}
	if cc := g.LocalClustering(1); cc != 0 {
		t.Fatalf("degree-1 cc = %v", cc)
	}
}

func TestClusteringTriangle(t *testing.T) {
	// Node 0 with neighbours 1,2,3; only 1-2 connected: cc = 1/3.
	g := New(4)
	g.AddNodes(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 2)
	g.AddEdge(0, 3, 3)
	g.AddEdge(1, 2, 4)
	if cc := g.LocalClustering(0); cc != 1.0/3.0 {
		t.Fatalf("cc = %v, want 1/3", cc)
	}
}

func TestClusteringFirstK(t *testing.T) {
	// First two friends of 0 (nodes 1,2) are connected; third (3) is not.
	g := New(4)
	g.AddNodes(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 2)
	g.AddEdge(0, 3, 3)
	g.AddEdge(1, 2, 4)
	if cc := g.ClusteringFirstK(0, 2); cc != 1 {
		t.Fatalf("first-2 cc = %v, want 1", cc)
	}
	if cc := g.ClusteringFirstK(0, 3); cc != 1.0/3.0 {
		t.Fatalf("first-3 cc = %v, want 1/3", cc)
	}
	// k larger than degree falls back to full neighbourhood.
	if cc := g.ClusteringFirstK(0, 50); cc != g.LocalClustering(0) {
		t.Fatal("k>deg mismatch with full clustering")
	}
}

func TestClusteringRangeProperty(t *testing.T) {
	r := stats.NewRand(41)
	for trial := 0; trial < 20; trial++ {
		n := 3 + r.Intn(40)
		g := randomGraph(r, n, r.Intn(4*n))
		for u := 0; u < n; u++ {
			cc := g.LocalClustering(NodeID(u))
			if cc < 0 || cc > 1 {
				t.Fatalf("cc out of range: %v", cc)
			}
			ck := g.ClusteringFirstK(NodeID(u), 5)
			if ck < 0 || ck > 1 {
				t.Fatalf("first-k cc out of range: %v", ck)
			}
		}
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := New(5)
	g.AddNodes(5)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 2)
	g.AddEdge(2, 3, 3)
	g.AddEdge(3, 4, 4)
	g.AddEdge(0, 4, 5)
	keep := []bool{true, true, true, false, false}
	sub, fwd, rev := g.Induced(keep)
	if sub.NumNodes() != 3 {
		t.Fatalf("induced nodes = %d", sub.NumNodes())
	}
	if sub.NumEdges() != 2 {
		t.Fatalf("induced edges = %d", sub.NumEdges())
	}
	if fwd[3] != -1 || fwd[0] != 0 {
		t.Fatalf("fwd = %v", fwd)
	}
	if rev[fwd[2]] != 2 {
		t.Fatalf("rev mapping broken")
	}
	if !sub.HasEdge(fwd[0], fwd[1]) || !sub.HasEdge(fwd[1], fwd[2]) {
		t.Fatal("induced edges missing")
	}
}

func TestInducedPreservesTimeOrder(t *testing.T) {
	g := New(4)
	g.AddNodes(4)
	// Node 1 gains friends in order 2 (t=1), 0 (t=5), 3 (t=9).
	g.AddEdge(1, 2, 1)
	g.AddEdge(1, 0, 5)
	g.AddEdge(1, 3, 9)
	keep := []bool{true, true, true, true}
	sub, fwd, _ := g.Induced(keep)
	nbrs := sub.Neighbors(fwd[1])
	if len(nbrs) != 3 {
		t.Fatalf("deg = %d", len(nbrs))
	}
	for i := 1; i < len(nbrs); i++ {
		if nbrs[i].Time < nbrs[i-1].Time {
			t.Fatalf("time order broken: %v", nbrs)
		}
	}
}

func TestCutOf(t *testing.T) {
	// Two triangles joined by one bridge.
	g := New(6)
	g.AddNodes(6)
	g.AddEdge(0, 1, 0)
	g.AddEdge(1, 2, 0)
	g.AddEdge(2, 0, 0)
	g.AddEdge(3, 4, 0)
	g.AddEdge(4, 5, 0)
	g.AddEdge(5, 3, 0)
	g.AddEdge(0, 3, 0) // bridge
	member := []bool{true, true, true, false, false, false}
	cs := g.CutOf(member)
	if cs.Internal != 3 || cs.Cut != 1 {
		t.Fatalf("cut stats = %+v", cs)
	}
}

func TestConductance(t *testing.T) {
	g := New(6)
	g.AddNodes(6)
	g.AddEdge(0, 1, 0)
	g.AddEdge(1, 2, 0)
	g.AddEdge(2, 0, 0)
	g.AddEdge(3, 4, 0)
	g.AddEdge(4, 5, 0)
	g.AddEdge(5, 3, 0)
	g.AddEdge(0, 3, 0)
	member := []bool{true, true, true, false, false, false}
	// vol(S)=7, cut=1, conductance = 1/7.
	got := g.Conductance(member)
	if got != 1.0/7.0 {
		t.Fatalf("conductance = %v, want 1/7", got)
	}
	// Degenerate sets.
	if g.Conductance(make([]bool, 6)) != 1 {
		t.Fatal("empty set conductance != 1")
	}
	all := []bool{true, true, true, true, true, true}
	if g.Conductance(all) != 1 {
		t.Fatal("full set conductance != 1")
	}
}

func TestAudience(t *testing.T) {
	// Sybils {0,1} both attack normal node 2; 1 also attacks 3.
	g := New(4)
	g.AddNodes(4)
	g.AddEdge(0, 1, 0)
	g.AddEdge(0, 2, 0)
	g.AddEdge(1, 2, 0)
	g.AddEdge(1, 3, 0)
	member := []bool{true, true, false, false}
	if a := g.Audience(member); a != 2 {
		t.Fatalf("audience = %d, want 2", a)
	}
}

func TestMaxFlowPath(t *testing.T) {
	g := path(5)
	if f := g.MaxFlow(0, 4, 1); f != 1 {
		t.Fatalf("path flow = %d, want 1", f)
	}
	if f := g.MaxFlow(0, 4, 3); f != 3 {
		t.Fatalf("path flow cap3 = %d, want 3", f)
	}
}

func TestMaxFlowComplete(t *testing.T) {
	g := complete(4)
	// Between any two nodes of K4 with unit capacities: 3 edge-disjoint
	// paths (direct + two 2-hop).
	if f := g.MaxFlow(0, 3, 1); f != 3 {
		t.Fatalf("K4 flow = %d, want 3", f)
	}
}

func TestMaxFlowDisconnected(t *testing.T) {
	g := New(4)
	g.AddNodes(4)
	g.AddEdge(0, 1, 0)
	g.AddEdge(2, 3, 0)
	if f := g.MaxFlow(0, 3, 5); f != 0 {
		t.Fatalf("disconnected flow = %d", f)
	}
	if f := g.MaxFlow(0, 0, 1); f != 0 {
		t.Fatalf("s==t flow = %d", f)
	}
}

func TestMaxFlowBoundedByMinDegreeProperty(t *testing.T) {
	r := stats.NewRand(43)
	for trial := 0; trial < 25; trial++ {
		n := 2 + r.Intn(30)
		g := randomGraph(r, n, r.Intn(4*n))
		s := NodeID(r.Intn(n))
		tn := NodeID(r.Intn(n))
		if s == tn {
			continue
		}
		f := g.MaxFlow(s, tn, 1)
		bound := g.Degree(s)
		if g.Degree(tn) < bound {
			bound = g.Degree(tn)
		}
		if f > bound {
			t.Fatalf("flow %d exceeds degree bound %d", f, bound)
		}
		if f < 0 {
			t.Fatalf("negative flow %d", f)
		}
	}
}

func TestRandomWalkStaysOnEdges(t *testing.T) {
	r := stats.NewRand(47)
	g := randomGraph(r, 30, 60)
	walk := g.RandomWalk(r, 0, 50)
	if walk[0] != 0 {
		t.Fatal("walk does not start at start")
	}
	for i := 1; i < len(walk); i++ {
		if !g.HasEdge(walk[i-1], walk[i]) {
			t.Fatalf("walk used non-edge %d-%d", walk[i-1], walk[i])
		}
	}
}

func TestRandomWalkDeadEnd(t *testing.T) {
	g := New(1)
	g.AddNodes(1)
	r := stats.NewRand(1)
	walk := g.RandomWalk(r, 0, 10)
	if len(walk) != 1 {
		t.Fatalf("walk from isolated node = %v", walk)
	}
}

func TestRandomRouteConvergence(t *testing.T) {
	// Random routes entering a node along the same edge must leave along
	// the same edge — the property SybilGuard depends on.
	r := stats.NewRand(53)
	g := randomGraph(r, 40, 120)
	perm := NewSeededPermuter(99)
	// Two routes that pass through the same directed edge must coincide
	// afterwards. Construct them by starting routes at all nodes and
	// recording, for each directed edge traversal, the following hop.
	nextHop := map[[2]NodeID]NodeID{}
	for s := 0; s < g.NumNodes(); s++ {
		route := g.RandomRoute(perm, NodeID(s), 12)
		for i := 1; i < len(route)-1; i++ {
			key := [2]NodeID{route[i-1], route[i]}
			if prev, ok := nextHop[key]; ok {
				if prev != route[i+1] {
					t.Fatalf("route divergence after edge %v: %d vs %d", key, prev, route[i+1])
				}
			} else {
				nextHop[key] = route[i+1]
			}
		}
	}
}

func TestRandomRouteOnEdges(t *testing.T) {
	r := stats.NewRand(59)
	g := randomGraph(r, 25, 70)
	perm := NewSeededPermuter(7)
	route := g.RandomRoute(perm, 3, 30)
	for i := 1; i < len(route); i++ {
		if !g.HasEdge(route[i-1], route[i]) {
			t.Fatalf("route used non-edge")
		}
	}
}

func TestSeededPermuterBijection(t *testing.T) {
	p := NewSeededPermuter(123)
	for _, deg := range []int{1, 2, 5, 17} {
		seen := map[int]bool{}
		for in := 0; in < deg; in++ {
			out := p.Permute(NodeID(4), in, deg)
			if out < 0 || out >= deg {
				t.Fatalf("permute out of range: %d (deg %d)", out, deg)
			}
			if seen[out] {
				t.Fatalf("permute not bijective at deg %d", deg)
			}
			seen[out] = true
		}
	}
}

func TestSnowballFindsNodes(t *testing.T) {
	r := stats.NewRand(61)
	g := randomGraph(r, 100, 400)
	seeds := []NodeID{0}
	got := g.Snowball(r, seeds, 30, 0.9)
	if len(got) == 0 {
		t.Fatal("snowball found nothing")
	}
	seen := map[NodeID]bool{0: true}
	for _, v := range got {
		if seen[v] {
			t.Fatalf("duplicate in snowball sample: %d", v)
		}
		seen[v] = true
	}
}

func TestSnowballBiasPrefersPopular(t *testing.T) {
	// A hub-heavy graph: snowball with bias 1 should reach the hub's
	// neighbourhood fast; verify mean degree of sample with bias=1 is at
	// least that with bias=0 (popularity bias).
	r := stats.NewRand(67)
	g := New(0)
	g.AddNodes(200)
	// Hub 0 connected to 0..99; chain on 100..199.
	for i := 1; i < 100; i++ {
		g.AddEdge(0, NodeID(i), int64(i))
	}
	for i := 100; i < 199; i++ {
		g.AddEdge(NodeID(i), NodeID(i+1), int64(i))
	}
	g.AddEdge(1, 100, 500) // connect the regions
	meanDeg := func(bias float64) float64 {
		r2 := stats.NewRand(71)
		sample := g.Snowball(r2, []NodeID{150}, 40, bias)
		var sum float64
		for _, v := range sample {
			sum += float64(g.Degree(v))
		}
		if len(sample) == 0 {
			return 0
		}
		return sum / float64(len(sample))
	}
	if meanDeg(1) < meanDeg(0) {
		t.Fatalf("bias=1 sample less popular than bias=0: %v < %v", meanDeg(1), meanDeg(0))
	}
	_ = r
}

func TestTopKByDegree(t *testing.T) {
	g := New(4)
	g.AddNodes(4)
	g.AddEdge(0, 1, 0)
	g.AddEdge(0, 2, 0)
	g.AddEdge(0, 3, 0)
	g.AddEdge(1, 2, 0)
	top := g.TopKByDegree(2)
	if top[0] != 0 {
		t.Fatalf("top[0] = %d", top[0])
	}
	if len(top) != 2 {
		t.Fatalf("len = %d", len(top))
	}
	if got := g.TopKByDegree(100); len(got) != 4 {
		t.Fatalf("k>n len = %d", len(got))
	}
}

func TestDegrees(t *testing.T) {
	g := path(3)
	ds := g.Degrees()
	if ds[0] != 1 || ds[1] != 2 || ds[2] != 1 {
		t.Fatalf("degrees = %v", ds)
	}
}
