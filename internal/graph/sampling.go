package graph

import (
	"sort"

	"sybilwild/internal/stats"
)

// RandomWalk performs a simple random walk of the given length starting
// at start and returns the visited nodes (including start, so the
// result has length+1 entries). The walk stops early at a node with no
// neighbours.
func (g *Graph) RandomWalk(r *stats.Rand, start NodeID, length int) []NodeID {
	path := make([]NodeID, 0, length+1)
	path = append(path, start)
	cur := start
	for i := 0; i < length; i++ {
		nbrs := g.Neighbors(cur)
		if len(nbrs) == 0 {
			break
		}
		cur = nbrs[r.Intn(len(nbrs))].To
		path = append(path, cur)
	}
	return path
}

// RandomRoute performs a "random route" walk as used by SybilGuard and
// SybilLimit: at every node the outgoing edge is determined by a fixed
// per-node pseudorandom permutation of its incident edges, keyed by the
// incoming edge. Routes are therefore convergent (two routes entering a
// node on the same edge leave on the same edge) and back-traceable.
//
// perm provides the per-node permutation seed; it must stay fixed
// across calls for route convergence to hold.
func (g *Graph) RandomRoute(perm RoutePermuter, start NodeID, length int) []NodeID {
	path := make([]NodeID, 0, length+1)
	path = append(path, start)
	cur := start
	// Entering edge index; -1 means the walk starts here, and by
	// convention we leave via the image of index 0.
	in := -1
	for i := 0; i < length; i++ {
		deg := len(g.adj[cur])
		if deg == 0 {
			break
		}
		var outIdx int
		if in < 0 {
			outIdx = perm.Permute(cur, 0, deg)
		} else {
			outIdx = perm.Permute(cur, in, deg)
		}
		e := g.adj[cur][outIdx]
		next := e.To
		// Find the index of the reverse edge (cur as seen from next) so
		// the next hop knows its entering edge.
		in = indexOfNeighbor(g.adj[next], cur)
		cur = next
		path = append(path, cur)
	}
	return path
}

func indexOfNeighbor(es []Edge, v NodeID) int {
	for i, e := range es {
		if e.To == v {
			return i
		}
	}
	return -1
}

// RoutePermuter supplies the fixed pseudorandom edge permutations used
// by RandomRoute.
type RoutePermuter interface {
	// Permute maps an incoming edge index to an outgoing edge index for
	// node u with degree deg. The mapping must be a bijection on
	// [0, deg) for fixed u.
	Permute(u NodeID, in, deg int) int
}

// SeededPermuter implements RoutePermuter with a per-node Feistel-style
// mix keyed by a global seed. For a fixed node the mapping is a
// bijection over [0, deg) produced by sort-by-hash.
type SeededPermuter struct {
	Seed uint64
	// cache of computed permutations keyed by node; deg can change as
	// the graph grows, so entries are invalidated when deg differs.
	cache map[NodeID][]int
}

// NewSeededPermuter returns a permuter with the given seed.
func NewSeededPermuter(seed uint64) *SeededPermuter {
	return &SeededPermuter{Seed: seed, cache: make(map[NodeID][]int)}
}

// Permute implements RoutePermuter.
func (p *SeededPermuter) Permute(u NodeID, in, deg int) int {
	if deg <= 0 {
		return 0
	}
	if in < 0 || in >= deg {
		in = 0
	}
	perm, ok := p.cache[u]
	if !ok || len(perm) != deg {
		perm = makePerm(p.Seed, u, deg)
		p.cache[u] = perm
	}
	return perm[in]
}

func makePerm(seed uint64, u NodeID, deg int) []int {
	type kv struct {
		h uint64
		i int
	}
	ks := make([]kv, deg)
	for i := 0; i < deg; i++ {
		ks[i] = kv{h: mix(seed, uint64(u), uint64(i)), i: i}
	}
	sort.Slice(ks, func(a, b int) bool { return ks[a].h < ks[b].h })
	perm := make([]int, deg)
	for pos, k := range ks {
		perm[k.i] = pos
	}
	return perm
}

func mix(a, b, c uint64) uint64 {
	x := a*0x9e3779b97f4a7c15 ^ b*0xbf58476d1ce4e5b9 ^ c*0x94d049bb133111eb
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Snowball performs popularity-biased snowball sampling, the targeting
// mechanism the paper attributes to commercial Sybil tools (§3.4): from
// a frontier of discovered nodes, repeatedly expand the highest-degree
// unexplored nodes, accumulating their neighbours. bias ∈ [0, 1]
// controls how strongly expansion prefers popular nodes: 0 expands
// uniformly at random, 1 always expands the current highest-degree
// frontier node.
//
// It returns up to want distinct sampled nodes (excluding the seeds).
func (g *Graph) Snowball(r *stats.Rand, seeds []NodeID, want int, bias float64) []NodeID {
	seen := make(map[NodeID]struct{}, want+len(seeds))
	for _, s := range seeds {
		seen[s] = struct{}{}
	}
	frontier := append([]NodeID(nil), seeds...)
	explored := make(map[NodeID]struct{}, want)
	var out []NodeID
	for len(out) < want && len(frontier) > 0 {
		var pickIdx int
		if r.Bernoulli(bias) {
			// Greedy: highest-degree frontier node.
			best := 0
			for i := 1; i < len(frontier); i++ {
				if g.Degree(frontier[i]) > g.Degree(frontier[best]) {
					best = i
				}
			}
			pickIdx = best
		} else {
			pickIdx = r.Intn(len(frontier))
		}
		node := frontier[pickIdx]
		frontier[pickIdx] = frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		if _, done := explored[node]; done {
			continue
		}
		explored[node] = struct{}{}
		for _, e := range g.Neighbors(node) {
			if _, ok := seen[e.To]; ok {
				continue
			}
			seen[e.To] = struct{}{}
			out = append(out, e.To)
			frontier = append(frontier, e.To)
			if len(out) >= want {
				break
			}
		}
	}
	return out
}

// TopKByDegree returns the k highest-degree nodes (ties broken by ID).
func (g *Graph) TopKByDegree(k int) []NodeID {
	ids := make([]NodeID, g.NumNodes())
	for i := range ids {
		ids[i] = NodeID(i)
	}
	sort.Slice(ids, func(a, b int) bool {
		da, db := g.Degree(ids[a]), g.Degree(ids[b])
		if da != db {
			return da > db
		}
		return ids[a] < ids[b]
	})
	if k > len(ids) {
		k = len(ids)
	}
	return ids[:k]
}
