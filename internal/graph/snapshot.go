package graph

import "fmt"

// Snapshot is a complete serializable image of a Graph: the node count
// plus every undirected edge in creation order. Because adjacency
// lists are insertion-ordered and insertion order is exactly edge
// creation order, replaying the triples reconstructs per-node
// friend-list order — which the first-50-friends clustering metric and
// the Figure 8 analysis depend on — identically.
type Snapshot struct {
	Nodes int          `json:"nodes"`
	Edges []EdgeTriple `json:"edges"`
}

// Snapshot captures the graph's current state. The edge slice is a
// copy; the snapshot stays valid as the graph keeps growing.
func (g *Graph) Snapshot() Snapshot {
	return Snapshot{Nodes: len(g.adj), Edges: g.Edges()}
}

// FromSnapshot rebuilds a graph from a snapshot. It validates edge
// endpoints (a corrupt checkpoint must fail loudly, not panic deep in
// a later traversal) and returns a graph equal to the snapshotted one:
// same nodes, same edges, same per-node insertion order.
func FromSnapshot(s Snapshot) (*Graph, error) {
	if s.Nodes < 0 {
		return nil, fmt.Errorf("graph: snapshot has negative node count %d", s.Nodes)
	}
	g := New(s.Nodes)
	g.AddNodes(s.Nodes)
	g.order = make([]EdgeTriple, 0, len(s.Edges))
	for i, e := range s.Edges {
		if e.U < 0 || int(e.U) >= s.Nodes || e.V < 0 || int(e.V) >= s.Nodes {
			return nil, fmt.Errorf("graph: snapshot edge %d (%d,%d) out of range [0,%d)", i, e.U, e.V, s.Nodes)
		}
		if e.U == e.V {
			return nil, fmt.Errorf("graph: snapshot edge %d is a self-loop on %d", i, e.U)
		}
		// AddEdge (not addEdgeUnchecked): its duplicate scan keeps a
		// corrupt snapshot from silently building a multigraph.
		if !g.AddEdge(e.U, e.V, e.Time) {
			return nil, fmt.Errorf("graph: snapshot edge %d (%d,%d) duplicated", i, e.U, e.V)
		}
	}
	return g, nil
}

// Equal reports whether two graphs are identical: same node count and
// the same edges in the same creation order (which implies identical
// adjacency-list order everywhere). Used by snapshot round-trip tests.
func (g *Graph) Equal(h *Graph) bool {
	if len(g.adj) != len(h.adj) || len(g.order) != len(h.order) {
		return false
	}
	for i := range g.order {
		if g.order[i] != h.order[i] {
			return false
		}
	}
	return true
}
