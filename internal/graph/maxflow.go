package graph

// MaxFlow computes the maximum integer flow from s to t treating every
// undirected edge of g as a pair of directed edges with the given unit
// capacity, using Dinic's algorithm. The SumUp baseline uses it to
// bound the number of votes (flow) the Sybil region can push to the
// vote collector.
func (g *Graph) MaxFlow(s, t NodeID, capacity int) int {
	return g.MaxFlowFunc(s, t, func(NodeID, NodeID) int { return capacity })
}

// MaxFlowFunc is MaxFlow with per-edge capacities: capOf is consulted
// once per undirected edge and applies in both directions.
func (g *Graph) MaxFlowFunc(s, t NodeID, capOf func(u, v NodeID) int) int {
	if s == t {
		return 0
	}
	d := newDinic(g, capOf)
	return d.run(s, t)
}

type dinicEdge struct {
	to  int32
	cap int32
	rev int32 // index of reverse edge in edges[to]
}

type dinic struct {
	edges [][]dinicEdge
	level []int32
	iter  []int32
}

func newDinic(g *Graph, capOf func(u, v NodeID) int) *dinic {
	n := g.NumNodes()
	d := &dinic{
		edges: make([][]dinicEdge, n),
		level: make([]int32, n),
		iter:  make([]int32, n),
	}
	for u := 0; u < n; u++ {
		for _, e := range g.Neighbors(NodeID(u)) {
			if NodeID(u) < e.To {
				d.addEdge(u, int(e.To), int32(capOf(NodeID(u), e.To)))
			}
		}
	}
	return d
}

func (d *dinic) addEdge(u, v int, c int32) {
	// Undirected edge: capacity c in both directions.
	d.edges[u] = append(d.edges[u], dinicEdge{to: int32(v), cap: c, rev: int32(len(d.edges[v]))})
	d.edges[v] = append(d.edges[v], dinicEdge{to: int32(u), cap: c, rev: int32(len(d.edges[u]) - 1)})
}

func (d *dinic) bfs(s, t int) bool {
	for i := range d.level {
		d.level[i] = -1
	}
	queue := []int{s}
	d.level[s] = 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, e := range d.edges[u] {
			if e.cap > 0 && d.level[e.to] < 0 {
				d.level[e.to] = d.level[u] + 1
				queue = append(queue, int(e.to))
			}
		}
	}
	return d.level[t] >= 0
}

func (d *dinic) dfs(u, t int, f int32) int32 {
	if u == t {
		return f
	}
	for ; d.iter[u] < int32(len(d.edges[u])); d.iter[u]++ {
		e := &d.edges[u][d.iter[u]]
		if e.cap <= 0 || d.level[e.to] != d.level[u]+1 {
			continue
		}
		pushed := d.dfs(int(e.to), t, min32(f, e.cap))
		if pushed > 0 {
			e.cap -= pushed
			d.edges[e.to][e.rev].cap += pushed
			return pushed
		}
	}
	return 0
}

func (d *dinic) run(s, t NodeID) int {
	const inf = int32(1) << 30
	flow := 0
	for d.bfs(int(s), int(t)) {
		for i := range d.iter {
			d.iter[i] = 0
		}
		for {
			f := d.dfs(int(s), int(t), inf)
			if f == 0 {
				break
			}
			flow += int(f)
		}
	}
	return flow
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}
