package features

import (
	"math"
	"testing"

	"sybilwild/internal/graph"
	"sybilwild/internal/osn"
	"sybilwild/internal/sim"
)

// buildNet makes a network where account 0 sends requests to 1..n at
// the given times; acceptors accept immediately.
func buildNet(times []sim.Time, accepts []bool) (*osn.Network, osn.AccountID) {
	net := osn.NewNetwork()
	sender := net.CreateAccount(osn.Female, osn.Sybil, 0)
	for i, at := range times {
		to := net.CreateAccount(osn.Male, osn.Normal, 0)
		net.SendFriendRequest(sender, to, at)
		if accepts[i] {
			net.RespondFriendRequest(to, sender, true, at+1)
		} else {
			net.RespondFriendRequest(to, sender, false, at+1)
		}
	}
	return net, sender
}

func TestOutgoingAcceptRatio(t *testing.T) {
	net, sender := buildNet(
		[]sim.Time{10, 20, 30, 40},
		[]bool{true, false, true, false},
	)
	v := Extract(net, []osn.AccountID{sender})[0]
	if v.OutSent != 4 || v.OutAccepted != 2 {
		t.Fatalf("counts = %d/%d", v.OutAccepted, v.OutSent)
	}
	if v.OutAccept != 0.5 {
		t.Fatalf("OutAccept = %v", v.OutAccept)
	}
}

func TestInvitationFrequencyWindows(t *testing.T) {
	// 10 requests over exactly 4 hours of activity (span 240 ticks):
	// 5 one-hour windows (inclusive partial) → 2/window; one 400-hour
	// window → 10.
	var times []sim.Time
	accepts := make([]bool, 10)
	for i := 0; i < 10; i++ {
		times = append(times, sim.Time(i)*24) // span = 216 ticks < 4h
	}
	net, sender := buildNet(times, accepts)
	v := Extract(net, []osn.AccountID{sender})[0]
	// span = 216 ticks → windows = 216/60+1 = 4 → 2.5 per 1h window.
	if v.Freq1h != 2.5 {
		t.Fatalf("Freq1h = %v, want 2.5", v.Freq1h)
	}
	if v.Freq400h != 10 {
		t.Fatalf("Freq400h = %v, want 10", v.Freq400h)
	}
}

func TestSingleRequestFrequency(t *testing.T) {
	net, sender := buildNet([]sim.Time{100}, []bool{true})
	v := Extract(net, []osn.AccountID{sender})[0]
	if v.Freq1h != 1 || v.Freq400h != 1 {
		t.Fatalf("freqs = %v/%v, want 1/1", v.Freq1h, v.Freq400h)
	}
}

func TestNoActivityVectorIsZero(t *testing.T) {
	net := osn.NewNetwork()
	id := net.CreateAccount(osn.Female, osn.Normal, 0)
	v := Extract(net, []osn.AccountID{id})[0]
	if v.Freq1h != 0 || v.OutAccept != 0 || v.InAccept != 0 || v.CC != 0 {
		t.Fatalf("zero-activity vector = %+v", v)
	}
}

func TestIncomingAcceptRatio(t *testing.T) {
	net := osn.NewNetwork()
	target := net.CreateAccount(osn.Female, osn.Sybil, 0)
	var senders []osn.AccountID
	for i := 0; i < 4; i++ {
		senders = append(senders, net.CreateAccount(osn.Male, osn.Normal, 0))
		net.SendFriendRequest(senders[i], target, sim.Time(i))
	}
	net.RespondFriendRequest(target, senders[0], true, 10)
	net.RespondFriendRequest(target, senders[1], true, 11)
	net.RespondFriendRequest(target, senders[2], false, 12)
	// senders[3] left pending: still counts in the denominator.
	v := Extract(net, []osn.AccountID{target})[0]
	if v.InReceived != 4 || v.InAccepted != 2 {
		t.Fatalf("in counts = %d/%d", v.InAccepted, v.InReceived)
	}
	if v.InAccept != 0.5 {
		t.Fatalf("InAccept = %v", v.InAccept)
	}
}

func TestCCFromGraph(t *testing.T) {
	net := osn.NewNetwork()
	a := net.CreateAccount(osn.Female, osn.Normal, 0)
	b := net.CreateAccount(osn.Male, osn.Normal, 0)
	c := net.CreateAccount(osn.Male, osn.Normal, 0)
	// Build triangle a-b, a-c, b-c via requests.
	net.SendFriendRequest(a, b, 1)
	net.RespondFriendRequest(b, a, true, 2)
	net.SendFriendRequest(a, c, 3)
	net.RespondFriendRequest(c, a, true, 4)
	net.SendFriendRequest(b, c, 5)
	net.RespondFriendRequest(c, b, true, 6)
	v := Extract(net, []osn.AccountID{a})[0]
	if v.CC != 1 {
		t.Fatalf("CC = %v, want 1 (triangle)", v.CC)
	}
}

func TestStreamingMatchesBatch(t *testing.T) {
	net, sender := buildNet(
		[]sim.Time{5, 65, 125, 185, 245},
		[]bool{true, true, false, true, false},
	)
	// Batch.
	batch := Extract(net, []osn.AccountID{sender})[0]
	// Streaming: replay manually.
	tr := NewTracker(net.Graph())
	for _, ev := range net.Events() {
		tr.Update(ev)
	}
	stream := tr.VectorOf(sender)
	if batch != stream {
		t.Fatalf("batch %+v != stream %+v", batch, stream)
	}
}

func TestTrackerLiveObserver(t *testing.T) {
	// The tracker can observe a live network and stay consistent.
	net := osn.NewNetwork()
	tr := NewTracker(net.Graph())
	net.RegisterObserver(tr.Update)
	a := net.CreateAccount(osn.Female, osn.Normal, 0)
	b := net.CreateAccount(osn.Male, osn.Normal, 0)
	net.SendFriendRequest(a, b, 1)
	net.RespondFriendRequest(b, a, true, 2)
	v := tr.VectorOf(a)
	if v.OutSent != 1 || v.OutAccepted != 1 {
		t.Fatalf("live tracking wrong: %+v", v)
	}
	if tr.Tracked() != 2 {
		t.Fatalf("Tracked = %d", tr.Tracked())
	}
}

func TestLabelledDataset(t *testing.T) {
	net := osn.NewNetwork()
	s := net.CreateAccount(osn.Female, osn.Sybil, 0)
	n := net.CreateAccount(osn.Male, osn.Normal, 0)
	ds := Labelled(net, []osn.AccountID{s}, []osn.AccountID{n})
	if len(ds.Vectors) != 2 || !ds.Labels[0] || ds.Labels[1] {
		t.Fatalf("dataset = %+v", ds)
	}
	x, y := ds.Matrix()
	if len(x) != 2 || y[0] != 1 || y[1] != -1 {
		t.Fatalf("matrix shape wrong: %v %v", x, y)
	}
	if len(x[0]) != 5 {
		t.Fatalf("feature dimension = %d", len(x[0]))
	}
}

func TestLogCC(t *testing.T) {
	if LogCC(0.01) != -2 {
		t.Fatalf("LogCC(0.01) = %v", LogCC(0.01))
	}
	if LogCC(0) != -6 {
		t.Fatalf("LogCC(0) = %v (floor)", LogCC(0))
	}
	if math.IsInf(LogCC(0), 0) {
		t.Fatal("LogCC unbounded")
	}
}

func TestPerWindowBoundaries(t *testing.T) {
	// span exactly one window: still 1 window (inclusive partial).
	if got := perWindow(6, 59, 60); got != 6 {
		t.Fatalf("perWindow(6, 59, 60) = %v", got)
	}
	if got := perWindow(6, 60, 60); got != 3 {
		t.Fatalf("perWindow(6, 60, 60) = %v", got)
	}
}

func TestTrackerOutOfOrderTimestamps(t *testing.T) {
	// Concurrent producers can deliver an account's requests out of
	// timestamp order; the activity span must be min..max, never
	// negative (a negative span used to divide by zero windows and
	// produce ±Inf frequencies).
	g := graph.New(3)
	g.AddNodes(3)
	tr := NewTracker(g)
	tr.Update(osn.Event{Type: osn.EvFriendRequest, At: 3999, Actor: 0, Target: 1})
	tr.Update(osn.Event{Type: osn.EvFriendRequest, At: 5, Actor: 0, Target: 2})
	v := tr.VectorOf(0)
	if math.IsInf(v.Freq1h, 0) || math.IsNaN(v.Freq1h) || v.Freq1h < 0 {
		t.Fatalf("Freq1h = %v with out-of-order timestamps", v.Freq1h)
	}
	// span = 3994 ticks ⇒ 67 one-hour windows ⇒ 2/67.
	if want := 2.0 / 67.0; math.Abs(v.Freq1h-want) > 1e-12 {
		t.Fatalf("Freq1h = %v, want %v", v.Freq1h, want)
	}
}
