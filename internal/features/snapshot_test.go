package features

import (
	"reflect"
	"testing"

	"sybilwild/internal/graph"
	"sybilwild/internal/osn"
	"sybilwild/internal/sim"
	"sybilwild/internal/stats"
)

// randomEvents generates a plausible mixed event stream over n
// accounts: bursts of requests with accept/reject responses, shuffled
// enough to exercise the min/max first/last-sent handling.
func randomEvents(seed int64, n, count int) []osn.Event {
	r := stats.NewRand(seed)
	evs := make([]osn.Event, 0, count)
	for i := 0; i < count; i++ {
		from := osn.AccountID(r.Intn(n))
		to := osn.AccountID(r.Intn(n))
		if from == to {
			continue
		}
		at := sim.Time(r.Intn(400 * int(sim.TicksPerHour)))
		evs = append(evs, osn.Event{Type: osn.EvFriendRequest, At: at, Actor: from, Target: to})
		switch {
		case r.Bernoulli(0.5):
			evs = append(evs, osn.Event{Type: osn.EvFriendAccept, At: at + 1, Actor: to, Target: from})
		case r.Bernoulli(0.3):
			evs = append(evs, osn.Event{Type: osn.EvFriendReject, At: at + 1, Actor: to, Target: from})
		}
	}
	return evs
}

// TestTrackerExportImportLossless is the property test: for many
// random event streams, Export → Import into a fresh tracker must
// reproduce every account's feature vector exactly, and a further
// Export must be identical (round-trip stability).
func TestTrackerExportImportLossless(t *testing.T) {
	g := graph.New(0)
	for seed := int64(1); seed <= 20; seed++ {
		const accounts = 300
		tr := NewTracker(g)
		for _, ev := range randomEvents(seed, accounts, 2000) {
			tr.Update(ev)
		}
		exported := tr.Export()
		if len(exported) == 0 || len(exported) != tr.Tracked() {
			t.Fatalf("seed %d: exported %d states, tracked %d", seed, len(exported), tr.Tracked())
		}
		for i := 1; i < len(exported); i++ {
			if exported[i-1].ID >= exported[i].ID {
				t.Fatalf("seed %d: export not sorted by ID at %d", seed, i)
			}
		}
		restored := NewTracker(g)
		if err := restored.Import(exported); err != nil {
			t.Fatalf("seed %d: import: %v", seed, err)
		}
		if restored.Tracked() != tr.Tracked() {
			t.Fatalf("seed %d: restored tracks %d, original %d", seed, restored.Tracked(), tr.Tracked())
		}
		for id := osn.AccountID(0); id < accounts; id++ {
			if got, want := restored.VectorOf(id), tr.VectorOf(id); got != want {
				t.Fatalf("seed %d: account %d vector diverged after round trip:\n got %+v\nwant %+v", seed, id, got, want)
			}
		}
		if again := restored.Export(); !reflect.DeepEqual(again, exported) {
			t.Fatalf("seed %d: second export differs from first", seed)
		}
	}
}

// TestTrackerImportContinuesStream: import mid-stream, keep feeding
// the remaining events, and the restored tracker must stay in
// lockstep with the uninterrupted one — the property the pipeline's
// checkpoint/restore leans on.
func TestTrackerImportContinuesStream(t *testing.T) {
	g := graph.New(0)
	const accounts = 200
	evs := randomEvents(99, accounts, 3000)
	cut := len(evs) / 2

	full := NewTracker(g)
	for _, ev := range evs {
		full.Update(ev)
	}

	half := NewTracker(g)
	for _, ev := range evs[:cut] {
		half.Update(ev)
	}
	resumed := NewTracker(g)
	if err := resumed.Import(half.Export()); err != nil {
		t.Fatal(err)
	}
	for _, ev := range evs[cut:] {
		resumed.Update(ev)
	}
	for id := osn.AccountID(0); id < accounts; id++ {
		if got, want := resumed.VectorOf(id), full.VectorOf(id); got != want {
			t.Fatalf("account %d diverged after mid-stream restore:\n got %+v\nwant %+v", id, got, want)
		}
	}
}

// TestTrackerImportRejectsDuplicates: counters are absolute, so
// importing an already-tracked account must fail rather than
// double-count.
func TestTrackerImportRejectsDuplicates(t *testing.T) {
	tr := NewTracker(graph.New(0))
	tr.Update(osn.Event{Type: osn.EvFriendRequest, At: 1, Actor: 7, Target: 9})
	if err := tr.Import([]AccountState{{ID: 7, OutSent: 3}}); err == nil {
		t.Fatal("import of an already-tracked account succeeded")
	}
}
