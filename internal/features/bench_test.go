package features

import (
	"testing"

	"sybilwild/internal/graph"
	"sybilwild/internal/osn"
)

func BenchmarkTrackerUpdate(b *testing.B) {
	g := graph.New(1000)
	g.AddNodes(1000)
	tr := NewTracker(g)
	ev := osn.Event{Type: osn.EvFriendRequest, At: 1, Actor: 5, Target: 9}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev.Actor = osn.AccountID(i % 1000)
		ev.At = int64(i)
		tr.Update(ev)
	}
}

func BenchmarkVectorOf(b *testing.B) {
	g := graph.New(200)
	g.AddNodes(200)
	for i := 1; i < 60; i++ {
		g.AddEdge(0, graph.NodeID(i), int64(i))
	}
	tr := NewTracker(g)
	for i := 0; i < 50; i++ {
		tr.Update(osn.Event{Type: osn.EvFriendRequest, At: int64(i * 30), Actor: 0, Target: osn.AccountID(i + 1)})
		tr.Update(osn.Event{Type: osn.EvFriendAccept, At: int64(i*30 + 5), Actor: osn.AccountID(i + 1), Target: 0})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.VectorOf(0)
	}
}
