package features

import (
	"testing"

	"sybilwild/internal/osn"
	"sybilwild/internal/sim"
	"sybilwild/internal/stats"
)

// TestStreamingEqualsBatchUnderRandomTraffic is the invariant the
// real-time deployment rests on: the streaming tracker must compute
// exactly the same vectors as batch extraction over the finished log,
// for arbitrary operation interleavings.
func TestStreamingEqualsBatchUnderRandomTraffic(t *testing.T) {
	r := stats.NewRand(97)
	for trial := 0; trial < 15; trial++ {
		net := osn.NewNetwork()
		n := 10 + r.Intn(30)
		ids := make([]osn.AccountID, n)
		for i := range ids {
			k := osn.Normal
			if r.Bernoulli(0.3) {
				k = osn.Sybil
			}
			ids[i] = net.CreateAccount(osn.Female, k, 0)
		}
		live := NewTracker(net.Graph())
		net.RegisterObserver(live.Update)

		var at sim.Time = 1
		for op := 0; op < 600; op++ {
			at += sim.Time(r.Intn(3))
			a := ids[r.Intn(n)]
			b := ids[r.Intn(n)]
			switch r.Intn(8) {
			case 0:
				net.Ban(a, at)
			case 1, 2:
				if pend := net.PendingFor(a); len(pend) > 0 {
					p := pend[r.Intn(len(pend))]
					net.RespondFriendRequest(a, p.From, r.Bernoulli(0.6), at)
				}
			default:
				net.SendFriendRequest(a, b, at)
			}
		}

		batch := Extract(net, ids)
		for i, id := range ids {
			if got := live.VectorOf(id); got != batch[i] {
				t.Fatalf("trial %d account %d: streaming %+v != batch %+v",
					trial, id, got, batch[i])
			}
		}
	}
}

// TestVectorInvariants: ratios are in [0,1] and counts are consistent
// under any traffic.
func TestVectorInvariants(t *testing.T) {
	r := stats.NewRand(101)
	net := osn.NewNetwork()
	n := 40
	ids := make([]osn.AccountID, n)
	for i := range ids {
		ids[i] = net.CreateAccount(osn.Male, osn.Normal, 0)
	}
	var at sim.Time = 1
	for op := 0; op < 2000; op++ {
		at++
		a := ids[r.Intn(n)]
		b := ids[r.Intn(n)]
		if r.Bernoulli(0.7) {
			net.SendFriendRequest(a, b, at)
		} else if pend := net.PendingFor(a); len(pend) > 0 {
			net.RespondFriendRequest(a, pend[0].From, r.Bernoulli(0.5), at)
		}
	}
	for _, v := range Extract(net, ids) {
		if v.OutAccept < 0 || v.OutAccept > 1 || v.InAccept < 0 || v.InAccept > 1 {
			t.Fatalf("ratio out of range: %+v", v)
		}
		if v.OutAccepted > v.OutSent || v.InAccepted > v.InReceived {
			t.Fatalf("accepted exceeds sent/received: %+v", v)
		}
		if v.CC < 0 || v.CC > 1 {
			t.Fatalf("cc out of range: %+v", v)
		}
		if v.OutSent > 0 && v.Freq1h <= 0 {
			t.Fatalf("active account with zero frequency: %+v", v)
		}
		if v.Freq1h < v.Freq400h/400-1e-9 {
			// 400h windows aggregate ≥ as much as 1h windows per window.
			t.Fatalf("window relationship violated: %+v", v)
		}
	}
}
