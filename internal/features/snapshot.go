package features

import (
	"fmt"
	"sort"

	"sybilwild/internal/osn"
	"sybilwild/internal/sim"
)

// This file is the durable half of the streaming tracker: counters in,
// counters out, losslessly. A Tracker's entire state is the per-account
// counter set, so Export/Import is a complete checkpoint of the §2.2
// feature extraction — the detector's Pipeline snapshots lean on it
// shard by shard.

// AccountState is one account's raw behavioural counters in
// serializable form. It carries exactly the fields a Tracker
// accumulates, so Export → Import reproduces every future VectorOf
// result bit for bit.
type AccountState struct {
	ID          osn.AccountID `json:"id"`
	OutSent     int           `json:"out_sent,omitempty"`
	OutAccepted int           `json:"out_accepted,omitempty"`
	InReceived  int           `json:"in_received,omitempty"`
	InAccepted  int           `json:"in_accepted,omitempty"`
	FirstSent   sim.Time      `json:"first_sent,omitempty"`
	LastSent    sim.Time      `json:"last_sent,omitempty"`
}

// Export serializes every tracked account's counters, sorted by
// account ID so the output is deterministic (checkpoint files diff
// cleanly run to run).
func (t *Tracker) Export() []AccountState {
	out := make([]AccountState, 0, len(t.acct))
	for i := range t.acct {
		c := &t.acct[i]
		out = append(out, AccountState{
			ID:          c.id,
			OutSent:     c.outSent,
			OutAccepted: c.outAccepted,
			InReceived:  c.inReceived,
			InAccepted:  c.inAccepted,
			FirstSent:   c.firstSent,
			LastSent:    c.lastSent,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Import folds exported account states into the tracker. Importing
// into a fresh tracker reproduces the exporting tracker exactly;
// importing an account that is already tracked is a checkpoint
// inconsistency and returns an error (counters are absolute values,
// not deltas, so merging them would double-count).
func (t *Tracker) Import(states []AccountState) error {
	for _, st := range states {
		if _, dup := t.idx[st.ID]; dup {
			return fmt.Errorf("features: import: account %d already tracked", st.ID)
		}
		h := t.handle(st.ID)
		t.acct[h] = counters{
			id:          st.ID,
			outSent:     st.OutSent,
			outAccepted: st.OutAccepted,
			inReceived:  st.InReceived,
			inAccepted:  st.InAccepted,
			firstSent:   st.FirstSent,
			lastSent:    st.LastSent,
		}
	}
	return nil
}
