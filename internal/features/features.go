// Package features extracts the four behavioural features the paper's
// detector runs on (§2.2): invitation frequency at two time scales,
// outgoing-request accept ratio, incoming-request accept ratio, and
// the clustering coefficient of an account's first 50 friends.
//
// Two extraction modes are provided: batch (over a finished event log,
// used by the classifier experiments) and streaming (incrementally
// updated from live events, used by the real-time detector).
package features

import (
	"math"

	"sybilwild/internal/graph"
	"sybilwild/internal/osn"
	"sybilwild/internal/sim"
)

// FirstFriendsK is the friend-list prefix length the clustering
// coefficient is computed over (Figure 4 uses the first 50 friends).
const FirstFriendsK = 50

// Vector holds one account's behavioural features plus the raw counts
// they were derived from.
type Vector struct {
	ID osn.AccountID

	// Freq1h and Freq400h are the average number of friend requests
	// sent per 1-hour (resp. 400-hour) window, averaged over the
	// windows spanning the account's request activity (first request to
	// last request). Accounts that never sent a request have 0.
	Freq1h   float64
	Freq400h float64

	// OutAccept is the fraction of this account's outgoing requests
	// that were accepted; OutSent/OutAccepted are the raw counts.
	OutAccept   float64
	OutSent     int
	OutAccepted int

	// InAccept is the fraction of incoming requests this account
	// accepted (of those it answered plus those still pending, matching
	// the paper's observation that bans can strand pending requests).
	InAccept   float64
	InReceived int
	InAccepted int

	// CC is the clustering coefficient over the account's first
	// FirstFriendsK friends by edge-creation time.
	CC float64
}

// Features returns the vector in canonical ML ordering:
// [freq1h, freq400h, outAccept, inAccept, cc].
func (v *Vector) Features() []float64 {
	return []float64{v.Freq1h, v.Freq400h, v.OutAccept, v.InAccept, v.CC}
}

// counters is the incremental per-account state. Counters live in the
// Tracker's contiguous slab, not behind per-account pointers, so the
// steady-state update path never allocates and stays cache-friendly.
type counters struct {
	id          osn.AccountID
	outSent     int
	outAccepted int
	inReceived  int
	inAccepted  int
	firstSent   sim.Time
	lastSent    sim.Time
}

// Handle is a Tracker-assigned dense index for one tracked account,
// valid for the lifetime of the Tracker that issued it. Handles let
// hot-path callers (the sharded detector) keep their own per-account
// bookkeeping in flat slices instead of maps: handles are assigned
// 0, 1, 2, … in first-seen order, so a slice indexed by Handle grows
// in lockstep with the tracker.
type Handle int32

// NoHandle is returned by UpdateActor for events that touch no
// actor-owned counter.
const NoHandle Handle = -1

// Tracker incrementally accumulates feature state from an event
// stream. It is the real-time half of the package: feed every event to
// Update, then call VectorOf for any account. The graph (for the
// clustering coefficient) is consulted lazily at read time, exactly
// like the production detector queried Renren's friendship store.
//
// Steady-state updates are allocation-free: counters live in one
// contiguous slab indexed by Handle, and only first contact with a new
// account grows it (amortized append + one map insert).
type Tracker struct {
	g    *graph.Graph
	idx  map[osn.AccountID]Handle
	acct []counters
}

// NewTracker creates a tracker reading friendship structure from g.
func NewTracker(g *graph.Graph) *Tracker {
	return &Tracker{g: g, idx: make(map[osn.AccountID]Handle)}
}

// Update folds one event into the feature state.
func (t *Tracker) Update(ev osn.Event) {
	t.UpdateActor(ev)
	t.UpdateTarget(ev)
}

// UpdateActor folds in only the state owned by ev.Actor and returns
// the actor's Handle (NoHandle when the event touches no actor-owned
// counter). Together with UpdateTarget it splits Update along
// account-ownership lines, which is what lets a sharded pipeline
// partition tracker state by account: the shard owning ev.Actor
// applies UpdateActor, the shard owning ev.Target applies
// UpdateTarget, and no counter is touched by two shards. Returning the
// handle saves the evaluation path a second map lookup.
func (t *Tracker) UpdateActor(ev osn.Event) Handle {
	switch ev.Type {
	case osn.EvFriendRequest:
		h := t.handle(ev.Actor)
		c := &t.acct[h]
		// Min/max rather than first/last seen: concurrent producers
		// (Pipeline.Observe from several frontends) may deliver an
		// account's requests out of timestamp order, and a negative
		// span would blow up the per-window frequencies.
		if c.outSent == 0 {
			c.firstSent, c.lastSent = ev.At, ev.At
		} else {
			if ev.At < c.firstSent {
				c.firstSent = ev.At
			}
			if ev.At > c.lastSent {
				c.lastSent = ev.At
			}
		}
		c.outSent++
		return h
	case osn.EvFriendAccept:
		// Actor accepted Target's request.
		h := t.handle(ev.Actor)
		t.acct[h].inAccepted++
		return h
	case osn.EvFriendReject:
		// Reject contributes to the incoming denominator only, which
		// inReceived already counted at request time.
	}
	return NoHandle
}

// UpdateTarget folds in only the state owned by ev.Target.
func (t *Tracker) UpdateTarget(ev osn.Event) {
	switch ev.Type {
	case osn.EvFriendRequest:
		t.acct[t.handle(ev.Target)].inReceived++
	case osn.EvFriendAccept:
		t.acct[t.handle(ev.Target)].outAccepted++
	}
}

// handle returns the dense index of id's counters, assigning a fresh
// slab slot on first contact.
func (t *Tracker) handle(id osn.AccountID) Handle {
	if h, ok := t.idx[id]; ok {
		return h
	}
	h := Handle(len(t.acct))
	t.acct = append(t.acct, counters{id: id})
	t.idx[id] = h
	return h
}

// HandleOf returns the handle of an already-tracked account.
func (t *Tracker) HandleOf(id osn.AccountID) (Handle, bool) {
	h, ok := t.idx[id]
	return h, ok
}

// Tracked returns the number of accounts with any observed activity.
// Handles issued by this tracker are always < Tracked().
func (t *Tracker) Tracked() int { return len(t.acct) }

// VectorOf computes the current feature vector for an account.
func (t *Tracker) VectorOf(id osn.AccountID) Vector {
	v := t.CountsOf(id)
	t.FillCC(&v)
	return v
}

// FillCC fills in the clustering coefficient of v.ID from the
// tracker's graph — the deferred, expensive half of VectorOf, split
// out so detectors can skip it when their classifier doesn't need it.
func (t *Tracker) FillCC(v *Vector) {
	if int(v.ID) < t.g.NumNodes() {
		v.CC = t.g.ClusteringFirstK(v.ID, FirstFriendsK)
	}
}

// CountsOf computes the feature vector from the tracker's own counters
// alone, leaving CC at zero. Callers that guard the graph themselves
// (the sharded pipeline takes a read lock while edges are still being
// reconstructed from the feed) use this and fill in CC under their own
// synchronization.
func (t *Tracker) CountsOf(id osn.AccountID) Vector {
	if h, ok := t.idx[id]; ok {
		return t.CountsAt(h)
	}
	return Vector{ID: id}
}

// CountsAt is CountsOf by handle — the map-free form the sharded
// detector's evaluation path uses.
func (t *Tracker) CountsAt(h Handle) Vector {
	c := &t.acct[h]
	v := Vector{
		ID:          c.id,
		OutSent:     c.outSent,
		OutAccepted: c.outAccepted,
		InReceived:  c.inReceived,
		InAccepted:  c.inAccepted,
	}
	if c.outSent > 0 {
		v.OutAccept = float64(c.outAccepted) / float64(c.outSent)
		span := c.lastSent - c.firstSent
		v.Freq1h = perWindow(c.outSent, span, sim.TicksPerHour)
		v.Freq400h = perWindow(c.outSent, span, 400*sim.TicksPerHour)
	}
	if v.InReceived > 0 {
		v.InAccept = float64(c.inAccepted) / float64(c.inReceived)
	}
	return v
}

// perWindow computes average requests per window of length w over an
// activity span. The span is inclusive of a final partial window.
func perWindow(sent int, span sim.Time, w sim.Time) float64 {
	windows := int64(span)/int64(w) + 1
	return float64(sent) / float64(windows)
}

// Extract computes feature vectors for the given accounts from a
// finished network. It is a convenience wrapper that replays the
// retained event log through a Tracker.
func Extract(net *osn.Network, ids []osn.AccountID) []Vector {
	tr := NewTracker(net.Graph())
	for _, ev := range net.Events() {
		tr.Update(ev)
	}
	out := make([]Vector, len(ids))
	for i, id := range ids {
		out[i] = tr.VectorOf(id)
	}
	return out
}

// Dataset is a labelled feature matrix ready for the classifiers.
type Dataset struct {
	Vectors []Vector
	Labels  []bool // true = Sybil
}

// Labelled builds a classifier dataset from ground-truth account sets.
func Labelled(net *osn.Network, sybils, normals []osn.AccountID) Dataset {
	ids := make([]osn.AccountID, 0, len(sybils)+len(normals))
	ids = append(ids, sybils...)
	ids = append(ids, normals...)
	vecs := Extract(net, ids)
	labels := make([]bool, len(ids))
	for i := range sybils {
		labels[i] = true
	}
	return Dataset{Vectors: vecs, Labels: labels}
}

// Matrix returns (X, y) in the shape the SVM expects: y ∈ {+1, -1}
// with +1 = Sybil.
func (d Dataset) Matrix() ([][]float64, []float64) {
	x := make([][]float64, len(d.Vectors))
	y := make([]float64, len(d.Vectors))
	for i := range d.Vectors {
		x[i] = d.Vectors[i].Features()
		if d.Labels[i] {
			y[i] = 1
		} else {
			y[i] = -1
		}
	}
	return x, y
}

// LogCC returns log10(cc) clamped at a floor, the transform used when
// plotting Figure 4's log-scaled axis.
func LogCC(cc float64) float64 {
	const floor = 1e-6
	if cc < floor {
		cc = floor
	}
	return math.Log10(cc)
}
