package detector_test

import (
	"fmt"

	"sybilwild/internal/detector"
	"sybilwild/internal/graph"
	"sybilwild/internal/osn"
	"sybilwild/internal/stream"
)

// ExamplePipeline_Ingest ingests an event log in wire-batch
// chunks — the shape detectd receives from stream.Client.RecvBatch —
// through the sharded pipeline. Account 1 bursts 30 invitations in an
// hour with a single accept, the paper's Sybil signature, and is the
// only account flagged.
func ExamplePipeline_Ingest() {
	g := graph.New(64)
	g.AddNodes(64)

	events := make([]osn.Event, 0, 32)
	for i := 0; i < 30; i++ { // one request every 2 ticks: ~30/hour
		events = append(events, osn.Event{
			Type: osn.EvFriendRequest, At: int64(2 * i),
			Actor: 1, Target: osn.AccountID(2 + i),
		})
	}
	events = append(events, osn.Event{Type: osn.EvFriendAccept, At: 61, Actor: 2, Target: 1})

	rule := detector.Rule{OutAcceptMax: 0.5, FreqMin: 20, CCMax: 0.05, MinObserved: 10}
	p := detector.NewPipeline(rule, g, detector.WithShards(4))
	for i := 0; i < len(events); i += stream.DefaultMaxBatch {
		end := min(i+stream.DefaultMaxBatch, len(events))
		p.Ingest(detector.Batch{Events: events[i:end]})
	}
	p.Close()

	fmt.Println("accounts tracked:", p.Tracked())
	fmt.Println("account 1 flagged:", p.Flagged(1))
	fmt.Println("total flagged:", p.FlaggedCount())
	// Output:
	// accounts tracked: 31
	// account 1 flagged: true
	// total flagged: 1
}
