package detector

import (
	"sybilwild/internal/features"
	"sybilwild/internal/graph"
	"sybilwild/internal/osn"
	"sybilwild/internal/sim"
)

// Classifier is anything that can judge a feature vector; both Rule
// and *Adaptive satisfy it.
type Classifier interface {
	Classify(features.Vector) bool
}

// CCGated is optionally implemented by classifiers whose verdict can
// be decided without the clustering coefficient for some vectors.
// NeedsCC is called with a vector whose CC field is not yet filled in
// (zero); returning false is a promise that Classify yields the same
// verdict for every possible CC value, which lets the detectors skip
// the CC computation — a walk over the account's first-50-friends
// adjacency, by far the most expensive feature — entirely for that
// evaluation. Rule satisfies it: the rule is a conjunction, so once a
// counter-derived term fails the verdict is false regardless of CC.
type CCGated interface {
	NeedsCC(features.Vector) bool
}

// Monitor is the real-time pipeline: it observes a live event stream,
// keeps per-account feature state, and re-evaluates an account's
// classification each time that account sends a friend request. When
// an account is flagged, OnFlag fires (the production deployment's
// action was a ban).
//
// Monitor deliberately evaluates only on EvFriendRequest: that is the
// earliest signal available (no recipient response needed), matching
// the paper's emphasis on detection "without significant delays".
type Monitor struct {
	C       Classifier
	Tracker *features.Tracker
	// OnFlag is called at most once per account, with the event time.
	OnFlag func(osn.AccountID, sim.Time)
	// CheckEvery evaluates an account every n-th request it sends
	// (1 = every request). Higher values trade latency for CPU.
	CheckEvery int

	flagged map[osn.AccountID]bool
	seen    map[osn.AccountID]int
}

// NewMonitor builds a monitor over the given friendship graph.
func NewMonitor(c Classifier, g *graph.Graph, onFlag func(osn.AccountID, sim.Time)) *Monitor {
	return &Monitor{
		C:          c,
		Tracker:    features.NewTracker(g),
		OnFlag:     onFlag,
		CheckEvery: 1,
		flagged:    make(map[osn.AccountID]bool),
		seen:       make(map[osn.AccountID]int),
	}
}

// Observe folds one event in and evaluates the sender if due. Wire it
// to a live network with net.RegisterObserver(m.Observe).
func (m *Monitor) Observe(ev osn.Event) {
	m.Tracker.Update(ev)
	if ev.Type != osn.EvFriendRequest {
		return
	}
	id := ev.Actor
	if m.flagged[id] {
		return
	}
	m.seen[id]++
	every := m.CheckEvery
	if every < 1 {
		every = 1
	}
	if m.seen[id]%every != 0 {
		return
	}
	v := m.Tracker.CountsOf(id)
	// Lazy CC, mirroring the Pipeline: skip the clustering walk when
	// the classifier guarantees the counter features alone decide.
	if g, ok := m.C.(CCGated); !ok || g.NeedsCC(v) {
		m.Tracker.FillCC(&v)
	}
	if m.C.Classify(v) {
		m.flagged[id] = true
		if m.OnFlag != nil {
			m.OnFlag(id, ev.At)
		}
	}
}

// Flagged reports whether an account has been flagged.
func (m *Monitor) Flagged(id osn.AccountID) bool { return m.flagged[id] }

// FlaggedCount returns the number of flagged accounts.
func (m *Monitor) FlaggedCount() int { return len(m.flagged) }

// FlaggedIDs returns all flagged accounts (order unspecified).
func (m *Monitor) FlaggedIDs() []osn.AccountID {
	out := make([]osn.AccountID, 0, len(m.flagged))
	for id := range m.flagged {
		out = append(out, id)
	}
	return out
}
