package detector

import (
	"sybilwild/internal/features"
	"sybilwild/internal/stats"
)

// FeatureNames labels the canonical feature ordering of
// features.Vector.Features().
var FeatureNames = []string{"freq1h", "freq400h", "outAccept", "inAccept", "cc"}

// FeatureEval is one feature's stand-alone discriminative power: a
// single-threshold classifier using only that feature, evaluated with
// stratified k-fold cross-validation (cuts fitted on training folds
// only, so the numbers are honest generalization estimates and
// directly comparable to the Table 1 protocol).
type FeatureEval struct {
	Name       string
	Cut        float64 // cut fitted on the full data (for reporting)
	SybilBelow bool    // true when values below the cut are classified Sybil
	Confusion  stats.Confusion
}

// EvaluateFeatures cross-validates a decision stump per feature,
// quantifying what each of §2.2's four behavioural attributes
// contributes on its own. Accounts below minObserved outgoing requests
// are excluded (their ratios are noise).
func EvaluateFeatures(ds features.Dataset, minObserved, folds int, seed int64) []FeatureEval {
	if folds < 2 {
		folds = 2
	}
	var out []FeatureEval
	for f, name := range FeatureNames {
		var xs []sample
		for i, v := range ds.Vectors {
			if v.OutSent < minObserved {
				continue
			}
			xs = append(xs, sample{v.Features()[f], ds.Labels[i]})
		}
		if len(xs) < folds {
			out = append(out, FeatureEval{Name: name})
			continue
		}
		eval := FeatureEval{Name: name}
		eval.Confusion = crossValidateStump(xs, folds, seed+int64(f))
		// Report the full-data cut and direction for the table.
		eval.Cut, eval.SybilBelow = fitStump(xs)
		out = append(out, eval)
	}
	return out
}

// fitStump picks the best cut and direction on the given samples.
func fitStump(xs []sample) (cut float64, sybilBelow bool) {
	below := bestCut(xs, true)
	above := bestCut(xs, false)
	errBelow, errAbove := 0, 0
	for _, s := range xs {
		if (s.x < below) != s.sybil {
			errBelow++
		}
		if (s.x > above) != s.sybil {
			errAbove++
		}
	}
	if errBelow <= errAbove {
		return below, true
	}
	return above, false
}

func crossValidateStump(xs []sample, folds int, seed int64) stats.Confusion {
	r := stats.NewRand(seed)
	var pos, neg []int
	for i, s := range xs {
		if s.sybil {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	stats.Shuffle(r, pos)
	stats.Shuffle(r, neg)
	fold := make([]int, len(xs))
	for i, idx := range pos {
		fold[idx] = i % folds
	}
	for i, idx := range neg {
		fold[idx] = i % folds
	}
	var total stats.Confusion
	for f := 0; f < folds; f++ {
		var train, test []sample
		for i, s := range xs {
			if fold[i] == f {
				test = append(test, s)
			} else {
				train = append(train, s)
			}
		}
		if len(train) == 0 || len(test) == 0 {
			continue
		}
		cut, sybilBelow := fitStump(train)
		for _, s := range test {
			pred := s.x > cut
			if sybilBelow {
				pred = s.x < cut
			}
			total.Observe(s.sybil, pred)
		}
	}
	return total
}
