package detector

import (
	"encoding/json"
	"fmt"
	"testing"

	"sybilwild/internal/osn"
	"sybilwild/internal/sim"
	"sybilwild/internal/stats"
)

// snapshotWorkload builds a running reconstruction-mode pipeline (the
// detectd configuration) tracking the given number of accounts, fed
// from a synthetic request/accept stream.
func snapshotWorkload(b *testing.B, accounts, shards int) *Pipeline {
	b.Helper()
	r := stats.NewRand(int64(accounts))
	p := NewPipeline(PaperRule(), nil, WithShards(shards), WithGraphReconstruction(), WithCheckEvery(4))
	const chunk = 256
	evs := make([]osn.Event, 0, chunk)
	flush := func() {
		p.Ingest(Batch{Events: evs})
		evs = evs[:0]
	}
	at := sim.Time(0)
	for a := 0; a < accounts; a++ {
		for k := 0; k < 3; k++ {
			tgt := osn.AccountID(r.Intn(accounts))
			if int(tgt) == a {
				tgt = osn.AccountID((a + 1) % accounts)
			}
			at++
			evs = append(evs, osn.Event{Type: osn.EvFriendRequest, At: at, Actor: osn.AccountID(a), Target: tgt})
			if r.Bernoulli(0.5) {
				evs = append(evs, osn.Event{Type: osn.EvFriendAccept, At: at + 1, Actor: tgt, Target: osn.AccountID(a)})
			}
			if len(evs) >= chunk {
				flush()
			}
		}
	}
	flush()
	return p
}

// BenchmarkSnapshot measures the barrier + serialization cost of a
// consistent pipeline snapshot as account count grows, and reports
// the serialized checkpoint size — the latency a checkpointing
// detectd pays per interval and the bytes it writes.
func BenchmarkSnapshot(b *testing.B) {
	for _, accounts := range []int{1_000, 10_000, 100_000} {
		b.Run(fmt.Sprintf("accounts=%d", accounts), func(b *testing.B) {
			p := snapshotWorkload(b, accounts, 4)
			defer p.Close()
			b.ResetTimer()
			var snap *PipelineSnapshot
			for i := 0; i < b.N; i++ {
				snap = p.Snapshot()
			}
			b.StopTimer()
			data, err := json.Marshal(snap)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(len(data)), "snapshot_bytes")
			b.ReportMetric(float64(len(data))/float64(len(snap.Accounts)), "bytes/account")
		})
	}
}

// BenchmarkReshard measures a live repartition — barrier, shard
// teardown, re-seeding, restart — at growing account counts,
// alternating between two shard counts so every iteration does real
// movement.
func BenchmarkReshard(b *testing.B) {
	for _, accounts := range []int{1_000, 10_000, 100_000} {
		b.Run(fmt.Sprintf("accounts=%d", accounts), func(b *testing.B) {
			p := snapshotWorkload(b, accounts, 4)
			defer p.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%2 == 0 {
					p.Reshard(8)
				} else {
					p.Reshard(4)
				}
			}
		})
	}
}
