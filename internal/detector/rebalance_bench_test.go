package detector

import (
	"fmt"
	"testing"
)

// BenchmarkLiveRebalance measures the state-surgery half of a live
// cutover's pause at detectd scale: re-keying a 100k-account
// campaign's K partition snapshots into K' and restoring the K' new
// pipelines, ready to subscribe from barrier+1. The feed itself never
// pauses during a live rebalance — events buffer at the fenced broker
// — so this number bounds how long the new owners lag the barrier,
// reported as ms/cutover. The snapshot capture side of the pause is
// BenchmarkSnapshot; the K=3→5 and 4→2 shapes mirror the E2E.
func BenchmarkLiveRebalance(b *testing.B) {
	for _, c := range []struct{ from, to int }{{3, 5}, {4, 2}} {
		b.Run(fmt.Sprintf("k=%dto%d", c.from, c.to), func(b *testing.B) {
			p := snapshotWorkload(b, 100_000, 4)
			defer p.Close()
			base := p.Snapshot()
			srcs, err := RebalanceSnapshots([]*PipelineSnapshot{base}, c.from)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, err := RebalanceSnapshots(srcs, c.to)
				if err != nil {
					b.Fatal(err)
				}
				for _, snap := range out {
					np, _, err := NewPipelineFromSnapshot(PaperRule(), nil, snap)
					if err != nil {
						b.Fatal(err)
					}
					np.Close()
				}
			}
			b.StopTimer()
			b.ReportMetric(b.Elapsed().Seconds()*1e3/float64(b.N), "ms/cutover")
		})
	}
}
