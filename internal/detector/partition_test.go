package detector

import (
	"strings"
	"testing"

	"sybilwild/internal/features"
	"sybilwild/internal/osn"
)

// partitionSlice filters a full event log down to what partition part
// of parts receives over a filtered feed subscription — the same
// contract the broker applies (osn.PartitionDelivers).
func partitionSlice(events []osn.Event, part, parts int) []osn.Event {
	var out []osn.Event
	for _, ev := range events {
		if osn.PartitionDelivers(ev, part, parts) {
			out = append(out, ev)
		}
	}
	return out
}

// TestPartitionedPipelinesMatchSingle is the detector half of the
// cluster equivalence property: K pipelines, each fed only its
// partition's slice of the feed (owned actors plus support events) and
// gated to evaluate only owned accounts, must jointly flag exactly the
// set a single pipeline fed the full log flags — no verdict lost to a
// split feature vector, none duplicated, none emitted by a non-owner.
func TestPartitionedPipelinesMatchSingle(t *testing.T) {
	pop := campaignLog(t, 47)
	events := pop.Net.Events()
	rule := FitRule(features.Labelled(pop.Net, pop.Sybils, pop.Normals), PaperRule())

	single := NewPipeline(rule, nil, WithGraphReconstruction())
	single.Ingest(Batch{Events: events})
	single.Close()
	want := sortedIDs(single.FlaggedIDs())
	if len(want) == 0 {
		t.Fatal("single pipeline flagged nothing; equivalence test is vacuous")
	}

	for _, k := range []int{2, 3, 5} {
		union := make(map[osn.AccountID]int)
		for part := 0; part < k; part++ {
			p := NewPipeline(rule, nil, WithGraphReconstruction(), WithPartition(part, k))
			p.Ingest(Batch{Events: partitionSlice(events, part, k)})
			p.Close()
			for _, id := range p.FlaggedIDs() {
				if osn.Partition(id, k) != part {
					t.Fatalf("k=%d: partition %d flagged account %d owned by partition %d",
						k, part, id, osn.Partition(id, k))
				}
				union[id]++
			}
		}
		got := make([]osn.AccountID, 0, len(union))
		for id, n := range union {
			if n != 1 {
				t.Fatalf("k=%d: account %d flagged by %d partitions", k, id, n)
			}
			got = append(got, id)
		}
		got = sortedIDs(got)
		if len(got) != len(want) {
			t.Fatalf("k=%d: union flagged %d accounts, single run flagged %d", k, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("k=%d: flag sets differ at %d: %d vs %d", k, i, got[i], want[i])
			}
		}
	}
}

// TestPartitionedSnapshotRoundTrip cuts a partitioned pipeline
// mid-feed, restores the snapshot, finishes the slice, and requires
// the same flags as the uninterrupted partitioned run — and that the
// snapshot carries its partition through the round trip.
func TestPartitionedSnapshotRoundTrip(t *testing.T) {
	pop := campaignLog(t, 53)
	events := pop.Net.Events()
	rule := FitRule(features.Labelled(pop.Net, pop.Sybils, pop.Normals), PaperRule())
	const part, parts = 1, 3
	slice := partitionSlice(events, part, parts)

	ref := NewPipeline(rule, nil, WithGraphReconstruction(), WithPartition(part, parts))
	ref.Ingest(Batch{Events: slice})
	ref.Close()
	want := sortedIDs(ref.FlaggedIDs())
	if len(want) == 0 {
		t.Fatal("partition flagged nothing; round-trip test is vacuous")
	}

	cut := len(slice) / 2
	p1 := NewPipeline(rule, nil, WithGraphReconstruction(), WithPartition(part, parts))
	p1.Ingest(Batch{Events: slice[:cut], LastSeq: uint64(cut)})
	snap := p1.Snapshot()
	p1.Close()
	if snap.Part != part || snap.Parts != parts {
		t.Fatalf("snapshot stamped partition %d/%d, want %d/%d", snap.Part, snap.Parts, part, parts)
	}
	if snap.Seq != uint64(cut) {
		t.Fatalf("snapshot stamped seq %d, want %d", snap.Seq, cut)
	}

	p2, resume, err := NewPipelineFromSnapshot(rule, nil, snap)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if resume != uint64(cut)+1 {
		t.Fatalf("resume seq = %d, want %d", resume, cut+1)
	}
	if gotPart, gotParts := p2.Partition(); gotPart != part || gotParts != parts {
		t.Fatalf("restored pipeline evaluates partition %d/%d, want %d/%d", gotPart, gotParts, part, parts)
	}
	p2.Ingest(Batch{Events: slice[cut:]})
	p2.Close()
	got := sortedIDs(p2.FlaggedIDs())
	if len(got) != len(want) {
		t.Fatalf("restored run flagged %d, uninterrupted flagged %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("flag sets differ at %d: %d vs %d", i, got[i], want[i])
		}
	}
}

// TestSnapshotPartitionMismatchRejected: a snapshot restores only into
// its own partition, in both directions.
func TestSnapshotPartitionMismatchRejected(t *testing.T) {
	rule := PaperRule()
	partitioned := NewPipeline(rule, nil, WithGraphReconstruction(), WithPartition(0, 2))
	snapPart := partitioned.Snapshot()
	partitioned.Close()
	plain := NewPipeline(rule, nil, WithGraphReconstruction())
	snapPlain := plain.Snapshot()
	plain.Close()

	cases := []struct {
		name string
		snap *PipelineSnapshot
		opts []PipelineOption
	}{
		{"partitioned snapshot into other partition", snapPart, []PipelineOption{WithPartition(1, 2)}},
		{"partitioned snapshot into other group size", snapPart, []PipelineOption{WithPartition(0, 3)}},
		{"unpartitioned snapshot into a partition", snapPlain, []PipelineOption{WithPartition(0, 2)}},
	}
	for _, tc := range cases {
		if _, _, err := NewPipelineFromSnapshot(rule, nil, tc.snap, tc.opts...); err == nil ||
			!strings.Contains(err.Error(), "partition") {
			t.Fatalf("%s: err = %v, want a partition mismatch", tc.name, err)
		}
	}
	// Restating the snapshot's own partition is fine.
	p, _, err := NewPipelineFromSnapshot(rule, nil, snapPart, WithPartition(0, 2))
	if err != nil {
		t.Fatalf("restate partition: %v", err)
	}
	p.Close()
}
