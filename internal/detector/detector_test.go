package detector

import (
	"testing"

	"sybilwild/internal/agents"
	"sybilwild/internal/features"
	"sybilwild/internal/osn"
	"sybilwild/internal/sim"
)

func sybilVec() features.Vector {
	return features.Vector{
		OutSent: 200, OutAccepted: 50, OutAccept: 0.25,
		Freq1h: 55, CC: 0.0005,
	}
}

func normalVec() features.Vector {
	return features.Vector{
		OutSent: 12, OutAccepted: 10, OutAccept: 0.83,
		Freq1h: 0.05, CC: 0.08,
	}
}

func TestPaperRuleSeparatesPrototypes(t *testing.T) {
	r := PaperRule()
	if !r.Classify(sybilVec()) {
		t.Fatal("prototype sybil not flagged")
	}
	if r.Classify(normalVec()) {
		t.Fatal("prototype normal flagged")
	}
}

func TestRuleRequiresAllThree(t *testing.T) {
	r := PaperRule()
	v := sybilVec()
	v.OutAccept = 0.9 // looks accepted → not flagged
	if r.Classify(v) {
		t.Fatal("flagged despite high accept ratio")
	}
	v = sybilVec()
	v.Freq1h = 1
	if r.Classify(v) {
		t.Fatal("flagged despite low frequency")
	}
	v = sybilVec()
	v.CC = 0.2
	if r.Classify(v) {
		t.Fatal("flagged despite high clustering")
	}
}

func TestMinObservedGuard(t *testing.T) {
	r := PaperRule()
	v := sybilVec()
	v.OutSent = 2
	if r.Classify(v) {
		t.Fatal("flagged an account with too few requests")
	}
}

func TestBestCutPerfectSplit(t *testing.T) {
	// Sybils below 0.3, normals above 0.7.
	var xs []sample
	for i := 0; i < 10; i++ {
		xs = append(xs, sample{0.1 + float64(i)*0.01, true})
		xs = append(xs, sample{0.8 + float64(i)*0.01, false})
	}
	cut := bestCut(xs, true)
	if cut <= 0.19 || cut >= 0.8 {
		t.Fatalf("cut = %v, want within (0.19, 0.8)", cut)
	}
	// And with sybils above.
	var ys []sample
	for i := 0; i < 10; i++ {
		ys = append(ys, sample{40 + float64(i), true})
		ys = append(ys, sample{1 + float64(i)*0.1, false})
	}
	cut = bestCut(ys, false)
	if cut <= 1.9 || cut >= 40 {
		t.Fatalf("freq cut = %v", cut)
	}
}

func TestBestCutDegenerate(t *testing.T) {
	// All one class: any cut has zero error; must not panic.
	xs := []sample{{1, true}, {2, true}}
	_ = bestCut(xs, true)
	xs = []sample{{1, false}}
	_ = bestCut(xs, false)
}

func TestFitRuleOnSyntheticData(t *testing.T) {
	ds := features.Dataset{}
	for i := 0; i < 50; i++ {
		v := sybilVec()
		v.Freq1h += float64(i % 7)
		v.OutAccept += float64(i%5) * 0.01
		ds.Vectors = append(ds.Vectors, v)
		ds.Labels = append(ds.Labels, true)
		n := normalVec()
		n.Freq1h += float64(i%3) * 0.01
		ds.Vectors = append(ds.Vectors, n)
		ds.Labels = append(ds.Labels, false)
	}
	r := FitRule(ds, PaperRule())
	c := r.Evaluate(ds)
	if c.Accuracy() != 1 {
		t.Fatalf("fitted rule accuracy = %v on separable data\nrule: %v", c.Accuracy(), r)
	}
}

func TestFrequencySweep(t *testing.T) {
	ds := features.Dataset{}
	// Sybils at 30..70/h, normals at ≤1/h.
	for i := 0; i < 40; i++ {
		ds.Vectors = append(ds.Vectors, features.Vector{Freq1h: 30 + float64(i)})
		ds.Labels = append(ds.Labels, true)
		ds.Vectors = append(ds.Vectors, features.Vector{Freq1h: float64(i%10) * 0.1})
		ds.Labels = append(ds.Labels, false)
	}
	pts := FrequencySweep(ds, []float64{10, 40, 100})
	if pts[0].TPR != 1 || pts[0].FPR != 0 {
		t.Fatalf("cut 10: %+v", pts[0])
	}
	if pts[1].TPR != 0.75 || pts[1].FPR != 0 {
		t.Fatalf("cut 40: %+v (want TPR 0.75: 30..39 missed)", pts[1])
	}
	if pts[2].TPR != 0 {
		t.Fatalf("cut 100: %+v", pts[2])
	}
}

func TestAdaptiveTracksDrift(t *testing.T) {
	a := NewAdaptive(PaperRule(), 200, 20)
	// Phase 1: classic sybils at ~55/h. Audit them in.
	for i := 0; i < 40; i++ {
		v := sybilVec()
		a.Audit(v, true)
		n := normalVec()
		a.Audit(n, false)
	}
	if !a.Classify(sybilVec()) {
		t.Fatal("phase-1 sybil missed")
	}
	// Phase 2: sybils drift down to ~8/h — below the paper's cut of 20.
	drifted := sybilVec()
	drifted.Freq1h = 8
	if a.Classify(drifted) {
		t.Fatal("drifted sybil should be missed before re-fit")
	}
	for i := 0; i < 200; i++ {
		v := drifted
		v.Freq1h = 8 + float64(i%4)
		a.Audit(v, true)
		n := normalVec()
		a.Audit(n, false)
	}
	if !a.Classify(drifted) {
		t.Fatalf("adaptive rule did not follow drift: %v", a.Rule)
	}
	// Normals still unflagged.
	if a.Classify(normalVec()) {
		t.Fatal("normal flagged after drift refit")
	}
}

func TestAdaptiveWindowBound(t *testing.T) {
	a := NewAdaptive(PaperRule(), 50, 10)
	for i := 0; i < 500; i++ {
		a.Audit(sybilVec(), true)
		a.Audit(normalVec(), false)
	}
	if a.AuditCount() > 50 {
		t.Fatalf("window exceeded: %d", a.AuditCount())
	}
}

func TestAdaptiveSingleClassNoRefit(t *testing.T) {
	a := NewAdaptive(PaperRule(), 100, 5)
	before := a.Rule
	for i := 0; i < 30; i++ {
		a.Audit(normalVec(), false)
	}
	if a.Rule != before {
		t.Fatal("rule changed with single-class audits")
	}
}

// TestMonitorOnLiveCampaign is the end-to-end integration test: run
// the full agent simulation with the real-time monitor attached and a
// ban as the flag action, then check detection quality against ground
// truth — the pipeline the paper deployed on Renren.
func TestMonitorOnLiveCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test in -short mode")
	}
	pop := agents.NewPopulation(21, agents.DefaultParams())
	pop.Bootstrap(4000)

	// Fit thresholds on a held-out pilot campaign first (the paper
	// calibrated on ground truth before deployment).
	pilot := agents.NewPopulation(22, agents.DefaultParams())
	pilot.Bootstrap(4000)
	pilot.LaunchSybils(50, 100*sim.TicksPerHour)
	pilot.RunFor(400 * sim.TicksPerHour)
	pilotDS := features.Labelled(pilot.Net, pilot.Sybils, pilot.Normals)
	rule := FitRule(pilotDS, PaperRule())

	m := NewMonitor(rule, pop.Net.Graph(), func(id osn.AccountID, at sim.Time) {
		pop.Net.Ban(id, at)
	})
	m.CheckEvery = 5
	pop.Net.RegisterObserver(m.Observe)

	pop.LaunchSybils(50, 100*sim.TicksPerHour)
	pop.RunFor(400 * sim.TicksPerHour)

	caught := 0
	for _, id := range pop.Sybils {
		if m.Flagged(id) {
			caught++
		}
	}
	fp := 0
	for _, id := range pop.Normals {
		if m.Flagged(id) {
			fp++
		}
	}
	if frac := float64(caught) / float64(len(pop.Sybils)); frac < 0.80 {
		t.Errorf("real-time detection rate = %.2f, want ≥0.80", frac)
	}
	if frac := float64(fp) / float64(len(pop.Normals)); frac > 0.02 {
		t.Errorf("real-time false positive rate = %.4f, want ≤0.02", frac)
	}
	// Bans must actually have happened.
	banned := 0
	for _, id := range pop.Sybils {
		if pop.Net.Account(id).Banned {
			banned++
		}
	}
	if banned != caught {
		t.Errorf("banned %d != flagged %d", banned, caught)
	}
}

func TestMonitorFlagsOnce(t *testing.T) {
	calls := 0
	r := Rule{OutAcceptMax: 2, FreqMin: -1, CCMax: 2, MinObserved: 0} // flags everything
	net := osn.NewNetwork()
	m := NewMonitor(r, net.Graph(), func(osn.AccountID, sim.Time) { calls++ })
	a := net.CreateAccount(osn.Female, osn.Sybil, 0)
	b := net.CreateAccount(osn.Male, osn.Normal, 0)
	c := net.CreateAccount(osn.Male, osn.Normal, 0)
	net.RegisterObserver(m.Observe)
	net.SendFriendRequest(a, b, 1)
	net.SendFriendRequest(a, c, 2)
	if calls != 1 {
		t.Fatalf("OnFlag calls = %d, want 1", calls)
	}
	if !m.Flagged(a) || m.FlaggedCount() != 1 {
		t.Fatal("flag state wrong")
	}
	if len(m.FlaggedIDs()) != 1 || m.FlaggedIDs()[0] != a {
		t.Fatal("FlaggedIDs wrong")
	}
}
