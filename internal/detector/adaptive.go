package detector

import "sybilwild/internal/features"

// Adaptive is the feedback-tuned threshold detector. The paper's
// production deployment "uses an adaptive feedback scheme to
// dynamically tune threshold parameters on the fly" (§2.3, details
// withheld for confidentiality); this is one concrete instantiation:
// a rolling window of audited (manually labelled) samples is kept, and
// the thresholds are re-fit by decision stump whenever enough new
// audits arrive.
//
// The important property this preserves from the paper is robustness
// to behaviour drift: if Sybils lower their invitation rates, the
// frequency cut follows them down as audited examples accumulate.
type Adaptive struct {
	Rule Rule // current thresholds

	window    int
	refitEach int
	pending   int
	samples   []auditSample
}

type auditSample struct {
	v     features.Vector
	sybil bool
}

// NewAdaptive starts from a seed rule, keeps the last `window` audited
// samples, and re-fits after every `refitEach` new audits.
func NewAdaptive(seed Rule, window, refitEach int) *Adaptive {
	if window < 10 {
		window = 10
	}
	if refitEach < 1 {
		refitEach = 1
	}
	return &Adaptive{Rule: seed, window: window, refitEach: refitEach}
}

// Classify applies the current thresholds.
func (a *Adaptive) Classify(v features.Vector) bool { return a.Rule.Classify(v) }

// NeedsCC applies the current thresholds' CC gate (CCGated).
func (a *Adaptive) NeedsCC(v features.Vector) bool { return a.Rule.NeedsCC(v) }

// Audit records a ground-truth labelled sample (e.g. the verdict of
// Renren's human verification team on a flagged account) and re-fits
// the thresholds when due.
func (a *Adaptive) Audit(v features.Vector, isSybil bool) {
	a.samples = append(a.samples, auditSample{v: v, sybil: isSybil})
	if len(a.samples) > a.window {
		a.samples = a.samples[len(a.samples)-a.window:]
	}
	a.pending++
	if a.pending >= a.refitEach {
		a.refit()
		a.pending = 0
	}
}

// AuditCount returns the number of samples currently in the window.
func (a *Adaptive) AuditCount() int { return len(a.samples) }

func (a *Adaptive) refit() {
	// Need both classes present to fit anything meaningful.
	var nSyb int
	for _, s := range a.samples {
		if s.sybil {
			nSyb++
		}
	}
	if nSyb == 0 || nSyb == len(a.samples) {
		return
	}
	ds := features.Dataset{
		Vectors: make([]features.Vector, len(a.samples)),
		Labels:  make([]bool, len(a.samples)),
	}
	for i, s := range a.samples {
		ds.Vectors[i] = s.v
		ds.Labels[i] = s.sybil
	}
	a.Rule = FitRule(ds, a.Rule)
}
