package detector

import (
	"encoding/json"
	"strings"
	"testing"

	"sybilwild/internal/features"
	"sybilwild/internal/osn"
)

// idOwnedBy returns an account id that osn.Partition assigns to part
// of parts (and, when avoidParts > 0, that avoidPart of avoidParts
// does NOT own — for building cross-shape fixtures).
func idOwnedBy(t *testing.T, part, parts int) osn.AccountID {
	t.Helper()
	for id := osn.AccountID(1); id < 1<<16; id++ {
		if osn.Partition(id, parts) == part {
			return id
		}
	}
	t.Fatalf("no account id found for partition %d/%d", part, parts)
	return 0
}

// TestRebalanceSnapshotsLiveEquivalence is the detector half of the
// live-rebalance acceptance property: cut a K-way partitioned
// campaign at a barrier, re-key the K snapshots into K', restore K'
// pipelines and finish the feed partitioned the new way — the union
// of flags must equal the uninterrupted single run, each verdict
// emitted exactly once by the account's new owner.
func TestRebalanceSnapshotsLiveEquivalence(t *testing.T) {
	pop := campaignLog(t, 61)
	events := pop.Net.Events()
	rule := FitRule(features.Labelled(pop.Net, pop.Sybils, pop.Normals), PaperRule())

	single := NewPipeline(rule, nil, WithGraphReconstruction())
	single.Ingest(Batch{Events: events})
	single.Close()
	want := sortedIDs(single.FlaggedIDs())
	if len(want) == 0 {
		t.Fatal("single pipeline flagged nothing; equivalence test is vacuous")
	}

	cut := len(events) / 2
	for _, c := range []struct{ from, to int }{{3, 5}, {4, 2}} {
		// Phase 1: the old cluster runs to the barrier and snapshots.
		snaps := make([]*PipelineSnapshot, c.from)
		for part := 0; part < c.from; part++ {
			p := NewPipeline(rule, nil, WithGraphReconstruction(), WithPartition(part, c.from))
			p.Ingest(Batch{Events: partitionSlice(events[:cut], part, c.from), LastSeq: uint64(cut)})
			snaps[part] = p.Snapshot()
			p.Close()
		}

		out, err := RebalanceSnapshots(snaps, c.to)
		if err != nil {
			t.Fatalf("%d->%d: %v", c.from, c.to, err)
		}
		if len(out) != c.to {
			t.Fatalf("%d->%d: got %d snapshots", c.from, c.to, len(out))
		}

		// Union preservation: every account owned somewhere in the old
		// shape appears exactly once across the new shape.
		owned := make(map[osn.AccountID]bool)
		for _, s := range snaps {
			for _, a := range s.Accounts {
				if osn.Partition(a.State.ID, c.from) == s.Part {
					owned[a.State.ID] = true
				}
			}
		}
		moved := make(map[osn.AccountID]int)
		for _, s := range out {
			for _, a := range s.Accounts {
				if osn.Partition(a.State.ID, c.to) != s.Part {
					t.Fatalf("%d->%d: account %d landed in partition %d it does not belong to",
						c.from, c.to, a.State.ID, s.Part)
				}
				moved[a.State.ID]++
			}
		}
		if len(moved) != len(owned) {
			t.Fatalf("%d->%d: %d accounts before re-key, %d after", c.from, c.to, len(owned), len(moved))
		}
		for id, n := range moved {
			if n != 1 || !owned[id] {
				t.Fatalf("%d->%d: account %d present %d times (owned before: %v)", c.from, c.to, id, n, owned[id])
			}
		}

		// Phase 2: the new cluster adopts the snapshots and finishes
		// the feed partitioned the new way.
		union := make(map[osn.AccountID]int)
		for _, snap := range out {
			if snap.Seq != uint64(cut) {
				t.Fatalf("%d->%d: output stamped seq %d, want barrier %d", c.from, c.to, snap.Seq, cut)
			}
			p2, resume, err := NewPipelineFromSnapshot(rule, nil, snap)
			if err != nil {
				t.Fatalf("%d->%d: restore partition %d/%d: %v", c.from, c.to, snap.Part, snap.Parts, err)
			}
			if resume != uint64(cut)+1 {
				t.Fatalf("%d->%d: resume = %d, want %d", c.from, c.to, resume, cut+1)
			}
			part, parts := p2.Partition()
			p2.Ingest(Batch{Events: partitionSlice(events[cut:], part, parts)})
			p2.Close()
			for _, id := range p2.FlaggedIDs() {
				if parts > 0 && osn.Partition(id, parts) != part {
					t.Fatalf("%d->%d: partition %d flagged foreign account %d", c.from, c.to, part, id)
				}
				union[id]++
			}
		}
		got := make([]osn.AccountID, 0, len(union))
		for id, n := range union {
			if n != 1 {
				t.Fatalf("%d->%d: account %d flagged by %d new partitions", c.from, c.to, id, n)
			}
			got = append(got, id)
		}
		got = sortedIDs(got)
		if len(got) != len(want) {
			t.Fatalf("%d->%d: union flagged %d accounts, single run flagged %d", c.from, c.to, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%d->%d: flag sets differ at %d: %d vs %d", c.from, c.to, i, got[i], want[i])
			}
		}
	}
}

// TestRebalanceSplitMergeRoundTrip: splitting a campaign K ways and
// merging back to one snapshot reproduces the unpartitioned
// pipeline's snapshot byte for byte — the owner's copy of every
// account carries the account's complete counters (any event touching
// an account is also delivered to its owner), so no state is lost to
// the support copies the split drops.
func TestRebalanceSplitMergeRoundTrip(t *testing.T) {
	pop := campaignLog(t, 67)
	events := pop.Net.Events()
	rule := FitRule(features.Labelled(pop.Net, pop.Sybils, pop.Normals), PaperRule())
	cut := len(events) * 2 / 3
	const shards = 2

	whole := NewPipeline(rule, nil, WithGraphReconstruction(), WithShards(shards))
	whole.Ingest(Batch{Events: events[:cut], LastSeq: uint64(cut)})
	wantSnap := whole.Snapshot()
	whole.Close()
	wantJSON, err := json.Marshal(wantSnap)
	if err != nil {
		t.Fatal(err)
	}

	for _, k := range []int{2, 4} {
		snaps := make([]*PipelineSnapshot, k)
		for part := 0; part < k; part++ {
			p := NewPipeline(rule, nil, WithGraphReconstruction(), WithShards(shards), WithPartition(part, k))
			p.Ingest(Batch{Events: partitionSlice(events[:cut], part, k), LastSeq: uint64(cut)})
			snaps[part] = p.Snapshot()
			p.Close()
		}
		merged, err := RebalanceSnapshots(snaps, 1)
		if err != nil {
			t.Fatalf("k=%d: merge: %v", k, err)
		}
		if len(merged) != 1 || merged[0].Part != 0 || merged[0].Parts != 0 {
			t.Fatalf("k=%d: merge-all must produce one unpartitioned snapshot, got %d stamped %d/%d",
				k, len(merged), merged[0].Part, merged[0].Parts)
		}
		gotJSON, err := json.Marshal(merged[0])
		if err != nil {
			t.Fatal(err)
		}
		if string(gotJSON) != string(wantJSON) {
			t.Fatalf("k=%d: split∘merge is not the identity: merged snapshot differs from the unpartitioned run's\nmerged: %d bytes\nwhole:  %d bytes",
				k, len(gotJSON), len(wantJSON))
		}
		// The merged form restores as an unpartitioned pipeline —
		// including under the normalized WithPartition(0, 1) spelling.
		p, resume, err := NewPipelineFromSnapshot(rule, nil, merged[0], WithPartition(0, 1))
		if err != nil {
			t.Fatalf("k=%d: restore merged: %v", k, err)
		}
		if resume != uint64(cut)+1 {
			t.Fatalf("k=%d: merged resume = %d, want %d", k, resume, cut+1)
		}
		p.Close()
	}
}

// TestRebalanceIdentity: K' == K re-keys every verdict and every
// owned account back to its current partition and drops only the
// foreign support copies.
func TestRebalanceIdentity(t *testing.T) {
	const k = 3
	seq := uint64(500)
	owned := make([]osn.AccountID, k)
	for p := 0; p < k; p++ {
		owned[p] = idOwnedBy(t, p, k)
	}
	snaps := make([]*PipelineSnapshot, k)
	for p := 0; p < k; p++ {
		accs := []AccountSnapshot{{State: features.AccountState{ID: owned[p], OutSent: p + 1}, Seen: p}}
		// A foreign support copy of another partition's account, as a
		// real partitioned pipeline would hold.
		accs = append(accs, AccountSnapshot{State: features.AccountState{ID: owned[(p+1)%k], InReceived: 9}})
		snaps[p] = &PipelineSnapshot{
			Version: SnapshotVersion, Seq: seq, Shards: 1, Part: p, Parts: k,
			Accounts: accs,
			Flags:    []Flag{{ID: owned[p], At: 7}},
		}
	}
	out, err := RebalanceSnapshots(snaps, k)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < k; p++ {
		s := out[p]
		if s.Part != p || s.Parts != k || s.Seq != seq {
			t.Fatalf("partition %d restamped as %d/%d seq %d", p, s.Part, s.Parts, s.Seq)
		}
		if len(s.Accounts) != 1 || s.Accounts[0].State.ID != owned[p] ||
			s.Accounts[0].State.OutSent != p+1 || s.Accounts[0].Seen != p {
			t.Fatalf("partition %d accounts after identity re-key: %+v", p, s.Accounts)
		}
		if len(s.Flags) != 1 || s.Flags[0].ID != owned[p] {
			t.Fatalf("partition %d flags after identity re-key: %+v", p, s.Flags)
		}
	}
}

// TestRebalanceCrossPartitionFlag: a verdict may sit in one source
// snapshot while the account's counters sit in another (the flag rode
// an earlier shape's ownership); the merge pools both and the account
// arrives at its new owner whole — state and verdict together.
func TestRebalanceCrossPartitionFlag(t *testing.T) {
	const k = 2
	seq := uint64(42)
	id := idOwnedBy(t, 0, k)
	snaps := []*PipelineSnapshot{
		{Version: SnapshotVersion, Seq: seq, Parts: k, Part: 0,
			Accounts: []AccountSnapshot{{State: features.AccountState{ID: id, OutSent: 3}}}},
		{Version: SnapshotVersion, Seq: seq, Parts: k, Part: 1,
			Flags: []Flag{{ID: id, At: 5}}},
	}
	for _, to := range []int{1, 3} {
		out, err := RebalanceSnapshots(snaps, to)
		if err != nil {
			t.Fatalf("to=%d: %v", to, err)
		}
		np := osn.Partition(id, to)
		if to == 1 {
			np = 0
		}
		s := out[np]
		if len(s.Accounts) != 1 || s.Accounts[0].State.ID != id {
			t.Fatalf("to=%d: account state did not land with its new owner: %+v", to, s.Accounts)
		}
		if len(s.Flags) != 1 || s.Flags[0].ID != id {
			t.Fatalf("to=%d: flag did not land with its new owner: %+v", to, s.Flags)
		}
		for p, other := range out {
			if p == int(np) {
				continue
			}
			if len(other.Accounts) != 0 || len(other.Flags) != 0 {
				t.Fatalf("to=%d: partition %d holds strays: %+v %+v", to, p, other.Accounts, other.Flags)
			}
		}
	}
}

// TestRebalanceRejectsMixedSets: inputs that are not one campaign's
// complete partition cut must be refused, not silently merged.
func TestRebalanceRejectsMixedSets(t *testing.T) {
	const k = 2
	id0, id1 := idOwnedBy(t, 0, k), idOwnedBy(t, 1, k)
	mk := func(part int, seq uint64) *PipelineSnapshot {
		return &PipelineSnapshot{Version: SnapshotVersion, Seq: seq, Parts: k, Part: part}
	}
	cases := []struct {
		name  string
		snaps []*PipelineSnapshot
		to    int
		want  string
	}{
		{"empty set", nil, 2, "at least one"},
		{"zero target", []*PipelineSnapshot{mk(0, 9), mk(1, 9)}, 0, "into 0 partitions"},
		{"nil snapshot", []*PipelineSnapshot{mk(0, 9), nil}, 2, "nil snapshot"},
		{"mixed barriers", []*PipelineSnapshot{mk(0, 9), mk(1, 10)}, 2, "mixed barriers"},
		{"duplicate partition", []*PipelineSnapshot{mk(0, 9), mk(0, 9)}, 2, "two snapshots"},
		{"wrong group stamp", []*PipelineSnapshot{mk(0, 9),
			{Version: SnapshotVersion, Seq: 9, Parts: 3, Part: 1}}, 2, "in a set of"},
		{"unpartitioned in a set", []*PipelineSnapshot{mk(0, 9),
			{Version: SnapshotVersion, Seq: 9}}, 2, "in a set of"},
		{"version mismatch", []*PipelineSnapshot{mk(0, 9),
			{Version: SnapshotVersion + 1, Seq: 9, Parts: k, Part: 1}}, 2, "version"},
		{"mixed cadence", []*PipelineSnapshot{mk(0, 9),
			{Version: SnapshotVersion, Seq: 9, Parts: k, Part: 1, CheckEvery: 4}}, 2, "cadence"},
		{"duplicate verdicts", []*PipelineSnapshot{
			{Version: SnapshotVersion, Seq: 9, Parts: k, Part: 0, Flags: []Flag{{ID: id0}}},
			{Version: SnapshotVersion, Seq: 9, Parts: k, Part: 1, Flags: []Flag{{ID: id0}}},
		}, 2, "flagged in more than one"},
	}
	_ = id1
	for _, tc := range cases {
		_, err := RebalanceSnapshots(tc.snaps, tc.to)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}
