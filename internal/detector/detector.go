// Package detector implements the paper's primary contribution: a
// measurement-calibrated, threshold-based real-time Sybil detector
// (§2.3), together with the adaptive threshold tuning the production
// deployment used and evaluation helpers.
//
// The published rule flags an account as a Sybil when its
// outgoing-request accept ratio, its invitation frequency, and its
// first-50-friends clustering coefficient all fall on the Sybil side
// of their thresholds. (The arXiv text prints the frequency condition
// as "frequency < 20", which contradicts Figure 1's finding that high
// frequency indicates Sybils; we follow the figure's semantics:
// frequency above threshold is Sybil-like.)
package detector

import (
	"fmt"

	"sybilwild/internal/features"
	"sybilwild/internal/stats"
)

// Rule is the three-feature conjunctive threshold classifier of §2.3.
// An account is flagged as Sybil when ALL of:
//
//	OutAccept < OutAcceptMax  ∧  Freq1h > FreqMin  ∧  CC < CCMax
//
// MinObserved guards the accept-ratio term: accounts with fewer
// outgoing requests than MinObserved are never flagged (their ratio is
// statistically meaningless, and flagging fresh accounts would be all
// false positives).
type Rule struct {
	OutAcceptMax float64
	FreqMin      float64
	CCMax        float64
	MinObserved  int
}

// PaperRule returns the thresholds printed in the paper. Note the cc
// threshold is calibrated to Renren's 120M-user graph; on the smaller
// simulated graphs the adaptive tuner (or FitRule) finds the
// scale-appropriate value.
func PaperRule() Rule {
	return Rule{OutAcceptMax: 0.5, FreqMin: 20, CCMax: 0.01, MinObserved: 5}
}

// Classify reports whether the rule flags v as a Sybil.
func (r Rule) Classify(v features.Vector) bool {
	if v.OutSent < r.MinObserved {
		return false
	}
	return v.OutAccept < r.OutAcceptMax && v.Freq1h > r.FreqMin && v.CC < r.CCMax
}

// NeedsCC reports whether the clustering coefficient can change the
// verdict for v (CCGated). Because the rule is a pure conjunction, CC
// only matters once every counter-derived term is already on the Sybil
// side; otherwise Classify is false for any CC.
func (r Rule) NeedsCC(v features.Vector) bool {
	return v.OutSent >= r.MinObserved && v.OutAccept < r.OutAcceptMax && v.Freq1h > r.FreqMin
}

// String renders the rule like the paper does.
func (r Rule) String() string {
	return fmt.Sprintf("outAccept < %.2f ∧ freq > %.1f/h ∧ cc < %.4g (min %d requests)",
		r.OutAcceptMax, r.FreqMin, r.CCMax, r.MinObserved)
}

// Evaluate runs the rule over a labelled dataset and returns the
// confusion matrix in the paper's Table 1 layout.
func (r Rule) Evaluate(ds features.Dataset) stats.Confusion {
	var c stats.Confusion
	for i, v := range ds.Vectors {
		c.Observe(ds.Labels[i], r.Classify(v))
	}
	return c
}

// FitRule learns the three thresholds from labelled data by fitting a
// decision stump per feature (the cut minimizing misclassifications
// for that feature alone) and keeping MinObserved from the seed rule.
// This is the offline analogue of what the adaptive scheme does
// online, and is how the rule transfers across graph scales.
func FitRule(ds features.Dataset, seed Rule) Rule {
	var out, freq, cc []sample
	for i, v := range ds.Vectors {
		if v.OutSent < seed.MinObserved {
			continue
		}
		out = append(out, sample{v.OutAccept, ds.Labels[i]})
		freq = append(freq, sample{v.Freq1h, ds.Labels[i]})
		cc = append(cc, sample{v.CC, ds.Labels[i]})
	}
	r := seed
	if len(out) > 0 {
		// Sybil side is below for OutAccept and CC, above for Freq.
		r.OutAcceptMax = bestCut(out, true)
		r.FreqMin = bestCut(freq, false)
		r.CCMax = bestCut(cc, true)
	}
	return r
}

type sample struct {
	x     float64
	sybil bool
}

// bestCut finds the threshold minimizing 1-D misclassification error.
// If sybilBelow, values < cut are classified Sybil; otherwise values >
// cut are.
func bestCut(xs []sample, sybilBelow bool) float64 {
	sorted := append([]sample(nil), xs...)
	// Insertion sort by x: datasets are small (ground truth ~2000).
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j].x < sorted[j-1].x; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	totalSybil := 0
	for _, s := range sorted {
		if s.sybil {
			totalSybil++
		}
	}
	totalNormal := len(sorted) - totalSybil

	// Sweep cut positions between consecutive distinct values.
	// below[i] = counts among sorted[0..i).
	bestErr := len(sorted) + 1
	bestCut := 0.0
	sybBelow, normBelow := 0, 0
	consider := func(cut float64) {
		var errs int
		if sybilBelow {
			// Sybil iff x < cut: errors = normals below + sybils at/above.
			errs = normBelow + (totalSybil - sybBelow)
		} else {
			// Sybil iff x > cut: errors = sybils at/below + normals above.
			errs = sybBelow + (totalNormal - normBelow)
		}
		if errs < bestErr {
			bestErr = errs
			bestCut = cut
		}
	}
	consider(sorted[0].x) // cut below everything
	for i := 0; i < len(sorted); i++ {
		if sorted[i].sybil {
			sybBelow++
		} else {
			normBelow++
		}
		if i+1 < len(sorted) {
			if sorted[i+1].x != sorted[i].x {
				consider((sorted[i].x + sorted[i+1].x) / 2)
			}
		} else {
			consider(sorted[i].x + 1)
		}
	}
	return bestCut
}

// FrequencySweep evaluates a frequency-only detector (Sybil iff
// Freq1h ≥ cut) at each candidate cut, returning (TPR, FPR) pairs —
// the data behind the paper's "40 requests/hour catches ≈70% of Sybils
// with no false positives" claim.
type SweepPoint struct {
	Cut float64
	TPR float64
	FPR float64
}

// FrequencySweep computes detection/false-positive rates for a range
// of frequency-only thresholds.
func FrequencySweep(ds features.Dataset, cuts []float64) []SweepPoint {
	out := make([]SweepPoint, 0, len(cuts))
	for _, cut := range cuts {
		var c stats.Confusion
		for i, v := range ds.Vectors {
			c.Observe(ds.Labels[i], v.Freq1h >= cut)
		}
		out = append(out, SweepPoint{Cut: cut, TPR: c.TPR(), FPR: c.FPR()})
	}
	return out
}
