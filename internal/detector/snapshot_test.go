package detector

import (
	"encoding/json"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"

	"sybilwild/internal/features"
	"sybilwild/internal/graph"
	"sybilwild/internal/osn"
	"sybilwild/internal/sim"
)

// graphSnapshotEmpty is a valid zero-account reconstructed graph,
// used to reach restore's state validation in isolation.
var graphSnapshotEmpty = graph.Snapshot{}

// feedChunks feeds events through sequenced Ingest batches in fixed-size
// chunks, stamping a synthetic 1-based stream sequence, and returns
// the last sequence applied.
func feedChunks(p *Pipeline, events []osn.Event, chunk int) uint64 {
	seq := uint64(0)
	for i := 0; i < len(events); i += chunk {
		end := i + chunk
		if end > len(events) {
			end = len(events)
		}
		seq += uint64(end - i)
		p.Ingest(Batch{Events: events[i:end], LastSeq: seq})
	}
	return seq
}

func requireSameFlags(t *testing.T, label string, got, want []osn.AccountID) {
	t.Helper()
	got, want = sortedIDs(got), sortedIDs(want)
	if len(want) == 0 {
		t.Fatalf("%s: reference flagged nothing; test is vacuous", label)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: flag sets diverge:\n got %v\nwant %v", label, got, want)
	}
}

// TestSnapshotRestoreContinuesExactly is the tentpole's core property:
// cut a snapshot mid-stream, restore it into a fresh pipeline, feed
// the remainder, and the flag set must equal both an uninterrupted
// pipeline run and the serial Monitor replay. Static-graph mode, so
// the Monitor comparison is exact.
func TestSnapshotRestoreContinuesExactly(t *testing.T) {
	pop := campaignLog(t, 61)
	events := pop.Net.Events()
	g := pop.Net.Graph()
	rule := FitRule(features.Labelled(pop.Net, pop.Sybils, pop.Normals), PaperRule())

	m := NewMonitor(rule, g, nil)
	m.CheckEvery = 3
	for _, ev := range events {
		m.Observe(ev)
	}

	full := NewPipeline(rule, g, WithShards(4), WithCheckEvery(3))
	feedChunks(full, events, 97)
	full.Close()
	requireSameFlags(t, "uninterrupted vs monitor", full.FlaggedIDs(), m.FlaggedIDs())

	for _, cutFrac := range []int{4, 2} {
		cut := len(events) / cutFrac
		p1 := NewPipeline(rule, g, WithShards(4), WithCheckEvery(3))
		seq := feedChunks(p1, events[:cut], 97)
		snap := p1.Snapshot()
		p1.Close() // the "crash": p1's in-memory state is discarded

		if snap.Seq != seq {
			t.Fatalf("cut 1/%d: snapshot stamped seq %d, applied %d", cutFrac, snap.Seq, seq)
		}
		p2, resume, err := NewPipelineFromSnapshot(rule, g, snap)
		if err != nil {
			t.Fatal(err)
		}
		if resume != seq+1 {
			t.Fatalf("cut 1/%d: resume sequence %d, want %d", cutFrac, resume, seq+1)
		}
		for i := cut; i < len(events); i += 97 {
			end := i + 97
			if end > len(events) {
				end = len(events)
			}
			p2.Ingest(Batch{Events: events[i:end]})
		}
		p2.Close()
		requireSameFlags(t, fmt.Sprintf("restored at 1/%d vs monitor", cutFrac), p2.FlaggedIDs(), m.FlaggedIDs())
		if p2.Tracked() != full.Tracked() {
			t.Fatalf("cut 1/%d: restored run tracks %d accounts, uninterrupted %d", cutFrac, p2.Tracked(), full.Tracked())
		}
	}
}

// TestSnapshotRestoreGraphReconstruction: in reconstruction mode the
// snapshot carries the rebuilt graph; the restored pipeline must end
// the stream with a graph identical to the uninterrupted run's and
// the same flags.
func TestSnapshotRestoreGraphReconstruction(t *testing.T) {
	pop := campaignLog(t, 73)
	events := pop.Net.Events()
	rule := Rule{OutAcceptMax: 0.5, FreqMin: 20, CCMax: 0.05, MinObserved: 10}

	full := NewPipeline(rule, nil, WithShards(4), WithGraphReconstruction())
	feedChunks(full, events, 64)
	full.Close()

	cut := len(events) / 3
	p1 := NewPipeline(rule, nil, WithShards(4), WithGraphReconstruction())
	feedChunks(p1, events[:cut], 64)
	snap := p1.Snapshot()
	p1.Close()
	if snap.Graph == nil {
		t.Fatal("reconstruction-mode snapshot has no graph")
	}

	p2, _, err := NewPipelineFromSnapshot(rule, nil, snap)
	if err != nil {
		t.Fatal(err)
	}
	p2.Ingest(Batch{Events: events[cut:]})
	p2.Close()

	if !p2.Graph().Equal(full.Graph()) {
		t.Fatal("restored run's reconstructed graph diverged from uninterrupted run's")
	}
	requireSameFlags(t, "restored reconstruction run", p2.FlaggedIDs(), full.FlaggedIDs())
}

// TestSnapshotRoundTripThroughJSON: a snapshot must survive its real
// serialization format byte-for-byte — restore from decoded JSON, cut
// a second snapshot immediately, and the two encodings must be
// identical (deterministic ordering included).
func TestSnapshotRoundTripThroughJSON(t *testing.T) {
	pop := campaignLog(t, 89)
	p := NewPipeline(Rule{OutAcceptMax: 0.5, FreqMin: 20, CCMax: 0.05, MinObserved: 10}, nil,
		WithShards(5), WithGraphReconstruction(), WithCheckEvery(2))
	feedChunks(p, pop.Net.Events(), 128)
	snap := p.Snapshot()
	p.Close()

	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var decoded PipelineSnapshot
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	p2, _, err := NewPipelineFromSnapshot(Rule{OutAcceptMax: 0.5, FreqMin: 20, CCMax: 0.05, MinObserved: 10}, nil, &decoded)
	if err != nil {
		t.Fatal(err)
	}
	snap2 := p2.Snapshot()
	p2.Close()
	data2, err := json.Marshal(snap2)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatal("snapshot → restore → snapshot is not byte-identical")
	}
}

// TestRestoreShardOverride: restoring under a different WithShards
// value — a restart-time reshard — must not change any verdict.
func TestRestoreShardOverride(t *testing.T) {
	pop := campaignLog(t, 97)
	events := pop.Net.Events()
	g := pop.Net.Graph()
	rule := FitRule(features.Labelled(pop.Net, pop.Sybils, pop.Normals), PaperRule())

	full := NewPipeline(rule, g, WithShards(4))
	feedChunks(full, events, 100)
	full.Close()

	cut := len(events) / 2
	p1 := NewPipeline(rule, g, WithShards(4))
	feedChunks(p1, events[:cut], 100)
	snap := p1.Snapshot()
	p1.Close()
	if snap.Shards != 4 {
		t.Fatalf("snapshot shard count %d, want 4", snap.Shards)
	}

	for _, n := range []int{1, 3, 9} {
		p2, _, err := NewPipelineFromSnapshot(rule, g, snap, WithShards(n))
		if err != nil {
			t.Fatal(err)
		}
		if p2.NumShards() != n {
			t.Fatalf("restored with %d shards, want %d", p2.NumShards(), n)
		}
		p2.Ingest(Batch{Events: events[cut:]})
		p2.Close()
		requireSameFlags(t, fmt.Sprintf("restore into %d shards", n), p2.FlaggedIDs(), full.FlaggedIDs())
	}
}

// TestReshardEquivalence is the live-elasticity acceptance check:
// resharding mid-trace — repeatedly, up and down — must flag exactly
// what a fixed-shard run flags, keep earlier verdicts visible, and
// leave per-account counters identical.
func TestReshardEquivalence(t *testing.T) {
	pop := campaignLog(t, 53)
	events := pop.Net.Events()
	g := pop.Net.Graph()
	rule := FitRule(features.Labelled(pop.Net, pop.Sybils, pop.Normals), PaperRule())

	fixed := NewPipeline(rule, g, WithShards(4), WithCheckEvery(2))
	feedChunks(fixed, events, 83)
	fixed.Close()

	elastic := NewPipeline(rule, g, WithShards(4), WithCheckEvery(2))
	plan := []int{2, 7, 1, 5} // reshard after each quarter of the trace
	quarter := len(events) / 4
	for i, n := range plan {
		lo, hi := i*quarter, (i+1)*quarter
		if i == len(plan)-1 {
			hi = len(events)
		}
		for j := lo; j < hi; j += 83 {
			end := j + 83
			if end > hi {
				end = hi
			}
			elastic.Ingest(Batch{Events: events[j:end]})
		}
		before := elastic.FlaggedCount()
		elastic.Reshard(n)
		if elastic.NumShards() != n {
			t.Fatalf("after Reshard(%d): NumShards = %d", n, elastic.NumShards())
		}
		if elastic.FlaggedCount() < before {
			t.Fatalf("Reshard(%d) lost flags: %d -> %d", n, before, elastic.FlaggedCount())
		}
	}
	elastic.Close()
	requireSameFlags(t, "elastic vs fixed", elastic.FlaggedIDs(), fixed.FlaggedIDs())
	if elastic.Tracked() != fixed.Tracked() {
		t.Fatalf("elastic tracks %d accounts, fixed %d", elastic.Tracked(), fixed.Tracked())
	}
}

// TestSnapshotFlushesFlagHooks: by the time Snapshot returns, every
// verdict it contains has been recorded globally and had its hook
// fired — the ordering that lets a checkpointer persist and
// acknowledge the snapshot without risking a hook delivery lost to a
// crash (restore never re-fires hooks).
func TestSnapshotFlushesFlagHooks(t *testing.T) {
	var fired atomic.Int64
	p := NewPipeline(flagAll{}, nil, WithShards(4), WithGraphReconstruction(),
		WithFlagHook(func(Flag) { fired.Add(1) }))
	for i := 0; i < 30; i++ {
		p.Observe(osn.Event{Type: osn.EvFriendRequest, At: sim.Time(i), Actor: osn.AccountID(i), Target: osn.AccountID(100 + i)})
	}
	snap := p.Snapshot()
	if len(snap.Flags) != 30 {
		t.Fatalf("snapshot holds %d flags, want 30", len(snap.Flags))
	}
	if got := fired.Load(); got != 30 {
		t.Fatalf("snapshot returned with only %d of 30 hooks fired", got)
	}
	if p.FlaggedCount() != 30 {
		t.Fatalf("snapshot returned with only %d of 30 flags recorded", p.FlaggedCount())
	}
	p.Close()
}

// TestReshardNoops: invalid and identical shard counts leave the
// pipeline untouched and running.
func TestReshardNoops(t *testing.T) {
	p := NewPipeline(flagAll{}, nil, WithShards(3), WithGraphReconstruction())
	p.Observe(osn.Event{Type: osn.EvFriendRequest, At: 1, Actor: 1, Target: 2})
	p.Reshard(0)
	p.Reshard(-2)
	p.Reshard(3)
	if p.NumShards() != 3 {
		t.Fatalf("no-op reshard changed shard count to %d", p.NumShards())
	}
	p.Observe(osn.Event{Type: osn.EvFriendRequest, At: 2, Actor: 1, Target: 3})
	p.Close()
	if !p.Flagged(1) {
		t.Fatal("pipeline stopped flagging after no-op reshards")
	}
}

// TestRestoreRejectsBadSnapshots: version skew, missing graph, and
// duplicate state must fail loudly.
func TestRestoreRejectsBadSnapshots(t *testing.T) {
	if _, _, err := NewPipelineFromSnapshot(flagAll{}, nil, &PipelineSnapshot{Version: 99, Shards: 2}); err == nil {
		t.Fatal("version skew accepted")
	}
	if _, _, err := NewPipelineFromSnapshot(flagAll{}, nil,
		&PipelineSnapshot{Version: SnapshotVersion, Shards: 2}); err == nil {
		t.Fatal("snapshot without graph accepted despite nil static graph")
	}
	dup := &PipelineSnapshot{
		Version: SnapshotVersion, Shards: 2,
		Accounts: []AccountSnapshot{
			{State: features.AccountState{ID: 5, OutSent: 1}},
			{State: features.AccountState{ID: 5, OutSent: 2}},
		},
		Graph: &graphSnapshotEmpty,
	}
	if _, _, err := NewPipelineFromSnapshot(flagAll{}, nil, dup); err == nil {
		t.Fatal("duplicate account state accepted")
	}
}
