package detector

import (
	"fmt"
	"sort"

	"sybilwild/internal/features"
	"sybilwild/internal/graph"
	"sybilwild/internal/osn"
)

// This file is the durability and elasticity layer of the Pipeline:
// consistent snapshots (barrier through every shard), restore
// (NewPipelineFromSnapshot), and live resharding (Reshard). All three
// share one mechanism — a barrier message that makes each shard
// serialize its partition at a consistent point in its event order —
// and one serialized form, the flat account list, which is
// partition-agnostic: restoring it under a different shard count *is*
// resharding.
//
// Concurrency contract: Snapshot and Reshard must not overlap
// Ingest/Observe calls or each other (quiesce producers first;
// a single-goroutine consumer loop, like cmd/detectd's, just calls
// them inline between batches). They must be called before Close.
// Flagged/FlaggedCount remain safe to call from anywhere throughout.

// SnapshotVersion identifies the PipelineSnapshot schema. Bump it on
// any incompatible change so a restore of an old checkpoint fails
// loudly instead of misreading counters.
const SnapshotVersion = 1

// AccountSnapshot is one account's complete detector state: its
// behavioural counters plus the check-cadence position (how many of
// its requests have been seen, mod CheckEvery evaluation is due).
// Verdicts live separately in PipelineSnapshot.Flags.
type AccountSnapshot struct {
	State features.AccountState `json:"state"`
	Seen  int                   `json:"seen,omitempty"`
}

// PipelineSnapshot is a consistent, serializable image of a running
// Pipeline, stamped with the highest stream sequence applied before
// the cut. Restoring it and resuming the feed from Seq+1 reproduces
// the uninterrupted run exactly.
type PipelineSnapshot struct {
	Version int    `json:"version"`
	Seq     uint64 `json:"seq"`
	Shards  int    `json:"shards"`
	// Part/Parts record the cluster partition the pipeline evaluated
	// (WithPartition); zero Parts means an unpartitioned run. A
	// snapshot is only restorable into the same partition — its
	// counters cover exactly that slice of the feed.
	Part       int               `json:"part,omitempty"`
	Parts      int               `json:"parts,omitempty"`
	CheckEvery int               `json:"check_every"`
	Accounts   []AccountSnapshot `json:"accounts"`
	Flags      []Flag            `json:"flags,omitempty"`
	// Graph is non-nil exactly when the pipeline owns a reconstructed
	// graph (WithGraphReconstruction); a caller-provided static graph
	// is the caller's to keep.
	Graph *graph.Snapshot `json:"graph,omitempty"`
}

// shardPart is one shard's serialized partition, produced at the
// barrier point inside the shard goroutine (so shards serialize in
// parallel and never race their own counters).
type shardPart struct {
	accounts []AccountSnapshot
	flags    []Flag
}

// serialize captures the shard's partition. Runs on the shard
// goroutine, between two events.
func (s *pshard) serialize() shardPart {
	states := s.tr.Export()
	part := shardPart{accounts: make([]AccountSnapshot, len(states))}
	for i, st := range states {
		var seen int
		if h, ok := s.tr.HandleOf(st.ID); ok && int(h) < len(s.seen) {
			seen = int(s.seen[h])
		}
		part.accounts[i] = AccountSnapshot{State: st, Seen: seen}
	}
	part.flags = make([]Flag, 0, len(s.flagged))
	for _, f := range s.flagged {
		part.flags = append(part.flags, f)
	}
	return part
}

// barrier sends a barrier message down every shard channel and
// collects the serialized partitions. Because each shard replies from
// its own event order and no Observe call is in flight (the snapshot
// contract), the union of parts is a consistent cut: every event
// dispatched before the barrier is included, none after.
func (p *Pipeline) barrier() []shardPart {
	replies := make(chan shardPart, len(p.shards))
	for _, s := range p.shards {
		s.in <- shardMsg{barrier: replies}
	}
	parts := make([]shardPart, 0, len(p.shards))
	for range p.shards {
		parts = append(parts, <-replies)
	}
	return parts
}

// Snapshot serializes the pipeline's complete state at a consistent
// point: per-account counters, check-cadence positions, verdicts, the
// reconstructed graph when the pipeline owns one, and the highest
// stream sequence applied. Safe to call repeatedly on a live pipeline
// (subject to the quiescence contract above); the pipeline keeps
// running afterwards.
func (p *Pipeline) Snapshot() *PipelineSnapshot {
	parts := p.barrier()
	// Flush the merge stage before handing the snapshot out: every
	// flag a shard sent before the barrier must be recorded and have
	// had its hook fired. Otherwise a checkpointer could persist and
	// acknowledge a verdict whose hook is still queued — and a crash
	// at that point would lose the hook delivery forever, since
	// restore deliberately does not re-fire hooks.
	p.flags <- flagMsg{sync: true}
	<-p.syncAck
	snap := &PipelineSnapshot{
		Version:    SnapshotVersion,
		Seq:        p.lastSeq,
		Shards:     len(p.shards),
		Part:       p.part,
		Parts:      p.parts,
		CheckEvery: p.checkEvery,
	}
	n, nf := 0, 0
	for _, part := range parts {
		n += len(part.accounts)
		nf += len(part.flags)
	}
	snap.Accounts = make([]AccountSnapshot, 0, n)
	snap.Flags = make([]Flag, 0, nf)
	for _, part := range parts {
		snap.Accounts = append(snap.Accounts, part.accounts...)
		snap.Flags = append(snap.Flags, part.flags...)
	}
	// Deterministic order: checkpoint files for identical states are
	// byte-identical, so equivalence tests (and operators) can diff them.
	sort.Slice(snap.Accounts, func(i, j int) bool {
		return snap.Accounts[i].State.ID < snap.Accounts[j].State.ID
	})
	sort.Slice(snap.Flags, func(i, j int) bool { return snap.Flags[i].ID < snap.Flags[j].ID })
	if p.ownGraph {
		gs := p.g.Snapshot()
		snap.Graph = &gs
	}
	return snap
}

// NewPipelineFromSnapshot rebuilds a live pipeline from a snapshot and
// returns the stream sequence to resume the feed from (snapshot
// sequence + 1, ready to hand to stream.DialResume). Shard count and
// check cadence default to the snapshot's; options may override them —
// restoring under a different WithShards value is a restart-time
// reshard, and the flag hook must be re-installed here since hooks
// don't serialize. The cluster partition is not overridable: the
// restored pipeline evaluates the snapshot's Part/Parts slice, and a
// WithPartition option naming any other partition is an error.
// Restored flags do not re-fire the hook. Whether the
// pipeline owns its graph follows the snapshot: a snapshot with a
// graph restores into reconstruction mode (the g argument is ignored),
// one without needs the same static graph the original run used.
func NewPipelineFromSnapshot(c Classifier, g *graph.Graph, snap *PipelineSnapshot, opts ...PipelineOption) (*Pipeline, uint64, error) {
	if snap.Version != SnapshotVersion {
		return nil, 0, fmt.Errorf("detector: snapshot version %d, want %d", snap.Version, SnapshotVersion)
	}
	p := &Pipeline{
		c:          c,
		g:          g,
		checkEvery: snap.CheckEvery,
		part:       snap.Part,
		parts:      snap.Parts,
		lastSeq:    snap.Seq,
		flags:      make(chan flagMsg, 256),
		mergeDone:  make(chan struct{}),
		syncAck:    make(chan struct{}, 1),
		flagged:    make(map[osn.AccountID]Flag),
	}
	if snap.Shards >= 1 {
		p.shards = make([]*pshard, snap.Shards)
	}
	for _, o := range opts {
		o(p)
	}
	if p.part != snap.Part || p.parts != snap.Parts {
		// The snapshot's counters cover exactly one slice of the feed;
		// adopting them under any other partition would evaluate
		// accounts from half-seen state. Restores inherit the
		// snapshot's partition — a WithPartition override may only
		// restate it.
		return nil, 0, fmt.Errorf("detector: snapshot is for partition %d/%d, restore asked for %d/%d",
			snap.Part, snap.Parts, p.part, p.parts)
	}
	if p.checkEvery < 1 {
		p.checkEvery = 1
	}
	p.ccGate, _ = p.c.(CCGated)
	if len(p.shards) == 0 {
		return nil, 0, fmt.Errorf("detector: snapshot has shard count %d and no WithShards override", snap.Shards)
	}
	p.ownGraph = snap.Graph != nil
	if p.ownGraph {
		rg, err := graph.FromSnapshot(*snap.Graph)
		if err != nil {
			return nil, 0, fmt.Errorf("detector: restore graph: %w", err)
		}
		p.g = rg
	} else if p.g == nil {
		return nil, 0, fmt.Errorf("detector: snapshot has no graph; pass the static graph the original run used")
	}
	for i := range p.shards {
		p.shards[i] = newShard(p)
	}
	if err := p.seed(snap.Accounts, snap.Flags, true); err != nil {
		return nil, 0, err
	}
	for _, s := range p.shards {
		go s.run()
	}
	p.makeArenas()
	go p.merge()
	return p, snap.Seq + 1, nil
}

// seed distributes serialized accounts and verdicts across the (not
// yet running) shards by the pipeline's hash partition. recordGlobal
// additionally records verdicts in the global flag map — right for
// restore, where no merge goroutine ever saw them, and wrong for
// reshard, where every collected flag was already sent to the merge
// stage by its old shard (recording it here would make merge's dup
// check swallow the flag hook for in-flight verdicts). Caller
// guarantees no shard goroutine is running.
func (p *Pipeline) seed(accounts []AccountSnapshot, flags []Flag, recordGlobal bool) error {
	buckets := make([][]features.AccountState, len(p.shards))
	for _, a := range accounts {
		i := p.shardIdx(a.State.ID)
		buckets[i] = append(buckets[i], a.State)
	}
	for i, b := range buckets {
		if err := p.shards[i].tr.Import(b); err != nil {
			return fmt.Errorf("detector: restore: %w", err)
		}
	}
	// Cadence positions go into the handle-indexed slices, which is why
	// the tracker import must happen first (handles exist after it).
	for _, a := range accounts {
		if a.Seen == 0 {
			continue
		}
		s := p.shardOf(a.State.ID)
		h, ok := s.tr.HandleOf(a.State.ID)
		if !ok {
			return fmt.Errorf("detector: restore: account %d has no counters", a.State.ID)
		}
		s.growTo(h)
		s.seen[h] = uint32(a.Seen)
	}
	for _, f := range flags {
		s := p.shardOf(f.ID)
		if _, dup := s.flagged[f.ID]; dup {
			return fmt.Errorf("detector: restore: duplicate flag for account %d", f.ID)
		}
		s.flagged[f.ID] = f
		if h, ok := s.tr.HandleOf(f.ID); ok {
			s.growTo(h)
			s.flaggedAt[h] = true
		}
		if recordGlobal {
			p.flagged[f.ID] = f
		}
	}
	return nil
}

// Reshard repartitions every account across a new shard count without
// stopping the pipeline: a barrier collects each old shard's
// serialized partition, the old shard goroutines retire, and fresh
// shards are seeded with the same flat state under the new hash
// partition. The merge stage, flag map, graph and stream position are
// untouched, so flags recorded so far stay visible throughout and the
// feed continues with the next Observe call. Subject to the same
// quiescence contract as Snapshot. No-ops on n < 1 or the current
// count.
func (p *Pipeline) Reshard(n int) {
	if n < 1 || n == len(p.shards) {
		return
	}
	parts := p.barrier()
	for _, s := range p.shards {
		close(s.in)
	}
	for _, s := range p.shards {
		<-s.done
	}
	p.shards = make([]*pshard, n)
	for i := range p.shards {
		p.shards[i] = newShard(p)
	}
	var accounts []AccountSnapshot
	var flags []Flag
	for _, part := range parts {
		accounts = append(accounts, part.accounts...)
		flags = append(flags, part.flags...)
	}
	if err := p.seed(accounts, flags, false); err != nil {
		// Unreachable: each account lived in exactly one old shard, so
		// it lands in exactly one new one, once.
		panic(err)
	}
	for _, s := range p.shards {
		go s.run()
	}
	// The arena ring is sized to the shard count; rebuild it. Every
	// arena is provably free here: all sub-batches dispatched before
	// the barrier were fully consumed (and their arenas released)
	// before the shards replied to it.
	p.makeArenas()
}
