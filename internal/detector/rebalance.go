// Live-rebalance state surgery: re-keying a campaign's K
// partition-stamped snapshots into K' snapshots, one per new
// partition, all cut at the same feed sequence (the cutover barrier).
//
// The flat account list makes this mechanical, with one subtlety:
// a partitioned pipeline also tracks *foreign* accounts — support
// state created by cross-partition events it received for its own
// accounts' features (osn.PartitionDelivers). That support state is
// authoritative only in the account's owning partition (any event
// touching account X anywhere is also delivered to X's owner, and
// verdict evaluation reads only the owned account's own counters), so
// the split keeps exactly the owner's copy of every account and drops
// the rest. The new partitions rebuild their own support state
// organically from the feed after the cutover — it is a cache of the
// future feed, not history.

package detector

import (
	"fmt"
	"sort"

	"sybilwild/internal/osn"
)

// RebalanceSnapshots re-keys one campaign's complete set of partition
// snapshots — one per partition of a K-way cluster, all stamped at
// the same sequence (the cutover barrier) — into newParts snapshots
// partitioned by osn.Partition over the new group size. Each account's
// authoritative state (the copy held by its old owner) and each
// verdict moves to the account's new owner; every other copy is
// dropped. The inputs may arrive in any order (they are matched by
// their Part stamp); a single unpartitioned snapshot is accepted as
// the K=1 case. newParts == 1 merges everything back into one
// unpartitioned snapshot (stamped 0/0, the normalized form
// WithPartition(0, 1) restores).
//
// The output shares the input's graph snapshot by reference — the
// reconstructed graph is identical in every partition at the same
// barrier, so the first input's is reused, not copied. Restore copies
// it into each new pipeline (graph.FromSnapshot), so sharing is safe
// as long as callers treat snapshots as immutable, which everything
// in this package does.
func RebalanceSnapshots(snaps []*PipelineSnapshot, newParts int) ([]*PipelineSnapshot, error) {
	if newParts < 1 {
		return nil, fmt.Errorf("detector: rebalance into %d partitions", newParts)
	}
	k := len(snaps)
	if k < 1 {
		return nil, fmt.Errorf("detector: rebalance needs at least one source snapshot")
	}
	// Validate the set as one campaign cut: one snapshot per source
	// partition, every one at the same barrier with the same schema,
	// cadence, and graph presence.
	byPart := make([]*PipelineSnapshot, k)
	ref := snaps[0]
	for i, s := range snaps {
		if s == nil {
			return nil, fmt.Errorf("detector: rebalance: nil snapshot at index %d", i)
		}
		if s.Version != SnapshotVersion {
			return nil, fmt.Errorf("detector: rebalance: snapshot version %d, want %d", s.Version, SnapshotVersion)
		}
		switch {
		case k == 1 && s.Parts == 0:
			// A single unpartitioned snapshot is the K=1 whole-feed case.
		case s.Parts != k:
			return nil, fmt.Errorf("detector: rebalance: snapshot stamped %d/%d in a set of %d", s.Part, s.Parts, k)
		case s.Part < 0 || s.Part >= k:
			return nil, fmt.Errorf("detector: rebalance: snapshot stamped %d/%d", s.Part, s.Parts)
		}
		if byPart[s.Part] != nil {
			return nil, fmt.Errorf("detector: rebalance: two snapshots for partition %d/%d", s.Part, k)
		}
		byPart[s.Part] = s
		if s.Seq != ref.Seq {
			return nil, fmt.Errorf("detector: rebalance: mixed barriers: partition %d cut at %d, partition %d at %d — not one campaign cut",
				s.Part, s.Seq, ref.Part, ref.Seq)
		}
		if s.CheckEvery != ref.CheckEvery {
			return nil, fmt.Errorf("detector: rebalance: mixed check cadence (%d vs %d)", s.CheckEvery, ref.CheckEvery)
		}
		if (s.Graph == nil) != (ref.Graph == nil) {
			return nil, fmt.Errorf("detector: rebalance: mixed graph presence across partitions")
		}
	}

	outAccounts := make([][]AccountSnapshot, newParts)
	outFlags := make([][]Flag, newParts)
	flagged := make(map[osn.AccountID]bool)
	for _, s := range byPart {
		for _, a := range s.Accounts {
			if osn.Partition(a.State.ID, k) != s.Part {
				continue // foreign support copy; the owner's copy is authoritative
			}
			np := osn.Partition(a.State.ID, newParts)
			outAccounts[np] = append(outAccounts[np], a)
		}
		for _, f := range s.Flags {
			// Verdicts are exactly-once across the old cluster, so a
			// duplicate here means the inputs are not one campaign's
			// partitions (e.g. cuts from different group shapes mixed).
			if flagged[f.ID] {
				return nil, fmt.Errorf("detector: rebalance: account %d flagged in more than one source snapshot", f.ID)
			}
			flagged[f.ID] = true
			np := osn.Partition(f.ID, newParts)
			outFlags[np] = append(outFlags[np], f)
		}
	}

	out := make([]*PipelineSnapshot, newParts)
	for p := 0; p < newParts; p++ {
		snap := &PipelineSnapshot{
			Version:    SnapshotVersion,
			Seq:        ref.Seq,
			Shards:     ref.Shards,
			Part:       p,
			Parts:      newParts,
			CheckEvery: ref.CheckEvery,
			Accounts:   outAccounts[p],
			Flags:      outFlags[p],
			Graph:      ref.Graph,
		}
		if newParts == 1 {
			// The merged whole-feed snapshot is unpartitioned — the
			// normalized form WithPartition(0, 1) stamps and restores.
			snap.Part, snap.Parts = 0, 0
		}
		// Deterministic order, same contract as Pipeline.Snapshot:
		// identical state re-keys to byte-identical snapshots.
		sort.Slice(snap.Accounts, func(i, j int) bool {
			return snap.Accounts[i].State.ID < snap.Accounts[j].State.ID
		})
		sort.Slice(snap.Flags, func(i, j int) bool { return snap.Flags[i].ID < snap.Flags[j].ID })
		out[p] = snap
	}
	return out, nil
}
