package detector

import (
	"runtime"
	"sync"
	"sync/atomic"

	"sybilwild/internal/features"
	"sybilwild/internal/graph"
	"sybilwild/internal/osn"
	"sybilwild/internal/sim"
)

// Pipeline is the sharded, concurrent counterpart of Monitor. Accounts
// are hash-partitioned across N shards; each shard owns the feature
// counters of its accounts outright (no shared tracker, no global
// lock) and drains its own buffered channel of contiguous sub-batches.
// Ingest is the fan-out dispatcher: it partitions each wire batch once
// into per-shard sub-batches (in a reusable arena, so the steady-state
// dispatch path never allocates) and hands each shard its slice in one
// channel hop, so every counter is written by exactly one goroutine.
// Flags from all shards funnel through a single merge goroutine, which
// records them and fires the flag hook; shards deliver flags a message
// at a time rather than one channel send per verdict, so a burst of
// detections on one shard never serializes the others.
//
// Fed the same single-goroutine event stream over the same static
// graph, Pipeline flags exactly the set Monitor flags (per-account
// event order is preserved end to end); Monitor remains the serial
// reference implementation that TestPipelineMatchesMonitor checks
// against. Ingest and Observe are safe to call from many goroutines,
// which is how production traffic — per-frontend feeds — would enter
// the pipeline.
//
// Lifecycle: NewPipeline starts the shard and merge goroutines
// immediately; call Ingest per wire batch (or Observe per event), then
// Close exactly once, after all ingestion calls have returned, to
// drain and stop. Flagged state may be queried at any time; Tracked
// and Graph only after Close.
type Pipeline struct {
	c          Classifier
	ccGate     CCGated // p.c when it implements CCGated, else nil
	checkEvery int

	// Cluster partition (WithPartition): the pipeline evaluates and
	// flags only accounts it owns (osn.Partition(actor, parts) == part)
	// while still applying every delivered event to its counters —
	// support events from foreign partitions (replicated accepts,
	// target-routed requests) feed owned accounts' features without
	// granting this worker verdict authority over their actors.
	// parts == 0 means unpartitioned: evaluate everyone.
	part  int
	parts int

	// Graph access. In the default mode g is a caller-provided graph
	// that must not be mutated while the pipeline runs, and gmu is
	// unused. With WithGraphReconstruction the pipeline owns g, grows
	// it from accept events under gmu, and shards take the read side
	// to compute clustering coefficients.
	g        *graph.Graph
	gmu      sync.RWMutex
	ownGraph bool

	shards []*pshard

	// freeArenas is the ring of reusable sub-batch partition buffers.
	// Ingest takes one per batch and the last shard to finish its
	// sub-batch returns it, so the ring's depth bounds how many batches
	// can be in flight — backpressure lands on the producer once every
	// arena is busy.
	freeArenas chan *arena

	flags     chan flagMsg
	mergeDone chan struct{}
	syncAck   chan struct{} // merge's reply to a sync flagMsg
	onFlag    func(Flag)

	fmu     sync.RWMutex
	flagged map[osn.AccountID]Flag

	// lastSeq is the highest stream sequence stamped by a sequenced
	// ingestion call (Ingest with Batch.LastSeq set). Written and read
	// only from the ingestion/snapshot goroutine — the snapshot
	// contract requires Snapshot not to overlap ingestion anyway.
	lastSeq uint64

	closeOnce sync.Once
}

// Flag is one detection verdict: which account, when, and the feature
// vector that crossed the thresholds.
type Flag struct {
	ID     osn.AccountID
	At     sim.Time
	Vector features.Vector
}

// Batch is one unit of ingestion: a slice of events in stream order,
// optionally stamped with the global stream sequence of its last event
// (stream.Client.LastSeq after RecvBatch). A zero LastSeq means
// unsequenced — replayed logs, tests, simulation feeds.
type Batch struct {
	Events []osn.Event
	// LastSeq, when non-zero, records that Events end at this global
	// stream sequence. The pipeline remembers the highest sequence
	// applied so Snapshot can stamp its cut, which is what turns a
	// checkpoint plus the feed's resume-from-sequence into exactly-once
	// crash recovery. Sequenced batches must come from a single
	// goroutine (the snapshot contract already requires quiescing
	// ingestion around Snapshot); unsequenced batches may be ingested
	// concurrently.
	LastSeq uint64
}

// pshard is one partition: a goroutine draining in, the feature
// counters of the accounts hashed to it, and its slice of the
// per-account evaluation bookkeeping. Cadence positions and
// flagged-bits live in flat slices indexed by tracker Handle — two
// slice loads on the hot path where there used to be two map lookups.
// The shard keeps the full Flag record (not just a bit) so a snapshot
// barrier can serialize verdicts from the shard's own state,
// consistent with its counters, without racing the merge goroutine.
type pshard struct {
	p         *Pipeline
	in        chan shardMsg
	tr        *features.Tracker
	seen      []uint32 // by Handle: requests seen, mod checkEvery
	flaggedAt []bool   // by Handle: verdict already emitted
	flagged   map[osn.AccountID]Flag
	pending   []Flag // flags accumulated during the current message
	done      chan struct{}
}

// shardEvent tells a shard which side(s) of the event it owns. When
// actor and target hash to the same shard one message carries both
// roles.
type shardEvent struct {
	ev            osn.Event
	actor, target bool
}

// shardMsg is one channel hop to a shard: a single event (Observe,
// allocation-free), an arena-backed sub-batch (Ingest, one hop per
// shard per wire batch), or a snapshot barrier (Snapshot/Reshard): the
// shard serializes its partition at that exact point in its event
// order and replies on the channel.
type shardMsg struct {
	one     shardEvent
	batch   []shardEvent     // non-nil: sub-batch dispatch
	arena   *arena           // owner of batch, released after processing
	barrier chan<- shardPart // non-nil: serialize and reply
}

// arena is one reusable partition table: a per-shard slice of
// sub-batches plus the count of shards still reading them. The
// dispatcher fills subs, stamps pending with the number of non-empty
// sub-batches, and dispatches; each shard decrements pending when done
// and the last one returns the arena to the free ring. Slice capacity
// is retained across reuses, so after warm-up partitioning allocates
// nothing.
type arena struct {
	subs    [][]shardEvent
	pending atomic.Int32
}

// release marks one shard's sub-batch fully consumed, recycling the
// arena when it was the last.
func (a *arena) release(p *Pipeline) {
	if a.pending.Add(-1) == 0 {
		p.freeArenas <- a
	}
}

// flagMsg is one merge-stage delivery: a shard's verdicts from one
// message (batched, so flag delivery is one channel hop per message
// rather than per flag), or a sync marker Snapshot uses to flush the
// merge stage.
type flagMsg struct {
	flags []Flag
	sync  bool
}

// PipelineOption configures NewPipeline.
type PipelineOption func(*Pipeline)

// WithShards sets the shard count (default runtime.GOMAXPROCS(0);
// values < 1 mean the default).
func WithShards(n int) PipelineOption {
	return func(p *Pipeline) {
		if n >= 1 {
			p.shards = make([]*pshard, n)
		}
	}
}

// WithCheckEvery evaluates an account every n-th request it sends,
// like Monitor.CheckEvery (values < 1 normalize to 1).
func WithCheckEvery(n int) PipelineOption {
	return func(p *Pipeline) { p.checkEvery = n }
}

// WithFlagHook installs fn, called exactly once per flagged account
// from the merge goroutine (so hooks never run concurrently). The hook
// must not call Close or Ingest (feeding events from the merge
// goroutine can deadlock against a full shard buffer); to act on the
// network, record the flag and apply it from the producer side, as
// TestMonitorOnLiveCampaign's ban action does.
func WithFlagHook(fn func(Flag)) PipelineOption {
	return func(p *Pipeline) { p.onFlag = fn }
}

// WithPartition restricts the pipeline's verdict authority to one
// account partition of a detection cluster: only accounts with
// osn.Partition(id, parts) == part are evaluated and flagged. Every
// ingested event still updates counters — a partitioned feed
// (stream.WithPartition) delivers exactly the owned slice plus the
// cross-partition support events the owned accounts' features need,
// and gating evaluation (not ingestion) on ownership is what makes
// the union of K partitioned workers' flag sets equal a single
// unpartitioned run. parts <= 1 means the full feed (unpartitioned).
func WithPartition(part, parts int) PipelineOption {
	return func(p *Pipeline) {
		p.part, p.parts = part, parts
		if p.parts <= 1 {
			p.part, p.parts = 0, 0
		}
	}
}

// WithGraphReconstruction has the pipeline build its own friendship
// graph from the accept events it observes, the way detectd
// reconstructs Renren's store from the feed. The graph argument to
// NewPipeline is ignored and may be nil.
func WithGraphReconstruction() PipelineOption {
	return func(p *Pipeline) { p.ownGraph = true }
}

// shardBuffer is the per-shard channel depth. Deep enough to ride out
// shard-local bursts (one account evaluating an expensive clustering
// coefficient) even when most messages are single events, small enough
// that backpressure reaches the producer before memory does.
const shardBuffer = 4096

// arenaRing is how many partition arenas circulate, i.e. how many wire
// batches may be in flight across the shards at once.
const arenaRing = 8

// arenaSubCap is the initial per-shard sub-batch capacity. Sized for a
// typical wire batch landing on one shard; append growth beyond it is
// retained for the arena's next reuse.
const arenaSubCap = 512

// NewPipeline builds and starts a pipeline classifying with c over
// friendship graph g. The returned pipeline is live: wire Ingest to an
// event source (e.g. stream.SubscribeBatch) and Close when the stream
// ends.
func NewPipeline(c Classifier, g *graph.Graph, opts ...PipelineOption) *Pipeline {
	p := &Pipeline{
		c:          c,
		g:          g,
		checkEvery: 1,
		flags:      make(chan flagMsg, 256),
		mergeDone:  make(chan struct{}),
		syncAck:    make(chan struct{}, 1),
		flagged:    make(map[osn.AccountID]Flag),
	}
	for _, o := range opts {
		o(p)
	}
	if p.checkEvery < 1 {
		p.checkEvery = 1
	}
	if p.parts > 0 && (p.part < 0 || p.part >= p.parts) {
		panic("detector: WithPartition part out of range")
	}
	p.ccGate, _ = p.c.(CCGated)
	if p.ownGraph {
		p.g = graph.New(0)
	}
	if p.g == nil {
		panic("detector: NewPipeline needs a graph unless WithGraphReconstruction is set")
	}
	if p.shards == nil {
		p.shards = make([]*pshard, runtime.GOMAXPROCS(0))
	}
	for i := range p.shards {
		s := newShard(p)
		p.shards[i] = s
		go s.run()
	}
	p.makeArenas()
	go p.merge()
	return p
}

// makeArenas builds a fresh arena ring sized to the current shard
// count. Called only when no arena can be in flight (construction, or
// post-barrier in Reshard).
func (p *Pipeline) makeArenas() {
	p.freeArenas = make(chan *arena, arenaRing)
	for i := 0; i < arenaRing; i++ {
		a := &arena{subs: make([][]shardEvent, len(p.shards))}
		for j := range a.subs {
			a.subs[j] = make([]shardEvent, 0, arenaSubCap)
		}
		p.freeArenas <- a
	}
}

// shardIdx hash-partitions an account. Dense sequential IDs are mixed
// (splitmix64 finalizer) so shard load stays balanced regardless of
// how IDs were assigned.
func (p *Pipeline) shardIdx(id osn.AccountID) int {
	x := uint64(uint32(id))
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(len(p.shards)))
}

func (p *Pipeline) shardOf(id osn.AccountID) *pshard {
	return p.shards[p.shardIdx(id)]
}

// Ingest is the batch-first entry point: it routes one wire batch —
// e.g. one feed batch from stream.Client.RecvBatch or a chunk of a
// replayed historical log — to the shards, with one channel hop per
// shard per batch. The batch is partitioned once into per-shard
// sub-batches inside a recycled arena, so steady-state dispatch
// allocates nothing; when the pipeline reconstructs its own graph, the
// batch's graph growth happens in one write-lock acquisition before
// dispatch, so shards compute clustering coefficients concurrently
// with the dispatcher growing the graph for the next batch instead of
// serializing behind per-event lock traffic.
//
// Per-shard event order is the batch order, so feeding the same stream
// via Ingest calls, Observe calls, or any mix of the two flags the
// same set. Unsequenced batches (LastSeq zero) are safe to ingest from
// many goroutines; see Batch.LastSeq for the sequenced contract.
// Blocks when every arena is in flight or a shard's buffer is full —
// backpressure lands on the producer rather than in unbounded memory.
// Must not be called after (or concurrently with) Close.
func (p *Pipeline) Ingest(b Batch) {
	if len(b.Events) > 0 {
		if p.ownGraph {
			p.extendGraphBatch(b.Events)
		}
		a := <-p.freeArenas
		for i := range a.subs {
			a.subs[i] = a.subs[i][:0]
		}
		for _, ev := range b.Events {
			switch ev.Type {
			case osn.EvFriendRequest, osn.EvFriendAccept:
			default:
				continue // no feature in §2.2 consumes the rest of the log
			}
			ia := p.shardIdx(ev.Actor)
			it := p.shardIdx(ev.Target)
			if ia == it {
				a.subs[ia] = append(a.subs[ia], shardEvent{ev: ev, actor: true, target: true})
				continue
			}
			a.subs[ia] = append(a.subs[ia], shardEvent{ev: ev, actor: true})
			a.subs[it] = append(a.subs[it], shardEvent{ev: ev, target: true})
		}
		var nsub int32
		for i := range a.subs {
			if len(a.subs[i]) > 0 {
				nsub++
			}
		}
		if nsub == 0 {
			p.freeArenas <- a
		} else {
			// Stamp the reader count before the first dispatch: a fast
			// shard may finish (and decrement) before the loop ends.
			a.pending.Store(nsub)
			for i := range a.subs {
				if len(a.subs[i]) > 0 {
					p.shards[i].in <- shardMsg{batch: a.subs[i], arena: a}
				}
			}
		}
	}
	if b.LastSeq > p.lastSeq {
		p.lastSeq = b.LastSeq
	}
}

// Observe is the single-event convenience wrapper around the batch
// path: it routes one event to the shard(s) owning its endpoints,
// allocation-free and safe for concurrent use, under the same rules as
// an unsequenced Ingest. Prefer Ingest for anything that arrives in
// batches — per-event dispatch pays one or two channel hops per event.
func (p *Pipeline) Observe(ev osn.Event) {
	switch ev.Type {
	case osn.EvFriendRequest, osn.EvFriendAccept:
	default:
		return
	}
	if p.ownGraph {
		p.extendGraph(ev)
	}
	sa := p.shardOf(ev.Actor)
	st := p.shardOf(ev.Target)
	if sa == st {
		sa.in <- shardMsg{one: shardEvent{ev: ev, actor: true, target: true}}
		return
	}
	sa.in <- shardMsg{one: shardEvent{ev: ev, actor: true}}
	st.in <- shardMsg{one: shardEvent{ev: ev, target: true}}
}

// Seq returns the highest stream sequence applied via sequenced Ingest
// batches (zero if the pipeline has only seen unsequenced events).
func (p *Pipeline) Seq() uint64 { return p.lastSeq }

// extendGraph grows the owned graph to cover the event's accounts and
// records accept events as edges, before the event is visible to any
// shard — so a shard evaluating an account never sees counters ahead
// of the graph.
func (p *Pipeline) extendGraph(ev osn.Event) {
	hi := ev.Actor
	if ev.Target > hi {
		hi = ev.Target
	}
	// Fast path: requests between already-known accounts mutate
	// nothing, so the steady-state feed never takes the write lock and
	// the dispatcher stays off the shards' read-side critical path.
	if ev.Type == osn.EvFriendRequest {
		p.gmu.RLock()
		known := graph.NodeID(p.g.NumNodes()) > hi
		p.gmu.RUnlock()
		if known {
			return
		}
	}
	p.gmu.Lock()
	for graph.NodeID(p.g.NumNodes()) <= hi {
		p.g.AddNode()
	}
	if ev.Type == osn.EvFriendAccept && ev.Actor != ev.Target {
		p.g.AddEdge(ev.Actor, ev.Target, ev.At)
	}
	p.gmu.Unlock()
}

// extendGraphBatch is extendGraph amortized over a whole batch: one
// write-lock acquisition grows the node range to the batch's highest
// account and appends every accept edge in batch order, before any of
// the batch is visible to a shard. The invariant is the same as the
// per-event path — the graph is never behind an event a shard can see
// — and the edge set ends up identical to per-event replay because
// edges are added in the same order. Request-only batches between
// known accounts take only the read lock.
func (p *Pipeline) extendGraphBatch(evs []osn.Event) {
	var hi graph.NodeID = -1
	accepts := false
	for _, ev := range evs {
		switch ev.Type {
		case osn.EvFriendAccept:
			accepts = true
		case osn.EvFriendRequest:
		default:
			continue
		}
		if ev.Actor > hi {
			hi = ev.Actor
		}
		if ev.Target > hi {
			hi = ev.Target
		}
	}
	if hi < 0 {
		return
	}
	if !accepts {
		p.gmu.RLock()
		known := graph.NodeID(p.g.NumNodes()) > hi
		p.gmu.RUnlock()
		if known {
			return
		}
	}
	p.gmu.Lock()
	for graph.NodeID(p.g.NumNodes()) <= hi {
		p.g.AddNode()
	}
	if accepts {
		for _, ev := range evs {
			if ev.Type == osn.EvFriendAccept && ev.Actor != ev.Target {
				p.g.AddEdge(ev.Actor, ev.Target, ev.At)
			}
		}
	}
	p.gmu.Unlock()
}

// fillCC computes the clustering coefficient for v.ID, taking the
// graph read lock only when the pipeline is mutating the graph itself.
func (p *Pipeline) fillCC(v *features.Vector) {
	if p.ownGraph {
		p.gmu.RLock()
	}
	if int(v.ID) < p.g.NumNodes() {
		v.CC = p.g.ClusteringFirstK(v.ID, features.FirstFriendsK)
	}
	if p.ownGraph {
		p.gmu.RUnlock()
	}
}

// newShard builds an empty, not-yet-running shard.
func newShard(p *Pipeline) *pshard {
	return &pshard{
		p:       p,
		in:      make(chan shardMsg, shardBuffer),
		tr:      features.NewTracker(p.g),
		flagged: make(map[osn.AccountID]Flag),
		done:    make(chan struct{}),
	}
}

// run is the shard loop: apply the owned side(s) of each event, then
// evaluate the sender on its due friend requests, then flush any
// verdicts the message produced to the merge stage in one hop. A
// barrier message makes the shard serialize its partition — counters,
// cadence positions and verdicts at exactly this point in its event
// order — and reply before touching another event.
func (s *pshard) run() {
	defer close(s.done)
	for msg := range s.in {
		switch {
		case msg.barrier != nil:
			msg.barrier <- s.serialize()
		case msg.arena != nil:
			for _, se := range msg.batch {
				s.handle(se)
			}
			s.flush()
			msg.arena.release(s.p)
		default:
			s.handle(msg.one)
			s.flush()
		}
	}
}

// growTo extends the handle-indexed bookkeeping to cover h.
func (s *pshard) growTo(h features.Handle) {
	for int(h) >= len(s.seen) {
		s.seen = append(s.seen, 0)
		s.flaggedAt = append(s.flaggedAt, false)
	}
}

func (s *pshard) handle(se shardEvent) {
	h := features.NoHandle
	if se.actor {
		h = s.tr.UpdateActor(se.ev)
	}
	if se.target {
		s.tr.UpdateTarget(se.ev)
	}
	if !se.actor || se.ev.Type != osn.EvFriendRequest {
		return
	}
	if s.p.parts > 0 && osn.Partition(se.ev.Actor, s.p.parts) != s.p.part {
		// Support event: its counter updates feed owned accounts'
		// features, but the actor belongs to another partition, whose
		// worker holds sole verdict authority over it.
		return
	}
	// An actor-side request always has a handle.
	s.growTo(h)
	if s.flaggedAt[h] {
		return
	}
	s.seen[h]++
	if int(s.seen[h])%s.p.checkEvery != 0 {
		return
	}
	v := s.tr.CountsAt(h)
	// Lazy CC: when the classifier can tell from the counter features
	// alone that the (conjunctive) rule cannot fire, skip the
	// clustering-coefficient walk — by the CCGated contract the verdict
	// is unchanged, and the CC walk is the single most expensive step
	// on the hot path.
	if s.p.ccGate == nil || s.p.ccGate.NeedsCC(v) {
		s.p.fillCC(&v)
	}
	if s.p.c.Classify(v) {
		id := se.ev.Actor
		if _, dup := s.flagged[id]; dup {
			// A restored verdict for an account the tracker had no
			// counters for (so no handle existed to mark at seed time).
			s.flaggedAt[h] = true
			return
		}
		f := Flag{ID: id, At: se.ev.At, Vector: v}
		s.flagged[id] = f
		s.flaggedAt[h] = true
		s.pending = append(s.pending, f)
	}
}

// flush hands the message's accumulated verdicts to the merge stage in
// one channel send. Ownership of the slice transfers with the send;
// flags are rare (once per account, ever), so the fresh slice per
// flagging message is off the steady-state path.
func (s *pshard) flush() {
	if len(s.pending) == 0 {
		return
	}
	s.p.flags <- flagMsg{flags: s.pending}
	s.pending = nil
}

// merge collects flag batches from all shards into the global verdict
// map and fires the hook, serialized. The dup check is a defensive
// backstop: each account is owned by exactly one shard, whose local
// flagged map already guarantees at most one Flag per account.
func (p *Pipeline) merge() {
	defer close(p.mergeDone)
	for m := range p.flags {
		if m.sync {
			p.syncAck <- struct{}{}
			continue
		}
		for _, f := range m.flags {
			p.fmu.Lock()
			_, dup := p.flagged[f.ID]
			if !dup {
				p.flagged[f.ID] = f
			}
			p.fmu.Unlock()
			if !dup && p.onFlag != nil {
				p.onFlag(f)
			}
		}
	}
}

// Close drains every shard, stops all pipeline goroutines, and waits
// for the merge stage to finish. All ingestion calls must have
// returned. Close is idempotent.
func (p *Pipeline) Close() {
	p.closeOnce.Do(func() {
		for _, s := range p.shards {
			close(s.in)
		}
		for _, s := range p.shards {
			<-s.done
		}
		close(p.flags)
		<-p.mergeDone
	})
}

// NumShards returns the shard count.
func (p *Pipeline) NumShards() int { return len(p.shards) }

// Partition returns the pipeline's cluster partition (part, parts);
// parts == 0 means unpartitioned.
func (p *Pipeline) Partition() (part, parts int) { return p.part, p.parts }

// Flagged reports whether an account has been flagged. Safe to call
// while the pipeline runs; a flag becomes visible once the merge stage
// has recorded it.
func (p *Pipeline) Flagged(id osn.AccountID) bool {
	p.fmu.RLock()
	_, ok := p.flagged[id]
	p.fmu.RUnlock()
	return ok
}

// FlaggedCount returns the number of flagged accounts so far.
func (p *Pipeline) FlaggedCount() int {
	p.fmu.RLock()
	n := len(p.flagged)
	p.fmu.RUnlock()
	return n
}

// FlaggedIDs returns all flagged accounts (order unspecified).
func (p *Pipeline) FlaggedIDs() []osn.AccountID {
	p.fmu.RLock()
	out := make([]osn.AccountID, 0, len(p.flagged))
	for id := range p.flagged {
		out = append(out, id)
	}
	p.fmu.RUnlock()
	return out
}

// Flags returns the full verdicts (order unspecified).
func (p *Pipeline) Flags() []Flag {
	p.fmu.RLock()
	out := make([]Flag, 0, len(p.flagged))
	for _, f := range p.flagged {
		out = append(out, f)
	}
	p.fmu.RUnlock()
	return out
}

// Tracked returns the number of accounts with observed activity,
// summed across shards. Only valid after Close (shard state is
// goroutine-local while running).
func (p *Pipeline) Tracked() int {
	n := 0
	for _, s := range p.shards {
		n += s.tr.Tracked()
	}
	return n
}

// Graph exposes the pipeline's graph — the reconstructed one under
// WithGraphReconstruction, otherwise the caller's. Only read it after
// Close.
func (p *Pipeline) Graph() *graph.Graph { return p.g }
